package apan_test

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"testing"
	"time"

	"apan"
)

// TestEndToEndPublicAPI exercises the full downstream-user journey through
// the public package only: generate data, train, evaluate, serve through
// the asynchronous pipeline, checkpoint, restore, keep serving.
func TestEndToEndPublicAPI(t *testing.T) {
	ds := apan.Wikipedia(apan.DatasetConfig{Scale: 0.015, Seed: 5})
	if ds.NumNodes == 0 || ds.EdgeDim != 172 {
		t.Fatalf("dataset shape: %d nodes, %d dims", ds.NumNodes, ds.EdgeDim)
	}
	split := ds.Split(0.70, 0.15)

	db := apan.NewGraphDB(apan.NewGraph(ds.NumNodes))
	db.Latency = apan.ConstantLatency(50 * time.Microsecond)
	model, err := apan.NewWithDB(apan.Config{
		NumNodes: ds.NumNodes, EdgeDim: ds.EdgeDim,
		Slots: 5, Neighbors: 5, BatchSize: 100, LR: 1e-3, Seed: 5,
	}, db)
	if err != nil {
		t.Fatal(err)
	}

	ns := apan.NewNegSampler(ds.NumNodes)
	var lastLoss float64
	for epoch := 0; epoch < 3; epoch++ {
		model.ResetRuntime()
		tr := model.TrainEpoch(split.Train, ns)
		lastLoss = tr.Loss
	}
	if lastLoss <= 0 || lastLoss != lastLoss {
		t.Fatalf("bad training loss %v", lastLoss)
	}

	val := model.EvalStream(split.Val, ns)
	if val.AP != val.AP || val.AP <= 0.5 {
		t.Fatalf("val AP %v", val.AP)
	}

	// Serve a slice of the test stream through the pipeline and the v1
	// HTTP API in front of it.
	if len(split.Test) < 250 {
		t.Fatalf("test split too small for the scenario: %d", len(split.Test))
	}
	ctx := context.Background()
	pipe := apan.StartPipeline(model, apan.WithQueueCap(16))
	served := split.Test[:200]
	for lo := 0; lo < 150; lo += 50 {
		scores, lat, err := pipe.Submit(ctx, served[lo:lo+50])
		if err != nil {
			t.Fatal(err)
		}
		if len(scores) != 50 {
			t.Fatalf("scores: %d", len(scores))
		}
		if lat <= 0 {
			t.Fatal("no sync latency measured")
		}
	}

	srv := apan.NewServer(pipe, apan.ServerOptions{})
	hs := httptest.NewServer(srv)
	lastBatch := struct {
		Events []apan.Event `json:"events"`
	}{Events: served[150:200]}
	body, err := json.Marshal(lastBatch)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(hs.URL+"/v1/score", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var scored struct {
		Scores []float32 `json:"scores"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&scored); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || len(scored.Scores) != 50 {
		t.Fatalf("HTTP score: status %d, %d scores", resp.StatusCode, len(scored.Scores))
	}
	hs.Close()
	srv.Close()

	if err := pipe.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	st := pipe.Stats()
	if st.Processed != 4 {
		t.Fatalf("pipeline processed %d", st.Processed)
	}
	if err := pipe.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}

	// Checkpoint and restore into a fresh replica.
	path := filepath.Join(t.TempDir(), "ckpt")
	if err := model.SaveCheckpointFile(path); err != nil {
		t.Fatal(err)
	}
	replica, err := apan.NewWithDB(apan.Config{
		NumNodes: ds.NumNodes, EdgeDim: ds.EdgeDim,
		Slots: 5, Neighbors: 5, BatchSize: 100, LR: 1e-3, Seed: 5,
	}, apan.NewGraphDB(apan.NewGraph(ds.NumNodes)))
	if err != nil {
		t.Fatal(err)
	}
	if err := replica.LoadCheckpointFile(path); err != nil {
		t.Fatal(err)
	}
	probe := split.Test[200:250]
	a := model.InferBatch(probe)
	b := replica.InferBatch(probe)
	for i := range a.Scores {
		if a.Scores[i] != b.Scores[i] {
			t.Fatalf("replica diverged at %d: %v vs %v", i, a.Scores[i], b.Scores[i])
		}
	}

	// Interpretability surface.
	if _, ok := model.Explain(probe[0].Src); !ok {
		t.Log("probe src had no mailbox history (acceptable)")
	}

	// Embedding API.
	emb := model.Embed([]apan.NodeID{0, 1}, []float64{1e6, 1e6})
	if emb.Rows != 2 || emb.Cols != ds.EdgeDim {
		t.Fatalf("embed shape %dx%d", emb.Rows, emb.Cols)
	}
}

// TestDatasetVariantsPublicAPI covers the other two generators through the
// public surface.
func TestDatasetVariantsPublicAPI(t *testing.T) {
	r := apan.Reddit(apan.DatasetConfig{Scale: 0.002, Seed: 2})
	if !r.Bipartite || r.Name != "reddit" {
		t.Fatalf("reddit: %+v", r.Name)
	}
	a := apan.Alipay(apan.DatasetConfig{Scale: 0.0005, Seed: 2})
	if a.Bipartite || a.EdgeDim != 101 {
		t.Fatalf("alipay: %s dim %d", a.Name, a.EdgeDim)
	}
}
