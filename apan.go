// Package apan is a from-scratch Go implementation of APAN — the
// Asynchronous Propagation Attention Network for real-time temporal graph
// embedding (Wang et al., SIGMOD 2021) — together with the full substrate
// it needs: a temporal graph store, a per-node mailbox, a neural-network
// engine, the asynchronous serving pipeline, synthetic counterparts of the
// paper's datasets, every baseline of the paper's evaluation, and a
// benchmark harness that regenerates each table and figure.
//
// The model splits into two links (paper Fig. 2b):
//
//   - Synchronous: when a batch of interactions arrives, the attention
//     encoder reads each node's last embedding z(t−) and mailbox, produces
//     z(t), and an MLP decoder scores the interaction — with no graph
//     queries on the critical path.
//   - Asynchronous: afterwards, a mail summarizing the interaction is
//     propagated to the k-hop temporal neighbors' mailboxes through the
//     graph store (behind a bounded queue in serving).
//
// Quick start:
//
//	ds := apan.Wikipedia(apan.DatasetConfig{Scale: 0.05, Seed: 1})
//	model, err := apan.New(apan.Config{NumNodes: ds.NumNodes, EdgeDim: ds.EdgeDim})
//	if err != nil { ... }
//	split := ds.Split(0.70, 0.15)
//	ns := apan.NewNegSampler(ds.NumNodes)
//	for epoch := 0; epoch < 10; epoch++ {
//		model.ResetRuntime()
//		model.TrainEpoch(split.Train, ns)
//	}
//	res := model.EvalStream(split.Test, ns)
//	fmt.Printf("test AP %.3f\n", res.AP)
//
// For online serving, wrap the model in a Pipeline (see StartPipeline):
// Submit answers on the synchronous link with context cancellation and
// queues the propagation work; TrySubmit sheds load instead of blocking,
// SubmitFuture returns a channel, and Shutdown drains then stops. The
// node-state and mailbox stores are sharded and lock-striped
// (Config.Shards), so concurrent submissions score in parallel and
// EnsureNodes admits unseen node IDs at runtime. Put a Server in front of
// the pipeline (see NewServer) to expose the versioned HTTP/JSON API —
// POST /v1/score, GET /v1/stats, GET /v1/healthz, GET /v1/explain/{node}
// — whose micro-batcher coalesces concurrent single-event requests into
// one synchronous-link pass:
//
//	pipe := apan.StartPipeline(model, apan.WithQueueCap(256))
//	defer pipe.Shutdown(context.Background())
//	srv := apan.NewServer(pipe, apan.ServerOptions{})
//	defer srv.Close()
//	http.ListenAndServe(":7683", srv)
//
// The request/response schemas are documented in docs/serving.md; the
// README has the quickstart and benchmark table, and docs/architecture.md
// maps paper sections to packages.
package apan

import (
	"apan/internal/async"
	"apan/internal/core"
	"apan/internal/dataset"
	"apan/internal/gdb"
	"apan/internal/mailbox"
	"apan/internal/nn"
	"apan/internal/replica"
	"apan/internal/serve"
	"apan/internal/state"
	"apan/internal/tgraph"
	"apan/internal/train"
	"apan/internal/wal"
)

// Core model API.
type (
	// Config holds APAN hyper-parameters; zero values take the paper's
	// defaults (batch 200, lr 1e-4, 2 heads, 10 slots, 10 neighbors, k=2).
	Config = core.Config
	// Model is the full APAN system.
	Model = core.Model
	// Inference is a served batch's synchronous-link output.
	Inference = core.Inference
	// StreamResult aggregates a pass over an event stream.
	StreamResult = core.StreamResult
	// Explanation reports per-mail attention weights (paper §3.6).
	Explanation = core.Explanation
	// PositionalMode selects the mailbox positional encoding.
	PositionalMode = core.PositionalMode
	// Propagator is the asynchronous link (mail generation + delivery).
	Propagator = core.Propagator
)

// NewPropagator builds a standalone asynchronous-link propagator writing
// into mbox; Model wires one up internally — this constructor exists for
// benchmarks and custom pipelines.
var NewPropagator = core.NewPropagator

// Positional-encoding modes.
const (
	PositionalLearned = core.PositionalLearned
	PositionalTime    = core.PositionalTime
	PositionalNone    = core.PositionalNone
)

// New builds an APAN model with an in-process temporal graph store.
func New(cfg Config) (*Model, error) { return core.New(cfg) }

// NewWithDB builds an APAN model over a custom graph-database wrapper, e.g.
// one with a simulated latency model.
func NewWithDB(cfg Config, db *GraphDB) (*Model, error) { return core.NewWithDB(cfg, db) }

// Graph substrate.
type (
	// Event is one temporal interaction (v_i, v_j, e_ij, t).
	Event = tgraph.Event
	// NodeID identifies a node.
	NodeID = tgraph.NodeID
	// GraphStore is the pluggable temporal-graph backend interface; all
	// implementations answer the query surface identically (see
	// docs/testing.md for the proof obligations of a new backend).
	GraphStore = tgraph.Store
	// Graph is the flat single-mutex temporal graph store (callers
	// serialize writers against readers; Model does so internally).
	Graph = tgraph.Graph
	// ShardedGraph hash-partitions nodes across power-of-two partitions
	// with per-partition locks, so appliers and readers proceed in
	// parallel (Config.GraphBackend "sharded").
	ShardedGraph = tgraph.Sharded
	// RemoteGraph wraps another store with a simulated remote-RPC cost
	// model and per-hop batched gathers (Config.GraphBackend "remote-sim").
	RemoteGraph = gdb.Remote
	// RemoteGraphOptions configures NewRemoteGraph (latency model, whether
	// to actually sleep or only account).
	RemoteGraphOptions = gdb.RemoteOptions
	// GraphDB wraps a GraphStore with latency simulation and query
	// accounting.
	GraphDB = gdb.DB
	// LatencyModel maps a neighbor query to a simulated round-trip cost.
	LatencyModel = gdb.LatencyModel
	// Mailbox is the sharded, lock-striped per-node mail store backing a
	// Model (safe for concurrent delivery and readout).
	Mailbox = mailbox.Sharded
	// NodeState is the sharded, lock-striped per-node embedding store
	// backing a Model.
	NodeState = state.Sharded
)

// Graph-backend selectors for Config.GraphBackend; empty means flat.
const (
	GraphBackendFlat      = core.GraphBackendFlat
	GraphBackendSharded   = core.GraphBackendSharded
	GraphBackendRemoteSim = core.GraphBackendRemoteSim
)

// NewGraph creates an empty temporal graph over numNodes nodes.
func NewGraph(numNodes int) *Graph { return tgraph.New(numNodes) }

// NewShardedGraph creates a concurrency-safe temporal graph over numNodes
// nodes striped across parts partitions (rounded up to a power of two).
func NewShardedGraph(numNodes, parts int) *ShardedGraph { return tgraph.NewSharded(numNodes, parts) }

// NewRemoteGraph wraps inner with remote-RPC cost simulation.
func NewRemoteGraph(inner GraphStore, opts RemoteGraphOptions) *RemoteGraph {
	return gdb.NewRemote(inner, opts)
}

// NewGraphStore builds the store selected by cfg.GraphBackend — what New
// uses internally; exposed so custom GraphDB wiring can stay backend-aware.
func NewGraphStore(cfg Config) GraphStore { return core.NewGraphStore(cfg) }

// NewGraphDB wraps g with accounting and no latency.
func NewGraphDB(g GraphStore) *GraphDB { return gdb.New(g) }

// ConstantLatency returns a fixed per-query latency model.
var ConstantLatency = gdb.Constant

// PerItemLatency returns a base+per-item latency model.
var PerItemLatency = gdb.PerItem

// Datasets.
type (
	// Dataset is a chronologically sorted temporal interaction set.
	Dataset = dataset.Dataset
	// DatasetConfig scales and seeds the synthetic generators.
	DatasetConfig = dataset.Config
	// Split is a chronological train/val/test partition.
	Split = dataset.Split
	// NegSampler draws time-aware negative destinations.
	NegSampler = dataset.NegSampler
)

// Wikipedia generates the synthetic stand-in for the JODIE Wikipedia
// editing graph (see DESIGN.md §1 for the substitution rationale).
func Wikipedia(cfg DatasetConfig) *Dataset { return dataset.Wikipedia(cfg) }

// Reddit generates the synthetic stand-in for the JODIE Reddit graph.
func Reddit(cfg DatasetConfig) *Dataset { return dataset.Reddit(cfg) }

// Alipay generates the synthetic stand-in for the paper's industrial
// transaction dataset, including bursty fraud rings.
func Alipay(cfg DatasetConfig) *Dataset { return dataset.Alipay(cfg) }

// LoadCSV reads a real dataset in the JODIE CSV format
// (user,item,timestamp,state_label,features...).
var LoadCSV = dataset.LoadCSV

// SaveCSV writes a bipartite dataset in the JODIE CSV format, so synthetic
// streams can be consumed by other implementations.
var SaveCSV = dataset.SaveCSV

// NewNegSampler creates a negative sampler over numNodes nodes.
func NewNegSampler(numNodes int) *NegSampler { return dataset.NewNegSampler(numNodes) }

// Serving.
type (
	// Pipeline is the deployment architecture: synchronous scoring with
	// asynchronous propagation workers behind a bounded queue.
	Pipeline = async.Pipeline
	// PipelineStats is a point-in-time view of pipeline health.
	PipelineStats = async.Stats
	// PipelineOption configures StartPipeline (queue capacity, workers,
	// micro-batch window).
	PipelineOption = async.Option
	// SubmitResult is delivered by Pipeline.SubmitFuture.
	SubmitResult = async.Result
	// Server is the versioned HTTP/JSON serving surface (v1 endpoints)
	// over a Pipeline; it implements http.Handler.
	Server = serve.Server
	// ServerOptions tunes the server-side micro-batcher.
	ServerOptions = serve.Options
	// TenantConfig is a per-tenant admission contract: scheduling weight,
	// event-time rate limit, priority lane, and private queue depth.
	TenantConfig = async.TenantConfig
	// TenantStats is a tenant's admission ledger (submitted = applied +
	// dropped, with rate-limited drops broken out).
	TenantStats = async.TenantStats
)

// DefaultTenant is the tenant id unattributed traffic is accounted under
// when multi-tenant admission is enabled.
const DefaultTenant = async.DefaultTenant

// Pipeline options.
var (
	// WithQueueCap bounds the propagation queue (backpressure point).
	WithQueueCap = async.WithQueueCap
	// WithWorkers sets the number of asynchronous propagation workers.
	WithWorkers = async.WithWorkers
	// WithBatchWindow sets the micro-batching window the serving layer
	// coalesces concurrent single-event submissions within.
	WithBatchWindow = async.WithBatchWindow
	// WithOnlineTrainer taps the propagation workers' apply path to feed an
	// online trainer with every applied batch.
	WithOnlineTrainer = async.WithOnlineTrainer
	// WithTenants enables multi-tenant admission and registers per-tenant
	// contracts; unregistered tenants inherit the WithTenantDefaults
	// template.
	WithTenants = async.WithTenants
	// WithTenantDefaults enables multi-tenant admission and sets the
	// contract template unregistered tenants are admitted under.
	WithTenantDefaults = async.WithTenantDefaults
)

// Online continual learning (see docs/training.md).
type (
	// ParamSet is an immutable, versioned parameter snapshot — the unit of
	// hot-swappable weights (Model.SwapParams / Model.CurrentParams).
	ParamSet = nn.ParamSet
	// OnlineTrainer adapts a serving model to its own stream: it consumes
	// applied events off the propagation path, steps a private parameter
	// copy, and publishes new versions with holdout-gated hot swaps.
	OnlineTrainer = train.OnlineTrainer
	// TrainerConfig tunes an OnlineTrainer (buffer sizes, step cadence,
	// learning rate, holdout gate, rollback policy).
	TrainerConfig = train.Config
	// TrainerStats is a point-in-time view of trainer health.
	TrainerStats = train.Stats
)

// NewOnlineTrainer builds an online trainer over a model; wire it into the
// pipeline with WithOnlineTrainer and drive it with Start/Stop (or Pump for
// deterministic tests).
func NewOnlineTrainer(m *Model, cfg TrainerConfig) (*OnlineTrainer, error) {
	return train.New(m, cfg)
}

// Serving errors.
var (
	// ErrPipelineClosed is returned by Submit variants after Shutdown.
	ErrPipelineClosed = async.ErrClosed
	// ErrQueueFull is returned by TrySubmit instead of blocking.
	ErrQueueFull = async.ErrQueueFull
	// ErrRateLimited is returned by the Submit variants when a tenant's
	// event-time token bucket is spent (multi-tenant admission only).
	ErrRateLimited = async.ErrRateLimited
)

// Durability (write-ahead event log + checkpoints; docs/durability.md).
type (
	// WAL is the append-only, CRC-framed, segment-rotated write-ahead event
	// log. Attach one to a Model (Model.AttachWAL) and every applied batch
	// is logged at the serial apply point with group commit; recover a
	// crashed replica with Model.LoadCheckpointFile + Model.RecoverWAL.
	WAL = wal.Log
	// WALOptions configures OpenWAL (directory, fsync policy, segment size).
	WALOptions = wal.Options
	// WALPolicy selects when the log fsyncs (group, interval, none).
	WALPolicy = wal.Policy
	// WALStats is a point-in-time view of log health and volume.
	WALStats = wal.Stats
)

// Fsync policies.
const (
	// SyncGroup fsyncs every commit group before acknowledging it.
	SyncGroup = wal.SyncGroup
	// SyncInterval fsyncs on a background ticker (bounded-loss, default).
	SyncInterval = wal.SyncInterval
	// SyncNone never fsyncs; the OS page cache is the only durability.
	SyncNone = wal.SyncNone
)

// OpenWAL opens (or creates) the log in opts.Dir, truncating any torn tail
// left by a crash.
func OpenWAL(opts WALOptions) (*WAL, error) { return wal.Open(opts) }

// ParseSyncPolicy parses a -fsync flag value ("group", "interval", "none").
var ParseSyncPolicy = wal.ParsePolicy

// Warm-standby replication (log-shipped followers; docs/durability.md).
type (
	// CutStats is the accounting of one checkpoint cut: how many shards an
	// incremental cut copied versus aliased, and the apply-pause it cost.
	CutStats = core.CutStats
	// WALFaultInjector intercepts segment writes and fsyncs before they
	// reach the disk (WALOptions.Inject) — the storage fault-injection seam
	// the scenario harness drives.
	WALFaultInjector = wal.FaultInjector
	// WALShipper incrementally copies WAL segments to a ShipDest (a
	// follower's directory, or a network connection via ServeWALShip).
	WALShipper = wal.Shipper
	// WALShipOptions configures a WALShipper (Tail mode ships the live
	// segment, not just sealed ones).
	WALShipOptions = wal.ShipOptions
	// WALShipDest receives shipped segment chunks.
	WALShipDest = wal.ShipDest
	// WALDirDest is a WALShipDest that writes chunks into a directory.
	WALDirDest = wal.DirDest
	// Replica is a warm standby: it replays a leader's shipped WAL into a
	// checkpoint-restored model and can be promoted to leader exactly once.
	Replica = replica.Replica
	// ReplicaOptions configures NewFollower (the WAL options the replica
	// reopens its directory with at promotion).
	ReplicaOptions = replica.Options
)

// Replication errors.
var (
	// ErrAlreadyPromoted fences double promotion: every Replica.Promote
	// after the first returns it.
	ErrAlreadyPromoted = replica.ErrAlreadyPromoted
	// ErrReplicaPromoted is returned by Replica.PollOnce once the replica
	// is a leader and follower polling must stop.
	ErrReplicaPromoted = replica.ErrPromoted
)

// NewFollower wraps a checkpoint-restored model as a warm standby that
// replays the shipped WAL accumulating in dir (Replica.PollOnce).
func NewFollower(m *Model, dir string, opts ReplicaOptions) (*Replica, error) {
	return replica.NewFollower(m, dir, opts)
}

// NewWALShipper ships WAL segments from dir to dest on every ShipNow.
func NewWALShipper(dir string, dest WALShipDest, opts WALShipOptions) *WALShipper {
	return wal.NewShipper(dir, dest, opts)
}

// ServeWALShip accepts follower connections on ln and streams srcDir to
// each until stop closes; next supplies the leader's NextIndex for lag
// heartbeats.
var ServeWALShip = wal.ServeShip

// FollowWALShip receives one leader connection's shipped segments through
// dest, invoking onHeartbeat with the leader's NextIndex. Pass
// Replica.ShipDest (not a raw WALDirDest) when the destination directory
// belongs to a promotable follower: it fences chunk writes the instant
// promotion begins, so a still-alive ex-leader cannot corrupt the new
// leader's log.
var FollowWALShip = wal.FollowShip

// StartPipeline starts the serving pipeline over a trained model.
func StartPipeline(m *Model, opts ...PipelineOption) *Pipeline { return async.New(m, opts...) }

// NewServer exposes a started pipeline as the v1 HTTP/JSON API.
func NewServer(p *Pipeline, opts ServerOptions) *Server { return serve.New(p, opts) }

// NewPipeline starts the serving pipeline with a queue capacity.
//
// Deprecated: use StartPipeline(m, WithQueueCap(queueCap)).
func NewPipeline(m *Model, queueCap int) *Pipeline { return async.NewPipeline(m, queueCap) }
