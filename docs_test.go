package apan

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// mdLink matches inline Markdown links/images: [text](target). Reference
// definitions and autolinks are out of scope — the docs don't use them.
var mdLink = regexp.MustCompile(`\]\(([^)\s]+)\)`)

// TestDocLinks is the link check CI runs over README.md and docs/*.md:
// every relative link must point at a file or directory that exists in the
// repo (anchors are stripped; external schemes are skipped). It keeps the
// documentation suite from silently rotting as files move.
func TestDocLinks(t *testing.T) {
	var mds []string
	for _, pat := range []string{"*.md", "docs/*.md"} {
		m, err := filepath.Glob(pat)
		if err != nil {
			t.Fatal(err)
		}
		mds = append(mds, m...)
	}
	if len(mds) < 3 { // README.md, docs/serving.md, docs/architecture.md at minimum
		t.Fatalf("expected at least 3 markdown files, found %v", mds)
	}
	for _, md := range mds {
		raw, err := os.ReadFile(md)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range mdLink.FindAllStringSubmatch(string(raw), -1) {
			target := m[1]
			if strings.Contains(target, "://") || strings.HasPrefix(target, "mailto:") {
				continue // external; checked by humans, not CI (offline)
			}
			target, _, _ = strings.Cut(target, "#")
			if target == "" {
				continue // pure fragment link within the same file
			}
			resolved := filepath.Join(filepath.Dir(md), target)
			if _, err := os.Stat(resolved); err != nil {
				t.Errorf("%s: broken link %q (resolved %s)", md, m[1], resolved)
			}
		}
	}
}
