// Benchmarks regenerating the paper's tables and figures at reduced scale.
// Each benchmark maps to one table or figure of the evaluation section (see
// DESIGN.md §3); cmd/apan-bench runs the same experiments at larger scale
// with more seeds. Absolute numbers differ from the paper (CPU vs GPU,
// synthetic vs proprietary data); the benchmarks preserve the *shape*:
// which model wins, by roughly what factor, and where the curves stay flat.
package apan

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"apan/internal/bench"
)

func benchOpts() bench.Options {
	return bench.Options{
		Scale:     0.005,
		Seed:      1,
		Seeds:     1,
		Epochs:    2,
		BatchSize: 100,
		Fanout:    5,
		Slots:     5,
		Hidden:    48,
	}
}

// BenchmarkTable1Stats regenerates the dataset-statistics table.
func BenchmarkTable1Stats(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := bench.RunTable1(benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable2Wikipedia regenerates the Wikipedia link-prediction column
// over all twelve models.
func BenchmarkTable2Wikipedia(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := bench.RunTable2(benchOpts(), "wikipedia", nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable2Reddit regenerates the Reddit link-prediction column over
// the dynamic models (the static family is covered by the Wikipedia run).
func BenchmarkTable2Reddit(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := bench.RunTable2(benchOpts(), "reddit", bench.Table2StreamModels); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable3NodeClassification regenerates the Wikipedia dynamic
// node-classification column.
func BenchmarkTable3NodeClassification(b *testing.B) {
	b.ReportAllocs()
	o := benchOpts()
	o.Scale = 0.02 // ban labels are sparse; needs a larger slice
	for i := 0; i < b.N; i++ {
		if _, err := bench.RunTable3(o, "wikipedia", []string{"JODIE", "TGN", "APAN"}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable3EdgeClassification regenerates the Alipay fraud
// edge-classification column.
func BenchmarkTable3EdgeClassification(b *testing.B) {
	b.ReportAllocs()
	o := benchOpts()
	o.Scale = 0.02
	for i := 0; i < b.N; i++ {
		if _, err := bench.RunTable3(o, "alipay", []string{"JODIE", "TGN", "APAN"}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure6Inference regenerates the inference-latency vs AP scatter
// with a simulated graph-database round trip on the synchronous models'
// critical path.
func BenchmarkFigure6Inference(b *testing.B) {
	b.ReportAllocs()
	o := benchOpts()
	o.DBLatency = 100 * time.Microsecond
	for i := 0; i < b.N; i++ {
		fig, err := bench.RunFigure6(o, nil)
		if err != nil {
			b.Fatal(err)
		}
		report := func(model string) {
			for _, p := range fig.Points {
				if p.Model == model {
					b.ReportMetric(p.InferMs, model+"-ms/batch")
				}
			}
		}
		report("APAN-2layers")
		report("TGN-2layers")
	}
}

// BenchmarkFigure7Training regenerates the training-time vs AP scatter.
func BenchmarkFigure7Training(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := bench.RunFigure7(benchOpts(), nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure8BatchSize regenerates the batch-size robustness curves.
func BenchmarkFigure8BatchSize(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := bench.RunFigure8(benchOpts(), nil, []int{100, 200, 300}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure9Grid regenerates the slots × neighbors robustness grid
// (2×2 here; apan-bench runs the full 4×4).
func BenchmarkFigure9Grid(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := bench.RunFigure9(benchOpts(), []int{5, 10}, []int{5, 10}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblation regenerates the design-choice ablation of DESIGN.md §5
// (positional encoding, mail reduction, mailbox update rule, decoder, hops).
func BenchmarkAblation(b *testing.B) {
	b.ReportAllocs()
	o := benchOpts()
	o.Epochs = 1
	for i := 0; i < b.N; i++ {
		if _, err := bench.RunAblation(o); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDriftAblation quantifies the generator's preference-drift knob:
// the dynamics that separate temporal from static models.
func BenchmarkDriftAblation(b *testing.B) {
	b.ReportAllocs()
	o := benchOpts()
	o.Epochs = 1
	for i := 0; i < b.N; i++ {
		if _, err := bench.RunDriftAblation(o, []float64{0, 0.4}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkInferBatch measures the synchronous link alone: one batch of 200
// interactions scored with no graph access — the millisecond path the paper
// deploys online. pool=on is the serving configuration (pooled workspace,
// reusable tape, blocked kernels; zero steady-state allocations); pool=off
// allocates every buffer fresh per call, the pre-pooling baseline kept
// reachable via Config.NoWorkspacePool. Same arithmetic, different memory
// discipline — compare allocs/op and ns/op.
func BenchmarkInferBatch(b *testing.B) {
	ds := Wikipedia(DatasetConfig{Scale: 0.01, Seed: 1})
	for _, mode := range []string{"on", "off"} {
		b.Run("pool="+mode, func(b *testing.B) {
			b.ReportAllocs()
			m, err := New(Config{
				NumNodes: ds.NumNodes, EdgeDim: ds.EdgeDim, BatchSize: 200,
				NoWorkspacePool: mode == "off",
			})
			if err != nil {
				b.Fatal(err)
			}
			m.EvalStream(ds.Events[:1000], nil) // warm state and mailboxes
			batch := ds.Events[1000:1200]
			m.InferBatch(batch).Release() // warm the workspace pool
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m.InferBatch(batch).Release()
			}
			b.ReportMetric(float64(b.N)*float64(len(batch))/b.Elapsed().Seconds(), "ev/s")
		})
	}
}

// BenchmarkInferBatchParallel measures the synchronous link under the
// concurrent serving workload the sharded store layer exists for: G
// goroutines score batches while a background writer continuously runs the
// asynchronous link (state write-backs, graph inserts and 2-hop mail
// propagation against a graph database with a simulated 50µs round trip).
//
// locking=global reproduces the coarse discipline this repo used before the
// sharded stores: one RWMutex over all node state, read-held for a whole
// synchronous-link pass, write-held for a whole asynchronous-link pass —
// so every scorer stalls whenever the writer is in, including its graph-DB
// waits. locking=sharded is the current code: writers pin only the touched
// shard, graph waits happen under the graph mutex alone, and scoring never
// stops. Compare the ev/s metric; sharded should win clearly at ≥4
// goroutines and the gap widens with DB latency.
func BenchmarkInferBatchParallel(b *testing.B) {
	ds := Wikipedia(DatasetConfig{Scale: 0.01, Seed: 1})
	const batchLen = 50
	for _, mode := range []string{"global", "sharded"} {
		for _, goroutines := range []int{1, 4, 8} {
			b.Run(fmt.Sprintf("locking=%s/goroutines=%d", mode, goroutines), func(b *testing.B) {
				db := NewGraphDB(NewGraph(ds.NumNodes))
				db.Latency = ConstantLatency(50 * time.Microsecond)
				db.Sleep = true
				m, err := NewWithDB(Config{
					NumNodes: ds.NumNodes, EdgeDim: ds.EdgeDim,
					BatchSize: 200, Seed: 1,
				}, db)
				if err != nil {
					b.Fatal(err)
				}
				db.Sleep = false
				m.EvalStream(ds.Events[:1000], nil) // warm state and mailboxes
				db.Sleep = true
				batch := ds.Events[1000 : 1000+batchLen]

				// The pre-sharding global store lock, emulated around the
				// public API exactly as the old Model held it internally.
				var global sync.RWMutex
				score := func() { m.InferBatch(batch).Release() }
				apply := func(inf *Inference) { m.ApplyInference(inf) }
				if mode == "global" {
					score = func() {
						global.RLock()
						m.InferBatch(batch).Release()
						global.RUnlock()
					}
					apply = func(inf *Inference) {
						global.Lock()
						m.ApplyInference(inf)
						global.Unlock()
					}
				}

				// Background asynchronous-link writer (the propagation
				// worker of async.Pipeline).
				stop := make(chan struct{})
				var writerWG sync.WaitGroup
				writerWG.Add(1)
				go func() {
					defer writerWG.Done()
					inf := m.InferBatch(batch)
					for {
						select {
						case <-stop:
							return
						default:
						}
						apply(inf)
					}
				}()

				b.ReportAllocs()
				b.ResetTimer()
				var next atomic.Int64
				var wg sync.WaitGroup
				for g := 0; g < goroutines; g++ {
					wg.Add(1)
					go func() {
						defer wg.Done()
						for next.Add(1) <= int64(b.N) {
							score()
						}
					}()
				}
				wg.Wait()
				b.StopTimer()
				close(stop)
				writerWG.Wait()
				b.ReportMetric(float64(b.N)*batchLen/b.Elapsed().Seconds(), "ev/s")
			})
		}
	}
}

// BenchmarkPropagateBatch measures the asynchronous link alone: graph
// insert plus 2-hop mail propagation for a 200-event batch.
func BenchmarkPropagateBatch(b *testing.B) {
	ds := Wikipedia(DatasetConfig{Scale: 0.01, Seed: 1})
	m, err := New(Config{NumNodes: ds.NumNodes, EdgeDim: ds.EdgeDim, BatchSize: 200})
	if err != nil {
		b.Fatal(err)
	}
	m.EvalStream(ds.Events[:1000], nil)
	batch := ds.Events[1000:1200]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		snap := m.SnapshotRuntime()
		inf := m.InferBatch(batch)
		b.StartTimer()
		m.ApplyInference(inf)
		b.StopTimer()
		inf.Release()
		m.RestoreRuntime(snap)
		b.StartTimer()
	}
}

// BenchmarkPropagateMailScratch isolates the ProcessBatch allocation fix:
// the propagator now keeps its inbox map, accumulator freelist and one
// per-event mail buffer across batches (scratch=reused), where it used to
// allocate a mail slice per event and a map + accumulator set per batch —
// reproduced by swapping in a brand-new Propagator every iteration
// (scratch=fresh). Mailbox deliveries are identical either way; compare
// B/op and allocs/op for the before/after delta.
func BenchmarkPropagateMailScratch(b *testing.B) {
	ds := Wikipedia(DatasetConfig{Scale: 0.01, Seed: 1})
	for _, hops := range []int{1, 2} {
		for _, mode := range []string{"reused", "fresh"} {
			b.Run(fmt.Sprintf("hops=%d/scratch=%s", hops, mode), func(b *testing.B) {
				m, err := New(Config{NumNodes: ds.NumNodes, EdgeDim: ds.EdgeDim, BatchSize: 200, Hops: hops})
				if err != nil {
					b.Fatal(err)
				}
				m.EvalStream(ds.Events[:1000], nil)
				batch := ds.Events[1000:1200]
				prop := m.Propagator()
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if mode == "fresh" {
						b.StopTimer()
						prop = NewPropagator(m.Cfg, m.DB(), m.Mailbox())
						b.StartTimer()
					}
					prop.ProcessBatch(batch, m.State())
				}
			})
		}
	}
}
