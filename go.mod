module apan

go 1.24
