package wal

import (
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"apan/internal/tgraph"
)

// TestTruncateRacingAppends: TruncateBefore running concurrently with
// appends and Syncs (the shape of a checkpoint cut finishing while the
// stream keeps flowing) must neither lose acknowledged records above the
// watermark nor break the segment chain. Run under -race in CI.
func TestTruncateRacingAppends(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(Options{Dir: dir, Policy: SyncNone, SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}

	const batches = 120
	var wg sync.WaitGroup
	wg.Add(2)
	watermarks := make(chan uint64, batches)
	go func() {
		defer wg.Done()
		defer close(watermarks)
		for i := 0; i < batches; i++ {
			if err := l.Begin(mkBatch(i*3, 3)).Wait(); err != nil {
				t.Errorf("append %d: %v", i, err)
				return
			}
			if i%10 == 0 {
				// A durability cut pins a watermark at a batch boundary.
				watermarks <- uint64((i + 1) * 3)
			}
		}
	}()
	go func() {
		defer wg.Done()
		for wm := range watermarks {
			if _, err := l.TruncateBefore(wm); err != nil {
				t.Errorf("truncate at %d: %v", wm, err)
				return
			}
		}
	}()
	wg.Wait()
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen and replay from the last pinned watermark: everything above
	// it must still be there, contiguous.
	l2, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	first := l2.Stats().FirstIndex
	got := replayAll(t, l2, first)
	wantRecords := batches - int(first)/3
	if len(got) != wantRecords {
		t.Fatalf("replayed %d records from %d, want %d", len(got), first, wantRecords)
	}
}

// TestAbandonDuringActiveFlushGroup: Abandon landing while a flush group
// is mid-write (leader inside writeGroup, holding fileMu) must neither
// deadlock nor lose the in-flight group — its Wait already promised
// durability, and Abandon's file close queues behind the write. The fault
// injector makes the interleaving deterministic: the write hook parks the
// leader until Abandon has been issued.
func TestAbandonDuringActiveFlushGroup(t *testing.T) {
	dir := t.TempDir()
	var once sync.Once
	inWrite := make(chan struct{})
	abandonIssued := make(chan struct{})
	l, err := Open(Options{Dir: dir, Policy: SyncGroup, Inject: &FaultInjector{
		BeforeWrite: func(string, int64, int) error {
			once.Do(func() {
				close(inWrite)
				<-abandonIssued
			})
			return nil
		},
	}})
	if err != nil {
		t.Fatal(err)
	}
	commit := l.Begin(mkBatch(0, 50))
	waitErr := make(chan error, 1)
	go func() { waitErr <- commit.Wait() }()
	<-inWrite // leader is inside writeGroup with fileMu held

	abandonDone := make(chan struct{})
	go func() {
		l.Abandon()
		close(abandonDone)
	}()
	time.Sleep(10 * time.Millisecond) // let Abandon latch closed and block on fileMu
	close(abandonIssued)

	if err := <-waitErr; err != nil {
		t.Fatalf("in-flight group's Wait: %v", err)
	}
	select {
	case <-abandonDone:
	case <-time.After(5 * time.Second):
		t.Fatal("Abandon deadlocked against the active flush group")
	}

	l2, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	records := replayAll(t, l2, 0)
	if len(records) != 1 || len(records[0]) != 50 {
		t.Fatalf("recovered %d records, want the 1 acknowledged in-flight batch of 50 events", len(records))
	}
}

// TestReplayAtSegmentBoundary: replay (and follower polls) starting exactly
// at a sealed segment's first index deliver from that record with nothing
// skipped and nothing duplicated.
func TestReplayAtSegmentBoundary(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(Options{Dir: dir, Policy: SyncGroup, SegmentBytes: 300})
	if err != nil {
		t.Fatal(err)
	}
	var want [][]tgraph.Event
	for i := 0; i < 30; i++ {
		b := mkBatch(i*2, 2)
		want = append(want, b)
		if err := l.Begin(b).Wait(); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	segs, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 3 {
		t.Fatalf("only %d segments, need ≥ 3 for a boundary test", len(segs))
	}
	boundary := segs[1].first
	if boundary%2 != 0 {
		t.Fatalf("segment boundary %d is not a batch boundary", boundary)
	}

	l2, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	got := replayAll(t, l2, boundary)
	wantFrom := want[boundary/2:]
	if len(got) != len(wantFrom) {
		t.Fatalf("replayed %d records from boundary %d, want %d", len(got), boundary, len(wantFrom))
	}
	for i := range got {
		if !eventsBitEqual(got[i], wantFrom[i]) {
			t.Fatalf("record %d mismatch", i)
		}
	}

	f, err := OpenFollower(dir, boundary)
	if err != nil {
		t.Fatal(err)
	}
	polled := 0
	if _, err := f.Poll(func(uint64, []tgraph.Event) error { polled++; return nil }); err != nil {
		t.Fatal(err)
	}
	if polled != len(wantFrom) {
		t.Fatalf("follower from boundary delivered %d, want %d", polled, len(wantFrom))
	}
}

// TestSealedSegmentCorruption: a bit flip inside a sealed (non-newest)
// segment must fail Open loudly — only the newest segment may be torn —
// and a follower must park before the damage rather than skip it.
func TestSealedSegmentCorruption(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(Options{Dir: dir, Policy: SyncGroup, SegmentBytes: 300})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		if err := l.Begin(mkBatch(i*2, 2)).Wait(); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	segs, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 2 {
		t.Fatalf("need ≥ 2 segments, got %d", len(segs))
	}
	// Flip one payload byte mid-way through the first (sealed) segment.
	data, err := os.ReadFile(segs[0].path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xFF
	if err := os.WriteFile(segs[0].path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	if _, err := Open(Options{Dir: dir}); err == nil || !strings.Contains(err.Error(), "torn record inside the log") {
		t.Fatalf("Open on sealed-segment corruption: err=%v, want torn-record-inside-log", err)
	}

	f, err := OpenFollower(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	before := -1
	for poll := 0; poll < 2; poll++ {
		n, perr := f.Poll(func(uint64, []tgraph.Event) error { return nil })
		if perr != nil {
			t.Fatalf("follower poll on corrupt sealed segment: %v", perr)
		}
		if before >= 0 && n != 0 {
			t.Fatalf("follower advanced past corruption: %d new records", n)
		}
		before = n
	}
	if f.Cursor() >= segs[1].first {
		t.Fatalf("follower cursor %d crossed the damaged segment into %d", f.Cursor(), segs[1].first)
	}
}
