package wal

import (
	"fmt"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"
	"testing/quick"

	"apan/internal/tgraph"
)

// randEvents draws a batch with adversarial float payloads: NaNs, infs,
// denormals and negative zero must all round-trip bit-exactly.
func randEvents(rng *rand.Rand, n int) []tgraph.Event {
	specials64 := []float64{0, math.Copysign(0, -1), math.Inf(1), math.Inf(-1), math.NaN(), 5e-324}
	specials32 := []float32{0, float32(math.Copysign(0, -1)), float32(math.Inf(1)), float32(math.Inf(-1)), float32(math.NaN()), 1e-45}
	evs := make([]tgraph.Event, n)
	for i := range evs {
		ev := &evs[i]
		ev.Src = tgraph.NodeID(rng.Int31())
		ev.Dst = tgraph.NodeID(rng.Int31())
		if rng.Intn(4) == 0 {
			ev.Time = specials64[rng.Intn(len(specials64))]
		} else {
			ev.Time = rng.NormFloat64() * 1e6
		}
		ev.Label = int8(rng.Intn(3) - 1)
		ev.Feat = make([]float32, rng.Intn(8))
		for j := range ev.Feat {
			if rng.Intn(4) == 0 {
				ev.Feat[j] = specials32[rng.Intn(len(specials32))]
			} else {
				ev.Feat[j] = float32(rng.NormFloat64())
			}
		}
	}
	return evs
}

// eventsBitEqual compares events by bit pattern, so NaN == NaN.
func eventsBitEqual(a, b []tgraph.Event) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		x, y := &a[i], &b[i]
		if x.Src != y.Src || x.Dst != y.Dst || x.Label != y.Label {
			return false
		}
		if math.Float64bits(x.Time) != math.Float64bits(y.Time) {
			return false
		}
		if len(x.Feat) != len(y.Feat) {
			return false
		}
		for j := range x.Feat {
			if math.Float32bits(x.Feat[j]) != math.Float32bits(y.Feat[j]) {
				return false
			}
		}
	}
	return true
}

// TestQuickRecordRoundTrip: encode/decode is bit-exact for arbitrary
// batches, including special float values.
func TestQuickRecordRoundTrip(t *testing.T) {
	f := func(seed int64, nRaw uint8, first uint64) bool {
		rng := rand.New(rand.NewSource(seed))
		evs := randEvents(rng, int(nRaw)%40)
		buf := appendRecord(nil, first, evs)
		payload := buf[frameHeaderSize:]
		if int(le.Uint32(buf[:4])) != len(payload) {
			return false
		}
		gotFirst, got, err := decodeRecord(payload)
		if err != nil {
			t.Logf("decode: %v", err)
			return false
		}
		return gotFirst == first && eventsBitEqual(evs, got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickRecordRoundTripAppended: records framed back to back into one
// warmed buffer decode independently (the group-commit write shape).
func TestQuickRecordRoundTripAppended(t *testing.T) {
	f := func(seed int64, aRaw, bRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randEvents(rng, int(aRaw)%20+1)
		b := randEvents(rng, int(bRaw)%20+1)
		buf := appendRecord(nil, 10, a)
		cut := len(buf)
		buf = appendRecord(buf, 10+uint64(len(a)), b)
		_, gotA, errA := decodeRecord(buf[frameHeaderSize:cut])
		_, gotB, errB := decodeRecord(buf[cut+frameHeaderSize:])
		return errA == nil && errB == nil && eventsBitEqual(a, gotA) && eventsBitEqual(b, gotB)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// writeTestLog appends batches to a fresh log in dir and closes it,
// returning the batches for comparison.
func writeTestLog(t testing.TB, dir string, seed int64, batches, perBatch int) [][]tgraph.Event {
	t.Helper()
	l, err := Open(Options{Dir: dir, Policy: SyncGroup})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	out := make([][]tgraph.Event, batches)
	for i := range out {
		out[i] = randEvents(rng, perBatch)
		if err := l.Begin(out[i]).Wait(); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	return out
}

// replayAll collects every record at/after from.
func replayAll(t *testing.T, l *Log, from uint64) [][]tgraph.Event {
	t.Helper()
	var got [][]tgraph.Event
	if err := l.Replay(from, func(first uint64, events []tgraph.Event) error {
		got = append(got, events)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return got
}

// TestTornTailTruncation: cut the newest segment at EVERY byte offset past
// the last intact prefix and confirm Open recovers exactly the records
// whose frames survived whole — no panic, no lost intact record, no
// resurrected partial record.
func TestTornTailTruncation(t *testing.T) {
	dir := t.TempDir()
	want := writeTestLog(t, dir, 11, 6, 5)

	segs, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 1 {
		t.Fatalf("expected 1 segment, got %d", len(segs))
	}
	full, err := os.ReadFile(segs[0].path)
	if err != nil {
		t.Fatal(err)
	}

	// Record boundaries within the file, derived from the frames.
	bounds := []int{segHeaderSize}
	for off := segHeaderSize; off < len(full); {
		n := int(le.Uint32(full[off:]))
		off += frameHeaderSize + n
		bounds = append(bounds, off)
	}
	intactAt := func(size int) int {
		k := 0
		for k+1 < len(bounds) && bounds[k+1] <= size {
			k++
		}
		return k
	}

	for size := 0; size <= len(full); size++ {
		trimmed := full[:size]
		sub := filepath.Join(dir, "cut")
		if err := os.MkdirAll(sub, 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(sub, filepath.Base(segs[0].path)), trimmed, 0o644); err != nil {
			t.Fatal(err)
		}
		l, err := Open(Options{Dir: sub})
		if err != nil {
			t.Fatalf("size %d: %v", size, err)
		}
		got := replayAll(t, l, 0)
		wantK := 0
		if size >= segHeaderSize {
			wantK = intactAt(size)
		}
		if len(got) != wantK {
			t.Fatalf("size %d: recovered %d records, want %d", size, len(got), wantK)
		}
		for i := range got {
			if !eventsBitEqual(got[i], want[i]) {
				t.Fatalf("size %d: record %d mismatch", size, i)
			}
		}
		if wantN := uint64(wantK * 5); l.NextIndex() != wantN {
			t.Fatalf("size %d: next index %d, want %d", size, l.NextIndex(), wantN)
		}
		l.Close()
		if err := os.RemoveAll(sub); err != nil {
			t.Fatal(err)
		}
	}
}

// TestTornTailGarbageAppend: random garbage glued after the intact log is
// cut away and appends resume at the right index.
func TestTornTailGarbageAppend(t *testing.T) {
	dir := t.TempDir()
	want := writeTestLog(t, dir, 5, 4, 3)
	segs, _ := listSegments(dir)
	f, err := os.OpenFile(segs[0].path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(99))
	junk := make([]byte, 37)
	rng.Read(junk)
	if _, err := f.Write(junk); err != nil {
		t.Fatal(err)
	}
	f.Close()

	l, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	got := replayAll(t, l, 0)
	if len(got) != len(want) {
		t.Fatalf("recovered %d records, want %d", len(got), len(want))
	}
	// Appends continue cleanly after the truncation.
	evs := randEvents(rng, 2)
	if err := l.Begin(evs).Wait(); err != nil {
		t.Fatal(err)
	}
	if l.NextIndex() != 14 {
		t.Fatalf("next index %d, want 14", l.NextIndex())
	}
}

// TestCorruptionClassification: a bit flip in the newest segment is
// indistinguishable from a torn tail and truncates (the loss is visible as
// NextIndex falling behind the watermark); the same flip in a sealed,
// older segment is fatal at Open — acknowledged history with a hole in it
// must not be resurrected.
func TestCorruptionClassification(t *testing.T) {
	t.Run("newest segment truncates", func(t *testing.T) {
		dir := t.TempDir()
		writeTestLog(t, dir, 3, 5, 4)
		segs, _ := listSegments(dir)
		data, _ := os.ReadFile(segs[0].path)
		data[segHeaderSize+frameHeaderSize+3] ^= 0x40 // record 0's payload
		if err := os.WriteFile(segs[0].path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		l, err := Open(Options{Dir: dir})
		if err != nil {
			t.Fatal(err)
		}
		defer l.Close()
		// Everything from the flipped record on is cut away; the shortfall
		// against a checkpoint watermark of, say, 8 is visible here.
		if l.NextIndex() != 0 {
			t.Fatalf("durable end %d, want 0 after truncation at record 0", l.NextIndex())
		}
	})
	t.Run("sealed segment is fatal", func(t *testing.T) {
		dir := t.TempDir()
		l, err := Open(Options{Dir: dir, SegmentBytes: 128})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 12; i++ {
			if err := l.Begin(mkBatch(i*5, 3)).Wait(); err != nil {
				t.Fatal(err)
			}
		}
		if st := l.Stats(); st.Segments < 2 {
			t.Fatalf("need ≥2 segments, got %d", st.Segments)
		}
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}
		segs, _ := listSegments(dir)
		data, _ := os.ReadFile(segs[0].path)
		data[segHeaderSize+frameHeaderSize+3] ^= 0x40
		if err := os.WriteFile(segs[0].path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := Open(Options{Dir: dir}); err == nil {
			t.Fatal("Open across a corrupted sealed segment should fail")
		}
	})
}

// FuzzFrame: the segment scanner must never panic and must classify any
// byte soup as some mix of intact records, a torn tail, or a fatal error.
func FuzzFrame(f *testing.F) {
	dir := f.TempDir()
	writeTestLog(f, dir, 21, 3, 4)
	segs, _ := listSegments(dir)
	good, _ := os.ReadFile(segs[0].path)
	f.Add(good)
	f.Add(good[:len(good)-5])
	f.Add([]byte(segMagic))
	f.Add([]byte{})
	scratch, err := os.MkdirTemp("", "walfuzz")
	if err != nil {
		f.Fatal(err)
	}
	f.Cleanup(func() { os.RemoveAll(scratch) })
	var ctr atomic.Int64
	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(scratch, fmt.Sprintf("fuzz-%d.seg", ctr.Add(1)))
		defer os.Remove(path)
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Skip()
		}
		end, cursor, torn, err := scanSegment(path, 0, 0, func(first uint64, events []tgraph.Event) error {
			return nil
		})
		if err == nil && end < segHeaderSize {
			t.Fatalf("intact scan ended at %d, before the header", end)
		}
		if err == nil && int64(len(data)) < end {
			t.Fatalf("scan end %d past file size %d", end, len(data))
		}
		_ = cursor
		_ = torn
	})
}
