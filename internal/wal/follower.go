package wal

import (
	"bufio"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"

	"apan/internal/tgraph"
)

// Follower incrementally tails a shipped WAL directory, delivering each
// newly intact record exactly once, in log order. Unlike Replay — a
// one-shot pass over a finished log — Poll is built to be called forever
// against a directory that is still growing: an incomplete or torn tail is
// not an error, it is simply where this poll stops and the next one
// resumes. The same strictness as Replay applies to what is delivered:
// the first record at or above the start watermark must begin exactly
// there, and indices must be contiguous from then on.
//
// Not safe for concurrent use; the replica's single control loop owns it.
type Follower struct {
	dir    string
	cursor uint64 // next record index to deliver

	seg     segInfo // segment currently being scanned
	off     int64   // byte offset of the first unconsumed frame in seg
	hasSeg  bool
	started bool // first record delivered (start-gap check done)
}

// OpenFollower returns a follower that will deliver records starting at
// log index from — the caller's checkpoint watermark. The directory may
// not exist yet; Poll treats that as an empty log.
func OpenFollower(dir string, from uint64) (*Follower, error) {
	if dir == "" {
		return nil, errors.New("wal: follower dir required")
	}
	return &Follower{dir: dir, cursor: from}, nil
}

// Cursor returns the next record index the follower expects — equivalently,
// the number of events it has durably applied counting from log index 0.
func (f *Follower) Cursor() uint64 { return f.cursor }

// Poll scans forward from where the previous Poll stopped, invoking fn for
// every intact record at or above the watermark, and returns the number of
// records delivered. A partial frame, torn record, or not-yet-shipped
// successor segment ends the poll without error; real corruption of
// already-contiguous history (decode failure after a CRC pass, an index
// gap) is an error. fn errors abort the poll and are returned verbatim.
func (f *Follower) Poll(fn func(first uint64, events []tgraph.Event) error) (int, error) {
	delivered := 0
	for {
		if !f.hasSeg {
			ok, err := f.locateSegment()
			if err != nil || !ok {
				return delivered, err
			}
		}
		n, cont, err := f.scanFrom(fn)
		delivered += n
		if err != nil || !cont {
			return delivered, err
		}
		// Clean end of the current segment: advance iff a successor holding
		// the cursor has been shipped; otherwise wait for more bytes here.
		segs, err := listSegments(f.dir)
		if err != nil {
			return delivered, err
		}
		var next *segInfo
		for i := range segs {
			if segs[i].first > f.seg.first {
				next = &segs[i]
				break
			}
		}
		if next == nil || next.first > f.cursor {
			// No successor yet (or it starts past our cursor, meaning this
			// segment still owes us records): park and re-poll later.
			return delivered, nil
		}
		f.seg, f.off = *next, 0
	}
}

// locateSegment picks the segment covering the cursor: the last one whose
// first index is ≤ cursor. Returns false (no error) when nothing shipped
// yet covers it.
func (f *Follower) locateSegment() (bool, error) {
	segs, err := listSegments(f.dir)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return false, nil
		}
		return false, err
	}
	idx := -1
	for i := range segs {
		if segs[i].first <= f.cursor {
			idx = i
		}
	}
	if idx < 0 {
		if len(segs) > 0 && !f.started {
			// The oldest shipped segment starts past the watermark. For a
			// fresh follower that is a forward gap the leader's AlignTo
			// created below the checkpoint watermark — wait for nothing;
			// records at the watermark will arrive in that first segment.
			// If its records begin past the cursor, scanFrom reports the
			// gap as an error.
			idx = 0
		} else if len(segs) > 0 {
			return false, fmt.Errorf("wal: follower: shipped log starts at %d, past cursor %d", segs[0].first, f.cursor)
		} else {
			return false, nil
		}
	}
	f.seg, f.off, f.hasSeg = segs[idx], 0, true
	return true, nil
}

// scanFrom reads intact frames from f.seg starting at f.off. Returns
// cont=true on a clean segment end (caller may advance to a successor),
// cont=false when parked on a torn/incomplete tail.
func (f *Follower) scanFrom(fn func(first uint64, events []tgraph.Event) error) (delivered int, cont bool, err error) {
	file, err := os.Open(f.seg.path)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return 0, false, nil // re-ship hasn't recreated it yet
		}
		return 0, false, err
	}
	defer file.Close()

	if f.off == 0 {
		var hdr [segHeaderSize]byte
		if _, err := io.ReadFull(file, hdr[:]); err != nil {
			return 0, false, nil // header bytes still in flight
		}
		if string(hdr[:4]) != segMagic {
			return 0, false, fmt.Errorf("wal: follower: %s: bad magic %q", filepath.Base(f.seg.path), hdr[:4])
		}
		if v := le.Uint32(hdr[4:]); v != segVersion {
			return 0, false, fmt.Errorf("wal: follower: %s: unsupported version %d", filepath.Base(f.seg.path), v)
		}
		if first := le.Uint64(hdr[8:]); first != f.seg.first {
			return 0, false, fmt.Errorf("wal: follower: %s: header index %d disagrees with name", filepath.Base(f.seg.path), first)
		}
		f.off = segHeaderSize
	}
	if _, err := file.Seek(f.off, io.SeekStart); err != nil {
		return 0, false, err
	}
	br := bufio.NewReaderSize(file, 1<<20)

	var frame [frameHeaderSize]byte
	var payload []byte
	for {
		if _, err := io.ReadFull(br, frame[:]); err != nil {
			return delivered, err == io.EOF, nil // clean end vs partial header
		}
		n := le.Uint32(frame[:])
		if n > maxPayloadBytes {
			return delivered, false, nil // garbage length: park until overwritten or promoted
		}
		if cap(payload) < int(n) {
			payload = make([]byte, n)
		}
		payload = payload[:n]
		if _, err := io.ReadFull(br, payload); err != nil {
			return delivered, false, nil // payload bytes still in flight
		}
		if crc32.Checksum(payload, crcTable) != le.Uint32(frame[4:]) {
			return delivered, false, nil // mid-overwrite or torn: wait
		}
		first, events, derr := decodeRecord(payload)
		if derr != nil {
			return delivered, false, fmt.Errorf("wal: follower: %s at offset %d: %w", filepath.Base(f.seg.path), f.off, derr)
		}
		end := first + uint64(len(events))
		switch {
		case end <= f.cursor:
			// Wholly below the watermark (or already applied): skip.
		case first < f.cursor:
			return delivered, false, fmt.Errorf("wal: follower: cursor %d falls inside record [%d,%d)", f.cursor, first, end)
		case first > f.cursor:
			return delivered, false, fmt.Errorf("wal: follower: replay gap: record at %d, cursor is %d", first, f.cursor)
		default:
			if err := fn(first, events); err != nil {
				return delivered, false, err
			}
			f.cursor = end
			f.started = true
			delivered++
		}
		f.off += int64(frameHeaderSize) + int64(len(payload))
	}
}
