package wal

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"apan/internal/tgraph"
)

func mkBatch(base int, n int) []tgraph.Event {
	evs := make([]tgraph.Event, n)
	for i := range evs {
		evs[i] = tgraph.Event{
			Src:  tgraph.NodeID(base + i),
			Dst:  tgraph.NodeID(base + i + 1),
			Time: float64(base + i),
			Feat: []float32{float32(base), float32(i)},
		}
	}
	return evs
}

// TestAppendReplayAcrossReopen: a log written, closed and reopened replays
// every batch with original boundaries and contiguous indices.
func TestAppendReplayAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	want := writeTestLog(t, dir, 3, 8, 6)

	l, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if l.NextIndex() != 48 {
		t.Fatalf("next index %d, want 48", l.NextIndex())
	}
	idx := uint64(0)
	got := 0
	if err := l.Replay(0, func(first uint64, events []tgraph.Event) error {
		if first != idx {
			return fmt.Errorf("record at %d, want %d", first, idx)
		}
		if !eventsBitEqual(events, want[got]) {
			return fmt.Errorf("record %d content mismatch", got)
		}
		idx = first + uint64(len(events))
		got++
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if got != len(want) {
		t.Fatalf("replayed %d records, want %d", got, len(want))
	}
}

// TestReplayFromWatermark: records wholly below the watermark are skipped;
// the first delivered one starts exactly at it.
func TestReplayFromWatermark(t *testing.T) {
	dir := t.TempDir()
	writeTestLog(t, dir, 7, 5, 4) // records at 0,4,8,12,16
	l, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	var firsts []uint64
	if err := l.Replay(8, func(first uint64, events []tgraph.Event) error {
		firsts = append(firsts, first)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(firsts) != 3 || firsts[0] != 8 {
		t.Fatalf("replayed %v, want [8 12 16]", firsts)
	}
	// A watermark inside a record is a protocol violation, not a skip.
	if err := l.Replay(6, func(uint64, []tgraph.Event) error { return nil }); err == nil {
		t.Fatal("watermark inside a record should fail")
	}
	// A watermark past the end replays nothing.
	if err := l.Replay(20, func(uint64, []tgraph.Event) error {
		return fmt.Errorf("unexpected record")
	}); err != nil {
		t.Fatal(err)
	}
}

// TestGroupCommitConcurrent: many appenders, every commit acknowledged,
// replay returns every event exactly once in index order.
func TestGroupCommitConcurrent(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(Options{Dir: dir, Policy: SyncGroup})
	if err != nil {
		t.Fatal(err)
	}
	const workers, perWorker = 8, 25
	var mu sync.Mutex
	total := 0
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < perWorker; i++ {
				n := rng.Intn(5) + 1
				c := l.Begin(mkBatch(w*1000+i, n))
				if err := c.Wait(); err != nil {
					t.Errorf("worker %d: %v", w, err)
					return
				}
				mu.Lock()
				total += n
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if l2.NextIndex() != uint64(total) {
		t.Fatalf("durable end %d, want %d", l2.NextIndex(), total)
	}
	idx := uint64(0)
	if err := l2.Replay(0, func(first uint64, events []tgraph.Event) error {
		if first != idx {
			return fmt.Errorf("record at %d, want %d", first, idx)
		}
		idx += uint64(len(events))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	st := l2.Stats()
	if st.AppendedEvents != 0 { // fresh handle: counters are per-process
		t.Fatalf("fresh log reports %d appended events", st.AppendedEvents)
	}
}

// TestSegmentRotationAndTruncate: a tiny segment budget forces rotation;
// TruncateBefore drops exactly the segments behind the watermark and
// replay from the watermark still works.
func TestSegmentRotationAndTruncate(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(Options{Dir: dir, SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		if err := l.Begin(mkBatch(i*10, 3)).Wait(); err != nil {
			t.Fatal(err)
		}
	}
	st := l.Stats()
	if st.Segments < 3 {
		t.Fatalf("expected rotation, got %d segments", st.Segments)
	}

	watermark := uint64(45) // mid-log checkpoint
	removed, err := l.TruncateBefore(watermark)
	if err != nil {
		t.Fatal(err)
	}
	if removed == 0 {
		t.Fatal("expected at least one segment removed")
	}
	if first := l.Stats().FirstIndex; first > watermark {
		t.Fatalf("first durable index %d is past the watermark %d", first, watermark)
	}
	idx := watermark
	if err := l.Replay(watermark, func(first uint64, events []tgraph.Event) error {
		if first != idx {
			return fmt.Errorf("record at %d, want %d", first, idx)
		}
		idx += uint64(len(events))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if idx != 90 {
		t.Fatalf("replay ended at %d, want 90", idx)
	}
	// Everything before the surviving segments is gone: replaying from 0
	// must refuse (gap), not silently start late.
	if err := l.Replay(0, func(uint64, []tgraph.Event) error { return nil }); err == nil {
		t.Fatal("replay below the truncation point should fail")
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: the chain with a truncated head is still valid.
	l2, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if l2.NextIndex() != 90 {
		t.Fatalf("reopened end %d, want 90", l2.NextIndex())
	}
	l2.Close()
}

// TestAlignToGap: a checkpoint ahead of the durable log leaves a legal gap
// that replay-from-watermark never reads; replaying from before it fails.
func TestAlignToGap(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Begin(mkBatch(0, 4)).Wait(); err != nil {
		t.Fatal(err)
	}
	// Checkpoint at watermark 10 while only 4 events are durable.
	if err := l.AlignTo(10); err != nil {
		t.Fatal(err)
	}
	if err := l.Begin(mkBatch(50, 3)).Wait(); err != nil {
		t.Fatal(err)
	}
	if err := l.AlignTo(5); err == nil {
		t.Fatal("AlignTo behind the log should fail")
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if l2.NextIndex() != 13 {
		t.Fatalf("end %d, want 13", l2.NextIndex())
	}
	var firsts []uint64
	if err := l2.Replay(10, func(first uint64, events []tgraph.Event) error {
		firsts = append(firsts, first)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(firsts) != 1 || firsts[0] != 10 {
		t.Fatalf("replayed %v, want [10]", firsts)
	}
	if err := l2.Replay(4, func(uint64, []tgraph.Event) error { return nil }); err == nil {
		t.Fatal("replay across an aligned gap should fail")
	}
}

// TestAbandonLosesOnlyUnflushed: Abandon (simulated crash) preserves every
// acknowledged group; an un-waited Begin may or may not survive, but never
// partially.
func TestAbandonLosesOnlyUnflushed(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(Options{Dir: dir, Policy: SyncGroup})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := l.Begin(mkBatch(i, 2)).Wait(); err != nil {
			t.Fatal(err)
		}
	}
	l.Begin(mkBatch(100, 2)) // buffered, never waited: lost with the "crash"
	l.Abandon()

	l2, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if l2.NextIndex() != 10 {
		t.Fatalf("durable end %d, want 10 (acknowledged events only)", l2.NextIndex())
	}
}

// TestSyncIntervalPolicy: commits are acknowledged before fsync, the
// ticker syncs in the background, and Close makes everything durable.
func TestSyncIntervalPolicy(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(Options{Dir: dir, Policy: SyncInterval, SyncEvery: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := l.Begin(mkBatch(i, 3)).Wait(); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(2 * time.Second)
	for l.Stats().Syncs == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if l.Stats().Syncs == 0 {
		t.Fatal("background ticker never fsynced")
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if l2.NextIndex() != 30 {
		t.Fatalf("durable end %d, want 30", l2.NextIndex())
	}
}

// TestEmptyBatchAndEmptyLog: degenerate inputs take the cheap paths.
func TestEmptyBatchAndEmptyLog(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if c := l.Begin(nil); c.log != nil {
		t.Fatal("empty batch should return the zero Commit")
	}
	if err := (Commit{}).Wait(); err != nil {
		t.Fatal(err)
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := l.Replay(0, func(uint64, []tgraph.Event) error {
		return fmt.Errorf("unexpected record in empty log")
	}); err != nil {
		t.Fatal(err)
	}
	if st := l.Stats(); st.Segments != 0 || st.NextIndex != 0 {
		t.Fatalf("empty log stats: %+v", st)
	}
}

// TestBeginSteadyStateAllocs: after warm-up, Begin+Wait on a SyncNone log
// does not allocate — the encode buffer and its double are reused, and the
// Commit ticket is by-value.
func TestBeginSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation accounting is perturbed under -race")
	}
	dir := t.TempDir()
	l, err := Open(Options{Dir: dir, Policy: SyncNone})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	batch := mkBatch(0, 16)
	for i := 0; i < 20; i++ { // warm both buffers
		if err := l.Begin(batch).Wait(); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(100, func() {
		if err := l.Begin(batch).Wait(); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0 {
		t.Fatalf("Begin+Wait allocates %.1f objects per append at steady state, want 0", allocs)
	}
}
