//go:build !race

package wal

// raceEnabled reports whether the race detector is compiled in; its
// instrumentation allocates, so allocation-regression tests skip under it.
const raceEnabled = false
