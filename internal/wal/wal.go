package wal

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"apan/internal/tgraph"
)

// Policy selects when appended records are fsynced.
type Policy int

const (
	// SyncGroup fsyncs once per flushed commit group: Commit.Wait returns
	// only after the record is durable. The fsync is amortized over every
	// batch that joined the group, so throughput degrades gracefully under
	// load instead of paying one fsync per batch.
	SyncGroup Policy = iota
	// SyncInterval writes groups immediately but fsyncs from a background
	// ticker: bounded data loss (one interval) at near-SyncNone throughput.
	SyncInterval
	// SyncNone leaves fsync to the OS. A machine crash can lose the page
	// cache tail; recovery still works from the last durable prefix.
	SyncNone
)

func (p Policy) String() string {
	switch p {
	case SyncGroup:
		return "group"
	case SyncInterval:
		return "interval"
	case SyncNone:
		return "none"
	}
	return fmt.Sprintf("policy(%d)", int(p))
}

// ParsePolicy maps the -fsync flag spelling to a Policy.
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "group":
		return SyncGroup, nil
	case "interval":
		return SyncInterval, nil
	case "none":
		return SyncNone, nil
	}
	return 0, fmt.Errorf("wal: unknown fsync policy %q (want group, interval or none)", s)
}

// Options configures Open.
type Options struct {
	// Dir holds the segment files; created if missing.
	Dir string
	// Policy is the fsync policy (default SyncGroup).
	Policy Policy
	// SyncEvery is the SyncInterval period (default 50ms).
	SyncEvery time.Duration
	// SegmentBytes rotates to a fresh segment once the active one reaches
	// this size (default 64 MiB). Rotation happens at group boundaries, so
	// segments may overshoot by one group.
	SegmentBytes int64
	// Inject, when non-nil, interposes fault-injection hooks before
	// segment writes and fsyncs (see FaultInjector). Testing only.
	Inject *FaultInjector
}

type segInfo struct {
	path  string
	first uint64
}

// Log is the write-ahead event log. Begin/Wait are safe for any number of
// concurrent appenders; Replay and AlignTo are recovery-time operations
// that must not race appends.
type Log struct {
	opts Options

	// mu guards the encode buffer and group bookkeeping. It is held only
	// for memory work — never across file I/O — so Begin stays cheap even
	// while a flush is in progress.
	mu         sync.Mutex
	cond       *sync.Cond
	buf        []byte // encode buffer for the currently accepting group
	spare      []byte // double buffer, swapped in by the flush leader
	bufFirst   uint64 // record index of the first record in buf
	nextIndex  uint64 // log index the next appended event receives
	sealedSeq  uint64 // groups handed to a flush leader so far
	flushedSeq uint64 // groups fully flushed so far
	flushing   bool   // a leader is writing; at most one at a time
	forceSync  bool   // next group fsyncs regardless of policy
	err        error  // first I/O error; latched, fails all later commits
	closed     bool

	appendedBatches uint64
	appendedEvents  uint64

	// fileMu guards segment-file state. The flush leader holds it for the
	// duration of its write; mu and fileMu are never nested.
	fileMu       sync.Mutex
	seg          *os.File
	segSize      int64
	segments     []segInfo
	firstDurable uint64
	durableBytes int64
	flushes      uint64
	syncs        uint64

	tickStop chan struct{}
	tickDone chan struct{}
	tickOnce sync.Once
}

// Open scans dir, validates the segment chain, truncates a torn tail on the
// newest segment, and returns a log ready to append after the last durable
// record. Corruption anywhere but the tail is an error: the log refuses to
// resurrect a history with holes in it.
func Open(opts Options) (*Log, error) {
	if opts.Dir == "" {
		return nil, errors.New("wal: Options.Dir required")
	}
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = 64 << 20
	}
	if opts.SyncEvery <= 0 {
		opts.SyncEvery = 50 * time.Millisecond
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	segs, err := listSegments(opts.Dir)
	if err != nil {
		return nil, err
	}

	l := &Log{opts: opts}
	l.cond = sync.NewCond(&l.mu)

	cursor := uint64(0)
	for i, si := range segs {
		last := i == len(segs)-1
		end, cur, torn, serr := scanSegment(si.path, si.first, cursor, nil)
		switch {
		case errors.Is(serr, errBadHeader) && last:
			// Crash before the newest segment's header landed: the file
			// holds nothing durable, so drop it.
			if rerr := os.Remove(si.path); rerr != nil {
				return nil, fmt.Errorf("wal: %w", rerr)
			}
			segs = segs[:i]
			continue
		case serr != nil:
			return nil, serr
		case torn && !last:
			return nil, fmt.Errorf("wal: %s: torn record inside the log (only the newest segment may be torn)", filepath.Base(si.path))
		case torn:
			if terr := os.Truncate(si.path, end); terr != nil {
				return nil, fmt.Errorf("wal: %w", terr)
			}
		}
		cursor = cur
		l.segments = append(l.segments, si)
		l.durableBytes += end
	}
	l.nextIndex = cursor
	if len(l.segments) > 0 {
		l.firstDurable = l.segments[0].first
		// Reopen the newest segment for appending so a restart continues
		// filling it rather than leaking a short segment per run.
		lastSeg := l.segments[len(l.segments)-1]
		f, oerr := os.OpenFile(lastSeg.path, os.O_WRONLY|os.O_APPEND, 0o644)
		if oerr != nil {
			return nil, fmt.Errorf("wal: %w", oerr)
		}
		st, serr := f.Stat()
		if serr != nil {
			f.Close()
			return nil, fmt.Errorf("wal: %w", serr)
		}
		l.seg, l.segSize = f, st.Size()
	}

	if opts.Policy == SyncInterval {
		l.tickStop = make(chan struct{})
		l.tickDone = make(chan struct{})
		go l.syncLoop()
	}
	return l, nil
}

func (l *Log) syncLoop() {
	defer close(l.tickDone)
	t := time.NewTicker(l.opts.SyncEvery)
	defer t.Stop()
	for {
		select {
		case <-l.tickStop:
			return
		case <-t.C:
			l.Sync() // error is latched in l.err; commits surface it
		}
	}
}

// Commit is a by-value ticket for one Begin: Wait blocks until the record's
// commit group is flushed (and, under SyncGroup, fsynced). The zero Commit
// waits on nothing — Begin returns it for empty batches.
type Commit struct {
	log *Log
	seq uint64
}

// Wait blocks until the ticket's group is flushed, returning the log's
// latched error if the group (or any earlier one) failed to reach disk.
func (c Commit) Wait() error {
	if c.log == nil {
		return nil
	}
	return c.log.waitFlushed(c.seq, false)
}

// Begin encodes one batch as a record, assigns it the next run of log
// indices, and returns a by-value commit ticket. It must be called in graph
// apply order — the caller's serial apply point provides that. Begin only
// touches memory; call Wait (off any model locks) to make the record
// durable. Steady-state Begin is allocation-free: the encode buffer and its
// double are retained across groups.
func (l *Log) Begin(events []tgraph.Event) Commit {
	if len(events) == 0 {
		return Commit{}
	}
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		panic("wal: Begin on closed log")
	}
	if len(l.buf) == 0 {
		l.bufFirst = l.nextIndex
	}
	l.buf = appendRecord(l.buf, l.nextIndex, events)
	l.nextIndex += uint64(len(events))
	l.appendedBatches++
	l.appendedEvents += uint64(len(events))
	seq := l.sealedSeq + 1
	l.mu.Unlock()
	return Commit{log: l, seq: seq}
}

// waitFlushed blocks until group seq is flushed, electing the caller as
// flush leader when no flush is in progress: the leader seals the buffer,
// writes it with mu released, then wakes every waiter of the group.
func (l *Log) waitFlushed(seq uint64, force bool) error {
	l.mu.Lock()
	if force {
		l.forceSync = true
	}
	for l.flushedSeq < seq {
		if l.err != nil {
			err := l.err
			l.mu.Unlock()
			return err
		}
		if l.flushing || l.sealedSeq >= seq {
			l.cond.Wait()
			continue
		}
		l.flushing = true
		l.sealedSeq++
		target := l.sealedSeq
		buf, first, fsync := l.buf, l.bufFirst, l.forceSync
		l.buf = l.spare[:0]
		l.forceSync = false
		l.mu.Unlock()

		werr := l.writeGroup(buf, first, fsync)

		l.mu.Lock()
		l.spare = buf[:0]
		l.flushing = false
		l.flushedSeq = target
		if werr != nil && l.err == nil {
			l.err = werr
		}
		l.cond.Broadcast()
	}
	err := l.err
	l.mu.Unlock()
	return err
}

// writeGroup appends one sealed group to the active segment, rotating at
// group boundaries, and fsyncs per policy. Called only by the flush leader.
func (l *Log) writeGroup(buf []byte, first uint64, force bool) error {
	l.fileMu.Lock()
	defer l.fileMu.Unlock()
	if len(buf) > 0 {
		if l.seg == nil || l.segSize >= l.opts.SegmentBytes {
			if err := l.rotateLocked(first); err != nil {
				return err
			}
		}
		if err := l.injectWrite(l.segSize, len(buf)); err != nil {
			return fmt.Errorf("wal: write segment: %w", err)
		}
		n, err := l.seg.Write(buf)
		l.segSize += int64(n)
		l.durableBytes += int64(n)
		if err != nil {
			return fmt.Errorf("wal: write segment: %w", err)
		}
		l.flushes++
	}
	if l.seg != nil && (l.opts.Policy == SyncGroup || force) {
		if err := l.injectSync(); err != nil {
			return fmt.Errorf("wal: fsync: %w", err)
		}
		if err := l.seg.Sync(); err != nil {
			return fmt.Errorf("wal: fsync: %w", err)
		}
		l.syncs++
	}
	return nil
}

// rotateLocked seals the active segment and starts a fresh one whose first
// record has index first. Requires fileMu.
func (l *Log) rotateLocked(first uint64) error {
	if l.seg != nil {
		// Seal with an fsync regardless of policy: a finished segment is
		// immutable history, cheap to pin down once.
		if err := l.injectSync(); err != nil {
			return fmt.Errorf("wal: fsync sealed segment: %w", err)
		}
		if err := l.seg.Sync(); err != nil {
			return fmt.Errorf("wal: fsync sealed segment: %w", err)
		}
		if err := l.seg.Close(); err != nil {
			return fmt.Errorf("wal: close sealed segment: %w", err)
		}
		l.seg = nil
	}
	path := filepath.Join(l.opts.Dir, segmentName(first))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	var hdr [segHeaderSize]byte
	copy(hdr[:4], segMagic)
	le.PutUint32(hdr[4:], segVersion)
	le.PutUint64(hdr[8:], first)
	if _, err := f.Write(hdr[:]); err != nil {
		f.Close()
		return fmt.Errorf("wal: write segment header: %w", err)
	}
	l.seg, l.segSize = f, segHeaderSize
	l.durableBytes += segHeaderSize
	l.segments = append(l.segments, segInfo{path: path, first: first})
	if len(l.segments) == 1 {
		l.firstDurable = first
	}
	syncDir(l.opts.Dir)
	return nil
}

// syncDir fsyncs the directory so a freshly created segment's directory
// entry is durable. Best effort: some filesystems refuse directory fsync.
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
}

// Sync flushes any buffered records and forces an fsync regardless of
// policy. It participates in the ordinary leader protocol, so it is safe
// concurrently with appends.
func (l *Log) Sync() error {
	l.mu.Lock()
	seq := l.sealedSeq + 1
	l.mu.Unlock()
	return l.waitFlushed(seq, true)
}

// AlignTo declares that everything before watermark is covered by a
// checkpoint, positioning the next append at exactly that index. A forward
// jump leaves a legal gap in the record indices (replay never reads below
// the watermark); a log already past the watermark is an error, because
// appending would assign duplicate indices. Must be called with no appends
// in flight — i.e. during attach, before serving starts.
func (l *Log) AlignTo(watermark uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.buf) > 0 || l.flushing {
		return errors.New("wal: AlignTo with appends in flight")
	}
	if l.nextIndex > watermark {
		return fmt.Errorf("wal: log already at index %d, past watermark %d — recover (replay) before attaching", l.nextIndex, watermark)
	}
	l.nextIndex = watermark
	return nil
}

// NextIndex returns the log index the next appended event would receive —
// after Open, the end of the durable log.
func (l *Log) NextIndex() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.nextIndex
}

// Replay streams every durable record intersecting [from, ∞) to fn in log
// order, enforcing that the log actually covers the watermark: the first
// delivered record must start exactly at from (a gap means acknowledged
// events are missing — better to fail loudly than resurrect a hole), and
// indices must be contiguous from there on. Records wholly below from are
// skipped without decoding cost beyond the scan. Replay reads the segment
// files only; it must not race appends (recovery runs it before attach).
func (l *Log) Replay(from uint64, fn func(first uint64, events []tgraph.Event) error) error {
	l.fileMu.Lock()
	segs := append([]segInfo(nil), l.segments...)
	l.fileMu.Unlock()

	cursor := uint64(0)
	started := false
	for i, si := range segs {
		_, cur, torn, err := scanSegment(si.path, si.first, cursor, func(first uint64, events []tgraph.Event) error {
			end := first + uint64(len(events))
			if end <= from {
				return nil
			}
			if first < from {
				return fmt.Errorf("wal: watermark %d falls inside record [%d,%d) — checkpoint cut is not batch-aligned", from, first, end)
			}
			if !started {
				if first != from {
					return fmt.Errorf("wal: replay gap: log resumes at %d, watermark is %d", first, from)
				}
				started = true
			}
			return fn(first, events)
		})
		if err != nil {
			return err
		}
		if torn && i != len(segs)-1 {
			return fmt.Errorf("wal: %s: torn record inside the log", filepath.Base(si.path))
		}
		cursor = cur
	}
	return nil
}

// TruncateBefore removes whole segments whose records all precede the
// snapshot-pinned watermark. The active (newest) segment always survives,
// so truncation never interferes with appends; partial segments survive
// too — space is reclaimed at segment granularity.
func (l *Log) TruncateBefore(watermark uint64) (removed int, err error) {
	l.fileMu.Lock()
	defer l.fileMu.Unlock()
	for len(l.segments) >= 2 && l.segments[1].first <= watermark {
		path := l.segments[0].path
		if st, serr := os.Stat(path); serr == nil {
			l.durableBytes -= st.Size()
		}
		if rerr := os.Remove(path); rerr != nil {
			return removed, fmt.Errorf("wal: %w", rerr)
		}
		l.segments = l.segments[1:]
		removed++
	}
	if len(l.segments) > 0 {
		l.firstDurable = l.segments[0].first
	}
	return removed, nil
}

// Stats is a point-in-time snapshot of the log's counters for /v1/stats.
type Stats struct {
	Policy          string `json:"policy"`
	FirstIndex      uint64 `json:"first_index"`
	NextIndex       uint64 `json:"next_index"`
	Segments        int    `json:"segments"`
	DurableBytes    int64  `json:"durable_bytes"`
	AppendedBatches uint64 `json:"appended_batches"`
	AppendedEvents  uint64 `json:"appended_events"`
	Flushes         uint64 `json:"flushes"`
	Syncs           uint64 `json:"syncs"`
	Err             string `json:"err,omitempty"`
}

// Stats reports the log's counters.
func (l *Log) Stats() Stats {
	var s Stats
	s.Policy = l.opts.Policy.String()
	l.mu.Lock()
	s.NextIndex = l.nextIndex
	s.AppendedBatches = l.appendedBatches
	s.AppendedEvents = l.appendedEvents
	if l.err != nil {
		s.Err = l.err.Error()
	}
	l.mu.Unlock()
	l.fileMu.Lock()
	s.FirstIndex = l.firstDurable
	s.Segments = len(l.segments)
	s.DurableBytes = l.durableBytes
	s.Flushes = l.flushes
	s.Syncs = l.syncs
	l.fileMu.Unlock()
	return s
}

// Err returns the latched I/O error, if any.
func (l *Log) Err() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.err
}

// Close flushes and fsyncs outstanding records, then closes the log. The
// log must not be used afterwards.
func (l *Log) Close() error {
	l.stopTicker()
	err := l.Sync()
	l.mu.Lock()
	l.closed = true
	l.mu.Unlock()
	l.fileMu.Lock()
	if l.seg != nil {
		if cerr := l.seg.Close(); err == nil {
			err = cerr
		}
		l.seg = nil
	}
	l.fileMu.Unlock()
	return err
}

// Abandon closes the log WITHOUT flushing buffered records, simulating a
// process crash for recovery tests: records whose Wait returned are on disk
// (or in the page cache, per policy); everything still in the encode buffer
// is lost, exactly as a kill -9 would lose it. The caller must have
// quiesced appenders first.
func (l *Log) Abandon() {
	l.stopTicker()
	l.mu.Lock()
	l.closed = true
	l.buf = l.buf[:0]
	l.mu.Unlock()
	l.fileMu.Lock()
	if l.seg != nil {
		l.seg.Close()
		l.seg = nil
	}
	l.fileMu.Unlock()
}

func (l *Log) stopTicker() {
	if l.tickStop == nil {
		return
	}
	l.tickOnce.Do(func() { close(l.tickStop) })
	<-l.tickDone
}
