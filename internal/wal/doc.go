// Package wal implements the durability subsystem's write-ahead event log:
// an append-only, CRC-framed, segment-rotated log of the temporal graph
// events applied by the asynchronous link.
//
// One record is one applied batch, written at the pipeline's serial apply
// point in graph order, so the log index of an event equals its id in the
// temporal graph's event log. Recovery is checkpoint + replay-to-watermark:
// load the newest checkpoint, then re-apply every logged record past the
// checkpoint's GraphEvents watermark through the full inference path,
// reconstructing node state, mailboxes and the graph bit-for-bit.
//
// Appends are group-committed: Begin buffers the encoded record under a
// short mutex and returns a by-value Commit ticket; Wait elects one waiting
// goroutine as the flush leader, which writes the whole buffered group with
// one write(2) (and, under SyncGroup, one fsync) while later appends fill a
// double buffer. The hot path therefore stays allocation-free and an fsync
// is amortized over every batch that arrived while the previous one was
// flushing.
//
// On Open, segments are chained by record index and a torn tail — a partial
// record at the end of the newest segment, the signature of a crash mid
// write — is truncated away. Corruption anywhere else is fatal: the log
// refuses to silently skip records that were once acknowledged. Snapshots
// coordinate with the log by watermark: a checkpoint pins the index it
// captured, and TruncateBefore drops whole segments older than it.
package wal
