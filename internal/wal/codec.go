package wal

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"apan/internal/tgraph"
)

// On-disk layout.
//
// Segment file wal-%016x.seg (name = index of the first record):
//
//	header  : "APWL" | version u32 | firstIndex u64          (16 bytes)
//	records : frame*
//
// Record frame:
//
//	frame   : payloadLen u32 | crc32c(payload) u32 | payload
//	payload : firstIndex u64 | count u32 | event*
//	event   : src u32 | dst u32 | timeBits u64 | label u8 | featLen u32 | featBits u32*
//
// All integers little-endian; floats stored as IEEE-754 bit patterns, so a
// decode is bit-exact. Record indices within and across segments must be
// non-decreasing and non-overlapping; forward gaps are legal (AlignTo
// creates one when a checkpoint outruns the durable log).
const (
	segMagic        = "APWL"
	segVersion      = 1
	segHeaderSize   = 16
	frameHeaderSize = 8
	segSuffix       = ".seg"
	segPrefix       = "wal-"

	// maxPayloadBytes bounds a frame's declared length so a corrupt length
	// field cannot drive an OOM-sized allocation; larger means torn/corrupt.
	maxPayloadBytes = 1 << 30
	// maxFeatLen mirrors the checkpoint codec's feature-length sanity bound.
	maxFeatLen = 1 << 20
)

var (
	le       = binary.LittleEndian
	crcTable = crc32.MakeTable(crc32.Castagnoli)

	// errBadHeader marks a segment whose header is missing or mangled — on
	// the newest segment that is a crash before the header landed and the
	// file is discarded; anywhere else it is fatal corruption.
	errBadHeader = errors.New("wal: bad segment header")
)

// appendRecord appends one framed record covering events, whose first event
// has log index first, to buf. It writes only via append, so a warmed
// buffer makes the encode allocation-free.
func appendRecord(buf []byte, first uint64, events []tgraph.Event) []byte {
	head := len(buf)
	buf = append(buf, make([]byte, frameHeaderSize)...)
	buf = appendU64(buf, first)
	buf = appendU32(buf, uint32(len(events)))
	for i := range events {
		ev := &events[i]
		buf = appendU32(buf, uint32(ev.Src))
		buf = appendU32(buf, uint32(ev.Dst))
		buf = appendU64(buf, math.Float64bits(ev.Time))
		buf = append(buf, byte(ev.Label))
		buf = appendU32(buf, uint32(len(ev.Feat)))
		for _, f := range ev.Feat {
			buf = appendU32(buf, math.Float32bits(f))
		}
	}
	payload := buf[head+frameHeaderSize:]
	le.PutUint32(buf[head:], uint32(len(payload)))
	le.PutUint32(buf[head+4:], crc32.Checksum(payload, crcTable))
	return buf
}

func appendU32(buf []byte, v uint32) []byte {
	return append(buf, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}

func appendU64(buf []byte, v uint64) []byte {
	return append(buf,
		byte(v), byte(v>>8), byte(v>>16), byte(v>>24),
		byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56))
}

// decodeRecord decodes one record payload. The payload must be consumed
// exactly; trailing bytes mean a codec mismatch, which after a CRC pass is
// writer-side corruption, not a torn write. Events (and their Feat slices)
// are freshly allocated: the temporal graph retains them on replay.
func decodeRecord(payload []byte) (first uint64, events []tgraph.Event, err error) {
	r := payloadReader{buf: payload}
	first = r.u64()
	count := r.u32()
	if r.err == nil && int(count) > len(payload)/13 {
		// 13 bytes is the minimum encoded event, so a count beyond
		// payload/13 cannot be honest.
		return 0, nil, fmt.Errorf("wal: record count %d exceeds payload", count)
	}
	if r.err == nil {
		events = make([]tgraph.Event, count)
		for i := range events {
			ev := &events[i]
			ev.Src = tgraph.NodeID(r.u32())
			ev.Dst = tgraph.NodeID(r.u32())
			ev.Time = math.Float64frombits(r.u64())
			ev.Label = int8(r.u8())
			featLen := r.u32()
			if r.err == nil && featLen > maxFeatLen {
				return 0, nil, fmt.Errorf("wal: absurd feature length %d", featLen)
			}
			if r.err == nil {
				ev.Feat = make([]float32, featLen)
				for j := range ev.Feat {
					ev.Feat[j] = math.Float32frombits(r.u32())
				}
			}
		}
	}
	if r.err != nil {
		return 0, nil, r.err
	}
	if len(r.buf) != r.off {
		return 0, nil, fmt.Errorf("wal: record has %d trailing bytes", len(r.buf)-r.off)
	}
	return first, events, nil
}

// payloadReader is a bounds-checked cursor over a record payload; the first
// short read latches an error and zeroes every later read.
type payloadReader struct {
	buf []byte
	off int
	err error
}

func (r *payloadReader) short(n int) bool {
	if r.err != nil {
		return true
	}
	if r.off+n > len(r.buf) {
		r.err = fmt.Errorf("wal: record truncated at byte %d", r.off)
		return true
	}
	return false
}

func (r *payloadReader) u8() uint8 {
	if r.short(1) {
		return 0
	}
	v := r.buf[r.off]
	r.off++
	return v
}

func (r *payloadReader) u32() uint32 {
	if r.short(4) {
		return 0
	}
	v := le.Uint32(r.buf[r.off:])
	r.off += 4
	return v
}

func (r *payloadReader) u64() uint64 {
	if r.short(8) {
		return 0
	}
	v := le.Uint64(r.buf[r.off:])
	r.off += 8
	return v
}

// segmentName formats the file name of the segment whose first record has
// the given log index.
func segmentName(first uint64) string {
	return fmt.Sprintf("%s%016x%s", segPrefix, first, segSuffix)
}

// parseSegmentName extracts the first-record index from a segment file name.
func parseSegmentName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, segPrefix) || !strings.HasSuffix(name, segSuffix) {
		return 0, false
	}
	hex := strings.TrimSuffix(strings.TrimPrefix(name, segPrefix), segSuffix)
	if len(hex) != 16 {
		return 0, false
	}
	v, err := strconv.ParseUint(hex, 16, 64)
	if err != nil {
		return 0, false
	}
	return v, true
}

// listSegments returns the directory's segment files sorted by first index.
func listSegments(dir string) ([]segInfo, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	var segs []segInfo
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		if first, ok := parseSegmentName(e.Name()); ok {
			segs = append(segs, segInfo{path: filepath.Join(dir, e.Name()), first: first})
		}
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].first < segs[j].first })
	return segs, nil
}

// scanSegment reads one segment file, invoking fn (when non-nil) for every
// intact record. wantFirst is the index encoded in the file name; the
// header must agree. cursor is the record-index high-water mark carried
// over from earlier segments: indices must never step backwards across it
// (forward gaps are legal). Returns the offset just past the last intact
// record, the advanced cursor, and torn=true when trailing bytes past end
// fail to frame — the signature of a crash mid-write. Anything else —
// header mismatch, index overlap, a payload that fails to decode after its
// CRC verified, an fn error — comes back in err.
func scanSegment(path string, wantFirst, cursor uint64, fn func(first uint64, events []tgraph.Event) error) (end int64, newCursor uint64, torn bool, err error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, cursor, false, fmt.Errorf("wal: %w", err)
	}
	defer f.Close()
	br := bufio.NewReaderSize(f, 1<<20)

	var hdr [segHeaderSize]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return 0, cursor, false, fmt.Errorf("%w: %s: %v", errBadHeader, filepath.Base(path), err)
	}
	if string(hdr[:4]) != segMagic {
		return 0, cursor, false, fmt.Errorf("%w: %s: magic %q", errBadHeader, filepath.Base(path), hdr[:4])
	}
	if v := le.Uint32(hdr[4:]); v != segVersion {
		return 0, cursor, false, fmt.Errorf("wal: %s: unsupported version %d", filepath.Base(path), v)
	}
	if first := le.Uint64(hdr[8:]); first != wantFirst {
		return 0, cursor, false, fmt.Errorf("wal: %s: header index %d disagrees with name", filepath.Base(path), first)
	}
	if wantFirst < cursor {
		return 0, cursor, false, fmt.Errorf("wal: %s: segment overlaps records ending at %d", filepath.Base(path), cursor)
	}
	cursor = wantFirst

	end = segHeaderSize
	var frame [frameHeaderSize]byte
	var payload []byte
	for {
		if _, err := io.ReadFull(br, frame[:]); err != nil {
			if err == io.EOF {
				return end, cursor, false, nil
			}
			return end, cursor, true, nil // partial frame header
		}
		n := le.Uint32(frame[:])
		if n > maxPayloadBytes {
			return end, cursor, true, nil // length field is garbage
		}
		if cap(payload) < int(n) {
			payload = make([]byte, n)
		}
		payload = payload[:n]
		if _, err := io.ReadFull(br, payload); err != nil {
			return end, cursor, true, nil // partial payload
		}
		if crc32.Checksum(payload, crcTable) != le.Uint32(frame[4:]) {
			return end, cursor, true, nil // bits flipped or overwritten
		}
		first, events, derr := decodeRecord(payload)
		if derr != nil {
			return end, cursor, false, fmt.Errorf("wal: %s at offset %d: %w", filepath.Base(path), end, derr)
		}
		if first < cursor {
			return end, cursor, false, fmt.Errorf("wal: %s at offset %d: record %d overlaps records ending at %d", filepath.Base(path), end, first, cursor)
		}
		if fn != nil {
			if err := fn(first, events); err != nil {
				return end, cursor, false, err
			}
		}
		cursor = first + uint64(len(events))
		end += int64(frameHeaderSize) + int64(len(payload))
	}
}
