package wal

import "path/filepath"

// FaultInjector is the storage fault-injection seam: when set on Options,
// its hooks run immediately before the corresponding file operation and an
// error they return is treated exactly like the real I/O failing — latched
// in the log, surfaced from every later Commit.Wait, never retried. The
// scenario harness uses this to script fsync failures and write errors at
// deterministic (seed, event index) points; production code leaves it nil.
//
// The distinction between the two hooks matters for what recovery sees:
// a BeforeWrite failure means the group's bytes never reached the file,
// while a BeforeSync failure leaves the bytes written (readable, shippable)
// but not durable — the precise semantics of a real fsync error.
type FaultInjector struct {
	// BeforeWrite runs before each group append. segment is the active
	// segment's base name, off the file offset the group would land at,
	// and n the group's size in bytes.
	BeforeWrite func(segment string, off int64, n int) error
	// BeforeSync runs before each fsync of a segment file — per-group
	// syncs under SyncGroup, ticker syncs under SyncInterval, forced
	// syncs, and the seal fsync during rotation alike.
	BeforeSync func(segment string) error
}

// injectWrite consults the injector's BeforeWrite hook, if any.
func (l *Log) injectWrite(off int64, n int) error {
	inj := l.opts.Inject
	if inj == nil || inj.BeforeWrite == nil || l.seg == nil {
		return nil
	}
	return inj.BeforeWrite(filepath.Base(l.seg.Name()), off, n)
}

// injectSync consults the injector's BeforeSync hook, if any.
func (l *Log) injectSync() error {
	inj := l.opts.Inject
	if inj == nil || inj.BeforeSync == nil || l.seg == nil {
		return nil
	}
	return inj.BeforeSync(filepath.Base(l.seg.Name()))
}
