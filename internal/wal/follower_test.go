package wal

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"apan/internal/tgraph"
)

// pollAll drains one Poll, appending delivered records to *got.
func pollAll(t *testing.T, f *Follower, got *[][]tgraph.Event) int {
	t.Helper()
	n, err := f.Poll(func(first uint64, events []tgraph.Event) error {
		*got = append(*got, events)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return n
}

// TestFollowerTracksShipper: a follower polling between incremental ship
// passes receives every record exactly once, in order, across rotations.
func TestFollowerTracksShipper(t *testing.T) {
	src, dst := t.TempDir(), t.TempDir()
	l, err := Open(Options{Dir: src, Policy: SyncGroup, SegmentBytes: 512})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	sh := NewShipper(src, DirDest{Dir: dst}, ShipOptions{Tail: true, ChunkBytes: 128})
	f, err := OpenFollower(dst, 0)
	if err != nil {
		t.Fatal(err)
	}

	var want, got [][]tgraph.Event
	idx := uint64(0)
	for i := 0; i < 15; i++ {
		b := mkBatch(i*5, 5)
		want = append(want, b)
		if err := l.Begin(b).Wait(); err != nil {
			t.Fatal(err)
		}
		if _, err := sh.ShipNow(); err != nil {
			t.Fatal(err)
		}
		if n := pollAll(t, f, &got); n != 1 {
			t.Fatalf("batch %d: poll delivered %d records, want 1", i, n)
		}
		idx += 5
		if f.Cursor() != idx {
			t.Fatalf("cursor %d, want %d", f.Cursor(), idx)
		}
	}
	for i := range want {
		if !eventsBitEqual(want[i], got[i]) {
			t.Fatalf("record %d content mismatch", i)
		}
	}
	// Idle polls deliver nothing.
	if n := pollAll(t, f, &got); n != 0 {
		t.Fatalf("idle poll delivered %d", n)
	}
}

// TestFollowerTornTailWaits: a half-shipped record parks the follower; the
// completing chunk un-parks it. Byte-level: ship a prefix of the source
// file that ends mid-frame.
func TestFollowerTornTailWaits(t *testing.T) {
	src, dst := t.TempDir(), t.TempDir()
	writeTestLog(t, src, 9, 3, 4)
	segs, err := listSegments(src)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(segs[0].path)
	if err != nil {
		t.Fatal(err)
	}
	name := filepath.Base(segs[0].path)
	dest := DirDest{Dir: dst}
	// Ship all but the last 5 bytes: the final record is torn.
	if err := dest.WriteChunk(name, 0, data[:len(data)-5]); err != nil {
		t.Fatal(err)
	}
	f, err := OpenFollower(dst, 0)
	if err != nil {
		t.Fatal(err)
	}
	var got [][]tgraph.Event
	if n := pollAll(t, f, &got); n != 2 {
		t.Fatalf("delivered %d records from torn copy, want 2", n)
	}
	if n := pollAll(t, f, &got); n != 0 {
		t.Fatalf("re-poll on parked tail delivered %d", n)
	}
	// Complete the tail; the parked record is delivered.
	if err := dest.WriteChunk(name, int64(len(data)-5), data[len(data)-5:]); err != nil {
		t.Fatal(err)
	}
	if n := pollAll(t, f, &got); n != 1 {
		t.Fatalf("completing chunk delivered %d records, want 1", n)
	}
	if f.Cursor() != 12 {
		t.Fatalf("cursor %d, want 12", f.Cursor())
	}
}

// TestFollowerFromWatermark: records wholly below the start watermark are
// skipped; a watermark inside a record is an error.
func TestFollowerFromWatermark(t *testing.T) {
	dir := t.TempDir()
	writeTestLog(t, dir, 11, 4, 6)

	f, err := OpenFollower(dir, 12)
	if err != nil {
		t.Fatal(err)
	}
	var got [][]tgraph.Event
	if n := pollAll(t, f, &got); n != 2 {
		t.Fatalf("delivered %d records from watermark 12, want 2", n)
	}

	f2, err := OpenFollower(dir, 13)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f2.Poll(func(uint64, []tgraph.Event) error { return nil }); err == nil {
		t.Fatal("watermark inside a record: want error")
	}
}

// TestFollowerGapErrors: a shipped log that resumes past the cursor is a
// hole in acknowledged history — Poll must fail, not skip.
func TestFollowerGapErrors(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(Options{Dir: dir, Policy: SyncGroup})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.AlignTo(100); err != nil {
		t.Fatal(err)
	}
	if err := l.Begin(mkBatch(0, 4)).Wait(); err != nil {
		t.Fatal(err)
	}
	l.Close()

	f, err := OpenFollower(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Poll(func(uint64, []tgraph.Event) error { return nil }); err == nil {
		t.Fatal("gap between cursor 0 and record 100: want error")
	}
	// From the watermark itself the gap is legal (checkpoint covers it).
	f2, err := OpenFollower(dir, 100)
	if err != nil {
		t.Fatal(err)
	}
	var got [][]tgraph.Event
	if n := pollAll(t, f2, &got); n != 1 {
		t.Fatalf("delivered %d, want 1", n)
	}
}

// TestFollowerFnErrorPropagates: fn errors abort the poll verbatim and do
// not advance the cursor past the failing record.
func TestFollowerFnErrorPropagates(t *testing.T) {
	dir := t.TempDir()
	writeTestLog(t, dir, 3, 2, 4)
	f, err := OpenFollower(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	boom := fmt.Errorf("apply failed")
	calls := 0
	_, err = f.Poll(func(uint64, []tgraph.Event) error {
		calls++
		if calls == 2 {
			return boom
		}
		return nil
	})
	if err != boom {
		t.Fatalf("err=%v, want %v", err, boom)
	}
	if f.Cursor() != 4 {
		t.Fatalf("cursor %d after failed second record, want 4", f.Cursor())
	}
}
