package wal

import (
	"errors"
	"net"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// dirsEqual compares every segment file in a against its counterpart in b
// byte-for-byte (b may hold extra files; shipping never deletes).
func dirsEqual(t *testing.T, a, b string) {
	t.Helper()
	segs, err := listSegments(a)
	if err != nil {
		t.Fatal(err)
	}
	for _, si := range segs {
		want, err := os.ReadFile(si.path)
		if err != nil {
			t.Fatal(err)
		}
		got, err := os.ReadFile(filepath.Join(b, filepath.Base(si.path)))
		if err != nil {
			t.Fatalf("shipped copy of %s: %v", filepath.Base(si.path), err)
		}
		if string(want) != string(got) {
			t.Fatalf("%s: shipped bytes differ (%d vs %d bytes)", filepath.Base(si.path), len(want), len(got))
		}
	}
}

// TestShipperTailMode: with tail shipping, each pass after a durable batch
// leaves the destination byte-identical to the source, across rotations,
// and re-passes ship nothing new.
func TestShipperTailMode(t *testing.T) {
	src, dst := t.TempDir(), t.TempDir()
	l, err := Open(Options{Dir: src, Policy: SyncGroup, SegmentBytes: 512})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	sh := NewShipper(src, DirDest{Dir: dst}, ShipOptions{Tail: true, ChunkBytes: 64})
	for i := 0; i < 12; i++ {
		if err := l.Begin(mkBatch(i*4, 4)).Wait(); err != nil {
			t.Fatal(err)
		}
		if _, err := sh.ShipNow(); err != nil {
			t.Fatal(err)
		}
		dirsEqual(t, src, dst)
	}
	n, err := sh.ShipNow()
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatalf("idle pass shipped %d bytes, want 0", n)
	}
	if st := sh.Stats(); st.ShippedBytes == 0 || st.Chunks == 0 {
		t.Fatalf("stats empty after shipping: %+v", st)
	}
}

// TestShipperSealedOnly: without tail mode the active segment is withheld
// until rotation seals it.
func TestShipperSealedOnly(t *testing.T) {
	src, dst := t.TempDir(), t.TempDir()
	l, err := Open(Options{Dir: src, Policy: SyncGroup, SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	sh := NewShipper(src, DirDest{Dir: dst}, ShipOptions{})
	if err := l.Begin(mkBatch(0, 3)).Wait(); err != nil {
		t.Fatal(err)
	}
	if n, err := sh.ShipNow(); err != nil || n != 0 {
		t.Fatalf("active segment shipped in sealed-only mode: n=%d err=%v", n, err)
	}
	// Keep appending until a rotation happens, then the sealed prefix ships.
	for i := 1; i < 20; i++ {
		if err := l.Begin(mkBatch(i*3, 3)).Wait(); err != nil {
			t.Fatal(err)
		}
	}
	srcSegs, err := listSegments(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(srcSegs) < 2 {
		t.Fatalf("no rotation after 20 batches at 256-byte segments")
	}
	if _, err := sh.ShipNow(); err != nil {
		t.Fatal(err)
	}
	dstSegs, err := listSegments(dst)
	if err != nil {
		t.Fatal(err)
	}
	if len(dstSegs) != len(srcSegs)-1 {
		t.Fatalf("shipped %d segments, want the %d sealed ones", len(dstSegs), len(srcSegs)-1)
	}
}

// TestShipWireProtocol: a leader serving over a pipe and a follower
// receiving reproduce the source directory bytes and deliver heartbeats
// with the leader's next index.
func TestShipWireProtocol(t *testing.T) {
	src, dst := t.TempDir(), t.TempDir()
	writeTestLog(t, src, 5, 10, 4)

	leaderConn, followerConn := net.Pipe()
	stop := make(chan struct{})
	serveErr := make(chan error, 1)
	go func() {
		serveErr <- ServeShipConn(leaderConn, src, func() uint64 { return 40 }, time.Millisecond, stop)
	}()

	beats := make(chan uint64, 64)
	recvErr := make(chan error, 1)
	go func() {
		recvErr <- FollowShip(followerConn, DirDest{Dir: dst}, func(next uint64) {
			select {
			case beats <- next:
			default:
			}
		})
	}()

	select {
	case next := <-beats:
		if next != 40 {
			t.Fatalf("heartbeat next index %d, want 40", next)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no heartbeat within 5s")
	}
	// Heartbeats arrive after each full ship pass, so one beat means the
	// whole (static) directory has been shipped.
	close(stop)
	if err := <-serveErr; err != nil {
		t.Fatalf("serve: %v", err)
	}
	<-recvErr // pipe closed by serve side; any error is the close itself
	dirsEqual(t, src, dst)

	// The shipped copy must replay identically to the source.
	l, err := Open(Options{Dir: dst})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if l.NextIndex() != 40 {
		t.Fatalf("shipped log next index %d, want 40", l.NextIndex())
	}
}

// TestFollowShipRejectsTraversal: chunk names that are not segment names
// (e.g. path traversal) are refused by the receiving side.
func TestFollowShipRejectsTraversal(t *testing.T) {
	dst := t.TempDir()
	if err := (DirDest{Dir: dst}).WriteChunk("../evil.seg", 0, []byte("x")); err == nil {
		t.Fatal("traversal chunk name accepted")
	}
}

// TestFaultInjectSyncLatches: an injected fsync error latches the log —
// the failing batch's bytes are written (readable by a shipper/follower),
// every later commit fails, and no later bytes reach the file.
func TestFaultInjectSyncLatches(t *testing.T) {
	dir := t.TempDir()
	boom := errors.New("boom")
	syncs := 0
	l, err := Open(Options{Dir: dir, Policy: SyncGroup, Inject: &FaultInjector{
		BeforeSync: func(string) error {
			syncs++
			if syncs == 3 {
				return boom
			}
			return nil
		},
	}})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Abandon()
	for i := 0; i < 2; i++ {
		if err := l.Begin(mkBatch(i*4, 4)).Wait(); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Begin(mkBatch(8, 4)).Wait(); !errors.Is(err, boom) {
		t.Fatalf("batch at failing sync: err=%v, want %v", err, boom)
	}
	sizeAfter := dirBytes(t, dir)
	for i := 3; i < 6; i++ {
		if err := l.Begin(mkBatch(i*4, 4)).Wait(); !errors.Is(err, boom) {
			t.Fatalf("post-latch commit err=%v, want %v", err, boom)
		}
	}
	if got := dirBytes(t, dir); got != sizeAfter {
		t.Fatalf("log grew after latched error: %d -> %d bytes", sizeAfter, got)
	}
	if !errors.Is(l.Err(), boom) {
		t.Fatalf("Err() = %v, want latched %v", l.Err(), boom)
	}
	// The failed-sync batch's bytes are in the file: a fresh Open sees all
	// three batches (12 events).
	l2, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if l2.NextIndex() != 12 {
		t.Fatalf("recovered next index %d, want 12 (failed-fsync batch still readable)", l2.NextIndex())
	}
}

// TestFaultInjectWriteError: an injected write error means the group's
// bytes never land — recovery sees only the batches before it.
func TestFaultInjectWriteError(t *testing.T) {
	dir := t.TempDir()
	boom := errors.New("disk full")
	writes := 0
	l, err := Open(Options{Dir: dir, Policy: SyncGroup, Inject: &FaultInjector{
		BeforeWrite: func(string, int64, int) error {
			writes++
			if writes >= 2 {
				return boom
			}
			return nil
		},
	}})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Abandon()
	if err := l.Begin(mkBatch(0, 4)).Wait(); err != nil {
		t.Fatal(err)
	}
	if err := l.Begin(mkBatch(4, 4)).Wait(); !errors.Is(err, boom) {
		t.Fatalf("err=%v, want %v", err, boom)
	}
	l2, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if l2.NextIndex() != 4 {
		t.Fatalf("recovered next index %d, want 4 (failed write left no bytes)", l2.NextIndex())
	}
}

func dirBytes(t *testing.T, dir string) int64 {
	t.Helper()
	segs, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	for _, si := range segs {
		st, err := os.Stat(si.path)
		if err != nil {
			t.Fatal(err)
		}
		total += st.Size()
	}
	return total
}
