package wal

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"path/filepath"
	"sync"
	"time"
)

// Log shipping.
//
// A Shipper incrementally copies a leader's WAL directory — byte-for-byte,
// per segment — to a ShipDest, tracking how far each segment has been
// shipped so every pass moves only the delta. The follower side never
// needs leader cooperation beyond the files themselves: segments are
// append-only (rotation seals them; nothing rewrites history), so a chunk
// shipped at offset N is final. The destination may therefore lag
// mid-record; the Follower's scanner treats an incomplete tail exactly
// like a torn write — wait, don't fail.
//
// Two modes: sealed-only (Tail=false) ships a segment only once a
// successor exists, giving the follower whole immutable files; tail mode
// (Tail=true) also streams the active segment's bytes as they land, which
// is what keeps follower lag at one ship interval instead of one segment.
//
// One subtlety after a leader restart: Open may truncate a torn tail, and
// a fresh Shipper re-ships every segment from byte zero, overwriting the
// follower's copy in place. The follower's file can transiently be longer
// than the leader's (stale torn bytes past the overwritten prefix); those
// bytes fail to frame, so the follower parks before them until the leader
// appends past that offset — and promotion's Open truncates them anyway.

// ShipDest receives shipped WAL bytes. WriteChunk must be idempotent for
// repeated (name, off) writes of the same bytes — re-ships after a
// restart overwrite in place.
type ShipDest interface {
	WriteChunk(name string, off int64, data []byte) error
}

// DirDest ships into a local directory — the follower's WAL copy.
type DirDest struct {
	Dir string
}

// WriteChunk writes data at byte offset off of the named segment file,
// creating the directory and file as needed.
func (d DirDest) WriteChunk(name string, off int64, data []byte) error {
	if _, ok := parseSegmentName(name); !ok {
		return fmt.Errorf("wal: ship: refusing non-segment name %q", name)
	}
	if err := os.MkdirAll(d.Dir, 0o755); err != nil {
		return fmt.Errorf("wal: ship: %w", err)
	}
	f, err := os.OpenFile(filepath.Join(d.Dir, name), os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("wal: ship: %w", err)
	}
	defer f.Close()
	if _, err := f.WriteAt(data, off); err != nil {
		return fmt.Errorf("wal: ship: %w", err)
	}
	return nil
}

// ShipOptions configures a Shipper.
type ShipOptions struct {
	// Tail ships the active (newest) segment's bytes as they land. When
	// false only sealed segments — those with a successor — are shipped.
	Tail bool
	// ChunkBytes bounds one WriteChunk call (default 1 MiB).
	ChunkBytes int
}

// Shipper incrementally copies the WAL segments in a source directory to
// a destination. Safe for use while a Log is actively appending to the
// same directory: it reads the files only, and a chunk that catches a
// group mid-write simply leaves the destination with a torn tail that the
// next pass completes.
type Shipper struct {
	dir  string
	dest ShipDest
	opts ShipOptions

	mu      sync.Mutex
	sent    map[string]int64 // bytes shipped so far, per segment base name
	shipped int64            // total bytes shipped
	chunks  int64
}

// NewShipper returns a shipper copying segment bytes from dir to dest.
func NewShipper(dir string, dest ShipDest, opts ShipOptions) *Shipper {
	if opts.ChunkBytes <= 0 {
		opts.ChunkBytes = 1 << 20
	}
	return &Shipper{dir: dir, dest: dest, opts: opts, sent: make(map[string]int64)}
}

// ShipNow performs one incremental pass over the source directory and
// returns the number of bytes shipped. Deterministic: after a pass with no
// concurrent appends, the destination holds exactly the source's bytes
// (sealed-only mode excludes the active segment).
func (s *Shipper) ShipNow() (int64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	segs, err := listSegments(s.dir)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return 0, nil
		}
		return 0, err
	}
	live := make(map[string]bool, len(segs))
	var total int64
	for i, si := range segs {
		name := filepath.Base(si.path)
		live[name] = true
		if i == len(segs)-1 && !s.opts.Tail {
			continue // active segment: wait for the seal
		}
		n, err := s.shipSegmentLocked(si.path, name)
		total += n
		if err != nil {
			return total, err
		}
	}
	// Forget segments the leader truncated; the follower keeps its copies
	// (its checkpoint watermark may still need them), we just stop tracking.
	for name := range s.sent {
		if !live[name] {
			delete(s.sent, name)
		}
	}
	return total, nil
}

func (s *Shipper) shipSegmentLocked(path, name string) (int64, error) {
	st, err := os.Stat(path)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return 0, nil // truncated between list and stat
		}
		return 0, fmt.Errorf("wal: ship: %w", err)
	}
	from := s.sent[name]
	if st.Size() <= from {
		return 0, nil
	}
	f, err := os.Open(path)
	if err != nil {
		return 0, fmt.Errorf("wal: ship: %w", err)
	}
	defer f.Close()
	var total int64
	chunk := make([]byte, s.opts.ChunkBytes)
	for from < st.Size() {
		n, rerr := f.ReadAt(chunk, from)
		if n > 0 {
			if werr := s.dest.WriteChunk(name, from, chunk[:n]); werr != nil {
				return total, werr
			}
			from += int64(n)
			total += int64(n)
			s.shipped += int64(n)
			s.chunks++
			s.sent[name] = from
		}
		if rerr == io.EOF {
			break
		}
		if rerr != nil {
			return total, fmt.Errorf("wal: ship: %w", rerr)
		}
	}
	return total, nil
}

// ShipStats reports a shipper's cumulative volume.
type ShipStats struct {
	Segments     int   `json:"segments"`
	ShippedBytes int64 `json:"shipped_bytes"`
	Chunks       int64 `json:"chunks"`
}

// Stats reports cumulative ship volume.
func (s *Shipper) Stats() ShipStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return ShipStats{Segments: len(s.sent), ShippedBytes: s.shipped, Chunks: s.chunks}
}

// Ship wire protocol (leader → follower, one TCP connection):
//
//	handshake (follower → leader): "APSH" | version u32
//	messages  (leader → follower):
//	  'C' | nameLen u16 | name | off u64 | dataLen u32 | data   (chunk)
//	  'H' | nextIndex u64                                       (heartbeat)
//
// Heartbeats carry the leader's next log index so the follower can compute
// replication lag in events without a second channel.
const (
	shipMagic    = "APSH"
	shipVersion  = 1
	shipMsgChunk = 'C'
	shipMsgBeat  = 'H'
)

// connDest ships chunks over an established connection using the ship
// wire protocol. It implements ShipDest.
type connDest struct {
	w *bufio.Writer
}

func (c *connDest) WriteChunk(name string, off int64, data []byte) error {
	if len(name) > 1<<15 {
		return fmt.Errorf("wal: ship: segment name too long (%d)", len(name))
	}
	var hdr [3]byte
	hdr[0] = shipMsgChunk
	binary.LittleEndian.PutUint16(hdr[1:], uint16(len(name)))
	if _, err := c.w.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := c.w.WriteString(name); err != nil {
		return err
	}
	var tail [12]byte
	binary.LittleEndian.PutUint64(tail[:8], uint64(off))
	binary.LittleEndian.PutUint32(tail[8:], uint32(len(data)))
	if _, err := c.w.Write(tail[:]); err != nil {
		return err
	}
	_, err := c.w.Write(data)
	return err
}

func (c *connDest) heartbeat(next uint64) error {
	var msg [9]byte
	msg[0] = shipMsgBeat
	binary.LittleEndian.PutUint64(msg[1:], next)
	_, err := c.w.Write(msg[:])
	return err
}

// ServeShipConn ships srcDir over one follower connection until the
// connection drops or stop closes: it validates the handshake, then
// alternates incremental ship passes with heartbeats carrying next() —
// the leader's next log index — every interval.
func ServeShipConn(conn net.Conn, srcDir string, next func() uint64, interval time.Duration, stop <-chan struct{}) error {
	defer conn.Close()
	var hs [8]byte
	if _, err := io.ReadFull(conn, hs[:]); err != nil {
		return fmt.Errorf("wal: ship handshake: %w", err)
	}
	if string(hs[:4]) != shipMagic {
		return fmt.Errorf("wal: ship handshake: bad magic %q", hs[:4])
	}
	if v := binary.LittleEndian.Uint32(hs[4:]); v != shipVersion {
		return fmt.Errorf("wal: ship handshake: unsupported version %d", v)
	}
	dest := &connDest{w: bufio.NewWriterSize(conn, 1<<16)}
	sh := NewShipper(srcDir, dest, ShipOptions{Tail: true})
	if interval <= 0 {
		interval = time.Second
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		if _, err := sh.ShipNow(); err != nil {
			return err
		}
		if err := dest.heartbeat(next()); err != nil {
			return err
		}
		if err := dest.w.Flush(); err != nil {
			return err
		}
		select {
		case <-stop:
			return nil
		case <-t.C:
		}
	}
}

// ServeShip accepts follower connections on ln, shipping srcDir to each
// (every connection gets its own full re-ship from byte zero — chunk
// writes are idempotent, so reconnects are always safe). Returns when ln
// is closed; closing ln is the caller's stop signal.
func ServeShip(ln net.Listener, srcDir string, next func() uint64, interval time.Duration, stop <-chan struct{}) error {
	var wg sync.WaitGroup
	defer wg.Wait()
	go func() {
		<-stop
		ln.Close()
	}()
	for {
		conn, err := ln.Accept()
		if err != nil {
			select {
			case <-stop:
				return nil
			default:
				return err
			}
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			ServeShipConn(conn, srcDir, next, interval, stop)
		}()
	}
}

// FollowShip is the receiving side of the ship protocol: it sends the
// handshake on conn, then writes every chunk message through dest and
// invokes onHeartbeat (may be nil) with the leader's next log index for
// each heartbeat. Returns when the connection drops (io.EOF means the
// leader went away cleanly) or when dest refuses a chunk.
//
// dest is usually DirDest (a plain WAL copy) — or a fencing wrapper such
// as Replica.ShipDest, which refuses writes the moment promotion begins
// so a still-alive ex-leader's stream can never land bytes under a
// directory that has been reopened for appends.
func FollowShip(conn net.Conn, dest ShipDest, onHeartbeat func(nextIndex uint64)) error {
	var hs [8]byte
	copy(hs[:4], shipMagic)
	binary.LittleEndian.PutUint32(hs[4:], shipVersion)
	if _, err := conn.Write(hs[:]); err != nil {
		return fmt.Errorf("wal: ship handshake: %w", err)
	}
	br := bufio.NewReaderSize(conn, 1<<16)
	var data []byte
	for {
		kind, err := br.ReadByte()
		if err != nil {
			return err
		}
		switch kind {
		case shipMsgBeat:
			var b [8]byte
			if _, err := io.ReadFull(br, b[:]); err != nil {
				return err
			}
			if onHeartbeat != nil {
				onHeartbeat(binary.LittleEndian.Uint64(b[:]))
			}
		case shipMsgChunk:
			var nl [2]byte
			if _, err := io.ReadFull(br, nl[:]); err != nil {
				return err
			}
			nameLen := int(binary.LittleEndian.Uint16(nl[:]))
			nameBuf := make([]byte, nameLen)
			if _, err := io.ReadFull(br, nameBuf); err != nil {
				return err
			}
			var oh [12]byte
			if _, err := io.ReadFull(br, oh[:]); err != nil {
				return err
			}
			off := int64(binary.LittleEndian.Uint64(oh[:8]))
			n := binary.LittleEndian.Uint32(oh[8:])
			if n > maxPayloadBytes {
				return fmt.Errorf("wal: ship: absurd chunk length %d", n)
			}
			if cap(data) < int(n) {
				data = make([]byte, n)
			}
			data = data[:n]
			if _, err := io.ReadFull(br, data); err != nil {
				return err
			}
			if err := dest.WriteChunk(string(nameBuf), off, data); err != nil {
				return err
			}
		default:
			return fmt.Errorf("wal: ship: unknown message type %q", kind)
		}
	}
}
