package tensor

import (
	"math"
	"math/rand"
	"testing"
)

// TestAsmGemmMatchesGo: the AVX2 GEMM must agree with the default kernel
// within FMA-contraction tolerance on awkward shapes (odd n for the scalar
// tail, k%4 leftovers, zero blocks for the skip path). Skips on machines
// without the asm tier.
func TestAsmGemmMatchesGo(t *testing.T) {
	if !HasAsmGemm() {
		t.Skip("no asm GEMM on this machine/build")
	}
	rng := rand.New(rand.NewSource(7))
	shapes := []struct{ m, k, n int }{
		{1, 1, 1}, {3, 5, 7}, {8, 16, 8}, {13, 172, 9},
		{92, 172, 172}, {17, 6, 31}, {2, 3, 173},
	}
	for _, s := range shapes {
		a, b := New(s.m, s.k), New(s.k, s.n)
		for i := range a.Data {
			a.Data[i] = float32(rng.NormFloat64())
			if rng.Intn(4) == 0 {
				a.Data[i] = 0 // exercise the zero-block skip
			}
		}
		for i := range b.Data {
			b.Data[i] = float32(rng.NormFloat64())
		}
		want, got := New(s.m, s.n), New(s.m, s.n)
		matMulAccKernel(want, a, b)
		FastMatMulAcc(got, a, b)
		for i := range want.Data {
			w, g := float64(want.Data[i]), float64(got.Data[i])
			if diff := math.Abs(w - g); diff > 1e-4+1e-4*math.Abs(w) {
				t.Fatalf("%dx%d·%dx%d: elem %d: go %g vs asm %g", s.m, s.k, s.k, s.n, i, w, g)
			}
		}
	}
}
