package tensor

import "math"

// Exp32 is exp for float32 values.
func Exp32(x float32) float32 { return float32(math.Exp(float64(x))) }

// Log32 is the natural logarithm for float32 values.
func Log32(x float32) float32 { return float32(math.Log(float64(x))) }

// Sqrt32 is the square root for float32 values.
func Sqrt32(x float32) float32 { return float32(math.Sqrt(float64(x))) }

// Tanh32 is tanh for float32 values.
func Tanh32(x float32) float32 { return float32(math.Tanh(float64(x))) }

// Cos32 is cosine for float32 values.
func Cos32(x float32) float32 { return float32(math.Cos(float64(x))) }

// Sin32 is sine for float32 values.
func Sin32(x float32) float32 { return float32(math.Sin(float64(x))) }

// Sigmoid32 is the logistic function for float32 values, computed in a
// numerically stable branch per sign.
func Sigmoid32(x float32) float32 {
	if x >= 0 {
		z := Exp32(-x)
		return 1 / (1 + z)
	}
	z := Exp32(x)
	return z / (1 + z)
}

// SoftmaxRow overwrites row with softmax(row) using the max-subtraction
// trick, dispatched through the active kernel tier.
func SoftmaxRow(row []float32) {
	active().SoftmaxInPlace(row)
}

// LogSumExp returns log(Σ exp(x_i)) computed stably.
func LogSumExp(xs []float32) float32 {
	if len(xs) == 0 {
		return float32(math.Inf(-1))
	}
	mx := xs[0]
	for _, v := range xs[1:] {
		if v > mx {
			mx = v
		}
	}
	var sum float32
	for _, v := range xs {
		sum += Exp32(v - mx)
	}
	return mx + Log32(sum)
}
