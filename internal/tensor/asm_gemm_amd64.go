//go:build !apan_noasm

package tensor

// The AVX2+FMA GEMM micro-kernel (asm_amd64.s) is compiled into every amd64
// build and gated at runtime by CPUID — there is nothing to cross-compile
// wrong, and machines without AVX2/FMA silently keep the pure-Go tiers.
// Build with -tags apan_noasm to force the pure-Go fallback everywhere.

// cpuHasAvx2Fma reports whether the CPU and OS support the AVX2+FMA kernel
// (implemented in asm_amd64.s).
func cpuHasAvx2Fma() bool

//go:noescape
func gemmAccAsm(dst, a, b []float32, m, k, n int)

// asmKernels returns the asm tier when the CPU supports it, else nil.
// Called once from the dispatch init.
func asmKernels() *Kernels {
	if !cpuHasAvx2Fma() {
		return nil
	}
	return &Kernels{
		Name:      TierASM,
		MatMulAcc: matMulAccAsm,
	}
}

func matMulAccAsm(dst, a, b *Matrix) {
	gemmAccAsm(dst.Data, a.Data, b.Data, a.Rows, a.Cols, b.Cols)
}

//go:noescape
func int8Dot4Kernel(a, b []int8, k, kv int) (c0, c1, c2, c3 int32)

func init() {
	if cpuHasAvx2Fma() {
		int8Dot4 = int8Dot4Avx2
	}
}

// int8Dot4Avx2 runs the VPMADDWD micro-kernel over the 16-wide prefix and a
// scalar Go tail. Integer accumulation is exact, so the split changes
// nothing: the result is bit-identical to int8Dot4Go.
func int8Dot4Avx2(a, b []int8, k int) (c0, c1, c2, c3 int32) {
	kv := k &^ 15
	if kv > 0 {
		c0, c1, c2, c3 = int8Dot4Kernel(a, b, k, kv)
	}
	for t := kv; t < k; t++ {
		av := int32(a[t])
		c0 += av * int32(b[t])
		c1 += av * int32(b[k+t])
		c2 += av * int32(b[2*k+t])
		c3 += av * int32(b[3*k+t])
	}
	return
}
