//go:build !amd64 || apan_noasm

package tensor

// asmKernels reports no asm tier on platforms without the AVX2+FMA GEMM
// (non-amd64, or amd64 built with -tags apan_noasm).
func asmKernels() *Kernels { return nil }
