package tensor

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// The wide-tier contract (see Kernels): every reduction kernel agrees with
// the bit-exact default tier within the mixed relative-or-absolute 1e-4
// tolerance of close32 — the absolute escape is what makes the contract
// honest under catastrophic cancellation, where no summation order keeps
// more correct bits than float32 has. testing/quick drives the properties
// over cancellation-heavy inputs: large-magnitude values in alternating
// signs, so partial sums swing far above the final result.

// cancelSlice generates unit-scale values in alternating-sign near-canceling
// pairs, so reductions over it cancel heavily and summation-order
// differences between tiers are maximally visible. Magnitudes stay at unit
// scale: the 1e-4 absolute escape in close32 is calibrated for it.
func cancelSlice(rng *rand.Rand, n int) []float32 {
	s := make([]float32, n)
	for i := range s {
		v := float32(rng.NormFloat64())
		if i%2 == 1 {
			v = -s[i-1] + float32(rng.NormFloat64())*0.01
		}
		s[i] = v
	}
	return s
}

// TestQuickWideDotMatchesDefault: wide Dot and Dot4 vs the default tier.
func TestQuickWideDotMatchesDefault(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw) + 1
		a := cancelSlice(rng, n)
		b0, b1, b2, b3 := cancelSlice(rng, n), cancelSlice(rng, n), cancelSlice(rng, n), cancelSlice(rng, n)
		if !close32(dotWide(a, b0), dotKernel(a, b0)) {
			return false
		}
		w0, w1, w2, w3 := dot4Wide(a, b0, b1, b2, b3)
		d0, d1, d2, d3 := dot4Kernel(a, b0, b1, b2, b3)
		return close32(w0, d0) && close32(w1, d1) && close32(w2, d2) && close32(w3, d3)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickWideGemmMatchesDefault: wide MatMulAcc/MatMulBTAcc vs default on
// awkward shapes, accumulating onto a non-zero dst.
func TestQuickWideGemmMatchesDefault(t *testing.T) {
	f := func(seed int64, mRaw, kRaw, nRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		m, k, n := int(mRaw%17)+1, int(kRaw%23)+1, int(nRaw%17)+1
		a, b := New(m, k), New(k, n)
		a.Data = cancelSlice(rng, len(a.Data))
		b.Data = cancelSlice(rng, len(b.Data))
		base := cancelSlice(rng, m*n)
		dw, dd := New(m, n), New(m, n)
		copy(dw.Data, base)
		copy(dd.Data, base)
		matMulAccWide(dw, a, b)
		matMulAccKernel(dd, a, b)
		for i := range dw.Data {
			if !close32(dw.Data[i], dd.Data[i]) {
				return false
			}
		}
		bt := New(n, k)
		bt.Data = cancelSlice(rng, len(bt.Data))
		copy(dw.Data, base)
		copy(dd.Data, base)
		matMulBTAccWide(dw, a, bt)
		matMulBTAccKernel(dd, a, bt)
		for i := range dw.Data {
			if !close32(dw.Data[i], dd.Data[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickWideRowOpsMatchDefault: wide softmax and layer norm vs default.
func TestQuickWideRowOpsMatchDefault(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw) + 1
		row := cancelSlice(rng, n)
		sw := append([]float32(nil), row...)
		sd := append([]float32(nil), row...)
		softmaxRowWide(sw)
		softmaxRowKernel(sd)
		for i := range sw {
			if !close32(sw[i], sd[i]) {
				return false
			}
		}
		x := cancelSlice(rng, n)
		g, b := randSlice(rng, n), randSlice(rng, n)
		dw, dd := make([]float32, n), make([]float32, n)
		xw, xd := make([]float32, n), make([]float32, n)
		iw := layerNormRowWide(dw, xw, x, g, b, 1e-5)
		id := layerNormRowKernel(dd, xd, x, g, b, 1e-5)
		if !close32(iw, id) {
			return false
		}
		for i := range dw {
			if !close32(dw[i], dd[i]) || !close32(xw[i], xd[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickInt8Dot4BitIdentical: the active int8Dot4 (the VPMADDWD kernel on
// amd64) is exact integer arithmetic, so it must equal the pure-Go reference
// bit for bit — including k<16 (vector loop skipped) and ragged tails.
func TestQuickInt8Dot4BitIdentical(t *testing.T) {
	f := func(seed int64, kRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		k := int(kRaw) + 1
		a, b := make([]int8, k), make([]int8, 4*k)
		for i := range a {
			a[i] = int8(rng.Intn(255) - 127)
		}
		for i := range b {
			b[i] = int8(rng.Intn(255) - 127)
		}
		c0, c1, c2, c3 := int8Dot4(a, b, k)
		g0, g1, g2, g3 := int8Dot4Go(a, b, k)
		return c0 == g0 && c1 == g1 && c2 == g2 && c3 == g3
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestSetTier: the registry round-trips known names, rejects unknown ones
// without disturbing the active tier, and "" means default.
func TestSetTier(t *testing.T) {
	defer func() {
		if err := SetTier(TierDefault); err != nil {
			t.Fatal(err)
		}
	}()
	if err := SetTier(TierWide); err != nil {
		t.Fatal(err)
	}
	if Tier() != TierWide {
		t.Fatalf("Tier() = %q after SetTier(wide)", Tier())
	}
	if err := SetTier("no-such-tier"); err == nil {
		t.Fatal("SetTier accepted an unknown tier")
	}
	if Tier() != TierWide {
		t.Fatalf("failed SetTier changed the active tier to %q", Tier())
	}
	if err := SetTier(""); err != nil {
		t.Fatal(err)
	}
	if Tier() != TierDefault {
		t.Fatalf("Tier() = %q after SetTier(\"\")", Tier())
	}
}
