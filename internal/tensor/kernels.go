package tensor

import "fmt"

// This file holds the blocked/unrolled float32 kernels behind the public
// linear-algebra entry points in matrix.go. The shapes APAN serves are
// short-fat: row vectors of the embedding dimension d (~100–200 floats)
// multiplied against d×d projection weights, so the kernels optimize for
// (a) keeping a handful of independent accumulators in registers to hide
// FMA latency, and (b) streaming each output row once per four k-steps
// instead of once per k-step. Summation order differs from the naive
// loops, so results are equal to the naive path only up to float32
// rounding (ε); see kernels_test.go for the testing/quick equivalence
// properties against straight-line references.

// dotKernel is the 4-accumulator inner product.
func dotKernel(a, b []float32) float32 {
	n := len(a)
	b = b[:n] // hoist the bounds check out of the loop
	var s0, s1, s2, s3 float32
	i := 0
	for ; i+4 <= n; i += 4 {
		s0 += a[i] * b[i]
		s1 += a[i+1] * b[i+1]
		s2 += a[i+2] * b[i+2]
		s3 += a[i+3] * b[i+3]
	}
	s := (s0 + s1) + (s2 + s3)
	for ; i < n; i++ {
		s += a[i] * b[i]
	}
	return s
}

// dot4Kernel computes four inner products of a against b0..b3 in one pass
// over a, so a is loaded once per four outputs (the a·Bᵀ access pattern of
// attention K·Q scoring, where four key rows share one query row).
func dot4Kernel(a, b0, b1, b2, b3 []float32) (d0, d1, d2, d3 float32) {
	// Reslicing to len(a) hoists the four per-element bounds checks.
	b0, b1, b2, b3 = b0[:len(a)], b1[:len(a)], b2[:len(a)], b3[:len(a)]
	for i, av := range a {
		d0 += av * b0[i]
		d1 += av * b1[i]
		d2 += av * b2[i]
		d3 += av * b3[i]
	}
	return
}

// axpyKernel computes y += s*x, unrolled by four. Element-wise independent,
// so it is bitwise identical to the naive loop.
func axpyKernel(y, x []float32, s float32) {
	n := len(y)
	i := 0
	for ; i+4 <= n; i += 4 {
		y[i] += s * x[i]
		y[i+1] += s * x[i+1]
		y[i+2] += s * x[i+2]
		y[i+3] += s * x[i+3]
	}
	for ; i < n; i++ {
		y[i] += s * x[i]
	}
}

// AddScaledTo computes dst = a + s*b element-wise in one pass (the fused
// form of CopyFrom+AddScaled, saving a full write+read of dst).
func AddScaledTo(dst, a, b []float32, s float32) {
	if len(dst) != len(a) || len(dst) != len(b) {
		panic(fmt.Sprintf("tensor: AddScaledTo length mismatch %d/%d/%d", len(dst), len(a), len(b)))
	}
	active().AddScaledTo(dst, a, b, s)
}

// addScaledToKernel is the default AddScaledTo loop (element-wise, so any
// tier computes the same bits; kept as a named kernel for symmetry).
func addScaledToKernel(dst, a, b []float32, s float32) {
	for i, av := range a {
		dst[i] = av + s*b[i]
	}
}

// softmaxRowKernel is the default fused softmax: max-subtraction, a single
// sequential exp-sum accumulator, then one normalization pass. This is the
// historical SoftmaxRow body verbatim — the default tier must stay bit-exact.
func softmaxRowKernel(row []float32) {
	if len(row) == 0 {
		return
	}
	mx := row[0]
	for _, v := range row[1:] {
		if v > mx {
			mx = v
		}
	}
	var sum float32
	for i, v := range row {
		e := Exp32(v - mx)
		row[i] = e
		sum += e
	}
	inv := 1 / sum
	for i := range row {
		row[i] *= inv
	}
}

// layerNormRowKernel is the default fused layer-norm row: sequential mean and
// variance accumulators matching the historical nn.LayerNormOp inline loops
// bit-for-bit. When xhat is non-nil the normalized values are cached there
// for the backward pass.
func layerNormRowKernel(dst, xhat, x, g, b []float32, eps float32) float32 {
	d := len(x)
	var mean float32
	for _, v := range x {
		mean += v
	}
	mean /= float32(d)
	var vr float32
	for _, v := range x {
		dv := v - mean
		vr += dv * dv
	}
	vr /= float32(d)
	is := 1 / Sqrt32(vr+eps)
	if xhat != nil {
		for j, v := range x {
			h := (v - mean) * is
			xhat[j] = h
			dst[j] = g[j]*h + b[j]
		}
	} else {
		for j, v := range x {
			h := (v - mean) * is
			dst[j] = g[j]*h + b[j]
		}
	}
	return is
}

// LayerNormRow normalizes one row through the active kernel tier:
// dst = g⊙(x−mean)/std + b, returning the inverse standard deviation.
// A non-nil xhat additionally receives the normalized values (the
// backward-pass cache used by training tapes).
func LayerNormRow(dst, xhat, x, g, b []float32, eps float32) float32 {
	return active().LayerNormRow(dst, xhat, x, g, b, eps)
}

// matMulAccKernel computes dst += a·b with the ikj loop order blocked four
// k-steps deep: each dst row is streamed once per four rows of b, quartering
// the dominant load/store traffic of the naive loop. All-zero k-blocks of a
// are skipped, which keeps the post-ReLU sparsity win of the naive kernel.
func matMulAccKernel(dst, a, b *Matrix) {
	n := b.Cols
	for i := 0; i < a.Rows; i++ {
		arow := a.Data[i*a.Cols : (i+1)*a.Cols]
		drow := dst.Data[i*n : (i+1)*n]
		k := 0
		for ; k+4 <= len(arow); k += 4 {
			a0, a1, a2, a3 := arow[k], arow[k+1], arow[k+2], arow[k+3]
			if a0 == 0 && a1 == 0 && a2 == 0 && a3 == 0 {
				continue
			}
			b0 := b.Data[k*n : (k+1)*n]
			b1 := b.Data[(k+1)*n : (k+2)*n]
			b2 := b.Data[(k+2)*n : (k+3)*n]
			b3 := b.Data[(k+3)*n : (k+4)*n]
			// Reslicing to the output width hoists the bounds checks.
			b0, b1, b2, b3 = b0[:len(drow)], b1[:len(drow)], b2[:len(drow)], b3[:len(drow)]
			for j := range drow {
				drow[j] += a0*b0[j] + a1*b1[j] + a2*b2[j] + a3*b3[j]
			}
		}
		for ; k < len(arow); k++ {
			av := arow[k]
			if av == 0 {
				continue
			}
			brow := b.Data[k*n : (k+1)*n]
			for j, bv := range brow {
				drow[j] += av * bv
			}
		}
	}
}

// matMulBTAccKernel computes dst += a·bᵀ, four b-rows per pass so each a-row
// stays hot while four output columns are produced.
func matMulBTAccKernel(dst, a, b *Matrix) {
	for i := 0; i < a.Rows; i++ {
		arow := a.Data[i*a.Cols : (i+1)*a.Cols]
		drow := dst.Data[i*dst.Cols : (i+1)*dst.Cols]
		j := 0
		for ; j+4 <= b.Rows; j += 4 {
			b0 := b.Data[j*b.Cols : (j+1)*b.Cols]
			b1 := b.Data[(j+1)*b.Cols : (j+2)*b.Cols]
			b2 := b.Data[(j+2)*b.Cols : (j+3)*b.Cols]
			b3 := b.Data[(j+3)*b.Cols : (j+4)*b.Cols]
			d0, d1, d2, d3 := dot4Kernel(arow, b0, b1, b2, b3)
			drow[j] += d0
			drow[j+1] += d1
			drow[j+2] += d2
			drow[j+3] += d3
		}
		for ; j < b.Rows; j++ {
			brow := b.Data[j*b.Cols : (j+1)*b.Cols]
			drow[j] += dotKernel(arow, brow)
		}
	}
}
