package tensor

import (
	"fmt"
	"os"
	"sort"
	"sync/atomic"
)

// Kernels is a runtime-dispatched kernel tier: the full set of hot-loop
// function pointers behind the public linear-algebra entry points (Dot,
// MatMulAcc, MatMulBTAcc, Axpy/AddScaledTo, SoftmaxRow, LayerNormRow).
// Exactly one tier is active at a time, selected once at process init (or
// explicitly via SetTier); every entry point loads the active table through
// one atomic pointer, so switching tiers is safe against concurrent readers
// even though it is intended as an init-time decision.
//
// Two tiers are built in:
//
//   - "default" — the existing unrolled Go kernels, bit-for-bit identical to
//     the pre-dispatch output. This is the serving default; scenario score
//     parity across releases is defined against it.
//   - "wide"    — 8-lane wide-accumulator variants of the reduction kernels
//     plus fused softmax/layernorm loops. Summation order differs, so results
//     match the default tier only within float32 tolerance (mixed rel+abs
//     1e-4; see dispatch_test.go) — opt in via Config.KernelTier or the
//     APAN_KERNEL_TIER environment variable.
//
// One architecture tier exists today:
//
//   - "asm" — the AVX2+FMA GEMM micro-kernel (asm_amd64.s), registered only
//     when CPUID shows the CPU and OS support it, so the name is present
//     exactly when it works. Build with -tags apan_noasm to leave it out
//     entirely. Non-GEMM entries fall back to the default tier.
//
// The pure-Go tiers are the mandatory fallback: on machines or builds
// without the assembly, SetTier("asm") reports an unknown tier and the
// process keeps the bit-exact default.
type Kernels struct {
	// Name is the tier's registry key.
	Name string

	// Dot is the inner product of two equal-length vectors.
	Dot func(a, b []float32) float32
	// Dot4 computes four inner products of a against b0..b3 in one pass.
	Dot4 func(a, b0, b1, b2, b3 []float32) (d0, d1, d2, d3 float32)
	// Axpy computes y += s*x.
	Axpy func(y, x []float32, s float32)
	// AddScaledTo computes dst = a + s*b element-wise.
	AddScaledTo func(dst, a, b []float32, s float32)
	// MatMulAcc computes dst += a·b.
	MatMulAcc func(dst, a, b *Matrix)
	// MatMulBTAcc computes dst += a·bᵀ (b stored untransposed).
	MatMulBTAcc func(dst, a, b *Matrix)
	// SoftmaxInPlace overwrites row with softmax(row), max-subtracted.
	SoftmaxInPlace func(row []float32)
	// LayerNormRow normalizes one row: dst = g⊙(x−mean)/std + b, returning
	// the inverse standard deviation. When xhat is non-nil the normalized
	// values are also written there (the training-path cache).
	LayerNormRow func(dst, xhat, x, g, b []float32, eps float32) (invStd float32)
}

// TierDefault and TierWide are the built-in pure-Go tier names; TierASM is
// the amd64 AVX2+FMA tier, registered only where the hardware supports it.
const (
	TierDefault = "default"
	TierWide    = "wide"
	TierASM     = "asm"
)

var (
	tierRegistry = map[string]*Kernels{}
	activeTier   atomic.Pointer[Kernels]

	// fastGemm is the fastest MatMulAcc available in this process — the asm
	// tier's when registered, else the default kernel. Training paths use it
	// regardless of the active serving tier (gradients carry no cross-release
	// bit-exactness contract; serving inference does).
	fastGemm    func(dst, a, b *Matrix)
	fastGemmAsm bool
)

func defaultKernels() *Kernels {
	return &Kernels{
		Name:           TierDefault,
		Dot:            dotKernel,
		Dot4:           dot4Kernel,
		Axpy:           axpyKernel,
		AddScaledTo:    addScaledToKernel,
		MatMulAcc:      matMulAccKernel,
		MatMulBTAcc:    matMulBTAccKernel,
		SoftmaxInPlace: softmaxRowKernel,
		LayerNormRow:   layerNormRowKernel,
	}
}

func wideKernels() *Kernels {
	return &Kernels{
		Name:           TierWide,
		Dot:            dotWide,
		Dot4:           dot4Wide,
		Axpy:           axpyWide,
		AddScaledTo:    addScaledToKernel, // element-wise: bitwise identical at any width
		MatMulAcc:      matMulAccWide,
		MatMulBTAcc:    matMulBTAccWide,
		SoftmaxInPlace: softmaxRowWide,
		LayerNormRow:   layerNormRowWide,
	}
}

func init() {
	RegisterTier(defaultKernels())
	RegisterTier(wideKernels())
	fastGemm = tierRegistry[TierDefault].MatMulAcc
	if k := asmKernels(); k != nil {
		RegisterTier(k)
		fastGemm = k.MatMulAcc
		fastGemmAsm = true
	}
	activeTier.Store(tierRegistry[TierDefault])
	// APAN_KERNEL_TIER selects the tier before main runs. An unknown name is
	// ignored (the process keeps the bit-exact default) rather than crashing
	// serving on a typo; Config.KernelTier goes through SetTier and does
	// report the error.
	if name := os.Getenv("APAN_KERNEL_TIER"); name != "" {
		_ = SetTier(name)
	}
}

// RegisterTier adds (or replaces) a named kernel tier. Build-tagged
// architecture-specific implementations (e.g. amd64 assembly) call this from
// their init; any function left nil falls back to the default tier's entry,
// so a partial assembly tier is valid.
func RegisterTier(k *Kernels) {
	if k.Name == "" {
		panic("tensor: RegisterTier with empty name")
	}
	if d, ok := tierRegistry[TierDefault]; ok {
		if k.Dot == nil {
			k.Dot = d.Dot
		}
		if k.Dot4 == nil {
			k.Dot4 = d.Dot4
		}
		if k.Axpy == nil {
			k.Axpy = d.Axpy
		}
		if k.AddScaledTo == nil {
			k.AddScaledTo = d.AddScaledTo
		}
		if k.MatMulAcc == nil {
			k.MatMulAcc = d.MatMulAcc
		}
		if k.MatMulBTAcc == nil {
			k.MatMulBTAcc = d.MatMulBTAcc
		}
		if k.SoftmaxInPlace == nil {
			k.SoftmaxInPlace = d.SoftmaxInPlace
		}
		if k.LayerNormRow == nil {
			k.LayerNormRow = d.LayerNormRow
		}
	}
	tierRegistry[k.Name] = k
}

// SetTier activates the named kernel tier ("" means default). It is meant to
// be called once at startup (core.Config.KernelTier does); concurrent
// in-flight kernel calls keep the table they loaded.
func SetTier(name string) error {
	if name == "" {
		name = TierDefault
	}
	k, ok := tierRegistry[name]
	if !ok {
		return fmt.Errorf("tensor: unknown kernel tier %q (have %v)", name, TierNames())
	}
	activeTier.Store(k)
	return nil
}

// Tier returns the name of the active kernel tier.
func Tier() string { return activeTier.Load().Name }

// TierNames lists the registered tiers, sorted.
func TierNames() []string {
	names := make([]string, 0, len(tierRegistry))
	for n := range tierRegistry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// TierKernels returns the registered tier by name (nil if absent) — test and
// benchmark access to a specific tier without switching the process default.
func TierKernels(name string) *Kernels { return tierRegistry[name] }

func active() *Kernels { return activeTier.Load() }

// HasAsmGemm reports whether the AVX2+FMA GEMM is available in this process
// (amd64, CPU support, not built with apan_noasm).
func HasAsmGemm() bool { return fastGemmAsm }

// FastMatMulAcc computes dst += a·b through the fastest GEMM in the process
// — the asm micro-kernel when available, else the default kernel — ignoring
// the active tier. Training paths call it: gradient arithmetic is
// self-consistent within a process and carries no bit-exactness contract,
// unlike the serving default tier.
func FastMatMulAcc(dst, a, b *Matrix) {
	if a.Cols != b.Rows || dst.Rows != a.Rows || dst.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: FastMatMulAcc shapes %dx%d · %dx%d -> %dx%d", a.Rows, a.Cols, b.Rows, b.Cols, dst.Rows, dst.Cols))
	}
	fastGemm(dst, a, b)
}

// FastMatMul computes dst = a·b through the fastest GEMM (see FastMatMulAcc).
func FastMatMul(dst, a, b *Matrix) {
	dst.Zero()
	FastMatMulAcc(dst, a, b)
}
