// Package tensor provides dense float32 linear algebra for the neural
// substrate. Matrices are row-major; all operations are CPU-only and
// allocation-conscious so they can sit in training and serving hot paths.
package tensor

import (
	"fmt"
	"math"
	"math/rand"
)

// Matrix is a dense row-major float32 matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float32
}

// New returns a zeroed rows×cols matrix.
func New(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("tensor: negative dimension %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float32, rows*cols)}
}

// FromSlice wraps data (len rows*cols) without copying.
func FromSlice(rows, cols int, data []float32) *Matrix {
	if len(data) != rows*cols {
		panic(fmt.Sprintf("tensor: FromSlice %dx%d needs %d values, got %d", rows, cols, rows*cols, len(data)))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: data}
}

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	c := New(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// At returns the element at (r, c).
func (m *Matrix) At(r, c int) float32 { return m.Data[r*m.Cols+c] }

// Set assigns the element at (r, c).
func (m *Matrix) Set(r, c int, v float32) { m.Data[r*m.Cols+c] = v }

// Row returns a mutable view of row r.
func (m *Matrix) Row(r int) []float32 { return m.Data[r*m.Cols : (r+1)*m.Cols] }

// Zero sets every element to zero.
func (m *Matrix) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// Fill sets every element to v.
func (m *Matrix) Fill(v float32) {
	for i := range m.Data {
		m.Data[i] = v
	}
}

// CopyFrom copies src into m; shapes must match.
func (m *Matrix) CopyFrom(src *Matrix) {
	m.mustSameShape(src, "CopyFrom")
	copy(m.Data, src.Data)
}

func (m *Matrix) mustSameShape(o *Matrix, op string) {
	if m.Rows != o.Rows || m.Cols != o.Cols {
		panic(fmt.Sprintf("tensor: %s shape mismatch %dx%d vs %dx%d", op, m.Rows, m.Cols, o.Rows, o.Cols))
	}
}

// Add accumulates o into m element-wise.
func (m *Matrix) Add(o *Matrix) {
	m.mustSameShape(o, "Add")
	for i, v := range o.Data {
		m.Data[i] += v
	}
}

// Sub subtracts o from m element-wise.
func (m *Matrix) Sub(o *Matrix) {
	m.mustSameShape(o, "Sub")
	for i, v := range o.Data {
		m.Data[i] -= v
	}
}

// MulElem multiplies m by o element-wise.
func (m *Matrix) MulElem(o *Matrix) {
	m.mustSameShape(o, "MulElem")
	for i, v := range o.Data {
		m.Data[i] *= v
	}
}

// Scale multiplies every element by s.
func (m *Matrix) Scale(s float32) {
	for i := range m.Data {
		m.Data[i] *= s
	}
}

// AddScaled accumulates s*o into m.
func (m *Matrix) AddScaled(o *Matrix, s float32) {
	m.mustSameShape(o, "AddScaled")
	for i, v := range o.Data {
		m.Data[i] += s * v
	}
}

// MatMul computes dst = a·b. dst must be a.Rows×b.Cols and distinct from a, b.
func MatMul(dst, a, b *Matrix) {
	if a.Cols != b.Rows || dst.Rows != a.Rows || dst.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: MatMul shapes %dx%d · %dx%d -> %dx%d", a.Rows, a.Cols, b.Rows, b.Cols, dst.Rows, dst.Cols))
	}
	dst.Zero()
	MatMulAcc(dst, a, b)
}

// MatMulAcc computes dst += a·b (blocked ikj loop order; see kernels.go).
func MatMulAcc(dst, a, b *Matrix) {
	if a.Cols != b.Rows || dst.Rows != a.Rows || dst.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: MatMulAcc shapes %dx%d · %dx%d -> %dx%d", a.Rows, a.Cols, b.Rows, b.Cols, dst.Rows, dst.Cols))
	}
	active().MatMulAcc(dst, a, b)
}

// MatMulATAcc computes dst += aᵀ·b where a is stored untransposed — the
// weight-gradient accumulation dW += Xᵀ·dY (backward pass only; no serving
// path calls it). The k loop is blocked four rows deep so each dst row is
// streamed once per four k-steps, which quarters the dominant load/store
// traffic; all-zero 4-blocks of the input column (post-ReLU activations,
// empty mail slots) are skipped. Summation order differs from the naive
// kij loop, so gradients match it only up to float32 rounding.
func MatMulATAcc(dst, a, b *Matrix) {
	if a.Rows != b.Rows || dst.Rows != a.Cols || dst.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: MatMulATAcc shapes (%dx%d)ᵀ · %dx%d -> %dx%d", a.Rows, a.Cols, b.Rows, b.Cols, dst.Rows, dst.Cols))
	}
	n := b.Cols
	ac := a.Cols
	k := 0
	for ; k+4 <= a.Rows; k += 4 {
		a0 := a.Data[k*ac : (k+1)*ac]
		a1 := a.Data[(k+1)*ac : (k+2)*ac]
		a2 := a.Data[(k+2)*ac : (k+3)*ac]
		a3 := a.Data[(k+3)*ac : (k+4)*ac]
		b0 := b.Data[k*n : (k+1)*n]
		b1 := b.Data[(k+1)*n : (k+2)*n]
		b2 := b.Data[(k+2)*n : (k+3)*n]
		b3 := b.Data[(k+3)*n : (k+4)*n]
		for i := 0; i < ac; i++ {
			v0, v1, v2, v3 := a0[i], a1[i], a2[i], a3[i]
			if v0 == 0 && v1 == 0 && v2 == 0 && v3 == 0 {
				continue
			}
			drow := dst.Data[i*n : (i+1)*n]
			b0, b1, b2, b3 := b0[:len(drow)], b1[:len(drow)], b2[:len(drow)], b3[:len(drow)]
			for j := range drow {
				drow[j] += v0*b0[j] + v1*b1[j] + v2*b2[j] + v3*b3[j]
			}
		}
	}
	for ; k < a.Rows; k++ {
		arow := a.Data[k*ac : (k+1)*ac]
		brow := b.Data[k*n : (k+1)*n]
		for i, av := range arow {
			if av == 0 {
				continue
			}
			drow := dst.Data[i*n : (i+1)*n]
			for j, bv := range brow {
				drow[j] += av * bv
			}
		}
	}
}

// TransposeInto writes aᵀ into dst (which must be a.Cols×a.Rows), in 8×8
// tiles so both matrices stream through cache. Training backward uses it to
// turn the transposed-operand GEMMs (G·Bᵀ, Aᵀ·G) into plain dst += a·b
// calls for the fast GEMM path.
func TransposeInto(dst, a *Matrix) {
	if dst.Rows != a.Cols || dst.Cols != a.Rows {
		panic(fmt.Sprintf("tensor: TransposeInto shapes %dx%d -> %dx%d", a.Rows, a.Cols, dst.Rows, dst.Cols))
	}
	const tile = 8
	r, c := a.Rows, a.Cols
	for i0 := 0; i0 < r; i0 += tile {
		i1 := min(i0+tile, r)
		for j0 := 0; j0 < c; j0 += tile {
			j1 := min(j0+tile, c)
			for i := i0; i < i1; i++ {
				arow := a.Data[i*c : (i+1)*c]
				for j := j0; j < j1; j++ {
					dst.Data[j*r+i] = arow[j]
				}
			}
		}
	}
}

// MatMulBTAcc computes dst += a·bᵀ where b is stored untransposed (the
// attention K·Q access pattern; four b-rows per pass, see kernels.go).
func MatMulBTAcc(dst, a, b *Matrix) {
	if a.Cols != b.Cols || dst.Rows != a.Rows || dst.Cols != b.Rows {
		panic(fmt.Sprintf("tensor: MatMulBTAcc shapes %dx%d · (%dx%d)ᵀ -> %dx%d", a.Rows, a.Cols, b.Rows, b.Cols, dst.Rows, dst.Cols))
	}
	active().MatMulBTAcc(dst, a, b)
}

// Dot returns the inner product of equal-length vectors a and b
// (4-accumulator kernel; equal to a sequential sum up to float32 rounding).
func Dot(a, b []float32) float32 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("tensor: Dot length mismatch %d vs %d", len(a), len(b)))
	}
	return active().Dot(a, b)
}

// Axpy accumulates s*x into y.
func Axpy(y, x []float32, s float32) {
	if len(x) != len(y) {
		panic(fmt.Sprintf("tensor: Axpy length mismatch %d vs %d", len(y), len(x)))
	}
	active().Axpy(y, x, s)
}

// Transpose returns a new matrix mᵀ.
func (m *Matrix) Transpose() *Matrix {
	t := New(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			t.Data[j*t.Cols+i] = v
		}
	}
	return t
}

// RandN fills m with N(0, std²) samples drawn from rng.
func (m *Matrix) RandN(rng *rand.Rand, std float64) {
	for i := range m.Data {
		m.Data[i] = float32(rng.NormFloat64() * std)
	}
}

// RandUniform fills m with samples drawn uniformly from [lo, hi).
func (m *Matrix) RandUniform(rng *rand.Rand, lo, hi float64) {
	for i := range m.Data {
		m.Data[i] = float32(lo + rng.Float64()*(hi-lo))
	}
}

// XavierInit fills m with the Glorot-uniform distribution for a fanIn×fanOut
// weight matrix.
func (m *Matrix) XavierInit(rng *rand.Rand) {
	limit := math.Sqrt(6.0 / float64(m.Rows+m.Cols))
	m.RandUniform(rng, -limit, limit)
}

// Norm2 returns the Frobenius norm of m.
func (m *Matrix) Norm2() float64 {
	var s float64
	for _, v := range m.Data {
		s += float64(v) * float64(v)
	}
	return math.Sqrt(s)
}

// MaxAbs returns the largest absolute element of m (0 for empty matrices).
func (m *Matrix) MaxAbs() float32 {
	var mx float32
	for _, v := range m.Data {
		if v < 0 {
			v = -v
		}
		if v > mx {
			mx = v
		}
	}
	return mx
}

// String renders a small matrix for debugging.
func (m *Matrix) String() string {
	return fmt.Sprintf("Matrix(%dx%d)", m.Rows, m.Cols)
}
