package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// naive straight-line references the blocked kernels must agree with up to
// float32 rounding.

func naiveDot(a, b []float32) float32 {
	var s float32
	for i, v := range a {
		s += v * b[i]
	}
	return s
}

func naiveMatMulAcc(dst, a, b *Matrix) {
	for i := 0; i < a.Rows; i++ {
		for k := 0; k < a.Cols; k++ {
			av := a.At(i, k)
			for j := 0; j < b.Cols; j++ {
				dst.Data[i*dst.Cols+j] += av * b.At(k, j)
			}
		}
	}
}

func naiveMatMulBTAcc(dst, a, b *Matrix) {
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < b.Rows; j++ {
			dst.Data[i*dst.Cols+j] += naiveDot(a.Row(i), b.Row(j))
		}
	}
}

// relErr is the relative disagreement, 0 when both are tiny.
func relErr(got, want float32) float64 {
	d := math.Abs(float64(got - want))
	den := math.Abs(float64(got)) + math.Abs(float64(want))
	if den < 1e-6 {
		return 0
	}
	return d / den
}

// close32 accepts a blocked-kernel result when it agrees with the naive
// order to 1e-4 relative OR absolute tolerance. The absolute escape matters
// for catastrophic cancellation: when large terms of a dot product nearly
// cancel, a different summation order legitimately keeps only a handful of
// correct bits, so the *relative* error of a number near zero can blow past
// any fixed bound while the result is still as accurate as float32 allows.
func close32(got, want float32) bool {
	return relErr(got, want) <= 1e-4 || math.Abs(float64(got-want)) <= 1e-4
}

func randSlice(rng *rand.Rand, n int) []float32 {
	s := make([]float32, n)
	for i := range s {
		s[i] = float32(rng.NormFloat64())
	}
	return s
}

// TestQuickDotMatchesNaive: blocked Dot ≈ sequential Dot at every length,
// including the unrolled remainder cases.
func TestQuickDotMatchesNaive(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw) + 1
		a, b := randSlice(rng, n), randSlice(rng, n)
		return close32(Dot(a, b), naiveDot(a, b))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickAxpyMatchesNaive: the unrolled Axpy is element-wise independent,
// so it must be bitwise identical to the naive loop.
func TestQuickAxpyMatchesNaive(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw) + 1
		x := randSlice(rng, n)
		s := float32(rng.NormFloat64())
		y1, y2 := randSlice(rng, n), make([]float32, n)
		copy(y2, y1)
		Axpy(y1, x, s)
		for i := range y2 {
			y2[i] += s * x[i]
		}
		for i := range y1 {
			if y1[i] != y2[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestAddScaledTo: the fused kernel equals copy-then-AddScaled bitwise.
func TestAddScaledTo(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{1, 3, 4, 17, 128} {
		a, b := randSlice(rng, n), randSlice(rng, n)
		s := float32(rng.NormFloat64())
		dst := make([]float32, n)
		AddScaledTo(dst, a, b, s)
		want := make([]float32, n)
		copy(want, a)
		Axpy(want, b, s)
		for i := range dst {
			if dst[i] != want[i] {
				t.Fatalf("n=%d i=%d: fused %g vs sequential %g", n, i, dst[i], want[i])
			}
		}
	}
}

// TestQuickMatMulAccMatchesNaive: the k-blocked kernel ≈ the triple loop on
// random shapes, including sparse inputs that exercise the zero-block skip.
func TestQuickMatMulAccMatchesNaive(t *testing.T) {
	f := func(seed int64, mRaw, kRaw, nRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		m, k, n := int(mRaw)%12+1, int(kRaw)%24+1, int(nRaw)%12+1
		a := FromSlice(m, k, randSlice(rng, m*k))
		// Half the runs get ReLU-like sparsity in a.
		if seed%2 == 0 {
			for i := range a.Data {
				if a.Data[i] < 0 {
					a.Data[i] = 0
				}
			}
		}
		b := FromSlice(k, n, randSlice(rng, k*n))
		got, want := New(m, n), New(m, n)
		MatMulAcc(got, a, b)
		naiveMatMulAcc(want, a, b)
		for i := range got.Data {
			if !close32(got.Data[i], want.Data[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickMatMulBTAccMatchesNaive covers the transposed-B kernel.
func TestQuickMatMulBTAccMatchesNaive(t *testing.T) {
	f := func(seed int64, mRaw, kRaw, nRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		m, k, n := int(mRaw)%12+1, int(kRaw)%24+1, int(nRaw)%12+1
		a := FromSlice(m, k, randSlice(rng, m*k))
		b := FromSlice(n, k, randSlice(rng, n*k)) // untransposed B
		got, want := New(m, n), New(m, n)
		MatMulBTAcc(got, a, b)
		naiveMatMulBTAcc(want, a, b)
		for i := range got.Data {
			if !close32(got.Data[i], want.Data[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkMatMul(b *testing.B) {
	b.ReportAllocs()
	rng := rand.New(rand.NewSource(1))
	a := FromSlice(200, 172, randSlice(rng, 200*172))
	w := FromSlice(172, 172, randSlice(rng, 172*172))
	dst := New(200, 172)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMul(dst, a, w)
	}
}

func BenchmarkDot(b *testing.B) {
	b.ReportAllocs()
	rng := rand.New(rand.NewSource(1))
	x, y := randSlice(rng, 172), randSlice(rng, 172)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Dot(x, y)
	}
}
