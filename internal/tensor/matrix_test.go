package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float32) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d <= tol
}

func TestNewZeroed(t *testing.T) {
	m := New(3, 4)
	if m.Rows != 3 || m.Cols != 4 || len(m.Data) != 12 {
		t.Fatalf("bad shape: %+v", m)
	}
	for _, v := range m.Data {
		if v != 0 {
			t.Fatal("New must zero data")
		}
	}
}

func TestFromSliceAndAt(t *testing.T) {
	m := FromSlice(2, 3, []float32{1, 2, 3, 4, 5, 6})
	if m.At(0, 2) != 3 || m.At(1, 0) != 4 {
		t.Fatalf("At wrong: %v", m.Data)
	}
	m.Set(1, 2, 9)
	if m.At(1, 2) != 9 {
		t.Fatal("Set failed")
	}
}

func TestFromSlicePanicsOnBadLength(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	FromSlice(2, 2, []float32{1, 2, 3})
}

func TestMatMulKnown(t *testing.T) {
	a := FromSlice(2, 3, []float32{1, 2, 3, 4, 5, 6})
	b := FromSlice(3, 2, []float32{7, 8, 9, 10, 11, 12})
	dst := New(2, 2)
	MatMul(dst, a, b)
	want := []float32{58, 64, 139, 154}
	for i, w := range want {
		if dst.Data[i] != w {
			t.Fatalf("MatMul[%d]=%v want %v", i, dst.Data[i], w)
		}
	}
}

func TestMatMulShapesPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MatMul(New(2, 2), New(2, 3), New(2, 2))
}

func TestTransposedMultiplies(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := New(4, 5)
	b := New(4, 6)
	a.RandN(rng, 1)
	b.RandN(rng, 1)

	// aᵀ·b via MatMulATAcc vs explicit transpose.
	got := New(5, 6)
	MatMulATAcc(got, a, b)
	want := New(5, 6)
	MatMul(want, a.Transpose(), b)
	for i := range got.Data {
		if !almostEqual(got.Data[i], want.Data[i], 1e-4) {
			t.Fatalf("ATAcc[%d]=%v want %v", i, got.Data[i], want.Data[i])
		}
	}

	// a·cᵀ via MatMulBTAcc vs explicit transpose.
	c := New(6, 5)
	c.RandN(rng, 1)
	got2 := New(4, 6)
	a2 := New(4, 5)
	a2.CopyFrom(a)
	MatMulBTAcc(got2, a2, c)
	want2 := New(4, 6)
	MatMul(want2, a2, c.Transpose())
	for i := range got2.Data {
		if !almostEqual(got2.Data[i], want2.Data[i], 1e-4) {
			t.Fatalf("BTAcc[%d]=%v want %v", i, got2.Data[i], want2.Data[i])
		}
	}
}

func TestElementwiseOps(t *testing.T) {
	a := FromSlice(1, 4, []float32{1, 2, 3, 4})
	b := FromSlice(1, 4, []float32{4, 3, 2, 1})
	a.Add(b)
	for _, v := range a.Data {
		if v != 5 {
			t.Fatalf("Add: %v", a.Data)
		}
	}
	a.Sub(b)
	if a.Data[0] != 1 || a.Data[3] != 4 {
		t.Fatalf("Sub: %v", a.Data)
	}
	a.MulElem(b)
	if a.Data[0] != 4 || a.Data[3] != 4 {
		t.Fatalf("MulElem: %v", a.Data)
	}
	a.Scale(0.5)
	if a.Data[0] != 2 {
		t.Fatalf("Scale: %v", a.Data)
	}
	a.AddScaled(b, 2)
	if a.Data[0] != 10 {
		t.Fatalf("AddScaled: %v", a.Data)
	}
}

func TestDotAndAxpy(t *testing.T) {
	a := []float32{1, 2, 3}
	b := []float32{4, 5, 6}
	if Dot(a, b) != 32 {
		t.Fatalf("Dot=%v", Dot(a, b))
	}
	y := []float32{1, 1, 1}
	Axpy(y, a, 2)
	if y[0] != 3 || y[2] != 7 {
		t.Fatalf("Axpy: %v", y)
	}
}

func TestCloneIndependence(t *testing.T) {
	a := FromSlice(1, 2, []float32{1, 2})
	c := a.Clone()
	c.Data[0] = 99
	if a.Data[0] != 1 {
		t.Fatal("Clone must not share storage")
	}
}

func TestSoftmaxRow(t *testing.T) {
	row := []float32{1, 2, 3}
	SoftmaxRow(row)
	var sum float32
	for _, v := range row {
		sum += v
	}
	if !almostEqual(sum, 1, 1e-5) {
		t.Fatalf("softmax sum %v", sum)
	}
	if !(row[2] > row[1] && row[1] > row[0]) {
		t.Fatalf("softmax order: %v", row)
	}
	// Large values must not overflow.
	big := []float32{1000, 1001}
	SoftmaxRow(big)
	if math.IsNaN(float64(big[0])) || !almostEqual(big[0]+big[1], 1, 1e-5) {
		t.Fatalf("softmax overflow: %v", big)
	}
}

func TestSigmoidStable(t *testing.T) {
	if Sigmoid32(1000) != 1 {
		t.Fatalf("sigmoid(1000)=%v", Sigmoid32(1000))
	}
	if Sigmoid32(-1000) != 0 {
		t.Fatalf("sigmoid(-1000)=%v", Sigmoid32(-1000))
	}
	if !almostEqual(Sigmoid32(0), 0.5, 1e-6) {
		t.Fatalf("sigmoid(0)=%v", Sigmoid32(0))
	}
}

func TestLogSumExp(t *testing.T) {
	got := LogSumExp([]float32{0, 0})
	if !almostEqual(got, Log32(2), 1e-5) {
		t.Fatalf("LogSumExp=%v", got)
	}
	if !math.IsInf(float64(LogSumExp(nil)), -1) {
		t.Fatal("empty LogSumExp should be -inf")
	}
}

func TestXavierInitRange(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	m := New(50, 50)
	m.XavierInit(rng)
	limit := float32(math.Sqrt(6.0 / 100.0))
	for _, v := range m.Data {
		if v < -limit || v > limit {
			t.Fatalf("Xavier out of range: %v (limit %v)", v, limit)
		}
	}
	if m.Norm2() == 0 {
		t.Fatal("Xavier left matrix zero")
	}
}

// Property: matmul distributes over addition, (A+B)·C = A·C + B·C.
func TestMatMulDistributesProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n, k, m := 1+r.Intn(6), 1+r.Intn(6), 1+r.Intn(6)
		a, b, c := New(n, k), New(n, k), New(k, m)
		a.RandN(rng, 1)
		b.RandN(rng, 1)
		c.RandN(rng, 1)
		left := New(n, m)
		sum := a.Clone()
		sum.Add(b)
		MatMul(left, sum, c)
		right := New(n, m)
		MatMul(right, a, c)
		MatMulAcc(right, b, c)
		for i := range left.Data {
			if !almostEqual(left.Data[i], right.Data[i], 1e-3) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: transposing twice is the identity.
func TestDoubleTransposeProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n, m := 1+r.Intn(8), 1+r.Intn(8)
		a := New(n, m)
		a.RandN(r, 1)
		tt := a.Transpose().Transpose()
		for i := range a.Data {
			if a.Data[i] != tt.Data[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: softmax output is a probability distribution for any finite row.
func TestSoftmaxProbabilityProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		row := make([]float32, 1+r.Intn(12))
		for i := range row {
			row[i] = float32(r.NormFloat64() * 10)
		}
		SoftmaxRow(row)
		var sum float32
		for _, v := range row {
			if v < 0 || v > 1 {
				return false
			}
			sum += v
		}
		return almostEqual(sum, 1, 1e-4)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestMaxAbs(t *testing.T) {
	m := FromSlice(1, 3, []float32{-5, 2, 3})
	if m.MaxAbs() != 5 {
		t.Fatalf("MaxAbs=%v", m.MaxAbs())
	}
	if New(0, 0).MaxAbs() != 0 {
		t.Fatal("empty MaxAbs should be 0")
	}
}
