//go:build !apan_noasm

#include "textflag.h"

// func cpuHasAvx2Fma() bool
//
// CPUID feature probe for the asm kernel tier: FMA (leaf 1 ECX bit 12),
// OSXSAVE (leaf 1 ECX bit 27), OS-enabled XMM+YMM state (XGETBV XCR0 bits
// 1–2), and AVX2 (leaf 7 EBX bit 5).
TEXT ·cpuHasAvx2Fma(SB), NOSPLIT, $0-1
	MOVL $1, AX
	XORL CX, CX
	CPUID
	MOVL CX, R8
	TESTL $(1<<12), R8 // FMA
	JZ   no
	TESTL $(1<<27), R8 // OSXSAVE
	JZ   no
	XORL CX, CX
	XGETBV
	ANDL $6, AX        // XCR0: XMM and YMM state enabled by the OS
	CMPL AX, $6
	JNE  no
	MOVL $7, AX
	XORL CX, CX
	CPUID
	TESTL $(1<<5), BX  // AVX2
	JZ   no
	MOVB $1, ret+0(FP)
	RET

no:
	MOVB $0, ret+0(FP)
	RET

// func gemmAccAsm(dst, a, b []float32, m, k, n int)
//
// dst[m×n] += a[m×k] · b[k×n], row-major contiguous. The k loop is blocked
// four rows deep (each dst row is loaded/stored once per four k steps) and
// the j loop runs eight lanes wide with VFMADD231PS. All-zero 4-blocks of
// the a row are skipped (post-ReLU sparsity), matching the Go kernel's
// skip up to the sign of zero. FMA contraction means results differ from
// the Go tiers within the documented float32 tolerance.
//
// Register map:
//   DI dst row    SI a row      BX (unused after load)
//   R9 k          R10 n         R13 n*4 (row stride bytes)
//   R11 b row0    CX b row1     R12 b row2    R8 b row3
//   AX j index    DX vector end (n&^7)
//   mleft-16(SP) rows remaining, kleft-8(SP) k-blocks remaining
TEXT ·gemmAccAsm(SB), NOSPLIT, $16-96
	MOVQ m+72(FP), AX
	TESTQ AX, AX
	JLE  done
	MOVQ n+88(FP), R10
	TESTQ R10, R10
	JLE  done
	MOVQ AX, mleft-16(SP)
	MOVQ dst_base+0(FP), DI
	MOVQ a_base+24(FP), SI
	MOVQ k+80(FP), R9
	MOVQ R10, R13
	SHLQ $2, R13       // row stride in bytes
	MOVQ R10, DX
	ANDQ $-8, DX       // vectorizable j prefix

rowloop:
	MOVQ b_base+48(FP), R11
	MOVQ R9, CX
	SHRQ $2, CX        // k/4 four-row blocks
	MOVQ CX, kleft-8(SP)
	TESTQ CX, CX
	JZ   ktail_setup

kblock:
	// Skip the block if all four a coefficients are +0.0 bits.
	MOVL (SI), AX
	ORL  4(SI), AX
	ORL  8(SI), AX
	ORL  12(SI), AX
	TESTL AX, AX
	JZ   kblock_next
	VBROADCASTSS (SI), Y0
	VBROADCASTSS 4(SI), Y1
	VBROADCASTSS 8(SI), Y2
	VBROADCASTSS 12(SI), Y3
	LEAQ (R11)(R13*1), CX  // b row1
	LEAQ (R11)(R13*2), R12 // b row2
	LEAQ (CX)(R13*2), R8   // b row3
	XORQ AX, AX
	TESTQ DX, DX
	JZ   jtail

jloop8:
	VMOVUPS (DI)(AX*4), Y7
	VMOVUPS (R11)(AX*4), Y4
	VFMADD231PS Y4, Y0, Y7
	VMOVUPS (CX)(AX*4), Y5
	VFMADD231PS Y5, Y1, Y7
	VMOVUPS (R12)(AX*4), Y6
	VFMADD231PS Y6, Y2, Y7
	VMOVUPS (R8)(AX*4), Y4
	VFMADD231PS Y4, Y3, Y7
	VMOVUPS Y7, (DI)(AX*4)
	ADDQ $8, AX
	CMPQ AX, DX
	JL   jloop8

jtail:
	CMPQ AX, R10
	JGE  kblock_next

jtail1:
	VMOVSS (DI)(AX*4), X7
	VMOVSS (R11)(AX*4), X4
	VFMADD231SS X4, X0, X7
	VMOVSS (CX)(AX*4), X5
	VFMADD231SS X5, X1, X7
	VMOVSS (R12)(AX*4), X6
	VFMADD231SS X6, X2, X7
	VMOVSS (R8)(AX*4), X4
	VFMADD231SS X4, X3, X7
	VMOVSS X7, (DI)(AX*4)
	INCQ AX
	CMPQ AX, R10
	JL   jtail1

kblock_next:
	ADDQ $16, SI           // four a coefficients consumed
	LEAQ (R11)(R13*4), R11 // four b rows consumed
	DECQ kleft-8(SP)
	JNZ  kblock

ktail_setup:
	MOVQ R9, CX
	ANDQ $3, CX            // leftover k rows
	JZ   rownext

ktailrow:
	MOVL (SI), AX
	TESTL AX, AX
	JZ   ktail_next
	VBROADCASTSS (SI), Y0
	XORQ AX, AX
	TESTQ DX, DX
	JZ   kt_jtail

kt_j8:
	VMOVUPS (DI)(AX*4), Y7
	VMOVUPS (R11)(AX*4), Y4
	VFMADD231PS Y4, Y0, Y7
	VMOVUPS Y7, (DI)(AX*4)
	ADDQ $8, AX
	CMPQ AX, DX
	JL   kt_j8

kt_jtail:
	CMPQ AX, R10
	JGE  ktail_next

kt_j1:
	VMOVSS (DI)(AX*4), X7
	VMOVSS (R11)(AX*4), X4
	VFMADD231SS X4, X0, X7
	VMOVSS X7, (DI)(AX*4)
	INCQ AX
	CMPQ AX, R10
	JL   kt_j1

ktail_next:
	ADDQ $4, SI
	ADDQ R13, R11
	DECQ CX
	JNZ  ktailrow

rownext:
	ADDQ R13, DI
	DECQ mleft-16(SP)
	JNZ  rowloop

done:
	VZEROUPPER
	RET

// func int8Dot4Kernel(a, b []int8, k, kv int) (c0, c1, c2, c3 int32)
//
// Four length-kv int8 inner products of a against the four rows of the
// contiguous n×k block b (rows at byte offsets 0, k, 2k, 3k): sixteen
// bytes per step are sign-extended to words (VPMOVSXBW) and multiply-
// accumulated pairwise into int32 lanes (VPMADDWD + VPADDD). kv must be a
// multiple of 16 and ≤ k; the caller handles the scalar tail. Integer
// accumulation is exact, so the result is bit-identical to the Go loop in
// any order — the int8 path has no asm/Go numeric divergence.
//
// Register map:
//   SI a    R11/CX/R12/R8 the four b rows    R9 k (row stride)
//   DX kv (vector end)    AX element index
//   Y0-Y3 int32 accumulators    Y4 a words    Y5-Y8 b words
TEXT ·int8Dot4Kernel(SB), NOSPLIT, $0-80
	MOVQ a_base+0(FP), SI
	MOVQ b_base+24(FP), R11
	MOVQ k+48(FP), R9
	MOVQ kv+56(FP), DX
	LEAQ (R11)(R9*1), CX
	LEAQ (CX)(R9*1), R12
	LEAQ (R12)(R9*1), R8
	VPXOR Y0, Y0, Y0
	VPXOR Y1, Y1, Y1
	VPXOR Y2, Y2, Y2
	VPXOR Y3, Y3, Y3
	XORQ AX, AX
	CMPQ AX, DX
	JGE  reduce

vloop:
	VPMOVSXBW (SI)(AX*1), Y4
	VPMOVSXBW (R11)(AX*1), Y5
	VPMADDWD Y4, Y5, Y5
	VPADDD Y5, Y0, Y0
	VPMOVSXBW (CX)(AX*1), Y6
	VPMADDWD Y4, Y6, Y6
	VPADDD Y6, Y1, Y1
	VPMOVSXBW (R12)(AX*1), Y7
	VPMADDWD Y4, Y7, Y7
	VPADDD Y7, Y2, Y2
	VPMOVSXBW (R8)(AX*1), Y8
	VPMADDWD Y4, Y8, Y8
	VPADDD Y8, Y3, Y3
	ADDQ $16, AX
	CMPQ AX, DX
	JLT  vloop

reduce:
	// Horizontal-sum each accumulator's eight int32 lanes to one scalar.
	VEXTRACTI128 $1, Y0, X4
	VPADDD X4, X0, X0
	VPSHUFD $0x4E, X0, X4
	VPADDD X4, X0, X0
	VPSHUFD $0xB1, X0, X4
	VPADDD X4, X0, X0
	VMOVD X0, R10
	MOVL R10, c0+64(FP)
	VEXTRACTI128 $1, Y1, X4
	VPADDD X4, X1, X1
	VPSHUFD $0x4E, X1, X4
	VPADDD X4, X1, X1
	VPSHUFD $0xB1, X1, X4
	VPADDD X4, X1, X1
	VMOVD X1, R10
	MOVL R10, c1+68(FP)
	VEXTRACTI128 $1, Y2, X4
	VPADDD X4, X2, X2
	VPSHUFD $0x4E, X2, X4
	VPADDD X4, X2, X2
	VPSHUFD $0xB1, X2, X4
	VPADDD X4, X2, X2
	VMOVD X2, R10
	MOVL R10, c2+72(FP)
	VEXTRACTI128 $1, Y3, X4
	VPADDD X4, X3, X3
	VPSHUFD $0x4E, X3, X4
	VPADDD X4, X3, X3
	VPSHUFD $0xB1, X3, X4
	VPADDD X4, X3, X3
	VMOVD X3, R10
	MOVL R10, c3+76(FP)
	VZEROUPPER
	RET
