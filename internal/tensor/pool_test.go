package tensor

import "testing"

func TestPoolReusesBySizeClass(t *testing.T) {
	var p Pool
	m1 := p.Get(10, 17) // 170 elems → class 256
	m1.Fill(3)
	p.Put(m1)
	m2 := p.Get(17, 10) // same class, different shape
	if m2 != m1 {
		t.Fatalf("expected the pooled matrix back")
	}
	if m2.Rows != 17 || m2.Cols != 10 {
		t.Fatalf("reshaped to %dx%d", m2.Rows, m2.Cols)
	}
	for i, v := range m2.Data {
		if v != 0 {
			t.Fatalf("Get must zero reused storage; elem %d = %g", i, v)
		}
	}
	if _, misses := p.Stats(); misses != 1 {
		t.Fatalf("want 1 allocation, got %d", misses)
	}
}

func TestPoolDropsForeignCapacity(t *testing.T) {
	var p Pool
	p.Put(FromSlice(3, 5, make([]float32, 15))) // cap 15: not a power of two
	m := p.Get(3, 5)
	if _, misses := p.Stats(); misses != 1 {
		t.Fatalf("foreign matrix must not be pooled")
	}
	_ = m
}

func TestPoolZeroSize(t *testing.T) {
	var p Pool
	m := p.Get(0, 5)
	if m.Rows != 0 || m.Cols != 5 || len(m.Data) != 0 {
		t.Fatalf("zero-size get: %v", m)
	}
	p.Put(m) // must not panic
}

func TestPoolSteadyStateNoAlloc(t *testing.T) {
	var p Pool
	p.Put(p.Get(64, 64))
	allocs := testing.AllocsPerRun(100, func() {
		m := p.Get(64, 64)
		p.Put(m)
	})
	if allocs != 0 {
		t.Fatalf("steady-state Get/Put allocated %.1f times per run", allocs)
	}
}
