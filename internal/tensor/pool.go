package tensor

import "math/bits"

// Pool recycles Matrix values (struct and backing slice together) by
// power-of-two size class, so a steady-state inference workload performs no
// heap allocation: every Get after warm-up pops a previously Put matrix
// whose capacity already covers the requested shape.
//
// A Pool is NOT safe for concurrent use. The intended ownership model is
// one Pool per worker/workspace (core.Model hands each inference workspace
// its own), never shared across goroutines; cross-goroutine recycling
// happens at the workspace level via sync.Pool.
type Pool struct {
	// classes[c] holds free matrices whose Data capacity is exactly 1<<c.
	classes [maxSizeClass][]*Matrix
	gets    int64
	misses  int64
}

const maxSizeClass = 31

// sizeClass returns the smallest c with 1<<c ≥ n (n ≥ 1).
func sizeClass(n int) int { return bits.Len(uint(n - 1)) }

// Get returns a zeroed rows×cols matrix, reusing pooled storage when a
// matrix of the right size class is free.
func (p *Pool) Get(rows, cols int) *Matrix {
	m := p.GetRaw(rows, cols)
	clear(m.Data)
	return m
}

// GetRaw is Get without the zeroing: reused storage carries stale values.
// Use it only when every element of the result is about to be written —
// saving the memset matters, since op outputs in the serving hot path sum
// to megabytes per batch.
func (p *Pool) GetRaw(rows, cols int) *Matrix {
	n := rows * cols
	p.gets++
	if n == 0 {
		return &Matrix{Rows: rows, Cols: cols}
	}
	c := sizeClass(n)
	if c >= maxSizeClass {
		// Too large to class: plain allocation, dropped again on Put.
		p.misses++
		return &Matrix{Rows: rows, Cols: cols, Data: make([]float32, n)}
	}
	if free := p.classes[c]; len(free) > 0 {
		m := free[len(free)-1]
		free[len(free)-1] = nil
		p.classes[c] = free[:len(free)-1]
		m.Rows, m.Cols = rows, cols
		m.Data = m.Data[:n]
		return m
	}
	p.misses++
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float32, n, 1<<c)}
}

// Put returns m to the pool for reuse. m must not be used afterwards.
// Matrices whose capacity is not an exact power of two (i.e. not allocated
// by Get) are dropped rather than pooled, so Put is safe on any matrix.
func (p *Pool) Put(m *Matrix) {
	if m == nil || cap(m.Data) == 0 {
		return
	}
	c := bits.Len(uint(cap(m.Data))) - 1
	if 1<<c != cap(m.Data) || c >= maxSizeClass {
		return
	}
	m.Data = m.Data[:cap(m.Data)]
	p.classes[c] = append(p.classes[c], m)
}

// Stats reports Get calls and how many had to allocate; after warm-up the
// miss count should stop growing.
func (p *Pool) Stats() (gets, misses int64) { return p.gets, p.misses }
