package tensor

import "fmt"

// Int8 GEMM with per-channel symmetric quantization, the inference-only
// fast path behind Config.Quantize. Weights are quantized once per publish
// (per output column: scale = maxabs/127, zero-point 0) into a transposed
// N×K int8 layout so the GEMM inner loop walks both operands contiguously;
// activations are quantized per row at call time. Accumulation is int32 —
// at K ≤ ~260k the worst case |Σ q_a·q_w| ≤ K·127·127 stays far inside
// int32 range, so the product is exact until the final float32 rescale by
// as[i]·bs[j].

// QuantizeRowInt8 symmetrically quantizes src into dst (round-to-nearest,
// clamped to ±127) and returns the scale such that src[i] ≈ dst[i]*scale.
// An all-zero row quantizes to zeros with scale 0.
func QuantizeRowInt8(dst []int8, src []float32) float32 {
	if len(dst) != len(src) {
		panic(fmt.Sprintf("tensor: QuantizeRowInt8 length mismatch %d vs %d", len(dst), len(src)))
	}
	var mx float32
	for _, v := range src {
		if v < 0 {
			v = -v
		}
		if v > mx {
			mx = v
		}
	}
	if mx == 0 {
		for i := range dst {
			dst[i] = 0
		}
		return 0
	}
	scale := mx / 127
	inv := 127 / mx
	for i, v := range src {
		r := v * inv
		if r >= 0 {
			r += 0.5
		} else {
			r -= 0.5
		}
		q := int32(r)
		if q > 127 {
			q = 127
		} else if q < -127 {
			q = -127
		}
		dst[i] = int8(q)
	}
	return scale
}

// QuantizeColsInt8 quantizes a K×N weight matrix per output column
// (symmetric, scale = column maxabs / 127) into a transposed N×K int8
// layout plus per-column scales: bT[j*K+i] ≈ w[i][j] / scales[j].
func QuantizeColsInt8(w *Matrix) (bT []int8, scales []float32) {
	k, n := w.Rows, w.Cols
	bT = make([]int8, n*k)
	scales = make([]float32, n)
	for j := 0; j < n; j++ {
		var mx float32
		for i := 0; i < k; i++ {
			v := w.Data[i*n+j]
			if v < 0 {
				v = -v
			}
			if v > mx {
				mx = v
			}
		}
		col := bT[j*k : (j+1)*k]
		if mx == 0 {
			continue // col already zero, scale 0
		}
		scales[j] = mx / 127
		inv := 127 / mx
		for i := 0; i < k; i++ {
			r := w.Data[i*n+j] * inv
			if r >= 0 {
				r += 0.5
			} else {
				r -= 0.5
			}
			q := int32(r)
			if q > 127 {
				q = 127
			} else if q < -127 {
				q = -127
			}
			col[i] = int8(q)
		}
	}
	return bT, scales
}

// int8Dot4 computes four length-k int8 inner products of a against the four
// rows of the contiguous 4×k block b (rows at offsets 0, k, 2k, 3k). The
// amd64 build replaces it with the VPMADDWD micro-kernel at init when the
// CPU supports AVX2; integer accumulation is exact, so both implementations
// return bit-identical results and the swap carries no numeric contract.
var int8Dot4 = int8Dot4Go

func int8Dot4Go(a, b []int8, k int) (c0, c1, c2, c3 int32) {
	b0, b1, b2, b3 := b[:k], b[k:2*k], b[2*k:3*k], b[3*k:4*k]
	t := 0
	for ; t+2 <= k; t += 2 {
		a0 := int32(a[t])
		a1 := int32(a[t+1])
		c0 += a0*int32(b0[t]) + a1*int32(b0[t+1])
		c1 += a0*int32(b1[t]) + a1*int32(b1[t+1])
		c2 += a0*int32(b2[t]) + a1*int32(b2[t+1])
		c3 += a0*int32(b3[t]) + a1*int32(b3[t+1])
	}
	for ; t < k; t++ {
		a0 := int32(a[t])
		c0 += a0 * int32(b0[t])
		c1 += a0 * int32(b1[t])
		c2 += a0 * int32(b2[t])
		c3 += a0 * int32(b3[t])
	}
	return
}

// Int8MatMul computes dst[i][j] = (Σ_t aq[i*k+t]·bT[j*k+t]) · as[i] · bs[j]
// with int32 accumulators: an m×k int8 activation block (row scales as)
// against a transposed n×k int8 weight block (column scales bs). Four
// weight columns are produced per pass so each activation row is loaded
// once per four outputs, mirroring the float dot4 kernel.
func Int8MatMul(dst *Matrix, aq []int8, as []float32, bT []int8, bs []float32, m, k, n int) {
	if dst.Rows != m || dst.Cols != n || len(aq) < m*k || len(bT) < n*k || len(as) < m || len(bs) < n {
		panic(fmt.Sprintf("tensor: Int8MatMul shapes %dx%d · (%dx%d)ᵀ -> %dx%d", m, k, n, k, dst.Rows, dst.Cols))
	}
	for i := 0; i < m; i++ {
		arow := aq[i*k : (i+1)*k]
		drow := dst.Data[i*n : (i+1)*n]
		ascale := as[i]
		j := 0
		for ; j+4 <= n; j += 4 {
			c0, c1, c2, c3 := int8Dot4(arow, bT[j*k:(j+4)*k], k)
			drow[j] = float32(c0) * ascale * bs[j]
			drow[j+1] = float32(c1) * ascale * bs[j+1]
			drow[j+2] = float32(c2) * ascale * bs[j+2]
			drow[j+3] = float32(c3) * ascale * bs[j+3]
		}
		for ; j < n; j++ {
			bcol := bT[j*k : (j+1)*k]
			var c int32
			for t, av := range arow {
				c += int32(av) * int32(bcol[t])
			}
			drow[j] = float32(c) * ascale * bs[j]
		}
	}
}
