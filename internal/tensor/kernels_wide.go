package tensor

// This file holds the "wide" kernel tier: 8-lane wide-accumulator variants
// of the reduction kernels in kernels.go plus fused softmax/layernorm row
// loops. Wider accumulator fans hide more FMA latency on modern cores and
// give the compiler straight-line bodies it can keep in registers; the cost
// is a different summation order, so wide-tier results match the default
// tier only within float32 tolerance (see the equivalence properties in
// dispatch_test.go). Element-wise kernels (Axpy, AddScaledTo) have no
// reduction, so their wide variants are bitwise identical to the default.

// dotWide is the 8-accumulator inner product.
func dotWide(a, b []float32) float32 {
	n := len(a)
	var s0, s1, s2, s3, s4, s5, s6, s7 float32
	i := 0
	for ; i+8 <= n; i += 8 {
		s0 += a[i] * b[i]
		s1 += a[i+1] * b[i+1]
		s2 += a[i+2] * b[i+2]
		s3 += a[i+3] * b[i+3]
		s4 += a[i+4] * b[i+4]
		s5 += a[i+5] * b[i+5]
		s6 += a[i+6] * b[i+6]
		s7 += a[i+7] * b[i+7]
	}
	s := ((s0 + s1) + (s2 + s3)) + ((s4 + s5) + (s6 + s7))
	for ; i < n; i++ {
		s += a[i] * b[i]
	}
	return s
}

// dot4Wide computes four inner products of a against b0..b3 in one pass,
// two accumulators per output (eight live accumulators total).
func dot4Wide(a, b0, b1, b2, b3 []float32) (d0, d1, d2, d3 float32) {
	n := len(a)
	var e0, e1, e2, e3 float32
	i := 0
	for ; i+2 <= n; i += 2 {
		a0, a1 := a[i], a[i+1]
		d0 += a0 * b0[i]
		e0 += a1 * b0[i+1]
		d1 += a0 * b1[i]
		e1 += a1 * b1[i+1]
		d2 += a0 * b2[i]
		e2 += a1 * b2[i+1]
		d3 += a0 * b3[i]
		e3 += a1 * b3[i+1]
	}
	d0 += e0
	d1 += e1
	d2 += e2
	d3 += e3
	for ; i < n; i++ {
		av := a[i]
		d0 += av * b0[i]
		d1 += av * b1[i]
		d2 += av * b2[i]
		d3 += av * b3[i]
	}
	return
}

// axpyWide computes y += s*x, unrolled by eight. Element-wise independent,
// so bitwise identical to the default kernel.
func axpyWide(y, x []float32, s float32) {
	n := len(y)
	i := 0
	for ; i+8 <= n; i += 8 {
		y[i] += s * x[i]
		y[i+1] += s * x[i+1]
		y[i+2] += s * x[i+2]
		y[i+3] += s * x[i+3]
		y[i+4] += s * x[i+4]
		y[i+5] += s * x[i+5]
		y[i+6] += s * x[i+6]
		y[i+7] += s * x[i+7]
	}
	for ; i < n; i++ {
		y[i] += s * x[i]
	}
}

// matMulAccWide computes dst += a·b blocked eight k-steps deep: each dst row
// is streamed once per eight rows of b. All-zero k-blocks of a are skipped
// (the post-ReLU sparsity win), matching the default kernel's structure.
func matMulAccWide(dst, a, b *Matrix) {
	n := b.Cols
	for i := 0; i < a.Rows; i++ {
		arow := a.Data[i*a.Cols : (i+1)*a.Cols]
		drow := dst.Data[i*n : (i+1)*n]
		k := 0
		for ; k+8 <= len(arow); k += 8 {
			a0, a1, a2, a3 := arow[k], arow[k+1], arow[k+2], arow[k+3]
			a4, a5, a6, a7 := arow[k+4], arow[k+5], arow[k+6], arow[k+7]
			if a0 == 0 && a1 == 0 && a2 == 0 && a3 == 0 &&
				a4 == 0 && a5 == 0 && a6 == 0 && a7 == 0 {
				continue
			}
			b0 := b.Data[k*n : (k+1)*n]
			b1 := b.Data[(k+1)*n : (k+2)*n]
			b2 := b.Data[(k+2)*n : (k+3)*n]
			b3 := b.Data[(k+3)*n : (k+4)*n]
			b4 := b.Data[(k+4)*n : (k+5)*n]
			b5 := b.Data[(k+5)*n : (k+6)*n]
			b6 := b.Data[(k+6)*n : (k+7)*n]
			b7 := b.Data[(k+7)*n : (k+8)*n]
			for j := range drow {
				drow[j] += ((a0*b0[j] + a1*b1[j]) + (a2*b2[j] + a3*b3[j])) +
					((a4*b4[j] + a5*b5[j]) + (a6*b6[j] + a7*b7[j]))
			}
		}
		for ; k < len(arow); k++ {
			av := arow[k]
			if av == 0 {
				continue
			}
			brow := b.Data[k*n : (k+1)*n]
			for j, bv := range brow {
				drow[j] += av * bv
			}
		}
	}
}

// matMulBTAccWide computes dst += a·bᵀ, four b-rows per pass through the
// 8-accumulator dot4Wide.
func matMulBTAccWide(dst, a, b *Matrix) {
	for i := 0; i < a.Rows; i++ {
		arow := a.Data[i*a.Cols : (i+1)*a.Cols]
		drow := dst.Data[i*dst.Cols : (i+1)*dst.Cols]
		j := 0
		for ; j+4 <= b.Rows; j += 4 {
			b0 := b.Data[j*b.Cols : (j+1)*b.Cols]
			b1 := b.Data[(j+1)*b.Cols : (j+2)*b.Cols]
			b2 := b.Data[(j+2)*b.Cols : (j+3)*b.Cols]
			b3 := b.Data[(j+3)*b.Cols : (j+4)*b.Cols]
			d0, d1, d2, d3 := dot4Wide(arow, b0, b1, b2, b3)
			drow[j] += d0
			drow[j+1] += d1
			drow[j+2] += d2
			drow[j+3] += d3
		}
		for ; j < b.Rows; j++ {
			brow := b.Data[j*b.Cols : (j+1)*b.Cols]
			drow[j] += dotWide(arow, brow)
		}
	}
}

// softmaxRowWide is the fused softmax with a 4-accumulator exp-sum.
func softmaxRowWide(row []float32) {
	if len(row) == 0 {
		return
	}
	mx := row[0]
	for _, v := range row[1:] {
		if v > mx {
			mx = v
		}
	}
	var s0, s1, s2, s3 float32
	i := 0
	for ; i+4 <= len(row); i += 4 {
		e0 := Exp32(row[i] - mx)
		e1 := Exp32(row[i+1] - mx)
		e2 := Exp32(row[i+2] - mx)
		e3 := Exp32(row[i+3] - mx)
		row[i] = e0
		row[i+1] = e1
		row[i+2] = e2
		row[i+3] = e3
		s0 += e0
		s1 += e1
		s2 += e2
		s3 += e3
	}
	sum := (s0 + s1) + (s2 + s3)
	for ; i < len(row); i++ {
		e := Exp32(row[i] - mx)
		row[i] = e
		sum += e
	}
	inv := 1 / sum
	for i := range row {
		row[i] *= inv
	}
}

// layerNormRowWide is the fused layer-norm row with 4-accumulator mean and
// variance reductions.
func layerNormRowWide(dst, xhat, x, g, b []float32, eps float32) float32 {
	d := len(x)
	var m0, m1, m2, m3 float32
	i := 0
	for ; i+4 <= d; i += 4 {
		m0 += x[i]
		m1 += x[i+1]
		m2 += x[i+2]
		m3 += x[i+3]
	}
	mean := (m0 + m1) + (m2 + m3)
	for ; i < d; i++ {
		mean += x[i]
	}
	mean /= float32(d)
	var v0, v1, v2, v3 float32
	i = 0
	for ; i+4 <= d; i += 4 {
		d0 := x[i] - mean
		d1 := x[i+1] - mean
		d2 := x[i+2] - mean
		d3 := x[i+3] - mean
		v0 += d0 * d0
		v1 += d1 * d1
		v2 += d2 * d2
		v3 += d3 * d3
	}
	vr := (v0 + v1) + (v2 + v3)
	for ; i < d; i++ {
		dv := x[i] - mean
		vr += dv * dv
	}
	vr /= float32(d)
	is := 1 / Sqrt32(vr+eps)
	if xhat != nil {
		for j, v := range x {
			h := (v - mean) * is
			xhat[j] = h
			dst[j] = g[j]*h + b[j]
		}
	} else {
		for j, v := range x {
			h := (v - mean) * is
			dst[j] = g[j]*h + b[j]
		}
	}
	return is
}
