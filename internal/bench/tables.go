package bench

import (
	"fmt"
	"math"
	"text/tabwriter"

	"apan/internal/dataset"
	"apan/internal/eval"
)

// Table2StreamModels are the dynamic rows of Tables 2 and 3, in paper order.
var Table2StreamModels = []string{"DyRep", "JODIE", "TGAT", "TGN", "APAN"}

// Table2StaticModels are the static rows of Table 2, in paper order.
var Table2StaticModels = []string{"GAE", "VGAE", "DeepWalk", "Node2vec", "GAT", "SAGE", "CTDNE"}

// Table1 regenerates the dataset-statistics table.
type Table1 struct {
	Stats []dataset.Stats
}

// RunTable1 generates the three datasets and prints their statistics in the
// shape of the paper's Table 1.
func RunTable1(o Options) (*Table1, error) {
	o.normalize()
	res := &Table1{}
	for _, name := range []string{"wikipedia", "reddit", "alipay"} {
		d, err := o.MakeDataset(name)
		if err != nil {
			return nil, err
		}
		if name == "alipay" {
			res.Stats = append(res.Stats, d.Stats(10.0/14, 2.0/14))
		} else {
			res.Stats = append(res.Stats, d.Stats(0.70, 0.15))
		}
	}
	w := tabwriter.NewWriter(o.Out, 2, 4, 2, ' ', 0)
	fmt.Fprintf(w, "Table 1: dataset statistics (scale=%.3g)\n", o.Scale)
	fmt.Fprint(w, "\t")
	for _, s := range res.Stats {
		fmt.Fprintf(w, "%s\t", s.Name)
	}
	fmt.Fprintln(w)
	row := func(label string, f func(dataset.Stats) string) {
		fmt.Fprintf(w, "%s\t", label)
		for _, s := range res.Stats {
			fmt.Fprintf(w, "%s\t", f(s))
		}
		fmt.Fprintln(w)
	}
	row("Edges", func(s dataset.Stats) string { return fmt.Sprint(s.Edges) })
	row("Nodes", func(s dataset.Stats) string { return fmt.Sprint(s.Nodes) })
	row("Edge feature dim", func(s dataset.Stats) string { return fmt.Sprint(s.EdgeDim) })
	row("Nodes in train.", func(s dataset.Stats) string { return fmt.Sprint(s.NodesInTrain) })
	row("Old nodes in val+test", func(s dataset.Stats) string { return fmt.Sprint(s.OldNodesInValTest) })
	row("Unseen nodes in val+test", func(s dataset.Stats) string { return fmt.Sprint(s.UnseenNodesInValTest) })
	row("Timespan (days)", func(s dataset.Stats) string { return fmt.Sprintf("%.1f", s.TimespanDays) })
	row("Interactions with labels", func(s dataset.Stats) string { return fmt.Sprint(s.LabeledInteractions) })
	row("Label type", func(s dataset.Stats) string { return s.LabelName })
	return res, w.Flush()
}

// Table2 holds per-dataset link-prediction rows.
type Table2 struct {
	Dataset string
	Rows    []aggRow
}

// RunTable2 reproduces the link-prediction comparison (accuracy and AP with
// standard deviations over seeds) on one of the public datasets.
func RunTable2(o Options, datasetName string, models []string) (*Table2, error) {
	o.normalize()
	if models == nil {
		models = append(append([]string{}, Table2StaticModels...), Table2StreamModels...)
	}
	d, err := o.MakeDataset(datasetName)
	if err != nil {
		return nil, err
	}
	split := d.Split(0.70, 0.15)
	res := &Table2{Dataset: datasetName}
	for _, name := range models {
		var runs []RunMetrics
		for s := 0; s < o.Seeds; s++ {
			seed := o.Seed + int64(s)
			if isStaticModel(name) {
				m, err := o.NewStaticModel(name, d, seed)
				if err != nil {
					return nil, err
				}
				runs = append(runs, o.staticEval(m, d, split, seed))
			} else {
				m, db, err := o.NewStreamModel(name, d, seed)
				if err != nil {
					return nil, err
				}
				runs = append(runs, o.TrainEval(m, db, split, d.NumNodes))
			}
		}
		res.Rows = append(res.Rows, aggregateRuns(name, runs))
	}

	w := tabwriter.NewWriter(o.Out, 2, 4, 2, ' ', 0)
	fmt.Fprintf(w, "Table 2 (%s): link prediction, %d seed(s), scale=%.3g\n", datasetName, o.Seeds, o.Scale)
	fmt.Fprintln(w, "Model\tAccuracy\tAP")
	for _, r := range res.Rows {
		fmt.Fprintf(w, "%s\t%.2f (%.1f)\t%.2f (%.1f)\n", r.Model, r.Acc, r.AccStd, r.AP, r.APStd)
	}
	return res, w.Flush()
}

func isStaticModel(name string) bool {
	for _, s := range Table2StaticModels {
		if s == name {
			return true
		}
	}
	return false
}

// Table3 holds one classification column (a dataset) of the paper's
// Table 3.
type Table3 struct {
	Dataset string
	Task    string // "node" or "edge"
	Rows    []aggRow
}

// RunTable3 reproduces a dynamic node-classification column (wikipedia,
// reddit) or the edge-classification column (alipay): train the
// self-supervised encoder, freeze it, train the task decoder on embeddings
// collected in the training window, report AUC on the rest.
func RunTable3(o Options, datasetName string, models []string) (*Table3, error) {
	o.normalize()
	task := taskNode
	taskName := "node"
	trainFrac, valFrac := 0.70, 0.15
	if datasetName == "alipay" {
		task = taskEdge
		taskName = "edge"
		trainFrac, valFrac = 10.0/14, 2.0/14
	}
	if models == nil {
		models = append([]string{"GAT", "SAGE", "CTDNE"}, Table2StreamModels...)
	}
	d, err := o.MakeDataset(datasetName)
	if err != nil {
		return nil, err
	}
	split := d.Split(trainFrac, valFrac)
	res := &Table3{Dataset: datasetName, Task: taskName}
	for _, name := range models {
		aucs := make([]float64, 0, o.Seeds)
		for s := 0; s < o.Seeds; s++ {
			seed := o.Seed + int64(s)
			var samples []labeledSample
			if isStaticModel(name) {
				m, err := o.NewStaticModel(name, d, seed)
				if err != nil {
					return nil, err
				}
				m.Fit(d, split)
				samples = collectLabeledStatic(m, d)
			} else {
				m, db, err := o.NewStreamModel(name, d, seed)
				if err != nil {
					return nil, err
				}
				o.TrainEval(m, db, split, d.NumNodes)
				samples = collectLabeledDynamic(m, d)
			}
			aucs = append(aucs, downstreamAUC(samples, split.TrainEnd, task, o.Hidden, seed)*100)
		}
		row := aggRow{Model: name, HasAUC: true}
		row.AUC, row.AUCStd = meanStdSkipNaN(aucs)
		res.Rows = append(res.Rows, row)
	}

	w := tabwriter.NewWriter(o.Out, 2, 4, 2, ' ', 0)
	fmt.Fprintf(w, "Table 3 (%s, %s classification): AUC %%, %d seed(s), scale=%.3g\n", datasetName, taskName, o.Seeds, o.Scale)
	fmt.Fprintln(w, "Model\tAUC")
	for _, r := range res.Rows {
		fmt.Fprintf(w, "%s\t%.2f (%.1f)\n", r.Model, r.AUC, r.AUCStd)
	}
	return res, w.Flush()
}

func meanStdSkipNaN(xs []float64) (float64, float64) {
	var clean []float64
	for _, x := range xs {
		if !math.IsNaN(x) {
			clean = append(clean, x)
		}
	}
	if len(clean) == 0 {
		return 0, 0
	}
	return eval.MeanStd(clean)
}
