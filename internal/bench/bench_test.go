package bench

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"time"
)

func fastOpts(buf *bytes.Buffer) Options {
	return Options{
		Scale:     0.006,
		Seed:      1,
		Seeds:     1,
		Epochs:    2,
		BatchSize: 100,
		Fanout:    4,
		Slots:     5,
		Hidden:    32,
		Out:       buf,
	}
}

func TestRunTable1(t *testing.T) {
	var buf bytes.Buffer
	res, err := RunTable1(fastOpts(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Stats) != 3 {
		t.Fatalf("want 3 datasets, got %d", len(res.Stats))
	}
	names := []string{"wikipedia", "reddit", "alipay"}
	for i, s := range res.Stats {
		if s.Name != names[i] {
			t.Fatalf("dataset %d: %s", i, s.Name)
		}
		if s.Edges == 0 || s.Nodes == 0 {
			t.Fatalf("empty stats: %+v", s)
		}
	}
	out := buf.String()
	for _, want := range []string{"Edges", "Unseen nodes", "Label type", "transaction ban"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table output missing %q:\n%s", want, out)
		}
	}
}

func TestRunTable2Subset(t *testing.T) {
	var buf bytes.Buffer
	res, err := RunTable2(fastOpts(&buf), "wikipedia", []string{"CTDNE", "JODIE", "APAN"})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows: %d", len(res.Rows))
	}
	for _, r := range res.Rows {
		if math.IsNaN(r.AP) || r.AP <= 40 || r.AP > 100 {
			t.Fatalf("%s AP out of range: %v", r.Model, r.AP)
		}
	}
	// At this micro scale (2 epochs, ~1k events) only sanity ordering holds:
	// the trained APAN must clearly beat chance. Cross-model ordering claims
	// are checked by the full-scale runs recorded in EXPERIMENTS.md.
	for _, r := range res.Rows {
		if r.Model == "APAN" && r.AP < 55 {
			t.Fatalf("APAN AP %.2f barely above chance", r.AP)
		}
	}
	if !strings.Contains(buf.String(), "Table 2") {
		t.Fatal("missing table header")
	}
}

func TestRunTable3NodeClassification(t *testing.T) {
	var buf bytes.Buffer
	o := fastOpts(&buf)
	// The ban labels are sparse by design (Table 1: 217 of 157k events), so
	// a larger slice is needed for positives on both sides of the split. At
	// this scale only a handful of eval positives exist, so this test checks
	// the pipeline end to end rather than a quality bar (EXPERIMENTS.md
	// records full-scale AUCs).
	o.Scale = 0.05
	res, err := RunTable3(o, "wikipedia", []string{"APAN"})
	if err != nil {
		t.Fatal(err)
	}
	if res.Task != "node" || len(res.Rows) != 1 {
		t.Fatalf("unexpected result: %+v", res)
	}
	auc := res.Rows[0].AUC
	if auc <= 0 || auc > 100 {
		t.Fatalf("APAN node-classification AUC %.2f", auc)
	}
}

func TestRunTable3EdgeClassification(t *testing.T) {
	var buf bytes.Buffer
	o := fastOpts(&buf)
	o.Scale = 0.02
	res, err := RunTable3(o, "alipay", []string{"APAN"})
	if err != nil {
		t.Fatal(err)
	}
	if res.Task != "edge" {
		t.Fatalf("task: %s", res.Task)
	}
	auc := res.Rows[0].AUC
	if auc <= 55 || auc > 100 {
		t.Fatalf("APAN edge-classification AUC %.2f", auc)
	}
}

func TestRunFigure6SpeedOrdering(t *testing.T) {
	var buf bytes.Buffer
	o := fastOpts(&buf)
	o.DBLatency = 200 * time.Microsecond
	fig, err := RunFigure6(o, []string{"TGAT-2layers", "TGN-1layer", "APAN-2layers"})
	if err != nil {
		t.Fatal(err)
	}
	var apan, tgat, tgn float64
	for _, p := range fig.Points {
		switch p.Model {
		case "APAN-2layers":
			apan = p.InferMs
		case "TGAT-2layers":
			tgat = p.InferMs
		case "TGN-1layer":
			tgn = p.InferMs
		}
	}
	// The paper's headline: APAN's inference is far faster because graph
	// queries are off its critical path.
	if apan >= tgn || apan >= tgat {
		t.Fatalf("APAN %.3fms should undercut TGN %.3fms and TGAT %.3fms", apan, tgn, tgat)
	}
	if tgat <= tgn {
		t.Fatalf("TGAT-2layers (%.3f) should cost more than TGN-1layer (%.3f)", tgat, tgn)
	}
}

func TestRunFigure7TrainingParity(t *testing.T) {
	var buf bytes.Buffer
	fig, err := RunFigure7(fastOpts(&buf), []string{"TGN-1layer", "APAN-2layers"})
	if err != nil {
		t.Fatal(err)
	}
	var apan, tgn float64
	for _, p := range fig.Points {
		if p.EpochSec <= 0 {
			t.Fatalf("%s: no training time measured", p.Model)
		}
		switch p.Model {
		case "APAN-2layers":
			apan = p.EpochSec
		case "TGN-1layer":
			tgn = p.EpochSec
		}
	}
	// In training APAN does comparable work to TGN (paper: "almost the same
	// speed"); allow a generous band.
	if apan > 5*tgn {
		t.Fatalf("APAN training %.3fs should be within 5x of TGN %.3fs", apan, tgn)
	}
}

func TestRunFigure8Shapes(t *testing.T) {
	var buf bytes.Buffer
	res, err := RunFigure8(fastOpts(&buf), []string{"APAN"}, []int{50, 100})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.AP["APAN"]; len(got) != 2 {
		t.Fatalf("AP series: %v", got)
	}
	for _, ap := range res.AP["APAN"] {
		if ap <= 40 {
			t.Fatalf("degenerate AP: %v", res.AP["APAN"])
		}
	}
}

func TestRunFigure9Grid(t *testing.T) {
	var buf bytes.Buffer
	res, err := RunFigure9(fastOpts(&buf), []int{4, 8}, []int{4})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.AP) != 1 || len(res.AP[0]) != 2 {
		t.Fatalf("grid shape: %+v", res.AP)
	}
	if !strings.Contains(buf.String(), "Figure 9") {
		t.Fatal("missing header")
	}
}

func TestRunAblationVariants(t *testing.T) {
	var buf bytes.Buffer
	o := fastOpts(&buf)
	o.Epochs = 1
	res, err := RunAblation(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 8 {
		t.Fatalf("want 8 variants, got %d", len(res))
	}
	seen := map[string]bool{}
	for _, r := range res {
		if seen[r.Variant] {
			t.Fatalf("duplicate variant %q", r.Variant)
		}
		seen[r.Variant] = true
		if math.IsNaN(r.TestAP) || r.TestAP <= 0 {
			t.Fatalf("%s: bad AP %v", r.Variant, r.TestAP)
		}
	}
	if !strings.Contains(buf.String(), "Ablation") {
		t.Fatal("missing header")
	}
}

func TestRunDriftAblation(t *testing.T) {
	var buf bytes.Buffer
	o := fastOpts(&buf)
	o.Epochs = 1
	res, err := RunDriftAblation(o, []float64{0, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 || res[0]["APAN"] == 0 || res[0.5]["SAGE"] == 0 {
		t.Fatalf("drift results incomplete: %+v", res)
	}
}

func TestOptionsUnknowns(t *testing.T) {
	o := Options{}
	o.normalize()
	if _, err := o.MakeDataset("nope"); err == nil {
		t.Fatal("want dataset error")
	}
	d, _ := o.MakeDataset("wikipedia")
	if _, _, err := o.NewStreamModel("nope", d, 1); err == nil {
		t.Fatal("want stream model error")
	}
	if _, err := o.NewStaticModel("nope", d, 1); err == nil {
		t.Fatal("want static model error")
	}
}

func TestAggregateRuns(t *testing.T) {
	runs := []RunMetrics{
		{TestAcc: 80, TestAP: 90, EpochSec: 1, InferMs: 10},
		{TestAcc: 84, TestAP: 94, EpochSec: 3, InferMs: 30},
	}
	row := aggregateRuns("m", runs)
	if row.Acc != 82 || row.AP != 92 {
		t.Fatalf("means: %+v", row)
	}
	if row.AccStd < 2.8 || row.AccStd > 2.9 {
		t.Fatalf("std: %v", row.AccStd)
	}
	if row.EpochSec != 2 || row.InferMs != 20 {
		t.Fatalf("speeds: %+v", row)
	}
}

func TestMeanStdSkipNaN(t *testing.T) {
	m, s := meanStdSkipNaN([]float64{math.NaN(), 4, 6})
	if m != 5 || s <= 0 {
		t.Fatalf("got %v %v", m, s)
	}
	m, s = meanStdSkipNaN([]float64{math.NaN()})
	if m != 0 || s != 0 {
		t.Fatalf("all-NaN should be zeros: %v %v", m, s)
	}
}

func TestDatasetScalesInFactory(t *testing.T) {
	o := Options{Scale: 0.02, Seed: 9}
	o.normalize()
	w, _ := o.MakeDataset("wikipedia")
	a, _ := o.MakeDataset("alipay")
	if len(a.Events) >= len(w.Events)*18 {
		t.Fatal("alipay bench scaling cap not applied")
	}
	if w.EdgeDim != 172 || a.EdgeDim != 101 {
		t.Fatalf("dims: %d %d", w.EdgeDim, a.EdgeDim)
	}
}

func TestIsAsyncModel(t *testing.T) {
	for name, want := range map[string]bool{
		"APAN-1layer": true, "APAN-2layers": true, "APAN": true,
		"TGAT-2layers": false, "TGN-1layer": false, "JODIE": false, "DyRep": false,
	} {
		if isAsyncModel(name) != want {
			t.Fatalf("isAsyncModel(%s) != %v", name, want)
		}
	}
}
