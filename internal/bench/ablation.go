package bench

import (
	"fmt"
	"text/tabwriter"

	"apan/internal/core"
	"apan/internal/dataset"
	"apan/internal/gdb"
	"apan/internal/tgraph"
)

// AblationResult is one design-choice variant's link-prediction quality.
type AblationResult struct {
	Variant string
	TestAcc float64
	TestAP  float64
}

// ablationVariants enumerates the design choices DESIGN.md §5 calls out:
// the positional encoding of mailbox slots, the mail reduction ρ, the
// mailbox update rule ψ, the link decoder, and the propagation depth.
func ablationVariants(base core.Config) []struct {
	name string
	cfg  core.Config
} {
	mk := func(name string, mut func(*core.Config)) struct {
		name string
		cfg  core.Config
	} {
		c := base
		mut(&c)
		return struct {
			name string
			cfg  core.Config
		}{name, c}
	}
	return []struct {
		name string
		cfg  core.Config
	}{
		mk("baseline (learned-pos, mean, FIFO, dot)", func(c *core.Config) {}),
		mk("positional=time-encoding", func(c *core.Config) { c.Positional = core.PositionalTime }),
		mk("positional=none", func(c *core.Config) { c.Positional = core.PositionalNone }),
		mk("reduce=latest", func(c *core.Config) { c.Reduce = core.ReduceLatest }),
		mk("mailbox=key-value", func(c *core.Config) { c.KeyValueMailbox = true }),
		mk("decoder=MLP", func(c *core.Config) { c.MLPDecoder = true }),
		mk("hops=1", func(c *core.Config) { c.Hops = 1 }),
		mk("hops=3", func(c *core.Config) { c.Hops = 3 }),
	}
}

// RunAblation trains one APAN variant per design choice on Wikipedia and
// reports test accuracy/AP, quantifying how much each §3 module contributes.
func RunAblation(o Options) ([]AblationResult, error) {
	o.normalize()
	d, err := o.MakeDataset("wikipedia")
	if err != nil {
		return nil, err
	}
	split := d.Split(0.70, 0.15)

	base := core.Config{
		NumNodes: d.NumNodes, EdgeDim: d.EdgeDim,
		Slots: o.Slots, Neighbors: o.Fanout, Hops: 2, Heads: 2,
		Hidden: o.Hidden, BatchSize: o.BatchSize, LR: o.LR, Seed: o.Seed,
	}

	var out []AblationResult
	for _, v := range ablationVariants(base) {
		var acc, ap float64
		for s := 0; s < o.Seeds; s++ {
			cfg := v.cfg
			cfg.Seed = o.Seed + int64(s)
			db := gdb.New(tgraph.New(d.NumNodes))
			m, err := core.NewWithDB(cfg, db)
			if err != nil {
				return nil, err
			}
			r := o.TrainEval(m, db, split, d.NumNodes)
			acc += r.TestAcc
			ap += r.TestAP
		}
		n := float64(o.Seeds)
		out = append(out, AblationResult{Variant: v.name, TestAcc: acc / n, TestAP: ap / n})
	}

	w := tabwriter.NewWriter(o.Out, 2, 4, 2, ' ', 0)
	fmt.Fprintf(w, "Ablation (wikipedia link prediction, scale=%.3g, %d seed(s))\n", o.Scale, o.Seeds)
	fmt.Fprintln(w, "Variant\tAccuracy\tAP")
	for _, r := range out {
		fmt.Fprintf(w, "%s\t%.2f\t%.2f\n", r.Variant, r.TestAcc, r.TestAP)
	}
	return out, w.Flush()
}

// RunDriftAblation quantifies the dataset-drift knob: static snapshots keep
// up when preferences are stationary and fall behind as drift grows — the
// dynamics motivating CTDG models (§1).
func RunDriftAblation(o Options, drifts []float64) (map[float64]map[string]float64, error) {
	o.normalize()
	if drifts == nil {
		drifts = []float64{0, 0.4, 0.8}
	}
	models := []string{"SAGE", "APAN"}
	out := make(map[float64]map[string]float64, len(drifts))
	for _, drift := range drifts {
		cfg := dataset.Config{Scale: o.Scale, Seed: o.Seed + 1000, Drift: drift, NoDrift: drift == 0}
		d := dataset.Wikipedia(cfg)
		split := d.Split(0.70, 0.15)
		out[drift] = make(map[string]float64, len(models))
		for _, name := range models {
			if isStaticModel(name) {
				m, err := o.NewStaticModel(name, d, o.Seed)
				if err != nil {
					return nil, err
				}
				out[drift][name] = o.staticEval(m, d, split, o.Seed).TestAP
			} else {
				m, db, err := o.NewStreamModel(name, d, o.Seed)
				if err != nil {
					return nil, err
				}
				out[drift][name] = o.TrainEval(m, db, split, d.NumNodes).TestAP
			}
		}
	}
	w := tabwriter.NewWriter(o.Out, 2, 4, 2, ' ', 0)
	fmt.Fprintf(w, "Drift ablation (wikipedia, test AP %%, scale=%.3g)\n", o.Scale)
	fmt.Fprint(w, "drift")
	for _, m := range models {
		fmt.Fprintf(w, "\t%s", m)
	}
	fmt.Fprintln(w)
	for _, drift := range drifts {
		fmt.Fprintf(w, "%.1f", drift)
		for _, m := range models {
			fmt.Fprintf(w, "\t%.2f", out[drift][m])
		}
		fmt.Fprintln(w)
	}
	return out, w.Flush()
}
