package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"apan/internal/scenario"
)

// ScenarioReport is the machine-readable output of the scenario harness
// (apan-bench -exp scenarios -json): one row per bundled scenario with its
// stream accounting, labeled metrics, latency stats and invariant verdicts.
type ScenarioReport struct {
	GeneratedUnix     int64              `json:"generated_unix"`
	GoVersion         string             `json:"go"`
	GOMAXPROCS        int                `json:"gomaxprocs"`
	Seed              int64              `json:"seed"`
	EventsPerScenario int                `json:"events_per_scenario"`
	BatchSize         int                `json:"batch_size"`
	GraphBackend      string             `json:"graph_backend,omitempty"`
	Results           []*scenario.Result `json:"scenarios"`
}

// Violations counts invariant breaches across all scenarios.
func (r *ScenarioReport) Violations() int {
	var n int
	for _, res := range r.Results {
		n += len(res.Violations)
	}
	return n
}

// WriteJSON persists the report (repo convention: BENCH_apan.json for the
// default experiment record; CI writes a separate artifact path).
func (r *ScenarioReport) WriteJSON(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// RunScenarios executes the bundled scenario suite at a size scaled by
// Options.Scale and renders the per-scenario table. The returned error is
// non-nil when any invariant was violated, so CI jobs running the table
// fail loudly; the report is still returned (and printable/persistable) in
// that case.
func RunScenarios(o Options) (*ScenarioReport, error) {
	o.normalize()
	events := int(60000 * o.Scale)
	if events < 600 {
		events = 600
	}
	ro := scenario.RunOptions{Seed: o.Seed, Events: events, BatchSize: 50, GraphBackend: o.GraphBackend}

	rep := &ScenarioReport{
		GeneratedUnix:     time.Now().Unix(),
		GoVersion:         runtime.Version(),
		GOMAXPROCS:        runtime.GOMAXPROCS(0),
		Seed:              o.Seed,
		EventsPerScenario: events,
		BatchSize:         ro.BatchSize,
		GraphBackend:      o.GraphBackend,
	}

	fmt.Fprintf(o.Out, "%-22s %7s %7s %7s %6s %6s %10s %10s %5s %9s %5s\n",
		"scenario", "events", "applied", "dropped", "AP", "AUC", "sync_mean", "sync_p99", "maxq", "drift", "inv")
	metric := func(p *float64) string {
		if p == nil {
			return "-"
		}
		return fmt.Sprintf("%.3f", *p)
	}
	for _, sc := range scenario.Bundled() {
		res, err := scenario.Run(sc, ro)
		if err != nil {
			return rep, fmt.Errorf("bench: scenario %s: %w", sc.Name, err)
		}
		rep.Results = append(rep.Results, res)
		fmt.Fprintf(o.Out, "%-22s %7d %7d %7d %6s %6s %9dµs %9dµs %5d %9.2e %5s\n",
			res.Scenario, res.Events, res.Applied, res.Dropped,
			metric(res.AP), metric(res.AUC),
			res.SyncMeanU, res.SyncP99U, res.MaxDepth, res.ScoreDrift,
			res.InvariantSummary())
		if res.OnlineAP != nil && res.FrozenAP != nil {
			fmt.Fprintf(o.Out, "  continual learning: online AP %.3f vs frozen %.3f post-shift, %d versions published\n",
				*res.OnlineAP, *res.FrozenAP, res.VersionsPublished)
		}
		for _, v := range res.Violations {
			fmt.Fprintf(o.Out, "  VIOLATION %s\n", v)
		}
	}
	if n := rep.Violations(); n > 0 {
		return rep, fmt.Errorf("bench: %d invariant violation(s) across scenarios (see table)", n)
	}
	return rep, nil
}
