package bench

import (
	"math/rand"
	"time"

	"apan/internal/baselines"
	"apan/internal/dataset"
	"apan/internal/eval"
	"apan/internal/gdb"
	"apan/internal/tgraph"
)

// RunMetrics is the outcome of one trained model under one seed.
type RunMetrics struct {
	Model    string
	TestAcc  float64 // %
	TestAP   float64 // %
	ValAP    float64 // %
	EpochSec float64 // mean training seconds per epoch
	// InferMs is the mean synchronous inference time per test batch in
	// milliseconds, including simulated graph-DB latency for models that
	// query the graph on the critical path.
	InferMs float64
	Epochs  int
}

// isAsyncModel reports whether the model keeps graph queries off the
// synchronous inference path (only APAN does).
func isAsyncModel(name string) bool {
	return len(name) >= 4 && name[:4] == "APAN"
}

// TrainEval runs the full §4.4 protocol on one dynamic model: train with
// early stopping on validation AP, then replay the stream for a clean
// val/test measurement.
func (o *Options) TrainEval(m baselines.StreamModel, db *gdb.DB, split *dataset.Split, numNodes int) RunMetrics {
	stopper := eval.NewEarlyStopper(o.Patience)
	var trainSecs []float64
	epochs := 0
	for e := 0; e < o.Epochs; e++ {
		m.ResetRuntime()
		ns := dataset.NewNegSampler(numNodes)
		tr := m.TrainEpoch(split.Train, ns)
		trainSecs = append(trainSecs, tr.Elapsed.Seconds())
		val := m.EvalStream(split.Val, ns)
		epochs++
		if stop, _ := stopper.Step(val.AP); stop {
			break
		}
	}

	// Clean measurement pass: rebuild streaming state without gradients,
	// then score validation and test.
	m.ResetRuntime()
	ns := dataset.NewNegSampler(numNodes)
	m.EvalStream(split.Train, ns)
	val := m.EvalStream(split.Val, ns)
	db.ResetStats()
	test := m.EvalStream(split.Test, ns)
	dbStats := db.Stats()

	inferMs := test.SyncHist.Mean().Seconds() * 1e3
	if !isAsyncModel(m.Name()) && test.Batches > 0 {
		// Synchronous models pay the graph-DB round trips before answering.
		inferMs += dbStats.Simulated.Seconds() * 1e3 / float64(test.Batches)
	}
	meanSec, _ := eval.MeanStd(trainSecs)
	return RunMetrics{
		Model:    m.Name(),
		TestAcc:  test.Accuracy * 100,
		TestAP:   test.AP * 100,
		ValAP:    val.AP * 100,
		EpochSec: meanSec,
		InferMs:  inferMs,
		Epochs:   epochs,
	}
}

// staticEval fits a static model and scores it under the shared protocol.
func (o *Options) staticEval(m baselines.StaticModel, d *dataset.Dataset, split *dataset.Split, seed int64) RunMetrics {
	start := time.Now()
	m.Fit(d, split)
	fitSec := time.Since(start).Seconds()

	ns := dataset.NewNegSampler(d.NumNodes)
	for i := range split.Train {
		ns.Observe(&split.Train[i])
	}
	rng := rand.New(rand.NewSource(seed + 17))
	_, _ = baselines.EvalStaticLinkPrediction(m, split.Val, ns, rng) // advance pool over val
	start = time.Now()
	acc, ap := baselines.EvalStaticLinkPrediction(m, split.Test, ns, rng)
	inferSec := time.Since(start).Seconds()
	batches := (len(split.Test) + o.BatchSize - 1) / o.BatchSize
	if batches == 0 {
		batches = 1
	}
	return RunMetrics{
		Model:    m.Name(),
		TestAcc:  acc * 100,
		TestAP:   ap * 100,
		EpochSec: fitSec,
		InferMs:  inferSec * 1e3 / float64(batches),
		Epochs:   1,
	}
}

// aggregate folds per-seed runs into a mean/std row.
type aggRow struct {
	Model             string
	Acc, AccStd       float64
	AP, APStd         float64
	AUC, AUCStd       float64
	EpochSec, InferMs float64
	HasAcc, HasAUC    bool
}

func aggregateRuns(model string, runs []RunMetrics) aggRow {
	accs := make([]float64, len(runs))
	aps := make([]float64, len(runs))
	var epochSec, inferMs float64
	for i, r := range runs {
		accs[i] = r.TestAcc
		aps[i] = r.TestAP
		epochSec += r.EpochSec
		inferMs += r.InferMs
	}
	accM, accS := eval.MeanStd(accs)
	apM, apS := eval.MeanStd(aps)
	n := float64(len(runs))
	return aggRow{
		Model: model, HasAcc: true,
		Acc: accM, AccStd: accS,
		AP: apM, APStd: apS,
		EpochSec: epochSec / n, InferMs: inferMs / n,
	}
}

// labeledSample is one (embedding, edge feature, label) observation for the
// downstream classification tasks of Table 3.
type labeledSample struct {
	z     []float32
	zPeer []float32
	feat  []float32
	label int8
	time  float64
}

// collectLabeled streams the full dataset through a trained dynamic model
// and captures embeddings at every labeled interaction.
func collectLabeledDynamic(m baselines.StreamModel, d *dataset.Dataset) []labeledSample {
	m.ResetRuntime()
	var out []labeledSample
	m.CollectStream(d.Events, nil, func(ev *tgraph.Event, zsrc, zdst []float32) {
		if ev.Label < 0 {
			return
		}
		out = append(out, labeledSample{
			z:     append([]float32(nil), zsrc...),
			zPeer: append([]float32(nil), zdst...),
			feat:  ev.Feat,
			label: ev.Label,
			time:  ev.Time,
		})
	})
	return out
}

// collectLabeledStatic does the same with a static model's fixed embeddings.
func collectLabeledStatic(m baselines.StaticModel, d *dataset.Dataset) []labeledSample {
	var out []labeledSample
	for i := range d.Events {
		ev := &d.Events[i]
		if ev.Label < 0 {
			continue
		}
		out = append(out, labeledSample{
			z:     append([]float32(nil), m.Embedding(ev.Src)...),
			zPeer: append([]float32(nil), m.Embedding(ev.Dst)...),
			feat:  ev.Feat,
			label: ev.Label,
			time:  ev.Time,
		})
	}
	return out
}
