// Package bench regenerates every table and figure of the paper's
// evaluation section (§4). Each RunX function trains the relevant models
// under the protocol of §4.4 and prints a table in the shape of the paper's,
// returning the structured results for programmatic checks. DESIGN.md §3
// maps experiments to these runners; the root-package benchmarks in
// bench_test.go drive them at reduced scale, and cmd/apan-bench at full
// scale.
package bench
