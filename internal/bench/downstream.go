package bench

import (
	"math"
	"math/rand"

	"apan/internal/eval"
	"apan/internal/nn"
	"apan/internal/tensor"
)

// downstreamTask selects the decoder input of the Table-3 classifiers.
type downstreamTask int

const (
	// taskNode classifies a node's dynamic state from z_i alone
	// (Wikipedia/Reddit ban prediction).
	taskNode downstreamTask = iota
	// taskEdge classifies an interaction from [z_i ‖ e_ij ‖ z_j]
	// (Alipay fraud detection).
	taskEdge
)

// downstreamAUC trains an MLP decoder on the labeled samples whose time is
// within the training window and reports ROC-AUC on the rest — the paper's
// dynamic classification protocol (decoder on frozen encoder embeddings,
// AUC because labels are heavily skewed).
func downstreamAUC(samples []labeledSample, trainEnd float64, task downstreamTask, hidden int, seed int64) float64 {
	return downstreamAUCImpl(samples, trainEnd, task, hidden, seed, 600)
}

func downstreamAUCImpl(samples []labeledSample, trainEnd float64, task downstreamTask, hidden int, seed int64, steps int) float64 {
	var train, test []labeledSample
	for _, s := range samples {
		if s.time <= trainEnd {
			train = append(train, s)
		} else {
			test = append(test, s)
		}
	}
	if len(train) == 0 || len(test) == 0 {
		return math.NaN()
	}
	var pos, neg []labeledSample
	for _, s := range train {
		if s.label == 1 {
			pos = append(pos, s)
		} else {
			neg = append(neg, s)
		}
	}
	if len(pos) == 0 || len(neg) == 0 {
		return math.NaN()
	}

	input := func(s *labeledSample) []float32 {
		if task == taskNode {
			return s.z
		}
		row := make([]float32, 0, len(s.z)+len(s.feat)+len(s.zPeer))
		row = append(row, s.z...)
		row = append(row, s.feat...)
		return append(row, s.zPeer...)
	}
	inDim := len(input(&train[0]))

	// Per-dimension standardization from training statistics: the input mixes
	// embeddings (~unit scale) with raw feature channels whose scales differ
	// by orders of magnitude.
	mean := make([]float32, inDim)
	std := make([]float32, inDim)
	for i := range train {
		for j, v := range input(&train[i]) {
			mean[j] += v
		}
	}
	for j := range mean {
		mean[j] /= float32(len(train))
	}
	for i := range train {
		for j, v := range input(&train[i]) {
			d := v - mean[j]
			std[j] += d * d
		}
	}
	for j := range std {
		std[j] = tensor.Sqrt32(std[j]/float32(len(train))) + 1e-6
	}
	rawInput := input
	input = func(s *labeledSample) []float32 {
		raw := rawInput(s)
		// Copy before normalizing: for taskNode the raw input aliases the
		// sample's own slice, and repeated in-place standardization of
		// resampled rows would corrupt the training set.
		row := make([]float32, len(raw))
		for j, v := range raw {
			row[j] = (v - mean[j]) / std[j]
		}
		return row
	}

	rng := rand.New(rand.NewSource(seed))
	mlp := nn.NewMLP(inDim, hidden, 1, 0.3, rng)
	opt := nn.NewAdam(mlp.Params(), 1e-3)

	// Class-balanced minibatches compensate the heavy label skew; input
	// dropout and weight decay keep the decoder from memorizing the tiny
	// positive set through its noise dimensions.
	const half = 16
	const weightDecay = 1e-3
	for step := 0; step < steps; step++ {
		x := tensor.New(2*half, inDim)
		targets := make([]float32, 2*half)
		for i := 0; i < half; i++ {
			copy(x.Row(i), input(&pos[rng.Intn(len(pos))]))
			targets[i] = 1
			copy(x.Row(half+i), input(&neg[rng.Intn(len(neg))]))
		}
		tp := nn.NewTrainingTape(rng)
		in := tp.Dropout(tp.Input(x), 0.2)
		loss := tp.BCEWithLogits(mlp.Forward(tp, in), targets)
		tp.Backward(loss)
		opt.Step()
		opt.ZeroGrad()
		for _, p := range mlp.Params() {
			p.Value().Scale(1 - weightDecay)
		}
	}

	scores := make([]float32, len(test))
	labels := make([]bool, len(test))
	for i := range test {
		x := tensor.New(1, inDim)
		copy(x.Row(0), input(&test[i]))
		tp := nn.NewTape()
		out := mlp.Forward(tp, tp.Input(x))
		scores[i] = tensor.Sigmoid32(out.Value().Data[0])
		labels[i] = test[i].label == 1
	}
	return eval.ROCAUC(scores, labels)
}
