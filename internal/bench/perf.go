package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"apan/internal/core"
	"apan/internal/dataset"
	"apan/internal/tgraph"
	"apan/internal/train"
	"apan/internal/wal"
)

// PerfScenario is one serving micro-benchmark's measurement, the unit of
// the repo's performance trajectory (BENCH_apan.json).
type PerfScenario struct {
	Name        string  `json:"name"`
	Events      int     `json:"events_per_op"`
	EvPerSec    float64 `json:"ev_per_s"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"b_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// PerfReport is the BENCH_apan.json payload: the serving hot-path numbers
// for this commit, comparable across the repo's history.
type PerfReport struct {
	GeneratedUnix int64          `json:"generated_unix"`
	GoVersion     string         `json:"go"`
	GOMAXPROCS    int            `json:"gomaxprocs"`
	Scale         float64        `json:"dataset_scale"`
	Scenarios     []PerfScenario `json:"scenarios"`
}

// perfModel builds a warmed model over the benchmark dataset, on the given
// graph backend ("" = flat).
func perfModel(o Options, ds *dataset.Dataset, noPool bool, hops int, backend string) (*core.Model, []tgraph.Event, error) {
	cfg := core.Config{
		NumNodes: ds.NumNodes, EdgeDim: ds.EdgeDim,
		Slots: o.Slots, Neighbors: o.Fanout,
		BatchSize: o.BatchSize, Seed: o.Seed,
		NoWorkspacePool: noPool,
		GraphBackend:    backend,
	}
	if hops > 0 {
		cfg.Hops = hops
	}
	m, err := core.New(cfg)
	if err != nil {
		return nil, nil, err
	}
	warm := 1000
	if warm+o.BatchSize > len(ds.Events) {
		return nil, nil, fmt.Errorf("bench: perf needs ≥%d events, dataset has %d (raise -scale)", warm+o.BatchSize, len(ds.Events))
	}
	m.EvalStream(ds.Events[:warm], nil)
	return m, ds.Events[warm : warm+o.BatchSize], nil
}

// RunPerf measures the serving hot paths with testing.Benchmark — the
// pooled zero-allocation InferBatch against its allocate-fresh baseline
// (Config.NoWorkspacePool), and the scratch-reusing propagator against a
// fresh-per-batch one — and renders a table. The report is the machine-
// readable trajectory record; WritePerfJSON persists it.
func RunPerf(o Options) (*PerfReport, error) {
	o.normalize()
	ds, err := o.MakeDataset("wikipedia")
	if err != nil {
		return nil, err
	}
	rep := &PerfReport{
		GeneratedUnix: time.Now().Unix(),
		GoVersion:     runtime.Version(),
		GOMAXPROCS:    runtime.GOMAXPROCS(0),
		Scale:         o.Scale,
	}

	add := func(name string, events int, r testing.BenchmarkResult) {
		ns := float64(r.NsPerOp())
		sc := PerfScenario{
			Name:        name,
			Events:      events,
			NsPerOp:     ns,
			BytesPerOp:  r.AllocedBytesPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
		}
		if ns > 0 {
			sc.EvPerSec = float64(events) / (ns / 1e9)
		}
		rep.Scenarios = append(rep.Scenarios, sc)
		fmt.Fprintf(o.Out, "%-28s %12.0f ns/op %10.0f ev/s %10d B/op %8d allocs/op\n",
			name, sc.NsPerOp, sc.EvPerSec, sc.BytesPerOp, sc.AllocsPerOp)
	}

	for _, mode := range []struct {
		name   string
		noPool bool
	}{{"infer_batch_pooled", false}, {"infer_batch_baseline", true}} {
		m, batch, err := perfModel(o, ds, mode.noPool, 0, core.GraphBackendFlat)
		if err != nil {
			return nil, err
		}
		m.InferBatch(batch).Release() // warm the workspace pool
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				m.InferBatch(batch).Release()
			}
		})
		add(mode.name, len(batch), r)
	}

	// Int8 quantized scoring, same geometry as infer_batch_pooled: the
	// dense-layer GEMMs run int8·int8→int32 over per-channel quantized
	// published weights with on-the-fly activation quantization (quantized
	// once per publish, not per batch). The delta vs infer_batch_pooled is
	// the throughput the ≤0.02 AP quantized_drift budget buys.
	{
		cfg := core.Config{
			NumNodes: ds.NumNodes, EdgeDim: ds.EdgeDim,
			Slots: o.Slots, Neighbors: o.Fanout,
			BatchSize: o.BatchSize, Seed: o.Seed,
			Quantize: true,
		}
		m, err := core.New(cfg)
		if err != nil {
			return nil, err
		}
		warm := 1000
		m.EvalStream(ds.Events[:warm], nil)
		batch := ds.Events[warm : warm+o.BatchSize]
		m.InferBatch(batch).Release() // warm the workspace pool
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				m.InferBatch(batch).Release()
			}
		})
		add("infer_batch_int8", len(batch), r)
	}

	// Concurrent scoring throughput across a GOMAXPROCS sweep: the sharded,
	// lock-striped stores are supposed to scale synchronous-link reads, and
	// this row set records whether they do on this machine (flat beyond the
	// core count is the hardware's fault, falling at p>1 is ours).
	{
		prev := runtime.GOMAXPROCS(0)
		for _, p := range []int{1, 4, 8} {
			m, batch, err := perfModel(o, ds, false, 0, core.GraphBackendFlat)
			if err != nil {
				runtime.GOMAXPROCS(prev)
				return nil, err
			}
			// Warm p workspaces by holding p concurrent checkouts: the
			// parallel loop below runs p scorers at once, and each needs
			// its own warm workspace for the steady state to be
			// allocation-free.
			warm := make([]*core.Inference, p)
			for i := range warm {
				warm[i] = m.InferBatch(batch)
			}
			for _, inf := range warm {
				inf.Release()
			}
			runtime.GOMAXPROCS(p)
			r := testing.Benchmark(func(b *testing.B) {
				b.ReportAllocs()
				b.RunParallel(func(pb *testing.PB) {
					for pb.Next() {
						m.InferBatch(batch).Release()
					}
				})
			})
			runtime.GOMAXPROCS(prev)
			add(fmt.Sprintf("infer_parallel_p%d", p), len(batch), r)
		}
	}

	// Full serve cycles (InferBatch + ApplyInference) per graph backend
	// across the same GOMAXPROCS sweep. This is where the backend choice
	// shows: the flat store serializes every apply on the model's graph
	// mutex, while a concurrency-safe backend (tgraph.Sharded) lets
	// appliers proceed in parallel under partition locks — so graph_flat_p8
	// vs graph_sharded_p8 is the row pair docs/performance.md reports.
	{
		prev := runtime.GOMAXPROCS(0)
		for _, be := range []struct{ name, backend string }{
			{"graph_flat", core.GraphBackendFlat},
			{"graph_sharded", core.GraphBackendSharded},
		} {
			for _, p := range []int{1, 4, 8} {
				m, batch, err := perfModel(o, ds, false, 0, be.backend)
				if err != nil {
					runtime.GOMAXPROCS(prev)
					return nil, err
				}
				inf := m.InferBatch(batch)
				m.ApplyInference(inf)
				inf.Release()
				runtime.GOMAXPROCS(p)
				r := testing.Benchmark(func(b *testing.B) {
					b.ReportAllocs()
					b.RunParallel(func(pb *testing.PB) {
						for pb.Next() {
							inf := m.InferBatch(batch)
							m.ApplyInference(inf)
							inf.Release()
						}
					})
				})
				runtime.GOMAXPROCS(prev)
				add(fmt.Sprintf("%s_p%d", be.name, p), len(batch), r)
			}
		}
	}

	// Durability overhead on the serving path: one full serve cycle
	// (InferBatch + ApplyInference) with and without a WAL attached. The
	// wal_on row uses the serving default SyncInterval policy, so the apply
	// pays encode + group-commit write but not a per-batch fsync; the repo's
	// budget is wal_on within 15% of wal_off (docs/durability.md).
	for _, mode := range []struct {
		name string
		on   bool
	}{{"infer_batch_wal_off", false}, {"infer_batch_wal_on", true}} {
		m, batch, err := perfModel(o, ds, false, 0, core.GraphBackendFlat)
		if err != nil {
			return nil, err
		}
		var l *wal.Log
		if mode.on {
			dir, err := os.MkdirTemp("", "apan-bench-wal-")
			if err != nil {
				return nil, err
			}
			defer os.RemoveAll(dir)
			if l, err = wal.Open(wal.Options{Dir: dir, Policy: wal.SyncInterval}); err != nil {
				return nil, err
			}
			if err := m.AttachWAL(l); err != nil {
				return nil, err
			}
		}
		inf := m.InferBatch(batch)
		m.ApplyInference(inf)
		inf.Release()
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				inf := m.InferBatch(batch)
				m.ApplyInference(inf)
				inf.Release()
			}
		})
		if mode.on {
			if err := m.DetachWAL().Close(); err != nil {
				return nil, err
			}
		}
		add(mode.name, len(batch), r)
	}

	// Checkpoint cut cost: the pause a durability cut imposes at the serial
	// apply point, full-copy vs incremental. The incremental row keeps the
	// previous cut's snapshot and copies only shards a batch dirtied since,
	// so its delta vs the full row is the payoff docs/durability.md quotes
	// (one small batch touches a handful of the 64 shards).
	for _, mode := range []struct {
		name string
		incr bool
	}{{"checkpoint_cut_full", false}, {"checkpoint_cut_incremental", true}} {
		cfg := core.Config{
			NumNodes: ds.NumNodes, EdgeDim: ds.EdgeDim,
			Slots: o.Slots, Neighbors: o.Fanout,
			BatchSize: o.BatchSize, Seed: o.Seed,
			Shards: 64, GraphBackend: core.GraphBackendSharded,

			IncrementalCheckpoints: mode.incr,
		}
		m, err := core.New(cfg)
		if err != nil {
			return nil, err
		}
		warm := 1000
		if warm+o.BatchSize > len(ds.Events) {
			return nil, fmt.Errorf("bench: perf needs ≥%d events, dataset has %d (raise -scale)", warm+o.BatchSize, len(ds.Events))
		}
		m.EvalStream(ds.Events[:warm], nil)
		batch := ds.Events[warm : warm+o.BatchSize]
		m.CheckpointCut() // prime the base the incremental mode diffs against
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				inf := m.InferBatch(batch)
				m.ApplyInference(inf)
				inf.Release()
				b.StartTimer()
				m.CheckpointCut()
			}
		})
		add(mode.name, len(batch), r)
	}

	// Failover takeover: a follower that lags the dead leader by five
	// batches reopens the shipped log as its own, replays the lag tail
	// through the full inference path, and attaches — the read-only window
	// a promotion imposes. Events/op is the lag replayed per takeover.
	{
		cfg := core.Config{
			NumNodes: ds.NumNodes, EdgeDim: ds.EdgeDim,
			Slots: o.Slots, Neighbors: o.Fanout,
			BatchSize: o.BatchSize, Seed: o.Seed,
		}
		// Smaller warm-up than the hot-path rows: the row measures replay
		// of the lag window, and must fit the CI dataset (-scale 0.01).
		const appliedBatches, lagBatches = 5, 2
		warm := 500
		if warm+appliedBatches*o.BatchSize > len(ds.Events) {
			return nil, fmt.Errorf("bench: perf needs ≥%d events, dataset has %d (raise -scale)", warm+appliedBatches*o.BatchSize, len(ds.Events))
		}
		leader, err := core.New(cfg)
		if err != nil {
			return nil, err
		}
		leader.EvalStream(ds.Events[:warm], nil)
		dir, err := os.MkdirTemp("", "apan-bench-failover-")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(dir)
		l, err := wal.Open(wal.Options{Dir: dir, Policy: wal.SyncInterval})
		if err != nil {
			return nil, err
		}
		if err := leader.AttachWAL(l); err != nil {
			return nil, err
		}
		applyOne := func(m *core.Model, i int) {
			batch := ds.Events[warm+i*o.BatchSize : warm+(i+1)*o.BatchSize]
			inf := m.InferBatch(batch)
			m.ApplyInference(inf)
			inf.Release()
		}
		for i := 0; i < appliedBatches; i++ {
			applyOne(leader, i)
		}
		if err := leader.DetachWAL().Close(); err != nil { // the leader "dies"
			return nil, err
		}
		// The follower's replayed prefix: same seed, same warm-up, same first
		// batches the leader logged — the state a standby holds at crash time.
		follower, err := core.New(cfg)
		if err != nil {
			return nil, err
		}
		follower.EvalStream(ds.Events[:warm], nil)
		for i := 0; i < appliedBatches-lagBatches; i++ {
			applyOne(follower, i)
		}
		snap := follower.SnapshotRuntime()
		lag := lagBatches * o.BatchSize
		r := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				follower.RestoreRuntime(snap)
				b.StartTimer()
				lg, err := wal.Open(wal.Options{Dir: dir, Policy: wal.SyncInterval})
				if err != nil {
					b.Fatal(err)
				}
				if _, err := follower.RecoverWAL(lg); err != nil {
					b.Fatal(err)
				}
				if err := follower.AttachWAL(lg); err != nil {
					b.Fatal(err)
				}
				b.StopTimer()
				follower.DetachWAL()
				if err := lg.Close(); err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
			}
		})
		add("failover_takeover_ms", lag, r)
	}

	// hops=1 isolates mail generation (φ, ρ, ψ) from the k-hop sampler, so
	// the scratch-reuse delta is not buried under graph-query allocations.
	for _, mode := range []struct {
		name  string
		fresh bool
	}{{"propagate_scratch_reused", false}, {"propagate_scratch_fresh", true}} {
		m, batch, err := perfModel(o, ds, false, 1, core.GraphBackendFlat)
		if err != nil {
			return nil, err
		}
		prop := m.Propagator()
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if mode.fresh {
					b.StopTimer()
					prop = core.NewPropagator(m.Cfg, m.DB(), m.Mailbox())
					b.StartTimer()
				}
				prop.ProcessBatch(batch, m.State())
			}
		})
		add(mode.name, len(batch), r)
	}

	// Online continual learning: one trainer mini-batch step (replay-buffer
	// sample, live-state gather, forward/backward, Adam) and one hot swap
	// (snapshot copy + module binding + atomic publish).
	{
		m, _, err := perfModel(o, ds, false, 0, core.GraphBackendFlat)
		if err != nil {
			return nil, err
		}
		const miniBatch = 64
		tn, err := train.New(m, train.Config{
			// Both gates effectively disabled: the benchmark drives steps
			// and publishes manually, the Pump below only fills the buffer.
			MiniBatch: miniBatch, StepEvery: 1 << 30, PublishEvery: 1 << 30,
			Seed: o.Seed,
		})
		if err != nil {
			return nil, err
		}
		tn.Observe(ds.Events[:1000])
		tn.Pump() // fill the replay buffer without stepping
		for i := 0; i < 3; i++ {
			// Warm the trainer's reusable mini-batch buffers so the row
			// records the steady state the zero-alloc guard enforces.
			if !tn.TrainStep() {
				return nil, fmt.Errorf("bench: train warm-up step skipped")
			}
		}
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if !tn.TrainStep() {
					b.Fatal("train step skipped: replay buffer underfilled")
				}
			}
		})
		add("online_train_step", miniBatch, r)

		params := m.Params()
		r = testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := m.SwapParams(params); err != nil {
					b.Fatal(err)
				}
			}
		})
		add("swap_params_publish", 0, r)
	}
	return rep, nil
}

// WritePerfJSON writes the report to path (the repo convention is
// BENCH_apan.json at the repo root).
func (r *PerfReport) WriteJSON(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
