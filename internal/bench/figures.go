package bench

import (
	"fmt"
	"text/tabwriter"
)

// FigureModels are the models plotted in Figures 6 and 7.
var FigureModels = []string{
	"TGAT-1layer", "TGAT-2layers",
	"TGN-1layer", "TGN-2layers",
	"APAN-1layer", "APAN-2layers",
	"JODIE", "DyRep",
}

// FigurePoint is one model's (speed, quality) coordinate.
type FigurePoint struct {
	Model    string
	AP       float64 // %
	InferMs  float64 // Figure 6 axis
	EpochSec float64 // Figure 7 axis
}

// Figure holds a speed-vs-AP scatter.
type Figure struct {
	Title  string
	Points []FigurePoint
}

// runFigurePoints trains every figure model once per seed on Wikipedia and
// collects speed/AP coordinates.
func runFigurePoints(o Options, models []string) ([]FigurePoint, error) {
	d, err := o.MakeDataset("wikipedia")
	if err != nil {
		return nil, err
	}
	split := d.Split(0.70, 0.15)
	var pts []FigurePoint
	for _, name := range models {
		var aps, inferMs, epochSec float64
		for s := 0; s < o.Seeds; s++ {
			m, db, err := o.NewStreamModel(name, d, o.Seed+int64(s))
			if err != nil {
				return nil, err
			}
			r := o.TrainEval(m, db, split, d.NumNodes)
			aps += r.TestAP
			inferMs += r.InferMs
			epochSec += r.EpochSec
		}
		n := float64(o.Seeds)
		pts = append(pts, FigurePoint{Model: name, AP: aps / n, InferMs: inferMs / n, EpochSec: epochSec / n})
	}
	return pts, nil
}

// RunFigure6 reproduces the inference-speed vs AP scatter (Wikipedia link
// prediction). Set Options.DBLatency to model the distributed graph
// database of the §4.6 deployment discussion: synchronous models pay it per
// query on the critical path, APAN does not.
func RunFigure6(o Options, models []string) (*Figure, error) {
	o.normalize()
	if models == nil {
		models = FigureModels
	}
	pts, err := runFigurePoints(o, models)
	if err != nil {
		return nil, err
	}
	fig := &Figure{Title: "Figure 6: inference time (ms/batch) vs AP (%)", Points: pts}
	w := tabwriter.NewWriter(o.Out, 2, 4, 2, ' ', 0)
	fmt.Fprintf(w, "%s  [db-latency=%v scale=%.3g]\n", fig.Title, o.DBLatency, o.Scale)
	fmt.Fprintln(w, "Model\tInference ms/batch\tAP")
	for _, p := range fig.Points {
		fmt.Fprintf(w, "%s\t%.3f\t%.2f\n", p.Model, p.InferMs, p.AP)
	}
	if err := w.Flush(); err != nil {
		return nil, err
	}
	if tgn, apan := findPoint(pts, "TGN-2layers"), findPoint(pts, "APAN-2layers"); tgn != nil && apan != nil && apan.InferMs > 0 {
		fmt.Fprintf(o.Out, "speedup APAN-2layers vs TGN-2layers: %.1f x (paper: 8.7x)\n", tgn.InferMs/apan.InferMs)
	}
	return fig, nil
}

// RunFigure7 reproduces the training-speed vs AP scatter: in training APAN
// performs the same work as the synchronous models, so it clusters with
// TGN rather than beating it.
func RunFigure7(o Options, models []string) (*Figure, error) {
	o.normalize()
	o.DBLatency = 0 // training runs against the in-memory store
	if models == nil {
		models = FigureModels
	}
	pts, err := runFigurePoints(o, models)
	if err != nil {
		return nil, err
	}
	fig := &Figure{Title: "Figure 7: training time (s/epoch) vs AP (%)", Points: pts}
	w := tabwriter.NewWriter(o.Out, 2, 4, 2, ' ', 0)
	fmt.Fprintf(w, "%s  [scale=%.3g]\n", fig.Title, o.Scale)
	fmt.Fprintln(w, "Model\tTraining s/epoch\tAP")
	for _, p := range fig.Points {
		fmt.Fprintf(w, "%s\t%.3f\t%.2f\n", p.Model, p.EpochSec, p.AP)
	}
	return fig, w.Flush()
}

func findPoint(pts []FigurePoint, model string) *FigurePoint {
	for i := range pts {
		if pts[i].Model == model {
			return &pts[i]
		}
	}
	return nil
}

// Figure8 holds AP as a function of training batch size per model.
type Figure8 struct {
	BatchSizes []int
	// AP[model][i] is the test AP (%) at BatchSizes[i].
	AP map[string][]float64
}

// Figure8Models are the lines of Figure 8.
var Figure8Models = []string{"TGAT", "TGN", "APAN"}

// RunFigure8 reproduces the batch-size robustness experiment: APAN's AP
// stays flat as the batch grows because its inference never depends on the
// newest in-batch subgraph, while TGAT/TGN degrade.
func RunFigure8(o Options, models []string, batchSizes []int) (*Figure8, error) {
	o.normalize()
	if models == nil {
		models = Figure8Models
	}
	if batchSizes == nil {
		batchSizes = []int{100, 200, 300, 400, 500}
	}
	d, err := o.MakeDataset("wikipedia")
	if err != nil {
		return nil, err
	}
	split := d.Split(0.70, 0.15)
	res := &Figure8{BatchSizes: batchSizes, AP: map[string][]float64{}}
	for _, name := range models {
		for _, bs := range batchSizes {
			opts := o
			opts.BatchSize = bs
			var ap float64
			for s := 0; s < o.Seeds; s++ {
				m, db, err := opts.NewStreamModel(name, d, o.Seed+int64(s))
				if err != nil {
					return nil, err
				}
				ap += opts.TrainEval(m, db, split, d.NumNodes).TestAP
			}
			res.AP[name] = append(res.AP[name], ap/float64(o.Seeds))
		}
	}
	w := tabwriter.NewWriter(o.Out, 2, 4, 2, ' ', 0)
	fmt.Fprintf(w, "Figure 8: AP (%%) vs batch size, Wikipedia  [scale=%.3g]\n", o.Scale)
	fmt.Fprint(w, "Model")
	for _, bs := range batchSizes {
		fmt.Fprintf(w, "\t%d", bs)
	}
	fmt.Fprintln(w)
	for _, name := range models {
		fmt.Fprint(w, name)
		for _, ap := range res.AP[name] {
			fmt.Fprintf(w, "\t%.2f", ap)
		}
		fmt.Fprintln(w)
	}
	return res, w.Flush()
}

// Figure9 is the mailbox-slots × sampled-neighbors AP grid.
type Figure9 struct {
	Slots     []int
	Neighbors []int
	// AP[i][j] is the test AP (%) at Neighbors[i] × Slots[j].
	AP [][]float64
}

// RunFigure9 reproduces the hyper-parameter robustness grid: across the
// 4×4 grid the paper's best and worst APs differ by only ~0.6%.
func RunFigure9(o Options, slots, neighbors []int) (*Figure9, error) {
	o.normalize()
	if slots == nil {
		slots = []int{5, 10, 15, 20}
	}
	if neighbors == nil {
		neighbors = []int{5, 10, 15, 20}
	}
	d, err := o.MakeDataset("wikipedia")
	if err != nil {
		return nil, err
	}
	split := d.Split(0.70, 0.15)
	res := &Figure9{Slots: slots, Neighbors: neighbors}
	for _, nb := range neighbors {
		row := make([]float64, 0, len(slots))
		for _, sl := range slots {
			opts := o
			opts.Slots = sl
			opts.Fanout = nb
			var ap float64
			for s := 0; s < o.Seeds; s++ {
				m, db, err := opts.NewStreamModel("APAN", d, o.Seed+int64(s))
				if err != nil {
					return nil, err
				}
				ap += opts.TrainEval(m, db, split, d.NumNodes).TestAP
			}
			row = append(row, ap/float64(o.Seeds))
		}
		res.AP = append(res.AP, row)
	}
	w := tabwriter.NewWriter(o.Out, 2, 4, 2, ' ', 0)
	fmt.Fprintf(w, "Figure 9: AP (%%) grid, mailbox slots x sampled neighbors, Wikipedia  [scale=%.3g]\n", o.Scale)
	fmt.Fprint(w, "neighbors\\slots")
	for _, sl := range slots {
		fmt.Fprintf(w, "\t%d", sl)
	}
	fmt.Fprintln(w)
	for i, nb := range neighbors {
		fmt.Fprintf(w, "%d", nb)
		for _, ap := range res.AP[i] {
			fmt.Fprintf(w, "\t%.2f", ap)
		}
		fmt.Fprintln(w)
	}
	return res, w.Flush()
}
