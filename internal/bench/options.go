package bench

import (
	"fmt"
	"io"
	"time"

	"apan/internal/baselines"
	"apan/internal/core"
	"apan/internal/dataset"
	"apan/internal/gdb"
	"apan/internal/tgraph"
)

// Options scales the experiments. Zero values select defaults tuned so the
// Go benchmarks finish quickly; cmd/apan-bench raises them toward the
// paper's configuration.
type Options struct {
	Scale     float64 // dataset scale factor (1.0 = paper size); default 0.01
	Seed      int64   // base RNG seed
	Seeds     int     // seeds per cell (paper: 10); default 1
	Epochs    int     // max training epochs; default 3
	Patience  int     // early-stopping patience (paper: 5)
	BatchSize int     // events per batch (paper: 200)
	Fanout    int     // sampled neighbors / mailbox fan-out (paper: 10)
	Slots     int     // mailbox slots (paper: 10)
	Hidden    int     // MLP hidden width (paper: 80)
	// LR is the Adam learning rate for the dynamic models. The paper uses
	// 1e-4 on the full-size datasets; the scaled-down benchmark streams have
	// ~50× fewer steps per epoch, so the default here is 3e-4.
	LR float32
	// DBLatency, when non-zero, charges each graph-database query this much
	// simulated latency. It is added to the critical path of synchronous
	// models only (Figure 6's deployment scenario, §4.6).
	DBLatency time.Duration
	// GraphBackend selects the temporal-graph store behind the scenario
	// harness (core.GraphBackend*); empty means flat. The perf experiment
	// sweeps backends itself and ignores this.
	GraphBackend string
	Out          io.Writer // table output; nil discards
}

func (o *Options) normalize() {
	if o.Scale == 0 {
		o.Scale = 0.01
	}
	if o.Seeds == 0 {
		o.Seeds = 1
	}
	if o.Epochs == 0 {
		o.Epochs = 3
	}
	if o.Patience == 0 {
		o.Patience = 5
	}
	if o.BatchSize == 0 {
		o.BatchSize = 200
	}
	if o.Fanout == 0 {
		o.Fanout = 10
	}
	if o.Slots == 0 {
		o.Slots = 10
	}
	if o.Hidden == 0 {
		o.Hidden = 80
	}
	if o.LR == 0 {
		o.LR = 3e-4
	}
	if o.Out == nil {
		o.Out = io.Discard
	}
}

// MakeDataset builds one of the paper's three datasets at the configured
// scale.
func (o *Options) MakeDataset(name string) (*dataset.Dataset, error) {
	cfg := dataset.Config{Scale: o.Scale, Seed: o.Seed + 1000}
	switch name {
	case "wikipedia":
		return dataset.Wikipedia(cfg), nil
	case "reddit":
		return dataset.Reddit(cfg), nil
	case "alipay":
		// Alipay is ~18× Wikipedia; keep the relative size but cap the
		// absolute cost of benchmark runs.
		cfg.Scale = o.Scale / 4
		return dataset.Alipay(cfg), nil
	default:
		return nil, fmt.Errorf("bench: unknown dataset %q", name)
	}
}

// NewStreamModel instantiates a dynamic model by figure label, e.g.
// "APAN-2layers", "TGAT-1layer", "TGN-2layers", "JODIE", "DyRep".
func (o *Options) NewStreamModel(name string, d *dataset.Dataset, seed int64) (baselines.StreamModel, *gdb.DB, error) {
	db := gdb.New(tgraph.New(d.NumNodes))
	if o.DBLatency > 0 {
		db.Latency = gdb.Constant(o.DBLatency)
	}
	// The embedding dim equals the edge-feature dim (§4.4), which must be
	// divisible by the head count; Alipay's 101 features force single-head.
	heads := 2
	if d.EdgeDim%2 != 0 {
		heads = 1
	}
	switch name {
	case "APAN", "APAN-1layer", "APAN-2layers":
		hops := 2
		if name == "APAN-1layer" {
			hops = 1
		}
		m, err := core.NewWithDB(core.Config{
			NumNodes: d.NumNodes, EdgeDim: d.EdgeDim, Heads: heads,
			Slots: o.Slots, Neighbors: o.Fanout, Hops: hops,
			Hidden: o.Hidden, BatchSize: o.BatchSize, LR: o.LR, Seed: seed,
		}, db)
		return m, db, err
	case "TGAT", "TGAT-1layer", "TGAT-2layers":
		layers := 2
		if name == "TGAT-1layer" {
			layers = 1
		}
		return baselines.NewTGAT(baselines.TGATConfig{
			NumNodes: d.NumNodes, EdgeDim: d.EdgeDim, Layers: layers, Heads: heads,
			Fanout: o.Fanout, Hidden: o.Hidden, BatchSize: o.BatchSize, LR: o.LR, Seed: seed,
		}, db), db, nil
	case "TGN", "TGN-1layer", "TGN-2layers":
		layers := 1
		if name == "TGN-2layers" {
			layers = 2
		}
		return baselines.NewTGN(baselines.TGNConfig{
			NumNodes: d.NumNodes, EdgeDim: d.EdgeDim, Layers: layers, Heads: heads,
			Fanout: o.Fanout, Hidden: o.Hidden, BatchSize: o.BatchSize, LR: o.LR, Seed: seed,
		}, db), db, nil
	case "JODIE":
		return baselines.NewJODIE(baselines.JODIEConfig{
			NumNodes: d.NumNodes, EdgeDim: d.EdgeDim,
			Hidden: o.Hidden, BatchSize: o.BatchSize, LR: o.LR, Seed: seed,
		}), db, nil
	case "DyRep":
		return baselines.NewDyRep(baselines.DyRepConfig{
			NumNodes: d.NumNodes, EdgeDim: d.EdgeDim, Fanout: o.Fanout,
			Hidden: o.Hidden, BatchSize: o.BatchSize, LR: o.LR, Seed: seed,
		}, db), db, nil
	default:
		return nil, nil, fmt.Errorf("bench: unknown stream model %q", name)
	}
}

// NewStaticModel instantiates a static baseline by table label.
func (o *Options) NewStaticModel(name string, d *dataset.Dataset, seed int64) (baselines.StaticModel, error) {
	switch name {
	case "GAT":
		heads := 2
		if d.EdgeDim%2 != 0 {
			heads = 1
		}
		return baselines.NewStaticGNN(baselines.StaticGNNConfig{
			Kind: baselines.KindGAT, Fanout: o.Fanout, Hidden: o.Hidden, Heads: heads,
			BatchSize: o.BatchSize, Epochs: o.Epochs, Seed: seed,
		}, d.EdgeDim), nil
	case "SAGE":
		return baselines.NewStaticGNN(baselines.StaticGNNConfig{
			Kind: baselines.KindSAGE, Fanout: o.Fanout, Hidden: o.Hidden,
			BatchSize: o.BatchSize, Epochs: o.Epochs, Seed: seed,
		}, d.EdgeDim), nil
	case "GAE":
		return baselines.NewGAE(baselines.GAEConfig{Seed: seed}, d.EdgeDim), nil
	case "VGAE":
		return baselines.NewGAE(baselines.GAEConfig{Variational: true, Seed: seed}, d.EdgeDim), nil
	case "DeepWalk":
		return baselines.NewWalkEmbedding(baselines.WalkConfig{Kind: baselines.KindDeepWalk, Seed: seed}), nil
	case "Node2vec":
		return baselines.NewWalkEmbedding(baselines.WalkConfig{Kind: baselines.KindNode2Vec, Seed: seed}), nil
	case "CTDNE":
		return baselines.NewWalkEmbedding(baselines.WalkConfig{Kind: baselines.KindCTDNE, Seed: seed}), nil
	default:
		return nil, fmt.Errorf("bench: unknown static model %q", name)
	}
}
