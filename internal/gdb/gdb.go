// Package gdb wraps the in-process temporal graph store with the latency
// and accounting profile of the remote distributed graph database that backs
// the paper's production deployment. Synchronous CTDG models (TGAT, TGN)
// pay this cost on the inference critical path; APAN's asynchronous
// propagator pays it off the critical path — the contrast behind Figure 6
// and the §4.6 "much greater than 8.7×" claim.
package gdb

import (
	"sync/atomic"
	"time"

	"apan/internal/tgraph"
)

// LatencyModel maps one neighbor-list query returning n items to a simulated
// round-trip cost.
type LatencyModel func(items int) time.Duration

// Constant returns a latency model with a fixed per-query cost.
func Constant(d time.Duration) LatencyModel {
	return func(int) time.Duration { return d }
}

// PerItem returns a latency model with a base round trip plus a marginal
// per-item transfer cost.
func PerItem(base, per time.Duration) LatencyModel {
	return func(items int) time.Duration { return base + time.Duration(items)*per }
}

// DB is a temporal graph store with query accounting and an optional
// simulated-latency model.
type DB struct {
	G *tgraph.Graph
	// Latency, when non-nil, is charged on every neighbor query.
	Latency LatencyModel
	// Sleep controls whether simulated latency blocks the caller (true, for
	// live serving demos) or is only accumulated (false, for benchmarks that
	// add it analytically).
	Sleep bool

	queries   atomic.Int64
	items     atomic.Int64
	simulated atomic.Int64 // nanoseconds
}

// New wraps g with no latency model.
func New(g *tgraph.Graph) *DB { return &DB{G: g} }

// charge records one query returning n items.
func (db *DB) charge(n int) {
	db.queries.Add(1)
	db.items.Add(int64(n))
	if db.Latency != nil {
		d := db.Latency(n)
		db.simulated.Add(int64(d))
		if db.Sleep {
			time.Sleep(d)
		}
	}
}

// MostRecentNeighbors is tgraph.Graph.MostRecentNeighbors with accounting.
func (db *DB) MostRecentNeighbors(n tgraph.NodeID, t float64, k int, out []tgraph.Incidence) []tgraph.Incidence {
	before := len(out)
	out = db.G.MostRecentNeighbors(n, t, k, out)
	db.charge(len(out) - before)
	return out
}

// KHopMostRecent is tgraph.Graph.KHopMostRecent with per-hop accounting:
// each frontier node costs one query.
func (db *DB) KHopMostRecent(seeds []tgraph.NodeID, t float64, fanout, hops int) [][]tgraph.Incidence {
	frontier := seeds
	out := make([][]tgraph.Incidence, hops)
	var scratch []tgraph.Incidence
	for h := 0; h < hops; h++ {
		scratch = scratch[:0]
		for _, n := range frontier {
			before := len(scratch)
			scratch = db.G.MostRecentNeighbors(n, t, fanout, scratch)
			db.charge(len(scratch) - before)
		}
		out[h] = append([]tgraph.Incidence(nil), scratch...)
		next := make([]tgraph.NodeID, len(out[h]))
		for i, inc := range out[h] {
			next[i] = inc.Peer
		}
		frontier = next
	}
	return out
}

// AddEvent inserts an event (writes are not charged latency: ingest is
// asynchronous in both deployment modes).
func (db *DB) AddEvent(e tgraph.Event) int64 { return db.G.AddEvent(e) }

// Stats reports accumulated accounting since the last Reset.
type Stats struct {
	Queries   int64
	Items     int64
	Simulated time.Duration
}

// Stats returns the current counters.
func (db *DB) Stats() Stats {
	return Stats{
		Queries:   db.queries.Load(),
		Items:     db.items.Load(),
		Simulated: time.Duration(db.simulated.Load()),
	}
}

// ResetStats clears the counters.
func (db *DB) ResetStats() {
	db.queries.Store(0)
	db.items.Store(0)
	db.simulated.Store(0)
}
