// Package gdb provides the remote-flavored temporal graph access layer: a
// query-accounting wrapper (DB) plus Remote, a tgraph.Store implementation
// that models the remote distributed graph database backing the paper's
// production deployment (Figure 6) — any in-process store behind a simulated
// RPC latency model with batched k-hop gathers. Synchronous CTDG models
// (TGAT, TGN) pay the round-trip cost on the inference critical path; APAN's
// asynchronous propagator pays it off the critical path — the contrast
// behind Figure 6 and the §4.6 "much greater than 8.7×" claim.
package gdb

import (
	"sync/atomic"
	"time"

	"apan/internal/tgraph"
)

// LatencyModel maps one neighbor-list query returning n items to a simulated
// round-trip cost.
type LatencyModel func(items int) time.Duration

// Constant returns a latency model with a fixed per-query cost.
func Constant(d time.Duration) LatencyModel {
	return func(int) time.Duration { return d }
}

// PerItem returns a latency model with a base round trip plus a marginal
// per-item transfer cost.
func PerItem(base, per time.Duration) LatencyModel {
	return func(items int) time.Duration { return base + time.Duration(items)*per }
}

// DB is a temporal graph store with query accounting and an optional
// simulated-latency model. G may be any tgraph.Store backend — flat,
// sharded, or a Remote wrapper — selected by core.Config.GraphBackend.
type DB struct {
	G tgraph.Store
	// Latency, when non-nil, is charged on every neighbor query.
	Latency LatencyModel
	// Sleep controls whether simulated latency blocks the caller (true, for
	// live serving demos) or is only accumulated (false, for benchmarks that
	// add it analytically).
	Sleep bool

	queries   atomic.Int64
	items     atomic.Int64
	simulated atomic.Int64 // nanoseconds
}

// New wraps g with no latency model.
func New(g tgraph.Store) *DB { return &DB{G: g} }

// charge records one query returning n items.
func (db *DB) charge(n int) {
	db.queries.Add(1)
	db.items.Add(int64(n))
	if db.Latency != nil {
		d := db.Latency(n)
		db.simulated.Add(int64(d))
		if db.Sleep {
			time.Sleep(d)
		}
	}
}

// MostRecentNeighbors is Store.MostRecentNeighbors with accounting.
func (db *DB) MostRecentNeighbors(n tgraph.NodeID, t float64, k int, out []tgraph.Incidence) []tgraph.Incidence {
	before := len(out)
	out = db.G.MostRecentNeighbors(n, t, k, out)
	db.charge(len(out) - before)
	return out
}

// chargeKHop records batched-gather accounting for one k-hop traversal:
// each frontier node counts as one logical query, but the whole hop travels
// as a single round trip, so the latency model is charged once per hop on
// the hop's total item count — the protocol a remote graph DB would use
// (gather the frontier, answer in one response).
func (db *DB) chargeKHop(out [][]tgraph.Incidence, seeds int) {
	frontier := seeds
	for _, hop := range out {
		items := len(hop)
		db.queries.Add(int64(frontier))
		db.items.Add(int64(items))
		if db.Latency != nil {
			d := db.Latency(items)
			db.simulated.Add(int64(d))
			if db.Sleep {
				time.Sleep(d)
			}
		}
		frontier = items
	}
}

// KHopMostRecent is Store.KHopMostRecent with batched-gather accounting
// (see chargeKHop).
func (db *DB) KHopMostRecent(seeds []tgraph.NodeID, t float64, fanout, hops int) [][]tgraph.Incidence {
	out := db.G.KHopMostRecent(seeds, t, fanout, hops)
	db.chargeKHop(out, len(seeds))
	return out
}

// KHopMostRecentInto is KHopMostRecent through the backend's scratch-reuse
// path when it has one, with the same batched-gather accounting. The result
// lifetime follows tgraph.KHopScratch.
func (db *DB) KHopMostRecentInto(sc *tgraph.KHopScratch, seeds []tgraph.NodeID, t float64, fanout, hops int) [][]tgraph.Incidence {
	out := tgraph.KHopMostRecentInto(db.G, sc, seeds, t, fanout, hops)
	db.chargeKHop(out, len(seeds))
	return out
}

// AddEvent inserts an event (writes are not charged latency: ingest is
// asynchronous in both deployment modes).
func (db *DB) AddEvent(e tgraph.Event) int64 { return db.G.AddEvent(e) }

// Stats reports accumulated accounting since the last Reset.
type Stats struct {
	Queries   int64
	Items     int64
	Simulated time.Duration
}

// Stats returns the current counters.
func (db *DB) Stats() Stats {
	return Stats{
		Queries:   db.queries.Load(),
		Items:     db.items.Load(),
		Simulated: time.Duration(db.simulated.Load()),
	}
}

// ResetStats clears the counters.
func (db *DB) ResetStats() {
	db.queries.Store(0)
	db.items.Store(0)
	db.simulated.Store(0)
}
