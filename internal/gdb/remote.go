package gdb

import (
	"math/rand"
	"sync/atomic"
	"time"

	"apan/internal/tgraph"
)

// RemoteOptions configures a Remote store.
type RemoteOptions struct {
	// Latency, when non-nil, is the simulated RPC cost charged on every
	// query round trip.
	Latency LatencyModel
	// Sleep controls whether simulated latency blocks the caller (live
	// demos) or is only accumulated (benchmarks, parity runs — results stay
	// deterministic because only counters change).
	Sleep bool
}

// Remote is the remote-style graph backend: a tgraph.Store that wraps any
// inner Store behind the RPC profile of the distributed graph database in
// the paper's production deployment (Figure 6). Every neighbor query pays
// one simulated round trip; KHopMostRecent uses the batched-gather protocol
// (the whole frontier ships in one request, one round trip per hop — not
// one per frontier node). Ingest and bulk access (AddEvent, Grow, Reset,
// EventLog, Event, StaticSnapshot) are uncharged: writes are asynchronous
// in the deployment and bulk reads happen on the maintenance path.
//
// Remote delegates every query verbatim, so it is bit-exact with its inner
// store by construction — the equivalence suite still runs it as a third
// backend to keep that true as the wrapper grows.
type Remote struct {
	inner tgraph.Store
	opts  RemoteOptions

	rpcs      atomic.Int64
	items     atomic.Int64
	simulated atomic.Int64 // nanoseconds
}

// NewRemote wraps inner with the given RPC profile.
func NewRemote(inner tgraph.Store, opts RemoteOptions) *Remote {
	return &Remote{inner: inner, opts: opts}
}

// Inner returns the wrapped store.
func (r *Remote) Inner() tgraph.Store { return r.inner }

// rpc records one round trip transferring n items.
func (r *Remote) rpc(n int) {
	r.rpcs.Add(1)
	r.items.Add(int64(n))
	if r.opts.Latency != nil {
		d := r.opts.Latency(n)
		r.simulated.Add(int64(d))
		if r.opts.Sleep {
			time.Sleep(d)
		}
	}
}

// RemoteStats reports accumulated RPC accounting.
type RemoteStats struct {
	RPCs      int64
	Items     int64
	Simulated time.Duration
}

// Stats returns the current counters.
func (r *Remote) Stats() RemoteStats {
	return RemoteStats{
		RPCs:      r.rpcs.Load(),
		Items:     r.items.Load(),
		Simulated: time.Duration(r.simulated.Load()),
	}
}

// NumNodes delegates to the inner store.
func (r *Remote) NumNodes() int { return r.inner.NumNodes() }

// NumEvents delegates to the inner store.
func (r *Remote) NumEvents() int { return r.inner.NumEvents() }

// Grow delegates to the inner store (admin path, uncharged).
func (r *Remote) Grow(n int) { r.inner.Grow(n) }

// Reset delegates to the inner store (admin path, uncharged).
func (r *Remote) Reset(numNodes int) { r.inner.Reset(numNodes) }

// AddEvent delegates to the inner store (asynchronous ingest, uncharged).
func (r *Remote) AddEvent(e tgraph.Event) int64 { return r.inner.AddEvent(e) }

// Event delegates to the inner store (bulk/replay path, uncharged).
func (r *Remote) Event(id int64) *tgraph.Event { return r.inner.Event(id) }

// EventLog delegates to the inner store (bulk/replay path, uncharged).
func (r *Remote) EventLog() []tgraph.Event { return r.inner.EventLog() }

// Degree is one RPC returning a scalar.
func (r *Remote) Degree(n tgraph.NodeID, t float64) int {
	d := r.inner.Degree(n, t)
	r.rpc(0)
	return d
}

// MostRecentNeighbors is one RPC returning the sampled incidences.
func (r *Remote) MostRecentNeighbors(n tgraph.NodeID, t float64, k int, out []tgraph.Incidence) []tgraph.Incidence {
	before := len(out)
	out = r.inner.MostRecentNeighbors(n, t, k, out)
	r.rpc(len(out) - before)
	return out
}

// UniformNeighbors is one RPC returning the sampled incidences. The rng is
// consumed by the inner store exactly as the flat algorithm would, so
// seeded runs stay backend-agnostic.
func (r *Remote) UniformNeighbors(rng *rand.Rand, n tgraph.NodeID, t float64, k int, out []tgraph.Incidence) []tgraph.Incidence {
	before := len(out)
	out = r.inner.UniformNeighbors(rng, n, t, k, out)
	r.rpc(len(out) - before)
	return out
}

// KHopMostRecent is the batched-gather protocol: the whole frontier ships
// in one request, so each hop costs one RPC regardless of frontier size.
func (r *Remote) KHopMostRecent(seeds []tgraph.NodeID, t float64, fanout, hops int) [][]tgraph.Incidence {
	out := r.inner.KHopMostRecent(seeds, t, fanout, hops)
	for h := 0; h < hops; h++ {
		r.rpc(len(out[h]))
	}
	return out
}

// KHopMostRecentInto is KHopMostRecent through the inner store's
// scratch-reuse path when it has one, charged identically: one RPC per hop
// on the hop's item count. The result lifetime follows tgraph.KHopScratch.
func (r *Remote) KHopMostRecentInto(sc *tgraph.KHopScratch, seeds []tgraph.NodeID, t float64, fanout, hops int) [][]tgraph.Incidence {
	out := tgraph.KHopMostRecentInto(r.inner, sc, seeds, t, fanout, hops)
	for h := 0; h < hops; h++ {
		r.rpc(len(out[h]))
	}
	return out
}

// EventsBetween is one RPC returning the range.
func (r *Remote) EventsBetween(lo, hi float64) []tgraph.Event {
	ev := r.inner.EventsBetween(lo, hi)
	r.rpc(len(ev))
	return ev
}

// StaticSnapshot delegates to the inner store (bulk export path, uncharged).
func (r *Remote) StaticSnapshot(t float64) *tgraph.CSR { return r.inner.StaticSnapshot(t) }

// ConcurrentSafe delegates to the inner store: the wrapper adds only atomic
// counters.
func (r *Remote) ConcurrentSafe() bool { return r.inner.ConcurrentSafe() }

var _ tgraph.Store = (*Remote)(nil)
