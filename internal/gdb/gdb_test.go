package gdb

import (
	"testing"
	"time"

	"apan/internal/tgraph"
)

func chainDB(t *testing.T) *DB {
	t.Helper()
	g := tgraph.New(4)
	g.AddEvent(tgraph.Event{Src: 0, Dst: 1, Time: 1})
	g.AddEvent(tgraph.Event{Src: 1, Dst: 2, Time: 2})
	g.AddEvent(tgraph.Event{Src: 2, Dst: 3, Time: 3})
	return New(g)
}

func TestQueryAccounting(t *testing.T) {
	db := chainDB(t)
	got := db.MostRecentNeighbors(1, 10, 5, nil)
	if len(got) != 2 {
		t.Fatalf("neighbors: %+v", got)
	}
	st := db.Stats()
	if st.Queries != 1 || st.Items != 2 {
		t.Fatalf("stats after one query: %+v", st)
	}
	db.ResetStats()
	if db.Stats().Queries != 0 {
		t.Fatal("ResetStats failed")
	}
}

func TestKHopAccountingChargesPerFrontierNode(t *testing.T) {
	db := chainDB(t)
	hops := db.KHopMostRecent([]tgraph.NodeID{1}, 10, 2, 2)
	if len(hops) != 2 {
		t.Fatalf("hops: %d", len(hops))
	}
	st := db.Stats()
	// Hop 1: one query (node 1). Hop 2: one query per hop-1 result.
	wantQueries := int64(1 + len(hops[0]))
	if st.Queries != wantQueries {
		t.Fatalf("queries=%d want %d", st.Queries, wantQueries)
	}
}

func TestSimulatedLatencyAccumulatesWithoutSleep(t *testing.T) {
	db := chainDB(t)
	db.Latency = Constant(time.Millisecond)
	start := time.Now()
	db.MostRecentNeighbors(1, 10, 5, nil)
	db.MostRecentNeighbors(2, 10, 5, nil)
	elapsed := time.Since(start)
	st := db.Stats()
	if st.Simulated != 2*time.Millisecond {
		t.Fatalf("simulated=%v", st.Simulated)
	}
	// Generous ceiling: the two queries do microseconds of work; anything
	// near the 2ms simulated total would mean we actually slept.
	if elapsed > time.Millisecond {
		t.Fatalf("non-sleep mode must not block (%v)", elapsed)
	}
}

func TestSleepModeBlocks(t *testing.T) {
	db := chainDB(t)
	db.Latency = Constant(2 * time.Millisecond)
	db.Sleep = true
	start := time.Now()
	db.MostRecentNeighbors(1, 10, 5, nil)
	if elapsed := time.Since(start); elapsed < 2*time.Millisecond {
		t.Fatalf("sleep mode returned too fast: %v", elapsed)
	}
}

func TestPerItemLatency(t *testing.T) {
	model := PerItem(time.Millisecond, 10*time.Microsecond)
	if got := model(0); got != time.Millisecond {
		t.Fatalf("base: %v", got)
	}
	if got := model(100); got != 2*time.Millisecond {
		t.Fatalf("base+items: %v", got)
	}
}

func TestAddEventNotCharged(t *testing.T) {
	db := chainDB(t)
	db.Latency = Constant(time.Hour)
	db.AddEvent(tgraph.Event{Src: 0, Dst: 3, Time: 4})
	if st := db.Stats(); st.Simulated != 0 || st.Queries != 0 {
		t.Fatalf("writes must be free: %+v", st)
	}
	if db.G.NumEvents() != 4 {
		t.Fatal("event not inserted")
	}
}
