// Package mailbox implements APAN's per-node mail store: a fixed number of
// slots per node holding (mail vector, timestamp) pairs. The default update
// rule ψ is a FIFO ring (paper §3.5); readout returns mails sorted by
// timestamp so that out-of-order event arrival — unavoidable in distributed
// streaming systems — does not perturb the encoder (paper §3.6). A
// key-value update rule from the paper's future-work list is provided as an
// alternative ψ.
//
// Two implementations share one per-node API: Store is a flat,
// unsynchronized array (single-threaded training), and Sharded stripes the
// same layout across power-of-two lock shards so serving can deliver and
// read concurrently with shard-local locking and admit new nodes at runtime
// via Grow.
package mailbox

import (
	"fmt"

	"apan/internal/tensor"
)

// UpdateRule selects the mailbox update function ψ.
type UpdateRule int

const (
	// UpdateFIFO evicts the oldest slot once the mailbox is full (paper default).
	UpdateFIFO UpdateRule = iota
	// UpdateKeyValue blends the incoming mail into all slots weighted by key
	// similarity once the mailbox is full (memory-network-style ψ, §3.6).
	UpdateKeyValue
)

// Store holds the mailboxes of every node in flat arrays. It is not safe
// for concurrent use; see Sharded for the lock-striped variant.
type Store struct {
	numNodes int
	slots    int
	dim      int
	rule     UpdateRule

	data  []float32 // numNodes × slots × dim
	times []float64 // numNodes × slots; NaN-free, zero means "slot i empty" iff i >= count
	count []int32   // mails currently present per node
	head  []int32   // ring head: next slot to overwrite when full
}

// New creates an empty store for numNodes mailboxes of `slots` mails of
// dimension dim each, using the FIFO update rule.
func New(numNodes, slots, dim int) *Store {
	if numNodes <= 0 || slots <= 0 || dim <= 0 {
		panic(fmt.Sprintf("mailbox: invalid shape nodes=%d slots=%d dim=%d", numNodes, slots, dim))
	}
	return &Store{
		numNodes: numNodes,
		slots:    slots,
		dim:      dim,
		data:     make([]float32, numNodes*slots*dim),
		times:    make([]float64, numNodes*slots),
		count:    make([]int32, numNodes),
		head:     make([]int32, numNodes),
	}
}

// SetRule selects the update rule ψ.
func (s *Store) SetRule(r UpdateRule) { s.rule = r }

// Slots returns the per-node slot count m.
func (s *Store) Slots() int { return s.slots }

// Dim returns the mail dimension d.
func (s *Store) Dim() int { return s.dim }

// NumNodes returns the number of mailboxes.
func (s *Store) NumNodes() int { return s.numNodes }

// Len returns the number of mails currently in node n's mailbox.
func (s *Store) Len(n int32) int { return int(s.count[n]) }

func (s *Store) slot(n int32, i int) []float32 {
	off := (int(n)*s.slots + i) * s.dim
	return s.data[off : off+s.dim]
}

// Deliver applies ψ to insert mail (with timestamp ts) into node n's
// mailbox. mail must have length Dim.
func (s *Store) Deliver(n int32, mail []float32, ts float64) {
	if len(mail) != s.dim {
		panic(fmt.Sprintf("mailbox: mail dim %d, want %d", len(mail), s.dim))
	}
	if s.rule == UpdateKeyValue && int(s.count[n]) == s.slots {
		s.deliverKV(n, mail, ts)
		return
	}
	var i int32
	if int(s.count[n]) < s.slots {
		i = s.count[n]
		s.count[n]++
	} else {
		i = s.head[n]
		s.head[n] = (s.head[n] + 1) % int32(s.slots)
	}
	copy(s.slot(n, int(i)), mail)
	s.times[int(n)*s.slots+int(i)] = ts
}

// deliverKV blends the mail into every slot with weights softmax(M·mail/√d),
// and advances the timestamp of the most-attended slot. This keeps mailbox
// capacity fixed while letting recurring patterns reinforce a slot instead
// of evicting history.
func (s *Store) deliverKV(n int32, mail []float32, ts float64) {
	w := make([]float32, s.slots)
	scale := 1 / tensor.Sqrt32(float32(s.dim))
	for i := 0; i < s.slots; i++ {
		w[i] = tensor.Dot(s.slot(n, i), mail) * scale
	}
	tensor.SoftmaxRow(w)
	best, bestW := 0, w[0]
	for i := 1; i < s.slots; i++ {
		if w[i] > bestW {
			best, bestW = i, w[i]
		}
	}
	for i := 0; i < s.slots; i++ {
		slot := s.slot(n, i)
		wi := w[i]
		for j, m := range mail {
			slot[j] += wi * (m - slot[j])
		}
	}
	s.times[int(n)*s.slots+best] = ts
}

// ReadSorted copies node n's mails into buf (capacity ≥ slots×dim rows used
// in order) sorted by ascending timestamp, returning the mail count and the
// matching timestamps in tsOut (len ≥ slots). Sorting at readout is what
// makes the encoder insensitive to arrival order (§3.6).
func (s *Store) ReadSorted(n int32, buf []float32, tsOut []float64) int {
	c := int(s.count[n])
	if c == 0 {
		return 0
	}
	if len(buf) < c*s.dim || len(tsOut) < c {
		panic(fmt.Sprintf("mailbox: ReadSorted buffer too small (%d floats, %d times) for %d mails", len(buf), len(tsOut), c))
	}
	// Stable insertion sort over an index permutation. Mailboxes hold ~10
	// slots, where this beats sort.SliceStable and — unlike the reflection
	// path — performs zero allocations, keeping the serving gather off the
	// heap. Stability matches SliceStable's output exactly.
	var idxBuf [64]int
	var idx []int
	if c <= len(idxBuf) {
		idx = idxBuf[:c]
	} else {
		idx = make([]int, c)
	}
	base := int(n) * s.slots
	for i := range idx {
		idx[i] = i
	}
	for i := 1; i < c; i++ {
		j := i
		for j > 0 && s.times[base+idx[j]] < s.times[base+idx[j-1]] {
			idx[j], idx[j-1] = idx[j-1], idx[j]
			j--
		}
	}
	for r, i := range idx {
		copy(buf[r*s.dim:(r+1)*s.dim], s.slot(n, i))
		tsOut[r] = s.times[base+i]
	}
	return c
}

// Grow extends the store to hold n mailboxes, preserving existing contents.
// New mailboxes start empty. No-op when n ≤ NumNodes.
func (s *Store) Grow(n int) {
	if n <= s.numNodes {
		return
	}
	add := n - s.numNodes
	s.data = append(s.data, make([]float32, add*s.slots*s.dim)...)
	s.times = append(s.times, make([]float64, add*s.slots)...)
	s.count = append(s.count, make([]int32, add)...)
	s.head = append(s.head, make([]int32, add)...)
	s.numNodes = n
}

// clone deep-copies the store (used by Sharded snapshots).
func (s *Store) clone() *Store {
	return &Store{
		numNodes: s.numNodes,
		slots:    s.slots,
		dim:      s.dim,
		rule:     s.rule,
		data:     append([]float32(nil), s.data...),
		times:    append([]float64(nil), s.times...),
		count:    append([]int32(nil), s.count...),
		head:     append([]int32(nil), s.head...),
	}
}

// ClearNode empties node n's mailbox back to the cold-start condition —
// the mailbox half of cold-state eviction. Slot data and timestamps are
// zeroed (not just the count) so a cleared node contributes nothing to
// digests or readouts.
func (s *Store) ClearNode(n int32) {
	base := int(n) * s.slots
	row := s.data[base*s.dim : (base+s.slots)*s.dim]
	for i := range row {
		row[i] = 0
	}
	for i := 0; i < s.slots; i++ {
		s.times[base+i] = 0
	}
	s.count[n] = 0
	s.head[n] = 0
}

// Reset empties every mailbox.
func (s *Store) Reset() {
	for i := range s.data {
		s.data[i] = 0
	}
	for i := range s.times {
		s.times[i] = 0
	}
	for i := range s.count {
		s.count[i] = 0
		s.head[i] = 0
	}
}

// Snapshot captures the full store for later Restore (used to replay
// validation/test streams from a fixed point).
type Snapshot struct {
	data  []float32
	times []float64
	count []int32
	head  []int32
}

// Snapshot returns a deep copy of the store contents.
func (s *Store) Snapshot() *Snapshot {
	return &Snapshot{
		data:  append([]float32(nil), s.data...),
		times: append([]float64(nil), s.times...),
		count: append([]int32(nil), s.count...),
		head:  append([]int32(nil), s.head...),
	}
}

// Restore resets the store to a previously captured snapshot.
func (s *Store) Restore(snap *Snapshot) {
	copy(s.data, snap.data)
	copy(s.times, snap.times)
	copy(s.count, snap.count)
	copy(s.head, snap.head)
}
