package mailbox

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func mail(v float32, dim int) []float32 {
	m := make([]float32, dim)
	for i := range m {
		m[i] = v
	}
	return m
}

func TestDeliverAndLen(t *testing.T) {
	s := New(3, 2, 4)
	if s.Len(0) != 0 {
		t.Fatal("fresh mailbox not empty")
	}
	s.Deliver(0, mail(1, 4), 1)
	s.Deliver(0, mail(2, 4), 2)
	if s.Len(0) != 2 || s.Len(1) != 0 {
		t.Fatalf("lens: %d %d", s.Len(0), s.Len(1))
	}
}

func TestDeliverDimPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(1, 1, 4).Deliver(0, mail(1, 3), 1)
}

func TestFIFOEviction(t *testing.T) {
	s := New(1, 3, 1)
	for i := 1; i <= 5; i++ {
		s.Deliver(0, []float32{float32(i)}, float64(i))
	}
	// Slots hold mails 3,4,5 (oldest two evicted).
	buf := make([]float32, 3)
	ts := make([]float64, 3)
	n := s.ReadSorted(0, buf, ts)
	if n != 3 {
		t.Fatalf("count=%d", n)
	}
	if buf[0] != 3 || buf[1] != 4 || buf[2] != 5 {
		t.Fatalf("FIFO contents: %v", buf)
	}
	if ts[0] != 3 || ts[2] != 5 {
		t.Fatalf("timestamps: %v", ts)
	}
}

func TestReadSortedHandlesOutOfOrderDelivery(t *testing.T) {
	s := New(1, 4, 1)
	// Deliver out of timestamp order (distributed streams do this, §3.6).
	s.Deliver(0, []float32{30}, 30)
	s.Deliver(0, []float32{10}, 10)
	s.Deliver(0, []float32{20}, 20)
	buf := make([]float32, 4)
	ts := make([]float64, 4)
	n := s.ReadSorted(0, buf, ts)
	if n != 3 {
		t.Fatalf("count=%d", n)
	}
	for i, want := range []float32{10, 20, 30} {
		if buf[i] != want {
			t.Fatalf("sorted readout: %v", buf[:3])
		}
		if ts[i] != float64(want) {
			t.Fatalf("sorted timestamps: %v", ts[:3])
		}
	}
}

func TestReadSortedBufferPanic(t *testing.T) {
	s := New(1, 2, 2)
	s.Deliver(0, mail(1, 2), 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	s.ReadSorted(0, make([]float32, 1), make([]float64, 2))
}

func TestResetAndSnapshotRestore(t *testing.T) {
	s := New(2, 2, 1)
	s.Deliver(0, []float32{7}, 1)
	snap := s.Snapshot()
	s.Deliver(0, []float32{8}, 2)
	s.Deliver(1, []float32{9}, 3)
	s.Restore(snap)
	if s.Len(0) != 1 || s.Len(1) != 0 {
		t.Fatalf("restore lens: %d %d", s.Len(0), s.Len(1))
	}
	buf := make([]float32, 2)
	ts := make([]float64, 2)
	s.ReadSorted(0, buf, ts)
	if buf[0] != 7 {
		t.Fatalf("restored mail: %v", buf)
	}
	s.Reset()
	if s.Len(0) != 0 {
		t.Fatal("reset failed")
	}
}

func TestKeyValueUpdateKeepsCapacity(t *testing.T) {
	s := New(1, 2, 3)
	s.SetRule(UpdateKeyValue)
	s.Deliver(0, []float32{1, 0, 0}, 1)
	s.Deliver(0, []float32{0, 1, 0}, 2)
	// Mailbox full: KV blending kicks in, count stays at slots.
	s.Deliver(0, []float32{10, 0, 0}, 3)
	if s.Len(0) != 2 {
		t.Fatalf("KV mailbox len=%d", s.Len(0))
	}
	buf := make([]float32, 6)
	ts := make([]float64, 2)
	n := s.ReadSorted(0, buf, ts)
	if n != 2 {
		t.Fatalf("count=%d", n)
	}
	// The new mail must have been blended in: some slot moved toward (10,0,0).
	if buf[0] == 1 && buf[3] == 0 {
		t.Fatalf("KV update did not blend: %v", buf)
	}
	// The most-attended slot carries the new timestamp.
	if ts[n-1] != 3 {
		t.Fatalf("KV timestamps: %v", ts)
	}
}

// Property: after any delivery sequence, count ≤ slots, readout is sorted by
// timestamp, and the mails present are exactly the `count` most recent
// deliveries under FIFO.
func TestFIFOProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		slots := 1 + rng.Intn(5)
		s := New(1, slots, 1)
		var delivered []float64
		n := rng.Intn(30)
		for i := 0; i < n; i++ {
			ts := float64(i + 1)
			s.Deliver(0, []float32{float32(ts)}, ts)
			delivered = append(delivered, ts)
		}
		c := s.Len(0)
		if c > slots {
			return false
		}
		want := len(delivered)
		if want > slots {
			want = slots
		}
		if c != want {
			return false
		}
		buf := make([]float32, slots)
		ts := make([]float64, slots)
		got := s.ReadSorted(0, buf, ts)
		if got != c {
			return false
		}
		// Must be the last `c` deliveries in ascending order.
		for i := 0; i < c; i++ {
			if float64(buf[i]) != delivered[len(delivered)-c+i] {
				return false
			}
			if i > 0 && ts[i] < ts[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
