package mailbox

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
)

// TestShardedMatchesFlatQuick is the equivalence property behind the whole
// sharding refactor: for ANY sequence of out-of-order deliveries, a Sharded
// store and a flat Store must agree on every node's readout — same counts,
// same timestamp-sorted order, same mail contents — under both update
// rules. testing/quick drives the sequence from a random seed.
func TestShardedMatchesFlatQuick(t *testing.T) {
	const nodes, slots, dim = 37, 4, 3
	for _, rule := range []UpdateRule{UpdateFIFO, UpdateKeyValue} {
		prop := func(seed int64, opCount uint16) bool {
			rng := rand.New(rand.NewSource(seed))
			flat := New(nodes, slots, dim)
			flat.SetRule(rule)
			sharded := NewSharded(nodes, slots, dim, 8)
			sharded.SetRule(rule)

			n := int(opCount%512) + 1
			mail := make([]float32, dim)
			for i := 0; i < n; i++ {
				node := int32(rng.Intn(nodes))
				// Timestamps drawn independently of op index: arrival order
				// and time order are decorrelated, the §3.6 condition.
				ts := rng.Float64() * 100
				for j := range mail {
					mail[j] = rng.Float32()
				}
				flat.Deliver(node, mail, ts)
				sharded.Deliver(node, mail, ts)
			}

			fbuf := make([]float32, slots*dim)
			fts := make([]float64, slots)
			sbuf := make([]float32, slots*dim)
			sts := make([]float64, slots)
			for node := int32(0); node < nodes; node++ {
				if flat.Len(node) != sharded.Len(node) {
					return false
				}
				fc := flat.ReadSorted(node, fbuf, fts)
				sc := sharded.ReadSorted(node, sbuf, sts)
				if fc != sc {
					return false
				}
				for i := 0; i < fc; i++ {
					if fts[i] != sts[i] {
						return false
					}
					if i > 0 && sts[i] < sts[i-1] {
						return false // readout must be time-sorted
					}
				}
				for i := 0; i < fc*dim; i++ {
					if fbuf[i] != sbuf[i] {
						return false
					}
				}
			}
			return true
		}
		if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
			t.Errorf("rule %v: %v", rule, err)
		}
	}
}

// TestShardedGrowPreservesMail checks dynamic admission: growing keeps every
// delivered mail readable and makes the new IDs deliverable.
func TestShardedGrowPreservesMail(t *testing.T) {
	const slots, dim = 3, 2
	s := NewSharded(5, slots, dim, 4)
	for n := int32(0); n < 5; n++ {
		s.Deliver(n, []float32{float32(n), 1}, float64(n))
	}
	s.Grow(40)
	if s.NumNodes() != 40 {
		t.Fatalf("NumNodes after grow: %d", s.NumNodes())
	}
	s.Grow(10) // shrink attempts are no-ops
	if s.NumNodes() != 40 {
		t.Fatalf("Grow shrank: %d", s.NumNodes())
	}
	buf := make([]float32, slots*dim)
	ts := make([]float64, slots)
	for n := int32(0); n < 5; n++ {
		if c := s.ReadSorted(n, buf, ts); c != 1 || buf[0] != float32(n) {
			t.Fatalf("node %d lost mail after grow: count %d buf %v", n, c, buf)
		}
	}
	if s.Len(39) != 0 {
		t.Fatal("new node not empty")
	}
	s.Deliver(39, []float32{9, 9}, 1)
	if s.Len(39) != 1 {
		t.Fatal("delivery to admitted node failed")
	}
}

// TestShardedConcurrentStress hammers one store from concurrent deliverers,
// readers, growers and snapshotters. Run under -race (CI does); the
// assertions are invariants every interleaving must keep.
func TestShardedConcurrentStress(t *testing.T) {
	const (
		nodes   = 64
		slots   = 4
		dim     = 8
		writers = 4
		readers = 4
		opsEach = 2000
	)
	s := NewSharded(nodes, slots, dim, 8)
	var wg sync.WaitGroup

	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			mail := make([]float32, dim)
			for i := 0; i < opsEach; i++ {
				n := int32(rng.Intn(nodes))
				mail[0] = float32(n)
				s.Deliver(n, mail, rng.Float64())
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + r)))
			buf := make([]float32, slots*dim)
			ts := make([]float64, slots)
			for i := 0; i < opsEach; i++ {
				n := int32(rng.Intn(nodes))
				c := s.ReadSorted(n, buf, ts)
				if c < 0 || c > slots {
					t.Errorf("count %d out of range", c)
					return
				}
				for j := 1; j < c; j++ {
					if ts[j] < ts[j-1] {
						t.Error("unsorted readout under concurrency")
						return
					}
				}
				// Copy-out reads must never tear: slot 0 of node n always
				// holds n in its first component.
				if c > 0 && buf[0] != float32(n) {
					t.Errorf("torn read: node %d saw %v", n, buf[0])
					return
				}
			}
		}(r)
	}
	wg.Add(2)
	go func() { // grower: admission during traffic (existing IDs only read)
		defer wg.Done()
		for n := nodes; n <= nodes+32; n += 8 {
			s.Grow(n)
		}
	}()
	go func() { // snapshotter: consistent cuts during traffic
		defer wg.Done()
		for i := 0; i < 10; i++ {
			snap := s.Snapshot()
			if snap.numNodes < nodes {
				t.Error("snapshot lost nodes")
				return
			}
		}
	}()
	wg.Wait()

	total := 0
	for n := int32(0); n < int32(s.NumNodes()); n++ {
		total += s.Len(n)
	}
	if total == 0 {
		t.Fatal("no mail survived the stress run")
	}
}

// TestShardedSnapshotRestoreRoundTrip includes a grow between snapshot and
// restore: restore must roll the node space back too.
func TestShardedSnapshotRestoreRoundTrip(t *testing.T) {
	const slots, dim = 2, 2
	s := NewSharded(6, slots, dim, 4)
	s.Deliver(3, []float32{1, 2}, 5)
	snap := s.Snapshot()

	s.Deliver(3, []float32{9, 9}, 7)
	s.Grow(20)
	s.Deliver(19, []float32{8, 8}, 8)

	s.Restore(snap)
	if s.NumNodes() != 6 {
		t.Fatalf("restore kept grown node space: %d", s.NumNodes())
	}
	buf := make([]float32, slots*dim)
	ts := make([]float64, slots)
	if c := s.ReadSorted(3, buf, ts); c != 1 || buf[0] != 1 || ts[0] != 5 {
		t.Fatalf("restore did not roll back: count %d buf %v ts %v", c, buf, ts)
	}
}

// TestMailSnapshotSharedSinceAliasesCleanShards mirrors the state-store
// aliasing test: untouched shards are reused by pointer across snapshots,
// and bulk mutators (Reset, Restore, Grow, SetRule) dirty every shard.
func TestMailSnapshotSharedSinceAliasesCleanShards(t *testing.T) {
	const nodes, slots, dim, shards = 64, 3, 4, 8
	s := NewSharded(nodes, slots, dim, shards)
	for n := int32(0); n < nodes; n++ {
		s.Deliver(n, []float32{float32(n), 0, 0, 0}, float64(n))
	}

	base, cloned := s.SnapshotSharedSince(nil)
	if cloned != shards {
		t.Fatalf("nil base must full-copy: cloned %d of %d", cloned, shards)
	}

	s.Deliver(0, []float32{9, 9, 9, 9}, 99) // dirties shard 0 only
	next, cloned := s.SnapshotSharedSince(base)
	if cloned != 1 {
		t.Fatalf("expected 1 dirty shard cloned, got %d", cloned)
	}
	aliased := 0
	for i := range next.shards {
		if next.shards[i] == base.shards[i] {
			aliased++
		}
	}
	if aliased != shards-1 {
		t.Fatalf("expected %d aliased shards, got %d", shards-1, aliased)
	}

	// Restoring the aliased snapshot reproduces the live mailbox contents.
	r := NewSharded(nodes, slots, dim, shards)
	r.Restore(next)
	bufA, bufB := make([]float32, slots*dim), make([]float32, slots*dim)
	tsA, tsB := make([]float64, slots), make([]float64, slots)
	for n := int32(0); n < nodes; n++ {
		ka, kb := s.ReadSorted(n, bufA, tsA), r.ReadSorted(n, bufB, tsB)
		if ka != kb {
			t.Fatalf("node %d mail count %d vs %d", n, ka, kb)
		}
		for i := 0; i < ka*dim; i++ {
			if bufA[i] != bufB[i] {
				t.Fatalf("node %d mail payload diverged", n)
			}
		}
	}

	s.Reset()
	if _, cloned := s.SnapshotSharedSince(next); cloned != shards {
		t.Fatalf("after Reset expected %d clones, got %d", shards, cloned)
	}
	base, _ = s.SnapshotSharedSince(nil)
	s.SetRule(UpdateKeyValue)
	if _, cloned := s.SnapshotSharedSince(base); cloned != shards {
		t.Fatalf("after SetRule expected %d clones, got %d", shards, cloned)
	}
	base, _ = s.SnapshotSharedSince(nil)
	s.Grow(nodes * 2)
	if _, cloned := s.SnapshotSharedSince(base); cloned != shards {
		t.Fatalf("after Grow expected %d clones, got %d", shards, cloned)
	}
}
