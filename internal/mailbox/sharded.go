package mailbox

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// Sharded is the lock-striped mailbox store used on the serving path: the
// flat per-node layout of Store, striped across a power-of-two number of
// shards, each guarded by its own RWMutex. Node n lives in shard n&mask at
// local index n>>bits, so consecutive node IDs spread across shards and the
// asynchronous link's mail deliveries never block synchronous-link readers
// of other shards.
//
// ReadSorted copies mails out under the shard's read lock, so a reader never
// observes a half-written slot. Per-node operations are atomic; cross-node
// reads are not a snapshot — use Snapshot (all-shard lock) when a consistent
// cut is required. Grow admits new nodes at runtime.
type Sharded struct {
	slots    int
	dim      int
	mask     int32
	bits     uint
	numNodes atomic.Int64
	shards   []mailShard
}

type mailShard struct {
	mu sync.RWMutex
	st *Store
	// gen counts modifications to this shard (any mutator bumps it under
	// the shard's write lock). Incremental checkpoint cuts compare gens to
	// skip cloning shards untouched since the previous cut.
	gen uint64
	// Pad the 24-byte mutex + 8-byte pointer + 8-byte gen to a full cache
	// line so shard locks don't false-share.
	_ [24]byte
}

// NewSharded creates an empty sharded store for numNodes mailboxes of
// `slots` mails of dimension dim, striped across `shards` shards (rounded up
// to a power of two; values < 1 mean one shard, i.e. a single global lock).
func NewSharded(numNodes, slots, dim, shards int) *Sharded {
	if numNodes <= 0 || slots <= 0 || dim <= 0 {
		panic(fmt.Sprintf("mailbox: invalid shape nodes=%d slots=%d dim=%d", numNodes, slots, dim))
	}
	n := shardCount(shards)
	s := &Sharded{slots: slots, dim: dim, mask: int32(n - 1), shards: make([]mailShard, n)}
	for n>>s.bits > 1 {
		s.bits++
	}
	cap := shardCap(numNodes, n)
	for i := range s.shards {
		s.shards[i].st = New(cap, slots, dim)
	}
	s.numNodes.Store(int64(numNodes))
	return s
}

// shardCount rounds n up to a power of two in [1, 1<<16].
func shardCount(n int) int {
	if n < 1 {
		n = 1
	}
	if n > 1<<16 {
		n = 1 << 16
	}
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// shardCap returns the flat-store size each of `shards` shards needs to
// cover numNodes global IDs (local index is id>>bits, so ceil is exact).
func shardCap(numNodes, shards int) int {
	c := (numNodes + shards - 1) / shards
	if c < 1 {
		c = 1
	}
	return c
}

// SetRule selects the update rule ψ for every mailbox.
func (s *Sharded) SetRule(r UpdateRule) {
	s.lockAll()
	for i := range s.shards {
		s.shards[i].st.SetRule(r)
		s.shards[i].gen++
	}
	s.unlockAll()
}

// NumShards returns the number of lock shards.
func (s *Sharded) NumShards() int { return len(s.shards) }

// Slots returns the per-node slot count m.
func (s *Sharded) Slots() int { return s.slots }

// Dim returns the mail dimension d.
func (s *Sharded) Dim() int { return s.dim }

// NumNodes returns the current number of mailboxes.
func (s *Sharded) NumNodes() int { return int(s.numNodes.Load()) }

func (s *Sharded) locate(n int32) (*mailShard, int32) {
	if n < 0 || int64(n) >= s.numNodes.Load() {
		panic(fmt.Sprintf("mailbox: node %d outside [0,%d)", n, s.numNodes.Load()))
	}
	return &s.shards[n&s.mask], n >> s.bits
}

// Len returns the number of mails currently in node n's mailbox.
func (s *Sharded) Len(n int32) int {
	sh, local := s.locate(n)
	sh.mu.RLock()
	c := sh.st.Len(local)
	sh.mu.RUnlock()
	return c
}

// Deliver applies ψ to insert mail (with timestamp ts) into node n's
// mailbox, locking only n's shard.
func (s *Sharded) Deliver(n int32, mail []float32, ts float64) {
	sh, local := s.locate(n)
	sh.mu.Lock()
	sh.st.Deliver(local, mail, ts)
	sh.gen++
	sh.mu.Unlock()
}

// ReadSorted copies node n's mails into buf sorted by ascending timestamp
// under the shard's read lock (see Store.ReadSorted for the contract).
func (s *Sharded) ReadSorted(n int32, buf []float32, tsOut []float64) int {
	sh, local := s.locate(n)
	sh.mu.RLock()
	c := sh.st.ReadSorted(local, buf, tsOut)
	sh.mu.RUnlock()
	return c
}

// ClearNode empties node n's mailbox (see Store.ClearNode), locking only
// n's shard.
func (s *Sharded) ClearNode(n int32) {
	sh, local := s.locate(n)
	sh.mu.Lock()
	sh.st.ClearNode(local)
	sh.gen++
	sh.mu.Unlock()
}

// Grow extends the store to hold n mailboxes, preserving existing contents.
// It locks every shard; no-op when n ≤ NumNodes.
func (s *Sharded) Grow(n int) {
	if int64(n) <= s.numNodes.Load() {
		return
	}
	s.lockAll()
	if int64(n) > s.numNodes.Load() {
		cap := shardCap(n, len(s.shards))
		for i := range s.shards {
			s.shards[i].st.Grow(cap)
			s.shards[i].gen++
		}
		s.numNodes.Store(int64(n))
	}
	s.unlockAll()
}

// Reset empties every mailbox.
func (s *Sharded) Reset() {
	s.lockAll()
	for i := range s.shards {
		s.shards[i].st.Reset()
		s.shards[i].gen++
	}
	s.unlockAll()
}

func (s *Sharded) lockAll() {
	for i := range s.shards {
		s.shards[i].mu.Lock()
	}
}

func (s *Sharded) unlockAll() {
	for i := len(s.shards) - 1; i >= 0; i-- {
		s.shards[i].mu.Unlock()
	}
}

// ShardedSnapshot captures a Sharded store for later Restore. Snapshots
// are immutable: Restore and checkpoint serialization clone out of them,
// never mutate them — which is what lets incremental cuts alias clean
// shards across successive snapshots.
type ShardedSnapshot struct {
	numNodes int
	shards   []*Store
	gens     []uint64 // per-shard modification counters at capture time
}

// Snapshot returns a deep, cross-shard-consistent copy of the store (all
// shards locked for the duration).
func (s *Sharded) Snapshot() *ShardedSnapshot {
	snap := &ShardedSnapshot{
		shards: make([]*Store, len(s.shards)),
		gens:   make([]uint64, len(s.shards)),
	}
	s.lockAll()
	snap.numNodes = int(s.numNodes.Load())
	for i := range s.shards {
		snap.shards[i] = s.shards[i].st.clone()
		snap.gens[i] = s.shards[i].gen
	}
	s.unlockAll()
	return snap
}

// SnapshotShared captures the store one shard at a time under shard READ
// locks, so concurrent readers — including a serving InferBatch gather —
// are never blocked. The copy is cross-shard-consistent only if writers are
// externally quiesced for the duration (the model's apply gate provides
// that); with writers running it degrades to per-shard consistency, like
// any interleaved read.
func (s *Sharded) SnapshotShared() *ShardedSnapshot {
	snap, _ := s.SnapshotSharedSince(nil)
	return snap
}

// SnapshotSharedSince is SnapshotShared with incremental cloning: shards
// whose modification counter is unchanged since prev was captured reuse
// prev's clone instead of copying again — safe because snapshots are
// immutable (see ShardedSnapshot). Returns the snapshot and the number of
// shards actually cloned. prev must come from this store (same shard
// count); nil, or a shard-count mismatch, degrades to a full copy. The
// same quiescence caveat as SnapshotShared applies: cross-shard
// consistency needs writers externally paused.
func (s *Sharded) SnapshotSharedSince(prev *ShardedSnapshot) (*ShardedSnapshot, int) {
	snap := &ShardedSnapshot{
		numNodes: int(s.numNodes.Load()),
		shards:   make([]*Store, len(s.shards)),
		gens:     make([]uint64, len(s.shards)),
	}
	incremental := prev != nil && len(prev.shards) == len(s.shards) && len(prev.gens) == len(s.shards)
	cloned := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		snap.gens[i] = sh.gen
		if incremental && prev.gens[i] == sh.gen {
			snap.shards[i] = prev.shards[i]
		} else {
			snap.shards[i] = sh.st.clone()
			cloned++
		}
		sh.mu.RUnlock()
	}
	return snap, cloned
}

// Restore resets the store to a previously captured snapshot, including its
// node count (a store grown since the snapshot shrinks back).
func (s *Sharded) Restore(snap *ShardedSnapshot) {
	if len(snap.shards) != len(s.shards) {
		panic(fmt.Sprintf("mailbox: restore across shard counts (%d vs %d)", len(snap.shards), len(s.shards)))
	}
	s.lockAll()
	for i := range s.shards {
		s.shards[i].st = snap.shards[i].clone()
		s.shards[i].gen++
	}
	s.numNodes.Store(int64(snap.numNodes))
	s.unlockAll()
}
