// Package async implements APAN's deployment architecture (paper Fig. 2b):
// a synchronous inference stage that answers in milliseconds without
// touching the graph, and an asynchronous propagation stage that performs
// the graph writes, k-hop queries and mail deliveries behind a bounded
// queue. The queue isolates the online decision system from graph-database
// load spikes (the "Black Friday" problem of §1).
package async

import (
	"errors"
	"sync"
	"time"

	"apan/internal/core"
	"apan/internal/eval"
	"apan/internal/tgraph"
)

// Pipeline connects a core.Model's synchronous and asynchronous links.
// Submit runs inference inline and enqueues propagation; a single worker
// goroutine drains the queue, serializing all state mutation so the model's
// stores never see concurrent writers.
type Pipeline struct {
	model *core.Model

	queue chan *core.Inference
	done  chan struct{}

	mu        sync.Mutex
	syncHist  eval.LatencyHist
	asyncHist eval.LatencyHist
	submitted int64
	processed int64
	maxDepth  int
	closed    bool
	wg        sync.WaitGroup
}

// ErrClosed is returned by Submit after Close.
var ErrClosed = errors.New("async: pipeline closed")

// NewPipeline starts a pipeline with the given propagation queue capacity.
// Capacity bounds memory during event bursts; Submit blocks (backpressure)
// once the asynchronous link falls that many batches behind.
func NewPipeline(m *core.Model, queueCap int) *Pipeline {
	if queueCap < 1 {
		queueCap = 1
	}
	p := &Pipeline{
		model: m,
		queue: make(chan *core.Inference, queueCap),
		done:  make(chan struct{}),
	}
	p.wg.Add(1)
	go p.worker()
	return p
}

func (p *Pipeline) worker() {
	defer p.wg.Done()
	for inf := range p.queue {
		start := time.Now()
		p.model.ApplyInference(inf)
		d := time.Since(start)
		p.mu.Lock()
		p.asyncHist.Add(d)
		p.processed++
		p.mu.Unlock()
	}
	close(p.done)
}

// Submit scores a batch of interactions on the synchronous link and
// enqueues the asynchronous work. The returned latency covers only the
// synchronous part — what a caller of the online decision system observes.
func (p *Pipeline) Submit(events []tgraph.Event) ([]float32, time.Duration, error) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil, 0, ErrClosed
	}
	p.submitted++
	p.mu.Unlock()

	start := time.Now()
	inf := p.model.InferBatch(events)
	lat := time.Since(start)

	p.mu.Lock()
	p.syncHist.Add(lat)
	if d := len(p.queue) + 1; d > p.maxDepth {
		p.maxDepth = d
	}
	p.mu.Unlock()

	p.queue <- inf
	return inf.Scores, lat, nil
}

// Drain blocks until every enqueued batch has been propagated.
func (p *Pipeline) Drain() {
	for {
		p.mu.Lock()
		behind := p.submitted - p.processed
		p.mu.Unlock()
		if behind == 0 {
			return
		}
		time.Sleep(100 * time.Microsecond)
	}
}

// Close drains the queue, stops the worker and releases resources. The
// pipeline cannot be reused.
func (p *Pipeline) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	p.mu.Unlock()
	close(p.queue)
	<-p.done
	p.wg.Wait()
}

// Stats is a point-in-time view of pipeline health.
type Stats struct {
	Submitted     int64
	Processed     int64
	QueueDepth    int
	MaxQueueDepth int
	SyncMean      time.Duration
	SyncP99       time.Duration
	AsyncMean     time.Duration
}

// Stats reports instrumentation counters.
func (p *Pipeline) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return Stats{
		Submitted:     p.submitted,
		Processed:     p.processed,
		QueueDepth:    len(p.queue),
		MaxQueueDepth: p.maxDepth,
		SyncMean:      p.syncHist.Mean(),
		SyncP99:       p.syncHist.Quantile(0.99),
		AsyncMean:     p.asyncHist.Mean(),
	}
}
