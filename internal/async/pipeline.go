// Package async implements APAN's deployment architecture (paper Fig. 2b):
// a synchronous inference stage that answers in milliseconds without
// touching the graph, and an asynchronous propagation stage that performs
// the graph writes, k-hop queries and mail deliveries behind a bounded
// queue. The queue isolates the online decision system from graph-database
// load spikes (the "Black Friday" problem of §1).
//
// The Pipeline API is context-aware: Submit honors cancellation while
// blocked on backpressure, TrySubmit never blocks, SubmitFuture returns a
// channel for callers that overlap scoring with other work, Drain waits
// event-driven (condition variable, no polling) and Shutdown drains then
// stops the workers.
//
// Concurrent submissions score in parallel: the model's sharded, lock-
// striped stores (core.Config.Shards) make InferBatch safe under any number
// of goroutines, and propagation workers writing one shard never stall
// scoring reads of another.
package async

import (
	"context"
	"errors"
	"sync"
	"time"

	"apan/internal/core"
	"apan/internal/eval"
	"apan/internal/tgraph"
	"apan/internal/wal"
)

// Errors returned by the submission API.
var (
	// ErrClosed is returned by Submit variants after Shutdown/Close.
	ErrClosed = errors.New("async: pipeline closed")
	// ErrQueueFull is returned by TrySubmit when the propagation queue is
	// at capacity and enqueueing would block.
	ErrQueueFull = errors.New("async: propagation queue full")
)

// Option configures a Pipeline at construction time.
type Option func(*options)

// Trainer is the slice of an online trainer the pipeline feeds: Observe is
// called on a propagation worker with each batch's events immediately after
// they are applied, and must not block (internal/train.OnlineTrainer
// buffers into a bounded queue). Defined as an interface so the pipeline
// does not depend on the trainer implementation.
type Trainer interface {
	Observe(events []tgraph.Event)
}

type options struct {
	queueCap    int
	workers     int
	batchWindow time.Duration
	beforeApply func(events []tgraph.Event)
	trainer     Trainer

	// Tenancy (see tenant.go): when enabled the single queue channel is
	// replaced by the per-tenant weighted-fair scheduler.
	tenancy        bool
	tenants        []TenantConfig
	tenantDefaults *TenantConfig
}

// WithQueueCap bounds the propagation queue. Capacity bounds memory during
// event bursts; Submit blocks (backpressure) once the asynchronous link
// falls that many batches behind. Default 64.
func WithQueueCap(n int) Option {
	return func(o *options) {
		if n >= 1 {
			o.queueCap = n
		}
	}
}

// WithWorkers sets the number of asynchronous propagation workers. The
// default of 1 preserves the exact submission-order state evolution the
// tests rely on; more workers trade that determinism for propagation
// throughput behind a slow graph database. Safety does not depend on this
// knob: state writes and mail deliveries lock only the touched store shard,
// and graph access is serialized by the model's graph mutex — workers
// beyond 1 therefore parallelize the graph-database wait and the mail
// generation, not the graph mutation itself. Workers is independent of the
// store shard count (core.Config.Shards): shards bound reader/writer
// contention, workers bound propagation parallelism.
func WithWorkers(n int) Option {
	return func(o *options) {
		if n >= 1 {
			o.workers = n
		}
	}
}

// WithBatchWindow sets the pipeline's advertised micro-batching window: the
// time span within which a serving layer should coalesce concurrent
// single-event submissions into one InferBatch call (paper Table 5 peaks
// around batch size 200). The pipeline itself does not delay submissions;
// internal/serve reads this as the default window for its micro-batcher.
func WithBatchWindow(d time.Duration) Option {
	return func(o *options) {
		if d > 0 {
			o.batchWindow = d
		}
	}
}

// WithBeforeApply registers fn to run on a propagation worker immediately
// before each batch's ApplyInference, with the batch's events. It is the
// pipeline's deterministic fault-injection seam: internal/scenario parks
// workers on a channel here to saturate the queue with an exactly
// reproducible drop pattern, or sleeps to emulate a slow graph-database
// consumer — both without reaching into pipeline internals. It also serves
// as an apply-side instrumentation hook. fn runs on worker goroutines and
// must be safe for concurrent calls when WithWorkers > 1; it must not call
// back into the pipeline's Submit/Drain/Shutdown (the worker it runs on is
// the one that would have to make progress).
func WithBeforeApply(fn func(events []tgraph.Event)) Option {
	return func(o *options) { o.beforeApply = fn }
}

// WithOnlineTrainer feeds t with every applied batch's events, from the
// propagation worker right after ApplyInference — the online continual-
// learning tap: the trainer sees exactly the events that mutated the
// streaming state, in apply order, off the scoring path. With WithWorkers >
// 1 Observe must be safe for concurrent calls (the bundled trainer is).
func WithOnlineTrainer(t Trainer) Option {
	return func(o *options) { o.trainer = t }
}

// Pipeline connects a core.Model's synchronous and asynchronous links.
// Submit runs inference inline and enqueues propagation; worker goroutines
// drain the queue. Any number of goroutines may call the Submit variants
// concurrently, and their synchronous-link passes run in parallel: the
// model's sharded stores make InferBatch safe and scalable under concurrent
// callers (shard-local locking, no global lock).
type Pipeline struct {
	model *core.Model
	opts  options

	queue chan *core.Inference
	done  chan struct{}

	// sched replaces queue when tenancy is enabled (WithTenants): per-tenant
	// bounded queues drained in weighted-fair order. Nil otherwise.
	sched *tenantSched

	// sendMu protects the queue channel's lifetime: Submit holds a read
	// lock across the send, Shutdown takes the write lock before closing,
	// so a send can never hit a closed channel.
	sendMu sync.RWMutex

	mu        sync.Mutex
	idle      *sync.Cond // signaled whenever enqueued == processed
	syncHist  eval.LatencyHist
	asyncHist eval.LatencyHist
	submitted int64
	enqueued  int64
	processed int64
	maxDepth  int
	closed    bool
	wg        sync.WaitGroup
}

// New starts a pipeline over a trained model with the given options.
func New(m *core.Model, opts ...Option) *Pipeline {
	o := options{queueCap: 64, workers: 1, batchWindow: time.Millisecond}
	for _, fn := range opts {
		fn(&o)
	}
	p := &Pipeline{
		model: m,
		opts:  o,
		queue: make(chan *core.Inference, o.queueCap),
		done:  make(chan struct{}),
	}
	if o.tenancy {
		p.sched = newTenantSched(o)
	}
	p.idle = sync.NewCond(&p.mu)
	p.wg.Add(o.workers)
	for i := 0; i < o.workers; i++ {
		go p.worker()
	}
	go func() {
		p.wg.Wait()
		close(p.done)
	}()
	return p
}

// NewPipeline starts a pipeline with the given propagation queue capacity.
//
// Deprecated: use New with WithQueueCap; kept so pre-v1 callers compile.
func NewPipeline(m *core.Model, queueCap int) *Pipeline {
	return New(m, WithQueueCap(queueCap))
}

// BatchWindow reports the configured micro-batching window (WithBatchWindow).
func (p *Pipeline) BatchWindow() time.Duration { return p.opts.batchWindow }

// NumNodes reports the current node-ID space of the served model, for
// request validation at the serving edge. It can grow at runtime; see
// EnsureNodes.
func (p *Pipeline) NumNodes() int { return p.model.NumNodes() }

// EnsureNodes grows the served model's node-ID space to at least n, so
// events naming previously unseen node IDs can be scored (dynamic node
// admission). Safe to call concurrently with submissions.
func (p *Pipeline) EnsureNodes(n int) { p.model.EnsureNodes(n) }

// EdgeDim reports the expected event feature dimension.
func (p *Pipeline) EdgeDim() int { return p.model.Cfg.EdgeDim }

// ParamVersion reports the served model's currently published parameter
// version (see core.Model.SwapParams) for the serving stats surface.
func (p *Pipeline) ParamVersion() uint64 { return p.model.ParamVersion() }

// GraphBackend reports the served model's temporal-graph store selector
// (core.GraphBackend*) for the serving stats surface.
func (p *Pipeline) GraphBackend() string { return p.model.GraphBackend() }

// WALStats reports the attached write-ahead log's health for the serving
// stats surface, or nil when the model serves without durability.
func (p *Pipeline) WALStats() *wal.Stats {
	l := p.model.WAL()
	if l == nil {
		return nil
	}
	st := l.Stats()
	return &st
}

// EvictionStats reports the served model's cold-state evictor counters for
// the serving stats surface, or nil when eviction is disabled
// (core.Config.EvictMaxNodes == 0).
func (p *Pipeline) EvictionStats() *core.EvictionStats {
	st, ok := p.model.EvictionStats()
	if !ok {
		return nil
	}
	return &st
}

func (p *Pipeline) worker() {
	defer p.wg.Done()
	if p.sched != nil {
		for {
			inf, t, ok := p.sched.dequeue()
			if !ok {
				return
			}
			p.applyOne(inf)
			p.sched.markApplied(t)
		}
	}
	for inf := range p.queue {
		p.applyOne(inf)
	}
}

// applyOne runs one dequeued inference through the asynchronous link:
// fault-injection hook, apply, trainer tap, workspace recycle, accounting.
func (p *Pipeline) applyOne(inf *core.Inference) {
	start := time.Now()
	if p.opts.beforeApply != nil {
		p.opts.beforeApply(inf.Events)
	}
	p.model.ApplyInference(inf)
	if p.opts.trainer != nil {
		// Tap the apply path for online learning. Observe copies what it
		// keeps, so releasing the inference below is safe.
		p.opts.trainer.Observe(inf.Events)
	}
	// The submitter copied the scores out before enqueueing, so after
	// the apply nothing references the inference: recycle its pooled
	// workspace for the next scorer.
	inf.Release()
	d := time.Since(start)
	p.mu.Lock()
	p.asyncHist.Add(d)
	p.processed++
	if p.processed == p.enqueued {
		p.idle.Broadcast()
	}
	p.mu.Unlock()
}

// score runs the synchronous link and records the observed latency. Scoring
// is NOT serialized: concurrent submissions run InferBatch in parallel over
// the sharded stores. It returns ErrClosed without touching the model when
// the pipeline has shut down.
func (p *Pipeline) score(events []tgraph.Event) (*core.Inference, time.Duration, error) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil, 0, ErrClosed
	}
	p.submitted++
	p.mu.Unlock()

	start := time.Now()
	inf := p.model.InferBatch(events)
	lat := time.Since(start)

	p.mu.Lock()
	p.syncHist.Add(lat)
	p.mu.Unlock()
	return inf, lat, nil
}

// noteEnqueued counts a batch BEFORE its channel send so a worker can never
// observe processed > enqueued (which would let Drain return with work still
// queued). A send that is abandoned must be undone with unnoteEnqueued.
func (p *Pipeline) noteEnqueued() {
	p.mu.Lock()
	p.enqueued++
	if d := int(p.enqueued - p.processed); d > p.maxDepth {
		p.maxDepth = d
	}
	p.mu.Unlock()
}

func (p *Pipeline) unnoteEnqueued() {
	p.mu.Lock()
	p.enqueued--
	if p.enqueued == p.processed {
		p.idle.Broadcast()
	}
	p.mu.Unlock()
}

// Submit scores a batch of interactions on the synchronous link and
// enqueues the asynchronous work, blocking under backpressure until queue
// space frees or ctx is done. The returned latency covers only the
// synchronous part — what a caller of the online decision system observes.
// On cancellation the already-computed scores are discarded unapplied: no
// state was mutated, so the caller can simply retry.
func (p *Pipeline) Submit(ctx context.Context, events []tgraph.Event) ([]float32, time.Duration, error) {
	if err := ctx.Err(); err != nil {
		return nil, 0, err
	}
	if p.sched != nil {
		return p.submitTenant(ctx, DefaultTenant, events, true)
	}
	// Warm any evicted nodes this batch names before scoring: re-admission
	// needs graph access, which the synchronous link (InferBatch) must never
	// perform itself. No-op unless cold-state eviction is configured.
	p.model.ReadmitBatch(events)
	inf, lat, err := p.score(events)
	if err != nil {
		return nil, 0, err
	}
	// Copy the scores out of the inference's pooled workspace: once the
	// propagation worker applies and releases it, the pooled buffer is
	// recycled, and the caller may hold the scores indefinitely.
	scores := append([]float32(nil), inf.Scores...)

	p.sendMu.RLock()
	defer p.sendMu.RUnlock()
	p.mu.Lock()
	closed := p.closed
	p.mu.Unlock()
	if closed {
		inf.Release()
		return nil, lat, ErrClosed
	}
	p.noteEnqueued()
	select {
	case p.queue <- inf:
		return scores, lat, nil
	case <-ctx.Done():
		p.unnoteEnqueued()
		// Cancelled before the enqueue: nothing was applied, nothing else
		// references the inference.
		inf.Release()
		return nil, lat, ctx.Err()
	}
}

// ScoreOnly scores a batch on the synchronous link without enqueueing it
// for apply: no mailbox delivery, no graph insert, no state update. This is
// the read-only serving mode of a warm-standby follower, whose state
// advances exclusively through WAL replay — scoring a shipped-but-unlogged
// event through the write path would fork the follower from the leader.
func (p *Pipeline) ScoreOnly(events []tgraph.Event) ([]float32, time.Duration, error) {
	inf, lat, err := p.score(events)
	if err != nil {
		return nil, 0, err
	}
	scores := append([]float32(nil), inf.Scores...)
	inf.Release()
	return scores, lat, nil
}

// TrySubmit is the non-blocking Submit variant: when the propagation queue
// is at capacity it drops the scored batch unapplied and returns
// ErrQueueFull, leaving all model state untouched — a load-shedding
// primitive for the serving edge.
func (p *Pipeline) TrySubmit(events []tgraph.Event) ([]float32, time.Duration, error) {
	if p.sched != nil {
		return p.submitTenant(context.Background(), DefaultTenant, events, false)
	}
	p.model.ReadmitBatch(events) // see Submit
	inf, lat, err := p.score(events)
	if err != nil {
		return nil, 0, err
	}
	scores := append([]float32(nil), inf.Scores...)

	p.sendMu.RLock()
	defer p.sendMu.RUnlock()
	p.mu.Lock()
	closed := p.closed
	p.mu.Unlock()
	if closed {
		inf.Release()
		return nil, lat, ErrClosed
	}
	p.noteEnqueued()
	select {
	case p.queue <- inf:
		return scores, lat, nil
	default:
		p.unnoteEnqueued()
		// Shed load: the scored batch is dropped unapplied; recycle it.
		inf.Release()
		return nil, lat, ErrQueueFull
	}
}

// Result is the outcome of an asynchronous submission.
type Result struct {
	Scores      []float32
	SyncLatency time.Duration
	Err         error
}

// SubmitFuture submits on a background goroutine and returns a buffered
// channel that receives the single Result; the caller need never read it.
func (p *Pipeline) SubmitFuture(ctx context.Context, events []tgraph.Event) <-chan Result {
	ch := make(chan Result, 1)
	go func() {
		scores, lat, err := p.Submit(ctx, events)
		ch <- Result{Scores: scores, SyncLatency: lat, Err: err}
	}()
	return ch
}

// Explain returns the attention explanation for node n from the most recent
// scored batch. With concurrent scoring, "most recent" means whichever pass
// published its attention record last.
func (p *Pipeline) Explain(n tgraph.NodeID) (*core.Explanation, bool) {
	return p.model.Explain(n)
}

// Drain blocks until every enqueued batch has been propagated or ctx is
// done. Waiting is event-driven: workers broadcast on a condition variable
// when the queue empties.
func (p *Pipeline) Drain(ctx context.Context) error {
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		select {
		case <-ctx.Done():
			p.mu.Lock()
			p.idle.Broadcast()
			p.mu.Unlock()
		case <-stop:
		}
	}()

	p.mu.Lock()
	defer p.mu.Unlock()
	for p.enqueued != p.processed {
		if err := ctx.Err(); err != nil {
			return err
		}
		p.idle.Wait()
	}
	return ctx.Err()
}

// Shutdown rejects new submissions, waits for in-flight Submits to enqueue,
// then drains the queue and stops the workers. It returns ctx's error if
// the drain does not finish in time (the workers still run to completion in
// the background). The pipeline cannot be reused.
func (p *Pipeline) Shutdown(ctx context.Context) error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		select {
		case <-p.done:
			return nil
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	p.closed = true
	p.mu.Unlock()

	if p.sched != nil {
		// The tenant scheduler rejects new enqueues atomically under its own
		// mutex and workers drain the backlog before exiting, so no channel
		// close is needed on this path.
		p.sched.close()
		select {
		case <-p.done:
			return nil
		case <-ctx.Done():
			return ctx.Err()
		}
	}

	// Wait for every in-flight send, then close the queue so workers exit
	// after the backlog. The lock wait happens off this goroutine so ctx is
	// honored even while a backpressured Submit holds the read lock.
	go func() {
		p.sendMu.Lock()
		close(p.queue)
		p.sendMu.Unlock()
	}()

	select {
	case <-p.done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Close drains the queue, stops the workers and releases resources.
//
// Deprecated: use Shutdown, which honors a deadline.
func (p *Pipeline) Close() { _ = p.Shutdown(context.Background()) }

// Stats is a point-in-time view of pipeline health.
type Stats struct {
	Submitted     int64         `json:"submitted"`
	Processed     int64         `json:"processed"`
	QueueDepth    int           `json:"queue_depth"`
	MaxQueueDepth int           `json:"max_queue_depth"`
	SyncMean      time.Duration `json:"sync_mean_ns"`
	SyncP99       time.Duration `json:"sync_p99_ns"`
	AsyncMean     time.Duration `json:"async_mean_ns"`
}

// Stats reports instrumentation counters.
func (p *Pipeline) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return Stats{
		Submitted:     p.submitted,
		Processed:     p.processed,
		QueueDepth:    int(p.enqueued - p.processed),
		MaxQueueDepth: p.maxDepth,
		SyncMean:      p.syncHist.Mean(),
		SyncP99:       p.syncHist.Quantile(0.99),
		AsyncMean:     p.asyncHist.Mean(),
	}
}
