// Multi-tenant admission control for the propagation pipeline. With
// tenancy enabled (WithTenants / WithTenantDefaults), every submission is
// attributed to a tenant and passes three gates before reaching a
// propagation worker:
//
//  1. a per-tenant rate limit — a token bucket refilled by the *stream
//     time* carried on the events themselves, so admission decisions are a
//     pure function of the submitted trace and replay deterministically
//     (no wall clock anywhere in the policy);
//  2. a per-tenant bounded queue — a noisy tenant's backlog fills its own
//     queue and sheds its own traffic (ErrQueueFull), never a neighbor's;
//  3. weighted-fair dequeue — workers drain lanes in strict priority
//     order, and within a lane serve tenants round-robin in proportion to
//     their weights, so a backlogged aggressor cannot starve a steady
//     victim of propagation bandwidth.
//
// Every submission outcome is accounted per tenant (submitted = applied +
// dropped, with rate-limited drops broken out), which is what the serving
// layer's 429s, the /v1/stats tenants block, and the noisy_neighbor
// scenario invariants are built on. Without tenancy options the pipeline
// runs the original single-queue path untouched.
package async

import (
	"context"
	"errors"
	"sort"
	"sync"
	"time"

	"apan/internal/core"
	"apan/internal/eval"
	"apan/internal/tgraph"
)

// ErrRateLimited is returned by the Submit variants when the tenant's
// event-time token bucket has no capacity for the batch.
var ErrRateLimited = errors.New("async: tenant rate limit exceeded")

// DefaultTenant is the tenant id attributed to submissions that do not name
// one (the tenant-unaware Submit/TrySubmit call sites).
const DefaultTenant = "default"

// TenantConfig declares one tenant's admission contract.
type TenantConfig struct {
	// ID names the tenant; the empty id resolves to DefaultTenant.
	ID string
	// Weight is the tenant's share of propagation bandwidth relative to its
	// lane peers: a weight-3 tenant is dequeued three times per round for a
	// weight-1 peer's once, when both are backlogged. Values < 1 mean 1.
	Weight int
	// Rate caps admission in events per second of stream time (the Time
	// field of the submitted events); 0 or negative means unlimited. The
	// bucket refills from the event timestamps, never the wall clock, so a
	// replayed trace is admitted identically every run.
	Rate float64
	// Burst is the token-bucket depth in events — how far above the
	// sustained rate a flash crowd may momentarily go. 0 means one second
	// of Rate (or 1, whichever is larger).
	Burst float64
	// Lane is the tenant's priority lane: workers fully drain lane 0
	// before looking at lane 1, and so on. Equal-lane tenants share via
	// weighted round-robin.
	Lane int
	// QueueCap bounds the tenant's propagation queue; 0 adopts the
	// pipeline's WithQueueCap value.
	QueueCap int
}

func (c TenantConfig) normalized(pipelineCap int) TenantConfig {
	if c.ID == "" {
		c.ID = DefaultTenant
	}
	if c.Weight < 1 {
		c.Weight = 1
	}
	if c.QueueCap < 1 {
		c.QueueCap = pipelineCap
	}
	if c.Rate > 0 && c.Burst <= 0 {
		c.Burst = c.Rate
		if c.Burst < 1 {
			c.Burst = 1
		}
	}
	return c
}

// TenantStats is a point-in-time view of one tenant's admission accounting.
// Submitted counts every submission attempt that reached an open pipeline;
// each is eventually Applied or Dropped (RateLimited drops are the subset
// of Dropped shed by the rate gate), so Submitted = Applied + Dropped once
// the tenant's queue is drained.
type TenantStats struct {
	Submitted     int64         `json:"submitted"`
	Applied       int64         `json:"applied"`
	Dropped       int64         `json:"dropped"`
	RateLimited   int64         `json:"rate_limited"`
	QueueDepth    int           `json:"queue_depth"`
	MaxQueueDepth int           `json:"max_queue_depth"`
	Weight        int           `json:"weight"`
	Lane          int           `json:"lane"`
	SyncMean      time.Duration `json:"sync_mean_ns"`
	SyncP99       time.Duration `json:"sync_p99_ns"`
}

// WithTenants enables multi-tenant admission and registers the given
// tenants. Unlisted tenant ids are auto-admitted on first use with the
// WithTenantDefaults template (or an unlimited weight-1 contract when no
// template is set); the DefaultTenant always exists so tenant-unaware call
// sites keep working unchanged.
func WithTenants(cfgs ...TenantConfig) Option {
	return func(o *options) {
		o.tenancy = true
		o.tenants = append(o.tenants, cfgs...)
	}
}

// WithTenantDefaults enables multi-tenant admission and sets the contract
// template for tenants that submit without prior registration (the ID field
// is ignored).
func WithTenantDefaults(cfg TenantConfig) Option {
	return func(o *options) {
		o.tenancy = true
		o.tenantDefaults = &cfg
	}
}

// tenantState is one tenant's queue, token bucket and accounting. All
// fields are guarded by the owning tenantSched's mutex.
type tenantState struct {
	cfg     TenantConfig
	credits int // weighted-round-robin credits left this round

	// FIFO queue with an explicit head so steady-state dequeue is O(1)
	// without the backing array crawling forward forever.
	queue []*core.Inference
	head  int

	// Event-time token bucket.
	tokens   float64
	lastTime float64
	seeded   bool

	submitted, applied, dropped, rateLimited int64
	maxDepth                                 int
	syncHist                                 eval.LatencyHist
}

func (t *tenantState) depth() int { return len(t.queue) - t.head }

// admitRate charges the batch against the tenant's event-time bucket.
func (t *tenantState) admitRate(events []tgraph.Event) bool {
	if t.cfg.Rate <= 0 {
		return true
	}
	now := events[0].Time
	for _, ev := range events[1:] {
		if ev.Time > now {
			now = ev.Time
		}
	}
	if !t.seeded {
		t.tokens, t.lastTime, t.seeded = t.cfg.Burst, now, true
	}
	if dt := now - t.lastTime; dt > 0 {
		t.tokens += dt * t.cfg.Rate
		if t.tokens > t.cfg.Burst {
			t.tokens = t.cfg.Burst
		}
		t.lastTime = now
	}
	cost := float64(len(events))
	if t.tokens < cost {
		return false
	}
	t.tokens -= cost
	return true
}

// tenantLane groups equal-priority tenants for weighted round-robin.
type tenantLane struct {
	prio    int
	tenants []*tenantState // registration order
	next    int            // round-robin cursor
}

// pick returns the lane's next backlogged tenant under weighted
// round-robin, or nil when every queue in the lane is empty. The cursor
// stays on a tenant until its credits for the round are spent; when no
// backlogged tenant has credits left, the round ends and every credit is
// replenished to the tenant's weight.
func (l *tenantLane) pick() *tenantState {
	n := len(l.tenants)
	for pass := 0; pass < 2; pass++ {
		for i := 0; i < n; i++ {
			idx := (l.next + i) % n
			t := l.tenants[idx]
			if t.depth() == 0 || t.credits <= 0 {
				continue
			}
			t.credits--
			if t.credits == 0 {
				l.next = (idx + 1) % n
			} else {
				l.next = idx
			}
			return t
		}
		backlogged := false
		for _, t := range l.tenants {
			if t.depth() > 0 {
				backlogged = true
			}
			t.credits = t.cfg.Weight
		}
		if !backlogged {
			return nil
		}
	}
	return nil
}

// tenantSched is the tenant registry plus the weighted-fair scheduler that
// replaces the single queue channel when tenancy is enabled.
type tenantSched struct {
	mu    sync.Mutex
	work  *sync.Cond // signaled on enqueue and close: wakes workers
	space *sync.Cond // signaled on dequeue and close: wakes blocked Submits

	closed   bool
	byID     map[string]*tenantState
	lanes    []*tenantLane
	defaults TenantConfig // template for auto-admitted tenants
	queueCap int          // pipeline default per-tenant bound
}

func newTenantSched(o options) *tenantSched {
	s := &tenantSched{
		byID:     make(map[string]*tenantState),
		queueCap: o.queueCap,
		defaults: TenantConfig{Weight: 1},
	}
	if o.tenantDefaults != nil {
		s.defaults = *o.tenantDefaults
	}
	s.work = sync.NewCond(&s.mu)
	s.space = sync.NewCond(&s.mu)
	for _, cfg := range o.tenants {
		s.registerLocked(cfg)
	}
	if _, ok := s.byID[DefaultTenant]; !ok {
		d := s.defaults
		d.ID = DefaultTenant
		s.registerLocked(d)
	}
	return s
}

// registerLocked adds a tenant (idempotent by id) and slots it into its
// lane. Called at construction and on first use of an unknown id, always
// under mu (construction is single-threaded).
func (s *tenantSched) registerLocked(cfg TenantConfig) *tenantState {
	cfg = cfg.normalized(s.queueCap)
	if t, ok := s.byID[cfg.ID]; ok {
		return t
	}
	t := &tenantState{cfg: cfg, credits: cfg.Weight}
	s.byID[cfg.ID] = t
	for _, l := range s.lanes {
		if l.prio == cfg.Lane {
			l.tenants = append(l.tenants, t)
			return t
		}
	}
	s.lanes = append(s.lanes, &tenantLane{prio: cfg.Lane, tenants: []*tenantState{t}})
	sort.SliceStable(s.lanes, func(i, j int) bool { return s.lanes[i].prio < s.lanes[j].prio })
	return t
}

// resolve maps a tenant id to its state, auto-admitting unknown ids with
// the defaults template.
func (s *tenantSched) resolve(id string) *tenantState {
	if id == "" {
		id = DefaultTenant
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if t, ok := s.byID[id]; ok {
		return t
	}
	cfg := s.defaults
	cfg.ID = id
	return s.registerLocked(cfg)
}

// admit runs the pre-scoring gates: it refuses on a closed scheduler
// (uncounted — the submission never entered the tenant's ledger) and
// charges the rate bucket, counting a refusal as submitted+dropped so the
// per-tenant conservation law holds.
func (s *tenantSched) admit(t *tenantState, events []tgraph.Event) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	t.submitted++
	if !t.admitRate(events) {
		t.dropped++
		t.rateLimited++
		return ErrRateLimited
	}
	return nil
}

// recordSync attributes a synchronous-link latency sample to the tenant.
func (s *tenantSched) recordSync(t *tenantState, d time.Duration) {
	s.mu.Lock()
	t.syncHist.Add(d)
	s.mu.Unlock()
}

// recordDrop accounts a post-admission drop (queue full, context cancelled,
// closed while enqueueing).
func (s *tenantSched) recordDrop(t *tenantState) {
	s.mu.Lock()
	t.dropped++
	s.mu.Unlock()
}

// enqueue appends the scored inference to the tenant's queue. When block is
// false a full queue fails fast with ErrQueueFull; otherwise the caller
// waits for space, for ctx, or for close. wake must be non-nil when block
// is true: it is closed by the caller's ctx watcher to force a recheck.
func (s *tenantSched) enqueue(ctx context.Context, t *tenantState, inf *core.Inference, block bool) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if s.closed {
			return ErrClosed
		}
		if t.depth() < t.cfg.QueueCap {
			t.queue = append(t.queue, inf)
			if d := t.depth(); d > t.maxDepth {
				t.maxDepth = d
			}
			s.work.Signal()
			return nil
		}
		if !block {
			return ErrQueueFull
		}
		if err := ctx.Err(); err != nil {
			return err
		}
		s.space.Wait()
	}
}

// dequeue hands a worker the next inference under the scheduling policy:
// strict priority across lanes, weighted round-robin within one. It blocks
// while every queue is empty and returns ok=false only once the scheduler
// is closed AND fully drained — shutdown never abandons admitted work.
func (s *tenantSched) dequeue() (*core.Inference, *tenantState, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		for _, l := range s.lanes {
			t := l.pick()
			if t == nil {
				continue
			}
			inf := t.queue[t.head]
			t.queue[t.head] = nil
			t.head++
			if t.head == len(t.queue) {
				t.queue = t.queue[:0]
				t.head = 0
			}
			s.space.Broadcast()
			return inf, t, true
		}
		if s.closed {
			return nil, nil, false
		}
		s.work.Wait()
	}
}

// markApplied accounts a worker-side apply completion.
func (s *tenantSched) markApplied(t *tenantState) {
	s.mu.Lock()
	t.applied++
	s.mu.Unlock()
}

// close rejects further submissions and wakes every waiter; workers drain
// the remaining backlog before exiting.
func (s *tenantSched) close() {
	s.mu.Lock()
	s.closed = true
	s.work.Broadcast()
	s.space.Broadcast()
	s.mu.Unlock()
}

// kick wakes blocked enqueue waiters so they can observe a cancelled ctx.
func (s *tenantSched) kick() {
	s.mu.Lock()
	s.space.Broadcast()
	s.mu.Unlock()
}

// stats snapshots every tenant's accounting.
func (s *tenantSched) stats() map[string]TenantStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]TenantStats, len(s.byID))
	for id, t := range s.byID {
		out[id] = TenantStats{
			Submitted:     t.submitted,
			Applied:       t.applied,
			Dropped:       t.dropped,
			RateLimited:   t.rateLimited,
			QueueDepth:    t.depth(),
			MaxQueueDepth: t.maxDepth,
			Weight:        t.cfg.Weight,
			Lane:          t.cfg.Lane,
			SyncMean:      t.syncHist.Mean(),
			SyncP99:       t.syncHist.Quantile(0.99),
		}
	}
	return out
}

// Tenancy reports whether the pipeline runs the per-tenant admission layer
// (WithTenants/WithTenantDefaults) — the switch the serving edge keys its
// tenant routing and 429 mapping on.
func (p *Pipeline) Tenancy() bool { return p.sched != nil }

// TenantStats snapshots per-tenant admission accounting, or nil when the
// pipeline runs without tenancy.
func (p *Pipeline) TenantStats() map[string]TenantStats {
	if p.sched == nil {
		return nil
	}
	return p.sched.stats()
}

// SubmitTenant is Submit with the batch attributed to a tenant: the
// tenant's rate gate runs before scoring, backpressure blocks on the
// tenant's own queue, and all accounting lands on its ledger. Without
// tenancy it falls through to the plain Submit path.
func (p *Pipeline) SubmitTenant(ctx context.Context, tenant string, events []tgraph.Event) ([]float32, time.Duration, error) {
	if p.sched == nil {
		return p.Submit(ctx, events)
	}
	if err := ctx.Err(); err != nil {
		return nil, 0, err
	}
	return p.submitTenant(ctx, tenant, events, true)
}

// TrySubmitTenant is the non-blocking SubmitTenant: a full tenant queue
// drops the scored batch unapplied with ErrQueueFull, and a spent rate
// bucket drops it unscored with ErrRateLimited.
func (p *Pipeline) TrySubmitTenant(tenant string, events []tgraph.Event) ([]float32, time.Duration, error) {
	if p.sched == nil {
		return p.TrySubmit(events)
	}
	return p.submitTenant(context.Background(), tenant, events, false)
}

func (p *Pipeline) submitTenant(ctx context.Context, tenant string, events []tgraph.Event, block bool) ([]float32, time.Duration, error) {
	t := p.sched.resolve(tenant)
	if err := p.sched.admit(t, events); err != nil {
		return nil, 0, err
	}
	// Past the rate gate: warm any evicted nodes the batch names before the
	// synchronous link scores it (see Pipeline.Submit).
	p.model.ReadmitBatch(events)
	inf, lat, err := p.score(events)
	if err != nil {
		// Closed between admit and score: the attempt is on the ledger, so
		// balance it as a drop.
		p.sched.recordDrop(t)
		return nil, 0, err
	}
	p.sched.recordSync(t, lat)
	scores := append([]float32(nil), inf.Scores...)

	if block {
		// Wake the enqueue wait when ctx is cancelled, mirroring Drain's
		// watcher: the cond has no native ctx support.
		stop := make(chan struct{})
		defer close(stop)
		go func() {
			select {
			case <-ctx.Done():
				p.sched.kick()
			case <-stop:
			}
		}()
	}
	p.noteEnqueued()
	if err := p.sched.enqueue(ctx, t, inf, block); err != nil {
		p.unnoteEnqueued()
		inf.Release()
		p.sched.recordDrop(t)
		return nil, lat, err
	}
	return scores, lat, nil
}
