package async

import (
	"testing"
	"time"

	"apan/internal/core"
	"apan/internal/gdb"
	"apan/internal/tgraph"
)

func testModel(t *testing.T, latency gdb.LatencyModel) *core.Model {
	t.Helper()
	db := gdb.New(tgraph.New(8))
	db.Latency = latency
	db.Sleep = latency != nil
	cfg := core.Config{
		NumNodes: 8, EdgeDim: 8, Slots: 4, Neighbors: 4,
		Hops: 2, Heads: 2, Hidden: 16, BatchSize: 4, Seed: 1,
	}
	m, err := core.NewWithDB(cfg, db)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func feat() []float32 { return make([]float32, 8) }

func TestPipelineMatchesSynchronousApply(t *testing.T) {
	// The pipeline must produce exactly the state a direct
	// InferBatch+ApplyInference sequence produces.
	ma := testModel(t, nil)
	mb := testModel(t, nil)

	batches := [][]tgraph.Event{
		{{Src: 0, Dst: 1, Time: 1, Feat: feat()}},
		{{Src: 1, Dst: 2, Time: 2, Feat: feat()}},
		{{Src: 2, Dst: 3, Time: 3, Feat: feat()}},
	}

	p := NewPipeline(ma, 4)
	var pipeScores []float32
	for _, b := range batches {
		scores, _, err := p.Submit(b)
		if err != nil {
			t.Fatal(err)
		}
		pipeScores = append(pipeScores, scores...)
		p.Drain() // serialize so both runs see identical state evolution
	}
	p.Close()

	var directScores []float32
	for _, b := range batches {
		inf := mb.InferBatch(b)
		directScores = append(directScores, inf.Scores...)
		mb.ApplyInference(inf)
	}

	for i := range pipeScores {
		if pipeScores[i] != directScores[i] {
			t.Fatalf("score %d: pipeline %v direct %v", i, pipeScores[i], directScores[i])
		}
	}
	for n := int32(0); n < 4; n++ {
		if ma.Mailbox().Len(n) != mb.Mailbox().Len(n) {
			t.Fatalf("node %d mail counts differ", n)
		}
	}
}

func TestSyncLatencyExcludesGraphQueryCost(t *testing.T) {
	// With a slow simulated graph DB, the synchronous submit latency must
	// stay far below the asynchronous propagation latency — the core claim
	// of the paper's architecture.
	const perQuery = 2 * time.Millisecond
	m := testModel(t, gdb.Constant(perQuery))
	p := NewPipeline(m, 8)
	defer p.Close()

	for i := 0; i < 5; i++ {
		ev := []tgraph.Event{{Src: tgraph.NodeID(i % 4), Dst: tgraph.NodeID((i + 1) % 4), Time: float64(i + 1), Feat: feat()}}
		if _, lat, err := p.Submit(ev); err != nil {
			t.Fatal(err)
		} else if lat > perQuery {
			t.Fatalf("sync latency %v not decoupled from DB latency %v", lat, perQuery)
		}
	}
	p.Drain()
	st := p.Stats()
	if st.Processed != 5 || st.Submitted != 5 {
		t.Fatalf("stats: %+v", st)
	}
	if st.AsyncMean <= st.SyncMean {
		t.Fatalf("async mean %v should exceed sync mean %v behind a slow DB", st.AsyncMean, st.SyncMean)
	}
	if m.DB().Stats().Simulated == 0 {
		t.Fatal("no simulated latency recorded")
	}
}

func TestPipelineBackpressureAndClose(t *testing.T) {
	m := testModel(t, gdb.Constant(time.Millisecond))
	p := NewPipeline(m, 1)
	for i := 0; i < 4; i++ {
		ev := []tgraph.Event{{Src: 0, Dst: 1, Time: float64(i + 1), Feat: feat()}}
		if _, _, err := p.Submit(ev); err != nil {
			t.Fatal(err)
		}
	}
	p.Close()
	st := p.Stats()
	if st.Processed != 4 {
		t.Fatalf("close must drain: processed %d", st.Processed)
	}
	if st.MaxQueueDepth < 1 {
		t.Fatalf("queue depth never observed: %+v", st)
	}
	if _, _, err := p.Submit([]tgraph.Event{{Src: 0, Dst: 1, Time: 9, Feat: feat()}}); err != ErrClosed {
		t.Fatalf("submit after close: %v", err)
	}
	p.Close() // idempotent
}

func TestPipelineToleratesOutOfOrderBatches(t *testing.T) {
	// Distributed collectors deliver slightly out-of-order batches; the
	// pipeline must stay consistent (sorted mailbox readout + sorted
	// incidence insertion) and never corrupt state.
	m := testModel(t, nil)
	p := NewPipeline(m, 8)
	defer p.Close()
	batches := [][]tgraph.Event{
		{{Src: 0, Dst: 1, Time: 5, Feat: feat()}},
		{{Src: 1, Dst: 2, Time: 3, Feat: feat()}}, // late arrival
		{{Src: 2, Dst: 3, Time: 4, Feat: feat()}},
	}
	for _, b := range batches {
		if _, _, err := p.Submit(b); err != nil {
			t.Fatal(err)
		}
	}
	p.Drain()
	if m.DB().G.NumEvents() != 3 {
		t.Fatalf("events: %d", m.DB().G.NumEvents())
	}
	// Node 1's incidence list must be time-sorted despite arrival order.
	incs := m.DB().G.MostRecentNeighbors(1, 100, 10, nil)
	if len(incs) != 2 || incs[0].Time != 5 || incs[1].Time != 3 {
		t.Fatalf("incidences not time-sorted: %+v", incs)
	}
}

func TestPipelineConcurrentDrainSafety(t *testing.T) {
	m := testModel(t, nil)
	p := NewPipeline(m, 16)
	defer p.Close()
	done := make(chan struct{})
	go func() {
		defer close(done)
		p.Drain()
	}()
	for i := 0; i < 20; i++ {
		ev := []tgraph.Event{{Src: tgraph.NodeID(i % 4), Dst: tgraph.NodeID((i + 2) % 4), Time: float64(i + 1), Feat: feat()}}
		if _, _, err := p.Submit(ev); err != nil {
			t.Fatal(err)
		}
	}
	p.Drain()
	<-done
	if got := p.Stats().Processed; got != 20 {
		t.Fatalf("processed %d", got)
	}
}
