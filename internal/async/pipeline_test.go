package async

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"apan/internal/core"
	"apan/internal/gdb"
	"apan/internal/tgraph"
)

func testModel(t *testing.T, latency gdb.LatencyModel) *core.Model {
	t.Helper()
	db := gdb.New(tgraph.New(8))
	db.Latency = latency
	db.Sleep = latency != nil
	cfg := core.Config{
		NumNodes: 8, EdgeDim: 8, Slots: 4, Neighbors: 4,
		Hops: 2, Heads: 2, Hidden: 16, BatchSize: 4, Seed: 1,
	}
	m, err := core.NewWithDB(cfg, db)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func feat() []float32 { return make([]float32, 8) }

func TestPipelineMatchesSynchronousApply(t *testing.T) {
	// The pipeline must produce exactly the state a direct
	// InferBatch+ApplyInference sequence produces.
	ctx := context.Background()
	ma := testModel(t, nil)
	mb := testModel(t, nil)

	batches := [][]tgraph.Event{
		{{Src: 0, Dst: 1, Time: 1, Feat: feat()}},
		{{Src: 1, Dst: 2, Time: 2, Feat: feat()}},
		{{Src: 2, Dst: 3, Time: 3, Feat: feat()}},
	}

	p := New(ma, WithQueueCap(4))
	var pipeScores []float32
	for _, b := range batches {
		scores, _, err := p.Submit(ctx, b)
		if err != nil {
			t.Fatal(err)
		}
		pipeScores = append(pipeScores, scores...)
		if err := p.Drain(ctx); err != nil { // serialize so both runs see identical state evolution
			t.Fatal(err)
		}
	}
	if err := p.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}

	var directScores []float32
	for _, b := range batches {
		inf := mb.InferBatch(b)
		directScores = append(directScores, inf.Scores...)
		mb.ApplyInference(inf)
	}

	for i := range pipeScores {
		if pipeScores[i] != directScores[i] {
			t.Fatalf("score %d: pipeline %v direct %v", i, pipeScores[i], directScores[i])
		}
	}
	for n := int32(0); n < 4; n++ {
		if ma.Mailbox().Len(n) != mb.Mailbox().Len(n) {
			t.Fatalf("node %d mail counts differ", n)
		}
	}
}

func TestSyncLatencyExcludesGraphQueryCost(t *testing.T) {
	// With a slow simulated graph DB, the synchronous submit latency must
	// stay far below the asynchronous propagation latency — the core claim
	// of the paper's architecture.
	ctx := context.Background()
	const perQuery = 2 * time.Millisecond
	m := testModel(t, gdb.Constant(perQuery))
	p := New(m, WithQueueCap(8))
	defer p.Close()

	for i := 0; i < 5; i++ {
		ev := []tgraph.Event{{Src: tgraph.NodeID(i % 4), Dst: tgraph.NodeID((i + 1) % 4), Time: float64(i + 1), Feat: feat()}}
		if _, lat, err := p.Submit(ctx, ev); err != nil {
			t.Fatal(err)
		} else if lat > perQuery {
			t.Fatalf("sync latency %v not decoupled from DB latency %v", lat, perQuery)
		}
	}
	if err := p.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	st := p.Stats()
	if st.Processed != 5 || st.Submitted != 5 {
		t.Fatalf("stats: %+v", st)
	}
	if st.AsyncMean <= st.SyncMean {
		t.Fatalf("async mean %v should exceed sync mean %v behind a slow DB", st.AsyncMean, st.SyncMean)
	}
	if m.DB().Stats().Simulated == 0 {
		t.Fatal("no simulated latency recorded")
	}
}

func TestPipelineBackpressureAndClose(t *testing.T) {
	ctx := context.Background()
	m := testModel(t, gdb.Constant(time.Millisecond))
	p := New(m, WithQueueCap(1))
	for i := 0; i < 4; i++ {
		ev := []tgraph.Event{{Src: 0, Dst: 1, Time: float64(i + 1), Feat: feat()}}
		if _, _, err := p.Submit(ctx, ev); err != nil {
			t.Fatal(err)
		}
	}
	p.Close()
	st := p.Stats()
	if st.Processed != 4 {
		t.Fatalf("close must drain: processed %d", st.Processed)
	}
	if st.MaxQueueDepth < 1 {
		t.Fatalf("queue depth never observed: %+v", st)
	}
	if _, _, err := p.Submit(ctx, []tgraph.Event{{Src: 0, Dst: 1, Time: 9, Feat: feat()}}); err != ErrClosed {
		t.Fatalf("submit after close: %v", err)
	}
	p.Close() // idempotent
}

func TestPipelineToleratesOutOfOrderBatches(t *testing.T) {
	// Distributed collectors deliver slightly out-of-order batches; the
	// pipeline must stay consistent (sorted mailbox readout + sorted
	// incidence insertion) and never corrupt state.
	ctx := context.Background()
	m := testModel(t, nil)
	p := New(m, WithQueueCap(8))
	defer p.Close()
	batches := [][]tgraph.Event{
		{{Src: 0, Dst: 1, Time: 5, Feat: feat()}},
		{{Src: 1, Dst: 2, Time: 3, Feat: feat()}}, // late arrival
		{{Src: 2, Dst: 3, Time: 4, Feat: feat()}},
	}
	for _, b := range batches {
		if _, _, err := p.Submit(ctx, b); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	if m.DB().G.NumEvents() != 3 {
		t.Fatalf("events: %d", m.DB().G.NumEvents())
	}
	// Node 1's incidence list must be time-sorted despite arrival order.
	incs := m.DB().G.MostRecentNeighbors(1, 100, 10, nil)
	if len(incs) != 2 || incs[0].Time != 5 || incs[1].Time != 3 {
		t.Fatalf("incidences not time-sorted: %+v", incs)
	}
}

func TestPipelineConcurrentDrainSafety(t *testing.T) {
	ctx := context.Background()
	m := testModel(t, nil)
	p := New(m, WithQueueCap(16))
	defer p.Close()
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = p.Drain(ctx)
	}()
	for i := 0; i < 20; i++ {
		ev := []tgraph.Event{{Src: tgraph.NodeID(i % 4), Dst: tgraph.NodeID((i + 2) % 4), Time: float64(i + 1), Feat: feat()}}
		if _, _, err := p.Submit(ctx, ev); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	<-done
	if got := p.Stats().Processed; got != 20 {
		t.Fatalf("processed %d", got)
	}
}

func TestSubmitContextCancellation(t *testing.T) {
	// A Submit blocked on backpressure must return when its context is
	// cancelled, without corrupting state or leaking the scored batch.
	m := testModel(t, gdb.Constant(5*time.Millisecond))
	p := New(m, WithQueueCap(1))
	defer p.Close()

	ctx := context.Background()
	// Fill the queue and keep the worker busy.
	for i := 0; i < 2; i++ {
		ev := []tgraph.Event{{Src: 0, Dst: 1, Time: float64(i + 1), Feat: feat()}}
		if _, _, err := p.Submit(ctx, ev); err != nil {
			t.Fatal(err)
		}
	}
	cctx, cancel := context.WithCancel(ctx)
	errCh := make(chan error, 1)
	go func() {
		_, _, err := p.Submit(cctx, []tgraph.Event{{Src: 1, Dst: 2, Time: 9, Feat: feat()}})
		errCh <- err
	}()
	cancel()
	select {
	case err := <-errCh:
		// Either the cancel won, or the queue freed first — both are legal.
		if err != nil && !errors.Is(err, context.Canceled) {
			t.Fatalf("unexpected error: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled Submit never returned")
	}

	// An already-cancelled context fails fast without scoring.
	before := p.Stats().Submitted
	if _, _, err := p.Submit(cctx, []tgraph.Event{{Src: 1, Dst: 2, Time: 10, Feat: feat()}}); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled submit: %v", err)
	}
	if p.Stats().Submitted != before {
		t.Fatal("pre-cancelled submit must not score")
	}
}

func TestTrySubmitShedsLoadWhenQueueFull(t *testing.T) {
	ctx := context.Background()
	m := testModel(t, gdb.Constant(20*time.Millisecond))
	p := New(m, WithQueueCap(1))
	defer p.Close()

	// Saturate: one batch in flight on the worker plus a full queue.
	sawFull := false
	for i := 0; i < 16; i++ {
		ev := []tgraph.Event{{Src: 0, Dst: 1, Time: float64(i + 1), Feat: feat()}}
		_, _, err := p.TrySubmit(ev)
		switch {
		case err == nil:
		case errors.Is(err, ErrQueueFull):
			sawFull = true
		default:
			t.Fatal(err)
		}
		if sawFull {
			break
		}
	}
	if !sawFull {
		t.Fatal("TrySubmit never shed load with a saturated queue")
	}
	if err := p.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	st := p.Stats()
	if st.Processed >= st.Submitted {
		t.Fatalf("shed batches must not be applied: %+v", st)
	}
}

func TestSubmitFuture(t *testing.T) {
	ctx := context.Background()
	m := testModel(t, nil)
	p := New(m)
	defer p.Close()

	futures := make([]<-chan Result, 4)
	for i := range futures {
		ev := []tgraph.Event{{Src: tgraph.NodeID(i % 4), Dst: tgraph.NodeID((i + 1) % 4), Time: float64(i + 1), Feat: feat()}}
		futures[i] = p.SubmitFuture(ctx, ev)
	}
	for i, f := range futures {
		r := <-f
		if r.Err != nil {
			t.Fatalf("future %d: %v", i, r.Err)
		}
		if len(r.Scores) != 1 || r.SyncLatency <= 0 {
			t.Fatalf("future %d: %+v", i, r)
		}
	}
	if err := p.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	if got := p.Stats().Processed; got != 4 {
		t.Fatalf("processed %d", got)
	}
}

func TestDrainHonorsContext(t *testing.T) {
	m := testModel(t, gdb.Constant(50*time.Millisecond))
	p := New(m, WithQueueCap(8))
	defer p.Close()
	if _, _, err := p.Submit(context.Background(), []tgraph.Event{{Src: 0, Dst: 1, Time: 1, Feat: feat()}}); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	if err := p.Drain(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("drain under deadline: %v", err)
	}
	if err := p.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentSubmitShutdownStress hammers Submit from many goroutines
// while Shutdown runs — the send-on-closed-channel race of the pre-v1 API.
// Run under -race.
func TestConcurrentSubmitShutdownStress(t *testing.T) {
	for round := 0; round < 8; round++ {
		m := testModel(t, nil)
		p := New(m, WithQueueCap(2))

		const goroutines = 8
		var accepted, rejected atomic.Int64
		var wg sync.WaitGroup
		start := make(chan struct{})
		for g := 0; g < goroutines; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				<-start
				for i := 0; i < 25; i++ {
					ev := []tgraph.Event{{
						Src: tgraph.NodeID(g % 4), Dst: tgraph.NodeID((g + 1) % 4),
						Time: float64(g*100 + i + 1), Feat: feat(),
					}}
					_, _, err := p.Submit(context.Background(), ev)
					switch {
					case err == nil:
						accepted.Add(1)
					case errors.Is(err, ErrClosed):
						rejected.Add(1)
						return
					default:
						t.Errorf("goroutine %d: %v", g, err)
						return
					}
				}
			}(g)
		}
		close(start)
		time.Sleep(time.Duration(round) * 200 * time.Microsecond)
		if err := p.Shutdown(context.Background()); err != nil {
			t.Fatal(err)
		}
		wg.Wait()

		st := p.Stats()
		if st.QueueDepth != 0 {
			t.Fatalf("round %d: shutdown left queue depth %d", round, st.QueueDepth)
		}
		if _, _, err := p.Submit(context.Background(), []tgraph.Event{{Src: 0, Dst: 1, Time: 1e6, Feat: feat()}}); !errors.Is(err, ErrClosed) {
			t.Fatalf("round %d: submit after shutdown: %v", round, err)
		}
		if err := p.Shutdown(context.Background()); err != nil { // idempotent
			t.Fatal(err)
		}
		if accepted.Load() == 0 && round > 2 {
			t.Logf("round %d: shutdown won every race (ok)", round)
		}
	}
}

func TestPipelineOptionsAndWorkers(t *testing.T) {
	ctx := context.Background()
	m := testModel(t, gdb.Constant(time.Millisecond))
	p := New(m, WithQueueCap(32), WithWorkers(4), WithBatchWindow(3*time.Millisecond))
	if p.BatchWindow() != 3*time.Millisecond {
		t.Fatalf("batch window %v", p.BatchWindow())
	}
	if p.NumNodes() != 8 || p.EdgeDim() != 8 {
		t.Fatalf("model metadata: %d nodes %d dims", p.NumNodes(), p.EdgeDim())
	}
	for i := 0; i < 12; i++ {
		ev := []tgraph.Event{{Src: tgraph.NodeID(i % 4), Dst: tgraph.NodeID((i + 1) % 4), Time: float64(i + 1), Feat: feat()}}
		if _, _, err := p.Submit(ctx, ev); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	st := p.Stats()
	if st.Processed != 12 {
		t.Fatalf("multi-worker shutdown must drain: %+v", st)
	}
}

func TestScoreOnlyLeavesStateUntouched(t *testing.T) {
	// ScoreOnly is the follower's read-only serving mode: it must return the
	// same scores Submit would, without applying anything — the runtime
	// digest may not move, and repeating the same batch must reproduce the
	// same scores bitwise (an applied batch would change them).
	ctx := context.Background()
	m := testModel(t, nil)
	p := New(m, WithQueueCap(4))
	defer p.Close()

	warm := []tgraph.Event{
		{Src: 0, Dst: 1, Time: 1, Feat: feat()},
		{Src: 1, Dst: 2, Time: 2, Feat: feat()},
	}
	if _, _, err := p.Submit(ctx, warm); err != nil {
		t.Fatal(err)
	}
	if err := p.Drain(ctx); err != nil {
		t.Fatal(err)
	}

	probe := []tgraph.Event{{Src: 2, Dst: 3, Time: 3, Feat: feat()}}
	before := m.RuntimeDigest()
	s1, _, err := p.ScoreOnly(probe)
	if err != nil {
		t.Fatal(err)
	}
	s2, _, err := p.ScoreOnly(probe)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.RuntimeDigest(); got != before {
		t.Fatalf("ScoreOnly moved the runtime digest: %016x -> %016x", before, got)
	}
	if len(s1) != len(probe) || len(s2) != len(s1) {
		t.Fatalf("score lengths: %d, %d, want %d", len(s1), len(s2), len(probe))
	}
	for i := range s1 {
		if s1[i] != s2[i] {
			t.Fatalf("repeated ScoreOnly diverged at %d: %v vs %v", i, s1[i], s2[i])
		}
	}

	// And it matches what Submit scores for the same state.
	s3, _, err := p.Submit(ctx, probe)
	if err != nil {
		t.Fatal(err)
	}
	for i := range s3 {
		if s1[i] != s3[i] {
			t.Fatalf("ScoreOnly score %v != Submit score %v at %d", s1[i], s3[i], i)
		}
	}
	if err := p.Drain(ctx); err != nil {
		t.Fatal(err)
	}
}
