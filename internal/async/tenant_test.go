package async

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"apan/internal/tgraph"
)

func tev(src, dst int32, tm float64) []tgraph.Event {
	return []tgraph.Event{{Src: src, Dst: dst, Time: tm, Feat: feat()}}
}

// parkWorker returns a beforeApply hook whose worker blocks on the gate
// after announcing itself — the scenario harness's deterministic saturation
// seam, reused here to hold queues at known depths.
func parkWorker() (hook func([]tgraph.Event), parked <-chan struct{}, gate chan struct{}) {
	g := make(chan struct{})
	pk := make(chan struct{}, 1024)
	return func([]tgraph.Event) {
		pk <- struct{}{}
		<-g
	}, pk, g
}

// TestTenantDefaultBackCompat: with tenancy enabled, tenant-unaware
// Submit/TrySubmit call sites keep working and land on the default tenant's
// ledger; the model-state outcome matches the untenanted pipeline.
func TestTenantDefaultBackCompat(t *testing.T) {
	ctx := context.Background()
	p := New(testModel(t, nil), WithQueueCap(4), WithTenants())
	if _, _, err := p.Submit(ctx, tev(0, 1, 1)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := p.TrySubmit(tev(1, 2, 2)); err != nil {
		t.Fatal(err)
	}
	if err := p.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	ts := p.TenantStats()
	if ts == nil {
		t.Fatal("TenantStats nil with tenancy enabled")
	}
	d := ts[DefaultTenant]
	if d.Submitted != 2 || d.Applied != 2 || d.Dropped != 0 {
		t.Fatalf("default tenant ledger %+v, want 2 submitted, 2 applied", d)
	}
	if err := p.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}

	// Without tenancy there is no ledger.
	p2 := New(testModel(t, nil))
	defer p2.Close()
	if p2.TenantStats() != nil {
		t.Fatal("TenantStats non-nil without tenancy")
	}
}

// TestTenantRateLimitEventTime: the rate gate is driven by the events'
// stream time — the identical trace is admitted identically on every run,
// and refusals are accounted as rate-limited drops.
func TestTenantRateLimitEventTime(t *testing.T) {
	run := func() (TenantStats, []error) {
		p := New(testModel(t, nil), WithQueueCap(8),
			WithTenants(TenantConfig{ID: "metered", Rate: 1, Burst: 2}))
		defer p.Close()
		var errs []error
		// 5 events in 2 stream-seconds against a 1/s rate, burst 2: the
		// bucket admits the first two on the initial burst, then refills
		// 0.5 tokens per event — every later event is refused until enough
		// stream time passes.
		for i := 0; i < 5; i++ {
			_, _, err := p.TrySubmitTenant("metered", tev(0, 1, float64(i)/2))
			errs = append(errs, err)
		}
		// Far-future event: the bucket has fully refilled.
		_, _, err := p.TrySubmitTenant("metered", tev(0, 1, 100))
		errs = append(errs, err)
		if err := p.Drain(context.Background()); err != nil {
			t.Fatal(err)
		}
		return p.TenantStats()["metered"], errs
	}
	st, errs := run()
	limited := 0
	for _, err := range errs {
		if errors.Is(err, ErrRateLimited) {
			limited++
		} else if err != nil {
			t.Fatal(err)
		}
	}
	if limited == 0 || limited >= len(errs) {
		t.Fatalf("rate gate refused %d of %d (want some, not all): %v", limited, len(errs), errs)
	}
	if st.RateLimited != int64(limited) || st.Dropped != int64(limited) {
		t.Fatalf("ledger %+v inconsistent with %d refusals", st, limited)
	}
	if st.Submitted != st.Applied+st.Dropped {
		t.Fatalf("conservation violated: %+v", st)
	}
	// Determinism: a second identical run refuses the identical submissions.
	_, errs2 := run()
	for i := range errs {
		if (errs[i] == nil) != (errs2[i] == nil) {
			t.Fatalf("admission not reproducible at submission %d: %v vs %v", i, errs[i], errs2[i])
		}
	}
}

// TestTenantQueueIsolation: a backlogged aggressor fills only its own
// bounded queue; the victim's queue admits unhindered.
func TestTenantQueueIsolation(t *testing.T) {
	hook, parked, gate := parkWorker()
	p := New(testModel(t, nil), WithQueueCap(2), WithBeforeApply(hook),
		WithTenants(
			TenantConfig{ID: "aggressor", QueueCap: 2},
			TenantConfig{ID: "victim", QueueCap: 2},
		))
	defer func() { close(gate); p.Close() }()

	// Park the worker on one batch, then fill the aggressor's queue.
	if _, _, err := p.TrySubmitTenant("aggressor", tev(0, 1, 1)); err != nil {
		t.Fatal(err)
	}
	<-parked
	for i := 0; i < 2; i++ {
		if _, _, err := p.TrySubmitTenant("aggressor", tev(0, 1, float64(2+i))); err != nil {
			t.Fatal(err)
		}
	}
	// Aggressor queue full: its overflow is shed...
	if _, _, err := p.TrySubmitTenant("aggressor", tev(0, 1, 9)); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("aggressor overflow: got %v, want ErrQueueFull", err)
	}
	// ...while the victim still gets in.
	for i := 0; i < 2; i++ {
		if _, _, err := p.TrySubmitTenant("victim", tev(2, 3, float64(i))); err != nil {
			t.Fatalf("victim blocked by aggressor backlog: %v", err)
		}
	}
	st := p.TenantStats()
	if st["aggressor"].Dropped != 1 || st["victim"].Dropped != 0 {
		t.Fatalf("drop isolation violated: %+v", st)
	}
}

// TestTenantWeightedFairDequeue: with both tenants backlogged, dequeue
// order follows the weights — 3 aggressor-weighted batches per victim batch
// would invert the intent, so here the victim holds weight 3.
func TestTenantWeightedFairDequeue(t *testing.T) {
	hook, parked, gate := parkWorker()
	var mu sync.Mutex
	var order []string
	p := New(testModel(t, nil), WithQueueCap(16),
		WithBeforeApply(func(events []tgraph.Event) {
			mu.Lock()
			// Tenant identity is recoverable from the src node id parity.
			if events[0].Src == 0 {
				order = append(order, "heavy")
			} else {
				order = append(order, "light")
			}
			mu.Unlock()
			hook(events)
		}),
		WithTenants(
			TenantConfig{ID: "heavy", Weight: 3, QueueCap: 16},
			TenantConfig{ID: "light", Weight: 1, QueueCap: 16},
		))
	defer p.Close()

	// Park the worker, backlog both tenants, then release and drain.
	if _, _, err := p.TrySubmitTenant("light", tev(2, 3, 0)); err != nil {
		t.Fatal(err)
	}
	<-parked
	for i := 0; i < 6; i++ {
		if _, _, err := p.TrySubmitTenant("heavy", tev(0, 1, float64(i))); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 2; i++ {
		if _, _, err := p.TrySubmitTenant("light", tev(2, 3, float64(i))); err != nil {
			t.Fatal(err)
		}
	}
	close(gate)
	for range parked {
		mu.Lock()
		n := len(order)
		mu.Unlock()
		if n >= 9 {
			break
		}
	}
	if err := p.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	got := append([]string(nil), order[1:]...) // drop the parked warm-up batch
	mu.Unlock()
	// One full weighted round over the backlog: 3 heavy, then 1 light.
	want := []string{"heavy", "heavy", "heavy", "light"}
	for i, w := range want {
		if got[i] != w {
			t.Fatalf("weighted round order %v, want prefix %v", got, want)
		}
	}
	st := p.TenantStats()
	if st["heavy"].Applied != 6 || st["light"].Applied != 3 {
		t.Fatalf("applied counts %+v", st)
	}
}

// TestTenantPriorityLanes: a lane-0 tenant's backlog is fully drained
// before any lane-1 batch is applied.
func TestTenantPriorityLanes(t *testing.T) {
	hook, parked, gate := parkWorker()
	var mu sync.Mutex
	var order []int32
	p := New(testModel(t, nil), WithQueueCap(16),
		WithBeforeApply(func(events []tgraph.Event) {
			mu.Lock()
			order = append(order, events[0].Src)
			mu.Unlock()
			hook(events)
		}),
		WithTenants(
			TenantConfig{ID: "batch", Lane: 1, QueueCap: 8},
			TenantConfig{ID: "interactive", Lane: 0, QueueCap: 8},
		))
	defer p.Close()

	if _, _, err := p.TrySubmitTenant("batch", tev(4, 5, 0)); err != nil {
		t.Fatal(err)
	}
	<-parked
	for i := 0; i < 3; i++ {
		if _, _, err := p.TrySubmitTenant("batch", tev(4, 5, float64(i))); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 3; i++ {
		if _, _, err := p.TrySubmitTenant("interactive", tev(0, 1, float64(i))); err != nil {
			t.Fatal(err)
		}
	}
	close(gate)
	if err := p.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	got := append([]int32(nil), order[1:]...)
	mu.Unlock()
	want := []int32{0, 0, 0, 4, 4, 4} // every interactive batch before any batch-lane one
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("lane order %v, want %v", got, want)
		}
	}
}

// TestTenantConservationConcurrent: under concurrent multi-tenant load with
// a slow worker, every tenant's ledger balances (submitted = applied +
// dropped) after a drain — the per-tenant drop-accounting invariant, here
// exercised with -race in CI.
func TestTenantConservationConcurrent(t *testing.T) {
	p := New(testModel(t, nil), WithQueueCap(2),
		WithTenants(
			TenantConfig{ID: "a", Weight: 2, QueueCap: 2},
			TenantConfig{ID: "b", Rate: 50, QueueCap: 2},
			TenantConfig{ID: "c", Lane: 1, QueueCap: 2},
		))
	var wg sync.WaitGroup
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			tenant := string(rune('a' + g))
			for i := 0; i < 40; i++ {
				_, _, err := p.TrySubmitTenant(tenant, tev(int32(g), int32(g+1), float64(i)))
				if err != nil && !errors.Is(err, ErrQueueFull) && !errors.Is(err, ErrRateLimited) {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := p.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	for id, st := range p.TenantStats() {
		if st.Submitted != st.Applied+st.Dropped {
			t.Fatalf("tenant %s: submitted %d != applied %d + dropped %d",
				id, st.Submitted, st.Applied, st.Dropped)
		}
		if st.QueueDepth != 0 {
			t.Fatalf("tenant %s: queue depth %d after drain", id, st.QueueDepth)
		}
	}
	if err := p.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
}

// TestTenantSubmitBlocksAndCancels: the blocking SubmitTenant honors
// context cancellation while waiting on a full tenant queue, and the
// abandoned batch is accounted as dropped.
func TestTenantSubmitBlocksAndCancels(t *testing.T) {
	hook, parked, gate := parkWorker()
	p := New(testModel(t, nil), WithBeforeApply(hook),
		WithTenants(TenantConfig{ID: "x", QueueCap: 1}))
	defer func() { close(gate); p.Close() }()

	if _, _, err := p.SubmitTenant(context.Background(), "x", tev(0, 1, 1)); err != nil {
		t.Fatal(err)
	}
	<-parked
	if _, _, err := p.SubmitTenant(context.Background(), "x", tev(0, 1, 2)); err != nil {
		t.Fatal(err) // fills the queue (worker holds the first batch)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	_, _, err := p.SubmitTenant(ctx, "x", tev(0, 1, 3))
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("blocked submit: got %v, want deadline exceeded", err)
	}
	st := p.TenantStats()["x"]
	if st.Submitted != 3 || st.Dropped != 1 {
		t.Fatalf("ledger after cancel %+v, want 3 submitted 1 dropped", st)
	}
}

// TestTenantShutdownDrainsBacklog: Shutdown applies every admitted batch
// before the workers exit, then rejects new submissions with ErrClosed.
func TestTenantShutdownDrainsBacklog(t *testing.T) {
	p := New(testModel(t, nil), WithQueueCap(8),
		WithTenants(TenantConfig{ID: "x", QueueCap: 8}))
	for i := 0; i < 5; i++ {
		if _, _, err := p.TrySubmitTenant("x", tev(0, 1, float64(i))); err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := p.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	st := p.TenantStats()["x"]
	if st.Applied != 5 || st.QueueDepth != 0 {
		t.Fatalf("shutdown abandoned backlog: %+v", st)
	}
	if _, _, err := p.TrySubmitTenant("x", tev(0, 1, 9)); !errors.Is(err, ErrClosed) {
		t.Fatalf("post-shutdown submit: got %v, want ErrClosed", err)
	}
}

// TestTenantAutoAdmission: unknown tenant ids are admitted on first use
// with the defaults template and get their own ledger.
func TestTenantAutoAdmission(t *testing.T) {
	p := New(testModel(t, nil), WithQueueCap(4),
		WithTenantDefaults(TenantConfig{Rate: 1000, Weight: 2}))
	defer p.Close()
	for g := 0; g < 3; g++ {
		id := fmt.Sprintf("walk-in-%d", g)
		if _, _, err := p.TrySubmitTenant(id, tev(int32(g), int32(g+1), 1)); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	st := p.TenantStats()
	for g := 0; g < 3; g++ {
		id := fmt.Sprintf("walk-in-%d", g)
		got, ok := st[id]
		if !ok || got.Submitted != 1 || got.Applied != 1 || got.Weight != 2 {
			t.Fatalf("auto-admitted tenant %s ledger %+v", id, got)
		}
	}
}
