package eval

import (
	"math"
	"testing"
)

// Golden fixtures for the ranking metrics: hand-computed values for tiny
// known tables, tied scores, and the single-class NaN contract. These pin
// the exact estimator semantics (step-wise AP, Mann-Whitney AUC with
// midrank ties, stable ordering) that the scenario harness's per-scenario
// AP/AUC columns depend on, so a "refactor" that silently switches
// estimators fails here rather than skewing every report.

const goldenTol = 1e-12

func almost(got, want float64) bool { return math.Abs(got-want) <= goldenTol }

func TestAveragePrecisionGolden(t *testing.T) {
	cases := []struct {
		name   string
		scores []float32
		labels []bool
		want   float64
	}{
		// Ranked T F T F: hits at ranks 1 and 3.
		// AP = 1·(1/2) + (2/3)·(1/2) = 5/6.
		{"alternating", []float32{0.9, 0.8, 0.7, 0.6}, []bool{true, false, true, false}, 5.0 / 6.0},
		// Ranked F T: single hit at rank 2: AP = 1/2.
		{"positive_last", []float32{0.8, 0.2}, []bool{false, true}, 0.5},
		// All positives: every prefix has precision 1.
		{"all_positive", []float32{0.3, 0.9, 0.5}, []bool{true, true, true}, 1.0},
		// Tied scores keep input order (stable sort): T first ⇒ AP 1.
		{"tie_positive_first", []float32{0.5, 0.5}, []bool{true, false}, 1.0},
		// Same tie, F first ⇒ the positive ranks second: AP 1/2. Together
		// with the case above this pins the stable-order tie contract.
		{"tie_negative_first", []float32{0.5, 0.5}, []bool{false, true}, 0.5},
		// sklearn's worked example: ranked .8 T, .4 F, .35 T, .1 F
		// AP = 1·(1/2) + (2/3)·(1/2) = 5/6 ≈ 0.8333…
		{"sklearn_table", []float32{0.1, 0.4, 0.35, 0.8}, []bool{false, false, true, true}, 5.0 / 6.0},
	}
	for _, c := range cases {
		if got := AveragePrecision(c.scores, c.labels); !almost(got, c.want) {
			t.Errorf("%s: AP = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestAveragePrecisionNaNContract(t *testing.T) {
	for name, tc := range map[string]struct {
		scores []float32
		labels []bool
	}{
		"empty":        {nil, nil},
		"no_positives": {[]float32{0.9, 0.1}, []bool{false, false}},
		"len_mismatch": {[]float32{0.9}, []bool{true, false}},
	} {
		if got := AveragePrecision(tc.scores, tc.labels); !math.IsNaN(got) {
			t.Errorf("%s: AP = %v, want NaN", name, got)
		}
	}
}

func TestROCAUCGolden(t *testing.T) {
	cases := []struct {
		name   string
		scores []float32
		labels []bool
		want   float64
	}{
		// The classic sklearn example: ranks asc .1 F, .35 T, .4 F, .8 T;
		// positive rank sum 2+4 = 6, U = 6 − 3 = 3, AUC = 3/(2·2) = 0.75.
		{"sklearn_table", []float32{0.1, 0.4, 0.35, 0.8}, []bool{false, false, true, true}, 0.75},
		// Perfect separation and its inversion.
		{"perfect", []float32{0.9, 0.8, 0.2, 0.1}, []bool{true, true, false, false}, 1.0},
		{"inverted", []float32{0.1, 0.2, 0.8, 0.9}, []bool{true, true, false, false}, 0.0},
		// Midrank tie handling: T@0.5 vs F@0.5 is half a win, T@0.5 vs
		// F@0.2 a full win: AUC = (0.5 + 1)/2 = 0.75.
		{"tie_midrank", []float32{0.5, 0.5, 0.2}, []bool{true, false, false}, 0.75},
		// Every score tied: chance level exactly.
		{"all_tied", []float32{0.4, 0.4, 0.4, 0.4}, []bool{true, false, true, false}, 0.5},
		// 3×2 table, no ties: wins = 2+2+1 of 6 pairs ⇒ AUC = 5/6.
		{"three_by_two", []float32{0.9, 0.7, 0.5, 0.6, 0.2}, []bool{true, true, true, false, false}, 5.0 / 6.0},
	}
	for _, c := range cases {
		if got := ROCAUC(c.scores, c.labels); !almost(got, c.want) {
			t.Errorf("%s: AUC = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestROCAUCNaNContract(t *testing.T) {
	for name, tc := range map[string]struct {
		scores []float32
		labels []bool
	}{
		"empty":         {nil, nil},
		"all_positive":  {[]float32{0.9, 0.1}, []bool{true, true}},
		"all_negative":  {[]float32{0.9, 0.1}, []bool{false, false}},
		"len_mismatch":  {[]float32{0.9}, []bool{true, false}},
		"single_sample": {[]float32{0.9}, []bool{true}},
	} {
		if got := ROCAUC(tc.scores, tc.labels); !math.IsNaN(got) {
			t.Errorf("%s: AUC = %v, want NaN", name, got)
		}
	}
}
