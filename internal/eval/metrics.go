// Package eval provides the evaluation metrics the paper reports — average
// precision and accuracy for link prediction, ROC-AUC for the skewed
// node/edge classification tasks — plus latency histograms and early
// stopping for the efficiency experiments.
package eval

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// AveragePrecision computes AP: the area under the precision-recall curve
// by the step-wise (sklearn-style) estimator. labels[i] is the ground truth
// for scores[i]. Returns NaN when there are no positives.
func AveragePrecision(scores []float32, labels []bool) float64 {
	n := len(scores)
	if n == 0 || n != len(labels) {
		return math.NaN()
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return scores[idx[a]] > scores[idx[b]] })
	var totalPos int
	for _, l := range labels {
		if l {
			totalPos++
		}
	}
	if totalPos == 0 {
		return math.NaN()
	}
	var tp int
	var ap float64
	prevRecall := 0.0
	for rank, i := range idx {
		if labels[i] {
			tp++
			precision := float64(tp) / float64(rank+1)
			recall := float64(tp) / float64(totalPos)
			ap += precision * (recall - prevRecall)
			prevRecall = recall
		}
	}
	return ap
}

// ROCAUC computes the area under the ROC curve via the Mann-Whitney
// statistic with midrank tie handling. Returns NaN when either class is
// absent.
func ROCAUC(scores []float32, labels []bool) float64 {
	n := len(scores)
	if n == 0 || n != len(labels) {
		return math.NaN()
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return scores[idx[a]] < scores[idx[b]] })
	ranks := make([]float64, n)
	for i := 0; i < n; {
		j := i
		for j+1 < n && scores[idx[j+1]] == scores[idx[i]] {
			j++
		}
		mid := float64(i+j)/2 + 1 // 1-based midrank
		for k := i; k <= j; k++ {
			ranks[idx[k]] = mid
		}
		i = j + 1
	}
	var sumPos float64
	var nPos, nNeg int
	for i, l := range labels {
		if l {
			sumPos += ranks[i]
			nPos++
		} else {
			nNeg++
		}
	}
	if nPos == 0 || nNeg == 0 {
		return math.NaN()
	}
	u := sumPos - float64(nPos)*float64(nPos+1)/2
	return u / (float64(nPos) * float64(nNeg))
}

// Accuracy computes the fraction of scores on the correct side of the
// threshold.
func Accuracy(scores []float32, labels []bool, threshold float32) float64 {
	if len(scores) == 0 {
		return math.NaN()
	}
	var ok int
	for i, s := range scores {
		if (s >= threshold) == labels[i] {
			ok++
		}
	}
	return float64(ok) / float64(len(scores))
}

// MeanStd returns the sample mean and standard deviation of xs.
func MeanStd(xs []float64) (mean, std float64) {
	if len(xs) == 0 {
		return math.NaN(), math.NaN()
	}
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	if len(xs) == 1 {
		return mean, 0
	}
	for _, x := range xs {
		d := x - mean
		std += d * d
	}
	return mean, math.Sqrt(std / float64(len(xs)-1))
}

// LatencyHist accumulates durations for quantile reporting.
type LatencyHist struct {
	samples []time.Duration
}

// Add records one sample.
func (h *LatencyHist) Add(d time.Duration) { h.samples = append(h.samples, d) }

// N returns the number of recorded samples.
func (h *LatencyHist) N() int { return len(h.samples) }

// Mean returns the average sample.
func (h *LatencyHist) Mean() time.Duration {
	if len(h.samples) == 0 {
		return 0
	}
	var sum time.Duration
	for _, s := range h.samples {
		sum += s
	}
	return sum / time.Duration(len(h.samples))
}

// Quantile returns the q-quantile (0≤q≤1) by nearest-rank.
func (h *LatencyHist) Quantile(q float64) time.Duration {
	if len(h.samples) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), h.samples...)
	sort.Slice(sorted, func(a, b int) bool { return sorted[a] < sorted[b] })
	i := int(q*float64(len(sorted))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

// String summarizes the histogram.
func (h *LatencyHist) String() string {
	return fmt.Sprintf("n=%d mean=%v p50=%v p99=%v", h.N(), h.Mean(), h.Quantile(0.5), h.Quantile(0.99))
}

// EarlyStopper implements patience-based early stopping on a maximized
// validation metric (paper: patience 5).
type EarlyStopper struct {
	Patience int
	best     float64
	bad      int
	started  bool
}

// NewEarlyStopper returns a stopper with the given patience.
func NewEarlyStopper(patience int) *EarlyStopper {
	return &EarlyStopper{Patience: patience}
}

// Step reports whether training should stop after observing metric.
// It also reports whether this was a new best epoch.
func (e *EarlyStopper) Step(metric float64) (stop, improved bool) {
	if !e.started || metric > e.best {
		e.best = metric
		e.bad = 0
		e.started = true
		return false, true
	}
	e.bad++
	return e.bad >= e.Patience, false
}

// Best returns the best metric seen so far.
func (e *EarlyStopper) Best() float64 { return e.best }
