package eval

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestAveragePrecisionPerfect(t *testing.T) {
	scores := []float32{0.9, 0.8, 0.2, 0.1}
	labels := []bool{true, true, false, false}
	if ap := AveragePrecision(scores, labels); ap != 1 {
		t.Fatalf("AP=%v", ap)
	}
}

func TestAveragePrecisionWorst(t *testing.T) {
	scores := []float32{0.9, 0.8, 0.2}
	labels := []bool{false, false, true}
	// Single positive ranked last: AP = 1/3.
	if ap := AveragePrecision(scores, labels); math.Abs(ap-1.0/3) > 1e-9 {
		t.Fatalf("AP=%v", ap)
	}
}

func TestAveragePrecisionKnown(t *testing.T) {
	// sklearn: y=[1,0,1,0], s=[0.9,0.8,0.7,0.6] → AP = 1·1/2 + (2/3)·1/2 = 0.8333
	scores := []float32{0.9, 0.8, 0.7, 0.6}
	labels := []bool{true, false, true, false}
	if ap := AveragePrecision(scores, labels); math.Abs(ap-0.83333333) > 1e-6 {
		t.Fatalf("AP=%v", ap)
	}
}

func TestAveragePrecisionNoPositivesNaN(t *testing.T) {
	if !math.IsNaN(AveragePrecision([]float32{0.5}, []bool{false})) {
		t.Fatal("want NaN")
	}
	if !math.IsNaN(AveragePrecision(nil, nil)) {
		t.Fatal("want NaN for empty")
	}
}

func TestROCAUCSeparable(t *testing.T) {
	scores := []float32{0.9, 0.8, 0.2, 0.1}
	labels := []bool{true, true, false, false}
	if auc := ROCAUC(scores, labels); auc != 1 {
		t.Fatalf("AUC=%v", auc)
	}
	// Inverted labels → 0.
	inv := []bool{false, false, true, true}
	if auc := ROCAUC(scores, inv); auc != 0 {
		t.Fatalf("inverted AUC=%v", auc)
	}
}

func TestROCAUCTies(t *testing.T) {
	// All equal scores → AUC 0.5 via midranks.
	scores := []float32{0.5, 0.5, 0.5, 0.5}
	labels := []bool{true, false, true, false}
	if auc := ROCAUC(scores, labels); math.Abs(auc-0.5) > 1e-9 {
		t.Fatalf("tied AUC=%v", auc)
	}
}

func TestROCAUCSingleClassNaN(t *testing.T) {
	if !math.IsNaN(ROCAUC([]float32{0.5, 0.4}, []bool{true, true})) {
		t.Fatal("want NaN")
	}
}

// Property: AUC equals the probability a random positive outscores a random
// negative (brute-force comparison), for random score sets without ties.
func TestROCAUCProbabilityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(40)
		scores := make([]float32, n)
		labels := make([]bool, n)
		used := map[float32]bool{}
		var hasPos, hasNeg bool
		for i := range scores {
			for {
				s := float32(rng.Float64())
				if !used[s] {
					used[s] = true
					scores[i] = s
					break
				}
			}
			labels[i] = rng.Float64() < 0.5
			if labels[i] {
				hasPos = true
			} else {
				hasNeg = true
			}
		}
		if !hasPos || !hasNeg {
			return true
		}
		var wins, pairs float64
		for i := range scores {
			if !labels[i] {
				continue
			}
			for j := range scores {
				if labels[j] {
					continue
				}
				pairs++
				if scores[i] > scores[j] {
					wins++
				}
			}
		}
		return math.Abs(ROCAUC(scores, labels)-wins/pairs) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestAccuracy(t *testing.T) {
	scores := []float32{0.9, 0.4, 0.6, 0.1}
	labels := []bool{true, true, false, false}
	if acc := Accuracy(scores, labels, 0.5); acc != 0.5 {
		t.Fatalf("acc=%v", acc)
	}
	if !math.IsNaN(Accuracy(nil, nil, 0.5)) {
		t.Fatal("want NaN for empty")
	}
}

func TestMeanStd(t *testing.T) {
	mean, std := MeanStd([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if mean != 5 {
		t.Fatalf("mean=%v", mean)
	}
	if math.Abs(std-2.138089935) > 1e-6 {
		t.Fatalf("std=%v", std)
	}
	m1, s1 := MeanStd([]float64{3})
	if m1 != 3 || s1 != 0 {
		t.Fatalf("single: %v %v", m1, s1)
	}
}

func TestLatencyHist(t *testing.T) {
	var h LatencyHist
	for i := 1; i <= 100; i++ {
		h.Add(time.Duration(i) * time.Millisecond)
	}
	if h.N() != 100 {
		t.Fatalf("N=%d", h.N())
	}
	if h.Mean() != 50500*time.Microsecond {
		t.Fatalf("mean=%v", h.Mean())
	}
	if p50 := h.Quantile(0.5); p50 != 50*time.Millisecond {
		t.Fatalf("p50=%v", p50)
	}
	if p99 := h.Quantile(0.99); p99 != 99*time.Millisecond {
		t.Fatalf("p99=%v", p99)
	}
	var empty LatencyHist
	if empty.Mean() != 0 || empty.Quantile(0.5) != 0 {
		t.Fatal("empty histogram should be zero")
	}
}

func TestEarlyStopper(t *testing.T) {
	es := NewEarlyStopper(2)
	steps := []struct {
		metric   float64
		stop     bool
		improved bool
	}{
		{0.5, false, true},
		{0.6, false, true},
		{0.55, false, false},
		{0.58, true, false},
	}
	for i, s := range steps {
		stop, improved := es.Step(s.metric)
		if stop != s.stop || improved != s.improved {
			t.Fatalf("step %d: got (%v,%v) want (%v,%v)", i, stop, improved, s.stop, s.improved)
		}
	}
	if es.Best() != 0.6 {
		t.Fatalf("best=%v", es.Best())
	}
}
