package baselines

import (
	"math/rand"
	"time"

	"apan/internal/core"
	"apan/internal/dataset"
	"apan/internal/gdb"
	"apan/internal/nn"
	"apan/internal/state"
	"apan/internal/tensor"
	"apan/internal/tgraph"
)

// TGNConfig configures the TGN baseline.
type TGNConfig struct {
	NumNodes  int
	EdgeDim   int
	Layers    int // attention layers in the embedding module
	Fanout    int
	Heads     int
	Hidden    int
	Dropout   float32
	LR        float32
	BatchSize int
	Seed      int64
}

func (c *TGNConfig) normalize() {
	if c.Layers == 0 {
		c.Layers = 1
	}
	if c.Fanout == 0 {
		c.Fanout = 10
	}
	if c.Heads == 0 {
		c.Heads = 2
	}
	if c.Hidden == 0 {
		c.Hidden = 80
	}
	if c.Dropout == 0 {
		c.Dropout = 0.1
	}
	if c.LR == 0 {
		c.LR = 1e-4
	}
	if c.BatchSize == 0 {
		c.BatchSize = 200
	}
}

// pendingEvent is the most recent interaction of a node whose memory update
// has not been applied yet. TGN applies updates lazily at the start of the
// next batch that touches the node, so the GRU receives gradients from the
// link-prediction loss (Rossi et al., 2020 §3.2, "memory update at the
// start of the batch").
type pendingEvent struct {
	peer tgraph.NodeID
	feat []float32
	t    float64
}

// TGN is Temporal Graph Networks (Rossi et al., 2020): a GRU node memory
// driven by interaction messages plus a temporal-attention embedding module.
// Like TGAT it must query the graph database on the inference critical path.
type TGN struct {
	cfg     TGNConfig
	rng     *rand.Rand
	db      *gdb.DB
	stack   *TemporalAttnStack
	dec     *core.LinkDecoder
	gru     *nn.GRUCell // input [mem_peer ‖ e ‖ Φ(Δt)] (3d), hidden d
	msgTime *nn.TimeEncoder
	mem     *state.Store
	pending map[tgraph.NodeID]pendingEvent
	opt     *nn.Adam
}

// NewTGN builds a TGN baseline over the given graph database.
func NewTGN(cfg TGNConfig, db *gdb.DB) *TGN {
	cfg.normalize()
	rng := rand.New(rand.NewSource(cfg.Seed))
	d := cfg.EdgeDim
	m := &TGN{
		cfg:     cfg,
		rng:     rng,
		db:      db,
		stack:   NewTemporalAttnStack(d, cfg.Layers, cfg.Fanout, cfg.Heads, cfg.Hidden, cfg.Dropout, db, rng),
		dec:     core.NewLinkDecoder(d, cfg.Hidden, cfg.Dropout, rng),
		gru:     nn.NewGRUCell(3*d, d, rng),
		msgTime: nn.NewTimeEncoder(d, rng),
		mem:     state.New(cfg.NumNodes, d),
		pending: make(map[tgraph.NodeID]pendingEvent),
	}
	m.opt = nn.NewAdam(m.Params(), cfg.LR)
	return m
}

// Name identifies the model variant, e.g. "TGN-1layer".
func (m *TGN) Name() string {
	if m.cfg.Layers == 1 {
		return "TGN-1layer"
	}
	return "TGN-2layers"
}

// Params returns all trainable tensors.
func (m *TGN) Params() []*nn.Tensor {
	ps := append(m.stack.Params(), m.dec.Params()...)
	ps = append(ps, m.gru.Params()...)
	return append(ps, m.msgTime.Params()...)
}

// DB exposes the graph database wrapper.
func (m *TGN) DB() *gdb.DB { return m.db }

// ResetRuntime clears memory, pending messages and the temporal graph.
func (m *TGN) ResetRuntime() {
	m.mem.Reset()
	m.pending = make(map[tgraph.NodeID]pendingEvent)
	m.db.G = tgraph.New(m.cfg.NumNodes)
	m.db.ResetStats()
	m.stack.SetDB(m.db)
}

// memBase reads detached memory rows for the attention stack.
func (m *TGN) memBase(nodes []tgraph.NodeID, _ []float64) *tensor.Matrix {
	out := tensor.New(len(nodes), m.cfg.EdgeDim)
	for i, n := range nodes {
		copy(out.Row(i), m.mem.Get(n))
	}
	return out
}

// updateMemory applies pending messages for the batch nodes on tape,
// returning the overlay of fresh memory rows (or nil when nothing pending).
func (m *TGN) updateMemory(tp *nn.Tape, nodes []tgraph.NodeID) *Overlay {
	var upd []tgraph.NodeID
	for _, n := range nodes {
		if _, ok := m.pending[n]; ok {
			upd = append(upd, n)
		}
	}
	if len(upd) == 0 {
		return nil
	}
	d := m.cfg.EdgeDim
	memRows := tensor.New(len(upd), d)
	peerRows := tensor.New(len(upd), d)
	feats := tensor.New(len(upd), d)
	dts := make([]float32, len(upd))
	idx := make(map[tgraph.NodeID]int32, len(upd))
	for i, n := range upd {
		pe := m.pending[n]
		copy(memRows.Row(i), m.mem.Get(n))
		copy(peerRows.Row(i), m.mem.Get(pe.peer))
		copy(feats.Row(i), pe.feat)
		dt := pe.t - m.mem.LastTime(n)
		if dt < 0 {
			dt = 0
		}
		dts[i] = float32(dt)
		idx[n] = int32(i)
	}
	x := tp.Concat3Cols(tp.Input(peerRows), tp.Input(feats), m.msgTime.Forward(tp, dts))
	newMem := m.gru.Forward(tp, x, tp.Input(memRows))
	return &Overlay{Rows: newMem, IndexOf: idx}
}

// commitMemory writes the overlay's values back to the store and records the
// new pending events of this batch.
func (m *TGN) commitMemory(ov *Overlay, events []tgraph.Event) {
	if ov != nil {
		for n, i := range ov.IndexOf {
			m.mem.Set(n, ov.Rows.Value().Row(int(i)), m.pending[n].t)
			delete(m.pending, n)
		}
	}
	for i := range events {
		ev := &events[i]
		m.pending[ev.Src] = pendingEvent{peer: ev.Dst, feat: ev.Feat, t: ev.Time}
		m.pending[ev.Dst] = pendingEvent{peer: ev.Src, feat: ev.Feat, t: ev.Time}
	}
}

func (m *TGN) processBatch(events []tgraph.Event, ns *dataset.NegSampler, train bool, collect func(ev *tgraph.Event, zsrc, zdst []float32)) core.BatchResult {
	p := planBatch(events, ns, m.rng, m.cfg.NumNodes, true)

	var tp *nn.Tape
	if train {
		tp = nn.NewTrainingTape(m.rng)
	} else {
		tp = nn.NewTape()
	}

	// Synchronous critical path: memory update + graph queries + attention.
	start := time.Now()
	ov := m.updateMemory(tp, p.nodes)
	z := m.stack.Reprs(tp, p.nodes, p.times, m.memBase, ov)
	zsrc := tp.Gather(z, p.srcRow)
	zdst := tp.Gather(z, p.dstRow)
	zneg := tp.Gather(z, p.negRow)
	posLogits := m.dec.Forward(tp, zsrc, zdst)
	negLogits := m.dec.Forward(tp, zsrc, zneg)
	syncTime := time.Since(start)

	ones, zeros := onesZeros(len(events))
	loss := tp.Scale(tp.Add(tp.BCEWithLogits(posLogits, ones), tp.BCEWithLogits(negLogits, zeros)), 0.5)
	if train {
		tp.Backward(loss)
		nn.ClipGradNorm(m.Params(), 5)
		m.opt.Step()
		m.opt.ZeroGrad()
	}

	if collect != nil {
		for i := range events {
			collect(&events[i], zsrc.Value().Row(i), zdst.Value().Row(i))
		}
	}
	m.commitMemory(ov, events)
	for _, ev := range events {
		m.db.AddEvent(ev)
	}
	if ns != nil {
		for i := range events {
			ns.Observe(&events[i])
		}
	}
	return core.BatchResult{
		Loss:      float64(loss.Value().Data[0]),
		PosScores: sigmoidScores(posLogits.Value()),
		NegScores: sigmoidScores(negLogits.Value()),
		SyncTime:  syncTime,
	}
}

// TrainEpoch trains one chronological pass.
func (m *TGN) TrainEpoch(events []tgraph.Event, ns *dataset.NegSampler) core.StreamResult {
	return runStream(m.processBatch, m.cfg.BatchSize, events, ns, true, nil)
}

// EvalStream evaluates link prediction without training.
func (m *TGN) EvalStream(events []tgraph.Event, ns *dataset.NegSampler) core.StreamResult {
	return runStream(m.processBatch, m.cfg.BatchSize, events, ns, false, nil)
}

// CollectStream runs inference invoking collect per event.
func (m *TGN) CollectStream(events []tgraph.Event, ns *dataset.NegSampler, collect func(ev *tgraph.Event, zsrc, zdst []float32)) core.StreamResult {
	return runStream(m.processBatch, m.cfg.BatchSize, events, ns, false, collect)
}
