package baselines

import (
	"math/rand"
	"time"

	"apan/internal/core"
	"apan/internal/dataset"
	"apan/internal/gdb"
	"apan/internal/nn"
	"apan/internal/state"
	"apan/internal/tensor"
	"apan/internal/tgraph"
)

// DyRepConfig configures the DyRep baseline.
type DyRepConfig struct {
	NumNodes  int
	EdgeDim   int
	Fanout    int // neighbors aggregated for the localized message
	Hidden    int
	Dropout   float32
	LR        float32
	BatchSize int
	Seed      int64
}

func (c *DyRepConfig) normalize() {
	if c.Fanout == 0 {
		c.Fanout = 10
	}
	if c.Hidden == 0 {
		c.Hidden = 80
	}
	if c.Dropout == 0 {
		c.Dropout = 0.1
	}
	if c.LR == 0 {
		c.LR = 1e-4
	}
	if c.BatchSize == 0 {
		c.BatchSize = 200
	}
}

// DyRep is Trivedi et al. (ICLR 2019): a recurrent node memory whose update
// message carries *localized embedding propagation* — the aggregated memory
// of the interaction partner's temporal neighborhood — with an identity
// readout (the embedding is the memory itself).
type DyRep struct {
	cfg     DyRepConfig
	rng     *rand.Rand
	db      *gdb.DB
	gru     *nn.GRUCell // input [agg(peer nbrs) ‖ e ‖ Φ(Δt)] (3d), hidden d
	timeEnc *nn.TimeEncoder
	dec     *core.LinkDecoder
	mem     *state.Store
	pending map[tgraph.NodeID]pendingEvent
	opt     *nn.Adam
}

// NewDyRep builds a DyRep baseline over the given graph database.
func NewDyRep(cfg DyRepConfig, db *gdb.DB) *DyRep {
	cfg.normalize()
	rng := rand.New(rand.NewSource(cfg.Seed))
	d := cfg.EdgeDim
	m := &DyRep{
		cfg:     cfg,
		rng:     rng,
		db:      db,
		gru:     nn.NewGRUCell(3*d, d, rng),
		timeEnc: nn.NewTimeEncoder(d, rng),
		dec:     core.NewLinkDecoder(d, cfg.Hidden, cfg.Dropout, rng),
		mem:     state.New(cfg.NumNodes, d),
		pending: make(map[tgraph.NodeID]pendingEvent),
	}
	m.opt = nn.NewAdam(m.Params(), cfg.LR)
	return m
}

// Name identifies the model.
func (m *DyRep) Name() string { return "DyRep" }

// Params returns all trainable tensors.
func (m *DyRep) Params() []*nn.Tensor {
	ps := append(m.gru.Params(), m.timeEnc.Params()...)
	return append(ps, m.dec.Params()...)
}

// DB exposes the graph database wrapper.
func (m *DyRep) DB() *gdb.DB { return m.db }

// ResetRuntime clears memory, pending updates and the temporal graph.
func (m *DyRep) ResetRuntime() {
	m.mem.Reset()
	m.pending = make(map[tgraph.NodeID]pendingEvent)
	m.db.G = tgraph.New(m.cfg.NumNodes)
	m.db.ResetStats()
}

// aggPeer returns the mean memory of peer and its most-recent temporal
// neighbors at time t — DyRep's localized propagation term. This is a graph
// query on the critical path.
func (m *DyRep) aggPeer(peer tgraph.NodeID, t float64) []float32 {
	d := m.cfg.EdgeDim
	out := make([]float32, d)
	copy(out, m.mem.Get(peer))
	incs := m.db.MostRecentNeighbors(peer, t, m.cfg.Fanout, nil)
	for _, inc := range incs {
		tensor.Axpy(out, m.mem.Get(inc.Peer), 1)
	}
	inv := 1 / float32(len(incs)+1)
	for i := range out {
		out[i] *= inv
	}
	return out
}

// updateMemory applies pending updates for the batch nodes on tape.
func (m *DyRep) updateMemory(tp *nn.Tape, nodes []tgraph.NodeID) *Overlay {
	var upd []tgraph.NodeID
	for _, n := range nodes {
		if _, ok := m.pending[n]; ok {
			upd = append(upd, n)
		}
	}
	if len(upd) == 0 {
		return nil
	}
	d := m.cfg.EdgeDim
	memRows := tensor.New(len(upd), d)
	aggRows := tensor.New(len(upd), d)
	feats := tensor.New(len(upd), d)
	dts := make([]float32, len(upd))
	idx := make(map[tgraph.NodeID]int32, len(upd))
	for i, n := range upd {
		pe := m.pending[n]
		copy(memRows.Row(i), m.mem.Get(n))
		copy(aggRows.Row(i), m.aggPeer(pe.peer, pe.t))
		copy(feats.Row(i), pe.feat)
		dt := pe.t - m.mem.LastTime(n)
		if dt < 0 {
			dt = 0
		}
		dts[i] = float32(dt)
		idx[n] = int32(i)
	}
	x := tp.Concat3Cols(tp.Input(aggRows), tp.Input(feats), m.timeEnc.Forward(tp, dts))
	newMem := m.gru.Forward(tp, x, tp.Input(memRows))
	return &Overlay{Rows: newMem, IndexOf: idx}
}

func (m *DyRep) commitMemory(ov *Overlay, events []tgraph.Event) {
	if ov != nil {
		for n, i := range ov.IndexOf {
			m.mem.Set(n, ov.Rows.Value().Row(int(i)), m.pending[n].t)
			delete(m.pending, n)
		}
	}
	for i := range events {
		ev := &events[i]
		m.pending[ev.Src] = pendingEvent{peer: ev.Dst, feat: ev.Feat, t: ev.Time}
		m.pending[ev.Dst] = pendingEvent{peer: ev.Src, feat: ev.Feat, t: ev.Time}
	}
}

func (m *DyRep) processBatch(events []tgraph.Event, ns *dataset.NegSampler, train bool, collect func(ev *tgraph.Event, zsrc, zdst []float32)) core.BatchResult {
	p := planBatch(events, ns, m.rng, m.cfg.NumNodes, true)

	var tp *nn.Tape
	if train {
		tp = nn.NewTrainingTape(m.rng)
	} else {
		tp = nn.NewTape()
	}

	start := time.Now()
	ov := m.updateMemory(tp, p.nodes)
	d := m.cfg.EdgeDim
	memRows := tensor.New(len(p.nodes), d)
	for i, n := range p.nodes {
		copy(memRows.Row(i), m.mem.Get(n))
	}
	z := tp.Input(memRows)
	if ov != nil {
		var rows, srcIdx []int32
		for i, n := range p.nodes {
			if u, ok := ov.IndexOf[n]; ok {
				rows = append(rows, int32(i))
				srcIdx = append(srcIdx, u)
			}
		}
		z = tp.OverlayRows(z, tp.Gather(ov.Rows, srcIdx), rows)
	}
	zsrc := tp.Gather(z, p.srcRow)
	zdst := tp.Gather(z, p.dstRow)
	zneg := tp.Gather(z, p.negRow)
	posLogits := m.dec.Forward(tp, zsrc, zdst)
	negLogits := m.dec.Forward(tp, zsrc, zneg)
	syncTime := time.Since(start)

	ones, zeros := onesZeros(len(events))
	loss := tp.Scale(tp.Add(tp.BCEWithLogits(posLogits, ones), tp.BCEWithLogits(negLogits, zeros)), 0.5)
	if train {
		tp.Backward(loss)
		nn.ClipGradNorm(m.Params(), 5)
		m.opt.Step()
		m.opt.ZeroGrad()
	}

	if collect != nil {
		for i := range events {
			collect(&events[i], zsrc.Value().Row(i), zdst.Value().Row(i))
		}
	}
	m.commitMemory(ov, events)
	for _, ev := range events {
		m.db.AddEvent(ev)
	}
	if ns != nil {
		for i := range events {
			ns.Observe(&events[i])
		}
	}
	return core.BatchResult{
		Loss:      float64(loss.Value().Data[0]),
		PosScores: sigmoidScores(posLogits.Value()),
		NegScores: sigmoidScores(negLogits.Value()),
		SyncTime:  syncTime,
	}
}

// TrainEpoch trains one chronological pass.
func (m *DyRep) TrainEpoch(events []tgraph.Event, ns *dataset.NegSampler) core.StreamResult {
	return runStream(m.processBatch, m.cfg.BatchSize, events, ns, true, nil)
}

// EvalStream evaluates link prediction without training.
func (m *DyRep) EvalStream(events []tgraph.Event, ns *dataset.NegSampler) core.StreamResult {
	return runStream(m.processBatch, m.cfg.BatchSize, events, ns, false, nil)
}

// CollectStream runs inference invoking collect per event.
func (m *DyRep) CollectStream(events []tgraph.Event, ns *dataset.NegSampler, collect func(ev *tgraph.Event, zsrc, zdst []float32)) core.StreamResult {
	return runStream(m.processBatch, m.cfg.BatchSize, events, ns, false, collect)
}
