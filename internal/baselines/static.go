package baselines

import (
	"math/rand"

	"apan/internal/core"
	"apan/internal/dataset"
	"apan/internal/eval"
	"apan/internal/nn"
	"apan/internal/tensor"
	"apan/internal/tgraph"
)

// StaticModel is the protocol for the non-temporal baselines: fit once on
// the training window's static snapshot, then score arbitrary node pairs.
type StaticModel interface {
	Name() string
	Fit(d *dataset.Dataset, split *dataset.Split) // trains on split.Train only
	Score(pairs [][2]tgraph.NodeID) []float32
	Embedding(n tgraph.NodeID) []float32
}

// EvalStaticLinkPrediction scores the positive events of evs against one
// sampled negative each, mirroring the dynamic-model protocol.
func EvalStaticLinkPrediction(m StaticModel, evs []tgraph.Event, ns *dataset.NegSampler, rng *rand.Rand) (acc, ap float64) {
	pairs := make([][2]tgraph.NodeID, 0, 2*len(evs))
	labels := make([]bool, 0, 2*len(evs))
	for i := range evs {
		ev := &evs[i]
		pairs = append(pairs, [2]tgraph.NodeID{ev.Src, ev.Dst})
		labels = append(labels, true)
		pairs = append(pairs, [2]tgraph.NodeID{ev.Src, ns.Sample(rng, ev.Dst)})
		labels = append(labels, false)
		ns.Observe(ev)
	}
	scores := m.Score(pairs)
	return eval.Accuracy(scores, labels, 0.5), eval.AveragePrecision(scores, labels)
}

// nodeInputFeatures derives static node inputs as the mean of each node's
// incident training edge features — the standard adaptation when datasets
// carry edge features but no node features (§4.1).
func nodeInputFeatures(d *dataset.Dataset, train []tgraph.Event) *tensor.Matrix {
	x := tensor.New(d.NumNodes, d.EdgeDim)
	counts := make([]float32, d.NumNodes)
	for i := range train {
		ev := &train[i]
		tensor.Axpy(x.Row(int(ev.Src)), ev.Feat, 1)
		tensor.Axpy(x.Row(int(ev.Dst)), ev.Feat, 1)
		counts[ev.Src]++
		counts[ev.Dst]++
	}
	for n := 0; n < d.NumNodes; n++ {
		if counts[n] > 0 {
			row := x.Row(n)
			inv := 1 / counts[n]
			for j := range row {
				row[j] *= inv
			}
		}
	}
	return x
}

// StaticGNNKind selects the aggregation of the sampled-neighborhood GNN.
type StaticGNNKind int

const (
	// KindSAGE mean-aggregates neighbors (Hamilton et al., 2017).
	KindSAGE StaticGNNKind = iota
	// KindGAT attends over neighbors (Velickovic et al., 2018).
	KindGAT
)

// StaticGNNConfig configures the GAT / GraphSAGE baselines.
type StaticGNNConfig struct {
	Kind      StaticGNNKind
	Layers    int
	Fanout    int
	Heads     int // GAT only
	Hidden    int
	Dropout   float32
	LR        float32
	BatchSize int
	Epochs    int
	Seed      int64
}

func (c *StaticGNNConfig) normalize() {
	if c.Layers == 0 {
		c.Layers = 2
	}
	if c.Fanout == 0 {
		c.Fanout = 10
	}
	if c.Heads == 0 {
		c.Heads = 2
	}
	if c.Hidden == 0 {
		c.Hidden = 80
	}
	if c.Dropout == 0 {
		c.Dropout = 0.1
	}
	if c.LR == 0 {
		c.LR = 1e-3
	}
	if c.BatchSize == 0 {
		c.BatchSize = 200
	}
	if c.Epochs == 0 {
		c.Epochs = 5
	}
}

// StaticGNN is the shared implementation of the GAT and GraphSAGE baselines:
// an L-layer sampled-neighborhood GNN over the training window's static
// snapshot, trained on the same link-prediction objective as the dynamic
// models but blind to edge timestamps (the Fig. 1b failure mode).
type StaticGNN struct {
	cfg StaticGNNConfig
	rng *rand.Rand

	csr  *tgraph.CSR
	x    *tensor.Matrix // node input features
	dim  int
	proj []*nn.Linear // per layer: input projection (SAGE: 2d→d concat-agg; GAT: d→d)
	attn []*nn.MultiHeadAttention
	dec  *core.LinkDecoder
	opt  *nn.Adam
}

// NewStaticGNN builds an untrained GAT or GraphSAGE baseline.
func NewStaticGNN(cfg StaticGNNConfig, edgeDim int) *StaticGNN {
	cfg.normalize()
	rng := rand.New(rand.NewSource(cfg.Seed))
	m := &StaticGNN{cfg: cfg, rng: rng, dim: edgeDim}
	for l := 0; l < cfg.Layers; l++ {
		if cfg.Kind == KindSAGE {
			m.proj = append(m.proj, nn.NewLinear(2*edgeDim, edgeDim, rng))
		} else {
			m.attn = append(m.attn, nn.NewMultiHeadAttention(edgeDim, cfg.Heads, rng))
			m.proj = append(m.proj, nn.NewLinear(2*edgeDim, edgeDim, rng))
		}
	}
	m.dec = core.NewLinkDecoder(edgeDim, cfg.Hidden, cfg.Dropout, rng)
	m.opt = nn.NewAdam(m.Params(), cfg.LR)
	return m
}

// Name identifies the model.
func (m *StaticGNN) Name() string {
	if m.cfg.Kind == KindSAGE {
		return "SAGE"
	}
	return "GAT"
}

// Params returns all trainable tensors.
func (m *StaticGNN) Params() []*nn.Tensor {
	var ps []*nn.Tensor
	for _, l := range m.proj {
		ps = append(ps, l.Params()...)
	}
	for _, a := range m.attn {
		ps = append(ps, a.Params()...)
	}
	return append(ps, m.dec.Params()...)
}

// reprs computes layer-L node representations by recursive neighbor
// sampling on the static snapshot.
func (m *StaticGNN) reprs(tp *nn.Tape, nodes []tgraph.NodeID, layer int) *nn.Tensor {
	if layer == 0 {
		x := tensor.New(len(nodes), m.dim)
		for i, n := range nodes {
			if n >= 0 {
				copy(x.Row(i), m.x.Row(int(n)))
			}
		}
		return tp.Input(x)
	}
	k := m.cfg.Fanout
	neigh := make([]tgraph.NodeID, len(nodes)*k)
	for i := range neigh {
		neigh[i] = -1 // padding
	}
	counts := make([]int, len(nodes))
	for i, n := range nodes {
		if n < 0 {
			continue
		}
		nbrs := m.csr.Neighbors(n)
		if len(nbrs) == 0 {
			continue
		}
		c := k
		if len(nbrs) < k {
			c = len(nbrs)
		}
		counts[i] = c
		if len(nbrs) <= k {
			copy(neigh[i*k:], nbrs)
		} else {
			for j := 0; j < k; j++ {
				neigh[i*k+j] = nbrs[m.rng.Intn(len(nbrs))]
			}
		}
	}
	selfPrev := m.reprs(tp, nodes, layer-1)
	neighPrev := m.reprs(tp, neigh, layer-1)
	l := layer - 1
	if m.cfg.Kind == KindSAGE {
		segs := make([]int32, len(neigh))
		for i := range neigh {
			segs[i] = int32(i / k)
		}
		// Zero padded rows so the mean is over sampled neighbors only; the
		// count trick: SegmentMean averages all k slots, so rescale.
		agg := tp.SegmentMean(neighPrev, segs, len(nodes))
		scale := tensor.New(len(nodes), m.dim)
		for i, c := range counts {
			row := scale.Row(i)
			v := float32(0)
			if c > 0 {
				v = float32(k) / float32(c)
			}
			for j := range row {
				row[j] = v
			}
		}
		agg = tp.Mul(agg, tp.Input(scale))
		return tp.ReLU(m.proj[l].Forward(tp, tp.ConcatCols(selfPrev, agg)))
	}
	att, _ := m.attn[l].Forward(tp, selfPrev, neighPrev, counts)
	return tp.ReLU(m.proj[l].Forward(tp, tp.ConcatCols(att, selfPrev)))
}

// Fit trains the GNN on the training window.
func (m *StaticGNN) Fit(d *dataset.Dataset, split *dataset.Split) {
	g := tgraph.New(d.NumNodes)
	for _, ev := range split.Train {
		g.AddEvent(ev)
	}
	m.csr = g.StaticSnapshot(split.TrainEnd + 1)
	m.x = nodeInputFeatures(d, split.Train)

	ns := dataset.NewNegSampler(d.NumNodes)
	for i := range split.Train {
		ns.Observe(&split.Train[i])
	}
	order := m.rng.Perm(len(split.Train))
	bs := m.cfg.BatchSize
	for epoch := 0; epoch < m.cfg.Epochs; epoch++ {
		for lo := 0; lo < len(order); lo += bs {
			hi := lo + bs
			if hi > len(order) {
				hi = len(order)
			}
			var events []tgraph.Event
			for _, oi := range order[lo:hi] {
				events = append(events, split.Train[oi])
			}
			p := planBatch(events, ns, m.rng, d.NumNodes, true)
			tp := nn.NewTrainingTape(m.rng)
			z := m.reprs(tp, p.nodes, m.cfg.Layers)
			pos := m.dec.Forward(tp, tp.Gather(z, p.srcRow), tp.Gather(z, p.dstRow))
			neg := m.dec.Forward(tp, tp.Gather(z, p.srcRow), tp.Gather(z, p.negRow))
			ones, zeros := onesZeros(len(events))
			loss := tp.Scale(tp.Add(tp.BCEWithLogits(pos, ones), tp.BCEWithLogits(neg, zeros)), 0.5)
			tp.Backward(loss)
			nn.ClipGradNorm(m.Params(), 5)
			m.opt.Step()
			m.opt.ZeroGrad()
		}
	}
}

// Score scores node pairs with the trained model.
func (m *StaticGNN) Score(pairs [][2]tgraph.NodeID) []float32 {
	out := make([]float32, 0, len(pairs))
	const chunk = 512
	for lo := 0; lo < len(pairs); lo += chunk {
		hi := lo + chunk
		if hi > len(pairs) {
			hi = len(pairs)
		}
		sub := pairs[lo:hi]
		nodes := make([]tgraph.NodeID, 0, 2*len(sub))
		rowOf := map[tgraph.NodeID]int32{}
		var srcRow, dstRow []int32
		row := func(n tgraph.NodeID) int32 {
			if r, ok := rowOf[n]; ok {
				return r
			}
			r := int32(len(nodes))
			rowOf[n] = r
			nodes = append(nodes, n)
			return r
		}
		for _, pr := range sub {
			srcRow = append(srcRow, row(pr[0]))
			dstRow = append(dstRow, row(pr[1]))
		}
		tp := nn.NewTape()
		z := m.reprs(tp, nodes, m.cfg.Layers)
		logits := m.dec.Forward(tp, tp.Gather(z, srcRow), tp.Gather(z, dstRow))
		out = append(out, sigmoidScores(logits.Value())...)
	}
	return out
}

// Embedding returns the model's representation of node n.
func (m *StaticGNN) Embedding(n tgraph.NodeID) []float32 {
	tp := nn.NewTape()
	z := m.reprs(tp, []tgraph.NodeID{n}, m.cfg.Layers)
	out := make([]float32, m.dim)
	copy(out, z.Value().Row(0))
	return out
}
