package baselines

import (
	"math/rand"
	"time"

	"apan/internal/core"
	"apan/internal/dataset"
	"apan/internal/gdb"
	"apan/internal/nn"
	"apan/internal/tgraph"
)

// TGATConfig configures the TGAT baseline.
type TGATConfig struct {
	NumNodes  int
	EdgeDim   int
	Layers    int // temporal attention layers (1 or 2 in the paper's figures)
	Fanout    int // sampled neighbors per hop (default 10)
	Heads     int // attention heads (default 2)
	Hidden    int // FFN hidden width (default 80)
	Dropout   float32
	LR        float32
	BatchSize int
	Seed      int64
}

func (c *TGATConfig) normalize() {
	if c.Layers == 0 {
		c.Layers = 2
	}
	if c.Fanout == 0 {
		c.Fanout = 10
	}
	if c.Heads == 0 {
		c.Heads = 2
	}
	if c.Hidden == 0 {
		c.Hidden = 80
	}
	if c.Dropout == 0 {
		c.Dropout = 0.1
	}
	if c.LR == 0 {
		c.LR = 1e-4
	}
	if c.BatchSize == 0 {
		c.BatchSize = 200
	}
}

// TGAT is the synchronous CTDG baseline of Xu et al. (ICLR 2020): k-hop
// temporal graph attention with a harmonic time encoding, no node memory.
// Every inference must query the graph database for its temporal subgraph —
// the serial "graph querying then model inference" workflow of Fig. 2a.
type TGAT struct {
	cfg   TGATConfig
	rng   *rand.Rand
	db    *gdb.DB
	stack *TemporalAttnStack
	dec   *core.LinkDecoder
	opt   *nn.Adam
}

// NewTGAT builds a TGAT baseline over the given graph database.
func NewTGAT(cfg TGATConfig, db *gdb.DB) *TGAT {
	cfg.normalize()
	rng := rand.New(rand.NewSource(cfg.Seed))
	m := &TGAT{
		cfg:   cfg,
		rng:   rng,
		db:    db,
		stack: NewTemporalAttnStack(cfg.EdgeDim, cfg.Layers, cfg.Fanout, cfg.Heads, cfg.Hidden, cfg.Dropout, db, rng),
		dec:   core.NewLinkDecoder(cfg.EdgeDim, cfg.Hidden, cfg.Dropout, rng),
	}
	m.opt = nn.NewAdam(m.Params(), cfg.LR)
	return m
}

// Name identifies the model variant, e.g. "TGAT-2layers".
func (m *TGAT) Name() string {
	if m.cfg.Layers == 1 {
		return "TGAT-1layer"
	}
	return "TGAT-2layers"
}

// Params returns all trainable tensors.
func (m *TGAT) Params() []*nn.Tensor {
	return append(m.stack.Params(), m.dec.Params()...)
}

// DB exposes the graph database wrapper.
func (m *TGAT) DB() *gdb.DB { return m.db }

// ResetRuntime clears the temporal graph (TGAT keeps no other state).
func (m *TGAT) ResetRuntime() {
	m.db.G = tgraph.New(m.cfg.NumNodes)
	m.db.ResetStats()
	m.stack.SetDB(m.db)
}

func (m *TGAT) processBatch(events []tgraph.Event, ns *dataset.NegSampler, train bool, collect func(ev *tgraph.Event, zsrc, zdst []float32)) core.BatchResult {
	p := planBatch(events, ns, m.rng, m.cfg.NumNodes, true)

	var tp *nn.Tape
	if train {
		tp = nn.NewTrainingTape(m.rng)
	} else {
		tp = nn.NewTape()
	}

	// Synchronous critical path: graph queries + aggregation + decode.
	start := time.Now()
	z := m.stack.Reprs(tp, p.nodes, p.times, ZeroBase(m.cfg.EdgeDim), nil)
	zsrc := tp.Gather(z, p.srcRow)
	zdst := tp.Gather(z, p.dstRow)
	zneg := tp.Gather(z, p.negRow)
	posLogits := m.dec.Forward(tp, zsrc, zdst)
	negLogits := m.dec.Forward(tp, zsrc, zneg)
	syncTime := time.Since(start)

	ones, zeros := onesZeros(len(events))
	loss := tp.Scale(tp.Add(tp.BCEWithLogits(posLogits, ones), tp.BCEWithLogits(negLogits, zeros)), 0.5)
	if train {
		tp.Backward(loss)
		nn.ClipGradNorm(m.Params(), 5)
		m.opt.Step()
		m.opt.ZeroGrad()
	}

	if collect != nil {
		for i := range events {
			collect(&events[i], zsrc.Value().Row(i), zdst.Value().Row(i))
		}
	}
	for _, ev := range events {
		m.db.AddEvent(ev)
	}
	if ns != nil {
		for i := range events {
			ns.Observe(&events[i])
		}
	}
	return core.BatchResult{
		Loss:      float64(loss.Value().Data[0]),
		PosScores: sigmoidScores(posLogits.Value()),
		NegScores: sigmoidScores(negLogits.Value()),
		SyncTime:  syncTime,
	}
}

// TrainEpoch trains one chronological pass.
func (m *TGAT) TrainEpoch(events []tgraph.Event, ns *dataset.NegSampler) core.StreamResult {
	return runStream(m.processBatch, m.cfg.BatchSize, events, ns, true, nil)
}

// EvalStream evaluates link prediction without training.
func (m *TGAT) EvalStream(events []tgraph.Event, ns *dataset.NegSampler) core.StreamResult {
	return runStream(m.processBatch, m.cfg.BatchSize, events, ns, false, nil)
}

// CollectStream runs inference invoking collect per event.
func (m *TGAT) CollectStream(events []tgraph.Event, ns *dataset.NegSampler, collect func(ev *tgraph.Event, zsrc, zdst []float32)) core.StreamResult {
	return runStream(m.processBatch, m.cfg.BatchSize, events, ns, false, collect)
}
