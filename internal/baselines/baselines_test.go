package baselines

import (
	"math"
	"math/rand"
	"testing"

	"apan/internal/dataset"
	"apan/internal/gdb"
	"apan/internal/tgraph"
)

func testData(t *testing.T) (*dataset.Dataset, *dataset.Split) {
	t.Helper()
	d := dataset.Wikipedia(dataset.Config{Scale: 0.01, Seed: 7, NoDrift: true})
	for i := range d.Events {
		d.Events[i].Feat = d.Events[i].Feat[:16]
	}
	d.EdgeDim = 16
	return d, d.Split(0.7, 0.15)
}

// trainAndEval runs a few epochs of the dynamic-model protocol and returns
// validation AP.
func trainAndEval(t *testing.T, m StreamModel, d *dataset.Dataset, split *dataset.Split, epochs int) float64 {
	t.Helper()
	var ap float64
	for e := 0; e < epochs; e++ {
		m.ResetRuntime()
		ns := dataset.NewNegSampler(d.NumNodes)
		tr := m.TrainEpoch(split.Train, ns)
		if math.IsNaN(tr.Loss) {
			t.Fatalf("%s: training loss NaN at epoch %d", m.Name(), e)
		}
		ap = m.EvalStream(split.Val, ns).AP
	}
	return ap
}

func TestTGATLearns(t *testing.T) {
	d, split := testData(t)
	db := gdb.New(tgraph.New(d.NumNodes))
	m := NewTGAT(TGATConfig{
		NumNodes: d.NumNodes, EdgeDim: 16, Layers: 1, Fanout: 4,
		Heads: 2, Hidden: 32, LR: 0.001, BatchSize: 50, Seed: 1,
	}, db)
	if m.Name() != "TGAT-1layer" {
		t.Fatalf("name: %s", m.Name())
	}
	ap := trainAndEval(t, m, d, split, 6)
	if ap < 0.55 {
		t.Fatalf("TGAT val AP %v", ap)
	}
}

func TestTGATTwoLayerRunsAndQueriesMore(t *testing.T) {
	d, split := testData(t)
	short := split.Train[:300]

	db1 := gdb.New(tgraph.New(d.NumNodes))
	m1 := NewTGAT(TGATConfig{NumNodes: d.NumNodes, EdgeDim: 16, Layers: 1, Fanout: 4, Hidden: 16, BatchSize: 50, Seed: 1}, db1)
	m1.ResetRuntime()
	m1.TrainEpoch(short, dataset.NewNegSampler(d.NumNodes))
	q1 := m1.DB().Stats().Queries

	db2 := gdb.New(tgraph.New(d.NumNodes))
	m2 := NewTGAT(TGATConfig{NumNodes: d.NumNodes, EdgeDim: 16, Layers: 2, Fanout: 4, Hidden: 16, BatchSize: 50, Seed: 1}, db2)
	m2.ResetRuntime()
	m2.TrainEpoch(short, dataset.NewNegSampler(d.NumNodes))
	q2 := m2.DB().Stats().Queries

	if m2.Name() != "TGAT-2layers" {
		t.Fatalf("name: %s", m2.Name())
	}
	if q2 <= q1*2 {
		t.Fatalf("2-layer TGAT should fan out queries: %d vs %d", q2, q1)
	}
}

func TestTGNLearns(t *testing.T) {
	d, split := testData(t)
	db := gdb.New(tgraph.New(d.NumNodes))
	m := NewTGN(TGNConfig{
		NumNodes: d.NumNodes, EdgeDim: 16, Layers: 1, Fanout: 4,
		Heads: 2, Hidden: 32, LR: 0.001, BatchSize: 50, Seed: 1,
	}, db)
	if m.Name() != "TGN-1layer" {
		t.Fatalf("name: %s", m.Name())
	}
	ap := trainAndEval(t, m, d, split, 6)
	if ap < 0.55 {
		t.Fatalf("TGN val AP %v", ap)
	}
}

func TestTGNMemoryPersistsAcrossBatches(t *testing.T) {
	d, _ := testData(t)
	db := gdb.New(tgraph.New(d.NumNodes))
	m := NewTGN(TGNConfig{NumNodes: d.NumNodes, EdgeDim: 16, Layers: 1, Fanout: 4, Hidden: 16, BatchSize: 25, Seed: 1}, db)
	m.ResetRuntime()
	m.EvalStream(d.Events[:100], nil)
	var touched int
	for n := 0; n < d.NumNodes; n++ {
		if m.mem.Touched(tgraph.NodeID(n)) {
			touched++
		}
	}
	if touched == 0 {
		t.Fatal("TGN memory never written")
	}
	m.ResetRuntime()
	for n := 0; n < d.NumNodes; n++ {
		if m.mem.Touched(tgraph.NodeID(n)) {
			t.Fatal("ResetRuntime did not clear memory")
		}
	}
}

func TestJODIELearns(t *testing.T) {
	d, split := testData(t)
	m := NewJODIE(JODIEConfig{
		NumNodes: d.NumNodes, EdgeDim: 16, Hidden: 32, LR: 0.001, BatchSize: 50, Seed: 1,
	})
	if m.Name() != "JODIE" {
		t.Fatalf("name: %s", m.Name())
	}
	ap := trainAndEval(t, m, d, split, 4)
	if ap < 0.55 {
		t.Fatalf("JODIE val AP %v", ap)
	}
}

func TestDyRepLearns(t *testing.T) {
	d, split := testData(t)
	db := gdb.New(tgraph.New(d.NumNodes))
	m := NewDyRep(DyRepConfig{
		NumNodes: d.NumNodes, EdgeDim: 16, Fanout: 4, Hidden: 32, LR: 0.001, BatchSize: 50, Seed: 1,
	}, db)
	if m.Name() != "DyRep" {
		t.Fatalf("name: %s", m.Name())
	}
	ap := trainAndEval(t, m, d, split, 4)
	if ap < 0.55 {
		t.Fatalf("DyRep val AP %v", ap)
	}
}

func TestStaticGNNVariants(t *testing.T) {
	d, split := testData(t)
	for _, kind := range []StaticGNNKind{KindSAGE, KindGAT} {
		m := NewStaticGNN(StaticGNNConfig{
			Kind: kind, Layers: 2, Fanout: 4, Hidden: 32,
			LR: 0.002, BatchSize: 64, Epochs: 3, Seed: 1,
		}, d.EdgeDim)
		m.Fit(d, split)
		ns := dataset.NewNegSampler(d.NumNodes)
		for i := range split.Train {
			ns.Observe(&split.Train[i])
		}
		rng := rand.New(rand.NewSource(3))
		acc, ap := EvalStaticLinkPrediction(m, split.Val, ns, rng)
		if math.IsNaN(ap) || ap < 0.55 {
			t.Fatalf("%s val AP %v (acc %v)", m.Name(), ap, acc)
		}
		if emb := m.Embedding(split.Val[0].Src); len(emb) != d.EdgeDim {
			t.Fatalf("%s embedding dim %d", m.Name(), len(emb))
		}
	}
}

func TestGAEAndVGAE(t *testing.T) {
	d, split := testData(t)
	for _, variational := range []bool{false, true} {
		m := NewGAE(GAEConfig{Variational: variational, Epochs: 40, PairsPerEp: 1024, Seed: 1}, d.EdgeDim)
		m.Fit(d, split)
		wantName := "GAE"
		if variational {
			wantName = "VGAE"
		}
		if m.Name() != wantName {
			t.Fatalf("name: %s", m.Name())
		}
		ns := dataset.NewNegSampler(d.NumNodes)
		for i := range split.Train {
			ns.Observe(&split.Train[i])
		}
		rng := rand.New(rand.NewSource(3))
		_, ap := EvalStaticLinkPrediction(m, split.Val, ns, rng)
		if math.IsNaN(ap) || ap < 0.55 {
			t.Fatalf("%s val AP %v", m.Name(), ap)
		}
		if len(m.Embedding(0)) != 32 {
			t.Fatalf("latent dim %d", len(m.Embedding(0)))
		}
	}
}

func TestWalkFamilies(t *testing.T) {
	d, split := testData(t)
	for _, kind := range []WalkKind{KindDeepWalk, KindNode2Vec, KindCTDNE} {
		m := NewWalkEmbedding(WalkConfig{Kind: kind, Dim: 32, WalksPer: 4, Seed: 1})
		m.Fit(d, split)
		ns := dataset.NewNegSampler(d.NumNodes)
		for i := range split.Train {
			ns.Observe(&split.Train[i])
		}
		rng := rand.New(rand.NewSource(3))
		_, ap := EvalStaticLinkPrediction(m, split.Val, ns, rng)
		if math.IsNaN(ap) || ap < 0.52 {
			t.Fatalf("%s val AP %v", m.Name(), ap)
		}
	}
}

func TestWalkNames(t *testing.T) {
	names := map[WalkKind]string{KindDeepWalk: "DeepWalk", KindNode2Vec: "Node2vec", KindCTDNE: "CTDNE"}
	for kind, want := range names {
		if got := NewWalkEmbedding(WalkConfig{Kind: kind}).Name(); got != want {
			t.Fatalf("name %v: got %s want %s", kind, got, want)
		}
	}
}

func TestCTDNEWalksRespectTime(t *testing.T) {
	// Build a path graph with strictly increasing times and verify temporal
	// walks never move backwards in time.
	g := tgraph.New(6)
	feat := make([]float32, 4)
	for i := 0; i < 5; i++ {
		g.AddEvent(tgraph.Event{Src: tgraph.NodeID(i), Dst: tgraph.NodeID(i + 1), Time: float64(i + 1), Feat: feat})
	}
	m := NewWalkEmbedding(WalkConfig{Kind: KindCTDNE, Seed: 1})
	m.cfg.normalize()
	train := g.EventsBetween(0, 100)
	walks := m.temporalWalks(g, train)
	if len(walks) == 0 {
		t.Fatal("no temporal walks generated")
	}
	// On the path graph, edge (i, i+1) has time i+1: verify every walk's
	// edge-time sequence is non-decreasing (CTDNE's defining invariant).
	edgeTime := func(a, b tgraph.NodeID) float64 {
		if a > b {
			a, b = b, a
		}
		if b != a+1 {
			t.Fatalf("walk used a non-edge (%d,%d)", a, b)
		}
		return float64(b)
	}
	for _, w := range walks {
		prev := edgeTime(w[0], w[1])
		for i := 2; i < len(w); i++ {
			cur := edgeTime(w[i-1], w[i])
			if cur < prev {
				t.Fatalf("walk moved backwards in time: %v", w)
			}
			prev = cur
		}
	}
}

func TestRunStreamBatching(t *testing.T) {
	d, _ := testData(t)
	m := NewJODIE(JODIEConfig{NumNodes: d.NumNodes, EdgeDim: 16, Hidden: 16, BatchSize: 30, Seed: 1})
	m.ResetRuntime()
	res := m.EvalStream(d.Events[:100], nil)
	if res.Batches != 4 { // 30+30+30+10
		t.Fatalf("batches=%d", res.Batches)
	}
	if res.SyncHist.N() != 4 {
		t.Fatalf("latency samples=%d", res.SyncHist.N())
	}
}

func TestStreamModelInterfaces(t *testing.T) {
	d, _ := testData(t)
	db := gdb.New(tgraph.New(d.NumNodes))
	var models []StreamModel
	models = append(models,
		NewTGAT(TGATConfig{NumNodes: d.NumNodes, EdgeDim: 16, BatchSize: 50}, db),
		NewTGN(TGNConfig{NumNodes: d.NumNodes, EdgeDim: 16, BatchSize: 50}, gdb.New(tgraph.New(d.NumNodes))),
		NewJODIE(JODIEConfig{NumNodes: d.NumNodes, EdgeDim: 16, BatchSize: 50}),
		NewDyRep(DyRepConfig{NumNodes: d.NumNodes, EdgeDim: 16, BatchSize: 50}, gdb.New(tgraph.New(d.NumNodes))),
	)
	for _, m := range models {
		m.ResetRuntime()
		var n int
		m.CollectStream(d.Events[:60], nil, func(ev *tgraph.Event, zsrc, zdst []float32) {
			if len(zsrc) != 16 || len(zdst) != 16 {
				t.Fatalf("%s: bad embedding dims", m.Name())
			}
			n++
		})
		if n != 60 {
			t.Fatalf("%s: collect called %d times", m.Name(), n)
		}
	}
}
