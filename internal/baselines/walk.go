package baselines

import (
	"math"
	"math/rand"
	"sort"

	"apan/internal/dataset"
	"apan/internal/tensor"
	"apan/internal/tgraph"
)

// WalkKind selects the random-walk strategy.
type WalkKind int

const (
	// KindDeepWalk uses uniform first-order walks (Perozzi et al., 2014).
	KindDeepWalk WalkKind = iota
	// KindNode2Vec uses (p,q)-biased second-order walks (Grover & Leskovec, 2016).
	KindNode2Vec
	// KindCTDNE uses temporal walks with non-decreasing timestamps
	// (Nguyen et al., 2018) — the only walk baseline that respects time.
	KindCTDNE
)

// WalkConfig configures the random-walk embedding baselines.
type WalkConfig struct {
	Kind      WalkKind
	Dim       int     // embedding dimension (default 64)
	WalkLen   int     // steps per walk (default 20)
	WalksPer  int     // walks per node / per start edge (default 6)
	Window    int     // skip-gram window (default 4)
	Negatives int     // negative samples per pair (default 4)
	LR        float32 // SGD learning rate (default 0.025)
	P, Q      float64 // node2vec return / in-out parameters (default 1, 0.5)
	Seed      int64
}

func (c *WalkConfig) normalize() {
	if c.Dim == 0 {
		c.Dim = 64
	}
	if c.WalkLen == 0 {
		c.WalkLen = 20
	}
	if c.WalksPer == 0 {
		c.WalksPer = 6
	}
	if c.Window == 0 {
		c.Window = 4
	}
	if c.Negatives == 0 {
		c.Negatives = 4
	}
	if c.LR == 0 {
		c.LR = 0.025
	}
	if c.P == 0 {
		c.P = 1
	}
	if c.Q == 0 {
		c.Q = 0.5
	}
}

// WalkEmbedding is the shared skip-gram-with-negative-sampling trainer over
// the three walk strategies. Scoring calibrates σ(a·emb_u·emb_v + b) on
// training pairs so accuracy thresholds are meaningful.
type WalkEmbedding struct {
	cfg WalkConfig
	rng *rand.Rand

	emb *tensor.Matrix // input (node) vectors — the embeddings
	ctx *tensor.Matrix // output (context) vectors
	// logistic calibration for Score
	calA, calB float32
}

// NewWalkEmbedding builds an untrained walk baseline.
func NewWalkEmbedding(cfg WalkConfig) *WalkEmbedding {
	cfg.normalize()
	return &WalkEmbedding{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
}

// Name identifies the model.
func (m *WalkEmbedding) Name() string {
	switch m.cfg.Kind {
	case KindNode2Vec:
		return "Node2vec"
	case KindCTDNE:
		return "CTDNE"
	default:
		return "DeepWalk"
	}
}

// Fit generates walks over the training window and trains SGNS.
func (m *WalkEmbedding) Fit(d *dataset.Dataset, split *dataset.Split) {
	g := tgraph.New(d.NumNodes)
	for _, ev := range split.Train {
		g.AddEvent(ev)
	}
	var walks [][]tgraph.NodeID
	if m.cfg.Kind == KindCTDNE {
		walks = m.temporalWalks(g, split.Train)
	} else {
		csr := g.StaticSnapshot(split.TrainEnd + 1)
		walks = m.staticWalks(csr)
	}
	m.trainSGNS(d.NumNodes, walks)
	m.calibrate(d, split)
}

func (m *WalkEmbedding) staticWalks(csr *tgraph.CSR) [][]tgraph.NodeID {
	var walks [][]tgraph.NodeID
	for v := 0; v < csr.NumNodes; v++ {
		if csr.Degree(tgraph.NodeID(v)) == 0 {
			continue
		}
		for w := 0; w < m.cfg.WalksPer; w++ {
			walks = append(walks, m.oneStaticWalk(csr, tgraph.NodeID(v)))
		}
	}
	return walks
}

func (m *WalkEmbedding) oneStaticWalk(csr *tgraph.CSR, start tgraph.NodeID) []tgraph.NodeID {
	walk := make([]tgraph.NodeID, 0, m.cfg.WalkLen)
	walk = append(walk, start)
	cur := start
	var prev tgraph.NodeID = -1
	for len(walk) < m.cfg.WalkLen {
		nbrs := csr.Neighbors(cur)
		if len(nbrs) == 0 {
			break
		}
		var next tgraph.NodeID
		if m.cfg.Kind == KindDeepWalk || prev < 0 {
			next = nbrs[m.rng.Intn(len(nbrs))]
		} else {
			next = m.node2vecStep(csr, prev, cur, nbrs)
		}
		walk = append(walk, next)
		prev, cur = cur, next
	}
	return walk
}

// node2vecStep draws the next node with unnormalized weights 1/p (return),
// 1 (shared neighbor), 1/q (exploration) via rejection sampling.
func (m *WalkEmbedding) node2vecStep(csr *tgraph.CSR, prev, cur tgraph.NodeID, nbrs []tgraph.NodeID) tgraph.NodeID {
	maxW := 1.0
	if 1/m.cfg.P > maxW {
		maxW = 1 / m.cfg.P
	}
	if 1/m.cfg.Q > maxW {
		maxW = 1 / m.cfg.Q
	}
	prevNbrs := csr.Neighbors(prev)
	isPrevNbr := func(x tgraph.NodeID) bool {
		i := sort.Search(len(prevNbrs), func(i int) bool { return prevNbrs[i] >= x })
		return i < len(prevNbrs) && prevNbrs[i] == x
	}
	for tries := 0; tries < 32; tries++ {
		cand := nbrs[m.rng.Intn(len(nbrs))]
		var w float64
		switch {
		case cand == prev:
			w = 1 / m.cfg.P
		case isPrevNbr(cand):
			w = 1
		default:
			w = 1 / m.cfg.Q
		}
		if m.rng.Float64() < w/maxW {
			return cand
		}
	}
	return nbrs[m.rng.Intn(len(nbrs))]
}

// temporalWalks builds CTDNE walks: start at a random training event and
// keep moving along events with non-decreasing timestamps.
func (m *WalkEmbedding) temporalWalks(g *tgraph.Graph, train []tgraph.Event) [][]tgraph.NodeID {
	nWalks := len(train) / 4 * m.cfg.WalksPer / 6
	if nWalks < len(train)/8 {
		nWalks = len(train) / 8
	}
	if nWalks == 0 {
		nWalks = len(train)
	}
	var walks [][]tgraph.NodeID
	for w := 0; w < nWalks; w++ {
		ev := &train[m.rng.Intn(len(train))]
		walk := []tgraph.NodeID{ev.Src, ev.Dst}
		cur := ev.Dst
		curT := ev.Time
		for len(walk) < m.cfg.WalkLen {
			next, nextT, ok := m.temporalStep(g, cur, curT)
			if !ok {
				break
			}
			walk = append(walk, next)
			cur, curT = next, nextT
		}
		if len(walk) >= 2 {
			walks = append(walks, walk)
		}
	}
	return walks
}

// temporalStep samples uniformly among cur's events with Time ≥ t.
func (m *WalkEmbedding) temporalStep(g *tgraph.Graph, cur tgraph.NodeID, t float64) (tgraph.NodeID, float64, bool) {
	// Degree before +inf minus degree before t = future incidences.
	total := g.Degree(cur, 1e18)
	past := g.Degree(cur, t)
	if total == past {
		return 0, 0, false
	}
	// Most-recent list is newest-first over (t, +inf): index uniformly.
	incs := g.MostRecentNeighbors(cur, 1e18, total-past, nil)
	inc := incs[m.rng.Intn(len(incs))]
	return inc.Peer, inc.Time, true
}

// trainSGNS runs skip-gram with negative sampling over the walks using
// manual gradients (the classic word2vec update).
func (m *WalkEmbedding) trainSGNS(numNodes int, walks [][]tgraph.NodeID) {
	dim := m.cfg.Dim
	m.emb = tensor.New(numNodes, dim)
	m.ctx = tensor.New(numNodes, dim)
	m.emb.RandUniform(m.rng, -0.5/float64(dim), 0.5/float64(dim))

	// Negative table by occurrence^0.75.
	counts := make([]float64, numNodes)
	for _, w := range walks {
		for _, n := range w {
			counts[n]++
		}
	}
	var negPool []tgraph.NodeID
	for n, c := range counts {
		if c == 0 {
			continue
		}
		reps := int(math.Pow(c, 0.75)) + 1
		for r := 0; r < reps && r < 64; r++ {
			negPool = append(negPool, tgraph.NodeID(n))
		}
	}
	if len(negPool) == 0 {
		return
	}

	lr := m.cfg.LR
	gradC := make([]float32, dim)
	for _, walk := range walks {
		for i, center := range walk {
			lo := i - m.cfg.Window
			if lo < 0 {
				lo = 0
			}
			hi := i + m.cfg.Window
			if hi >= len(walk) {
				hi = len(walk) - 1
			}
			ce := m.emb.Row(int(center))
			for j := lo; j <= hi; j++ {
				if j == i {
					continue
				}
				for k := range gradC {
					gradC[k] = 0
				}
				// Positive pair.
				m.sgnsPair(ce, m.ctx.Row(int(walk[j])), 1, lr, gradC)
				// Negatives.
				for neg := 0; neg < m.cfg.Negatives; neg++ {
					nv := negPool[m.rng.Intn(len(negPool))]
					if nv == walk[j] {
						continue
					}
					m.sgnsPair(ce, m.ctx.Row(int(nv)), 0, lr, gradC)
				}
				tensor.Axpy(ce, gradC, 1)
			}
		}
	}
}

// sgnsPair applies one (center, context, label) update to the context
// vector and accumulates the center gradient.
func (m *WalkEmbedding) sgnsPair(center, context []float32, label float32, lr float32, gradC []float32) {
	g := (label - tensor.Sigmoid32(tensor.Dot(center, context))) * lr
	tensor.Axpy(gradC, context, g)
	tensor.Axpy(context, center, g)
}

// calibrate fits the 2-parameter logistic σ(a·dot+b) on training pairs so
// Score produces calibrated probabilities.
func (m *WalkEmbedding) calibrate(d *dataset.Dataset, split *dataset.Split) {
	m.calA, m.calB = 1, 0
	ns := dataset.NewNegSampler(d.NumNodes)
	for i := range split.Train {
		ns.Observe(&split.Train[i])
	}
	const iters = 3000
	lr := float32(0.05)
	for it := 0; it < iters; it++ {
		ev := &split.Train[m.rng.Intn(len(split.Train))]
		for _, s := range []struct {
			dst   tgraph.NodeID
			label float32
		}{
			{ev.Dst, 1},
			{ns.Sample(m.rng, ev.Dst), 0},
		} {
			dot := tensor.Dot(m.emb.Row(int(ev.Src)), m.emb.Row(int(s.dst)))
			p := tensor.Sigmoid32(m.calA*dot + m.calB)
			g := (s.label - p) * lr
			m.calA += g * dot
			m.calB += g
		}
	}
}

// Score returns calibrated probabilities for node pairs.
func (m *WalkEmbedding) Score(pairs [][2]tgraph.NodeID) []float32 {
	out := make([]float32, len(pairs))
	for i, pr := range pairs {
		dot := tensor.Dot(m.emb.Row(int(pr[0])), m.emb.Row(int(pr[1])))
		out[i] = tensor.Sigmoid32(m.calA*dot + m.calB)
	}
	return out
}

// Embedding returns the learned vector of node n.
func (m *WalkEmbedding) Embedding(n tgraph.NodeID) []float32 { return m.emb.Row(int(n)) }
