package baselines

import (
	"math/rand"

	"apan/internal/gdb"
	"apan/internal/nn"
	"apan/internal/tensor"
	"apan/internal/tgraph"
)

// BaseFunc provides the detached layer-0 features of a set of (node, time)
// pairs: zeros for TGAT (node features are absent in the datasets, §4.1),
// the node memory for TGN.
type BaseFunc func(nodes []tgraph.NodeID, times []float64) *tensor.Matrix

// Overlay lets a model substitute on-tape layer-0 rows for specific nodes so
// gradients reach the module that produced them (TGN's memory updater).
type Overlay struct {
	Rows    *nn.Tensor              // U: one row per overridden node
	IndexOf map[tgraph.NodeID]int32 // node → row in Rows
}

// TemporalAttnStack is the k-hop temporal graph attention of TGAT (Xu et
// al., ICLR 2020), reused by TGN as its embedding module. Layer l computes
//
//	h_l(n,t) = FFN([ MHA(q=[h_{l−1}(n,t) ‖ Φ(0)],
//	                      kv=[h_{l−1}(u,t_u) ‖ e_{nu} ‖ Φ(t−t_u)]) ‖ h_{l−1}(n,t) ])
//
// over the fan-out most-recent temporal neighbors u of n, with the harmonic
// time encoding Φ. Every neighbor query goes through the graph database —
// the cost that sits on the inference critical path of synchronous models.
type TemporalAttnStack struct {
	dim    int
	fanout int
	layers int
	heads  int

	db      *gdb.DB
	timeEnc *nn.TimeEncoder
	wq      []*nn.Linear // per layer: 2d → d
	wk      []*nn.Linear // per layer: 3d → d
	wv      []*nn.Linear // per layer: 3d → d
	ffn     []*nn.MLP    // per layer: 2d → hidden → d
}

// NewTemporalAttnStack builds an L-layer stack over model dimension dim.
func NewTemporalAttnStack(dim, layers, fanout, heads, hidden int, dropout float32, db *gdb.DB, rng *rand.Rand) *TemporalAttnStack {
	s := &TemporalAttnStack{
		dim:     dim,
		fanout:  fanout,
		layers:  layers,
		heads:   heads,
		db:      db,
		timeEnc: nn.NewTimeEncoder(dim, rng),
	}
	for l := 0; l < layers; l++ {
		s.wq = append(s.wq, nn.NewLinear(2*dim, dim, rng))
		s.wk = append(s.wk, nn.NewLinear(3*dim, dim, rng))
		s.wv = append(s.wv, nn.NewLinear(3*dim, dim, rng))
		s.ffn = append(s.ffn, nn.NewMLP(2*dim, hidden, dim, dropout, rng))
	}
	return s
}

// SetDB swaps the graph database (used when the runtime is reset).
func (s *TemporalAttnStack) SetDB(db *gdb.DB) { s.db = db }

// Params returns all trainable tensors of the stack.
func (s *TemporalAttnStack) Params() []*nn.Tensor {
	ps := s.timeEnc.Params()
	for l := 0; l < s.layers; l++ {
		ps = append(ps, s.wq[l].Params()...)
		ps = append(ps, s.wk[l].Params()...)
		ps = append(ps, s.wv[l].Params()...)
		ps = append(ps, s.ffn[l].Params()...)
	}
	return ps
}

// Reprs computes the top-layer representations of (nodes, times). base
// supplies detached layer-0 features; overlay (optional) substitutes
// on-tape rows for specific nodes at layer 0.
func (s *TemporalAttnStack) Reprs(tp *nn.Tape, nodes []tgraph.NodeID, times []float64, base BaseFunc, overlay *Overlay) *nn.Tensor {
	return s.reprs(tp, nodes, times, s.layers, base, overlay)
}

func (s *TemporalAttnStack) reprs(tp *nn.Tape, nodes []tgraph.NodeID, times []float64, layer int, base BaseFunc, overlay *Overlay) *nn.Tensor {
	if layer == 0 {
		t0 := tp.Input(base(nodes, times))
		if overlay != nil {
			var rows []int32
			var srcIdx []int32
			for i, n := range nodes {
				if u, ok := overlay.IndexOf[n]; ok {
					rows = append(rows, int32(i))
					srcIdx = append(srcIdx, u)
				}
			}
			if len(rows) > 0 {
				t0 = tp.OverlayRows(t0, tp.Gather(overlay.Rows, srcIdx), rows)
			}
		}
		return t0
	}

	b := len(nodes)
	k := s.fanout
	neighNodes := make([]tgraph.NodeID, b*k)
	neighTimes := make([]float64, b*k)
	dts := make([]float32, b*k)
	counts := make([]int, b)
	edgeFeats := tensor.New(b*k, s.dim)
	var scratch []tgraph.Incidence
	for i, n := range nodes {
		if times[i] <= 0 {
			// Nothing can precede t=0; also skips the padded slots of the
			// layer above without charging graph-DB queries for them.
			continue
		}
		scratch = s.db.MostRecentNeighbors(n, times[i], k, scratch[:0])
		counts[i] = len(scratch)
		for j, inc := range scratch {
			neighNodes[i*k+j] = inc.Peer
			neighTimes[i*k+j] = inc.Time
			dts[i*k+j] = float32(times[i] - inc.Time)
			feat := s.db.G.Event(inc.Event).Feat
			copy(edgeFeats.Row(i*k+j), feat)
		}
		// Padded slots keep node 0 at time 0; the attention mask hides them.
	}

	selfPrev := s.reprs(tp, nodes, times, layer-1, base, overlay)
	neighPrev := s.reprs(tp, neighNodes, neighTimes, layer-1, base, overlay)

	l := layer - 1
	q := s.wq[l].Forward(tp, tp.ConcatCols(selfPrev, s.timeEnc.Forward(tp, make([]float32, b))))
	kvIn := tp.Concat3Cols(neighPrev, tp.Input(edgeFeats), s.timeEnc.Forward(tp, dts))
	kT := s.wk[l].Forward(tp, kvIn)
	vT := s.wv[l].Forward(tp, kvIn)
	att := tp.MaskedMHA(q, kT, vT, s.heads, counts)
	return s.ffn[l].Forward(tp, tp.ConcatCols(att.Out, selfPrev))
}

// ZeroBase returns a BaseFunc producing zero features of width dim.
func ZeroBase(dim int) BaseFunc {
	return func(nodes []tgraph.NodeID, _ []float64) *tensor.Matrix {
		return tensor.New(len(nodes), dim)
	}
}
