// Package baselines implements every comparison method of the paper's
// evaluation (§4.3): the synchronous CTDG models TGAT, TGN, JODIE and
// DyRep; the static GNNs GAT and GraphSAGE; the graph autoencoders GAE and
// VGAE; and the random-walk family DeepWalk, Node2Vec and CTDNE. The
// dynamic models share the chronological streaming protocol of
// internal/core so results are directly comparable.
package baselines

import (
	"math/rand"
	"time"

	"apan/internal/core"
	"apan/internal/dataset"
	"apan/internal/eval"
	"apan/internal/tensor"
	"apan/internal/tgraph"
)

// StreamModel is the protocol shared by APAN and the dynamic baselines: a
// temporal model trained and evaluated on a chronological event stream.
type StreamModel interface {
	Name() string
	ResetRuntime()
	TrainEpoch(events []tgraph.Event, ns *dataset.NegSampler) core.StreamResult
	EvalStream(events []tgraph.Event, ns *dataset.NegSampler) core.StreamResult
	CollectStream(events []tgraph.Event, ns *dataset.NegSampler, collect func(ev *tgraph.Event, zsrc, zdst []float32)) core.StreamResult
}

// batchFunc processes one batch and reports scores/loss/sync-latency.
type batchFunc func(events []tgraph.Event, ns *dataset.NegSampler, train bool, collect func(ev *tgraph.Event, zsrc, zdst []float32)) core.BatchResult

// runStream drives a batchFunc over the stream in chronological batches,
// mirroring core.Model's loop so all models share eval mechanics.
func runStream(process batchFunc, batchSize int, events []tgraph.Event, ns *dataset.NegSampler, train bool, collect func(ev *tgraph.Event, zsrc, zdst []float32)) core.StreamResult {
	var res core.StreamResult
	var scores []float32
	var labels []bool
	start := time.Now()
	for lo := 0; lo < len(events); lo += batchSize {
		hi := lo + batchSize
		if hi > len(events) {
			hi = len(events)
		}
		br := process(events[lo:hi], ns, train, collect)
		res.Loss += br.Loss
		res.Batches++
		res.SyncHist.Add(br.SyncTime)
		for i := range br.PosScores {
			scores = append(scores, br.PosScores[i], br.NegScores[i])
			labels = append(labels, true, false)
		}
	}
	res.Elapsed = time.Since(start)
	if res.Batches > 0 {
		res.Loss /= float64(res.Batches)
	}
	res.Accuracy = eval.Accuracy(scores, labels, 0.5)
	res.AP = eval.AveragePrecision(scores, labels)
	return res
}

// plan deduplicates the nodes of a batch and assigns per-event rows,
// optionally drawing one negative destination per event.
type plan struct {
	nodes  []tgraph.NodeID
	times  []float64
	srcRow []int32
	dstRow []int32
	negRow []int32
}

func planBatch(events []tgraph.Event, ns *dataset.NegSampler, rng *rand.Rand, numNodes int, withNegs bool) *plan {
	p := &plan{}
	rowOf := make(map[tgraph.NodeID]int, 3*len(events))
	row := func(n tgraph.NodeID, t float64) int32 {
		if r, ok := rowOf[n]; ok {
			if t > p.times[r] {
				p.times[r] = t
			}
			return int32(r)
		}
		r := len(p.nodes)
		rowOf[n] = r
		p.nodes = append(p.nodes, n)
		p.times = append(p.times, t)
		return int32(r)
	}
	for _, ev := range events {
		p.srcRow = append(p.srcRow, row(ev.Src, ev.Time))
		p.dstRow = append(p.dstRow, row(ev.Dst, ev.Time))
	}
	if withNegs {
		for _, ev := range events {
			var neg tgraph.NodeID
			if ns != nil {
				neg = ns.Sample(rng, ev.Dst)
			} else {
				neg = tgraph.NodeID(rng.Intn(numNodes))
			}
			p.negRow = append(p.negRow, row(neg, ev.Time))
		}
	}
	return p
}

// sigmoidScores converts an n×1 logit matrix into probabilities.
func sigmoidScores(logits *tensor.Matrix) []float32 {
	out := make([]float32, logits.Rows)
	for i := range out {
		out[i] = tensor.Sigmoid32(logits.Data[i])
	}
	return out
}

// onesZeros returns constant target slices of length n.
func onesZeros(n int) (ones, zeros []float32) {
	ones = make([]float32, n)
	zeros = make([]float32, n)
	for i := range ones {
		ones[i] = 1
	}
	return ones, zeros
}
