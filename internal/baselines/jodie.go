package baselines

import (
	"math/rand"
	"time"

	"apan/internal/core"
	"apan/internal/dataset"
	"apan/internal/nn"
	"apan/internal/state"
	"apan/internal/tensor"
	"apan/internal/tgraph"
)

// JODIEConfig configures the JODIE baseline.
type JODIEConfig struct {
	NumNodes  int
	EdgeDim   int
	Hidden    int
	Dropout   float32
	LR        float32
	BatchSize int
	Seed      int64
}

func (c *JODIEConfig) normalize() {
	if c.Hidden == 0 {
		c.Hidden = 80
	}
	if c.Dropout == 0 {
		c.Dropout = 0.1
	}
	if c.LR == 0 {
		c.LR = 1e-4
	}
	if c.BatchSize == 0 {
		c.BatchSize = 200
	}
}

// JODIE is Kumar et al. (KDD 2019): coupled recurrent updates of source and
// destination embeddings plus a time-projection operator that drifts a
// node's embedding between events, ẑ(t+Δ) = (1 + Δ·w) ⊙ z(t). It never
// queries the graph — which makes it fast but limits it to 1-hop dynamics
// (the limitation §2.4 of the APAN paper points out).
type JODIE struct {
	cfg     JODIEConfig
	rng     *rand.Rand
	srcCell *nn.GRUCell // role-specific update cells
	dstCell *nn.GRUCell
	projW   *nn.Tensor // 1×d drift vector w
	timeEnc *nn.TimeEncoder
	dec     *core.LinkDecoder
	mem     *state.Store
	pending map[tgraph.NodeID]pendingEvent
	pendSrc map[tgraph.NodeID]bool // role of the pending event
	opt     *nn.Adam

	// Running mean of inter-event gaps, used to standardize Δt in the
	// projection factor (JODIE normalizes time deltas; raw seconds would
	// blow the drift term up by orders of magnitude).
	dtSum   float64
	dtCount int64
}

// NewJODIE builds a JODIE baseline.
func NewJODIE(cfg JODIEConfig) *JODIE {
	cfg.normalize()
	rng := rand.New(rand.NewSource(cfg.Seed))
	d := cfg.EdgeDim
	m := &JODIE{
		cfg:     cfg,
		rng:     rng,
		srcCell: nn.NewGRUCell(3*d, d, rng),
		dstCell: nn.NewGRUCell(3*d, d, rng),
		projW:   nn.Param(1, d),
		timeEnc: nn.NewTimeEncoder(d, rng),
		dec:     core.NewLinkDecoder(d, cfg.Hidden, cfg.Dropout, rng),
		mem:     state.New(cfg.NumNodes, d),
		pending: make(map[tgraph.NodeID]pendingEvent),
		pendSrc: make(map[tgraph.NodeID]bool),
	}
	m.projW.W.RandN(rng, 0.01)
	m.opt = nn.NewAdam(m.Params(), cfg.LR)
	return m
}

// Name identifies the model.
func (m *JODIE) Name() string { return "JODIE" }

// Params returns all trainable tensors.
func (m *JODIE) Params() []*nn.Tensor {
	ps := append(m.srcCell.Params(), m.dstCell.Params()...)
	ps = append(ps, m.projW)
	ps = append(ps, m.timeEnc.Params()...)
	return append(ps, m.dec.Params()...)
}

// ResetRuntime clears the embedding memory and pending updates.
func (m *JODIE) ResetRuntime() {
	m.mem.Reset()
	m.pending = make(map[tgraph.NodeID]pendingEvent)
	m.pendSrc = make(map[tgraph.NodeID]bool)
	m.dtSum, m.dtCount = 0, 0
}

// normDt standardizes a time delta by the running mean gap, clamped so a
// long-dormant node cannot explode the projection.
func (m *JODIE) normDt(dt float64) float32 {
	if dt < 0 {
		dt = 0
	}
	mean := 1.0
	if m.dtCount > 0 {
		mean = m.dtSum / float64(m.dtCount)
	}
	if mean <= 0 {
		mean = 1
	}
	v := dt / mean
	if v > 10 {
		v = 10
	}
	return float32(v)
}

// observeDt feeds the running gap statistics.
func (m *JODIE) observeDt(dt float64) {
	if dt > 0 {
		m.dtSum += dt
		m.dtCount++
	}
}

// updateMemory applies pending recurrent updates for batch nodes on tape,
// split by role so each GRU sees only its side of the interactions.
func (m *JODIE) updateMemory(tp *nn.Tape, nodes []tgraph.NodeID) *Overlay {
	d := m.cfg.EdgeDim
	var srcUpd, dstUpd []tgraph.NodeID
	for _, n := range nodes {
		if _, ok := m.pending[n]; !ok {
			continue
		}
		if m.pendSrc[n] {
			srcUpd = append(srcUpd, n)
		} else {
			dstUpd = append(dstUpd, n)
		}
	}
	if len(srcUpd)+len(dstUpd) == 0 {
		return nil
	}
	build := func(upd []tgraph.NodeID, cell *nn.GRUCell) *nn.Tensor {
		if len(upd) == 0 {
			return nil
		}
		memRows := tensor.New(len(upd), d)
		peerRows := tensor.New(len(upd), d)
		feats := tensor.New(len(upd), d)
		dts := make([]float32, len(upd))
		for i, n := range upd {
			pe := m.pending[n]
			copy(memRows.Row(i), m.mem.Get(n))
			copy(peerRows.Row(i), m.mem.Get(pe.peer))
			copy(feats.Row(i), pe.feat)
			dt := pe.t - m.mem.LastTime(n)
			if dt < 0 {
				dt = 0
			}
			dts[i] = float32(dt)
		}
		x := tp.Concat3Cols(tp.Input(peerRows), tp.Input(feats), m.timeEnc.Forward(tp, dts))
		return cell.Forward(tp, x, tp.Input(memRows))
	}
	srcT := build(srcUpd, m.srcCell)
	dstT := build(dstUpd, m.dstCell)

	idx := make(map[tgraph.NodeID]int32, len(srcUpd)+len(dstUpd))
	var rows *nn.Tensor
	switch {
	case srcT != nil && dstT != nil:
		// Stack by overlaying both onto a zero base.
		base := tp.Input(tensor.New(len(srcUpd)+len(dstUpd), d))
		sRows := make([]int32, len(srcUpd))
		for i := range srcUpd {
			sRows[i] = int32(i)
		}
		dRows := make([]int32, len(dstUpd))
		for i := range dstUpd {
			dRows[i] = int32(len(srcUpd) + i)
		}
		rows = tp.OverlayRows(tp.OverlayRows(base, srcT, sRows), dstT, dRows)
	case srcT != nil:
		rows = srcT
	default:
		rows = dstT
	}
	for i, n := range srcUpd {
		idx[n] = int32(i)
	}
	for i, n := range dstUpd {
		idx[n] = int32(len(srcUpd) + i)
	}
	return &Overlay{Rows: rows, IndexOf: idx}
}

func (m *JODIE) commitMemory(ov *Overlay, events []tgraph.Event) {
	if ov != nil {
		for n, i := range ov.IndexOf {
			m.mem.Set(n, ov.Rows.Value().Row(int(i)), m.pending[n].t)
			delete(m.pending, n)
			delete(m.pendSrc, n)
		}
	}
	for i := range events {
		ev := &events[i]
		if m.mem.Touched(ev.Src) {
			m.observeDt(ev.Time - m.mem.LastTime(ev.Src))
		}
		if m.mem.Touched(ev.Dst) {
			m.observeDt(ev.Time - m.mem.LastTime(ev.Dst))
		}
		m.pending[ev.Src] = pendingEvent{peer: ev.Dst, feat: ev.Feat, t: ev.Time}
		m.pendSrc[ev.Src] = true
		m.pending[ev.Dst] = pendingEvent{peer: ev.Src, feat: ev.Feat, t: ev.Time}
		m.pendSrc[ev.Dst] = false
	}
}

func (m *JODIE) processBatch(events []tgraph.Event, ns *dataset.NegSampler, train bool, collect func(ev *tgraph.Event, zsrc, zdst []float32)) core.BatchResult {
	p := planBatch(events, ns, m.rng, m.cfg.NumNodes, true)

	var tp *nn.Tape
	if train {
		tp = nn.NewTrainingTape(m.rng)
	} else {
		tp = nn.NewTape()
	}

	start := time.Now()
	ov := m.updateMemory(tp, p.nodes)
	// Base embedding: memory, with fresh on-tape rows where just updated.
	base := tp.Input(m.memRows(p.nodes))
	if ov != nil {
		var rows, srcIdx []int32
		for i, n := range p.nodes {
			if u, ok := ov.IndexOf[n]; ok {
				rows = append(rows, int32(i))
				srcIdx = append(srcIdx, u)
			}
		}
		base = tp.OverlayRows(base, tp.Gather(ov.Rows, srcIdx), rows)
	}
	// Projection: ẑ = (1 + Δt·w) ⊙ z, Δt since the node's last update.
	d := m.cfg.EdgeDim
	dtm := tensor.New(len(p.nodes), d)
	for i, n := range p.nodes {
		dt := m.normDt(p.times[i] - m.mem.LastTime(n))
		row := dtm.Row(i)
		for j := range row {
			row[j] = dt
		}
	}
	factor := tp.AddConst(tp.MulRowVec(tp.Input(dtm), m.projW), 1)
	proj := tp.Mul(base, factor)

	zsrc := tp.Gather(proj, p.srcRow)
	zdst := tp.Gather(base, p.dstRow)
	zneg := tp.Gather(base, p.negRow)
	posLogits := m.dec.Forward(tp, zsrc, zdst)
	negLogits := m.dec.Forward(tp, zsrc, zneg)
	syncTime := time.Since(start)

	ones, zeros := onesZeros(len(events))
	loss := tp.Scale(tp.Add(tp.BCEWithLogits(posLogits, ones), tp.BCEWithLogits(negLogits, zeros)), 0.5)
	if train {
		tp.Backward(loss)
		nn.ClipGradNorm(m.Params(), 5)
		m.opt.Step()
		m.opt.ZeroGrad()
	}

	if collect != nil {
		for i := range events {
			collect(&events[i], zsrc.Value().Row(i), zdst.Value().Row(i))
		}
	}
	m.commitMemory(ov, events)
	if ns != nil {
		for i := range events {
			ns.Observe(&events[i])
		}
	}
	return core.BatchResult{
		Loss:      float64(loss.Value().Data[0]),
		PosScores: sigmoidScores(posLogits.Value()),
		NegScores: sigmoidScores(negLogits.Value()),
		SyncTime:  syncTime,
	}
}

func (m *JODIE) memRows(nodes []tgraph.NodeID) *tensor.Matrix {
	out := tensor.New(len(nodes), m.cfg.EdgeDim)
	for i, n := range nodes {
		copy(out.Row(i), m.mem.Get(n))
	}
	return out
}

// TrainEpoch trains one chronological pass.
func (m *JODIE) TrainEpoch(events []tgraph.Event, ns *dataset.NegSampler) core.StreamResult {
	return runStream(m.processBatch, m.cfg.BatchSize, events, ns, true, nil)
}

// EvalStream evaluates link prediction without training.
func (m *JODIE) EvalStream(events []tgraph.Event, ns *dataset.NegSampler) core.StreamResult {
	return runStream(m.processBatch, m.cfg.BatchSize, events, ns, false, nil)
}

// CollectStream runs inference invoking collect per event.
func (m *JODIE) CollectStream(events []tgraph.Event, ns *dataset.NegSampler, collect func(ev *tgraph.Event, zsrc, zdst []float32)) core.StreamResult {
	return runStream(m.processBatch, m.cfg.BatchSize, events, ns, false, collect)
}
