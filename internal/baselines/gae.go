package baselines

import (
	"math/rand"

	"apan/internal/dataset"
	"apan/internal/nn"
	"apan/internal/tensor"
	"apan/internal/tgraph"
)

// GAEConfig configures the GAE / VGAE baselines.
type GAEConfig struct {
	Variational bool
	Hidden      int
	Latent      int
	LR          float32
	Epochs      int
	PairsPerEp  int // reconstruction pairs sampled per epoch
	Seed        int64
}

func (c *GAEConfig) normalize() {
	if c.Hidden == 0 {
		c.Hidden = 64
	}
	if c.Latent == 0 {
		c.Latent = 32
	}
	if c.LR == 0 {
		c.LR = 1e-2
	}
	if c.Epochs == 0 {
		c.Epochs = 60
	}
	if c.PairsPerEp == 0 {
		c.PairsPerEp = 4096
	}
}

// GAE is the (variational) graph autoencoder of Kipf & Welling (2016): a
// two-layer full-batch GCN encoder over the symmetrically normalized static
// adjacency, trained to reconstruct edges with an inner-product decoder.
// Being unsupervised and time-blind, it anchors the bottom of Table 2.
type GAE struct {
	cfg GAEConfig
	rng *rand.Rand

	adj  *nn.SparseMatrix
	x    *tensor.Matrix
	w1   *nn.Linear
	wMu  *nn.Linear
	wSig *nn.Linear // VGAE only
	opt  *nn.Adam

	z *tensor.Matrix // cached latent embeddings after Fit
}

// NewGAE builds an untrained GAE/VGAE for data with the given feature dim.
func NewGAE(cfg GAEConfig, edgeDim int) *GAE {
	cfg.normalize()
	rng := rand.New(rand.NewSource(cfg.Seed))
	m := &GAE{
		cfg: cfg,
		rng: rng,
		w1:  nn.NewLinear(edgeDim, cfg.Hidden, rng),
		wMu: nn.NewLinear(cfg.Hidden, cfg.Latent, rng),
	}
	params := append(m.w1.Params(), m.wMu.Params()...)
	if cfg.Variational {
		m.wSig = nn.NewLinear(cfg.Hidden, cfg.Latent, rng)
		params = append(params, m.wSig.Params()...)
	}
	m.opt = nn.NewAdam(params, cfg.LR)
	return m
}

// Name identifies the model.
func (m *GAE) Name() string {
	if m.cfg.Variational {
		return "VGAE"
	}
	return "GAE"
}

// normalizedAdjacency builds Â = D^{-1/2}(A+I)D^{-1/2} from the snapshot.
func normalizedAdjacency(csr *tgraph.CSR) *nn.SparseMatrix {
	n := csr.NumNodes
	deg := make([]float32, n)
	for v := 0; v < n; v++ {
		deg[v] = float32(csr.Degree(tgraph.NodeID(v))) + 1 // self loop
	}
	inv := make([]float32, n)
	for v := range inv {
		inv[v] = 1 / tensor.Sqrt32(deg[v])
	}
	s := &nn.SparseMatrix{N: n, RowPtr: make([]int32, n+1)}
	for v := 0; v < n; v++ {
		s.RowPtr[v] = int32(len(s.Col))
		// Self loop first, then neighbors (CSR cols are sorted).
		s.Col = append(s.Col, int32(v))
		s.Val = append(s.Val, inv[v]*inv[v])
		for _, u := range csr.Neighbors(tgraph.NodeID(v)) {
			s.Col = append(s.Col, u)
			s.Val = append(s.Val, inv[v]*inv[u])
		}
	}
	s.RowPtr[n] = int32(len(s.Col))
	return s
}

// encode runs the GCN encoder on tape, returning (z, kl) where kl is nil
// for the plain GAE.
func (m *GAE) encode(tp *nn.Tape) (*nn.Tensor, *nn.Tensor) {
	h := tp.ReLU(m.w1.Forward(tp, tp.SpMM(m.adj, tp.Input(m.x))))
	h = tp.SpMM(m.adj, h)
	mu := m.wMu.Forward(tp, h)
	if !m.cfg.Variational {
		return mu, nil
	}
	logvar := m.wSig.Forward(tp, h)
	// Reparameterization: z = μ + ε·exp(logvar/2).
	eps := tensor.New(mu.Value().Rows, mu.Value().Cols)
	eps.RandN(m.rng, 1)
	std := tp.Exp(tp.Scale(logvar, 0.5))
	z := tp.Add(mu, tp.Mul(tp.Input(eps), std))
	// KL(q‖N(0,1)) = −½ Σ (1 + logvar − μ² − e^{logvar}) / N.
	one := tp.AddConst(tp.Sub(logvar, tp.Add(tp.Square(mu), tp.Exp(logvar))), 1)
	kl := tp.Scale(tp.MeanAll(one), -0.5)
	return z, kl
}

// Fit trains the autoencoder on the training window's static snapshot.
func (m *GAE) Fit(d *dataset.Dataset, split *dataset.Split) {
	g := tgraph.New(d.NumNodes)
	for _, ev := range split.Train {
		g.AddEvent(ev)
	}
	csr := g.StaticSnapshot(split.TrainEnd + 1)
	m.adj = normalizedAdjacency(csr)
	m.x = nodeInputFeatures(d, split.Train)

	ns := dataset.NewNegSampler(d.NumNodes)
	for i := range split.Train {
		ns.Observe(&split.Train[i])
	}

	for epoch := 0; epoch < m.cfg.Epochs; epoch++ {
		tp := nn.NewTrainingTape(m.rng)
		z, kl := m.encode(tp)
		// Reconstruction on sampled positive/negative pairs.
		nPairs := m.cfg.PairsPerEp
		if nPairs > len(split.Train) {
			nPairs = len(split.Train)
		}
		srcRow := make([]int32, 0, 2*nPairs)
		dstRow := make([]int32, 0, 2*nPairs)
		targets := make([]float32, 0, 2*nPairs)
		for i := 0; i < nPairs; i++ {
			ev := &split.Train[m.rng.Intn(len(split.Train))]
			srcRow = append(srcRow, int32(ev.Src))
			dstRow = append(dstRow, int32(ev.Dst))
			targets = append(targets, 1)
			srcRow = append(srcRow, int32(ev.Src))
			dstRow = append(dstRow, int32(ns.Sample(m.rng, ev.Dst)))
			targets = append(targets, 0)
		}
		logits := tp.RowDot(tp.Gather(z, srcRow), tp.Gather(z, dstRow))
		loss := tp.BCEWithLogits(logits, targets)
		if kl != nil {
			loss = tp.Add(loss, tp.Scale(kl, 1e-2))
		}
		tp.Backward(loss)
		m.opt.Step()
		m.opt.ZeroGrad()
	}

	// Cache deterministic embeddings (μ for VGAE).
	tp := nn.NewTape()
	h := tp.ReLU(m.w1.Forward(tp, tp.SpMM(m.adj, tp.Input(m.x))))
	h = tp.SpMM(m.adj, h)
	m.z = m.wMu.Forward(tp, h).Value().Clone()
}

// Score returns σ(z_u·z_v) for each pair.
func (m *GAE) Score(pairs [][2]tgraph.NodeID) []float32 {
	out := make([]float32, len(pairs))
	for i, pr := range pairs {
		out[i] = tensor.Sigmoid32(tensor.Dot(m.z.Row(int(pr[0])), m.z.Row(int(pr[1]))))
	}
	return out
}

// Embedding returns the latent embedding of node n.
func (m *GAE) Embedding(n tgraph.NodeID) []float32 { return m.z.Row(int(n)) }
