package core

import (
	"math/rand"

	"apan/internal/nn"
)

// paramVersion is one published generation of the model's weights: an
// immutable nn.ParamSet plus encoder/decoder modules whose tensors are bound
// (zero-copy) to the set's values. The serving hot paths load exactly one
// paramVersion pointer per batch, so every score is attributable to exactly
// one version — a forward pass can never read a torn mix of two publishes.
type paramVersion struct {
	set *nn.ParamSet
	enc *Encoder
	dec *LinkDecoder
	// quant is the int8 quantization of set's dense-layer weights, built once
	// at publish when Config.Quantize is on (nil otherwise). Serving tapes
	// attach it per batch, so every quantized score is attributable to the
	// same single version as its float32 counterpart would be.
	quant *nn.QuantParamSet
}

// NewForwardModules constructs the encoder/decoder pair for cfg's
// architecture — the single place the module selection (decoder variant,
// constructor wiring) lives. Used both to materialize published versions
// (weights immediately replaced by a binding) and by online trainers to
// build their private working copies, so the two can never drift apart.
func NewForwardModules(cfg Config, rng *rand.Rand) (*Encoder, *LinkDecoder) {
	enc := NewEncoder(cfg, rng)
	dec := NewLinkDecoder(cfg.EdgeDim, cfg.Hidden, cfg.Dropout, rng)
	if cfg.MLPDecoder {
		dec = NewMLPLinkDecoder(cfg.EdgeDim, cfg.Hidden, cfg.Dropout, rng)
	}
	return enc, dec
}

// newParamVersion materializes read-only forward modules over a snapshot.
// The modules are constructed in shell mode (nil rng): every parameter is a
// storage-free nn.ParamShell whose value the binding immediately replaces
// with the set's matrix, so a publish allocates module structure only —
// no weight initialization, no gradient matrices.
func (m *Model) newParamVersion(set *nn.ParamSet) (*paramVersion, error) {
	enc, dec := NewForwardModules(m.Cfg, nil)
	if err := nn.BindParams(append(enc.Params(), dec.Params()...), set); err != nil {
		return nil, err
	}
	pv := &paramVersion{set: set, enc: enc, dec: dec}
	if m.Cfg.Quantize {
		pv.quant = nn.QuantizeParamSet(set)
	}
	return pv, nil
}

// SwapParams snapshots params (copy-on-write: the caller keeps stepping its
// own tensors afterwards) into a new immutable version and atomically
// publishes it. From the next InferBatch/Embed on, the serving path scores
// with the new weights; passes already in flight finish on the version they
// pinned at entry. params must match the model architecture tensor-for-
// tensor — publish what Params() (or a trainer's private copy of it) yields.
//
// Safe to call concurrently with serving and with other SwapParams calls;
// versions are totally ordered by the returned ParamSet.Version, and the
// published version never moves backwards: when two publishes race, the
// higher version wins regardless of which Store lands last.
func (m *Model) SwapParams(params []*nn.Tensor) (*nn.ParamSet, error) {
	// Snapshot incrementally against the currently published set: tensors
	// the trainer has not touched since the last publish are aliased, not
	// copied. prev is immutable, so aliasing is safe even if a concurrent
	// publish replaces it between the Load and the CAS below.
	var prev *nn.ParamSet
	if old := m.cur.Load(); old != nil {
		prev = old.set
	}
	set := nn.NewParamSetFrom(m.verCounter.Add(1), params, prev)
	pv, err := m.newParamVersion(set)
	if err != nil {
		return nil, err
	}
	for {
		old := m.cur.Load()
		if old != nil && old.set.Version() > set.Version() {
			// A concurrent publish with a newer version already landed;
			// keep it. The snapshot is still returned (it exists, it is
			// just never served).
			return set, nil
		}
		if m.cur.CompareAndSwap(old, pv) {
			return set, nil
		}
	}
}

// publishOwn publishes the model's own (offline-training) parameters — the
// initial version at construction and the republish after the deprecated
// epoch-loop entry points or a parameter load mutate them.
func (m *Model) publishOwn() {
	if _, err := m.SwapParams(m.Params()); err != nil {
		// The model's own parameters always match its own architecture.
		panic("core: publish of the model's own parameters failed: " + err.Error())
	}
}

// ParamVersion returns the version of the currently published parameter
// set — what the next InferBatch/Embed will score with.
func (m *Model) ParamVersion() uint64 { return m.cur.Load().set.Version() }

// CurrentParams returns the currently published immutable parameter set.
func (m *Model) CurrentParams() *nn.ParamSet { return m.cur.Load().set }
