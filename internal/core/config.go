package core

import (
	"fmt"

	"apan/internal/tensor"
)

// PositionalMode selects how mailbox slots are position-encoded before
// attention.
type PositionalMode int

const (
	// PositionalLearned adds a learned per-slot table (paper default, eq. 2).
	PositionalLearned PositionalMode = iota
	// PositionalTime replaces the table with the TGAT time-encoding kernel
	// over (t_now − t_mail), the §3.6 future-work variant.
	PositionalTime
	// PositionalNone disables positional encoding (ablation).
	PositionalNone
)

// Graph backend selectors for Config.GraphBackend: which tgraph.Store
// implementation holds the temporal graph. All three are query-for-query
// bit-exact (enforced by the tgraph equivalence suite and the scenario
// harness's backend_parity invariant); they differ only in locking and
// simulated deployment cost.
const (
	// GraphBackendFlat is the single-structure in-process store, serialized
	// behind the model's graph mutex (the pre-sharding behavior, kept
	// reachable as the benchmark baseline). The default.
	GraphBackendFlat = "flat"
	// GraphBackendSharded hash-partitions the adjacency across Config.Shards
	// partitions with per-partition RWMutexes; graph reads skip the model's
	// graph mutex and appliers run concurrently.
	GraphBackendSharded = "sharded"
	// GraphBackendRemoteSim wraps the sharded store in gdb.Remote: the
	// batched-gather RPC accounting of the paper's Figure 6 distributed
	// graph DB deployment (latency accumulated, not slept, so results stay
	// deterministic).
	GraphBackendRemoteSim = "remote-sim"
)

// MailReduce selects the reduction ρ applied when a node receives several
// mails in one batch.
type MailReduce int

const (
	// ReduceMean averages concurrent mails (paper default).
	ReduceMean MailReduce = iota
	// ReduceLatest keeps only the most recent mail (ablation).
	ReduceLatest
)

// Config holds APAN hyper-parameters. Zero values are replaced by the
// paper's defaults (§4.4) in Normalize.
type Config struct {
	NumNodes int // number of nodes in the graph (required)
	EdgeDim  int // edge feature dimension d; also the embedding dimension (required)

	Slots     int     // mailbox slots m (default 10)
	Neighbors int     // propagation fan-out (default 10)
	Hops      int     // propagation depth k / "layers" (default 2)
	Heads     int     // attention heads (default 2)
	Hidden    int     // MLP hidden width (default 80)
	Dropout   float32 // dropout rate (default 0.1)
	LR        float32 // Adam learning rate (default 1e-4)
	BatchSize int     // events per batch (default 200)

	// Shards is the lock-stripe count of the node-state and mailbox stores
	// (default 16, rounded up to a power of two). Concurrent InferBatch and
	// ApplyInference calls contend only per shard; Shards=1 degenerates to a
	// single global lock (the pre-sharding behavior, kept reachable for the
	// benchmark baseline).
	Shards int
	// InferWorkers is the number of goroutines InferBatch and Embed fan the
	// state/mailbox gather across (default 1, i.e. no fan-out). Useful when
	// one large batch must be gathered fast; concurrent callers already
	// parallelize naturally across shards.
	InferWorkers int

	// GraphBackend selects the temporal-graph store implementation: one of
	// GraphBackendFlat (default), GraphBackendSharded or
	// GraphBackendRemoteSim. See the constants for semantics; every backend
	// is bit-exact with every other, so this is purely a locking/deployment
	// choice. Ignored by NewWithDB, which receives a ready-made store.
	GraphBackend string

	// IncrementalCheckpoints makes checkpoint cuts copy only the state and
	// mailbox shards modified since the previous cut, retaining that cut's
	// snapshot as the clean-shard base (one extra deep copy of both stores
	// held between cuts). The apply-pause becomes O(dirty shards) instead
	// of O(all state); the serialized checkpoint bytes are identical either
	// way. Off by default.
	IncrementalCheckpoints bool

	// EvictMaxNodes bounds the warm working set: at most this many nodes may
	// hold non-cold state/mailbox contents at once. When an applied batch
	// pushes the warm count past the budget, the least recently touched
	// nodes are reset to the cold-start condition (state zeroed, mailbox
	// emptied; the temporal graph keeps their adjacency) and re-admitted on
	// demand with a neighbor-mean warm start when the stream names them
	// again (see evict.go). 0 — the default — disables eviction entirely:
	// no tracking, bitwise-identical behavior to earlier builds.
	EvictMaxNodes int

	// NoWorkspacePool disables the pooled inference workspaces: every
	// InferBatch/Embed call allocates fresh buffers and a fresh
	// grad-recording tape, reproducing the pre-pooling behavior. The
	// arithmetic is identical — this knob exists as the benchmark baseline
	// and as an escape hatch, like Shards=1 for the store layer.
	NoWorkspacePool bool
	// Quantize serves scores from per-channel symmetric int8 quantizations of
	// the published dense-layer weights (int32-accumulator GEMMs, everything
	// else float32). Each SwapParams publish quantizes the new set once; the
	// serving forward pass then intercepts the dense MatMuls. Scores drift
	// from float32 by the rounding of the int8 GEMMs — bounded at ≤ 0.02 AP
	// on the fraud trace by the quantized_drift scenario invariant — so this
	// knob trades exactness for throughput. Off by default.
	Quantize bool
	// KernelTier selects the process-wide linear-algebra kernel tier by name
	// ("default", "wide", and "asm" where the hardware supports it; see
	// tensor.SetTier). Empty leaves the process tier alone — the bit-exact
	// default, unless APAN_KERNEL_TIER overrode it at init. Unknown names are
	// a Normalize error.
	KernelTier string
	// NoExplain skips recording the per-pass attention copy that Explain
	// serves. The copy happens under a model-wide mutex on every forward
	// pass, so deployments that never query /v1/explain can turn it off;
	// Explain then always reports "no explanation".
	NoExplain bool

	Positional PositionalMode
	Reduce     MailReduce
	// KeyValueMailbox switches ψ to the memory-network update (§3.6).
	KeyValueMailbox bool
	// MLPDecoder scores links with the §3.4 MLP([z_i ‖ z_j]) head instead of
	// the default calibrated inner product of the eq.-7 training objective.
	MLPDecoder bool

	Seed int64
}

// Normalize fills defaults and validates the configuration.
func (c *Config) Normalize() error {
	if c.NumNodes <= 0 {
		return fmt.Errorf("core: Config.NumNodes must be positive, got %d", c.NumNodes)
	}
	if c.EdgeDim <= 0 {
		return fmt.Errorf("core: Config.EdgeDim must be positive, got %d", c.EdgeDim)
	}
	if c.Slots == 0 {
		c.Slots = 10
	}
	if c.Neighbors == 0 {
		c.Neighbors = 10
	}
	if c.Hops == 0 {
		c.Hops = 2
	}
	if c.Heads == 0 {
		c.Heads = 2
	}
	if c.Hidden == 0 {
		c.Hidden = 80
	}
	if c.Dropout == 0 {
		c.Dropout = 0.1
	}
	if c.LR == 0 {
		c.LR = 1e-4
	}
	if c.BatchSize == 0 {
		c.BatchSize = 200
	}
	if c.Shards == 0 {
		c.Shards = 16
	}
	if c.Shards < 1 {
		return fmt.Errorf("core: Config.Shards must be ≥1, got %d", c.Shards)
	}
	if c.InferWorkers == 0 {
		c.InferWorkers = 1
	}
	if c.InferWorkers < 1 {
		return fmt.Errorf("core: Config.InferWorkers must be ≥1, got %d", c.InferWorkers)
	}
	if c.GraphBackend == "" {
		c.GraphBackend = GraphBackendFlat
	}
	switch c.GraphBackend {
	case GraphBackendFlat, GraphBackendSharded, GraphBackendRemoteSim:
	default:
		return fmt.Errorf("core: Config.GraphBackend must be %q, %q or %q, got %q",
			GraphBackendFlat, GraphBackendSharded, GraphBackendRemoteSim, c.GraphBackend)
	}
	if c.EvictMaxNodes < 0 {
		return fmt.Errorf("core: Config.EvictMaxNodes must be ≥0, got %d", c.EvictMaxNodes)
	}
	if c.EdgeDim%c.Heads != 0 {
		return fmt.Errorf("core: EdgeDim %d must be divisible by Heads %d", c.EdgeDim, c.Heads)
	}
	if c.Slots < 1 || c.Neighbors < 1 || c.Hops < 1 {
		return fmt.Errorf("core: Slots/Neighbors/Hops must be ≥1")
	}
	if c.KernelTier != "" {
		// Tier selection is process-wide by design (see tensor.SetTier); an
		// empty KernelTier never touches it, so models that don't opt in keep
		// whatever the process (or APAN_KERNEL_TIER) already chose.
		if err := tensor.SetTier(c.KernelTier); err != nil {
			return fmt.Errorf("core: Config.KernelTier: %w", err)
		}
	}
	return nil
}
