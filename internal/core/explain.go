package core

import "apan/internal/tgraph"

// Explanation reports, for one node of the most recent inference, how much
// each mailbox mail contributed to the node's new embedding — the
// interpretability mechanism of paper §3.6: because mails store the full
// interaction detail (z_i, e_ij, z_j), the attention weight over a mail
// identifies which past interaction drove the decision.
type Explanation struct {
	Node tgraph.NodeID
	// ParamVersion is the published parameter version of the forward pass
	// that produced these weights (0 for offline training/eval passes, which
	// run on the model's own mutable parameters). An explanation is pinned to
	// the version its pass scored with, even if weights were swapped since.
	ParamVersion uint64
	// MailWeights[i] is the attention probability on the i-th mail (oldest
	// first, timestamp order), averaged over heads. Sums to 1 when the node
	// had any mail.
	MailWeights []float32
	// PerHead[h][i] is the unaveraged weight of head h on mail i.
	PerHead [][]float32
}

// Explain returns the attention explanation for node n from the most recent
// forward pass (training, evaluation or serving). ok is false when n was not
// part of that batch or no pass has run. Safe for concurrent use; with
// concurrent scoring "most recent" means whichever pass published last.
func (m *Model) Explain(n tgraph.NodeID) (*Explanation, bool) {
	m.explainMu.Lock()
	defer m.explainMu.Unlock()
	r := &m.explain
	if !r.valid {
		return nil, false
	}
	row := -1
	for i, node := range r.nodes {
		if node == n {
			row = i
			break
		}
	}
	if row < 0 {
		return nil, false
	}
	count := r.counts[row]
	ex := &Explanation{Node: n, ParamVersion: r.version, MailWeights: make([]float32, count)}
	ex.PerHead = make([][]float32, r.heads)
	for h := 0; h < r.heads; h++ {
		ex.PerHead[h] = make([]float32, count)
		for i := 0; i < count; i++ {
			w := r.weights[(row*r.heads+h)*r.slots+i]
			ex.PerHead[h][i] = w
			ex.MailWeights[i] += w / float32(r.heads)
		}
	}
	return ex, true
}
