package core

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"apan/internal/gdb"
	"apan/internal/tgraph"
)

// allBackends is the selector list every cross-backend test iterates.
var allBackends = []string{GraphBackendFlat, GraphBackendSharded, GraphBackendRemoteSim}

func backendModel(t *testing.T, backend string) *Model {
	t.Helper()
	ds := tinyData(1)
	cfg := tinyConfig(ds.NumNodes)
	cfg.GraphBackend = backend
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestBackendScoreAndDigestParity is the core-level parity proof: the same
// serve cycle (InferBatch → ApplyInference) on every graph backend must
// produce bitwise-identical scores per batch and equal RuntimeDigests —
// embeddings depend only on what the store returns, and the stores are
// query-for-query bit-exact.
func TestBackendScoreAndDigestParity(t *testing.T) {
	ds := tinyData(1)
	models := make(map[string]*Model, len(allBackends))
	for _, b := range allBackends {
		models[b] = backendModel(t, b)
	}
	ref := models[GraphBackendFlat]
	events := ds.Events[:600]
	for lo := 0; lo < len(events); lo += 50 {
		batch := events[lo : lo+50]
		refInf := ref.InferBatch(batch)
		for _, b := range allBackends[1:] {
			inf := models[b].InferBatch(batch)
			for i := range refInf.Scores {
				if inf.Scores[i] != refInf.Scores[i] {
					t.Fatalf("%s: batch@%d event %d: score %v vs flat %v", b, lo, i, inf.Scores[i], refInf.Scores[i])
				}
			}
			models[b].ApplyInference(inf)
			inf.Release()
		}
		ref.ApplyInference(refInf)
		refInf.Release()
	}
	want := ref.RuntimeDigest()
	for _, b := range allBackends[1:] {
		if got := models[b].RuntimeDigest(); got != want {
			t.Fatalf("%s: RuntimeDigest %x vs flat %x", b, got, want)
		}
	}
}

// TestInferBatchZeroAllocSteadyStateSharded repeats the allocation-
// regression guard on the sharded graph backend: swapping the store must
// not put allocations back on the synchronous hot path.
func TestInferBatchZeroAllocSteadyStateSharded(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation allocates")
	}
	ds := tinyData(1)
	cfg := tinyConfig(ds.NumNodes)
	cfg.GraphBackend = GraphBackendSharded
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m.EvalStream(ds.Events[:200], nil)
	batch := ds.Events[200:240]
	for i := 0; i < 3; i++ {
		m.InferBatch(batch).Release()
	}
	allocs := testing.AllocsPerRun(50, func() {
		m.InferBatch(batch).Release()
	})
	if allocs > 0 {
		t.Fatalf("steady-state InferBatch allocated %.2f times per op, want 0", allocs)
	}
}

// TestShardedConcurrentServeCycle exercises the WAL-free concurrent apply
// fast path: with a concurrency-safe backend, whole serve cycles
// (InferBatch + ApplyInference) run from many goroutines with no graphMu
// serialization, racing Grow (EnsureNodes), digest cuts and watermark
// reads. Run under -race in CI; the assertion is that no apply is lost.
func TestShardedConcurrentServeCycle(t *testing.T) {
	for _, backend := range []string{GraphBackendSharded, GraphBackendRemoteSim} {
		t.Run(backend, func(t *testing.T) {
			ds := tinyData(2)
			cfg := tinyConfig(ds.NumNodes)
			cfg.GraphBackend = backend
			m, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			const (
				appliers = 4
				batches  = 12
				bs       = 25
			)
			var wg sync.WaitGroup
			for a := 0; a < appliers; a++ {
				wg.Add(1)
				go func(a int) {
					defer wg.Done()
					for i := 0; i < batches; i++ {
						lo := (a*batches + i) * bs
						inf := m.InferBatch(ds.Events[lo : lo+bs])
						m.ApplyInference(inf)
						inf.Release()
					}
				}(a)
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < 20; i++ {
					m.RuntimeDigest()
					_ = m.GraphEvents()
					m.EnsureNodes(ds.NumNodes + i)
				}
			}()
			wg.Wait()
			if got, want := m.GraphEvents(), appliers*batches*bs; got != want {
				t.Fatalf("lost applies: %d events, want %d", got, want)
			}
		})
	}
}

// TestBackendSurvivesLifecycle pins the in-place Reset contract: the
// configured store implementation must survive ResetRuntime,
// Snapshot/RestoreRuntime and a checkpoint round trip — none of them may
// silently swap a sharded backend back to a flat graph.
func TestBackendSurvivesLifecycle(t *testing.T) {
	kind := func(s tgraph.Store) string { return fmt.Sprintf("%T", s) }
	for _, backend := range allBackends {
		t.Run(backend, func(t *testing.T) {
			ds := tinyData(1)
			m := backendModel(t, backend)
			want := kind(m.DB().G)

			m.EvalStream(ds.Events[:100], nil)
			snap := m.SnapshotRuntime()
			digest := m.RuntimeDigest()
			m.EvalStream(ds.Events[100:200], nil)
			m.RestoreRuntime(snap)
			if got := kind(m.DB().G); got != want {
				t.Fatalf("RestoreRuntime swapped backend: %s → %s", want, got)
			}
			if got := m.RuntimeDigest(); got != digest {
				t.Fatalf("RestoreRuntime digest %x, want %x", got, digest)
			}

			var buf bytes.Buffer
			if err := m.SaveCheckpoint(&buf); err != nil {
				t.Fatal(err)
			}
			m.EvalStream(ds.Events[200:300], nil)
			if err := m.LoadCheckpoint(&buf); err != nil {
				t.Fatal(err)
			}
			if got := kind(m.DB().G); got != want {
				t.Fatalf("LoadCheckpoint swapped backend: %s → %s", want, got)
			}
			if got := m.RuntimeDigest(); got != digest {
				t.Fatalf("LoadCheckpoint digest %x, want %x", got, digest)
			}

			m.ResetRuntime()
			if got := kind(m.DB().G); got != want {
				t.Fatalf("ResetRuntime swapped backend: %s → %s", want, got)
			}
			if got := m.GraphEvents(); got != 0 {
				t.Fatalf("ResetRuntime left %d events", got)
			}
		})
	}
}

// TestNewWithDBReportsActualBackend: a model handed a ready-made store must
// report the store it holds, not the config's default.
func TestNewWithDBReportsActualBackend(t *testing.T) {
	cfg := tinyConfig(100)
	m, err := NewWithDB(cfg, gdb.New(tgraph.NewSharded(100, 4)))
	if err != nil {
		t.Fatal(err)
	}
	if got := m.GraphBackend(); got != GraphBackendSharded {
		t.Fatalf("GraphBackend=%q, want %q", got, GraphBackendSharded)
	}
	if !m.graphSafe {
		t.Fatal("graphSafe not derived from the store")
	}
}

// TestGraphBackendValidation: unknown selectors are rejected at Normalize.
func TestGraphBackendValidation(t *testing.T) {
	cfg := tinyConfig(10)
	cfg.GraphBackend = "bogus"
	if _, err := New(cfg); err == nil {
		t.Fatal("want error for unknown GraphBackend")
	}
}
