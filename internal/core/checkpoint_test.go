package core

import (
	"bytes"
	"path/filepath"
	"testing"

	"apan/internal/dataset"
)

func trainedModel(t *testing.T) (*Model, *dataset.Dataset) {
	t.Helper()
	d := tinyData(21)
	m, err := New(tinyConfig(d.NumNodes))
	if err != nil {
		t.Fatal(err)
	}
	m.ResetRuntime()
	m.TrainEpoch(d.Events[:400], dataset.NewNegSampler(d.NumNodes))
	return m, d
}

func TestSaveLoadParamsRoundTrip(t *testing.T) {
	m, d := trainedModel(t)
	var buf bytes.Buffer
	if err := m.SaveParams(&buf); err != nil {
		t.Fatal(err)
	}

	m2, err := New(tinyConfig(d.NumNodes))
	if err != nil {
		t.Fatal(err)
	}
	if err := m2.LoadParams(&buf); err != nil {
		t.Fatal(err)
	}
	p1, p2 := m.Params(), m2.Params()
	for i := range p1 {
		for j := range p1[i].W.Data {
			if p1[i].W.Data[j] != p2[i].W.Data[j] {
				t.Fatalf("param %d differs after round trip", i)
			}
		}
	}
}

func TestLoadParamsShapeMismatch(t *testing.T) {
	m, d := trainedModel(t)
	var buf bytes.Buffer
	if err := m.SaveParams(&buf); err != nil {
		t.Fatal(err)
	}
	cfg := tinyConfig(d.NumNodes)
	cfg.Hidden = 64 // different architecture
	m2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := m2.LoadParams(&buf); err == nil {
		t.Fatal("want shape mismatch error")
	}
}

func TestCheckpointRoundTripPreservesServing(t *testing.T) {
	m, d := trainedModel(t)
	// Warm serving state beyond training.
	m.EvalStream(d.Events[400:600], nil)

	path := filepath.Join(t.TempDir(), "model.ckpt")
	if err := m.SaveCheckpointFile(path); err != nil {
		t.Fatal(err)
	}

	m2, err := New(tinyConfig(d.NumNodes))
	if err != nil {
		t.Fatal(err)
	}
	if err := m2.LoadCheckpointFile(path); err != nil {
		t.Fatal(err)
	}

	// The restored replica must serve identically.
	probe := d.Events[600:650]
	inf1 := m.InferBatch(probe)
	inf2 := m2.InferBatch(probe)
	for i := range inf1.Scores {
		if inf1.Scores[i] != inf2.Scores[i] {
			t.Fatalf("score %d differs: %v vs %v", i, inf1.Scores[i], inf2.Scores[i])
		}
	}
	// And continue evolving identically.
	m.ApplyInference(inf1)
	m2.ApplyInference(inf2)
	inf1 = m.InferBatch(d.Events[650:700])
	inf2 = m2.InferBatch(d.Events[650:700])
	for i := range inf1.Scores {
		if inf1.Scores[i] != inf2.Scores[i] {
			t.Fatalf("post-apply score %d differs", i)
		}
	}
	if m.DB().G.NumEvents() != m2.DB().G.NumEvents() {
		t.Fatalf("graphs differ: %d vs %d events", m.DB().G.NumEvents(), m2.DB().G.NumEvents())
	}
}

func TestCheckpointRejectsGarbage(t *testing.T) {
	m, _ := trainedModel(t)
	if err := m.LoadCheckpoint(bytes.NewReader([]byte("not a checkpoint"))); err == nil {
		t.Fatal("want error on garbage input")
	}
	var empty bytes.Buffer
	if err := m.LoadCheckpoint(&empty); err == nil {
		t.Fatal("want error on empty input")
	}
}

func TestCheckpointNodeCountMismatch(t *testing.T) {
	// Node counts may legitimately differ across save/load since dynamic
	// admission (EnsureNodes) grows a serving model past its Config: a
	// larger checkpoint grows the loading model, a smaller one loads into
	// the larger model leaving the extra nodes cold.
	m, _ := trainedModel(t)
	var buf bytes.Buffer
	if err := m.SaveCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}
	big, err := New(tinyConfig(m.Cfg.NumNodes + 5))
	if err != nil {
		t.Fatal(err)
	}
	if err := big.LoadCheckpoint(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("smaller checkpoint into larger model: %v", err)
	}
	if big.NumNodes() != m.Cfg.NumNodes+5 {
		t.Fatalf("larger model shrank to %d", big.NumNodes())
	}

	grown, _ := trainedModel(t)
	grown.EnsureNodes(grown.Cfg.NumNodes + 7)
	want := grown.NumNodes()
	var gbuf bytes.Buffer
	if err := grown.SaveCheckpoint(&gbuf); err != nil {
		t.Fatal(err)
	}
	fresh, err := New(tinyConfig(want - 7))
	if err != nil {
		t.Fatal(err)
	}
	if err := fresh.LoadCheckpoint(&gbuf); err != nil {
		t.Fatalf("grown checkpoint into fresh model: %v", err)
	}
	if fresh.NumNodes() != want {
		t.Fatalf("fresh model did not grow: %d, want %d", fresh.NumNodes(), want)
	}
}

func TestCheckpointPreservesMailboxOrder(t *testing.T) {
	cfg := tinyConfig(4)
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	mk := func(v float32) []float32 {
		f := make([]float32, 16)
		f[0] = v
		return f
	}
	// Out-of-order delivery, then checkpoint: restored readout must match.
	m.Mailbox().Deliver(0, mk(3), 3)
	m.Mailbox().Deliver(0, mk(1), 1)
	var buf bytes.Buffer
	if err := m.SaveCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}
	m2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := m2.LoadCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}
	b1 := make([]float32, 2*16)
	t1 := make([]float64, 2)
	b2 := make([]float32, 2*16)
	t2 := make([]float64, 2)
	n1 := m.Mailbox().ReadSorted(0, b1, t1)
	n2 := m2.Mailbox().ReadSorted(0, b2, t2)
	if n1 != n2 || n1 != 2 {
		t.Fatalf("counts: %d vs %d", n1, n2)
	}
	for i := range b1 {
		if b1[i] != b2[i] {
			t.Fatal("mail contents differ after restore")
		}
	}
}
