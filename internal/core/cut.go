package core

import (
	"time"

	"apan/internal/mailbox"
	"apan/internal/state"
	"apan/internal/tgraph"
)

// Incremental checkpoint cuts. A durability cut pauses the appliers (the
// apply gate held exclusively) while both stores are cloned; at scale that
// pause is O(all state) and lands on the write path. With
// Config.IncrementalCheckpoints the model retains the previous cut's
// snapshots and asks the stores for dirty-shard-only copies: shards whose
// modification counter is unchanged since the last cut alias the retained
// clone instead of being copied again. Correctness does not depend on
// which code produced the mutation — every store mutator (applies, loads,
// resets, restores, growth) bumps its shard's counter under the shard
// lock, so a stale base can only ever cause extra copying, never a stale
// checkpoint.

// CutStats describes the most recent checkpoint cut: what was copied, what
// was reused, and how long the apply-pause lasted.
type CutStats struct {
	// Incremental is true when the cut ran with a retained base (second
	// and later cuts under Config.IncrementalCheckpoints).
	Incremental bool
	// StateCopied / MailCopied count shards deep-copied during the pause;
	// StateShards / MailShards are the totals.
	StateCopied, StateShards int
	MailCopied, MailShards   int
	// GraphDirty counts graph partitions modified since the previous cut;
	// GraphParts is the partition total. Both are zero when the configured
	// graph backend exposes no partition accounting (flat, remote-sim) —
	// the graph is captured as a zero-copy log prefix either way, so this
	// is reporting, not cost.
	GraphDirty, GraphParts int
	// Events is the cut's watermark: graph events captured.
	Events int
	// Pause is the wall time the apply gate was held exclusively.
	Pause time.Duration
}

// checkpointCut is the cut used by checkpoint saves: runtimeCut semantics
// (batch-aligned, scoring unblocked), plus dirty-shard cloning against the
// retained previous cut when Config.IncrementalCheckpoints is set, plus
// accounting in LastCutStats either way.
func (m *Model) checkpointCut() (st *state.ShardedSnapshot, mb *mailbox.ShardedSnapshot, events []tgraph.Event, numNodes int) {
	m.ckptMu.Lock()
	defer m.ckptMu.Unlock()

	var base *state.ShardedSnapshot
	var mbBase *mailbox.ShardedSnapshot
	if m.Cfg.IncrementalCheckpoints {
		base, mbBase = m.ckptStBase, m.ckptMbBase
	}

	start := time.Now()
	m.storeMu.RLock()
	m.applyMu.Lock()
	numNodes = m.Cfg.NumNodes
	var stCopied, mbCopied int
	st, stCopied = m.st.SnapshotSharedSince(base)
	mb, mbCopied = m.mbox.SnapshotSharedSince(mbBase)
	// Same graph capture as runtimeCut: the apply gate quiesced writers;
	// the flat backend still wants graphMu for the read itself.
	if m.graphSafe {
		g := m.db.G
		events = g.EventLog()[:g.NumEvents()]
	} else {
		m.graphMu.Lock()
		g := m.db.G
		events = g.EventLog()[:g.NumEvents()]
		m.graphMu.Unlock()
	}
	var gens []uint64
	if sg, ok := m.db.G.(*tgraph.Sharded); ok {
		gens = sg.PartitionGens(make([]uint64, 0, sg.NumPartitions()))
	}
	m.applyMu.Unlock()
	m.storeMu.RUnlock()
	pause := time.Since(start)

	stats := CutStats{
		Incremental: base != nil,
		StateCopied: stCopied, StateShards: m.st.NumShards(),
		MailCopied: mbCopied, MailShards: m.mbox.NumShards(),
		Events: len(events),
		Pause:  pause,
	}
	if gens != nil {
		stats.GraphParts = len(gens)
		for i, g := range gens {
			if m.ckptGGens == nil || i >= len(m.ckptGGens) || m.ckptGGens[i] != g {
				stats.GraphDirty++
			}
		}
		m.ckptGGens = gens
	}
	if m.Cfg.IncrementalCheckpoints {
		m.ckptStBase, m.ckptMbBase = st, mb
	}
	m.lastCut = stats
	return st, mb, events, numNodes
}

// CheckpointCut performs one durability cut and returns its accounting
// without serializing anything — benchmarks use it to measure the
// apply-pause in isolation from checkpoint encoding, and it is also how
// the incremental base is primed before a measured run.
func (m *Model) CheckpointCut() CutStats {
	m.checkpointCut()
	return m.LastCutStats()
}

// LastCutStats reports the most recent checkpoint cut's accounting (the
// zero value before any cut).
func (m *Model) LastCutStats() CutStats {
	m.ckptMu.Lock()
	defer m.ckptMu.Unlock()
	return m.lastCut
}
