package core

import (
	"bytes"
	"math"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"

	"apan/internal/nn"
	"apan/internal/tensor"
	"apan/internal/tgraph"
)

// setParamValues writes vals into the model's own parameter tensors.
func setParamValues(m *Model, vals []*tensor.Matrix) {
	for i, p := range m.Params() {
		copy(p.W.Data, vals[i].Data)
	}
}

// cloneParamValues deep-copies the model's current own parameter values.
func cloneParamValues(m *Model) []*tensor.Matrix {
	params := m.Params()
	out := make([]*tensor.Matrix, len(params))
	for i, p := range params {
		out[i] = p.W.Clone()
	}
	return out
}

// TestSwapParamsChurn is the no-torn-params stress test: readers hammer
// InferBatch/Embed/Explain while a writer rapidly alternates between two
// published parameter sets. Every observed score vector must bitwise equal
// the precomputed output of exactly one of the two sets — never a mix — and
// the Inference's pinned version must identify that set. Run under -race in
// CI to cover the memory-model side as well.
func TestSwapParamsChurn(t *testing.T) {
	ds := tinyData(11)
	cfg := tinyConfig(ds.NumNodes)
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m.EvalStream(ds.Events[:200], nil)
	batch := ds.Events[200:230]

	// Two distinguishable parameter sets: B = A with every value nudged.
	aVals := cloneParamValues(m)
	bVals := make([]*tensor.Matrix, len(aVals))
	for i, v := range aVals {
		bVals[i] = v.Clone()
		for j := range bVals[i].Data {
			bVals[i].Data[j] += 1e-3
		}
	}

	// Precompute each set's scores on the frozen runtime state (InferBatch
	// has no side effects, so state never moves during this test). Publish
	// order fixes the version parity: A on even versions, B on odd.
	publish := func(vals []*tensor.Matrix) *nn.ParamSet {
		setParamValues(m, vals)
		ps, err := m.SwapParams(m.Params())
		if err != nil {
			t.Fatal(err)
		}
		return ps
	}
	scoreNow := func() []float32 {
		inf := m.InferBatch(batch)
		defer inf.Release()
		return append([]float32(nil), inf.Scores...)
	}
	psA := publish(aVals)
	scoresA := scoreNow()
	psB := publish(bVals)
	scoresB := scoreNow()
	parityA := psA.Version() % 2
	if psB.Version()%2 == parityA {
		t.Fatalf("version parity did not alternate: %d then %d", psA.Version(), psB.Version())
	}
	for i := range scoresA {
		if scoresA[i] == scoresB[i] {
			t.Fatalf("score %d identical across sets; churn test cannot discriminate", i)
		}
	}

	const swaps = 300
	var stop atomic.Bool
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer stop.Store(true)
		for i := 0; i < swaps; i++ {
			if i%2 == 0 {
				publish(aVals)
			} else {
				publish(bVals)
			}
		}
	}()

	readers := 4
	errs := make(chan string, readers)
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(r)))
			for !stop.Load() {
				inf := m.InferBatch(batch)
				var want []float32
				if inf.ParamVersion()%2 == parityA {
					want = scoresA
				} else {
					want = scoresB
				}
				for i := range want {
					if math.Float32bits(inf.Scores[i]) != math.Float32bits(want[i]) {
						select {
						case errs <- "torn or mixed parameter read: score does not match the pinned version":
						default:
						}
						inf.Release()
						return
					}
				}
				inf.Release()
				if rng.Intn(4) == 0 {
					m.Embed([]tgraph.NodeID{batch[0].Src, batch[1].Src, batch[2].Src},
						[]float64{batch[0].Time, batch[1].Time, batch[2].Time})
				}
				if rng.Intn(4) == 0 {
					m.Explain(batch[0].Src)
				}
			}
		}(r)
	}
	wg.Wait()
	select {
	case msg := <-errs:
		t.Fatal(msg)
	default:
	}
}

// TestQuickPublishedParamsSaveLoadRoundTrip: SaveParams serializes the
// published set; loading it into a fresh model must publish a bitwise-equal
// set (fingerprints and every value), for arbitrary perturbations.
func TestQuickPublishedParamsSaveLoadRoundTrip(t *testing.T) {
	ds := tinyData(1)
	cfg := tinyConfig(ds.NumNodes)
	f := func(seed int64) bool {
		m, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(seed))
		for _, p := range m.Params() {
			for j := range p.W.Data {
				p.W.Data[j] += float32(rng.NormFloat64())
			}
		}
		if _, err := m.SwapParams(m.Params()); err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := m.SaveParams(&buf); err != nil {
			t.Log(err)
			return false
		}
		m2, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := m2.LoadParams(&buf); err != nil {
			t.Log(err)
			return false
		}
		a, b := m.CurrentParams(), m2.CurrentParams()
		if a.Fingerprint() != b.Fingerprint() {
			t.Logf("fingerprint %016x vs %016x", a.Fingerprint(), b.Fingerprint())
			return false
		}
		for i := 0; i < a.NumTensors(); i++ {
			av, bv := a.Value(i), b.Value(i)
			for j := range av.Data {
				if math.Float32bits(av.Data[j]) != math.Float32bits(bv.Data[j]) {
					t.Logf("tensor %d elem %d: %v vs %v", i, j, av.Data[j], bv.Data[j])
					return false
				}
			}
		}
		return true
	}
	qc := &quick.Config{MaxCount: 10}
	if testing.Short() {
		qc.MaxCount = 3
	}
	if err := quick.Check(f, qc); err != nil {
		t.Fatal(err)
	}
}

// TestSwapParamsIncrementalPublish: SwapParams must snapshot incrementally
// against the published set — a publish that touched one tensor clones only
// that tensor and aliases the rest, and a publish that touched nothing
// aliases everything — while serving output and the torn-params re-hash stay
// identical to a full-clone publish.
func TestSwapParamsIncrementalPublish(t *testing.T) {
	ds := tinyData(13)
	m, err := New(tinyConfig(ds.NumNodes))
	if err != nil {
		t.Fatal(err)
	}
	m.EvalStream(ds.Events[:200], nil)
	batch := ds.Events[200:220]

	ps0 := m.CurrentParams()
	// Touch only the first parameter tensor, as a partial optimizer step would.
	m.Params()[0].W.Data[0] += 0.25
	ps1, err := m.SwapParams(m.Params())
	if err != nil {
		t.Fatal(err)
	}
	if ps1.Value(0) == ps0.Value(0) {
		t.Fatal("touched tensor aliased to the previous set")
	}
	for i := 1; i < ps1.NumTensors(); i++ {
		if ps1.Value(i) != ps0.Value(i) {
			t.Fatalf("untouched tensor %d cloned instead of aliased", i)
		}
	}
	if ps1.Fingerprint() != ps1.RecomputeFingerprint() {
		t.Fatal("incremental publish fails the torn-params re-hash")
	}
	if ps1.Fingerprint() != nn.NewParamSet(ps1.Version(), m.Params()).Fingerprint() {
		t.Fatal("incremental publish fingerprint differs from a full clone")
	}

	// A no-op publish aliases every tensor of the previous set.
	ps2, err := m.SwapParams(m.Params())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < ps2.NumTensors(); i++ {
		if ps2.Value(i) != ps1.Value(i) {
			t.Fatalf("no-op publish cloned tensor %d", i)
		}
	}
	if ps2.Version() <= ps1.Version() || ps2.Fingerprint() != ps1.Fingerprint() {
		t.Fatalf("no-op publish: version %d->%d fingerprint %016x vs %016x",
			ps1.Version(), ps2.Version(), ps1.Fingerprint(), ps2.Fingerprint())
	}

	// The aliased version serves: scores match a model restored from ps2.
	inf := m.InferBatch(batch)
	defer inf.Release()
	if inf.ParamVersion() != ps2.Version() {
		t.Fatalf("serving version %d, want %d", inf.ParamVersion(), ps2.Version())
	}
}

// TestSwapParamsTakesEffect: after a publish, serving scores must change,
// the version must advance, and the previously obtained set must stay
// bitwise intact (copy-on-write isolation from further training steps).
func TestSwapParamsTakesEffect(t *testing.T) {
	ds := tinyData(9)
	m, err := New(tinyConfig(ds.NumNodes))
	if err != nil {
		t.Fatal(err)
	}
	m.EvalStream(ds.Events[:200], nil)
	batch := ds.Events[200:220]

	v0 := m.ParamVersion()
	ps0 := m.CurrentParams()
	inf := m.InferBatch(batch)
	before := append([]float32(nil), inf.Scores...)
	if inf.ParamVersion() != v0 {
		t.Fatalf("inference pinned version %d, current %d", inf.ParamVersion(), v0)
	}
	inf.Release()

	for _, p := range m.Params() {
		for j := range p.W.Data {
			p.W.Data[j] += 0.01
		}
	}
	ps1, err := m.SwapParams(m.Params())
	if err != nil {
		t.Fatal(err)
	}
	if ps1.Version() <= v0 || m.ParamVersion() != ps1.Version() {
		t.Fatalf("version did not advance: %d -> %d (current %d)", v0, ps1.Version(), m.ParamVersion())
	}
	if ps0.RecomputeFingerprint() != ps0.Fingerprint() {
		t.Fatal("publishing a new set mutated the previous one in place")
	}
	inf = m.InferBatch(batch)
	defer inf.Release()
	if inf.ParamVersion() != ps1.Version() {
		t.Fatalf("inference pinned stale version %d, want %d", inf.ParamVersion(), ps1.Version())
	}
	changed := false
	for i := range before {
		if before[i] != inf.Scores[i] {
			changed = true
			break
		}
	}
	if !changed {
		t.Fatal("scores unchanged after swapping perturbed parameters")
	}
}
