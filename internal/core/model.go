package core

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"apan/internal/dataset"
	"apan/internal/eval"
	"apan/internal/gdb"
	"apan/internal/mailbox"
	"apan/internal/nn"
	"apan/internal/state"
	"apan/internal/tensor"
	"apan/internal/tgraph"
	"apan/internal/wal"
)

// Model is the full APAN system: attention encoder and link decoder on the
// synchronous path, mail propagator on the asynchronous path, with the
// node-state and mailbox stores in between.
//
// Concurrency: the stores are sharded and lock-striped (Config.Shards), so
// any number of goroutines may run InferBatch, Embed and ApplyInference
// concurrently — readers and writers contend only when they touch the same
// shard. Parameters are versioned: the serving paths read an atomically
// published immutable snapshot (see SwapParams), so a background trainer can
// hot-swap weights while serving continues. The deprecated offline entry
// points (TrainEpoch and the Eval/Collect streams) mutate the model's own
// parameter copy in place and are not safe to run concurrently with each
// other or with SwapParams on the same tensors.
type Model struct {
	Cfg Config

	rng  *rand.Rand
	enc  *Encoder
	dec  *LinkDecoder
	st   *state.Sharded
	mbox *mailbox.Sharded
	db   *gdb.DB
	prop *Propagator
	opt  *nn.Adam

	// cur is the published parameter generation the serving hot paths score
	// with: InferBatch/Embed load it exactly once per pass, so every result
	// is attributable to one version. verCounter allocates publish versions.
	cur        atomic.Pointer[paramVersion]
	verCounter atomic.Uint64

	// storeMu is a latch, not a data lock: every per-batch operation
	// (InferBatch, ApplyInference, Embed, processBatch) holds it SHARED —
	// readers and writers alike — because per-node safety already comes from
	// the stores' shard locks. Exclusive acquisition is reserved for
	// operations that may swap the stores' backing arrays or replace the
	// graph wholesale: node admission (EnsureNodes), Reset/Restore and
	// checkpoint load. Checkpoint CUTS no longer take it exclusively — they
	// hold it shared and quiesce only the appliers via applyMu, so scoring
	// proceeds during a snapshot.
	//
	// Lock order: storeMu → applyMu → (shard locks | graphMu → partition
	// locks). Every acquisition sequence is strictly nested in that order;
	// none re-enters an earlier lock, which is what makes the latch trio
	// deadlock-free. "Partition locks" are the per-partition RWMutexes of a
	// sharded graph backend (tgraph.Sharded), taken inside graph calls; with
	// a concurrency-safe backend graphMu itself is elided on graph reads and
	// on WAL-free applies (see graphSafe), which shortens but never reorders
	// the chain.
	storeMu sync.RWMutex

	// applyMu is the apply gate: the asynchronous link's mutators
	// (ApplyInference, processBatch's write-back span) hold it SHARED for
	// the whole batch mutation — state writes, WAL append, graph insert and
	// mail propagation as one atomic unit. A durability cut (checkpoint,
	// SnapshotRuntime, RuntimeDigest) holds it EXCLUSIVELY, so the cut
	// always lands on a batch boundary: no checkpoint can capture state
	// from batch k+1 next to a graph at batch k, and the WAL watermark it
	// pins is replayable with original batch boundaries. Scorers
	// (InferBatch, Embed, GatherInputs) never touch applyMu — a snapshot
	// pauses appliers for a memcpy, never inference.
	applyMu sync.RWMutex

	// graphMu serializes temporal-graph access (insert + k-hop queries) on
	// the asynchronous link when the configured backend is not
	// concurrency-safe (the flat store). With a concurrency-safe backend
	// (graphSafe below) graph reads skip it and WAL-free appliers run
	// concurrently; graphMu is still taken around WAL Begin + graph insert,
	// because the WAL's contract is that log order equals graph order and
	// that needs a serial apply point.
	graphMu sync.Mutex

	// graphSafe caches db.G.ConcurrentSafe() at construction: true when the
	// graph backend synchronizes internally (sharded, remote-sim), enabling
	// the graphMu elisions above. Immutable after New.
	graphSafe bool

	// wal, when attached, records every batch entering the graph, Begin'd
	// under graphMu immediately before the insert — the serial apply point —
	// so WAL order equals graph order for any worker count. Guarded by
	// graphMu.
	wal *wal.Log

	// ckptMu guards the incremental-checkpoint base retained between cuts
	// and the last-cut accounting (see cut.go). checkpointCut takes it
	// ahead of the latch trio — extending the lock order to ckptMu →
	// storeMu → applyMu — and nothing else acquires it while holding any
	// model lock, so the chain stays acyclic.
	ckptMu     sync.Mutex
	ckptStBase *state.ShardedSnapshot
	ckptMbBase *mailbox.ShardedSnapshot
	ckptGGens  []uint64
	lastCut    CutStats

	// explainMu guards the per-pass attention record below, which Explain
	// reads and every forward pass overwrites. The record is a copy: the
	// attention weights a pass produces live in pooled tape storage that is
	// recycled when the pass's workspace is released, so setExplain copies
	// them into these model-owned buffers (grown once, then reused).
	explainMu sync.Mutex
	explain   explainRec

	// wsMu/wsFree recycle inference workspaces (gather buffers + reusable
	// tape + score output) across InferBatch/Embed calls and goroutines.
	// This is a plain mutex-guarded stack, NOT a sync.Pool: a sync.Pool's
	// per-P private slots are invisible to Gets on other Ps and its contents
	// are discarded across GC cycles, so under GOMAXPROCS > 1 a steady
	// stream of concurrent scorers kept missing and constructing fresh
	// workspaces — each re-paying the full tape/matrix warm-up (the
	// infer_parallel_p4/p8 allocation regression). The stack never loses a
	// warm workspace, holds at most as many as the peak scorer concurrency,
	// and its ~ns critical section is noise next to a ms-scale forward pass.
	wsMu   sync.Mutex
	wsFree []*inferWorkspace

	// ev is the cold-state evictor bounding the warm working set
	// (Config.EvictMaxNodes; see evict.go). Nil when eviction is disabled —
	// the default — in which case every eviction hook is a no-op and the
	// model's behavior is bitwise unchanged.
	ev *evictor
}

// explainRec is the model-owned copy of the most recent forward pass's
// attention, sized by the pass that wrote it.
type explainRec struct {
	valid        bool
	heads, slots int
	version      uint64 // parameter version of the recording pass (0: offline)
	weights      []float32
	nodes        []tgraph.NodeID
	counts       []int
}

// New builds an APAN model with a fresh graph store selected by
// cfg.GraphBackend (flat by default; see the GraphBackend* constants).
func New(cfg Config) (*Model, error) {
	if err := cfg.Normalize(); err != nil {
		return nil, err
	}
	return NewWithDB(cfg, gdb.New(NewGraphStore(cfg)))
}

// NewGraphStore builds the tgraph.Store selected by cfg.GraphBackend. The
// sharded backends stripe across cfg.Shards partitions — the same stripe
// count as the state/mailbox stores. The remote-sim backend wraps the
// sharded store in gdb.Remote with a per-item RPC latency model in
// accumulate-only mode (Sleep off), so its results and digests stay
// bit-identical to the in-process backends while /v1/stats-style accounting
// reflects the Figure 6 deployment. cfg should be normalized; an unknown
// backend falls back to flat, which Normalize has already rejected.
func NewGraphStore(cfg Config) tgraph.Store {
	switch cfg.GraphBackend {
	case GraphBackendSharded:
		return tgraph.NewSharded(cfg.NumNodes, cfg.Shards)
	case GraphBackendRemoteSim:
		return gdb.NewRemote(tgraph.NewSharded(cfg.NumNodes, cfg.Shards),
			gdb.RemoteOptions{Latency: gdb.PerItem(100*time.Microsecond, time.Microsecond)})
	default:
		return tgraph.New(cfg.NumNodes)
	}
}

// backendName maps a store's concrete type back to its GraphBackend
// selector, so models built through NewWithDB report the store they
// actually hold.
func backendName(s tgraph.Store) (string, bool) {
	switch s.(type) {
	case *tgraph.Graph:
		return GraphBackendFlat, true
	case *tgraph.Sharded:
		return GraphBackendSharded, true
	case *gdb.Remote:
		return GraphBackendRemoteSim, true
	}
	return "", false
}

// NewWithDB builds an APAN model on top of an existing graph database
// wrapper (e.g. one with a simulated latency model).
func NewWithDB(cfg Config, db *gdb.DB) (*Model, error) {
	if err := cfg.Normalize(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	dec := NewLinkDecoder(cfg.EdgeDim, cfg.Hidden, cfg.Dropout, rng)
	if cfg.MLPDecoder {
		dec = NewMLPLinkDecoder(cfg.EdgeDim, cfg.Hidden, cfg.Dropout, rng)
	}
	m := &Model{
		Cfg:  cfg,
		rng:  rng,
		enc:  NewEncoder(cfg, rng),
		dec:  dec,
		st:   state.NewSharded(cfg.NumNodes, cfg.EdgeDim, cfg.Shards),
		mbox: mailbox.NewSharded(cfg.NumNodes, cfg.Slots, cfg.EdgeDim, cfg.Shards),
		db:   db,
	}
	m.graphSafe = db.G.ConcurrentSafe()
	if name, ok := backendName(db.G); ok {
		m.Cfg.GraphBackend = name
	}
	if cfg.KeyValueMailbox {
		m.mbox.SetRule(mailbox.UpdateKeyValue)
	}
	if cfg.EvictMaxNodes > 0 {
		m.ev = newEvictor(cfg.EvictMaxNodes)
	}
	m.prop = NewPropagator(cfg, db, m.mbox)
	m.opt = nn.NewAdam(m.Params(), cfg.LR)
	m.publishOwn()
	return m, nil
}

// Name identifies the model variant by propagation depth, matching the
// labels of the paper's figures.
func (m *Model) Name() string {
	if m.Cfg.Hops == 1 {
		return "APAN-1layer"
	}
	return "APAN-2layers"
}

// Params returns every trainable tensor of the model's own parameter copy —
// the one the deprecated offline entry points step in place. The serving
// paths do not read these tensors; they read the published snapshot (see
// SwapParams/CurrentParams). Online trainers keep their own private copy and
// never touch this one.
func (m *Model) Params() []*nn.Tensor {
	return append(m.enc.Params(), m.dec.Params()...)
}

// DB exposes the underlying graph database wrapper (for accounting).
func (m *Model) DB() *gdb.DB { return m.db }

// GraphEvents returns the number of events applied to the temporal graph —
// the serving watermark — safely with respect to concurrent propagation: a
// concurrency-safe backend answers under its own log lock, a flat one under
// the model's graph mutex.
func (m *Model) GraphEvents() int {
	if m.graphSafe {
		return m.db.G.NumEvents()
	}
	m.graphMu.Lock()
	defer m.graphMu.Unlock()
	return m.db.G.NumEvents()
}

// GraphBackend reports which graph-store backend the model runs on (one of
// the GraphBackend* constants, or Config.GraphBackend's original value for
// a custom NewWithDB store).
func (m *Model) GraphBackend() string { return m.Cfg.GraphBackend }

// Mailbox exposes the sharded mailbox store. Its per-node operations are
// safe to call concurrently with serving.
func (m *Model) Mailbox() *mailbox.Sharded { return m.mbox }

// State exposes the sharded node-state store. Its per-node operations are
// safe to call concurrently with serving.
func (m *Model) State() *state.Sharded { return m.st }

// Propagator exposes the asynchronous-link implementation.
func (m *Model) Propagator() *Propagator { return m.prop }

// GatherInputs reads z(t−) and the timestamp-sorted mailboxes of nodes at
// the given query times under the shared store latch — the read-only view an
// online trainer uses to build mini-batch inputs from the live streaming
// state without blocking serving (it contends only per shard, like any other
// reader). The returned bundle is freshly allocated and owned by the caller.
func (m *Model) GatherInputs(nodes []tgraph.NodeID, times []float64) *EncodeInput {
	m.storeMu.RLock()
	defer m.storeMu.RUnlock()
	return ReadInputsParallel(m.st, m.mbox, nodes, times, 1)
}

// GatherInputsInto is GatherInputs reusing the caller's bundle and timestamp
// scratch across calls, so a steady-state online trainer assembles
// mini-batch inputs without allocating. All buffers are grown in place as
// needed; mail rows past each node's valid count are explicitly zeroed, so
// the bundle is indistinguishable from a freshly allocated one.
func (m *Model) GatherInputsInto(in *EncodeInput, ts *[]float64, nodes []tgraph.NodeID, times []float64) {
	m.storeMu.RLock()
	defer m.storeMu.RUnlock()
	b := len(nodes)
	d := m.st.Dim()
	sl := m.mbox.Slots()
	in.Nodes = nodes
	in.Times = times
	in.ZPrev = growMatrixRaw(in.ZPrev, b, d)
	in.Mails = growMatrixRaw(in.Mails, b*sl, d)
	in.DTs = grow(in.DTs, b*sl)
	clear(in.DTs)
	in.Counts = grow(in.Counts, b)
	*ts = grow(*ts, sl)
	gatherInto(m.st, m.mbox, nodes, times, 1, in, *ts)
	// Stale data in the reused Mails rows past each node's valid count would
	// leak into the encoder (fresh gathers hand it zeros there); clear them.
	for i, c := range in.Counts[:b] {
		if c < sl {
			clear(in.Mails.Data[(i*sl+c)*d : (i+1)*sl*d])
		}
	}
}

// growMatrixRaw resizes mx to rows×cols, reusing its backing array when it
// fits. Contents are unspecified — the caller must overwrite every row it
// reads.
func growMatrixRaw(mx *tensor.Matrix, rows, cols int) *tensor.Matrix {
	if mx == nil || cap(mx.Data) < rows*cols {
		return tensor.New(rows, cols)
	}
	mx.Rows, mx.Cols = rows, cols
	mx.Data = mx.Data[:rows*cols]
	return mx
}

// NumNodes returns the current node-ID space, which EnsureNodes may have
// grown past Cfg.NumNodes.
func (m *Model) NumNodes() int {
	m.storeMu.RLock()
	defer m.storeMu.RUnlock()
	return m.Cfg.NumNodes
}

// EnsureNodes grows the node-ID space to at least n nodes, so events naming
// previously unseen IDs can be scored and propagated: the state store,
// mailbox store and temporal graph are all extended (new nodes start with
// zero state and empty mailboxes — exactly how an unseen node looks to the
// encoder, which therefore produces its inductive cold-start embedding).
// Safe to call concurrently with serving; it briefly stops the world.
// No-op when n ≤ NumNodes.
func (m *Model) EnsureNodes(n int) {
	m.storeMu.Lock()
	defer m.storeMu.Unlock()
	m.ensureNodesLocked(n)
}

func (m *Model) ensureNodesLocked(n int) {
	if n <= m.Cfg.NumNodes {
		return
	}
	m.st.Grow(n)
	m.mbox.Grow(n)
	m.db.G.Grow(n)
	m.Cfg.NumNodes = n
}

// ResetRuntime clears all streaming state — node embeddings, mailboxes and
// the temporal graph — as done at the start of every training epoch. Model
// parameters and the (possibly grown) node-ID space are kept.
func (m *Model) ResetRuntime() {
	m.storeMu.Lock()
	defer m.storeMu.Unlock()
	m.st.Reset()
	m.mbox.Reset()
	// Reset in place: the model keeps the same Store value across runtime
	// resets, so the configured backend (flat, sharded, remote-sim) survives.
	m.db.G.Reset(m.Cfg.NumNodes)
	m.db.ResetStats()
	m.resetEvictor()
}

// Snapshot captures the streaming state for later Restore (parameters are
// not included; they are shared).
type Snapshot struct {
	st   *state.ShardedSnapshot
	mb   *mailbox.ShardedSnapshot
	gcut int // number of graph events at snapshot time
}

// SnapshotRuntime captures state, mailbox and the graph watermark as one
// consistent, batch-aligned cut — without blocking inference. The store
// latch is held SHARED and the stores are cloned under shard read locks,
// so concurrent InferBatch calls proceed; only the appliers pause, for the
// duration of a memcpy-speed clone (see applyMu).
func (m *Model) SnapshotRuntime() *Snapshot {
	st, mb, events, _ := m.runtimeCut()
	return &Snapshot{st: st, mb: mb, gcut: len(events)}
}

// runtimeCut captures the durability cut every snapshot-like operation
// shares: deep copies of both stores plus the graph's event-log prefix,
// all at the same batch boundary. Scoring continues throughout — the cut
// holds the store latch shared and takes only shard READ locks — while the
// apply gate pauses the asynchronous link for the clone. The returned
// event slice is a zero-copy immutable prefix of the append-only log (see
// tgraph.EventLog); its length is the cut's watermark.
func (m *Model) runtimeCut() (st *state.ShardedSnapshot, mb *mailbox.ShardedSnapshot, events []tgraph.Event, numNodes int) {
	m.storeMu.RLock()
	defer m.storeMu.RUnlock()
	m.applyMu.Lock()
	defer m.applyMu.Unlock()
	numNodes = m.Cfg.NumNodes
	st = m.st.SnapshotShared()
	mb = m.mbox.SnapshotShared()
	// The exclusive apply gate above already quiesced every writer; the flat
	// backend still wants graphMu for the read itself (it has no internal
	// synchronization), a concurrency-safe one reads under its own log lock.
	if m.graphSafe {
		g := m.db.G
		events = g.EventLog()[:g.NumEvents()]
	} else {
		m.graphMu.Lock()
		g := m.db.G
		events = g.EventLog()[:g.NumEvents()]
		m.graphMu.Unlock()
	}
	return st, mb, events, numNodes
}

// RestoreRuntime rolls the streaming state back to snap, including the
// node-ID space as of snapshot time (nodes admitted since are forgotten).
// The graph is rebuilt from its event log prefix.
func (m *Model) RestoreRuntime(snap *Snapshot) {
	m.storeMu.Lock()
	defer m.storeMu.Unlock()
	m.st.Restore(snap.st)
	m.mbox.Restore(snap.mb)
	m.Cfg.NumNodes = m.st.NumNodes()
	// Capture the replay prefix before Reset: the log is append-only and
	// Reset replaces (never overwrites) its backing array, so the captured
	// slice keeps the snapshot's events while the same Store value — and
	// with it the configured backend — is rebuilt in place.
	g := m.db.G
	events := g.EventLog()[:snap.gcut]
	g.Reset(m.Cfg.NumNodes)
	for i := range events {
		g.AddEvent(events[i])
	}
	// Evictor tracking describes the pre-restore stores; drop it. Restored
	// warm nodes rejoin the LRU as the stream touches them.
	m.resetEvictor()
}

// batchPlan is the node bookkeeping for one batch of events.
type batchPlan struct {
	nodes  []tgraph.NodeID
	times  []float64
	rowOf  map[tgraph.NodeID]int
	srcRow []int32
	dstRow []int32
	negRow []int32
	negs   []tgraph.NodeID
}

// reset readies the plan for reuse, keeping map buckets and slice capacity.
func (p *batchPlan) reset(sizeHint int) {
	if p.rowOf == nil {
		p.rowOf = make(map[tgraph.NodeID]int, sizeHint)
	} else {
		clear(p.rowOf)
	}
	p.nodes = p.nodes[:0]
	p.times = p.times[:0]
	p.srcRow = p.srcRow[:0]
	p.dstRow = p.dstRow[:0]
	p.negRow = p.negRow[:0]
	p.negs = p.negs[:0]
}

// planBatch deduplicates batch nodes (each node encoded once, §3.2) and,
// when withNegs is set, draws one negative destination per event.
func (m *Model) planBatch(events []tgraph.Event, ns *dataset.NegSampler, withNegs bool) *batchPlan {
	p := &batchPlan{}
	m.planBatchInto(p, events, ns, withNegs)
	return p
}

// planBatchInto is planBatch writing into a caller-owned (reusable) plan.
func (m *Model) planBatchInto(p *batchPlan, events []tgraph.Event, ns *dataset.NegSampler, withNegs bool) {
	p.reset(3 * len(events))
	row := func(n tgraph.NodeID, t float64) int32 {
		if r, ok := p.rowOf[n]; ok {
			if t > p.times[r] {
				p.times[r] = t
			}
			return int32(r)
		}
		r := len(p.nodes)
		p.rowOf[n] = r
		p.nodes = append(p.nodes, n)
		p.times = append(p.times, t)
		return int32(r)
	}
	for _, ev := range events {
		p.srcRow = append(p.srcRow, row(ev.Src, ev.Time))
		p.dstRow = append(p.dstRow, row(ev.Dst, ev.Time))
	}
	if !withNegs {
		return
	}
	for _, ev := range events {
		var neg tgraph.NodeID
		if ns != nil {
			neg = ns.Sample(m.rng, ev.Dst)
		} else {
			neg = tgraph.NodeID(m.rng.Intn(m.Cfg.NumNodes))
		}
		p.negs = append(p.negs, neg)
		p.negRow = append(p.negRow, row(neg, ev.Time))
	}
}

// BatchResult reports one processed batch.
type BatchResult struct {
	Loss      float64
	PosScores []float32
	NegScores []float32
	// SyncTime is the wall time of the synchronous link only: reading
	// state/mailbox, encoder and decoder forward. Propagation and parameter
	// updates are excluded.
	SyncTime time.Duration
}

// processBatch runs one batch end to end. When train is true it also
// backpropagates and applies an optimizer step. collect, when non-nil, is
// invoked with the fresh embeddings of each event's endpoints.
func (m *Model) processBatch(events []tgraph.Event, ns *dataset.NegSampler, train bool, collect func(ev *tgraph.Event, zsrc, zdst []float32)) BatchResult {
	plan := m.planBatch(events, ns, true)

	start := time.Now()
	m.storeMu.RLock()
	in := ReadInputsParallel(m.st, m.mbox, plan.nodes, plan.times, m.Cfg.InferWorkers)
	m.storeMu.RUnlock()
	var tp *nn.Tape
	if train {
		tp = nn.NewTrainingTape(m.rng)
	} else {
		tp = nn.NewTape()
	}
	z, att := m.enc.Forward(tp, in)
	zsrc := tp.Gather(z, plan.srcRow)
	zdst := tp.Gather(z, plan.dstRow)
	zneg := tp.Gather(z, plan.negRow)
	posLogits := m.dec.Forward(tp, zsrc, zdst)
	negLogits := m.dec.Forward(tp, zsrc, zneg)
	syncTime := time.Since(start)

	n := len(events)
	ones := make([]float32, n)
	zeros := make([]float32, n)
	for i := range ones {
		ones[i] = 1
	}
	posLoss := tp.BCEWithLogits(posLogits, ones)
	negLoss := tp.BCEWithLogits(negLogits, zeros)
	loss := tp.Scale(tp.Add(posLoss, negLoss), 0.5)

	if train {
		tp.Backward(loss)
		nn.ClipGradNorm(m.Params(), 5)
		m.opt.Step()
		m.opt.ZeroGrad()
	}

	res := BatchResult{
		Loss:      float64(loss.Value().Data[0]),
		PosScores: make([]float32, n),
		NegScores: make([]float32, n),
		SyncTime:  syncTime,
	}
	for i := 0; i < n; i++ {
		res.PosScores[i] = tensor.Sigmoid32(posLogits.Value().Data[i])
		res.NegScores[i] = tensor.Sigmoid32(negLogits.Value().Data[i])
	}

	// Offline passes run on the model's own mutable parameters, outside any
	// published version — recorded as version 0.
	m.setExplain(att, plan.nodes, in.Counts, 0)

	// Post-inference mutations — state write-back (z(t) becomes z(t−) for
	// the next batch; negative nodes did not interact, so their state is
	// untouched) followed by the asynchronous link run synchronously for
	// determinism: WAL append, graph insert, mail propagation. The whole
	// span holds the apply gate shared so a concurrent checkpoint cut can
	// only land between batches, never between the state write and the
	// graph insert of one batch. The latch stays shared; each Set locks
	// only the node's shard.
	m.storeMu.RLock()
	m.applyMu.RLock()
	for i, ev := range events {
		m.st.Set(ev.Src, z.Value().Row(int(plan.srcRow[i])), ev.Time)
		m.st.Set(ev.Dst, z.Value().Row(int(plan.dstRow[i])), ev.Time)
	}
	if collect != nil {
		for i := range events {
			collect(&events[i], z.Value().Row(int(plan.srcRow[i])), z.Value().Row(int(plan.dstRow[i])))
		}
	}
	m.graphMu.Lock()
	commit := m.logBatchLocked(events)
	m.prop.ProcessBatch(events, m.st)
	m.graphMu.Unlock()
	m.noteTouched(events)
	m.applyMu.RUnlock()
	m.storeMu.RUnlock()
	commit.Wait() // off every model lock; error is latched in the log

	if ns != nil {
		for i := range events {
			ns.Observe(&events[i])
		}
	}
	return res
}

// StreamResult aggregates a pass over an event stream.
type StreamResult struct {
	Loss     float64 // mean batch loss
	Accuracy float64
	AP       float64
	// MaskedAP is the AP restricted to the events selected by the mask of
	// EvalStreamMasked (NaN when no mask or no masked events) — used for the
	// inductive unseen-node evaluation of §4.1.
	MaskedAP float64
	Batches  int
	SyncHist eval.LatencyHist
	Elapsed  time.Duration
}

// runStream processes events chronologically in batches. mask, when
// non-nil, selects the events whose scores additionally feed MaskedAP.
func (m *Model) runStream(events []tgraph.Event, ns *dataset.NegSampler, train bool, collect func(ev *tgraph.Event, zsrc, zdst []float32), mask []bool) StreamResult {
	var res StreamResult
	var scores, mscores []float32
	var labels, mlabels []bool
	start := time.Now()
	bs := m.Cfg.BatchSize
	for lo := 0; lo < len(events); lo += bs {
		hi := lo + bs
		if hi > len(events) {
			hi = len(events)
		}
		br := m.processBatch(events[lo:hi], ns, train, collect)
		res.Loss += br.Loss
		res.Batches++
		res.SyncHist.Add(br.SyncTime)
		for i := range br.PosScores {
			scores = append(scores, br.PosScores[i], br.NegScores[i])
			labels = append(labels, true, false)
			if mask != nil && mask[lo+i] {
				mscores = append(mscores, br.PosScores[i], br.NegScores[i])
				mlabels = append(mlabels, true, false)
			}
		}
	}
	res.Elapsed = time.Since(start)
	if res.Batches > 0 {
		res.Loss /= float64(res.Batches)
	}
	res.Accuracy = eval.Accuracy(scores, labels, 0.5)
	res.AP = eval.AveragePrecision(scores, labels)
	res.MaskedAP = eval.AveragePrecision(mscores, mlabels)
	return res
}

// TrainEpoch trains over one chronological pass of events, stepping the
// model's own parameter copy, and republishes the result so subsequent
// serving passes score with the trained weights. The caller is responsible
// for ResetRuntime at epoch starts.
//
// Deprecated: the offline epoch loop exists for the paper-reproduction
// benchmarks and the pre-training step of a deployment. Long-running serving
// processes should adapt with internal/train.OnlineTrainer, which steps a
// private parameter copy off the propagation path and publishes through
// SwapParams without ever blocking inference.
func (m *Model) TrainEpoch(events []tgraph.Event, ns *dataset.NegSampler) StreamResult {
	res := m.runStream(events, ns, true, nil, nil)
	m.publishOwn()
	return res
}

// EvalStream evaluates link prediction over events without training,
// updating streaming state as it goes (the transductive protocol of the
// paper's Table 2).
func (m *Model) EvalStream(events []tgraph.Event, ns *dataset.NegSampler) StreamResult {
	return m.runStream(events, ns, false, nil, nil)
}

// EvalStreamMasked is EvalStream with an aligned event mask: MaskedAP in the
// result covers only the selected events. Pass Split.NewNodeInTest to get
// the inductive unseen-node AP the paper's datasets are chosen to exercise
// (§4.1: 19%% of Wikipedia's val/test nodes are unseen in training).
func (m *Model) EvalStreamMasked(events []tgraph.Event, mask []bool, ns *dataset.NegSampler) StreamResult {
	return m.runStream(events, ns, false, nil, mask)
}

// CollectStream runs an inference pass invoking collect with the fresh
// embeddings of every event's endpoints (used to train downstream task
// decoders).
func (m *Model) CollectStream(events []tgraph.Event, ns *dataset.NegSampler, collect func(ev *tgraph.Event, zsrc, zdst []float32)) StreamResult {
	return m.runStream(events, ns, false, collect, nil)
}

// Inference is the output of the synchronous link for one served batch: the
// interaction scores plus the fresh embeddings the asynchronous link needs
// to write state and generate mails.
//
// The scores, embeddings and row indices live in a pooled workspace owned
// by this Inference; they stay valid until Release. Call Release once the
// result is fully consumed — after ApplyInference on the serving path — to
// recycle the workspace; never use the Inference (or slices read from it)
// afterwards. Skipping Release is safe but forgoes reuse.
type Inference struct {
	Events []tgraph.Event
	Scores []float32

	nodes   []tgraph.NodeID
	emb     *tensor.Matrix
	srcRow  []int32
	dstRow  []int32
	version uint64
	ws      *inferWorkspace
}

// ParamVersion reports which published parameter version scored this batch.
// The whole pass ran on that one immutable snapshot — pinned at entry, so a
// concurrent SwapParams cannot mix versions within a batch.
func (inf *Inference) ParamVersion() uint64 { return inf.version }

// Release returns the Inference's workspace (embeddings, scores, tape
// storage) to the model for reuse. The caller must be done with
// ApplyInference and with every slice obtained from the Inference.
//
// Release must be called at most once per InferBatch result, by whoever
// owns it last. A duplicate call *before* the model reuses the workspace
// is a harmless no-op (the first call clears the struct), and Release on
// an Inference from a pool-disabled model never recycles anything — but
// once the workspace has been re-acquired by another InferBatch, the old
// pointer aliases the new pass's live Inference, so a late duplicate
// Release is a use-after-free-style bug, exactly like touching any other
// released buffer. In short: after Release, drop every reference.
func (inf *Inference) Release() {
	ws := inf.ws
	if ws == nil {
		return
	}
	*inf = Inference{}
	ws.release()
}

// InferBatch runs only the synchronous link on a batch: read mailboxes and
// state, encode, decode. No graph access, no state mutation — this is the
// millisecond path of the deployed system. Hand the result to ApplyInference
// (directly or through async.Pipeline) to run the asynchronous link.
//
// InferBatch is safe to call from any number of goroutines concurrently with
// itself, with ApplyInference and with SwapParams: the gather takes only
// shard read locks (plus the shared latch), the forward pass works on
// copies, and the parameter version is pinned by a single atomic load at
// entry — the entire pass scores with that one immutable snapshot. With
// Config.InferWorkers > 1 the gather itself additionally fans out across
// goroutines.
func (m *Model) InferBatch(events []tgraph.Event) *Inference {
	pv := m.cur.Load()
	ws := m.acquireWorkspace()
	m.planBatchInto(&ws.plan, events, nil, false)
	m.storeMu.RLock()
	ws.gather(m.st, m.mbox, ws.plan.nodes, ws.plan.times, m.Cfg.InferWorkers)
	m.storeMu.RUnlock()
	tp := ws.tape
	tp.SetQuantized(pv.quant)
	z, att := pv.enc.Forward(tp, &ws.in)
	zsrc := tp.Gather(z, ws.plan.srcRow)
	zdst := tp.Gather(z, ws.plan.dstRow)
	logits := pv.dec.Forward(tp, zsrc, zdst)
	m.setExplain(att, ws.plan.nodes, ws.in.Counts, pv.set.Version())
	ws.scores = grow(ws.scores, len(events))
	for i := range ws.scores {
		ws.scores[i] = tensor.Sigmoid32(logits.Value().Data[i])
	}
	ws.inf = Inference{
		Events:  events,
		Scores:  ws.scores,
		nodes:   ws.plan.nodes,
		emb:     z.Value(),
		srcRow:  ws.plan.srcRow,
		dstRow:  ws.plan.dstRow,
		version: pv.set.Version(),
		ws:      ws,
	}
	return &ws.inf
}

// ApplyInference performs the post-inference mutations for a served batch:
// state writes, graph insert and mail propagation, reusing the embeddings
// computed by InferBatch. In the deployed system this runs on the
// asynchronous link.
//
// Safe to call concurrently with InferBatch and with other ApplyInference
// calls: state writes and mail deliveries lock only the touched shard, so a
// write burst never stalls synchronous-link reads of other shards. With the
// flat graph backend the temporal graph is the one serialized piece
// (graphMu); a concurrency-safe backend (sharded, remote-sim) drops that
// too when no WAL is attached, so whole appliers run in parallel, locking
// only the partitions their events touch.
// The batch's mutations happen under the shared apply gate as one unit, so
// a concurrent checkpoint cut lands only on batch boundaries. With a WAL
// attached the batch is logged at the serial apply point (under graphMu,
// immediately before the graph insert — WAL order equals graph order) and
// ApplyInference returns only after the record's commit group is flushed
// per the log's fsync policy; the group-commit wait happens off every model
// lock, so durability I/O never serializes the stores. A WAL I/O error is
// latched in the log (see wal.Log.Err) rather than failing the apply:
// serving degrades to best-effort durability and the operator sees it in
// /v1/stats.
func (m *Model) ApplyInference(inf *Inference) {
	m.storeMu.RLock()
	m.applyMu.RLock()
	for i, ev := range inf.Events {
		m.st.Set(ev.Src, inf.emb.Row(int(inf.srcRow[i])), ev.Time)
		m.st.Set(ev.Dst, inf.emb.Row(int(inf.dstRow[i])), ev.Time)
	}
	var commit wal.Commit
	m.graphMu.Lock()
	if m.graphSafe && m.wal == nil {
		// Concurrency-safe backend, no WAL: there is no serial apply point
		// to protect, so drop graphMu and let appliers propagate in
		// parallel — graph inserts take only the touched partitions' locks,
		// mail deliveries only the recipient's mailbox shard. AttachWAL
		// cannot race us into a half-logged batch: it needs the apply gate
		// exclusively and we hold it shared until the batch is fully
		// applied.
		m.graphMu.Unlock()
		m.prop.ProcessBatch(inf.Events, m.st)
	} else {
		commit = m.logBatchLocked(inf.Events)
		m.prop.ProcessBatch(inf.Events, m.st)
		m.graphMu.Unlock()
	}
	// Eviction is the batch's last mutation, inside the apply gate: a
	// checkpoint cut can never separate a batch's writes from the evictions
	// they trigger.
	m.noteTouched(inf.Events)
	m.applyMu.RUnlock()
	m.storeMu.RUnlock()
	commit.Wait() // off every model lock; error is latched in the log
}

// logBatchLocked appends the batch to the attached WAL, if any. Requires
// graphMu: the caller is about to insert the same events, so the record's
// indices equal the events' graph ids. Returns the zero Commit (whose Wait
// is a no-op) when no WAL is attached.
func (m *Model) logBatchLocked(events []tgraph.Event) wal.Commit {
	if m.wal == nil {
		return wal.Commit{}
	}
	return m.wal.Begin(events)
}

// AttachWAL starts logging every applied batch to l, aligning the log's
// next index to the model's current graph watermark first (a fresh-start
// warmup that predates the log becomes a legal index gap, covered by the
// checkpoint the caller writes before attaching). Attaching a log that is
// already past the watermark fails: recover (RecoverWAL) first, so indices
// stay unique.
func (m *Model) AttachWAL(l *wal.Log) error {
	m.storeMu.RLock()
	defer m.storeMu.RUnlock()
	m.applyMu.Lock()
	defer m.applyMu.Unlock()
	m.graphMu.Lock()
	defer m.graphMu.Unlock()
	if m.wal != nil {
		return fmt.Errorf("core: a WAL is already attached")
	}
	if err := l.AlignTo(uint64(m.db.G.NumEvents())); err != nil {
		return err
	}
	m.wal = l
	return nil
}

// DetachWAL stops logging and returns the previously attached log (nil if
// none) so the caller can Sync or Close it. In-flight batches finish
// logging first: detaching takes the apply gate exclusively.
func (m *Model) DetachWAL() *wal.Log {
	m.storeMu.RLock()
	defer m.storeMu.RUnlock()
	m.applyMu.Lock()
	defer m.applyMu.Unlock()
	m.graphMu.Lock()
	defer m.graphMu.Unlock()
	l := m.wal
	m.wal = nil
	return l
}

// WAL returns the attached write-ahead log, or nil.
func (m *Model) WAL() *wal.Log {
	m.graphMu.Lock()
	defer m.graphMu.Unlock()
	return m.wal
}

// setExplain copies the most recent forward pass's attention into the
// model-owned explain record: the source buffers belong to the pass's
// workspace and are recycled on Release, so the copy is what makes Explain
// safe after the pass's memory is reused. The buffers grow to the largest
// batch seen and then stop allocating.
func (m *Model) setExplain(att *nn.Attention, nodes []tgraph.NodeID, counts []int, version uint64) {
	if m.Cfg.NoExplain {
		return
	}
	m.explainMu.Lock()
	r := &m.explain
	r.valid = att != nil
	r.version = version
	if att != nil {
		r.heads, r.slots = att.Heads(), att.Slots()
		r.weights = append(r.weights[:0], att.Weights...)
		r.nodes = append(r.nodes[:0], nodes...)
		r.counts = append(r.counts[:0], counts...)
	}
	m.explainMu.Unlock()
}

// Embed returns the current temporal embeddings z(t) of the given nodes at
// their query times, with no side effects, computed with the published
// parameter version pinned at entry. This is the public embedding API for
// downstream consumers; like InferBatch it is safe for concurrent use,
// including during SwapParams churn. The returned matrix is a copy owned by
// the caller.
func (m *Model) Embed(nodes []tgraph.NodeID, times []float64) *tensor.Matrix {
	pv := m.cur.Load()
	ws := m.acquireWorkspace()
	m.storeMu.RLock()
	ws.gather(m.st, m.mbox, nodes, times, m.Cfg.InferWorkers)
	m.storeMu.RUnlock()
	ws.tape.SetQuantized(pv.quant)
	z, _ := pv.enc.Forward(ws.tape, &ws.in)
	out := z.Value().Clone()
	ws.release()
	return out
}
