package core

import (
	"apan/internal/nn"
	"apan/internal/tensor"
	"apan/internal/tgraph"
)

// inferWorkspace bundles every buffer one synchronous-link pass needs —
// batch plan, EncodeInput gather buffers, the reusable inference tape with
// its matrix pool, timestamp scratch and the score/Inference output — so a
// warm InferBatch performs zero heap allocation.
//
// Ownership protocol: Model.InferBatch acquires a workspace from the
// model's freelist and returns an *Inference whose every slice and matrix
// (Scores, embeddings, row indices) points into it. The Inference OWNS the
// workspace from that moment: the buffers stay valid until Release is
// called, and Release must happen only after ApplyInference (or whoever
// consumes the result) is done reading. async.Pipeline releases after its
// propagation worker applies the inference; direct Model users who skip
// Release simply leave the workspace to the garbage collector (correct,
// just not recycled).
//
// A workspace is single-owner by construction — it is never shared between
// goroutines while checked out, and the freelist mutex provides the
// happens-before edge between a releasing worker and the next scorer.
type inferWorkspace struct {
	owner *Model // nil for unpooled (Config.NoWorkspacePool) instances

	pool tensor.Pool // backing allocator for the tape and gather matrices
	tape *nn.Tape

	plan   batchPlan
	in     EncodeInput
	dts    []float32
	counts []int
	ts     []float64 // per-lane ReadSorted timestamp scratch (workers·slots)
	scores []float32
	inf    Inference
}

// newInferWorkspace builds a pooled workspace owned by m.
func (m *Model) newInferWorkspace() *inferWorkspace {
	ws := &inferWorkspace{owner: m}
	ws.tape = nn.NewInferenceTape(&ws.pool)
	return ws
}

// acquireWorkspace checks a workspace out of the model's pool, or builds a
// throwaway one when pooling is disabled (the benchmark baseline): the
// throwaway uses a grad-recording tape and fresh buffers, reproducing the
// pre-pooling allocation behavior while running the exact same arithmetic.
func (m *Model) acquireWorkspace() *inferWorkspace {
	if m.Cfg.NoWorkspacePool {
		ws := &inferWorkspace{}
		if m.Cfg.Quantize {
			// The int8 MatMul interception requires a nograd tape; under
			// quantization the unpooled baseline uses a throwaway inference
			// tape (its pool dies with the workspace) instead of NewTape.
			ws.tape = nn.NewInferenceTape(&ws.pool)
		} else {
			ws.tape = nn.NewTape()
		}
		return ws
	}
	m.wsMu.Lock()
	if n := len(m.wsFree); n > 0 {
		ws := m.wsFree[n-1]
		m.wsFree[n-1] = nil
		m.wsFree = m.wsFree[:n-1]
		m.wsMu.Unlock()
		return ws
	}
	m.wsMu.Unlock()
	return m.newInferWorkspace()
}

// release recycles the workspace: the tape returns its matrices to the
// pool, the gather matrices follow, and the workspace goes back to the
// model. No-op for unpooled workspaces.
func (ws *inferWorkspace) release() {
	if ws.owner == nil {
		return
	}
	ws.tape.Reset()
	ws.pool.Put(ws.in.ZPrev)
	ws.pool.Put(ws.in.Mails)
	ws.in = EncodeInput{}
	ws.inf = Inference{}
	m := ws.owner
	m.wsMu.Lock()
	m.wsFree = append(m.wsFree, ws)
	m.wsMu.Unlock()
}

// getMatrixRaw allocates through the workspace pool when pooled, without
// zeroing reused storage. Safe for the gather buffers: ZPrev rows are fully
// overwritten by CopyTo, and the Mails rows beyond a node's mail count are
// masked out of attention (counts) and never influence any output.
func (ws *inferWorkspace) getMatrixRaw(rows, cols int) *tensor.Matrix {
	if ws.owner == nil {
		return tensor.New(rows, cols)
	}
	return ws.pool.GetRaw(rows, cols)
}

// gather fills ws.in with z(t−) and the sorted mailboxes of nodes, reusing
// the workspace buffers (see ReadInputsParallel for the semantics).
func (ws *inferWorkspace) gather(st StateReader, mb MailReader, nodes []tgraph.NodeID, times []float64, workers int) {
	b := len(nodes)
	d := st.Dim()
	m := mb.Slots()
	lanes := workers
	if lanes < 1 {
		lanes = 1
	}
	ws.in.Nodes = nodes
	ws.in.Times = times
	ws.in.ZPrev = ws.getMatrixRaw(b, d)
	ws.in.Mails = ws.getMatrixRaw(b*m, d)
	ws.dts = grow(ws.dts, b*m)
	ws.counts = grow(ws.counts, b)
	ws.ts = grow(ws.ts, lanes*m)
	in := &ws.in
	in.DTs = ws.dts[:b*m]
	clear(in.DTs) // only valid slots are written below
	in.Counts = ws.counts[:b]
	gatherInto(st, mb, nodes, times, workers, in, ws.ts)
}

// grow reslices s to length n, reallocating (without preserving contents)
// only when capacity falls short.
func grow[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	return s[:n]
}
