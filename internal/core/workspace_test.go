package core

import (
	"fmt"
	"runtime"
	"sync"
	"testing"
	"testing/quick"

	"apan/internal/tgraph"
)

// buildPair returns two models with identical parameters and streamed
// state, one on the pooled zero-allocation inference path and one on the
// allocate-fresh baseline (Config.NoWorkspacePool).
func buildPair(t *testing.T, mutate func(*Config), seed int64) (pooled, unpooled *Model, batch []tgraph.Event) {
	t.Helper()
	ds := tinyData(seed)
	cfg := tinyConfig(ds.NumNodes)
	cfg.Seed = seed
	if mutate != nil {
		mutate(&cfg)
	}
	base := cfg
	base.NoWorkspacePool = true

	var err error
	pooled, err = New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	unpooled, err = New(base)
	if err != nil {
		t.Fatal(err)
	}
	warm := ds.Events[:200]
	pooled.EvalStream(warm, nil)
	unpooled.EvalStream(warm, nil)
	batch = ds.Events[200:240]
	return pooled, unpooled, batch
}

// TestQuickPooledInferenceEquivalence: the pooled workspace + reusable tape
// path must produce bitwise-identical scores and embeddings to the
// allocate-fresh path, across both ψ mailbox rules and all three
// positional-encoding modes, including repeated passes over recycled
// buffers (a dirty workspace must not leak into the next batch).
func TestQuickPooledInferenceEquivalence(t *testing.T) {
	f := func(seedRaw uint8, kv bool, posRaw uint8) bool {
		seed := int64(seedRaw) + 1
		pos := PositionalMode(posRaw % 3)
		pooled, unpooled, batch := buildPair(t, func(c *Config) {
			c.KeyValueMailbox = kv
			c.Positional = pos
		}, seed)

		want := unpooled.InferBatch(batch)
		// Two pooled passes: the second reuses the released workspace.
		first := pooled.InferBatch(batch)
		firstScores := append([]float32(nil), first.Scores...)
		first.Release()
		got := pooled.InferBatch(batch)
		defer got.Release()

		for i := range want.Scores {
			if got.Scores[i] != want.Scores[i] || firstScores[i] != want.Scores[i] {
				t.Logf("seed=%d kv=%v pos=%d event %d: pooled %v/%v vs unpooled %v",
					seed, kv, pos, i, firstScores[i], got.Scores[i], want.Scores[i])
				return false
			}
		}
		for i, v := range want.emb.Data {
			if got.emb.Data[i] != v {
				t.Logf("seed=%d kv=%v pos=%d emb elem %d differs", seed, kv, pos, i)
				return false
			}
		}
		return true
	}
	cfgQ := &quick.Config{MaxCount: 12}
	if testing.Short() {
		cfgQ.MaxCount = 4
	}
	if err := quick.Check(f, cfgQ); err != nil {
		t.Fatal(err)
	}
}

// TestPooledEmbedEquivalence: Embed (which releases its workspace
// immediately) agrees with the unpooled path too.
func TestPooledEmbedEquivalence(t *testing.T) {
	pooled, unpooled, batch := buildPair(t, nil, 3)
	nodes := []tgraph.NodeID{batch[0].Src, batch[0].Dst, batch[1].Src}
	times := []float64{batch[0].Time, batch[0].Time, batch[1].Time}
	a := pooled.Embed(nodes, times)
	b := unpooled.Embed(nodes, times)
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			t.Fatalf("elem %d: pooled %v vs unpooled %v", i, a.Data[i], b.Data[i])
		}
	}
}

// TestExplainSurvivesRelease: the explain record must be a copy of the
// pass's attention, not a pointer into its pooled tape storage. Detection:
// release the pass's workspace, let Embed (which records no explanation)
// reuse it and overwrite the recycled weights buffer, then ask again — a
// record aliasing pooled memory would now read Embed's scratch garbage.
func TestExplainSurvivesRelease(t *testing.T) {
	pooled, _, batch := buildPair(t, nil, 5)
	inf := pooled.InferBatch(batch)
	node := batch[0].Src
	before, ok := pooled.Explain(node)
	if !ok {
		t.Fatalf("no explanation for scored node %d", node)
	}
	inf.Release()
	// Reuse the released workspace without touching the explain record.
	nodes := []tgraph.NodeID{batch[30].Src, batch[30].Dst, batch[31].Src}
	times := []float64{batch[30].Time, batch[30].Time, batch[31].Time}
	pooled.Embed(nodes, times)
	after, ok := pooled.Explain(node)
	if !ok {
		t.Fatalf("explanation vanished after workspace reuse")
	}
	if len(after.MailWeights) != len(before.MailWeights) {
		t.Fatalf("weight count changed %d -> %d", len(before.MailWeights), len(after.MailWeights))
	}
	for i := range before.MailWeights {
		if after.MailWeights[i] != before.MailWeights[i] {
			t.Fatalf("explain record aliased recycled memory: slot %d %v -> %v",
				i, before.MailWeights[i], after.MailWeights[i])
		}
	}
}

// TestNoExplain: with recording disabled, scoring must leave no record.
func TestNoExplain(t *testing.T) {
	pooled, _, batch := buildPair(t, func(c *Config) { c.NoExplain = true }, 5)
	inf := pooled.InferBatch(batch)
	defer inf.Release()
	if _, ok := pooled.Explain(batch[0].Src); ok {
		t.Fatalf("Explain returned a record with NoExplain set")
	}
}

// TestInferBatchZeroAllocSteadyState is the allocation-regression guard of
// the zero-allocation serving hot path: after warm-up, a full
// InferBatch+Release cycle on the pooled inference path must not allocate.
// Guarded to the serial gather (InferWorkers=1): fan-out spawns goroutines,
// which allocate by nature.
func TestInferBatchZeroAllocSteadyState(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation allocates")
	}
	ds := tinyData(1)
	cfg := tinyConfig(ds.NumNodes)
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m.EvalStream(ds.Events[:200], nil)
	batch := ds.Events[200:240]
	// Warm-up: size the workspace, tape arena and explain buffers.
	for i := 0; i < 3; i++ {
		m.InferBatch(batch).Release()
	}
	allocs := testing.AllocsPerRun(50, func() {
		m.InferBatch(batch).Release()
	})
	if allocs > 0 {
		t.Fatalf("steady-state InferBatch allocated %.2f times per op, want 0", allocs)
	}
}

// TestInferBatchZeroAllocQuantized extends the steady-state guard to int8
// quantized serving (Config.Quantize): the int8 weight blocks are cached
// per publish and activation scratch draws from the tape arenas, so the
// quantized pass must be as allocation-free as the float32 one.
func TestInferBatchZeroAllocQuantized(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation allocates")
	}
	ds := tinyData(1)
	cfg := tinyConfig(ds.NumNodes)
	cfg.Quantize = true
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m.EvalStream(ds.Events[:200], nil)
	batch := ds.Events[200:240]
	for i := 0; i < 3; i++ {
		m.InferBatch(batch).Release()
	}
	allocs := testing.AllocsPerRun(50, func() {
		m.InferBatch(batch).Release()
	})
	if allocs > 0 {
		t.Fatalf("steady-state quantized InferBatch allocated %.2f times per op, want 0", allocs)
	}
}

// TestInferBatchZeroAllocParallel extends the zero-alloc guard to
// GOMAXPROCS > 1: concurrent scorers must keep reusing warm workspaces
// instead of constructing fresh ones. This regressed once when the
// workspace recycler was a sync.Pool — per-P private slots plus GC
// clearing made concurrent goroutines miss at steady state, so
// infer_parallel_p4/p8 paid ~6/12 allocs/op while p1 stayed at 0. The
// threshold tolerates sub-0.5 allocs/op of runtime scaffolding
// (scheduler, stack growth) but fails on any systematic per-op miss.
func TestInferBatchZeroAllocParallel(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation allocates")
	}
	ds := tinyData(1)
	cfg := tinyConfig(ds.NumNodes)
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m.EvalStream(ds.Events[:200], nil)
	batch := ds.Events[200:240]

	for _, procs := range []int{4, 8} {
		prev := runtime.GOMAXPROCS(procs)
		const warmOps, ops = 8, 300
		var wg, warmWG sync.WaitGroup
		warmed := make(chan struct{})
		start := make(chan struct{})
		wg.Add(procs)
		warmWG.Add(procs)
		for g := 0; g < procs; g++ {
			go func() {
				defer wg.Done()
				for i := 0; i < warmOps; i++ {
					m.InferBatch(batch).Release()
				}
				warmWG.Done()
				<-warmed
				<-start
				for i := 0; i < ops; i++ {
					m.InferBatch(batch).Release()
				}
			}()
		}
		warmWG.Wait()
		runtime.GC()
		close(warmed)
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		close(start)
		wg.Wait()
		runtime.ReadMemStats(&after)
		runtime.GOMAXPROCS(prev)
		perOp := float64(after.Mallocs-before.Mallocs) / float64(procs*ops)
		if perOp >= 0.5 {
			t.Errorf("procs=%d: steady-state parallel InferBatch allocated %.2f times per op, want ~0", procs, perOp)
		}
	}
}

// TestReleaseIdempotent: double release and release-after-zero must not
// corrupt the pool.
func TestReleaseIdempotent(t *testing.T) {
	pooled, _, batch := buildPair(t, nil, 7)
	inf := pooled.InferBatch(batch)
	inf.Release()
	inf.Release()
	var empty Inference
	empty.Release()
	next := pooled.InferBatch(batch)
	if len(next.Scores) != len(batch) {
		t.Fatalf("pool corrupted after double release")
	}
	next.Release()
}

// TestPropagatorScratchReuse: consecutive ProcessBatch calls must agree
// with a propagator that never reuses scratch (fresh instance per batch).
func TestPropagatorScratchReuse(t *testing.T) {
	for _, reduce := range []MailReduce{ReduceMean, ReduceLatest} {
		t.Run(fmt.Sprintf("reduce=%d", reduce), func(t *testing.T) {
			ds := tinyData(2)
			cfg := tinyConfig(ds.NumNodes)
			cfg.Reduce = reduce
			reused, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			fresh, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			events := ds.Events[:300]
			for lo := 0; lo < len(events); lo += 50 {
				batch := events[lo : lo+50]
				ri := reused.InferBatch(batch)
				reused.ApplyInference(ri)
				ri.Release()
				// Swap in a brand-new propagator each batch on the control
				// model: no cross-batch scratch survives.
				fresh.prop = NewPropagator(fresh.Cfg, fresh.db, fresh.mbox)
				fi := fresh.InferBatch(batch)
				fresh.ApplyInference(fi)
				fi.Release()
			}
			n := []tgraph.NodeID{events[0].Src, events[0].Dst, events[299].Src}
			tm := []float64{events[299].Time, events[299].Time, events[299].Time}
			a, b := reused.Embed(n, tm), fresh.Embed(n, tm)
			for i := range a.Data {
				if a.Data[i] != b.Data[i] {
					t.Fatalf("elem %d: reused-scratch %v vs fresh-propagator %v", i, a.Data[i], b.Data[i])
				}
			}
		})
	}
}
