package core

import (
	"math"
	"testing"

	"apan/internal/dataset"
	"apan/internal/tgraph"
)

func tinyConfig(numNodes int) Config {
	return Config{
		NumNodes:  numNodes,
		EdgeDim:   16,
		Slots:     4,
		Neighbors: 4,
		Hops:      2,
		Heads:     2,
		Hidden:    32,
		BatchSize: 20,
		LR:        0.001,
		Seed:      1,
	}
}

func tinyData(seed int64) *dataset.Dataset {
	d := dataset.Wikipedia(dataset.Config{Scale: 0.01, Seed: seed, NoDrift: true})
	// Shrink features to the test dimension for speed.
	for i := range d.Events {
		d.Events[i].Feat = d.Events[i].Feat[:16]
	}
	d.EdgeDim = 16
	return d
}

func TestConfigDefaults(t *testing.T) {
	cfg := Config{NumNodes: 10, EdgeDim: 8}
	if err := cfg.Normalize(); err != nil {
		t.Fatal(err)
	}
	if cfg.Slots != 10 || cfg.Neighbors != 10 || cfg.Hops != 2 || cfg.Heads != 2 ||
		cfg.Hidden != 80 || cfg.BatchSize != 200 {
		t.Fatalf("defaults not applied: %+v", cfg)
	}
	if cfg.LR != 1e-4 || cfg.Dropout != 0.1 {
		t.Fatalf("lr/dropout defaults: %+v", cfg)
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{NumNodes: 0, EdgeDim: 8},
		{NumNodes: 10, EdgeDim: 0},
		{NumNodes: 10, EdgeDim: 7, Heads: 2},
		{NumNodes: 10, EdgeDim: 8, Slots: -1},
	}
	for i, cfg := range bad {
		if err := cfg.Normalize(); err == nil {
			t.Fatalf("case %d: want error", i)
		}
	}
}

func TestTrainingLearnsLinkPrediction(t *testing.T) {
	d := tinyData(7)
	split := d.Split(0.7, 0.15)
	m, err := New(tinyConfig(d.NumNodes))
	if err != nil {
		t.Fatal(err)
	}

	var firstLoss, lastLoss float64
	var valAP float64
	for epoch := 0; epoch < 10; epoch++ {
		m.ResetRuntime()
		ns := dataset.NewNegSampler(d.NumNodes)
		tr := m.TrainEpoch(split.Train, ns)
		if epoch == 0 {
			firstLoss = tr.Loss
		}
		lastLoss = tr.Loss
		val := m.EvalStream(split.Val, ns)
		valAP = val.AP
	}
	if lastLoss >= firstLoss {
		t.Fatalf("loss did not decrease: %v -> %v", firstLoss, lastLoss)
	}
	// The micro dataset (16-dim truncated features, ~1.5k events) bounds what
	// any model can reach; clearly-above-chance plus a decreasing loss is the
	// correctness signal here. Full-scale quality lives in EXPERIMENTS.md.
	if math.IsNaN(valAP) || valAP < 0.58 {
		t.Fatalf("validation AP too low: %v", valAP)
	}
}

func TestEvalDeterministicAfterSnapshot(t *testing.T) {
	d := tinyData(9)
	split := d.Split(0.7, 0.15)
	m, err := New(tinyConfig(d.NumNodes))
	if err != nil {
		t.Fatal(err)
	}
	m.ResetRuntime()
	ns := dataset.NewNegSampler(d.NumNodes)
	m.TrainEpoch(split.Train, ns)

	snap := m.SnapshotRuntime()
	ns1 := dataset.NewNegSampler(d.NumNodes)
	r1 := m.EvalStream(split.Val, ns1)
	m.RestoreRuntime(snap)
	ns2 := dataset.NewNegSampler(d.NumNodes)
	r2 := m.EvalStream(split.Val, ns2)
	// Scores depend on negative sampling RNG; compare the stateful part:
	// accuracy over positives must match exactly after restore.
	if r1.Batches != r2.Batches {
		t.Fatalf("batch counts differ: %d vs %d", r1.Batches, r2.Batches)
	}
	if math.Abs(r1.Loss-r2.Loss) > 0.05 {
		t.Fatalf("restored eval diverged: loss %v vs %v", r1.Loss, r2.Loss)
	}
}

func TestProcessBatchUpdatesStateAndMailbox(t *testing.T) {
	cfg := tinyConfig(6)
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	feat := make([]float32, 16)
	feat[0] = 1
	events := []tgraph.Event{
		{Src: 0, Dst: 1, Time: 1, Feat: feat},
		{Src: 1, Dst: 2, Time: 2, Feat: feat},
	}
	m.processBatch(events, nil, false, nil)

	for _, n := range []tgraph.NodeID{0, 1, 2} {
		if !m.State().Touched(n) {
			t.Fatalf("node %d state not written", n)
		}
		if m.Mailbox().Len(n) == 0 {
			t.Fatalf("node %d received no mail", n)
		}
	}
	if m.State().Touched(3) {
		t.Fatal("uninvolved node state written")
	}
	if m.DB().G.NumEvents() != 2 {
		t.Fatalf("graph has %d events", m.DB().G.NumEvents())
	}
	if m.State().LastTime(1) != 2 {
		t.Fatalf("node 1 last time %v", m.State().LastTime(1))
	}
}

func TestPropagationReachesTwoHops(t *testing.T) {
	cfg := tinyConfig(8)
	cfg.Hops = 2
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	feat := make([]float32, 16)
	// Build chain 0-1 then 1-2: when (1,2) happens, node 0 is a 1-hop
	// neighbor of node 1 and must receive the mail under k=2.
	m.processBatch([]tgraph.Event{{Src: 0, Dst: 1, Time: 1, Feat: feat}}, nil, false, nil)
	mails0 := m.Mailbox().Len(0)
	m.processBatch([]tgraph.Event{{Src: 1, Dst: 2, Time: 2, Feat: feat}}, nil, false, nil)
	if m.Mailbox().Len(0) != mails0+1 {
		t.Fatalf("2-hop mail not delivered to node 0: %d -> %d", mails0, m.Mailbox().Len(0))
	}

	// With Hops=1 the same setup must NOT reach node 0.
	cfg1 := tinyConfig(8)
	cfg1.Hops = 1
	m1, err := New(cfg1)
	if err != nil {
		t.Fatal(err)
	}
	m1.processBatch([]tgraph.Event{{Src: 0, Dst: 1, Time: 1, Feat: feat}}, nil, false, nil)
	before := m1.Mailbox().Len(0)
	m1.processBatch([]tgraph.Event{{Src: 1, Dst: 2, Time: 2, Feat: feat}}, nil, false, nil)
	if m1.Mailbox().Len(0) != before {
		t.Fatal("1-hop propagation leaked to 2 hops")
	}
}

func TestMeanReduceSingleMailPerBatch(t *testing.T) {
	cfg := tinyConfig(8)
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	feat := make([]float32, 16)
	// Node 0 participates in 3 events in one batch; ρ=mean must leave it
	// with exactly one new mail.
	events := []tgraph.Event{
		{Src: 0, Dst: 1, Time: 1, Feat: feat},
		{Src: 0, Dst: 2, Time: 1.5, Feat: feat},
		{Src: 3, Dst: 0, Time: 2, Feat: feat},
	}
	m.processBatch(events, nil, false, nil)
	if got := m.Mailbox().Len(0); got != 1 {
		t.Fatalf("mean reduction failed: node 0 has %d mails", got)
	}
}

func TestReduceLatestKeepsNewestMail(t *testing.T) {
	cfg := tinyConfig(8)
	cfg.Reduce = ReduceLatest
	cfg.Hops = 1
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	mkFeat := func(v float32) []float32 {
		f := make([]float32, 16)
		f[0] = v
		return f
	}
	// Two events touch node 0 in one batch; ρ=latest must keep only the
	// second event's mail.
	events := []tgraph.Event{
		{Src: 0, Dst: 1, Time: 1, Feat: mkFeat(10)},
		{Src: 0, Dst: 2, Time: 2, Feat: mkFeat(20)},
	}
	m.processBatch(events, nil, false, nil)
	if got := m.Mailbox().Len(0); got != 1 {
		t.Fatalf("mail count %d", got)
	}
	buf := make([]float32, cfg.Slots*16)
	ts := make([]float64, cfg.Slots)
	m.Mailbox().ReadSorted(0, buf, ts)
	if ts[0] != 2 {
		t.Fatalf("latest reduction kept ts %v", ts[0])
	}
	// The mail is z0+e+z2 with e[0]=20; embeddings are tiny at init, so the
	// first channel must reflect the newer feature, not 10 or the mean 15.
	if buf[0] < 15 {
		t.Fatalf("latest reduction kept wrong mail: %v", buf[0])
	}
}

func TestInferBatchHasNoSideEffects(t *testing.T) {
	cfg := tinyConfig(6)
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	feat := make([]float32, 16)
	warm := []tgraph.Event{{Src: 0, Dst: 1, Time: 1, Feat: feat}}
	m.processBatch(warm, nil, false, nil)

	events := []tgraph.Event{{Src: 1, Dst: 2, Time: 2, Feat: feat}}
	gBefore := m.DB().G.NumEvents()
	mailsBefore := m.Mailbox().Len(1)
	inf := m.InferBatch(events)
	if len(inf.Scores) != 1 || inf.Scores[0] < 0 || inf.Scores[0] > 1 {
		t.Fatalf("bad scores: %v", inf.Scores)
	}
	if m.DB().G.NumEvents() != gBefore || m.Mailbox().Len(1) != mailsBefore {
		t.Fatal("InferBatch mutated state")
	}
	if m.State().Touched(2) {
		t.Fatal("InferBatch wrote node state")
	}

	// ApplyInference performs the deferred mutations.
	m.ApplyInference(inf)
	if m.DB().G.NumEvents() != gBefore+1 {
		t.Fatal("ApplyInference did not insert event")
	}
	if !m.State().Touched(2) {
		t.Fatal("ApplyInference did not write state")
	}
}

func TestEmbedNoSideEffects(t *testing.T) {
	cfg := tinyConfig(6)
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	feat := make([]float32, 16)
	m.processBatch([]tgraph.Event{{Src: 0, Dst: 1, Time: 1, Feat: feat}}, nil, false, nil)
	z1 := m.Embed([]tgraph.NodeID{0, 1, 5}, []float64{2, 2, 2})
	z2 := m.Embed([]tgraph.NodeID{0, 1, 5}, []float64{2, 2, 2})
	if z1.Rows != 3 || z1.Cols != 16 {
		t.Fatalf("embed shape %dx%d", z1.Rows, z1.Cols)
	}
	for i := range z1.Data {
		if z1.Data[i] != z2.Data[i] {
			t.Fatal("Embed not idempotent")
		}
	}
}

func TestExplainWeights(t *testing.T) {
	cfg := tinyConfig(6)
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	feat := make([]float32, 16)
	feat[3] = 2
	// Two warm-up batches give node 0 two mails, then an inference over it.
	m.processBatch([]tgraph.Event{{Src: 0, Dst: 1, Time: 1, Feat: feat}}, nil, false, nil)
	m.processBatch([]tgraph.Event{{Src: 0, Dst: 2, Time: 2, Feat: feat}}, nil, false, nil)
	m.InferBatch([]tgraph.Event{{Src: 0, Dst: 1, Time: 3, Feat: feat}})

	ex, ok := m.Explain(0)
	if !ok {
		t.Fatal("explain missing for batch node")
	}
	if len(ex.MailWeights) != 2 {
		t.Fatalf("want 2 mail weights, got %d", len(ex.MailWeights))
	}
	var sum float32
	for _, w := range ex.MailWeights {
		if w < 0 || w > 1 {
			t.Fatalf("weight out of range: %v", w)
		}
		sum += w
	}
	if sum < 0.99 || sum > 1.01 {
		t.Fatalf("weights sum %v", sum)
	}
	if _, ok := m.Explain(5); ok {
		t.Fatal("explain should miss for absent node")
	}
}

func TestOutOfOrderRobustness(t *testing.T) {
	// Mails delivered out of timestamp order must produce the same encoder
	// input as in-order delivery, thanks to sorted readout (§3.6).
	cfg := tinyConfig(4)
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	mk := func(v float32) []float32 {
		f := make([]float32, 16)
		f[0] = v
		return f
	}
	// In-order model.
	a, _ := New(cfg)
	a.Mailbox().Deliver(0, mk(1), 1)
	a.Mailbox().Deliver(0, mk(2), 2)
	a.Mailbox().Deliver(0, mk(3), 3)
	// Out-of-order model.
	m.Mailbox().Deliver(0, mk(3), 3)
	m.Mailbox().Deliver(0, mk(1), 1)
	m.Mailbox().Deliver(0, mk(2), 2)

	za := a.Embed([]tgraph.NodeID{0}, []float64{4})
	zm := m.Embed([]tgraph.NodeID{0}, []float64{4})
	for i := range za.Data {
		if za.Data[i] != zm.Data[i] {
			t.Fatal("out-of-order delivery changed the embedding")
		}
	}
}

func TestEvalStreamMaskedInductiveAP(t *testing.T) {
	d := tinyData(17)
	split := d.Split(0.7, 0.15)
	m, err := New(tinyConfig(d.NumNodes))
	if err != nil {
		t.Fatal(err)
	}
	m.ResetRuntime()
	ns := dataset.NewNegSampler(d.NumNodes)
	m.TrainEpoch(split.Train, ns)
	m.EvalStream(split.Val, ns)
	res := m.EvalStreamMasked(split.Test, split.NewNodeInTest, ns)
	if math.IsNaN(res.AP) {
		t.Fatal("transductive AP NaN")
	}
	var unseen int
	for _, b := range split.NewNodeInTest {
		if b {
			unseen++
		}
	}
	if unseen > 0 && math.IsNaN(res.MaskedAP) {
		t.Fatalf("inductive AP NaN with %d unseen-node events", unseen)
	}
	// No mask → MaskedAP is NaN by contract.
	plain := m.EvalStream(split.Test[:10], ns)
	if !math.IsNaN(plain.MaskedAP) {
		t.Fatal("MaskedAP should be NaN without a mask")
	}
}

func TestCollectStreamYieldsLabeledEmbeddings(t *testing.T) {
	d := tinyData(11)
	m, err := New(tinyConfig(d.NumNodes))
	if err != nil {
		t.Fatal(err)
	}
	m.ResetRuntime()
	var got int
	m.CollectStream(d.Events[:200], nil, func(ev *tgraph.Event, zsrc, zdst []float32) {
		if len(zsrc) != 16 || len(zdst) != 16 {
			t.Fatalf("bad embedding dims %d/%d", len(zsrc), len(zdst))
		}
		got++
	})
	if got != 200 {
		t.Fatalf("collect called %d times", got)
	}
}

func TestAsynchronousUpdateFrequencyExceedsEvents(t *testing.T) {
	// §4.5: "the node update frequency in the asynchronous CTDG algorithm is
	// higher than in the synchronous CTDG" — every event updates not just
	// its two endpoints (what memory models do) but also their sampled
	// neighbors' mailboxes.
	d := tinyData(19)
	m, err := New(tinyConfig(d.NumNodes))
	if err != nil {
		t.Fatal(err)
	}
	m.ResetRuntime()
	n := 400
	m.EvalStream(d.Events[:n], nil)
	delivered := m.Propagator().MailsDelivered()

	// A synchronous memory model updates only the unique endpoints of each
	// batch; count that baseline over the same batching.
	var endpointUpdates int64
	bs := m.Cfg.BatchSize
	for lo := 0; lo < n; lo += bs {
		hi := lo + bs
		if hi > n {
			hi = n
		}
		uniq := map[tgraph.NodeID]bool{}
		for _, ev := range d.Events[lo:hi] {
			uniq[ev.Src] = true
			uniq[ev.Dst] = true
		}
		endpointUpdates += int64(len(uniq))
	}
	if delivered <= endpointUpdates {
		t.Fatalf("mail deliveries %d should exceed endpoint-only updates %d", delivered, endpointUpdates)
	}
}

func TestPositionalModes(t *testing.T) {
	d := tinyData(13)
	for _, mode := range []PositionalMode{PositionalLearned, PositionalTime, PositionalNone} {
		cfg := tinyConfig(d.NumNodes)
		cfg.Positional = mode
		m, err := New(cfg)
		if err != nil {
			t.Fatalf("mode %d: %v", mode, err)
		}
		m.ResetRuntime()
		res := m.TrainEpoch(d.Events[:300], dataset.NewNegSampler(d.NumNodes))
		if math.IsNaN(res.Loss) || res.Loss <= 0 {
			t.Fatalf("mode %d: bad loss %v", mode, res.Loss)
		}
	}
}

func TestKeyValueMailboxMode(t *testing.T) {
	d := tinyData(15)
	cfg := tinyConfig(d.NumNodes)
	cfg.KeyValueMailbox = true
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m.ResetRuntime()
	res := m.TrainEpoch(d.Events[:300], dataset.NewNegSampler(d.NumNodes))
	if math.IsNaN(res.Loss) {
		t.Fatal("KV mailbox training diverged")
	}
}
