package core

import (
	"path/filepath"
	"testing"

	"apan/internal/tgraph"
)

// incrementalModel builds a sharded-store model streaming real-ish events.
func incrementalModel(t *testing.T, incremental bool) (*Model, []tgraph.Event) {
	t.Helper()
	d := tinyData(33)
	cfg := tinyConfig(d.NumNodes)
	cfg.Shards = 32
	cfg.GraphBackend = GraphBackendSharded
	cfg.IncrementalCheckpoints = incremental
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m.ResetRuntime()
	return m, d.Events
}

func applyBatch(m *Model, events []tgraph.Event) {
	inf := m.InferBatch(events)
	m.ApplyInference(inf)
	inf.Release()
}

// TestIncrementalCutCopiesOnlyDirtyShards: after the base cut, a small
// batch dirties few shards, and the next cut clones exactly those — far
// fewer than the total — while a full-copy model clones everything.
func TestIncrementalCutCopiesOnlyDirtyShards(t *testing.T) {
	m, events := incrementalModel(t, true)
	applyBatch(m, events[:200])

	base := m.CheckpointCut()
	if base.Incremental {
		t.Fatalf("first cut claims incremental (no base existed): %+v", base)
	}
	if base.StateCopied != base.StateShards || base.MailCopied != base.MailShards {
		t.Fatalf("first cut must full-copy: %+v", base)
	}

	// One tiny batch touches a handful of nodes → a few shards.
	applyBatch(m, events[200:204])
	cut := m.CheckpointCut()
	if !cut.Incremental {
		t.Fatalf("second cut not incremental: %+v", cut)
	}
	if cut.StateCopied == 0 || cut.MailCopied == 0 {
		t.Fatalf("dirty shards not detected: %+v", cut)
	}
	if cut.StateCopied >= cut.StateShards || cut.MailCopied >= cut.MailShards {
		t.Fatalf("incremental cut copied every shard: %+v", cut)
	}
	if cut.GraphParts == 0 || cut.GraphDirty == 0 || cut.GraphDirty > cut.GraphParts {
		t.Fatalf("graph partition accounting wrong: %+v", cut)
	}

	// No mutations since the last cut: nothing to copy.
	idle := m.CheckpointCut()
	if idle.StateCopied != 0 || idle.MailCopied != 0 || idle.GraphDirty != 0 {
		t.Fatalf("idle cut copied shards: %+v", idle)
	}
}

// TestIncrementalCheckpointDigestParity: a checkpoint written from an
// incremental cut restores to the same RuntimeDigest — and the same bytes
// drive the same recovery — as one written with full copies.
func TestIncrementalCheckpointDigestParity(t *testing.T) {
	mInc, events := incrementalModel(t, true)
	mFull, _ := incrementalModel(t, false)

	dir := t.TempDir()
	pInc, pFull := filepath.Join(dir, "inc.ckpt"), filepath.Join(dir, "full.ckpt")
	for i := 0; i+50 <= 400; i += 50 {
		applyBatch(mInc, events[i:i+50])
		applyBatch(mFull, events[i:i+50])
		// Checkpoint every batch: the incremental side exercises base reuse
		// across many cuts, the full side is the reference.
		if _, err := mInc.Checkpoint(pInc); err != nil {
			t.Fatal(err)
		}
		if _, err := mFull.Checkpoint(pFull); err != nil {
			t.Fatal(err)
		}
	}
	if d1, d2 := mInc.RuntimeDigest(), mFull.RuntimeDigest(); d1 != d2 {
		t.Fatalf("live digests diverged: %x vs %x", d1, d2)
	}

	rInc, _ := incrementalModel(t, false)
	rFull, _ := incrementalModel(t, false)
	if err := rInc.LoadCheckpointFile(pInc); err != nil {
		t.Fatal(err)
	}
	if err := rFull.LoadCheckpointFile(pFull); err != nil {
		t.Fatal(err)
	}
	dInc, dFull := rInc.RuntimeDigest(), rFull.RuntimeDigest()
	if dInc != dFull {
		t.Fatalf("restored digests differ: incremental %x vs full %x", dInc, dFull)
	}
	if want := mFull.RuntimeDigest(); dInc != want {
		t.Fatalf("restored digest %x != live digest %x", dInc, want)
	}
}

// TestIncrementalCutSurvivesRestoreAndGrowth: mutations that bypass the
// apply path — restore, reset, node growth — must invalidate the retained
// base so the next checkpoint still captures them.
func TestIncrementalCutSurvivesRestoreAndGrowth(t *testing.T) {
	m, events := incrementalModel(t, true)
	applyBatch(m, events[:100])
	m.CheckpointCut() // establish base

	snap := m.SnapshotRuntime()
	applyBatch(m, events[100:150])
	m.RestoreRuntime(snap)

	cut := m.CheckpointCut()
	if cut.StateCopied != cut.StateShards || cut.MailCopied != cut.MailShards {
		t.Fatalf("restore did not invalidate the base: %+v", cut)
	}
	dir := t.TempDir()
	p := filepath.Join(dir, "after-restore.ckpt")
	if _, err := m.Checkpoint(p); err != nil {
		t.Fatal(err)
	}
	r, _ := incrementalModel(t, false)
	if err := r.LoadCheckpointFile(p); err != nil {
		t.Fatal(err)
	}
	if got, want := r.RuntimeDigest(), m.RuntimeDigest(); got != want {
		t.Fatalf("post-restore checkpoint digest %x != live %x", got, want)
	}
}
