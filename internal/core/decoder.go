package core

import (
	"math/rand"

	"apan/internal/nn"
	"apan/internal/tensor"
)

// LinkDecoder scores candidate interactions from pairs of temporal
// embeddings. The default follows the training objective of eq. 7: a
// calibrated inner product σ(a·(z_iᵀz_j)+b) on projected embeddings, which
// learns matching far faster than an MLP on the concatenation; the MLP form
// of §3.4 is available as an option (and is what the downstream-task heads
// use).
type LinkDecoder struct {
	mlp   *nn.MLP // nil in dot mode
	proj  *nn.Linear
	scale *nn.Tensor // 1×1 calibration gain
	bias  *nn.Tensor // 1×1 calibration bias
}

// NewLinkDecoder builds the eq.-7 inner-product head over embedding dim d.
// A nil rng builds a storage-free shell to be bound to a ParamSet.
func NewLinkDecoder(d, hidden int, dropout float32, rng *rand.Rand) *LinkDecoder {
	if rng == nil {
		return &LinkDecoder{
			proj:  nn.NewLinear(d, d, nil),
			scale: nn.ParamShell(1, 1),
			bias:  nn.ParamShell(1, 1),
		}
	}
	dec := &LinkDecoder{
		proj:  nn.NewLinear(d, d, rng),
		scale: nn.Param(1, 1),
		bias:  nn.Param(1, 1),
	}
	dec.scale.W.Data[0] = 1
	return dec
}

// NewMLPLinkDecoder builds the §3.4 MLP([z_i ‖ z_j]) head.
func NewMLPLinkDecoder(d, hidden int, dropout float32, rng *rand.Rand) *LinkDecoder {
	return &LinkDecoder{mlp: nn.NewMLP(2*d, hidden, 1, dropout, rng)}
}

// Forward returns one logit per row pair.
func (dec *LinkDecoder) Forward(tp *nn.Tape, zi, zj *nn.Tensor) *nn.Tensor {
	if dec.mlp != nil {
		return dec.mlp.Forward(tp, tp.ConcatCols(zi, zj))
	}
	dots := tp.RowDot(dec.proj.Forward(tp, zi), dec.proj.Forward(tp, zj))
	// Fused scalar calibration: same arithmetic as the former broadcast
	// Gather+Mul+Add chain, without the per-call index slice and two
	// intermediate matrices.
	return tp.ScalarAffine(dots, dec.scale, dec.bias)
}

// Params returns the head's trainable tensors.
func (dec *LinkDecoder) Params() []*nn.Tensor {
	if dec.mlp != nil {
		return dec.mlp.Params()
	}
	return append(dec.proj.Params(), dec.scale, dec.bias)
}

// EdgeDecoder classifies interactions from both embeddings and the edge
// feature: MLP([z_i ‖ e_ij ‖ z_j]) → logit (paper §3.4, Alipay fraud task).
type EdgeDecoder struct {
	mlp *nn.MLP
}

// NewEdgeDecoder builds an edge-classification head.
func NewEdgeDecoder(d, edgeDim, hidden int, dropout float32, rng *rand.Rand) *EdgeDecoder {
	return &EdgeDecoder{mlp: nn.NewMLP(2*d+edgeDim, hidden, 1, dropout, rng)}
}

// Forward returns one logit per interaction; feats is the n×edgeDim feature
// matrix.
func (dec *EdgeDecoder) Forward(tp *nn.Tape, zi *nn.Tensor, feats *tensor.Matrix, zj *nn.Tensor) *nn.Tensor {
	return dec.mlp.Forward(tp, tp.Concat3Cols(zi, tp.Input(feats), zj))
}

// Params returns the head's trainable tensors.
func (dec *EdgeDecoder) Params() []*nn.Tensor { return dec.mlp.Params() }

// NodeDecoder classifies a node's dynamic state from its embedding alone:
// MLP(z_i) → logit (Wikipedia/Reddit ban prediction).
type NodeDecoder struct {
	mlp *nn.MLP
}

// NewNodeDecoder builds a node-classification head.
func NewNodeDecoder(d, hidden int, dropout float32, rng *rand.Rand) *NodeDecoder {
	return &NodeDecoder{mlp: nn.NewMLP(d, hidden, 1, dropout, rng)}
}

// Forward returns one logit per embedding row.
func (dec *NodeDecoder) Forward(tp *nn.Tape, z *nn.Tensor) *nn.Tensor {
	return dec.mlp.Forward(tp, z)
}

// Params returns the head's trainable tensors.
func (dec *NodeDecoder) Params() []*nn.Tensor { return dec.mlp.Params() }
