package core

import (
	"sync"

	"apan/internal/tgraph"
)

// Cold-state eviction bounds the model's warm working set. Streams with
// unbounded node arrival (the serving reality behind EnsureNodes) grow the
// state and mailbox stores without limit; eviction caps how many nodes may
// be warm at once (Config.EvictMaxNodes) by resetting the least recently
// touched nodes to the cold-start condition — zero state, empty mailbox,
// exactly how a never-seen node looks to the encoder. The temporal graph is
// NOT trimmed: adjacency is the durable structure re-admission warms from.
//
// An evicted node that reappears in the stream is re-admitted on the
// admission path (ReadmitBatch, called by async.Pipeline before scoring,
// never inside InferBatch): its state is re-seeded with the mean of its most
// recent graph neighbors' current embeddings — the same inductive signal the
// encoder would otherwise have to recover over many events — and it rejoins
// the LRU as most recently used.
//
// Determinism: tracking is pure bookkeeping keyed by applied-event index, so
// a run whose budget is never exceeded performs no ClearNode calls and stays
// bitwise identical to an eviction-disabled run (RuntimeDigest-exact). A run
// that does evict is still deterministic for a fixed apply order: WAL replay
// through ReplayBatch re-applies the same batches through the same path and
// re-evicts identically. Evictor bookkeeping is not checkpointed; after a
// restore, evicted nodes simply look cold (the standard inductive path) and
// warm nodes re-enter the LRU as the stream touches them.

// EvictionStats is the point-in-time view of the cold-state evictor for the
// serving stats surface.
type EvictionStats struct {
	// Budget is Config.EvictMaxNodes, the warm-node cap.
	Budget int `json:"budget"`
	// Tracked is the number of currently warm (LRU-tracked) nodes.
	Tracked int `json:"tracked"`
	// ColdSet is the number of evicted nodes awaiting possible re-admission.
	ColdSet int `json:"cold_set"`
	// Evicted counts evictions since construction (a node can be counted
	// multiple times if it cycles).
	Evicted uint64 `json:"evicted"`
	// Readmitted counts re-admission warm-ups since construction.
	Readmitted uint64 `json:"readmitted"`
}

// lruEnt is one warm node in the evictor's intrusive LRU list.
type lruEnt struct {
	node       tgraph.NodeID
	touch      uint64 // applied-event index of the last touch
	prev, next *lruEnt
}

// evictor tracks warm nodes in LRU order by last-touched event index. All
// fields are guarded by mu. Lock order: the model's latches (storeMu,
// applyMu) are always taken before mu, and mu before shard locks and
// graphMu; nothing re-enters, so the chain stays acyclic.
type evictor struct {
	mu     sync.Mutex
	budget int
	clock  uint64 // applied-event counter; stamps touches
	byNode map[tgraph.NodeID]*lruEnt
	head   *lruEnt // least recently touched
	tail   *lruEnt // most recently touched
	// evicted holds nodes cleared by the evictor and not yet re-admitted —
	// the set ReadmitBatch consults. A node evicted and then re-touched by
	// an apply (without passing through ReadmitBatch) leaves the set too:
	// the apply wrote fresh state, so there is nothing left to warm.
	evicted  map[tgraph.NodeID]struct{}
	nEvict   uint64
	nReadmit uint64
}

func newEvictor(budget int) *evictor {
	return &evictor{
		budget:  budget,
		byNode:  make(map[tgraph.NodeID]*lruEnt),
		evicted: make(map[tgraph.NodeID]struct{}),
	}
}

func (e *evictor) unlink(ent *lruEnt) {
	if ent.prev != nil {
		ent.prev.next = ent.next
	} else {
		e.head = ent.next
	}
	if ent.next != nil {
		ent.next.prev = ent.prev
	} else {
		e.tail = ent.prev
	}
	ent.prev, ent.next = nil, nil
}

func (e *evictor) pushTail(ent *lruEnt) {
	ent.prev = e.tail
	if e.tail != nil {
		e.tail.next = ent
	} else {
		e.head = ent
	}
	e.tail = ent
}

// touchLocked marks node warm at event index idx, moving it to the MRU end.
func (e *evictor) touchLocked(node tgraph.NodeID, idx uint64) {
	if ent, ok := e.byNode[node]; ok {
		ent.touch = idx
		if e.tail != ent {
			e.unlink(ent)
			e.pushTail(ent)
		}
		return
	}
	// A node the stream touches directly needs no warm-up; forget any
	// pending cold record.
	delete(e.evicted, node)
	ent := &lruEnt{node: node, touch: idx}
	e.byNode[node] = ent
	e.pushTail(ent)
}

// resetLocked drops all tracking (counters survive). Called when the stores
// themselves are reset or replaced wholesale.
func (e *evictor) resetLocked() {
	e.byNode = make(map[tgraph.NodeID]*lruEnt)
	e.evicted = make(map[tgraph.NodeID]struct{})
	e.head, e.tail = nil, nil
	e.clock = 0
}

// noteTouched records the endpoints of an applied batch in the LRU and
// evicts over-budget nodes. Runs as the last mutation of the batch's apply
// span (under the shared apply gate), so a checkpoint cut never lands
// between a batch's writes and its evictions. No-op when eviction is off.
func (m *Model) noteTouched(events []tgraph.Event) {
	e := m.ev
	if e == nil {
		return
	}
	e.mu.Lock()
	base := e.clock
	for i := range events {
		e.touchLocked(events[i].Src, base+uint64(i))
		e.touchLocked(events[i].Dst, base+uint64(i))
	}
	e.clock = base + uint64(len(events))
	m.evictOverBudgetLocked()
	e.mu.Unlock()
}

// evictOverBudgetLocked clears least-recently-touched nodes until the warm
// set fits the budget. Requires e.mu; ClearNode takes only the victim's
// shard locks (held after e.mu per the documented order).
func (m *Model) evictOverBudgetLocked() {
	e := m.ev
	for len(e.byNode) > e.budget {
		v := e.head
		e.unlink(v)
		delete(e.byNode, v.node)
		e.evicted[v.node] = struct{}{}
		e.nEvict++
		m.st.ClearNode(v.node)
		m.mbox.ClearNode(v.node)
	}
}

// ReadmitBatch warms every evicted node named as an endpoint of events,
// re-seeding its state with the mean of its most recent graph neighbors'
// current embeddings (fan-out Config.Neighbors, strictly before the event's
// time) and returning it to the LRU as most recently used. It returns the
// number of nodes re-admitted. This is the admission-path half of cold-state
// eviction: async.Pipeline calls it before scoring, so InferBatch — which
// has no graph access by design — sees warmed state through the ordinary
// store reads. A node with no graph history stays cold (the standard
// inductive cold start). No-op when eviction is off.
func (m *Model) ReadmitBatch(events []tgraph.Event) int {
	e := m.ev
	if e == nil {
		return 0
	}
	m.storeMu.RLock()
	defer m.storeMu.RUnlock()
	e.mu.Lock()
	defer e.mu.Unlock()
	if len(e.evicted) == 0 {
		return 0
	}
	dim := m.Cfg.EdgeDim
	var mean, nb []float32
	var incs []tgraph.Incidence
	readmitted := 0
	warm := func(node tgraph.NodeID, t float64) {
		if _, ok := e.evicted[node]; !ok {
			return
		}
		delete(e.evicted, node)
		incs = incs[:0]
		if m.graphSafe {
			incs = m.db.G.MostRecentNeighbors(node, t, m.Cfg.Neighbors, incs)
		} else {
			m.graphMu.Lock()
			incs = m.db.G.MostRecentNeighbors(node, t, m.Cfg.Neighbors, incs)
			m.graphMu.Unlock()
		}
		if mean == nil {
			mean = make([]float32, dim)
			nb = make([]float32, dim)
		}
		for j := range mean {
			mean[j] = 0
		}
		used, last := 0, 0.0
		for i := range incs {
			m.st.CopyTo(incs[i].Peer, nb)
			for j := range mean {
				mean[j] += nb[j]
			}
			used++
			if incs[i].Time > last {
				last = incs[i].Time
			}
		}
		if used > 0 {
			inv := 1 / float32(used)
			for j := range mean {
				mean[j] *= inv
			}
			m.st.Set(node, mean, last)
		}
		e.touchLocked(node, e.clock)
		e.nReadmit++
		readmitted++
	}
	for i := range events {
		warm(events[i].Src, events[i].Time)
		warm(events[i].Dst, events[i].Time)
	}
	// Re-admission grows the warm set; keep the budget an invariant.
	m.evictOverBudgetLocked()
	return readmitted
}

// EvictionStats reports the cold-state evictor's counters; ok is false when
// eviction is disabled (Config.EvictMaxNodes == 0).
func (m *Model) EvictionStats() (EvictionStats, bool) {
	e := m.ev
	if e == nil {
		return EvictionStats{}, false
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	return EvictionStats{
		Budget:     e.budget,
		Tracked:    len(e.byNode),
		ColdSet:    len(e.evicted),
		Evicted:    e.nEvict,
		Readmitted: e.nReadmit,
	}, true
}

// resetEvictor drops all LRU/cold-set tracking after a store reset or
// wholesale restore (counters survive). No-op when eviction is off.
func (m *Model) resetEvictor() {
	e := m.ev
	if e == nil {
		return
	}
	e.mu.Lock()
	e.resetLocked()
	e.mu.Unlock()
}
