package core

import (
	"fmt"

	"apan/internal/tgraph"
	"apan/internal/wal"
)

// Recovery glue between the model and the write-ahead log: a crashed
// replica comes back as checkpoint + replay-to-watermark. The checkpoint
// restores parameters and streaming state as of its cut; RecoverWAL then
// re-applies every logged batch past the cut through the full inference
// path, which reconstructs node state, mailboxes and the graph exactly as
// the uninterrupted process would have — bitwise, because inference is
// deterministic given (params, state, batch) and the log preserves the
// original batch boundaries in graph order.

// RecoverWAL re-applies the log's records past the model's current graph
// watermark (typically the checkpoint just loaded; a fresh model replays
// from zero). Each batch runs InferBatch + ApplyInference — the same code
// path that produced it — after admitting any node ids the checkpoint
// predates, mirroring what serving's admission did live. Returns the number
// of events re-applied.
//
// The model must not have a WAL attached (replay would re-log every batch);
// attach after recovery, which also aligns the log to the recovered
// watermark. Replay must not race serving — run it before the pipeline
// starts.
func (m *Model) RecoverWAL(l *wal.Log) (int, error) {
	if m.WAL() != nil {
		return 0, fmt.Errorf("core: recover with a WAL attached would re-log the replay — detach first")
	}
	replayed := 0
	err := l.Replay(uint64(m.GraphEvents()), func(first uint64, events []tgraph.Event) error {
		m.ReplayBatch(events)
		replayed += len(events)
		return nil
	})
	if err != nil {
		return replayed, fmt.Errorf("core: wal recovery: %w", err)
	}
	return replayed, nil
}

// ReplayBatch re-applies one logged batch through the full serving path —
// node admission, InferBatch, ApplyInference — the exact code that produced
// the record, so replay reconstructs state bitwise. RecoverWAL uses it for
// one-shot crash recovery; a warm-standby follower uses it directly,
// feeding each record a wal.Follower delivers as shipped segments arrive.
// The model must not have a WAL attached (the replay would be re-logged),
// and calls must not race serving applies.
func (m *Model) ReplayBatch(events []tgraph.Event) {
	maxID := tgraph.NodeID(-1)
	for i := range events {
		if events[i].Src > maxID {
			maxID = events[i].Src
		}
		if events[i].Dst > maxID {
			maxID = events[i].Dst
		}
	}
	m.EnsureNodes(int(maxID) + 1)
	inf := m.InferBatch(events)
	m.ApplyInference(inf)
	inf.Release()
}
