package core

import (
	"sync"
	"testing"

	"apan/internal/tgraph"
)

func concModel(t *testing.T, shards int) *Model {
	t.Helper()
	m, err := New(Config{
		NumNodes: 32, EdgeDim: 8, Slots: 4, Neighbors: 4, Hops: 2,
		Heads: 2, Hidden: 16, BatchSize: 8, Seed: 1, Shards: shards,
	})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func concBatch(base int32, n int, t float64) []tgraph.Event {
	evs := make([]tgraph.Event, n)
	for i := range evs {
		evs[i] = tgraph.Event{
			Src: (base + int32(i)) % 32, Dst: (base + int32(i) + 1) % 32,
			Time: t + float64(i), Feat: make([]float32, 8), Label: -1,
		}
	}
	return evs
}

// TestConcurrentInferApply runs scoring and asynchronous-link writes from
// many goroutines at once — the serving workload the sharded stores exist
// for. Run under -race; the test passes if nothing tears or deadlocks and
// scores stay probabilities.
func TestConcurrentInferApply(t *testing.T) {
	for _, shards := range []int{1, 8} {
		m := concModel(t, shards)
		m.EvalStream(concBatch(0, 32, 0), nil) // warm state and mailboxes

		var wg sync.WaitGroup
		const scorers, appliers, rounds = 4, 2, 50
		for g := 0; g < scorers; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for i := 0; i < rounds; i++ {
					inf := m.InferBatch(concBatch(int32(g), 8, float64(100+i)))
					for _, sc := range inf.Scores {
						if sc < 0 || sc > 1 {
							t.Errorf("score %v out of [0,1]", sc)
							return
						}
					}
				}
			}(g)
		}
		for g := 0; g < appliers; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for i := 0; i < rounds; i++ {
					m.ApplyInference(m.InferBatch(concBatch(int32(10+g), 8, float64(200+i))))
				}
			}(g)
		}
		wg.Wait()

		if m.DB().G.NumEvents() == 0 {
			t.Fatal("no events reached the graph")
		}
	}
}

// TestEnsureNodesDuringServing interleaves dynamic node admission with
// concurrent scoring and verifies admitted nodes are immediately servable.
func TestEnsureNodesDuringServing(t *testing.T) {
	m := concModel(t, 8)
	m.EvalStream(concBatch(0, 32, 0), nil)

	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for n := 40; n <= 200; n += 40 {
			m.EnsureNodes(n)
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			m.ApplyInference(m.InferBatch(concBatch(int32(i), 8, float64(10+i))))
		}
	}()
	wg.Wait()

	if got := m.NumNodes(); got != 200 {
		t.Fatalf("NumNodes after admission: %d", got)
	}
	// Unseen nodes score (cold start) and then accumulate streaming state.
	ev := []tgraph.Event{{Src: 150, Dst: 199, Time: 1000, Feat: make([]float32, 8), Label: -1}}
	inf := m.InferBatch(ev)
	if len(inf.Scores) != 1 || inf.Scores[0] < 0 || inf.Scores[0] > 1 {
		t.Fatalf("cold-start score: %v", inf.Scores)
	}
	m.ApplyInference(inf)
	if !m.State().Touched(150) || m.Mailbox().Len(199) == 0 {
		t.Fatal("admitted nodes accumulated no streaming state")
	}
	if m.Embed([]tgraph.NodeID{150, 199}, []float64{1001, 1001}) == nil {
		t.Fatal("embed on admitted nodes")
	}
}
