package core

import (
	"encoding/binary"
	"hash/fnv"
	"math"

	"apan/internal/tgraph"
)

// RuntimeDigest returns an FNV-1a hash over the model's observable streaming
// runtime: the admitted node count, every node's state embedding and last-
// update time, every mailbox's sorted readout (mails + timestamps), and the
// temporal graph's event count. Two models built from the same Config and
// seed that processed bitwise-identical streams produce equal digests — the
// scenario harness's replay-determinism and checkpoint-restore invariants
// compare these instead of diffing gigabytes of state, and a digest mismatch
// narrows a divergence to "runtime state" even when all returned scores
// matched.
//
// The digest covers readout-visible state only: two mailboxes whose FIFO
// ring heads differ but whose sorted readouts agree hash equal, which is
// exactly the §3.6 arrival-order-insensitivity contract the encoder sees.
//
// RuntimeDigest reads the same batch-aligned cut as SnapshotRuntime: the
// store latch is held shared and only the appliers are paused (see applyMu),
// so it is safe to call concurrently with serving, yields a consistent cut,
// and never blocks inference. Model parameters are not included (they are
// training state, not streaming state).
func (m *Model) RuntimeDigest() uint64 {
	m.storeMu.RLock()
	defer m.storeMu.RUnlock()
	m.applyMu.Lock()
	defer m.applyMu.Unlock()
	m.graphMu.Lock()
	defer m.graphMu.Unlock()

	h := fnv.New64a()
	var scratch [8]byte
	w64 := func(v uint64) {
		binary.LittleEndian.PutUint64(scratch[:], v)
		h.Write(scratch[:])
	}
	w32 := func(f float32) {
		binary.LittleEndian.PutUint32(scratch[:4], math.Float32bits(f))
		h.Write(scratch[:4])
	}

	n := m.Cfg.NumNodes
	dim := m.st.Dim()
	slots, mdim := m.mbox.Slots(), m.mbox.Dim()
	row := make([]float32, dim)
	mails := make([]float32, slots*mdim)
	times := make([]float64, slots)

	w64(uint64(n))
	for i := 0; i < n; i++ {
		id := tgraph.NodeID(i)
		m.st.CopyTo(id, row)
		for _, f := range row {
			w32(f)
		}
		w64(math.Float64bits(m.st.LastTime(id)))
		c := m.mbox.ReadSorted(id, mails, times)
		w64(uint64(c))
		for r := 0; r < c; r++ {
			for _, f := range mails[r*mdim : (r+1)*mdim] {
				w32(f)
			}
			w64(math.Float64bits(times[r]))
		}
	}
	w64(uint64(m.db.G.NumEvents()))
	return h.Sum64()
}
