package core

import (
	"testing"

	"apan/internal/tgraph"
)

// evEvent builds a zero-featured event for eviction tests.
func evEvent(dim int, src, dst tgraph.NodeID, t float64) tgraph.Event {
	return tgraph.Event{Src: src, Dst: dst, Time: t, Feat: make([]float32, dim)}
}

// applyEvents pushes events through the serving path one batch at a time.
func applyEvents(t *testing.T, m *Model, events []tgraph.Event, bs int) {
	t.Helper()
	for lo := 0; lo < len(events); lo += bs {
		hi := lo + bs
		if hi > len(events) {
			hi = len(events)
		}
		inf := m.InferBatch(events[lo:hi])
		m.ApplyInference(inf)
		inf.Release()
	}
}

func TestEvictionBudgetEnforced(t *testing.T) {
	cfg := tinyConfig(64)
	cfg.EvictMaxNodes = 4
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Touch nodes 0..15 in order: far more than the 4-node budget.
	var events []tgraph.Event
	for i := 0; i < 8; i++ {
		events = append(events, evEvent(cfg.EdgeDim, tgraph.NodeID(2*i), tgraph.NodeID(2*i+1), float64(i+1)))
	}
	applyEvents(t, m, events, 2)

	st, ok := m.EvictionStats()
	if !ok {
		t.Fatal("eviction stats unavailable with EvictMaxNodes set")
	}
	if st.Tracked > st.Budget {
		t.Fatalf("tracked %d exceeds budget %d", st.Tracked, st.Budget)
	}
	if st.Evicted == 0 {
		t.Fatal("expected evictions with 16 touched nodes and budget 4")
	}
	if st.Tracked+st.ColdSet == 0 {
		t.Fatal("expected tracked/cold accounting")
	}
	// The earliest-touched nodes must be cold again: untouched state, empty
	// mailbox — indistinguishable from never-seen nodes.
	for _, n := range []tgraph.NodeID{0, 1, 2, 3} {
		if m.State().Touched(n) {
			t.Fatalf("node %d should be evicted (untouched)", n)
		}
		if m.Mailbox().Len(n) != 0 {
			t.Fatalf("node %d mailbox should be empty after eviction", n)
		}
	}
	// The most recently touched nodes stay warm.
	for _, n := range []tgraph.NodeID{12, 13, 14, 15} {
		if !m.State().Touched(n) {
			t.Fatalf("node %d should still be warm", n)
		}
	}
}

// TestEvictionUnderBudgetDigestExact is the acceptance bound for checkpoint
// and replay compatibility: when the budget is never exceeded, tracking is
// pure bookkeeping and the runtime digest matches an eviction-disabled model
// bit for bit.
func TestEvictionUnderBudgetDigestExact(t *testing.T) {
	d := tinyData(1)
	events := d.Events[:300]

	run := func(budget int) uint64 {
		cfg := tinyConfig(d.NumNodes)
		cfg.EvictMaxNodes = budget
		m, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		applyEvents(t, m, events, cfg.BatchSize)
		return m.RuntimeDigest()
	}
	off := run(0)                // eviction disabled
	under := run(d.NumNodes + 1) // enabled, budget never binds
	if off != under {
		t.Fatalf("digest diverged with non-binding budget: %x vs %x", off, under)
	}
}

// TestEvictionDeterministic re-runs the same over-budget stream twice and
// demands identical digests and identical eviction counters — the property
// that makes WAL replay through ReplayBatch reconstruct an evicting run.
func TestEvictionDeterministic(t *testing.T) {
	d := tinyData(2)
	events := d.Events[:300]

	run := func() (uint64, EvictionStats) {
		cfg := tinyConfig(d.NumNodes)
		cfg.EvictMaxNodes = 8
		m, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		applyEvents(t, m, events, cfg.BatchSize)
		st, _ := m.EvictionStats()
		return m.RuntimeDigest(), st
	}
	d1, s1 := run()
	d2, s2 := run()
	if d1 != d2 {
		t.Fatalf("evicting runs diverged: %x vs %x", d1, d2)
	}
	if s1 != s2 {
		t.Fatalf("eviction counters diverged: %+v vs %+v", s1, s2)
	}
	if s1.Evicted == 0 {
		t.Fatal("stream should exceed an 8-node budget")
	}
}

func TestReadmitWarmStart(t *testing.T) {
	cfg := tinyConfig(32)
	cfg.EvictMaxNodes = 2
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	dim := cfg.EdgeDim
	// Give node 0 graph history with node 1, then blow the budget so node 0
	// is evicted.
	warmup := []tgraph.Event{
		evEvent(dim, 0, 1, 1),
		evEvent(dim, 2, 3, 2),
		evEvent(dim, 4, 5, 3),
	}
	applyEvents(t, m, warmup, 1)
	if m.State().Touched(0) {
		t.Fatal("node 0 should be evicted before re-admission")
	}

	// Re-admission warms node 0 from its most recent neighbor (node 1).
	ev := evEvent(dim, 0, 6, 4)
	n := m.ReadmitBatch([]tgraph.Event{ev})
	if n != 1 {
		t.Fatalf("readmitted %d nodes, want 1", n)
	}
	if !m.State().Touched(0) {
		t.Fatal("node 0 should be warm after re-admission")
	}
	z := m.State().Get(0)
	want := m.State().Get(1)
	nonzero := false
	for i := range z {
		if z[i] != 0 {
			nonzero = true
		}
	}
	// Node 1 may itself be evicted (budget 2); only demand the neighbor-mean
	// identity when the source of warmth is still warm.
	if m.State().Touched(1) {
		for i := range z {
			if z[i] != want[i] {
				t.Fatalf("warm start should equal the single neighbor's state at dim %d: %v vs %v", i, z[i], want[i])
			}
		}
		if !nonzero {
			t.Fatal("warm start from a warm neighbor should be nonzero")
		}
	}
	st, _ := m.EvictionStats()
	if st.Readmitted != 1 {
		t.Fatalf("Readmitted = %d, want 1", st.Readmitted)
	}
	// Second call is idempotent: node 0 is no longer in the cold set.
	if n := m.ReadmitBatch([]tgraph.Event{ev}); n != 0 {
		t.Fatalf("duplicate readmit warmed %d nodes, want 0", n)
	}
}

func TestEvictionResetClearsTracking(t *testing.T) {
	cfg := tinyConfig(32)
	cfg.EvictMaxNodes = 2
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	events := []tgraph.Event{
		evEvent(cfg.EdgeDim, 0, 1, 1),
		evEvent(cfg.EdgeDim, 2, 3, 2),
		evEvent(cfg.EdgeDim, 4, 5, 3),
	}
	applyEvents(t, m, events, 1)
	m.ResetRuntime()
	st, _ := m.EvictionStats()
	if st.Tracked != 0 || st.ColdSet != 0 {
		t.Fatalf("reset should drop tracking, got %+v", st)
	}
}
