package core

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"

	"apan/internal/mailbox"
	"apan/internal/nn"
	"apan/internal/state"
	"apan/internal/tgraph"
)

// Checkpointing lets a trained and warmed model survive restarts: the
// parameters plus the full streaming state (node embeddings, mailboxes and
// the temporal graph) are written in one versioned binary blob, so a
// serving replica can resume exactly where the previous one stopped.
const (
	ckptMagic   = "APCK"
	ckptVersion = 1
	// ckptMaxGrowBytes bounds the store memory a checkpoint's node count may
	// demand (state + mailbox slots, 4 bytes per float), so a corrupt or
	// crafted file cannot drive ensureNodesLocked into an OOM-sized
	// allocation before any further validation runs. Models legitimately
	// configured larger than this load fine — the bound only applies to
	// checkpoint-driven growth.
	ckptMaxGrowBytes = 4 << 30
)

// SaveParams writes the currently published parameters (encoder + decoder)
// — the version the serving paths score with, which after online training
// may be newer than the model's own offline copy.
func (m *Model) SaveParams(w io.Writer) error {
	return m.CurrentParams().Save(w)
}

// LoadParams restores parameters saved by SaveParams into a model built
// with an identical Config, loading the model's own copy and publishing it
// as a new version so serving picks the loaded weights up immediately.
func (m *Model) LoadParams(r io.Reader) error {
	if err := nn.LoadParams(r, m.Params()); err != nil {
		return err
	}
	m.publishOwn()
	return nil
}

// SaveCheckpoint writes parameters and streaming state.
func (m *Model) SaveCheckpoint(w io.Writer) error {
	_, err := m.saveCheckpoint(w)
	return err
}

// saveCheckpoint is SaveCheckpoint returning the cut's watermark — the
// number of graph events captured, which is also the WAL index replay
// resumes from after loading this checkpoint.
func (m *Model) saveCheckpoint(w io.Writer) (uint64, error) {
	bw := bufio.NewWriter(w)
	if _, err := io.WriteString(bw, ckptMagic); err != nil {
		return 0, fmt.Errorf("core: save checkpoint: %w", err)
	}
	le := binary.LittleEndian
	if err := binary.Write(bw, le, uint32(ckptVersion)); err != nil {
		return 0, fmt.Errorf("core: save checkpoint: %w", err)
	}
	if err := m.SaveParams(bw); err != nil {
		return 0, err
	}

	// Capture the shared durability cut — deep store clones under shard
	// read locks plus a zero-copy event-log prefix, all on one batch
	// boundary — then serialize from the copies. Scoring proceeds
	// throughout; only the appliers pause, for the clone (see
	// Model.runtimeCut), and with Config.IncrementalCheckpoints the clone
	// covers only shards dirtied since the previous cut (see cut.go).
	stSnap, mbSnap, events, numNodes := m.checkpointCut()
	dim := m.Cfg.EdgeDim
	slots := m.Cfg.Slots
	stShards, mbShards := m.st.NumShards(), m.mbox.NumShards()

	// Materialize readable stores from the snapshots off the latch: these
	// are function-local, so the allocation and re-clone cost stalls nobody.
	st := state.NewSharded(numNodes, dim, stShards)
	st.Restore(stSnap)
	mbox := mailbox.NewSharded(numNodes, slots, dim, mbShards)
	mbox.Restore(mbSnap)

	// Node state: dim, numNodes, then z / lastTime / touched per node.
	if err := binary.Write(bw, le, uint32(numNodes)); err != nil {
		return 0, fmt.Errorf("core: save checkpoint: %w", err)
	}
	if err := binary.Write(bw, le, uint32(dim)); err != nil {
		return 0, fmt.Errorf("core: save checkpoint: %w", err)
	}
	zrow := make([]float32, dim)
	for n := int32(0); n < int32(numNodes); n++ {
		st.CopyTo(n, zrow)
		if err := writeF32s(bw, zrow); err != nil {
			return 0, fmt.Errorf("core: save checkpoint state: %w", err)
		}
		if err := binary.Write(bw, le, st.LastTime(n)); err != nil {
			return 0, fmt.Errorf("core: save checkpoint state: %w", err)
		}
		touched := uint8(0)
		if st.Touched(n) {
			touched = 1
		}
		if err := binary.Write(bw, le, touched); err != nil {
			return 0, fmt.Errorf("core: save checkpoint state: %w", err)
		}
	}

	// Mailboxes: per node, count then (timestamp, mail) sorted entries.
	buf := make([]float32, slots*dim)
	ts := make([]float64, slots)
	for n := int32(0); n < int32(numNodes); n++ {
		c := mbox.ReadSorted(n, buf, ts)
		if err := binary.Write(bw, le, uint32(c)); err != nil {
			return 0, fmt.Errorf("core: save checkpoint mailbox: %w", err)
		}
		for i := 0; i < c; i++ {
			if err := binary.Write(bw, le, ts[i]); err != nil {
				return 0, fmt.Errorf("core: save checkpoint mailbox: %w", err)
			}
			if err := writeF32s(bw, buf[i*dim:(i+1)*dim]); err != nil {
				return 0, fmt.Errorf("core: save checkpoint mailbox: %w", err)
			}
		}
	}

	// Temporal graph: event log in arrival order, from the captured prefix.
	if err := binary.Write(bw, le, uint64(len(events))); err != nil {
		return 0, fmt.Errorf("core: save checkpoint graph: %w", err)
	}
	for id := range events {
		ev := &events[id]
		if err := binary.Write(bw, le, ev.Src); err != nil {
			return 0, fmt.Errorf("core: save checkpoint graph: %w", err)
		}
		if err := binary.Write(bw, le, ev.Dst); err != nil {
			return 0, fmt.Errorf("core: save checkpoint graph: %w", err)
		}
		if err := binary.Write(bw, le, ev.Time); err != nil {
			return 0, fmt.Errorf("core: save checkpoint graph: %w", err)
		}
		if err := binary.Write(bw, le, int8(ev.Label)); err != nil {
			return 0, fmt.Errorf("core: save checkpoint graph: %w", err)
		}
		if err := binary.Write(bw, le, uint32(len(ev.Feat))); err != nil {
			return 0, fmt.Errorf("core: save checkpoint graph: %w", err)
		}
		if err := writeF32s(bw, ev.Feat); err != nil {
			return 0, fmt.Errorf("core: save checkpoint graph: %w", err)
		}
	}
	if err := bw.Flush(); err != nil {
		return 0, fmt.Errorf("core: save checkpoint: %w", err)
	}
	return uint64(len(events)), nil
}

// LoadCheckpoint restores a checkpoint written by SaveCheckpoint into a
// model built with the same architecture hyper-parameters. The node count
// may differ: a checkpoint grown by dynamic node admission (EnsureNodes)
// grows the loading model to match.
func (m *Model) LoadCheckpoint(r io.Reader) error {
	br := bufio.NewReader(r)
	magic := make([]byte, 4)
	if _, err := io.ReadFull(br, magic); err != nil {
		return fmt.Errorf("core: load checkpoint: %w", err)
	}
	if string(magic) != ckptMagic {
		return fmt.Errorf("core: load checkpoint: bad magic %q", magic)
	}
	le := binary.LittleEndian
	var version uint32
	if err := binary.Read(br, le, &version); err != nil {
		return fmt.Errorf("core: load checkpoint: %w", err)
	}
	if version != ckptVersion {
		return fmt.Errorf("core: load checkpoint: unsupported version %d", version)
	}
	if err := m.LoadParams(br); err != nil {
		return err
	}

	var numNodes, dim uint32
	if err := binary.Read(br, le, &numNodes); err != nil {
		return fmt.Errorf("core: load checkpoint: %w", err)
	}
	if err := binary.Read(br, le, &dim); err != nil {
		return fmt.Errorf("core: load checkpoint: %w", err)
	}
	if int(dim) != m.Cfg.EdgeDim {
		return fmt.Errorf("core: load checkpoint: dim %d, model %d", dim, m.Cfg.EdgeDim)
	}

	m.storeMu.Lock()
	defer m.storeMu.Unlock()
	// Bound check under the latch: Cfg.NumNodes is written by EnsureNodes,
	// which holds the latch exclusively.
	if grow := uint64(numNodes) * uint64(m.Cfg.Slots+1) * uint64(dim) * 4; int(numNodes) > m.Cfg.NumNodes && grow > ckptMaxGrowBytes {
		return fmt.Errorf("core: load checkpoint: node count %d would allocate %d store bytes (max %d)",
			numNodes, grow, uint64(ckptMaxGrowBytes))
	}
	// A checkpoint written after dynamic node admission may be larger than
	// the configured node space: grow to fit, so a restarted replica resumes
	// with every admitted node. A smaller checkpoint is fine too — nodes
	// beyond it simply stay cold.
	m.ensureNodesLocked(int(numNodes))
	m.st.Reset()
	m.mbox.Reset()
	// Evictor tracking is not checkpointed; start clean over the loaded
	// stores (loaded warm nodes rejoin the LRU as the stream touches them).
	m.resetEvictor()

	z := make([]float32, dim)
	for n := int32(0); n < int32(numNodes); n++ {
		if err := readF32s(br, z); err != nil {
			return fmt.Errorf("core: load checkpoint state: %w", err)
		}
		var lastT float64
		if err := binary.Read(br, le, &lastT); err != nil {
			return fmt.Errorf("core: load checkpoint state: %w", err)
		}
		var touched uint8
		if err := binary.Read(br, le, &touched); err != nil {
			return fmt.Errorf("core: load checkpoint state: %w", err)
		}
		if touched == 1 {
			m.st.Set(n, z, lastT)
		}
	}

	mail := make([]float32, dim)
	for n := int32(0); n < int32(numNodes); n++ {
		var c uint32
		if err := binary.Read(br, le, &c); err != nil {
			return fmt.Errorf("core: load checkpoint mailbox: %w", err)
		}
		if int(c) > m.Cfg.Slots {
			return fmt.Errorf("core: load checkpoint mailbox: node %d has %d mails, max %d", n, c, m.Cfg.Slots)
		}
		for i := 0; i < int(c); i++ {
			var ts float64
			if err := binary.Read(br, le, &ts); err != nil {
				return fmt.Errorf("core: load checkpoint mailbox: %w", err)
			}
			if err := readF32s(br, mail); err != nil {
				return fmt.Errorf("core: load checkpoint mailbox: %w", err)
			}
			m.mbox.Deliver(n, mail, ts)
		}
	}

	var numEvents uint64
	if err := binary.Read(br, le, &numEvents); err != nil {
		return fmt.Errorf("core: load checkpoint graph: %w", err)
	}
	// Rebuild the graph in place so the configured backend survives the
	// load, matching the state/mailbox resets above.
	g := m.db.G
	g.Reset(m.Cfg.NumNodes)
	for i := uint64(0); i < numEvents; i++ {
		var ev tgraph.Event
		if err := binary.Read(br, le, &ev.Src); err != nil {
			return fmt.Errorf("core: load checkpoint graph: %w", err)
		}
		if err := binary.Read(br, le, &ev.Dst); err != nil {
			return fmt.Errorf("core: load checkpoint graph: %w", err)
		}
		if err := binary.Read(br, le, &ev.Time); err != nil {
			return fmt.Errorf("core: load checkpoint graph: %w", err)
		}
		var label int8
		if err := binary.Read(br, le, &label); err != nil {
			return fmt.Errorf("core: load checkpoint graph: %w", err)
		}
		ev.Label = label
		var featLen uint32
		if err := binary.Read(br, le, &featLen); err != nil {
			return fmt.Errorf("core: load checkpoint graph: %w", err)
		}
		if featLen > 1<<20 {
			return fmt.Errorf("core: load checkpoint graph: absurd feature length %d", featLen)
		}
		ev.Feat = make([]float32, featLen)
		if err := readF32s(br, ev.Feat); err != nil {
			return fmt.Errorf("core: load checkpoint graph: %w", err)
		}
		g.AddEvent(ev)
	}
	return nil
}

// SaveCheckpointFile writes a checkpoint to path atomically (temp + rename).
func (m *Model) SaveCheckpointFile(path string) error {
	_, err := m.Checkpoint(path)
	return err
}

// Checkpoint writes a checkpoint to path atomically (temp + fsync + rename)
// and returns the cut's watermark: the number of graph events captured.
// The file is durable before the rename makes it visible, so a crash never
// leaves a valid-looking checkpoint missing its tail. The caller can hand
// the watermark to wal.Log.TruncateBefore — everything below it is now
// covered by the checkpoint — closing the snapshot/truncation protocol.
func (m *Model) Checkpoint(path string) (uint64, error) {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return 0, fmt.Errorf("core: %w", err)
	}
	watermark, err := m.saveCheckpoint(f)
	if err != nil {
		f.Close()
		os.Remove(tmp)
		return 0, err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return 0, fmt.Errorf("core: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return 0, fmt.Errorf("core: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return 0, fmt.Errorf("core: %w", err)
	}
	return watermark, nil
}

// LoadCheckpointFile restores a checkpoint from path.
func (m *Model) LoadCheckpointFile(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("core: %w", err)
	}
	defer f.Close()
	return m.LoadCheckpoint(f)
}

func writeF32s(w io.Writer, data []float32) error {
	buf := make([]byte, 4*len(data))
	for i, v := range data {
		le.PutUint32(buf[4*i:], math.Float32bits(v))
	}
	_, err := w.Write(buf)
	return err
}

func readF32s(r io.Reader, data []float32) error {
	buf := make([]byte, 4*len(data))
	if _, err := io.ReadFull(r, buf); err != nil {
		return err
	}
	for i := range data {
		data[i] = math.Float32frombits(le.Uint32(buf[4*i:]))
	}
	return nil
}

var le = binary.LittleEndian
