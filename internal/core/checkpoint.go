package core

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"

	"apan/internal/nn"
	"apan/internal/tgraph"
)

// Checkpointing lets a trained and warmed model survive restarts: the
// parameters plus the full streaming state (node embeddings, mailboxes and
// the temporal graph) are written in one versioned binary blob, so a
// serving replica can resume exactly where the previous one stopped.
const (
	ckptMagic   = "APCK"
	ckptVersion = 1
)

// SaveParams writes only the trained parameters (encoder + decoder).
func (m *Model) SaveParams(w io.Writer) error {
	return nn.SaveParams(w, m.Params())
}

// LoadParams restores parameters saved by SaveParams into a model built
// with an identical Config.
func (m *Model) LoadParams(r io.Reader) error {
	return nn.LoadParams(r, m.Params())
}

// SaveCheckpoint writes parameters and streaming state.
func (m *Model) SaveCheckpoint(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := io.WriteString(bw, ckptMagic); err != nil {
		return fmt.Errorf("core: save checkpoint: %w", err)
	}
	le := binary.LittleEndian
	if err := binary.Write(bw, le, uint32(ckptVersion)); err != nil {
		return fmt.Errorf("core: save checkpoint: %w", err)
	}
	if err := m.SaveParams(bw); err != nil {
		return err
	}

	m.storeMu.RLock()
	defer m.storeMu.RUnlock()

	// Node state: dim, numNodes, then z / lastTime / touched per node.
	if err := binary.Write(bw, le, uint32(m.Cfg.NumNodes)); err != nil {
		return fmt.Errorf("core: save checkpoint: %w", err)
	}
	if err := binary.Write(bw, le, uint32(m.Cfg.EdgeDim)); err != nil {
		return fmt.Errorf("core: save checkpoint: %w", err)
	}
	for n := int32(0); n < int32(m.Cfg.NumNodes); n++ {
		if err := writeF32s(bw, m.st.Get(n)); err != nil {
			return fmt.Errorf("core: save checkpoint state: %w", err)
		}
		if err := binary.Write(bw, le, m.st.LastTime(n)); err != nil {
			return fmt.Errorf("core: save checkpoint state: %w", err)
		}
		touched := uint8(0)
		if m.st.Touched(n) {
			touched = 1
		}
		if err := binary.Write(bw, le, touched); err != nil {
			return fmt.Errorf("core: save checkpoint state: %w", err)
		}
	}

	// Mailboxes: per node, count then (timestamp, mail) sorted entries.
	slots := m.Cfg.Slots
	buf := make([]float32, slots*m.Cfg.EdgeDim)
	ts := make([]float64, slots)
	for n := int32(0); n < int32(m.Cfg.NumNodes); n++ {
		c := m.mbox.ReadSorted(n, buf, ts)
		if err := binary.Write(bw, le, uint32(c)); err != nil {
			return fmt.Errorf("core: save checkpoint mailbox: %w", err)
		}
		for i := 0; i < c; i++ {
			if err := binary.Write(bw, le, ts[i]); err != nil {
				return fmt.Errorf("core: save checkpoint mailbox: %w", err)
			}
			if err := writeF32s(bw, buf[i*m.Cfg.EdgeDim:(i+1)*m.Cfg.EdgeDim]); err != nil {
				return fmt.Errorf("core: save checkpoint mailbox: %w", err)
			}
		}
	}

	// Temporal graph: event log in arrival order.
	g := m.db.G
	if err := binary.Write(bw, le, uint64(g.NumEvents())); err != nil {
		return fmt.Errorf("core: save checkpoint graph: %w", err)
	}
	for id := int64(0); id < int64(g.NumEvents()); id++ {
		ev := g.Event(id)
		if err := binary.Write(bw, le, ev.Src); err != nil {
			return fmt.Errorf("core: save checkpoint graph: %w", err)
		}
		if err := binary.Write(bw, le, ev.Dst); err != nil {
			return fmt.Errorf("core: save checkpoint graph: %w", err)
		}
		if err := binary.Write(bw, le, ev.Time); err != nil {
			return fmt.Errorf("core: save checkpoint graph: %w", err)
		}
		if err := binary.Write(bw, le, int8(ev.Label)); err != nil {
			return fmt.Errorf("core: save checkpoint graph: %w", err)
		}
		if err := binary.Write(bw, le, uint32(len(ev.Feat))); err != nil {
			return fmt.Errorf("core: save checkpoint graph: %w", err)
		}
		if err := writeF32s(bw, ev.Feat); err != nil {
			return fmt.Errorf("core: save checkpoint graph: %w", err)
		}
	}
	return bw.Flush()
}

// LoadCheckpoint restores a checkpoint written by SaveCheckpoint into a
// model built with an identical Config.
func (m *Model) LoadCheckpoint(r io.Reader) error {
	br := bufio.NewReader(r)
	magic := make([]byte, 4)
	if _, err := io.ReadFull(br, magic); err != nil {
		return fmt.Errorf("core: load checkpoint: %w", err)
	}
	if string(magic) != ckptMagic {
		return fmt.Errorf("core: load checkpoint: bad magic %q", magic)
	}
	le := binary.LittleEndian
	var version uint32
	if err := binary.Read(br, le, &version); err != nil {
		return fmt.Errorf("core: load checkpoint: %w", err)
	}
	if version != ckptVersion {
		return fmt.Errorf("core: load checkpoint: unsupported version %d", version)
	}
	if err := m.LoadParams(br); err != nil {
		return err
	}

	var numNodes, dim uint32
	if err := binary.Read(br, le, &numNodes); err != nil {
		return fmt.Errorf("core: load checkpoint: %w", err)
	}
	if err := binary.Read(br, le, &dim); err != nil {
		return fmt.Errorf("core: load checkpoint: %w", err)
	}
	if int(numNodes) != m.Cfg.NumNodes || int(dim) != m.Cfg.EdgeDim {
		return fmt.Errorf("core: load checkpoint: shape %dx%d, model %dx%d",
			numNodes, dim, m.Cfg.NumNodes, m.Cfg.EdgeDim)
	}

	m.storeMu.Lock()
	defer m.storeMu.Unlock()
	m.st.Reset()
	m.mbox.Reset()

	z := make([]float32, dim)
	for n := int32(0); n < int32(numNodes); n++ {
		if err := readF32s(br, z); err != nil {
			return fmt.Errorf("core: load checkpoint state: %w", err)
		}
		var lastT float64
		if err := binary.Read(br, le, &lastT); err != nil {
			return fmt.Errorf("core: load checkpoint state: %w", err)
		}
		var touched uint8
		if err := binary.Read(br, le, &touched); err != nil {
			return fmt.Errorf("core: load checkpoint state: %w", err)
		}
		if touched == 1 {
			m.st.Set(n, z, lastT)
		}
	}

	mail := make([]float32, dim)
	for n := int32(0); n < int32(numNodes); n++ {
		var c uint32
		if err := binary.Read(br, le, &c); err != nil {
			return fmt.Errorf("core: load checkpoint mailbox: %w", err)
		}
		if int(c) > m.Cfg.Slots {
			return fmt.Errorf("core: load checkpoint mailbox: node %d has %d mails, max %d", n, c, m.Cfg.Slots)
		}
		for i := 0; i < int(c); i++ {
			var ts float64
			if err := binary.Read(br, le, &ts); err != nil {
				return fmt.Errorf("core: load checkpoint mailbox: %w", err)
			}
			if err := readF32s(br, mail); err != nil {
				return fmt.Errorf("core: load checkpoint mailbox: %w", err)
			}
			m.mbox.Deliver(n, mail, ts)
		}
	}

	var numEvents uint64
	if err := binary.Read(br, le, &numEvents); err != nil {
		return fmt.Errorf("core: load checkpoint graph: %w", err)
	}
	g := tgraph.New(m.Cfg.NumNodes)
	for i := uint64(0); i < numEvents; i++ {
		var ev tgraph.Event
		if err := binary.Read(br, le, &ev.Src); err != nil {
			return fmt.Errorf("core: load checkpoint graph: %w", err)
		}
		if err := binary.Read(br, le, &ev.Dst); err != nil {
			return fmt.Errorf("core: load checkpoint graph: %w", err)
		}
		if err := binary.Read(br, le, &ev.Time); err != nil {
			return fmt.Errorf("core: load checkpoint graph: %w", err)
		}
		var label int8
		if err := binary.Read(br, le, &label); err != nil {
			return fmt.Errorf("core: load checkpoint graph: %w", err)
		}
		ev.Label = label
		var featLen uint32
		if err := binary.Read(br, le, &featLen); err != nil {
			return fmt.Errorf("core: load checkpoint graph: %w", err)
		}
		if featLen > 1<<20 {
			return fmt.Errorf("core: load checkpoint graph: absurd feature length %d", featLen)
		}
		ev.Feat = make([]float32, featLen)
		if err := readF32s(br, ev.Feat); err != nil {
			return fmt.Errorf("core: load checkpoint graph: %w", err)
		}
		g.AddEvent(ev)
	}
	m.db.G = g
	return nil
}

// SaveCheckpointFile writes a checkpoint to path atomically (temp + rename).
func (m *Model) SaveCheckpointFile(path string) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("core: %w", err)
	}
	if err := m.SaveCheckpoint(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("core: %w", err)
	}
	return os.Rename(tmp, path)
}

// LoadCheckpointFile restores a checkpoint from path.
func (m *Model) LoadCheckpointFile(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("core: %w", err)
	}
	defer f.Close()
	return m.LoadCheckpoint(f)
}

func writeF32s(w io.Writer, data []float32) error {
	buf := make([]byte, 4*len(data))
	for i, v := range data {
		le.PutUint32(buf[4*i:], math.Float32bits(v))
	}
	_, err := w.Write(buf)
	return err
}

func readF32s(r io.Reader, data []float32) error {
	buf := make([]byte, 4*len(data))
	if _, err := io.ReadFull(r, buf); err != nil {
		return err
	}
	for i := range data {
		data[i] = math.Float32frombits(le.Uint32(buf[4*i:]))
	}
	return nil
}

var le = binary.LittleEndian
