package core

import (
	"math/rand"
	"sync"

	"apan/internal/nn"
	"apan/internal/tensor"
	"apan/internal/tgraph"
)

// Encoder is APAN's attention-based encoder (paper §3.3): positional
// encoding over the mailbox, multi-head attention with the last embedding
// z(t−) as query, residual connection, layer normalization, and an MLP that
// emits the new temporal embedding z(t).
type Encoder struct {
	cfg  Config
	attn *nn.MultiHeadAttention
	pos  *nn.PositionTable
	time *nn.TimeEncoder
	ln   *nn.LayerNorm
	mlp  *nn.MLP
}

// NewEncoder builds the encoder for cfg. A nil rng builds a storage-free
// shell (every parameter a nn.ParamShell) to be bound to a ParamSet.
func NewEncoder(cfg Config, rng *rand.Rand) *Encoder {
	d := cfg.EdgeDim
	ln := &nn.LayerNorm{Gain: nn.ParamShell(1, d), Bias: nn.ParamShell(1, d)}
	if rng != nil {
		ln = nn.NewLayerNorm(d)
	}
	e := &Encoder{
		cfg:  cfg,
		attn: nn.NewMultiHeadAttention(d, cfg.Heads, rng),
		ln:   ln,
		mlp:  nn.NewMLP(d, cfg.Hidden, d, cfg.Dropout, rng),
	}
	switch cfg.Positional {
	case PositionalLearned:
		e.pos = nn.NewPositionTable(cfg.Slots, d, rng)
	case PositionalTime:
		e.time = nn.NewTimeEncoder(d, rng)
	}
	return e
}

// Params returns the encoder's trainable tensors.
func (e *Encoder) Params() []*nn.Tensor {
	ps := nn.CollectParams(e.attn, e.ln, e.mlp)
	if e.pos != nil {
		ps = append(ps, e.pos.Params()...)
	}
	if e.time != nil {
		ps = append(ps, e.time.Params()...)
	}
	return ps
}

// EncodeInput is the per-batch input bundle read from the state and mailbox
// stores for a set of unique nodes.
type EncodeInput struct {
	Nodes  []tgraph.NodeID
	Times  []float64      // per-node query time (for the PositionalTime mode)
	ZPrev  *tensor.Matrix // B×d last embeddings z(t−), detached
	Mails  *tensor.Matrix // (B·m)×d sorted mailbox contents, detached
	DTs    []float32      // (B·m) time deltas t_now − t_mail (0 for empty slots)
	Counts []int          // valid mails per node
}

// StateReader is the synchronous-link view of a node-state store: copy-out
// reads of z(t−). Both state.Store (flat, single-threaded) and state.Sharded
// (lock-striped, concurrent) implement it.
type StateReader interface {
	Dim() int
	CopyTo(n tgraph.NodeID, dst []float32)
}

// MailReader is the synchronous-link view of a mailbox store: copy-out,
// timestamp-sorted readout. Both mailbox.Store and mailbox.Sharded
// implement it.
type MailReader interface {
	Slots() int
	ReadSorted(n tgraph.NodeID, buf []float32, tsOut []float64) int
}

// ReadInputs gathers z(t−) and the timestamp-sorted mailboxes of nodes into
// an EncodeInput. times[i] is the query time of nodes[i].
func ReadInputs(st StateReader, mb MailReader, nodes []tgraph.NodeID, times []float64) *EncodeInput {
	return ReadInputsParallel(st, mb, nodes, times, 1)
}

// ReadInputsParallel is ReadInputs with the gather fanned out across up to
// `workers` goroutines over contiguous node ranges. Each worker fills a
// disjoint slice of the preallocated buffers, so the result is identical to
// the serial gather; with a sharded store the workers contend only on the
// shards they actually touch. Small batches fall back to the serial path.
func ReadInputsParallel(st StateReader, mb MailReader, nodes []tgraph.NodeID, times []float64, workers int) *EncodeInput {
	b := len(nodes)
	d := st.Dim()
	m := mb.Slots()
	lanes := workers
	if lanes < 1 {
		lanes = 1
	}
	in := &EncodeInput{
		Nodes:  nodes,
		Times:  times,
		ZPrev:  tensor.New(b, d),
		Mails:  tensor.New(b*m, d),
		DTs:    make([]float32, b*m),
		Counts: make([]int, b),
	}
	gatherInto(st, mb, nodes, times, workers, in, make([]float64, lanes*m))
	return in
}

// gatherInto fills in from the stores. The caller owns every buffer: ZPrev
// (b×d), Mails ((b·m)×d), Counts (len b), DTs (len b·m, zeroed — only valid
// slots are written), and ts, the per-lane timestamp scratch of at least
// workers·m float64s. This is the allocation-free core that both
// ReadInputsParallel and the pooled inference workspace share.
func gatherInto(st StateReader, mb MailReader, nodes []tgraph.NodeID, times []float64, workers int, in *EncodeInput, ts []float64) {
	b := len(nodes)
	m := mb.Slots()
	// gatherRange is a plain function (not a closure) so the serial path —
	// the zero-allocation serving configuration — builds no capture struct.
	if workers <= 1 || b < 2*workers {
		gatherRange(st, mb, nodes, times, in, ts[:m], 0, b)
		return
	}
	var wg sync.WaitGroup
	chunk := (b + workers - 1) / workers
	lane := 0
	for lo := 0; lo < b; lo += chunk {
		hi := lo + chunk
		if hi > b {
			hi = b
		}
		wg.Add(1)
		go func(lo, hi int, ts []float64) {
			defer wg.Done()
			gatherRange(st, mb, nodes, times, in, ts, lo, hi)
		}(lo, hi, ts[lane*m:(lane+1)*m])
		lane++
	}
	wg.Wait()
}

// gatherRange fills rows [lo, hi) of in; ts is this lane's scratch.
func gatherRange(st StateReader, mb MailReader, nodes []tgraph.NodeID, times []float64, in *EncodeInput, ts []float64, lo, hi int) {
	d := st.Dim()
	m := mb.Slots()
	for i := lo; i < hi; i++ {
		n := nodes[i]
		st.CopyTo(n, in.ZPrev.Row(i))
		c := mb.ReadSorted(n, in.Mails.Data[i*m*d:(i+1)*m*d], ts)
		in.Counts[i] = c
		for s := 0; s < c; s++ {
			dt := times[i] - ts[s]
			if dt < 0 {
				dt = 0
			}
			in.DTs[i*m+s] = float32(dt)
		}
	}
}

// Forward computes z(t) for every node in the batch and returns the
// embedding tensor plus the attention record for interpretability.
func (e *Encoder) Forward(tp *nn.Tape, in *EncodeInput) (*nn.Tensor, *nn.Attention) {
	zPrev := tp.Input(in.ZPrev)
	mails := tp.Input(in.Mails)

	var kv *nn.Tensor
	switch {
	case e.pos != nil:
		kv = e.pos.Forward(tp, mails)
	case e.time != nil:
		kv = tp.Add(mails, e.time.Forward(tp, in.DTs))
	default:
		kv = mails
	}

	attOut, att := e.attn.Forward(tp, zPrev, kv, in.Counts)
	res := tp.Add(attOut, zPrev) // shortcut addition ⊕ (eq. 5)
	normed := e.ln.Forward(tp, res)
	z := e.mlp.Forward(tp, normed)
	return z, att
}
