// Package core implements APAN — the Asynchronous Propagation Attention
// Network (Wang et al., SIGMOD 2021). The model splits into a synchronous
// link (attention encoder over the node's mailbox + MLP decoder, no graph
// access) and an asynchronous link (mail generation and k-hop propagation
// along temporal edges). See DESIGN.md §4 for the exact equations and
// docs/architecture.md for the paper-to-package map.
//
// The node-state and mailbox stores behind a Model are sharded and
// lock-striped (Config.Shards), so the serving entry points — InferBatch,
// ApplyInference, Embed, Explain — are safe for any number of concurrent
// goroutines, and EnsureNodes admits previously unseen node IDs at
// runtime. Training entry points are single-threaded.
package core
