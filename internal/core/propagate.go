package core

import (
	"sync"
	"sync/atomic"

	"apan/internal/gdb"
	"apan/internal/mailbox"
	"apan/internal/state"
	"apan/internal/tensor"
	"apan/internal/tgraph"
)

// Propagator implements the asynchronous link (paper §3.5): mail generation
// φ, identity mail passing f over the k-hop most-recent-sampled subgraph,
// reduction ρ, and mailbox update ψ. In deployment it runs off the critical
// path; in training it is invoked synchronously after each batch so results
// are deterministic.
//
// Mailbox deliveries lock only the recipient's shard, so propagation never
// stalls synchronous-link readers of other shards. Whether ProcessBatch
// itself may run concurrently is the graph backend's call: with the flat
// store callers must serialize (core.Model does so with its graph mutex);
// with a concurrency-safe backend (tgraph.Sharded, gdb.Remote over it)
// concurrent ProcessBatch calls are safe — per-batch scratch comes from an
// internal pool, graph inserts take only partition locks, and per-node
// deliveries commute under the mailbox's ψ.
type Propagator struct {
	cfg  Config
	db   *gdb.DB
	mbox *mailbox.Sharded

	mailsDelivered atomic.Int64

	// scratch pools per-batch working state (see propScratch): the inbox
	// map keeps its buckets, retired accumulators sit in a freelist, and
	// one mail buffer serves every event (mailbox.Deliver copies, so
	// nothing downstream retains these). Pooling is what lets concurrent
	// ProcessBatch calls proceed without sharing or re-allocating scratch.
	scratch sync.Pool
}

// NewPropagator builds a propagator writing into mbox and reading/writing
// the temporal graph behind db.
func NewPropagator(cfg Config, db *gdb.DB, mbox *mailbox.Sharded) *Propagator {
	return &Propagator{cfg: cfg, db: db, mbox: mbox}
}

// MailsDelivered reports the number of mailbox deliveries so far.
func (p *Propagator) MailsDelivered() int64 { return p.mailsDelivered.Load() }

// propScratch is one batch's reusable working state. Each ProcessBatch call
// checks one out of the pool, so scratch is never shared across concurrent
// batches and steady-state batches re-allocate nothing.
type propScratch struct {
	inbox    map[tgraph.NodeID]*mailAccum
	freelist []*mailAccum
	mail     []float32
	zScratch []float32
	// khop and seeds back the per-event k-hop traversal; the returned hop
	// slices alias khop and are consumed before the next event's query.
	khop  tgraph.KHopScratch
	seeds [2]tgraph.NodeID
}

// mailAccum accumulates the mails a node receives within one batch so ρ can
// reduce them to a single mail.
type mailAccum struct {
	sum []float32
	n   int
	ts  float64
}

// getAccum checks a zeroed accumulator of size dim out of the freelist.
func (s *propScratch) getAccum(dim int) *mailAccum {
	if n := len(s.freelist); n > 0 {
		acc := s.freelist[n-1]
		s.freelist[n-1] = nil
		s.freelist = s.freelist[:n-1]
		if cap(acc.sum) < dim {
			acc.sum = make([]float32, dim)
		}
		acc.sum = acc.sum[:dim]
		clear(acc.sum)
		acc.n, acc.ts = 0, 0
		return acc
	}
	return &mailAccum{sum: make([]float32, dim)}
}

// deliver routes one mail into the batch inbox, reducing per ψ's rule.
func (p *Propagator) deliver(s *propScratch, n tgraph.NodeID, vec []float32, ts float64) {
	acc := s.inbox[n]
	if acc == nil {
		acc = s.getAccum(len(vec))
		s.inbox[n] = acc
	}
	switch p.cfg.Reduce {
	case ReduceLatest:
		if ts >= acc.ts || acc.n == 0 {
			copy(acc.sum, vec)
			acc.ts = ts
		}
		acc.n = 1
	default: // ReduceMean
		tensor.Axpy(acc.sum, vec, 1)
		acc.n++
		if ts > acc.ts {
			acc.ts = ts
		}
	}
}

// ProcessBatch inserts the batch's events into the temporal graph and
// propagates their mails. zOf must return the *current* embedding z(t) of a
// node (the state store, already updated with this batch's embeddings).
//
// For each event (i, j, e, t):
//   - mail(t) = z_i(t) + e_ij + z_j(t)                      (φ, eq. 6)
//   - recipients: i and j themselves, then hops 1..k−1 of most-recent
//     sampled neighbors of both endpoints at time t (fan-out cfg.Neighbors)
//   - identity passing (f), so every recipient gets the same vector
//
// After all events: mails per node are mean-reduced (ρ) and delivered (ψ).
//
// Graph writes and k-hop reads are interleaved per event — later events in
// the batch see earlier ones — which is part of the model's semantics;
// restructuring into insert-all-then-sample phases would change scores.
func (p *Propagator) ProcessBatch(events []tgraph.Event, zOf *state.Sharded) {
	if len(events) == 0 {
		return
	}
	s, _ := p.scratch.Get().(*propScratch)
	if s == nil {
		s = &propScratch{}
	}
	if s.inbox == nil {
		s.inbox = make(map[tgraph.NodeID]*mailAccum, 4*len(events))
	}
	if cap(s.mail) < p.cfg.EdgeDim {
		s.mail = make([]float32, p.cfg.EdgeDim)
		s.zScratch = make([]float32, p.cfg.EdgeDim)
	}
	mail := s.mail[:p.cfg.EdgeDim]
	zScratch := s.zScratch[:p.cfg.EdgeDim]

	for _, ev := range events {
		// Graph write first so later events in the batch see earlier ones.
		p.db.AddEvent(ev)

		// One mail buffer serves every event: CopyTo overwrites it fully,
		// and deliver accumulates copies, never the buffer itself.
		zOf.CopyTo(ev.Src, mail)
		tensor.Axpy(mail, ev.Feat, 1)
		zOf.CopyTo(ev.Dst, zScratch)
		tensor.Axpy(mail, zScratch, 1)

		// Hop 0: the interactive nodes themselves.
		p.deliver(s, ev.Src, mail, ev.Time)
		if ev.Dst != ev.Src {
			p.deliver(s, ev.Dst, mail, ev.Time)
		}
		// Hops 1..k−1: neighbors by most-recent sampling, strictly before t,
		// so the mail travels along pre-existing temporal edges.
		if p.cfg.Hops > 1 {
			s.seeds[0], s.seeds[1] = ev.Src, ev.Dst
			hops := p.db.KHopMostRecentInto(&s.khop, s.seeds[:], ev.Time, p.cfg.Neighbors, p.cfg.Hops-1)
			for _, level := range hops {
				for _, inc := range level {
					p.deliver(s, inc.Peer, mail, ev.Time)
				}
			}
		}
	}

	for n, acc := range s.inbox {
		if p.cfg.Reduce != ReduceLatest && acc.n > 1 {
			inv := 1 / float32(acc.n)
			for i := range acc.sum {
				acc.sum[i] *= inv
			}
		}
		p.mbox.Deliver(n, acc.sum, acc.ts)
		p.mailsDelivered.Add(1)
		s.freelist = append(s.freelist, acc)
	}
	clear(s.inbox)
	p.scratch.Put(s)
}
