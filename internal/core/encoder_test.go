package core

import (
	"math/rand"
	"testing"

	"apan/internal/mailbox"
	"apan/internal/nn"
	"apan/internal/state"
	"apan/internal/tgraph"
)

func TestReadInputsGathersSortedMailboxes(t *testing.T) {
	st := state.New(4, 3)
	mb := mailbox.New(4, 2, 3)
	st.Set(1, []float32{7, 8, 9}, 5)
	mb.Deliver(1, []float32{3, 3, 3}, 3)
	mb.Deliver(1, []float32{1, 1, 1}, 1) // out of order

	in := ReadInputs(st, mb, []tgraph.NodeID{1, 2}, []float64{10, 10})
	if in.ZPrev.At(0, 0) != 7 || in.ZPrev.At(1, 0) != 0 {
		t.Fatalf("zprev: %v", in.ZPrev.Data)
	}
	if in.Counts[0] != 2 || in.Counts[1] != 0 {
		t.Fatalf("counts: %v", in.Counts)
	}
	// Slot 0 of node 1's block must be the t=1 mail after sorting.
	if in.Mails.At(0, 0) != 1 || in.Mails.At(1, 0) != 3 {
		t.Fatalf("mail order: %v", in.Mails.Data[:6])
	}
	// Time deltas relative to the query time.
	if in.DTs[0] != 9 || in.DTs[1] != 7 {
		t.Fatalf("dts: %v", in.DTs[:2])
	}
	// Empty node: zero rows, zero dts.
	if in.DTs[2] != 0 || in.Mails.At(2, 0) != 0 {
		t.Fatal("empty mailbox should contribute zeros")
	}
}

func TestEncoderDeterministicOnInferenceTape(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	cfg := tinyConfig(4)
	if err := cfg.Normalize(); err != nil {
		t.Fatal(err)
	}
	enc := NewEncoder(cfg, rng)
	st := state.New(4, 16)
	mb := mailbox.New(4, cfg.Slots, 16)
	mail := make([]float32, 16)
	mail[2] = 1
	mb.Deliver(0, mail, 1)
	in := ReadInputs(st, mb, []tgraph.NodeID{0}, []float64{2})

	var prev []float32
	for i := 0; i < 3; i++ {
		tp := nn.NewTape()
		z, att := enc.Forward(tp, in)
		if att == nil {
			t.Fatal("no attention record")
		}
		cur := append([]float32(nil), z.Value().Row(0)...)
		if prev != nil {
			for j := range cur {
				if cur[j] != prev[j] {
					t.Fatal("inference not deterministic")
				}
			}
		}
		prev = cur
	}
}

func TestEncoderDropoutOnlyInTraining(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	cfg := tinyConfig(4)
	cfg.Dropout = 0.5
	if err := cfg.Normalize(); err != nil {
		t.Fatal(err)
	}
	enc := NewEncoder(cfg, rng)
	st := state.New(4, 16)
	mb := mailbox.New(4, cfg.Slots, 16)
	mail := make([]float32, 16)
	mail[0] = 1
	mb.Deliver(0, mail, 1)
	in := ReadInputs(st, mb, []tgraph.NodeID{0}, []float64{2})

	// Two training passes should differ (dropout masks), inference passes
	// must not.
	t1, _ := encOnce(enc, in, true, 1)
	t2, _ := encOnce(enc, in, true, 2)
	same := true
	for j := range t1 {
		if t1[j] != t2[j] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("training passes identical despite dropout")
	}
}

func encOnce(enc *Encoder, in *EncodeInput, training bool, seed int64) ([]float32, []float32) {
	tp := nn.NewTape()
	if training {
		tp = nn.NewTrainingTape(rand.New(rand.NewSource(seed)))
	}
	z, _ := enc.Forward(tp, in)
	return append([]float32(nil), z.Value().Row(0)...), nil
}
