package core

import (
	"fmt"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"apan/internal/tgraph"
	"apan/internal/wal"
)

func openTestWAL(t *testing.T, dir string, policy wal.Policy) *wal.Log {
	t.Helper()
	l, err := wal.Open(wal.Options{Dir: dir, Policy: policy})
	if err != nil {
		t.Fatal(err)
	}
	return l
}

// TestWALCheckpointRecoverDigest is the core-level crash-recovery contract:
// checkpoint + replay-to-watermark reconstructs the exact pre-crash runtime.
// A model streams with a WAL attached, checkpoints mid-stream, streams on,
// then "crashes" (Abandon: the log is dropped without a final flush, keeping
// only what commit acknowledgement already made durable). A fresh process
// loads the checkpoint, replays the log past the watermark, and must land on
// a bitwise-identical RuntimeDigest — then keep serving, ending bitwise
// equal to a process that never crashed at all.
func TestWALCheckpointRecoverDigest(t *testing.T) {
	dir := t.TempDir()
	walDir := filepath.Join(dir, "wal")
	ckpt := filepath.Join(dir, "ckpt")

	batches := make([][]tgraph.Event, 20)
	for i := range batches {
		batches[i] = concBatch(int32(3*i), 8, float64(100*i))
	}

	m := concModel(t, 8)
	if err := m.AttachWAL(openTestWAL(t, walDir, wal.SyncGroup)); err != nil {
		t.Fatal(err)
	}
	apply := func(m *Model, b []tgraph.Event) {
		inf := m.InferBatch(b)
		m.ApplyInference(inf)
		inf.Release()
	}
	for _, b := range batches[:8] {
		apply(m, b)
	}
	wm, err := m.Checkpoint(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	if wm != uint64(m.GraphEvents()) {
		t.Fatalf("checkpoint watermark %d, graph has %d events", wm, m.GraphEvents())
	}
	for _, b := range batches[8:15] {
		apply(m, b)
	}
	crashDigest := m.RuntimeDigest()
	crashEvents := m.GraphEvents()
	m.DetachWAL().Abandon() // crash: no Close, no final flush

	// Recovery: fresh process, same binary/config.
	m2 := concModel(t, 8)
	if err := m2.LoadCheckpointFile(ckpt); err != nil {
		t.Fatal(err)
	}
	if got := m2.GraphEvents(); uint64(got) != wm {
		t.Fatalf("checkpoint restored %d events, watermark says %d", got, wm)
	}
	log2 := openTestWAL(t, walDir, wal.SyncGroup)
	replayed, err := m2.RecoverWAL(log2)
	if err != nil {
		t.Fatal(err)
	}
	if want := crashEvents - int(wm); replayed != want {
		t.Fatalf("replayed %d events, want %d", replayed, want)
	}
	if got := m2.RuntimeDigest(); got != crashDigest {
		t.Fatalf("recovered digest %016x != pre-crash digest %016x", got, crashDigest)
	}

	// The recovered replica keeps serving where the crashed one left off…
	if err := m2.AttachWAL(log2); err != nil {
		t.Fatal(err)
	}
	for _, b := range batches[15:] {
		apply(m2, b)
	}
	if err := m2.DetachWAL().Close(); err != nil {
		t.Fatal(err)
	}

	// …and ends bitwise equal to an uninterrupted run of the whole stream.
	ref := concModel(t, 8)
	for _, b := range batches {
		apply(ref, b)
	}
	if got, want := m2.RuntimeDigest(), ref.RuntimeDigest(); got != want {
		t.Fatalf("post-recovery stream digest %016x != uninterrupted digest %016x", got, want)
	}
}

// TestRecoverWALRejectsAttached: replaying with a WAL attached would re-log
// every replayed batch; the API must refuse.
func TestRecoverWALRejectsAttached(t *testing.T) {
	m := concModel(t, 4)
	l := openTestWAL(t, t.TempDir(), wal.SyncNone)
	if err := m.AttachWAL(l); err != nil {
		t.Fatal(err)
	}
	if _, err := m.RecoverWAL(l); err == nil {
		t.Fatal("RecoverWAL with a WAL attached must fail")
	}
	if err := m.DetachWAL().Close(); err != nil {
		t.Fatal(err)
	}
}

// TestAttachWALTwiceFails: a second attach must be rejected, and detach must
// return the original log.
func TestAttachWALTwiceFails(t *testing.T) {
	m := concModel(t, 4)
	l := openTestWAL(t, t.TempDir(), wal.SyncNone)
	if err := m.AttachWAL(l); err != nil {
		t.Fatal(err)
	}
	if err := m.AttachWAL(l); err == nil {
		t.Fatal("double attach must fail")
	}
	if got := m.DetachWAL(); got != l {
		t.Fatalf("DetachWAL returned %p, want %p", got, l)
	}
	if m.WAL() != nil {
		t.Fatal("WAL still attached after detach")
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestInferBatchProceedsDuringCut proves the non-blocking-snapshot claim
// structurally: a checkpoint cut holds exactly storeMu shared + the apply
// gate exclusive + graphMu, and the synchronous link must score right
// through it. (Before the durability work, SnapshotRuntime took the store
// latch exclusively and this would deadlock-by-timeout.)
func TestInferBatchProceedsDuringCut(t *testing.T) {
	m := concModel(t, 8)
	m.EvalStream(concBatch(0, 32, 0), nil)
	batch := concBatch(5, 8, 50)

	// Hold the full lock set of runtimeCut.
	m.storeMu.RLock()
	m.applyMu.Lock()
	m.graphMu.Lock()

	done := make(chan *Inference, 1)
	go func() { done <- m.InferBatch(batch) }()
	select {
	case inf := <-done:
		if len(inf.Scores) != len(batch) {
			t.Errorf("scored %d of %d events", len(inf.Scores), len(batch))
		}
		inf.Release()
	case <-time.After(10 * time.Second):
		t.Error("InferBatch blocked behind a snapshot cut")
	}

	m.graphMu.Unlock()
	m.applyMu.Unlock()
	m.storeMu.RUnlock()
}

// TestConcurrentCheckpointServing is the deadlock/race regression for the
// full durability lock order (storeMu → applyMu → shard locks | graphMu):
// scorers, appliers, a checkpoint+truncate loop, a digest loop and dynamic
// node admission all run at once against a WAL-attached model. Run under
// -race. Afterwards the crash-free recovery path (load last checkpoint,
// replay to end) must account for every logged event.
func TestConcurrentCheckpointServing(t *testing.T) {
	dir := t.TempDir()
	walDir := filepath.Join(dir, "wal")

	m := concModel(t, 8)
	l := openTestWAL(t, walDir, wal.SyncNone)
	if err := m.AttachWAL(l); err != nil {
		t.Fatal(err)
	}
	m.EvalStream(concBatch(0, 32, 0), nil)

	const rounds = 30
	var (
		wg     sync.WaitGroup
		mu     sync.Mutex
		lastCk string
		lastWM uint64
	)
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				inf := m.InferBatch(concBatch(int32(g), 8, float64(100+i)))
				m.ApplyInference(inf)
				inf.Release()
			}
		}(g)
	}
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				m.InferBatch(concBatch(int32(8+g), 8, float64(100+i))).Release()
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 8; i++ {
			path := filepath.Join(dir, fmt.Sprintf("ck-%d", i))
			wm, err := m.Checkpoint(path)
			if err != nil {
				t.Errorf("checkpoint %d: %v", i, err)
				return
			}
			if _, err := l.TruncateBefore(wm); err != nil {
				t.Errorf("truncate at %d: %v", wm, err)
				return
			}
			mu.Lock()
			lastCk, lastWM = path, wm
			mu.Unlock()
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 8; i++ {
			m.RuntimeDigest()
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for n := 40; n <= 96; n += 8 {
			m.EnsureNodes(n)
		}
	}()
	wg.Wait()

	final := m.GraphEvents()
	if err := m.DetachWAL().Close(); err != nil {
		t.Fatal(err)
	}
	if lastCk == "" {
		t.Fatal("no checkpoint completed")
	}

	// Crash-free recovery: last checkpoint + replay to end covers the stream.
	m2 := concModel(t, 8)
	if err := m2.LoadCheckpointFile(lastCk); err != nil {
		t.Fatal(err)
	}
	if got := uint64(m2.GraphEvents()); got != lastWM {
		t.Fatalf("checkpoint restored %d events, watermark %d", got, lastWM)
	}
	log2 := openTestWAL(t, walDir, wal.SyncNone)
	replayed, err := m2.RecoverWAL(log2)
	if err != nil {
		t.Fatal(err)
	}
	if want := final - int(lastWM); replayed != want {
		t.Fatalf("replayed %d events, want %d (final %d, watermark %d)", replayed, want, final, lastWM)
	}
	if got := m2.GraphEvents(); got != final {
		t.Fatalf("recovered graph has %d events, live run had %d", got, final)
	}
	if err := log2.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestInferBatchZeroAllocSteadyStateWAL re-runs the hot-path allocation
// guard with durability enabled: attaching a WAL must not put a single
// allocation on the synchronous link (the log is touched only at the apply
// point), and the apply path's WAL append itself is allocation-free at
// steady state (see wal's TestBeginSteadyStateAllocs).
func TestInferBatchZeroAllocSteadyStateWAL(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation allocates")
	}
	ds := tinyData(1)
	cfg := tinyConfig(ds.NumNodes)
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.AttachWAL(openTestWAL(t, t.TempDir(), wal.SyncNone)); err != nil {
		t.Fatal(err)
	}
	m.EvalStream(ds.Events[:200], nil)
	batch := ds.Events[200:240]
	for i := 0; i < 3; i++ {
		m.InferBatch(batch).Release()
	}
	allocs := testing.AllocsPerRun(50, func() {
		m.InferBatch(batch).Release()
	})
	if allocs > 0 {
		t.Fatalf("steady-state InferBatch allocated %.2f times per op with WAL attached, want 0", allocs)
	}
	if err := m.DetachWAL().Close(); err != nil {
		t.Fatal(err)
	}
}
