package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"testing"

	"apan/internal/async"
	"apan/internal/tgraph"
)

// getStats fetches and decodes GET /v1/stats.
func getStats(t *testing.T, url string) StatsResponse {
	t.Helper()
	resp, err := http.Get(url + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sr StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		t.Fatal(err)
	}
	return sr
}

// TestTenantRoundTrip proves the tenant id survives the wire in both
// directions: the JSON field and the X-Tenant header attribute the request,
// the response echoes the tenant, and /v1/stats carries its ledger.
func TestTenantRoundTrip(t *testing.T) {
	ts, _ := newTestServer(t, Options{},
		async.WithTenants(async.TenantConfig{ID: "acme", Weight: 2}))

	// Batch body with the JSON field.
	resp, raw := postScore(t, ts.URL, ScoreRequest{
		Events: []EventJSON{{Src: 0, Dst: 1, Time: 1, Feat: feat()}},
		Tenant: "acme",
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, raw)
	}
	var sr ScoreResponse
	if err := json.Unmarshal(raw, &sr); err != nil {
		t.Fatal(err)
	}
	if sr.Tenant != "acme" {
		t.Fatalf("response tenant %q, want acme: %s", sr.Tenant, raw)
	}

	// Single-event body with the header only.
	buf, _ := json.Marshal(EventJSON{Src: 2, Dst: 3, Time: 2, Feat: feat()})
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/score", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Tenant", "acme")
	hresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer hresp.Body.Close()
	var hr ScoreResponse
	if err := json.NewDecoder(hresp.Body).Decode(&hr); err != nil {
		t.Fatal(err)
	}
	if hresp.StatusCode != http.StatusOK || hr.Tenant != "acme" {
		t.Fatalf("header-attributed request: status %d tenant %q", hresp.StatusCode, hr.Tenant)
	}

	stats := getStats(t, ts.URL)
	acme, ok := stats.Tenants["acme"]
	if !ok {
		t.Fatalf("stats missing tenants block for acme: %+v", stats.Tenants)
	}
	if acme.Submitted != 2 {
		t.Fatalf("acme submitted %d, want 2", acme.Submitted)
	}
	if acme.Weight != 2 {
		t.Fatalf("acme weight %d, want 2", acme.Weight)
	}
	if _, ok := stats.Tenants[async.DefaultTenant]; !ok {
		t.Fatal("stats should always carry the default tenant")
	}
}

// TestTenant429RateLimited proves a spent rate bucket answers a structured
// 429 whose body names the tenant — the full wire round-trip of satellite
// accounting: the drop also lands on the tenant's ledger in /v1/stats.
func TestTenant429RateLimited(t *testing.T) {
	ts, _ := newTestServer(t, Options{},
		async.WithTenants(async.TenantConfig{ID: "burster", Rate: 0.5, Burst: 1}))

	ev := []EventJSON{{Src: 0, Dst: 1, Time: 1, Feat: feat()}}
	resp, raw := postScore(t, ts.URL, ScoreRequest{Events: ev, Tenant: "burster"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("first request should pass: %d %s", resp.StatusCode, raw)
	}

	// Same event time: the event-time bucket cannot have refilled.
	resp, raw = postScore(t, ts.URL, ScoreRequest{Events: ev, Tenant: "burster"})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429: %s", resp.StatusCode, raw)
	}
	var eb ErrorBody
	if err := json.Unmarshal(raw, &eb); err != nil {
		t.Fatal(err)
	}
	if eb.Error.Code != "rate_limited" {
		t.Fatalf("code %q, want rate_limited", eb.Error.Code)
	}
	if eb.Error.Tenant != "burster" {
		t.Fatalf("429 body tenant %q, want burster: %s", eb.Error.Tenant, raw)
	}

	stats := getStats(t, ts.URL)
	b := stats.Tenants["burster"]
	if b.RateLimited != 1 || b.Dropped != 1 {
		t.Fatalf("ledger after 429: %+v", b)
	}
	if b.Submitted != 2 {
		t.Fatalf("submitted %d, want 2 (rate-limited attempts count)", b.Submitted)
	}
}

// TestTenant429QueueFull proves a full tenant queue answers 429
// tenant_queue_full (not the shared 503) with the tenant named.
func TestTenant429QueueFull(t *testing.T) {
	gate := make(chan struct{})
	parked := make(chan struct{}, 8)
	ts, pipe := newTestServer(t, Options{},
		async.WithTenants(async.TenantConfig{ID: "bulk", QueueCap: 1}),
		async.WithBeforeApply(func(_ []tgraph.Event) { parked <- struct{}{}; <-gate }),
	)
	_ = pipe
	defer close(gate)

	ev := func(tm float64) ScoreRequest {
		return ScoreRequest{Events: []EventJSON{{Src: 0, Dst: 1, Time: tm, Feat: feat()}}, Tenant: "bulk"}
	}
	// First submission is dequeued and parks the worker; wait until it has.
	if resp, raw := postScore(t, ts.URL, ev(1)); resp.StatusCode != http.StatusOK {
		t.Fatalf("first: %d %s", resp.StatusCode, raw)
	}
	<-parked
	// Second fills the 1-slot queue.
	if resp, raw := postScore(t, ts.URL, ev(2)); resp.StatusCode != http.StatusOK {
		t.Fatalf("second: %d %s", resp.StatusCode, raw)
	}
	// Third must shed with a tenant-scoped 429.
	resp, raw := postScore(t, ts.URL, ev(3))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429: %s", resp.StatusCode, raw)
	}
	var eb ErrorBody
	if err := json.Unmarshal(raw, &eb); err != nil {
		t.Fatal(err)
	}
	if eb.Error.Code != "tenant_queue_full" || eb.Error.Tenant != "bulk" {
		t.Fatalf("429 body: %s", raw)
	}
}
