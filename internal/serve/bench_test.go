package serve

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"apan/internal/async"
	"apan/internal/tgraph"
)

// BenchmarkMicroBatch compares serving throughput at ≥ 8 concurrent
// one-event-per-request clients: each client submitting its event straight
// into the pipeline (the pre-v1 pattern) versus riding the server-side
// micro-batcher, which coalesces concurrent requests into one InferBatch
// call (paper Table 5: throughput peaks at large batch). The ev/s metric is
// the one to compare across sub-benchmarks.
func BenchmarkMicroBatch(b *testing.B) {
	const clients = 8

	run := func(b *testing.B, score func(ctx context.Context, ev tgraph.Event) error) {
		ctx := context.Background()
		var next atomic.Int64
		start := time.Now()
		b.ReportAllocs()
		b.ResetTimer()
		var wg sync.WaitGroup
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				for {
					i := next.Add(1)
					if i > int64(b.N) {
						return
					}
					ev := tgraph.Event{
						Src: tgraph.NodeID(int(i) % testNodes), Dst: tgraph.NodeID(int(i+1) % testNodes),
						Time: float64(i), Feat: feat(), Label: -1,
					}
					if err := score(ctx, ev); err != nil {
						b.Error(err)
						return
					}
				}
			}(c)
		}
		wg.Wait()
		b.StopTimer()
		b.ReportMetric(float64(b.N)/time.Since(start).Seconds(), "ev/s")
	}

	b.Run("PerRequest", func(b *testing.B) {
		pipe := async.New(testModel(b), async.WithQueueCap(1024))
		defer pipe.Close()
		run(b, func(ctx context.Context, ev tgraph.Event) error {
			_, _, err := pipe.Submit(ctx, []tgraph.Event{ev})
			return err
		})
	})

	b.Run("Coalesced", func(b *testing.B) {
		pipe := async.New(testModel(b), async.WithQueueCap(1024))
		defer pipe.Close()
		batcher := NewBatcher(pipe, 500*time.Microsecond, 200, 1)
		defer batcher.Close()
		run(b, func(ctx context.Context, ev tgraph.Event) error {
			_, _, _, err := batcher.Score(ctx, ev)
			return err
		})
	})
}
