package serve

import "sync/atomic"

// Replication is the serving surface's view of a warm-standby replica
// (implemented by *replica.Replica): role reporting for stats and routing,
// lag for readiness, and promotion for the admin endpoint. Nil means the
// server is an ordinary standalone leader.
type Replication interface {
	// Role returns "follower" or "leader".
	Role() string
	// LagEvents is how many events the leader is ahead of this replica per
	// the last ship heartbeat (0 for a leader, or before any heartbeat).
	LagEvents() int64
	// Promote turns the follower into a leader; a second call must return
	// replica.ErrAlreadyPromoted.
	Promote() error
}

// Health aggregates operator-maintained degradation signals that readiness
// should reflect but that aren't observable from the pipeline alone — today
// that is periodic-checkpoint health: the checkpoint loop reports each
// attempt, and readiness flips to degraded once the consecutive-failure
// count reaches the limit (a replica that cannot cut checkpoints is
// accumulating unbounded replay debt).
type Health struct {
	failLimit int64
	fails     atomic.Int64
}

// NewHealth returns a tracker that degrades readiness after limit
// consecutive checkpoint failures (limit ≤ 0 means 3).
func NewHealth(limit int) *Health {
	if limit <= 0 {
		limit = 3
	}
	return &Health{failLimit: int64(limit)}
}

// CheckpointFailed records one failed checkpoint attempt and returns the
// consecutive-failure count.
func (h *Health) CheckpointFailed() int64 { return h.fails.Add(1) }

// CheckpointSucceeded resets the consecutive-failure count.
func (h *Health) CheckpointSucceeded() { h.fails.Store(0) }

// CheckpointFailures returns the current consecutive-failure count.
func (h *Health) CheckpointFailures() int64 { return h.fails.Load() }

// Degraded reports whether the failure count has reached the limit.
func (h *Health) Degraded() bool { return h.fails.Load() >= h.failLimit }
