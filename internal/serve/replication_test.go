package serve

import (
	"encoding/json"
	"net/http"
	"testing"

	"apan/internal/replica"
)

// fakeReplication is a scriptable Replication for handler tests; the real
// wiring (replica.Replica over shipped WAL bytes) is covered by the
// replica package and the scenario harness.
type fakeReplication struct {
	role     string
	lag      int64
	promoted bool
}

func (f *fakeReplication) Role() string     { return f.role }
func (f *fakeReplication) LagEvents() int64 { return f.lag }
func (f *fakeReplication) Promote() error {
	if f.promoted {
		return replica.ErrAlreadyPromoted
	}
	f.promoted = true
	f.role = "leader"
	return nil
}

func getJSON(t testing.TB, url string, out any) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatal(err)
	}
	return resp
}

func TestLivenessReadinessSplit(t *testing.T) {
	rep := &fakeReplication{role: "follower", lag: 50}
	health := NewHealth(2)
	ts, _ := newTestServer(t, Options{Replication: rep, MaxLagEvents: 100, Health: health})

	var h HealthResponse
	if resp := getJSON(t, ts.URL+"/v1/livez", &h); resp.StatusCode != http.StatusOK {
		t.Fatalf("livez status %d", resp.StatusCode)
	}
	if resp := getJSON(t, ts.URL+"/v1/readyz", &h); resp.StatusCode != http.StatusOK {
		t.Fatalf("readyz status %d with lag under bound: %+v", resp.StatusCode, h)
	}

	// Lag past the bound: ready flips, live does not.
	rep.lag = 500
	if resp := getJSON(t, ts.URL+"/v1/readyz", &h); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz status %d with lag over bound", resp.StatusCode)
	}
	if h.Status != "degraded" || len(h.Reasons) == 0 {
		t.Fatalf("degraded readyz body: %+v", h)
	}
	if resp := getJSON(t, ts.URL+"/v1/livez", &h); resp.StatusCode != http.StatusOK {
		t.Fatalf("livez status %d while degraded", resp.StatusCode)
	}
	// Legacy healthz: always 200, verdict in the body.
	if resp := getJSON(t, ts.URL+"/v1/healthz", &h); resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}
	if h.Status != "degraded" {
		t.Fatalf("healthz status %q, want degraded", h.Status)
	}
	rep.lag = 0

	// Checkpoint failures below the limit don't degrade; at the limit they do.
	health.CheckpointFailed()
	if resp := getJSON(t, ts.URL+"/v1/readyz", &h); resp.StatusCode != http.StatusOK {
		t.Fatalf("readyz degraded after 1 of 2 allowed checkpoint failures")
	}
	health.CheckpointFailed()
	if resp := getJSON(t, ts.URL+"/v1/readyz", &h); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz status %d after consecutive checkpoint failures", resp.StatusCode)
	}
	health.CheckpointSucceeded()
	if resp := getJSON(t, ts.URL+"/v1/readyz", &h); resp.StatusCode != http.StatusOK {
		t.Fatalf("readyz status %d after checkpoint recovery", resp.StatusCode)
	}
}

func TestPromoteEndpoint(t *testing.T) {
	rep := &fakeReplication{role: "follower"}
	ts, _ := newTestServer(t, Options{Replication: rep})

	resp, err := http.Post(ts.URL+"/v1/admin/promote", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	var pr PromoteResponse
	if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || pr.Role != "leader" {
		t.Fatalf("promote: status %d role %q", resp.StatusCode, pr.Role)
	}

	// Double promotion is fenced with a 409.
	resp2, err := http.Post(ts.URL+"/v1/admin/promote", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusConflict {
		t.Fatalf("second promote: status %d, want 409", resp2.StatusCode)
	}
}

func TestPromoteWithoutReplication(t *testing.T) {
	ts, _ := newTestServer(t, Options{})
	resp, err := http.Post(ts.URL+"/v1/admin/promote", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("promote without replication: status %d, want 404", resp.StatusCode)
	}
}

func TestFollowerScoringReadOnly(t *testing.T) {
	rep := &fakeReplication{role: "follower", lag: 7}
	ts, pipe := newTestServer(t, Options{Replication: rep})

	ev := EventJSON{Src: 0, Dst: 1, Time: 1, Feat: feat()}
	resp, raw := postScore(t, ts.URL, ScoreRequest{EventJSON: ev})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("follower score: status %d body %s", resp.StatusCode, raw)
	}
	var sr ScoreResponse
	if err := json.Unmarshal(raw, &sr); err != nil {
		t.Fatal(err)
	}
	if sr.Role != "follower" || sr.LagEvents != 7 {
		t.Fatalf("follower response not lag-stamped: %+v", sr)
	}
	if got := pipe.Stats().MaxQueueDepth; got != 0 {
		t.Fatalf("follower scoring reached queue depth %d, want 0", got)
	}

	// Scoring must not mutate: repeating the identical request reproduces
	// the identical score (an applied event would shift it).
	_, raw2 := postScore(t, ts.URL, ScoreRequest{EventJSON: ev})
	var sr2 ScoreResponse
	if err := json.Unmarshal(raw2, &sr2); err != nil {
		t.Fatal(err)
	}
	if *sr.Score != *sr2.Score {
		t.Fatalf("follower scores diverged: %v vs %v", *sr.Score, *sr2.Score)
	}

	// Batch path: also read-only, also stamped.
	batch := ScoreRequest{Events: []EventJSON{{Src: 1, Dst: 2, Time: 2, Feat: feat()}, {Src: 2, Dst: 3, Time: 3, Feat: feat()}}}
	resp3, raw3 := postScore(t, ts.URL, batch)
	if resp3.StatusCode != http.StatusOK {
		t.Fatalf("follower batch score: status %d body %s", resp3.StatusCode, raw3)
	}
	var sr3 ScoreResponse
	if err := json.Unmarshal(raw3, &sr3); err != nil {
		t.Fatal(err)
	}
	if sr3.Role != "follower" || len(sr3.Scores) != 2 {
		t.Fatalf("follower batch response: %+v", sr3)
	}
	if got := pipe.Stats().MaxQueueDepth; got != 0 {
		t.Fatalf("follower batch scoring reached queue depth %d, want 0", got)
	}

	// Followers don't admit nodes: an ID beyond the live node space is a 400,
	// not a growth.
	over := ScoreRequest{EventJSON: EventJSON{Src: int32(testNodes), Dst: 0, Time: 4, Feat: feat()}}
	resp4, raw4 := postScore(t, ts.URL, over)
	if resp4.StatusCode != http.StatusBadRequest || errCode(t, raw4) != "node_limit_exceeded" {
		t.Fatalf("follower admission: status %d code %s", resp4.StatusCode, raw4)
	}

	// After promotion the same server serves the write path again.
	rep.role = "leader"
	resp5, raw5 := postScore(t, ts.URL, over)
	if resp5.StatusCode != http.StatusOK {
		t.Fatalf("leader score after promotion: status %d body %s", resp5.StatusCode, raw5)
	}
	var sr5 ScoreResponse
	if err := json.Unmarshal(raw5, &sr5); err != nil {
		t.Fatal(err)
	}
	if sr5.Role == "follower" {
		t.Fatalf("leader response stamped as follower: %+v", sr5)
	}
}

func TestStatsReportReplication(t *testing.T) {
	rep := &fakeReplication{role: "follower", lag: 12}
	ts, _ := newTestServer(t, Options{Replication: rep})
	var st StatsResponse
	if resp := getJSON(t, ts.URL+"/v1/stats", &st); resp.StatusCode != http.StatusOK {
		t.Fatalf("stats status %d", resp.StatusCode)
	}
	if st.Role != "follower" || st.FollowerLagEvents != 12 {
		t.Fatalf("stats replication fields: role %q lag %d", st.Role, st.FollowerLagEvents)
	}
}
