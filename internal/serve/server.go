// Package serve exposes APAN's serving pipeline as a versioned HTTP/JSON
// API — the deployment surface of the paper's Fig. 2b architecture. The
// request path runs only the synchronous link; graph writes and mail
// propagation drain asynchronously behind the pipeline's bounded queue.
//
// v1 endpoints:
//
//	POST /v1/score          score one event or a batch (micro-batched)
//	GET  /v1/stats          pipeline + micro-batcher instrumentation
//	GET  /v1/healthz        liveness and queue headroom
//	GET  /v1/explain/{node} attention explanation for the last scored batch
//
// Single-event POSTs are coalesced server-side: concurrent requests that
// arrive within the configured batch window ride one InferBatch call, so
// the synchronous link runs near the paper's batch-200 sweet spot even
// with one-event-per-request clients. See docs/serving.md for schemas.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"apan/internal/async"
	"apan/internal/tgraph"
)

// Options configures a Server.
type Options struct {
	// BatchWindow is how long a lone single-event request waits for
	// companions before being scored alone. Zero adopts the pipeline's
	// WithBatchWindow setting.
	BatchWindow time.Duration
	// MaxBatch caps the coalesced batch size. Zero means 200 (paper
	// Table 5's throughput sweet spot).
	MaxBatch int
}

// Server is the v1 HTTP serving surface over an async.Pipeline. Create it
// with New, mount it anywhere (it implements http.Handler), and Close it
// before shutting the pipeline down.
type Server struct {
	pipe    *async.Pipeline
	batcher *Batcher
	mux     *http.ServeMux
	start   time.Time
}

// New builds a Server over a started pipeline.
func New(pipe *async.Pipeline, opts Options) *Server {
	s := &Server{
		pipe:    pipe,
		batcher: NewBatcher(pipe, opts.BatchWindow, opts.MaxBatch),
		mux:     http.NewServeMux(),
		start:   time.Now(),
	}
	s.mux.HandleFunc("POST /v1/score", s.handleScore)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.HandleFunc("GET /v1/healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /v1/explain/{node}", s.handleExplain)
	return s
}

func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Close stops the micro-batcher, flushing queued requests. The pipeline is
// owned by the caller and left running.
func (s *Server) Close() { s.batcher.Close() }

// EventJSON is the wire form of one temporal interaction.
type EventJSON struct {
	Src  int32     `json:"src"`
	Dst  int32     `json:"dst"`
	Time float64   `json:"time"`
	Feat []float32 `json:"feat"`
}

// ScoreRequest is the POST /v1/score body: either the single-event fields
// inline, or a batch under "events" (mutually exclusive).
type ScoreRequest struct {
	EventJSON
	Events []EventJSON `json:"events"`
}

// ScoreResponse answers POST /v1/score. Score is set for single-event
// requests, Scores for batches; both report the synchronous-link latency
// the caller's decision system observed and the propagation queue depth.
type ScoreResponse struct {
	Score      *float32  `json:"score,omitempty"`
	Scores     []float32 `json:"scores,omitempty"`
	Count      int       `json:"count"`
	SyncMicros int64     `json:"sync_us"`
	BatchSize  int       `json:"batch_size"`
	QueueDepth int       `json:"queue_depth"`
}

// ErrorBody is the structured error envelope of every non-2xx response.
type ErrorBody struct {
	Error struct {
		Code    string `json:"code"`
		Message string `json:"message"`
	} `json:"error"`
}

// StatsResponse answers GET /v1/stats.
type StatsResponse struct {
	Pipeline      async.Stats  `json:"pipeline"`
	Batcher       BatcherStats `json:"batcher"`
	UptimeSeconds float64      `json:"uptime_s"`
}

// HealthResponse answers GET /v1/healthz.
type HealthResponse struct {
	Status        string  `json:"status"`
	QueueDepth    int     `json:"queue_depth"`
	UptimeSeconds float64 `json:"uptime_s"`
}

// ExplainResponse answers GET /v1/explain/{node}.
type ExplainResponse struct {
	Node        int32       `json:"node"`
	MailWeights []float32   `json:"mail_weights"`
	PerHead     [][]float32 `json:"per_head"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, code, msg string) {
	var body ErrorBody
	body.Error.Code = code
	body.Error.Message = msg
	writeJSON(w, status, body)
}

// validate rejects events that would corrupt or crash the model before they
// reach the pipeline: out-of-range node IDs and wrong feature dimensions.
func (s *Server) validate(i int, ev EventJSON) (code, msg string) {
	n := int32(s.pipe.NumNodes())
	if ev.Src < 0 || ev.Src >= n {
		return "node_out_of_range", fmt.Sprintf("event %d: src %d outside [0,%d)", i, ev.Src, n)
	}
	if ev.Dst < 0 || ev.Dst >= n {
		return "node_out_of_range", fmt.Sprintf("event %d: dst %d outside [0,%d)", i, ev.Dst, n)
	}
	if len(ev.Feat) != s.pipe.EdgeDim() {
		return "bad_feat_dim", fmt.Sprintf("event %d: feat dim %d, want %d", i, len(ev.Feat), s.pipe.EdgeDim())
	}
	return "", ""
}

func toEvent(ev EventJSON) tgraph.Event {
	return tgraph.Event{Src: ev.Src, Dst: ev.Dst, Time: ev.Time, Feat: ev.Feat, Label: -1}
}

func submitErr(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, async.ErrClosed):
		writeError(w, http.StatusServiceUnavailable, "pipeline_closed", err.Error())
	case errors.Is(err, async.ErrQueueFull):
		writeError(w, http.StatusServiceUnavailable, "queue_full", err.Error())
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		// The client went away or timed out — not a server fault, so keep
		// it out of the 5xx budget. (The write usually lands nowhere.)
		writeError(w, http.StatusRequestTimeout, "request_cancelled", err.Error())
	default:
		writeError(w, http.StatusInternalServerError, "submit_failed", err.Error())
	}
}

func (s *Server) handleScore(w http.ResponseWriter, r *http.Request) {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 16<<20))
	var req ScoreRequest
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad_json", err.Error())
		return
	}

	if req.Events != nil { // batch body (an explicit "events" key, even empty)
		if req.Feat != nil {
			writeError(w, http.StatusBadRequest, "ambiguous_body",
				"provide either inline event fields or \"events\", not both")
			return
		}
		if len(req.Events) == 0 {
			writeError(w, http.StatusBadRequest, "empty_batch", "\"events\" must contain at least one event")
			return
		}
		events := make([]tgraph.Event, len(req.Events))
		for i, ev := range req.Events {
			if code, msg := s.validate(i, ev); code != "" {
				writeError(w, http.StatusBadRequest, code, msg)
				return
			}
			events[i] = toEvent(ev)
		}
		scores, lat, err := s.pipe.Submit(r.Context(), events)
		if err != nil {
			submitErr(w, err)
			return
		}
		writeJSON(w, http.StatusOK, ScoreResponse{
			Scores:     scores,
			Count:      len(scores),
			SyncMicros: lat.Microseconds(),
			BatchSize:  len(scores),
			QueueDepth: s.pipe.Stats().QueueDepth,
		})
		return
	}

	// Single-event body, scored through the micro-batcher.
	if code, msg := s.validate(0, req.EventJSON); code != "" {
		writeError(w, http.StatusBadRequest, code, msg)
		return
	}
	score, lat, size, err := s.batcher.Score(r.Context(), toEvent(req.EventJSON))
	if err != nil {
		submitErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, ScoreResponse{
		Score:      &score,
		Count:      1,
		SyncMicros: lat.Microseconds(),
		BatchSize:  size,
		QueueDepth: s.pipe.Stats().QueueDepth,
	})
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, StatsResponse{
		Pipeline:      s.pipe.Stats(),
		Batcher:       s.batcher.Stats(),
		UptimeSeconds: time.Since(s.start).Seconds(),
	})
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, HealthResponse{
		Status:        "ok",
		QueueDepth:    s.pipe.Stats().QueueDepth,
		UptimeSeconds: time.Since(s.start).Seconds(),
	})
}

func (s *Server) handleExplain(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.ParseInt(r.PathValue("node"), 10, 32)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad_node", "node must be an integer")
		return
	}
	if id < 0 || id >= int64(s.pipe.NumNodes()) {
		writeError(w, http.StatusBadRequest, "node_out_of_range",
			fmt.Sprintf("node %d outside [0,%d)", id, s.pipe.NumNodes()))
		return
	}
	ex, ok := s.pipe.Explain(tgraph.NodeID(id))
	if !ok {
		writeError(w, http.StatusNotFound, "no_explanation",
			fmt.Sprintf("node %d was not part of the most recent scored batch", id))
		return
	}
	writeJSON(w, http.StatusOK, ExplainResponse{
		Node:        ex.Node,
		MailWeights: ex.MailWeights,
		PerHead:     ex.PerHead,
	})
}
