// Package serve exposes APAN's serving pipeline as a versioned HTTP/JSON
// API — the deployment surface of the paper's Fig. 2b architecture. The
// request path runs only the synchronous link; graph writes and mail
// propagation drain asynchronously behind the pipeline's bounded queue.
//
// v1 endpoints:
//
//	POST /v1/score                score one event or a batch (micro-batched)
//	GET  /v1/stats                pipeline + batcher + trainer instrumentation
//	GET  /v1/healthz              liveness and queue headroom
//	GET  /v1/explain/{node}       attention explanation for the last scored batch
//	POST /v1/admin/train/freeze   pause online training (when a trainer is wired)
//	POST /v1/admin/train/resume   resume online training
//
// Single-event POSTs are coalesced server-side: concurrent requests that
// arrive within the configured batch window ride one InferBatch call, so
// the synchronous link runs near the paper's batch-200 sweet spot even
// with one-event-per-request clients. Events naming previously unseen node
// IDs are admitted dynamically (the model's sharded stores grow at runtime)
// up to Options.MaxNodes. See docs/serving.md for schemas and semantics.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"sync"
	"time"

	"apan/internal/async"
	"apan/internal/tgraph"
	"apan/internal/train"
	"apan/internal/wal"
)

// Options configures a Server.
type Options struct {
	// BatchWindow is how long a lone single-event request waits for
	// companions before being scored alone. Zero adopts the pipeline's
	// WithBatchWindow setting.
	BatchWindow time.Duration
	// MaxBatch caps the coalesced batch size. Zero means 200 (paper
	// Table 5's throughput sweet spot).
	MaxBatch int
	// FlushConcurrency is how many coalesced batches may score in parallel.
	// The model's sharded stores make concurrent InferBatch calls safe and
	// scalable, so under sustained load extra flush lanes raise throughput;
	// 1 (the zero default) preserves the strictly serialized pre-sharding
	// behavior, which maximizes per-flush batch size instead.
	FlushConcurrency int
	// MaxNodes bounds dynamic node admission: events naming node IDs in
	// [NumNodes, MaxNodes) grow the model's node space instead of being
	// rejected; IDs ≥ MaxNodes get a structured 400 (node_limit_exceeded),
	// since each admitted node costs state+mailbox memory. Zero means 1<<20;
	// negative disables admission entirely (the pre-v1.1 strict 400
	// behavior).
	MaxNodes int
	// Trainer, when non-nil, is the online trainer attached to the served
	// pipeline (async.WithOnlineTrainer): /v1/stats reports its health and
	// the admin endpoints control it. Nil disables the training surface
	// (admin endpoints answer 404 no_trainer).
	//
	// Deliberately the concrete type, unlike async.Trainer (which only
	// needs Observe): the stats handler serializes typed train.Stats, and
	// a concrete pointer keeps the nil check honest — an interface field
	// here would turn a nil *OnlineTrainer into a non-nil interface and
	// panic on first admin call.
	Trainer *train.OnlineTrainer
}

// Server is the v1 HTTP serving surface over an async.Pipeline. Create it
// with New, mount it anywhere (it implements http.Handler), and Close it
// before shutting the pipeline down: Close waits for every in-flight
// handler — score, admin and explain alike — so a subsequent
// Pipeline.Shutdown can never race a request still using the pipeline.
type Server struct {
	pipe     *async.Pipeline
	batcher  *Batcher
	trainer  *train.OnlineTrainer
	mux      *http.ServeMux
	start    time.Time
	maxNodes int

	// closeMu/closed gate new requests during shutdown; handlerWG counts
	// requests in flight so Close can wait them out.
	closeMu   sync.RWMutex
	closed    bool
	handlerWG sync.WaitGroup
}

// New builds a Server over a started pipeline.
func New(pipe *async.Pipeline, opts Options) *Server {
	maxNodes := opts.MaxNodes
	switch {
	case maxNodes == 0:
		maxNodes = 1 << 20
	case maxNodes < 0:
		maxNodes = -1 // strict: limit tracks the live node space (validate)
	case maxNodes > math.MaxInt32:
		maxNodes = math.MaxInt32 // node IDs are int32 on the wire
	}
	s := &Server{
		pipe:     pipe,
		batcher:  NewBatcher(pipe, opts.BatchWindow, opts.MaxBatch, opts.FlushConcurrency),
		trainer:  opts.Trainer,
		mux:      http.NewServeMux(),
		start:    time.Now(),
		maxNodes: maxNodes,
	}
	s.mux.HandleFunc("POST /v1/score", s.handleScore)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.HandleFunc("GET /v1/healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /v1/explain/{node}", s.handleExplain)
	s.mux.HandleFunc("POST /v1/admin/train/freeze", s.handleTrainFreeze)
	s.mux.HandleFunc("POST /v1/admin/train/resume", s.handleTrainResume)
	return s
}

// ServeHTTP dispatches a request, registering it with the in-flight
// accounting Close waits on. Requests arriving after Close starts get a
// structured 503.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.closeMu.RLock()
	if s.closed {
		s.closeMu.RUnlock()
		writeError(w, http.StatusServiceUnavailable, "server_closing", "the server is shutting down")
		return
	}
	s.handlerWG.Add(1)
	s.closeMu.RUnlock()
	defer s.handlerWG.Done()
	s.mux.ServeHTTP(w, r)
}

// Close stops accepting requests, flushes and stops the micro-batcher, and
// waits for every in-flight handler to return. After Close the caller may
// safely Shutdown the pipeline: no handler still references it. The
// pipeline itself is owned by the caller and left running; an attached
// trainer is likewise left to the caller to Stop.
func (s *Server) Close() {
	s.closeMu.Lock()
	s.closed = true
	s.closeMu.Unlock()
	// Both calls are safe and blocking under concurrent Close: a repeat
	// batcher.Close waits for the first to finish, and every Close waits
	// out the in-flight handlers — so whichever caller returns first, the
	// pipeline is no longer referenced by any handler.
	s.batcher.Close()
	s.handlerWG.Wait()
}

// EventJSON is the wire form of one temporal interaction.
type EventJSON struct {
	Src  int32     `json:"src"`
	Dst  int32     `json:"dst"`
	Time float64   `json:"time"`
	Feat []float32 `json:"feat"`
}

// ScoreRequest is the POST /v1/score body: either the single-event fields
// inline, or a batch under "events" (mutually exclusive).
type ScoreRequest struct {
	EventJSON
	Events []EventJSON `json:"events"`
}

// ScoreResponse answers POST /v1/score. Score is set for single-event
// requests, Scores for batches; both report the synchronous-link latency
// the caller's decision system observed and the propagation queue depth.
type ScoreResponse struct {
	Score      *float32  `json:"score,omitempty"`
	Scores     []float32 `json:"scores,omitempty"`
	Count      int       `json:"count"`
	SyncMicros int64     `json:"sync_us"`
	BatchSize  int       `json:"batch_size"`
	QueueDepth int       `json:"queue_depth"`
}

// ErrorBody is the structured error envelope of every non-2xx response.
type ErrorBody struct {
	Error struct {
		Code    string `json:"code"`
		Message string `json:"message"`
	} `json:"error"`
}

// StatsResponse answers GET /v1/stats.
type StatsResponse struct {
	Pipeline async.Stats  `json:"pipeline"`
	Batcher  BatcherStats `json:"batcher"`
	// ParamVersion is the served model's currently published parameter
	// version; it advances on every hot swap (online trainer publish,
	// checkpoint load).
	ParamVersion uint64 `json:"param_version"`
	// GraphBackend is the temporal-graph store behind the served model
	// (flat, sharded, remote-sim).
	GraphBackend string `json:"graph_backend"`
	// Training reports online-trainer health; absent when no trainer is
	// attached.
	Training *train.Stats `json:"training,omitempty"`
	// WAL reports write-ahead-log health — indices, segment count, flush and
	// fsync counters, and any latched I/O error (serving degrades to
	// best-effort durability rather than failing applies; the operator sees
	// it here). Absent when the model serves without a WAL.
	WAL           *wal.Stats `json:"wal,omitempty"`
	UptimeSeconds float64    `json:"uptime_s"`
}

// TrainAdminResponse answers the POST /v1/admin/train/{freeze,resume}
// endpoints.
type TrainAdminResponse struct {
	Frozen       bool   `json:"frozen"`
	ParamVersion uint64 `json:"param_version"`
}

// HealthResponse answers GET /v1/healthz.
type HealthResponse struct {
	Status        string  `json:"status"`
	QueueDepth    int     `json:"queue_depth"`
	UptimeSeconds float64 `json:"uptime_s"`
}

// ExplainResponse answers GET /v1/explain/{node}.
type ExplainResponse struct {
	Node        int32       `json:"node"`
	MailWeights []float32   `json:"mail_weights"`
	PerHead     [][]float32 `json:"per_head"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, code, msg string) {
	var body ErrorBody
	body.Error.Code = code
	body.Error.Message = msg
	writeJSON(w, status, body)
}

// validate rejects events that would corrupt or crash the model before they
// reach the pipeline: negative or over-limit node IDs and wrong feature
// dimensions. IDs in [NumNodes, maxNodes) are valid — admit (below) grows
// the model to cover them before submission (dynamic node admission).
func (s *Server) validate(i int, ev EventJSON) (code, msg string) {
	limit := int32(s.maxNodes)
	if s.maxNodes < 0 {
		// Strict mode: no admission, but the node space can still grow
		// legitimately (LoadCheckpoint of a grown checkpoint), so consult
		// it live rather than freezing the construction-time value.
		limit = int32(s.pipe.NumNodes())
	}
	if ev.Src < 0 || ev.Dst < 0 {
		return "node_out_of_range", fmt.Sprintf("event %d: node ids must be non-negative (src %d, dst %d)", i, ev.Src, ev.Dst)
	}
	if ev.Src >= limit || ev.Dst >= limit {
		return "node_limit_exceeded", fmt.Sprintf("event %d: node id %d exceeds the admission limit %d", i, max(ev.Src, ev.Dst), limit)
	}
	if len(ev.Feat) != s.pipe.EdgeDim() {
		return "bad_feat_dim", fmt.Sprintf("event %d: feat dim %d, want %d", i, len(ev.Feat), s.pipe.EdgeDim())
	}
	return "", ""
}

// admit grows the model's node space to cover every endpoint of the batch.
// Called after validate, so IDs are known to be within the admission limit.
// Growth is amortized: since every admission briefly stops the world, the
// space grows by at least half again (capped at the limit), so a stream of
// monotonically increasing IDs triggers O(log n) growths, not one per
// request.
func (s *Server) admit(events []tgraph.Event) {
	var maxID int32 = -1
	for _, ev := range events {
		if ev.Src > maxID {
			maxID = ev.Src
		}
		if ev.Dst > maxID {
			maxID = ev.Dst
		}
	}
	n := s.pipe.NumNodes()
	if int(maxID) < n {
		return
	}
	target := int(maxID) + 1
	if headroom := n + n/2; headroom > target {
		target = headroom
	}
	if s.maxNodes >= 0 && target > s.maxNodes {
		target = s.maxNodes
	}
	s.pipe.EnsureNodes(target)
}

func toEvent(ev EventJSON) tgraph.Event {
	return tgraph.Event{Src: ev.Src, Dst: ev.Dst, Time: ev.Time, Feat: ev.Feat, Label: -1}
}

func submitErr(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, async.ErrClosed):
		writeError(w, http.StatusServiceUnavailable, "pipeline_closed", err.Error())
	case errors.Is(err, async.ErrQueueFull):
		writeError(w, http.StatusServiceUnavailable, "queue_full", err.Error())
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		// The client went away or timed out — not a server fault, so keep
		// it out of the 5xx budget. (The write usually lands nowhere.)
		writeError(w, http.StatusRequestTimeout, "request_cancelled", err.Error())
	default:
		writeError(w, http.StatusInternalServerError, "submit_failed", err.Error())
	}
}

func (s *Server) handleScore(w http.ResponseWriter, r *http.Request) {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 16<<20))
	var req ScoreRequest
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad_json", err.Error())
		return
	}

	if req.Events != nil { // batch body (an explicit "events" key, even empty)
		if req.Feat != nil {
			writeError(w, http.StatusBadRequest, "ambiguous_body",
				"provide either inline event fields or \"events\", not both")
			return
		}
		if len(req.Events) == 0 {
			writeError(w, http.StatusBadRequest, "empty_batch", "\"events\" must contain at least one event")
			return
		}
		events := make([]tgraph.Event, len(req.Events))
		for i, ev := range req.Events {
			if code, msg := s.validate(i, ev); code != "" {
				writeError(w, http.StatusBadRequest, code, msg)
				return
			}
			events[i] = toEvent(ev)
		}
		s.admit(events)
		scores, lat, err := s.pipe.Submit(r.Context(), events)
		if err != nil {
			submitErr(w, err)
			return
		}
		writeJSON(w, http.StatusOK, ScoreResponse{
			Scores:     scores,
			Count:      len(scores),
			SyncMicros: lat.Microseconds(),
			BatchSize:  len(scores),
			QueueDepth: s.pipe.Stats().QueueDepth,
		})
		return
	}

	// Single-event body, scored through the micro-batcher.
	if code, msg := s.validate(0, req.EventJSON); code != "" {
		writeError(w, http.StatusBadRequest, code, msg)
		return
	}
	ev := toEvent(req.EventJSON)
	s.admit([]tgraph.Event{ev})
	score, lat, size, err := s.batcher.Score(r.Context(), ev)
	if err != nil {
		submitErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, ScoreResponse{
		Score:      &score,
		Count:      1,
		SyncMicros: lat.Microseconds(),
		BatchSize:  size,
		QueueDepth: s.pipe.Stats().QueueDepth,
	})
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	resp := StatsResponse{
		Pipeline:      s.pipe.Stats(),
		Batcher:       s.batcher.Stats(),
		ParamVersion:  s.pipe.ParamVersion(),
		GraphBackend:  s.pipe.GraphBackend(),
		WAL:           s.pipe.WALStats(),
		UptimeSeconds: time.Since(s.start).Seconds(),
	}
	if s.trainer != nil {
		st := s.trainer.Stats()
		resp.Training = &st
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleTrainFreeze(w http.ResponseWriter, _ *http.Request) {
	if s.trainer == nil {
		writeError(w, http.StatusNotFound, "no_trainer", "no online trainer is attached to this server")
		return
	}
	s.trainer.Freeze()
	writeJSON(w, http.StatusOK, TrainAdminResponse{Frozen: true, ParamVersion: s.pipe.ParamVersion()})
}

func (s *Server) handleTrainResume(w http.ResponseWriter, _ *http.Request) {
	if s.trainer == nil {
		writeError(w, http.StatusNotFound, "no_trainer", "no online trainer is attached to this server")
		return
	}
	s.trainer.Resume()
	writeJSON(w, http.StatusOK, TrainAdminResponse{Frozen: false, ParamVersion: s.pipe.ParamVersion()})
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, HealthResponse{
		Status:        "ok",
		QueueDepth:    s.pipe.Stats().QueueDepth,
		UptimeSeconds: time.Since(s.start).Seconds(),
	})
}

func (s *Server) handleExplain(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.ParseInt(r.PathValue("node"), 10, 32)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad_node", "node must be an integer")
		return
	}
	if id < 0 || id >= int64(s.pipe.NumNodes()) {
		writeError(w, http.StatusBadRequest, "node_out_of_range",
			fmt.Sprintf("node %d outside [0,%d)", id, s.pipe.NumNodes()))
		return
	}
	ex, ok := s.pipe.Explain(tgraph.NodeID(id))
	if !ok {
		writeError(w, http.StatusNotFound, "no_explanation",
			fmt.Sprintf("node %d was not part of the most recent scored batch", id))
		return
	}
	writeJSON(w, http.StatusOK, ExplainResponse{
		Node:        ex.Node,
		MailWeights: ex.MailWeights,
		PerHead:     ex.PerHead,
	})
}
