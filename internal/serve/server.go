// Package serve exposes APAN's serving pipeline as a versioned HTTP/JSON
// API — the deployment surface of the paper's Fig. 2b architecture. The
// request path runs only the synchronous link; graph writes and mail
// propagation drain asynchronously behind the pipeline's bounded queue.
//
// v1 endpoints:
//
//	POST /v1/score                score one event or a batch (micro-batched)
//	GET  /v1/stats                pipeline + batcher + trainer + replication instrumentation
//	GET  /v1/livez                liveness: 200 while the process serves HTTP at all
//	GET  /v1/readyz               readiness: 503 + reasons when serving is degraded
//	GET  /v1/healthz              legacy combined health (always 200; status ok|degraded)
//	GET  /v1/explain/{node}       attention explanation for the last scored batch
//	POST /v1/admin/train/freeze   pause online training (when a trainer is wired)
//	POST /v1/admin/train/resume   resume online training
//	POST /v1/admin/promote        promote a warm-standby follower to leader
//
// Liveness and readiness are split deliberately: a follower replaying
// shipped WAL segments, or a leader whose WAL latched an fsync error, is
// alive (restarting it would only lose warm state) but may be unready —
// lag beyond Options.MaxLagEvents, a latched WAL error, or repeated
// checkpoint failures all flip /v1/readyz to 503 with machine-readable
// reasons while /v1/livez stays 200.
//
// With Options.Replication wired and the replica in the follower role,
// /v1/score serves read-only from the lag-stamped replayed state
// (Pipeline.ScoreOnly): nothing is applied, node admission is disabled,
// and every response carries the role and the current lag so callers can
// judge staleness.
//
// Single-event POSTs are coalesced server-side: concurrent requests that
// arrive within the configured batch window ride one InferBatch call, so
// the synchronous link runs near the paper's batch-200 sweet spot even
// with one-event-per-request clients. Events naming previously unseen node
// IDs are admitted dynamically (the model's sharded stores grow at runtime)
// up to Options.MaxNodes. See docs/serving.md for schemas and semantics.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"sync"
	"time"

	"apan/internal/async"
	"apan/internal/core"
	"apan/internal/replica"
	"apan/internal/tgraph"
	"apan/internal/train"
	"apan/internal/wal"
)

// Options configures a Server.
type Options struct {
	// BatchWindow is how long a lone single-event request waits for
	// companions before being scored alone. Zero adopts the pipeline's
	// WithBatchWindow setting.
	BatchWindow time.Duration
	// MaxBatch caps the coalesced batch size. Zero means 200 (paper
	// Table 5's throughput sweet spot).
	MaxBatch int
	// FlushConcurrency is how many coalesced batches may score in parallel.
	// The model's sharded stores make concurrent InferBatch calls safe and
	// scalable, so under sustained load extra flush lanes raise throughput;
	// 1 (the zero default) preserves the strictly serialized pre-sharding
	// behavior, which maximizes per-flush batch size instead.
	FlushConcurrency int
	// MaxNodes bounds dynamic node admission: events naming node IDs in
	// [NumNodes, MaxNodes) grow the model's node space instead of being
	// rejected; IDs ≥ MaxNodes get a structured 400 (node_limit_exceeded),
	// since each admitted node costs state+mailbox memory. Zero means 1<<20;
	// negative disables admission entirely (the pre-v1.1 strict 400
	// behavior).
	MaxNodes int
	// Trainer, when non-nil, is the online trainer attached to the served
	// pipeline (async.WithOnlineTrainer): /v1/stats reports its health and
	// the admin endpoints control it. Nil disables the training surface
	// (admin endpoints answer 404 no_trainer).
	//
	// Deliberately the concrete type, unlike async.Trainer (which only
	// needs Observe): the stats handler serializes typed train.Stats, and
	// a concrete pointer keeps the nil check honest — an interface field
	// here would turn a nil *OnlineTrainer into a non-nil interface and
	// panic on first admin call.
	Trainer *train.OnlineTrainer
	// Replication, when non-nil, wires a warm-standby replica into the
	// serving surface: /v1/score routes through the read-only path while the
	// replica is a follower, /v1/stats and /v1/readyz report role and lag,
	// and POST /v1/admin/promote triggers takeover.
	Replication Replication
	// MaxLagEvents bounds acceptable follower staleness: a follower whose
	// ship-heartbeat lag exceeds this flips /v1/readyz to degraded. Zero
	// means 10000; negative disables the lag gate.
	MaxLagEvents int64
	// Health, when non-nil, feeds operator-maintained degradation (periodic
	// checkpoint failures) into /v1/readyz.
	Health *Health
}

// Server is the v1 HTTP serving surface over an async.Pipeline. Create it
// with New, mount it anywhere (it implements http.Handler), and Close it
// before shutting the pipeline down: Close waits for every in-flight
// handler — score, admin and explain alike — so a subsequent
// Pipeline.Shutdown can never race a request still using the pipeline.
type Server struct {
	pipe        *async.Pipeline
	batcher     *Batcher
	trainer     *train.OnlineTrainer
	replication Replication
	maxLag      int64
	health      *Health
	mux         *http.ServeMux
	start       time.Time
	maxNodes    int

	// closeMu/closed gate new requests during shutdown; handlerWG counts
	// requests in flight so Close can wait them out.
	closeMu   sync.RWMutex
	closed    bool
	handlerWG sync.WaitGroup
}

// New builds a Server over a started pipeline.
func New(pipe *async.Pipeline, opts Options) *Server {
	maxNodes := opts.MaxNodes
	switch {
	case maxNodes == 0:
		maxNodes = 1 << 20
	case maxNodes < 0:
		maxNodes = -1 // strict: limit tracks the live node space (validate)
	case maxNodes > math.MaxInt32:
		maxNodes = math.MaxInt32 // node IDs are int32 on the wire
	}
	maxLag := opts.MaxLagEvents
	if maxLag == 0 {
		maxLag = 10000
	}
	s := &Server{
		pipe:        pipe,
		batcher:     NewBatcher(pipe, opts.BatchWindow, opts.MaxBatch, opts.FlushConcurrency),
		trainer:     opts.Trainer,
		replication: opts.Replication,
		maxLag:      maxLag,
		health:      opts.Health,
		mux:         http.NewServeMux(),
		start:       time.Now(),
		maxNodes:    maxNodes,
	}
	s.mux.HandleFunc("POST /v1/score", s.handleScore)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.HandleFunc("GET /v1/livez", s.handleLivez)
	s.mux.HandleFunc("GET /v1/readyz", s.handleReadyz)
	s.mux.HandleFunc("GET /v1/healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /v1/explain/{node}", s.handleExplain)
	s.mux.HandleFunc("POST /v1/admin/train/freeze", s.handleTrainFreeze)
	s.mux.HandleFunc("POST /v1/admin/train/resume", s.handleTrainResume)
	s.mux.HandleFunc("POST /v1/admin/promote", s.handlePromote)
	return s
}

// ServeHTTP dispatches a request, registering it with the in-flight
// accounting Close waits on. Requests arriving after Close starts get a
// structured 503.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.closeMu.RLock()
	if s.closed {
		s.closeMu.RUnlock()
		writeError(w, http.StatusServiceUnavailable, "server_closing", "the server is shutting down")
		return
	}
	s.handlerWG.Add(1)
	s.closeMu.RUnlock()
	defer s.handlerWG.Done()
	s.mux.ServeHTTP(w, r)
}

// Close stops accepting requests, flushes and stops the micro-batcher, and
// waits for every in-flight handler to return. After Close the caller may
// safely Shutdown the pipeline: no handler still references it. The
// pipeline itself is owned by the caller and left running; an attached
// trainer is likewise left to the caller to Stop.
func (s *Server) Close() {
	s.closeMu.Lock()
	s.closed = true
	s.closeMu.Unlock()
	// Both calls are safe and blocking under concurrent Close: a repeat
	// batcher.Close waits for the first to finish, and every Close waits
	// out the in-flight handlers — so whichever caller returns first, the
	// pipeline is no longer referenced by any handler.
	s.batcher.Close()
	s.handlerWG.Wait()
}

// EventJSON is the wire form of one temporal interaction.
type EventJSON struct {
	Src  int32     `json:"src"`
	Dst  int32     `json:"dst"`
	Time float64   `json:"time"`
	Feat []float32 `json:"feat"`
}

// ScoreRequest is the POST /v1/score body: either the single-event fields
// inline, or a batch under "events" (mutually exclusive). Tenant attributes
// the request to a tenant when the pipeline runs multi-tenant admission; it
// overrides the X-Tenant header, and both default to the pipeline's default
// tenant when absent.
type ScoreRequest struct {
	EventJSON
	Events []EventJSON `json:"events"`
	Tenant string      `json:"tenant,omitempty"`
}

// ScoreResponse answers POST /v1/score. Score is set for single-event
// requests, Scores for batches; both report the synchronous-link latency
// the caller's decision system observed and the propagation queue depth.
type ScoreResponse struct {
	Score      *float32  `json:"score,omitempty"`
	Scores     []float32 `json:"scores,omitempty"`
	Count      int       `json:"count"`
	SyncMicros int64     `json:"sync_us"`
	BatchSize  int       `json:"batch_size"`
	QueueDepth int       `json:"queue_depth"`
	// Role and LagEvents stamp follower-served responses: the score came
	// from replayed state LagEvents behind the leader per the last ship
	// heartbeat. Absent on leader/standalone responses.
	Role      string `json:"role,omitempty"`
	LagEvents int64  `json:"lag_events,omitempty"`
	// Tenant echoes the tenant the request was attributed to; present only
	// when the pipeline runs multi-tenant admission.
	Tenant string `json:"tenant,omitempty"`
}

// ErrorBody is the structured error envelope of every non-2xx response.
// Tenant is set on tenant-attributed rejections (429s) so a multi-tenant
// client can tell whose budget was exhausted.
type ErrorBody struct {
	Error struct {
		Code    string `json:"code"`
		Message string `json:"message"`
		Tenant  string `json:"tenant,omitempty"`
	} `json:"error"`
}

// StatsResponse answers GET /v1/stats.
type StatsResponse struct {
	Pipeline async.Stats  `json:"pipeline"`
	Batcher  BatcherStats `json:"batcher"`
	// ParamVersion is the served model's currently published parameter
	// version; it advances on every hot swap (online trainer publish,
	// checkpoint load).
	ParamVersion uint64 `json:"param_version"`
	// GraphBackend is the temporal-graph store behind the served model
	// (flat, sharded, remote-sim).
	GraphBackend string `json:"graph_backend"`
	// Training reports online-trainer health; absent when no trainer is
	// attached.
	Training *train.Stats `json:"training,omitempty"`
	// WAL reports write-ahead-log health — indices, segment count, flush and
	// fsync counters, and any latched I/O error (serving degrades to
	// best-effort durability rather than failing applies; the operator sees
	// it here). Absent when the model serves without a WAL.
	WAL *wal.Stats `json:"wal,omitempty"`
	// Tenants reports per-tenant admission accounting — submitted, applied,
	// dropped, rate-limited, queue depths, weight and lane — keyed by tenant
	// id. Absent when the pipeline runs without multi-tenant admission.
	Tenants map[string]async.TenantStats `json:"tenants,omitempty"`
	// Eviction reports the cold-state evictor's budget, warm-set size and
	// eviction/re-admission counters. Absent when eviction is disabled.
	Eviction *core.EvictionStats `json:"eviction,omitempty"`
	// Role is "leader" or "follower" when replication is wired (absent on
	// standalone servers); FollowerLagEvents is the ship-heartbeat lag and
	// WALLatchedError surfaces the log's latched I/O error string at the top
	// level, so monitors need not dig into the WAL block.
	Role              string  `json:"role,omitempty"`
	FollowerLagEvents int64   `json:"follower_lag_events,omitempty"`
	WALLatchedError   string  `json:"wal_latched_error,omitempty"`
	UptimeSeconds     float64 `json:"uptime_s"`
}

// TrainAdminResponse answers the POST /v1/admin/train/{freeze,resume}
// endpoints.
type TrainAdminResponse struct {
	Frozen       bool   `json:"frozen"`
	ParamVersion uint64 `json:"param_version"`
}

// HealthResponse answers GET /v1/healthz (legacy combined health) and
// GET /v1/livez; Reasons is populated only by /v1/readyz and a degraded
// /v1/healthz.
type HealthResponse struct {
	Status        string   `json:"status"`
	Reasons       []string `json:"reasons,omitempty"`
	QueueDepth    int      `json:"queue_depth"`
	UptimeSeconds float64  `json:"uptime_s"`
}

// PromoteResponse answers POST /v1/admin/promote.
type PromoteResponse struct {
	Role string `json:"role"`
}

// ExplainResponse answers GET /v1/explain/{node}.
type ExplainResponse struct {
	Node        int32       `json:"node"`
	MailWeights []float32   `json:"mail_weights"`
	PerHead     [][]float32 `json:"per_head"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, code, msg string) {
	var body ErrorBody
	body.Error.Code = code
	body.Error.Message = msg
	writeJSON(w, status, body)
}

// validate rejects events that would corrupt or crash the model before they
// reach the pipeline: negative or over-limit node IDs and wrong feature
// dimensions. IDs in [NumNodes, maxNodes) are valid — admit (below) grows
// the model to cover them before submission (dynamic node admission).
// strict confines IDs to the live node space instead: follower-served
// scores must not grow the model, whose node space is replication's alone
// to advance.
func (s *Server) validate(i int, ev EventJSON, strict bool) (code, msg string) {
	limit := int32(s.maxNodes)
	if strict || s.maxNodes < 0 {
		// Strict mode: no admission, but the node space can still grow
		// legitimately (LoadCheckpoint of a grown checkpoint), so consult
		// it live rather than freezing the construction-time value.
		limit = int32(s.pipe.NumNodes())
	}
	if ev.Src < 0 || ev.Dst < 0 {
		return "node_out_of_range", fmt.Sprintf("event %d: node ids must be non-negative (src %d, dst %d)", i, ev.Src, ev.Dst)
	}
	if ev.Src >= limit || ev.Dst >= limit {
		return "node_limit_exceeded", fmt.Sprintf("event %d: node id %d exceeds the admission limit %d", i, max(ev.Src, ev.Dst), limit)
	}
	if len(ev.Feat) != s.pipe.EdgeDim() {
		return "bad_feat_dim", fmt.Sprintf("event %d: feat dim %d, want %d", i, len(ev.Feat), s.pipe.EdgeDim())
	}
	return "", ""
}

// admit grows the model's node space to cover every endpoint of the batch.
// Called after validate, so IDs are known to be within the admission limit.
// Growth is amortized: since every admission briefly stops the world, the
// space grows by at least half again (capped at the limit), so a stream of
// monotonically increasing IDs triggers O(log n) growths, not one per
// request.
func (s *Server) admit(events []tgraph.Event) {
	var maxID int32 = -1
	for _, ev := range events {
		if ev.Src > maxID {
			maxID = ev.Src
		}
		if ev.Dst > maxID {
			maxID = ev.Dst
		}
	}
	n := s.pipe.NumNodes()
	if int(maxID) < n {
		return
	}
	target := int(maxID) + 1
	if headroom := n + n/2; headroom > target {
		target = headroom
	}
	if s.maxNodes >= 0 && target > s.maxNodes {
		target = s.maxNodes
	}
	s.pipe.EnsureNodes(target)
}

func toEvent(ev EventJSON) tgraph.Event {
	return tgraph.Event{Src: ev.Src, Dst: ev.Dst, Time: ev.Time, Feat: ev.Feat, Label: -1}
}

func submitErr(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, async.ErrClosed):
		writeError(w, http.StatusServiceUnavailable, "pipeline_closed", err.Error())
	case errors.Is(err, async.ErrQueueFull):
		writeError(w, http.StatusServiceUnavailable, "queue_full", err.Error())
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		// The client went away or timed out — not a server fault, so keep
		// it out of the 5xx budget. (The write usually lands nowhere.)
		writeError(w, http.StatusRequestTimeout, "request_cancelled", err.Error())
	default:
		writeError(w, http.StatusInternalServerError, "submit_failed", err.Error())
	}
}

// submitTenantErr is submitErr for tenant-attributed submissions: the two
// per-tenant rejections — a spent rate bucket and a full tenant queue — are
// that tenant's problem, not the server's, so they answer 429 with the
// tenant id in the error envelope; everything else keeps the shared mapping.
func submitTenantErr(w http.ResponseWriter, tenant string, err error) {
	var code string
	switch {
	case errors.Is(err, async.ErrRateLimited):
		code = "rate_limited"
	case errors.Is(err, async.ErrQueueFull):
		code = "tenant_queue_full"
	default:
		submitErr(w, err)
		return
	}
	var body ErrorBody
	body.Error.Code = code
	body.Error.Message = err.Error()
	body.Error.Tenant = tenant
	writeJSON(w, http.StatusTooManyRequests, body)
}

// tenantFor resolves the tenant a score request is attributed to: the JSON
// "tenant" field wins, then the X-Tenant header, then the pipeline's default
// tenant. Only meaningful when the pipeline runs multi-tenant admission.
func tenantFor(r *http.Request, req *ScoreRequest) string {
	if req.Tenant != "" {
		return req.Tenant
	}
	if h := r.Header.Get("X-Tenant"); h != "" {
		return h
	}
	return async.DefaultTenant
}

func (s *Server) handleScore(w http.ResponseWriter, r *http.Request) {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 16<<20))
	var req ScoreRequest
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad_json", err.Error())
		return
	}
	follower := s.followerRole()

	if req.Events != nil { // batch body (an explicit "events" key, even empty)
		if req.Feat != nil {
			writeError(w, http.StatusBadRequest, "ambiguous_body",
				"provide either inline event fields or \"events\", not both")
			return
		}
		if len(req.Events) == 0 {
			writeError(w, http.StatusBadRequest, "empty_batch", "\"events\" must contain at least one event")
			return
		}
		events := make([]tgraph.Event, len(req.Events))
		for i, ev := range req.Events {
			if code, msg := s.validate(i, ev, follower); code != "" {
				writeError(w, http.StatusBadRequest, code, msg)
				return
			}
			events[i] = toEvent(ev)
		}
		resp := ScoreResponse{}
		var scores []float32
		var lat time.Duration
		var err error
		switch {
		case follower:
			// Read-only: score from the replayed state, apply nothing, stamp
			// the staleness the caller is reading.
			scores, lat, err = s.pipe.ScoreOnly(events)
			resp.Role, resp.LagEvents = "follower", s.replication.LagEvents()
		case s.pipe.Tenancy():
			// Tenant-attributed, non-blocking: a spent rate bucket or a full
			// tenant queue sheds the request with a structured 429 instead of
			// parking the handler — one tenant's burst must not hold handler
			// goroutines hostage while others wait.
			tenant := tenantFor(r, &req)
			s.admit(events)
			scores, lat, err = s.pipe.TrySubmitTenant(tenant, events)
			if err != nil {
				submitTenantErr(w, tenant, err)
				return
			}
			resp.Tenant = tenant
		default:
			s.admit(events)
			scores, lat, err = s.pipe.Submit(r.Context(), events)
		}
		if err != nil {
			submitErr(w, err)
			return
		}
		resp.Scores = scores
		resp.Count = len(scores)
		resp.SyncMicros = lat.Microseconds()
		resp.BatchSize = len(scores)
		resp.QueueDepth = s.pipe.Stats().QueueDepth
		writeJSON(w, http.StatusOK, resp)
		return
	}

	// Single-event body, scored through the micro-batcher (followers score
	// directly: the batcher's coalesced flushes apply, ScoreOnly must not).
	if code, msg := s.validate(0, req.EventJSON, follower); code != "" {
		writeError(w, http.StatusBadRequest, code, msg)
		return
	}
	ev := toEvent(req.EventJSON)
	if follower {
		scores, lat, err := s.pipe.ScoreOnly([]tgraph.Event{ev})
		if err != nil {
			submitErr(w, err)
			return
		}
		writeJSON(w, http.StatusOK, ScoreResponse{
			Score:      &scores[0],
			Count:      1,
			SyncMicros: lat.Microseconds(),
			BatchSize:  1,
			QueueDepth: s.pipe.Stats().QueueDepth,
			Role:       "follower",
			LagEvents:  s.replication.LagEvents(),
		})
		return
	}
	if s.pipe.Tenancy() {
		// Tenant-attributed single events skip the micro-batcher: a coalesced
		// flush mixes events from many requests into one submission, which
		// would attribute every rider's cost to whichever tenant flushed.
		tenant := tenantFor(r, &req)
		s.admit([]tgraph.Event{ev})
		scores, lat, err := s.pipe.TrySubmitTenant(tenant, []tgraph.Event{ev})
		if err != nil {
			submitTenantErr(w, tenant, err)
			return
		}
		writeJSON(w, http.StatusOK, ScoreResponse{
			Score:      &scores[0],
			Count:      1,
			SyncMicros: lat.Microseconds(),
			BatchSize:  1,
			QueueDepth: s.pipe.Stats().QueueDepth,
			Tenant:     tenant,
		})
		return
	}
	s.admit([]tgraph.Event{ev})
	score, lat, size, err := s.batcher.Score(r.Context(), ev)
	if err != nil {
		submitErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, ScoreResponse{
		Score:      &score,
		Count:      1,
		SyncMicros: lat.Microseconds(),
		BatchSize:  size,
		QueueDepth: s.pipe.Stats().QueueDepth,
	})
}

// followerRole reports whether score traffic must take the read-only path.
func (s *Server) followerRole() bool {
	return s.replication != nil && s.replication.Role() == "follower"
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	resp := StatsResponse{
		Pipeline:      s.pipe.Stats(),
		Batcher:       s.batcher.Stats(),
		ParamVersion:  s.pipe.ParamVersion(),
		GraphBackend:  s.pipe.GraphBackend(),
		Tenants:       s.pipe.TenantStats(),
		Eviction:      s.pipe.EvictionStats(),
		WAL:           s.pipe.WALStats(),
		UptimeSeconds: time.Since(s.start).Seconds(),
	}
	if s.trainer != nil {
		st := s.trainer.Stats()
		resp.Training = &st
	}
	if resp.WAL != nil {
		resp.WALLatchedError = resp.WAL.Err
	}
	if s.replication != nil {
		resp.Role = s.replication.Role()
		resp.FollowerLagEvents = s.replication.LagEvents()
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleTrainFreeze(w http.ResponseWriter, _ *http.Request) {
	if s.trainer == nil {
		writeError(w, http.StatusNotFound, "no_trainer", "no online trainer is attached to this server")
		return
	}
	s.trainer.Freeze()
	writeJSON(w, http.StatusOK, TrainAdminResponse{Frozen: true, ParamVersion: s.pipe.ParamVersion()})
}

func (s *Server) handleTrainResume(w http.ResponseWriter, _ *http.Request) {
	if s.trainer == nil {
		writeError(w, http.StatusNotFound, "no_trainer", "no online trainer is attached to this server")
		return
	}
	s.trainer.Resume()
	writeJSON(w, http.StatusOK, TrainAdminResponse{Frozen: false, ParamVersion: s.pipe.ParamVersion()})
}

// degradedReasons collects every condition that makes serving degraded:
// a latched WAL I/O error (durability is best-effort until the operator
// intervenes), follower lag beyond the configured bound, and repeated
// periodic-checkpoint failures.
func (s *Server) degradedReasons() []string {
	var reasons []string
	if ws := s.pipe.WALStats(); ws != nil && ws.Err != "" {
		reasons = append(reasons, "wal_latched_error: "+ws.Err)
	}
	if s.replication != nil && s.replication.Role() == "follower" && s.maxLag > 0 {
		if lag := s.replication.LagEvents(); lag > s.maxLag {
			reasons = append(reasons, fmt.Sprintf("follower_lag: %d events behind the leader (bound %d)", lag, s.maxLag))
		}
	}
	if s.health != nil && s.health.Degraded() {
		reasons = append(reasons, fmt.Sprintf("checkpoint_failures: %d consecutive periodic checkpoints failed", s.health.CheckpointFailures()))
	}
	return reasons
}

// handleLivez is pure liveness: reachable means alive. Degradation — lag,
// latched WAL errors, checkpoint failures — belongs to readiness; killing
// the process over any of them would only destroy warm state.
func (s *Server) handleLivez(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, HealthResponse{
		Status:        "ok",
		QueueDepth:    s.pipe.Stats().QueueDepth,
		UptimeSeconds: time.Since(s.start).Seconds(),
	})
}

// handleReadyz answers 503 with machine-readable reasons while serving is
// degraded, 200 otherwise — the signal a load balancer or failover
// controller keys on.
func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	resp := HealthResponse{
		Status:        "ok",
		QueueDepth:    s.pipe.Stats().QueueDepth,
		UptimeSeconds: time.Since(s.start).Seconds(),
	}
	if reasons := s.degradedReasons(); len(reasons) > 0 {
		resp.Status = "degraded"
		resp.Reasons = reasons
		writeJSON(w, http.StatusServiceUnavailable, resp)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleHealthz is the legacy combined endpoint: always 200 (it predates
// the liveness/readiness split and existing probes treat non-200 as dead),
// with the readiness verdict in the body.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	resp := HealthResponse{
		Status:        "ok",
		QueueDepth:    s.pipe.Stats().QueueDepth,
		UptimeSeconds: time.Since(s.start).Seconds(),
	}
	if reasons := s.degradedReasons(); len(reasons) > 0 {
		resp.Status = "degraded"
		resp.Reasons = reasons
	}
	writeJSON(w, http.StatusOK, resp)
}

// handlePromote triggers follower→leader takeover. 404 when no replication
// is wired, 409 when already promoted (the fencing signal), 500 when the
// promotion itself fails (torn shipped log, replay error).
func (s *Server) handlePromote(w http.ResponseWriter, _ *http.Request) {
	if s.replication == nil {
		writeError(w, http.StatusNotFound, "no_replication", "this server has no warm-standby replica wired")
		return
	}
	if err := s.replication.Promote(); err != nil {
		if errors.Is(err, replica.ErrAlreadyPromoted) {
			writeError(w, http.StatusConflict, "already_promoted", err.Error())
			return
		}
		writeError(w, http.StatusInternalServerError, "promote_failed", err.Error())
		return
	}
	writeJSON(w, http.StatusOK, PromoteResponse{Role: s.replication.Role()})
}

func (s *Server) handleExplain(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.ParseInt(r.PathValue("node"), 10, 32)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad_node", "node must be an integer")
		return
	}
	if id < 0 || id >= int64(s.pipe.NumNodes()) {
		writeError(w, http.StatusBadRequest, "node_out_of_range",
			fmt.Sprintf("node %d outside [0,%d)", id, s.pipe.NumNodes()))
		return
	}
	ex, ok := s.pipe.Explain(tgraph.NodeID(id))
	if !ok {
		writeError(w, http.StatusNotFound, "no_explanation",
			fmt.Sprintf("node %d was not part of the most recent scored batch", id))
		return
	}
	writeJSON(w, http.StatusOK, ExplainResponse{
		Node:        ex.Node,
		MailWeights: ex.MailWeights,
		PerHead:     ex.PerHead,
	})
}
