package serve

import (
	"context"
	"sync"
	"time"

	"apan/internal/async"
	"apan/internal/tgraph"
)

// Batcher coalesces concurrent single-event score requests into one
// Pipeline.Submit call — the server-side micro-batching that lets the
// synchronous link run at its batch sweet spot (paper Table 5, batch ≈ 200)
// even when every caller sends one event at a time.
//
// Policy: the first request opens a batch; requests already waiting are
// drained greedily; if that found company the batch flushes immediately,
// otherwise it waits up to the window for a partner before flushing alone.
// A batch also flushes as soon as it reaches maxBatch.
//
// Up to `conc` flushes may score in parallel (the pipeline's synchronous
// link is concurrent over the sharded stores); with conc=1 the batcher is
// strictly serialized and batch sizes converge on the number of in-flight
// clients.
type Batcher struct {
	pipe     *async.Pipeline
	window   time.Duration
	maxBatch int
	conc     int

	reqs chan batchReq
	done chan struct{}

	// lifeMu protects reqs against send-after-close, mirroring the
	// pipeline's shutdown discipline.
	lifeMu sync.RWMutex

	mu        sync.Mutex
	closed    bool
	flushes   int64
	coalesced int64
}

type batchReq struct {
	ev   tgraph.Event
	ctx  context.Context
	resp chan batchResp
}

type batchResp struct {
	score float32
	lat   time.Duration
	size  int
	err   error
}

// BatcherStats reports micro-batching effectiveness.
type BatcherStats struct {
	Flushes   int64   `json:"flushes"`
	Coalesced int64   `json:"coalesced_events"`
	MeanBatch float64 `json:"mean_batch"`
}

// NewBatcher starts a micro-batcher over pipe. A window ≤ 0 falls back to
// the pipeline's configured batch window; maxBatch ≤ 0 defaults to 200;
// conc ≤ 0 defaults to 1 (serialized flushes).
func NewBatcher(pipe *async.Pipeline, window time.Duration, maxBatch, conc int) *Batcher {
	if window <= 0 {
		window = pipe.BatchWindow()
	}
	if maxBatch <= 0 {
		maxBatch = 200
	}
	if conc <= 0 {
		conc = 1
	}
	b := &Batcher{
		pipe:     pipe,
		window:   window,
		maxBatch: maxBatch,
		conc:     conc,
		reqs:     make(chan batchReq, 4*maxBatch),
		done:     make(chan struct{}),
	}
	go b.loop()
	return b
}

// Score submits one event through the coalescing path and blocks until its
// batch has been scored or ctx is done. It returns the event's score, the
// batch's synchronous latency, and the size of the batch it rode in.
//
// Cancellation caveat: requests whose ctx is already done when their batch
// flushes are dropped without touching the model, but a ctx that expires
// after the flush has started only abandons the wait — the event may still
// be scored and applied. A caller that got ctx.Err() back must therefore
// treat the submission as indeterminate, not retry it blindly (unlike
// Pipeline.Submit, whose cancellation guarantee is exact).
func (b *Batcher) Score(ctx context.Context, ev tgraph.Event) (float32, time.Duration, int, error) {
	req := batchReq{ev: ev, ctx: ctx, resp: make(chan batchResp, 1)}

	b.lifeMu.RLock()
	b.mu.Lock()
	closed := b.closed
	b.mu.Unlock()
	if closed {
		b.lifeMu.RUnlock()
		return 0, 0, 0, async.ErrClosed
	}
	select {
	case b.reqs <- req:
		b.lifeMu.RUnlock()
	case <-ctx.Done():
		b.lifeMu.RUnlock()
		return 0, 0, 0, ctx.Err()
	}

	select {
	case r := <-req.resp:
		return r.score, r.lat, r.size, r.err
	case <-ctx.Done():
		return 0, 0, 0, ctx.Err()
	}
}

// loop is the dispatcher. Up to b.conc flushes run at a time; requests that
// arrive while every lane is busy accumulate and launch together the moment
// one completes, so under sustained concurrency the batch size converges on
// the number of in-flight clients divided by the lane count, with no idle
// stalls. The window only delays a lone request waiting for company — the
// first companion (or the timer) triggers the flush.
func (b *Batcher) loop() {
	defer close(b.done)
	var (
		pending  []batchReq
		inflight int         // flushes currently running
		timer    *time.Timer // non-nil while a lone request waits
		timerC   <-chan time.Time
		flushed  = make(chan struct{}, b.conc) // one signal per finished flush
		reqs     = b.reqs
	)
	launch := func() {
		if timer != nil {
			timer.Stop()
			timer, timerC = nil, nil
		}
		n := len(pending)
		if n > b.maxBatch {
			n = b.maxBatch
		}
		batch := pending[:n:n]
		pending = append([]batchReq(nil), pending[n:]...)
		inflight++
		go func(batch []batchReq) {
			b.flush(batch)
			flushed <- struct{}{}
		}(batch)
	}
	for {
		select {
		case r, ok := <-reqs:
			if !ok {
				reqs = nil // closed: stop receiving, fall through to drain
				for inflight < b.conc && len(pending) > 0 {
					launch()
				}
				if inflight == 0 {
					return
				}
				continue
			}
			pending = append(pending, r)
			if inflight >= b.conc {
				continue // accumulate behind the busy lanes
			}
			switch {
			case len(pending) >= b.maxBatch:
				launch()
			case len(pending) == 1 && b.window > 0:
				timer = time.NewTimer(b.window)
				timerC = timer.C
			default: // found company (or no window configured)
				launch()
			}
		case <-timerC:
			timer, timerC = nil, nil
			if inflight < b.conc && len(pending) > 0 {
				launch()
			}
		case <-flushed:
			inflight--
			for inflight < b.conc && len(pending) > 0 {
				launch() // these waited a full flush already — go now
			}
			if reqs == nil && inflight == 0 && len(pending) == 0 {
				return
			}
		}
	}
}

func (b *Batcher) flush(pending []batchReq) {
	// Drop requests whose caller already gave up: their events must not
	// mutate model state the caller believes was never touched.
	live := pending[:0]
	for _, r := range pending {
		if err := r.ctx.Err(); err != nil {
			r.resp <- batchResp{err: err}
			continue
		}
		live = append(live, r)
	}
	pending = live
	if len(pending) == 0 {
		return
	}
	events := make([]tgraph.Event, len(pending))
	for i, r := range pending {
		events[i] = r.ev
	}
	scores, lat, err := b.pipe.Submit(context.Background(), events)
	b.mu.Lock()
	b.flushes++
	b.coalesced += int64(len(pending))
	b.mu.Unlock()
	for i, r := range pending {
		resp := batchResp{lat: lat, size: len(pending), err: err}
		if err == nil {
			resp.score = scores[i]
		}
		r.resp <- resp // buffered: never blocks, even if the caller left
	}
}

// Stats reports flush counters.
func (b *Batcher) Stats() BatcherStats {
	b.mu.Lock()
	defer b.mu.Unlock()
	st := BatcherStats{Flushes: b.flushes, Coalesced: b.coalesced}
	if st.Flushes > 0 {
		st.MeanBatch = float64(st.Coalesced) / float64(st.Flushes)
	}
	return st
}

// Close flushes queued requests and stops the loop. Subsequent Score calls
// return async.ErrClosed.
func (b *Batcher) Close() {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		<-b.done
		return
	}
	b.closed = true
	b.mu.Unlock()

	b.lifeMu.Lock()
	close(b.reqs)
	b.lifeMu.Unlock()
	<-b.done
}
