package serve

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"apan/internal/async"
	"apan/internal/tgraph"
	"apan/internal/train"
)

func postAdmin(t *testing.T, url, path string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url+path, "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body []byte
	buf := make([]byte, 4096)
	for {
		n, err := resp.Body.Read(buf)
		body = append(body, buf[:n]...)
		if err != nil {
			break
		}
	}
	return resp, body
}

// TestAdminTrainEndpoints: freeze/resume must flip the trainer state and
// report the served parameter version; without a trainer they 404.
func TestAdminTrainEndpoints(t *testing.T) {
	m := testModel(t)
	tr, err := train.New(m, train.Config{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	pipe := async.New(m, async.WithOnlineTrainer(tr))
	srv := New(pipe, Options{Trainer: tr})
	ts := httptest.NewServer(srv)
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
		pipe.Close()
	})

	resp, body := postAdmin(t, ts.URL, "/v1/admin/train/freeze")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("freeze: %d %s", resp.StatusCode, body)
	}
	var ar TrainAdminResponse
	if err := json.Unmarshal(body, &ar); err != nil {
		t.Fatal(err)
	}
	if !ar.Frozen || !tr.Frozen() {
		t.Fatalf("freeze did not take: %+v (trainer frozen %v)", ar, tr.Frozen())
	}

	resp, body = postAdmin(t, ts.URL, "/v1/admin/train/resume")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("resume: %d %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &ar); err != nil {
		t.Fatal(err)
	}
	if ar.Frozen || tr.Frozen() {
		t.Fatalf("resume did not take: %+v (trainer frozen %v)", ar, tr.Frozen())
	}

	// Stats must carry the trainer block and the published version.
	resp, body = postStatsGet(t, ts.URL)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stats: %d %s", resp.StatusCode, body)
	}
	var st StatsResponse
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if st.Training == nil {
		t.Fatal("stats missing training block with a trainer attached")
	}
	if st.ParamVersion == 0 {
		t.Fatal("stats param_version is 0; construction publishes version ≥ 1")
	}
}

func postStatsGet(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body []byte
	buf := make([]byte, 8192)
	for {
		n, err := resp.Body.Read(buf)
		body = append(body, buf[:n]...)
		if err != nil {
			break
		}
	}
	return resp, body
}

// TestAdminNoTrainer: admin endpoints without a wired trainer answer a
// structured 404.
func TestAdminNoTrainer(t *testing.T) {
	ts, _ := newTestServer(t, Options{})
	for _, path := range []string{"/v1/admin/train/freeze", "/v1/admin/train/resume"} {
		resp, body := postAdmin(t, ts.URL, path)
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("%s: status %d", path, resp.StatusCode)
		}
		if got := errCode(t, body); got != "no_trainer" {
			t.Fatalf("%s: code %q", path, got)
		}
	}
}

// TestCloseWaitsForInflightHandlers: Close must not return while a handler
// is still running, so Close → Pipeline.Shutdown can never yank the
// pipeline out from under a request. A slow propagation consumer
// (WithBeforeApply) keeps a batch-score handler inside Submit while Close
// runs.
func TestCloseWaitsForInflightHandlers(t *testing.T) {
	release := make(chan struct{})
	var applied atomic.Bool
	pipe := async.New(testModel(t),
		async.WithQueueCap(1),
		async.WithBeforeApply(func([]tgraph.Event) {
			<-release
			applied.Store(true)
		}))
	srv := New(pipe, Options{})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	// Fill the queue so the next batch Submit blocks on backpressure.
	var wg sync.WaitGroup
	inflight := func() {
		defer wg.Done()
		body := ScoreRequest{Events: []EventJSON{{Src: 0, Dst: 1, Time: 1, Feat: feat()}}}
		resp, _ := postScore(t, ts.URL, body)
		_ = resp
	}
	wg.Add(3)
	go inflight() // occupies the worker (parked on release)
	go inflight() // fills the 1-slot queue
	go inflight() // blocks inside Pipeline.Submit on backpressure
	for pipe.Stats().Submitted < 3 {
		time.Sleep(time.Millisecond)
	}
	time.Sleep(20 * time.Millisecond) // let the third reach the channel send

	closed := make(chan struct{})
	go func() {
		srv.Close()
		close(closed)
	}()
	select {
	case <-closed:
		t.Fatal("Close returned while a handler was still blocked in Submit")
	case <-time.After(50 * time.Millisecond):
	}

	close(release) // let the worker drain; handlers return; Close completes
	select {
	case <-closed:
	case <-time.After(5 * time.Second):
		t.Fatal("Close never returned after handlers finished")
	}
	wg.Wait()
	if !applied.Load() {
		t.Fatal("no batch was ever applied")
	}
	if err := pipe.Shutdown(t.Context()); err != nil {
		t.Fatal(err)
	}
}
