package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"apan/internal/async"
	"apan/internal/core"
	"apan/internal/gdb"
	"apan/internal/tgraph"
)

const (
	testNodes = 8
	testDim   = 8
)

func testModel(t testing.TB) *core.Model {
	t.Helper()
	cfg := core.Config{
		NumNodes: testNodes, EdgeDim: testDim, Slots: 4, Neighbors: 4,
		Hops: 2, Heads: 2, Hidden: 16, BatchSize: 4, Seed: 1,
	}
	m, err := core.NewWithDB(cfg, gdb.New(tgraph.New(testNodes)))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func feat() []float32 { return make([]float32, testDim) }

// newTestServer wires model → pipeline → Server → httptest and tears all
// three down in order.
func newTestServer(t testing.TB, opts Options, popts ...async.Option) (*httptest.Server, *async.Pipeline) {
	t.Helper()
	pipe := async.New(testModel(t), popts...)
	srv := New(pipe, opts)
	ts := httptest.NewServer(srv)
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
		pipe.Close()
	})
	return ts, pipe
}

func postScore(t testing.TB, url string, body any) (*http.Response, []byte) {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/score", "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out bytes.Buffer
	if _, err := out.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, out.Bytes()
}

func errCode(t testing.TB, raw []byte) string {
	t.Helper()
	var e ErrorBody
	if err := json.Unmarshal(raw, &e); err != nil {
		t.Fatalf("error body %q: %v", raw, err)
	}
	return e.Error.Code
}

func TestScoreSingle(t *testing.T) {
	ts, _ := newTestServer(t, Options{BatchWindow: time.Millisecond})
	resp, raw := postScore(t, ts.URL, EventJSON{Src: 0, Dst: 1, Time: 1, Feat: feat()})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, raw)
	}
	var sr ScoreResponse
	if err := json.Unmarshal(raw, &sr); err != nil {
		t.Fatal(err)
	}
	if sr.Score == nil || *sr.Score <= 0 || *sr.Score >= 1 {
		t.Fatalf("score: %s", raw)
	}
	if sr.Count != 1 || sr.BatchSize < 1 || sr.SyncMicros < 0 {
		t.Fatalf("response: %s", raw)
	}
}

func TestScoreBatch(t *testing.T) {
	ts, pipe := newTestServer(t, Options{})
	events := []EventJSON{
		{Src: 0, Dst: 1, Time: 1, Feat: feat()},
		{Src: 1, Dst: 2, Time: 2, Feat: feat()},
		{Src: 2, Dst: 3, Time: 3, Feat: feat()},
	}
	resp, raw := postScore(t, ts.URL, ScoreRequest{Events: events})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, raw)
	}
	var sr ScoreResponse
	if err := json.Unmarshal(raw, &sr); err != nil {
		t.Fatal(err)
	}
	if len(sr.Scores) != 3 || sr.Count != 3 || sr.BatchSize != 3 {
		t.Fatalf("batch response: %s", raw)
	}
	if err := pipe.Drain(t.Context()); err != nil {
		t.Fatal(err)
	}
	if st := pipe.Stats(); st.Processed != 1 {
		t.Fatalf("batch should be one pipeline submission: %+v", st)
	}
}

func TestScoreMalformed(t *testing.T) {
	ts, _ := newTestServer(t, Options{})
	resp, err := http.Post(ts.URL+"/v1/score", "application/json", bytes.NewReader([]byte("{not json")))
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	_, _ = out.ReadFrom(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest || errCode(t, out.Bytes()) != "bad_json" {
		t.Fatalf("status %d body %s", resp.StatusCode, out.Bytes())
	}
}

func TestScoreValidation(t *testing.T) {
	// MaxNodes bounds dynamic admission: IDs beyond it are structured 400s.
	ts, pipe := newTestServer(t, Options{MaxNodes: 2 * testNodes})
	cases := []struct {
		name string
		body any
		code string
	}{
		{"src beyond admission limit", EventJSON{Src: 2 * testNodes, Dst: 1, Time: 1, Feat: feat()}, "node_limit_exceeded"},
		{"dst negative", EventJSON{Src: 0, Dst: -1, Time: 1, Feat: feat()}, "node_out_of_range"},
		{"bad feat dim", EventJSON{Src: 0, Dst: 1, Time: 1, Feat: make([]float32, testDim+1)}, "bad_feat_dim"},
		{"bad batch member", ScoreRequest{Events: []EventJSON{
			{Src: 0, Dst: 1, Time: 1, Feat: feat()},
			{Src: 0, Dst: 99, Time: 2, Feat: feat()},
		}}, "node_limit_exceeded"},
		{"ambiguous body", map[string]any{
			"src": 0, "dst": 1, "time": 1, "feat": feat(),
			"events": []EventJSON{{Src: 0, Dst: 1, Time: 1, Feat: feat()}},
		}, "ambiguous_body"},
		{"empty batch", map[string]any{"events": []EventJSON{}}, "empty_batch"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, raw := postScore(t, ts.URL, tc.body)
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("status %d: %s", resp.StatusCode, raw)
			}
			if got := errCode(t, raw); got != tc.code {
				t.Fatalf("code %q, want %q", got, tc.code)
			}
		})
	}
	// Nothing invalid may have reached the model, and nothing may have been
	// admitted as a side effect of a rejected request.
	if st := pipe.Stats(); st.Submitted != 0 {
		t.Fatalf("invalid requests reached the pipeline: %+v", st)
	}
	if pipe.NumNodes() != testNodes {
		t.Fatalf("rejected requests grew the model to %d nodes", pipe.NumNodes())
	}
}

func TestDynamicNodeAdmission(t *testing.T) {
	ts, pipe := newTestServer(t, Options{MaxNodes: 64})

	// An event naming unseen node IDs is admitted, scored and propagated —
	// the old out-of-range 400 is gone.
	resp, raw := postScore(t, ts.URL, ScoreRequest{Events: []EventJSON{
		{Src: 0, Dst: 41, Time: 1, Feat: feat()},
	}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("unseen dst not admitted: %d %s", resp.StatusCode, raw)
	}
	if got := pipe.NumNodes(); got != 42 {
		t.Fatalf("node space after admission: %d, want 42", got)
	}
	if err := pipe.Drain(t.Context()); err != nil {
		t.Fatal(err)
	}

	// The admitted node now has streaming state: a follow-up event scores
	// against its written-back embedding and mailbox.
	resp, raw = postScore(t, ts.URL, EventJSON{Src: 41, Dst: 1, Time: 2, Feat: feat()})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("follow-up on admitted node: %d %s", resp.StatusCode, raw)
	}

	// Admission is monotone: smaller IDs do not shrink the space.
	resp, _ = postScore(t, ts.URL, EventJSON{Src: 3, Dst: 2, Time: 3, Feat: feat()})
	if resp.StatusCode != http.StatusOK || pipe.NumNodes() != 42 {
		t.Fatalf("node space moved: %d", pipe.NumNodes())
	}

	// The limit still holds.
	resp, raw = postScore(t, ts.URL, EventJSON{Src: 64, Dst: 0, Time: 4, Feat: feat()})
	if resp.StatusCode != http.StatusBadRequest || errCode(t, raw) != "node_limit_exceeded" {
		t.Fatalf("limit not enforced: %d %s", resp.StatusCode, raw)
	}
}

func TestStrictValidationOptOut(t *testing.T) {
	// MaxNodes < 0 restores the strict pre-admission behavior: any ID
	// beyond the configured node space is rejected.
	ts, pipe := newTestServer(t, Options{MaxNodes: -1})
	resp, raw := postScore(t, ts.URL, EventJSON{Src: testNodes, Dst: 0, Time: 1, Feat: feat()})
	if resp.StatusCode != http.StatusBadRequest || errCode(t, raw) != "node_limit_exceeded" {
		t.Fatalf("strict mode admitted: %d %s", resp.StatusCode, raw)
	}
	if pipe.NumNodes() != testNodes {
		t.Fatalf("strict mode grew the model: %d", pipe.NumNodes())
	}
}

func TestStatsAndHealthz(t *testing.T) {
	ts, pipe := newTestServer(t, Options{})
	postScore(t, ts.URL, ScoreRequest{Events: []EventJSON{{Src: 0, Dst: 1, Time: 1, Feat: feat()}}})
	if err := pipe.Drain(t.Context()); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.Pipeline.Submitted != 1 || st.Pipeline.Processed != 1 {
		t.Fatalf("stats: %+v", st)
	}
	if st.GraphBackend != core.GraphBackendFlat {
		t.Fatalf("stats graph_backend %q, want %q", st.GraphBackend, core.GraphBackendFlat)
	}

	resp, err = http.Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var h HealthResponse
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if h.Status != "ok" {
		t.Fatalf("healthz: %+v", h)
	}
}

func TestExplain(t *testing.T) {
	ts, pipe := newTestServer(t, Options{})

	// Build some mailbox history, then score an event touching node 0.
	warm := []EventJSON{
		{Src: 0, Dst: 1, Time: 1, Feat: feat()},
		{Src: 2, Dst: 0, Time: 2, Feat: feat()},
	}
	postScore(t, ts.URL, ScoreRequest{Events: warm})
	if err := pipe.Drain(t.Context()); err != nil { // let propagation deliver the mails
		t.Fatal(err)
	}
	postScore(t, ts.URL, ScoreRequest{Events: []EventJSON{{Src: 0, Dst: 3, Time: 5, Feat: feat()}}})

	resp, err := http.Get(ts.URL + "/v1/explain/0")
	if err != nil {
		t.Fatal(err)
	}
	var raw bytes.Buffer
	_, _ = raw.ReadFrom(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("explain status %d: %s", resp.StatusCode, raw.Bytes())
	}
	var ex ExplainResponse
	if err := json.Unmarshal(raw.Bytes(), &ex); err != nil {
		t.Fatal(err)
	}
	if ex.Node != 0 || len(ex.MailWeights) == 0 {
		t.Fatalf("explain: %s", raw.Bytes())
	}
	var sum float32
	for _, w := range ex.MailWeights {
		sum += w
	}
	if sum < 0.99 || sum > 1.01 {
		t.Fatalf("mail weights must sum to 1: %v", ex.MailWeights)
	}

	// A node absent from the last batch is a 404, not a 500.
	resp, err = http.Get(ts.URL + "/v1/explain/7")
	if err != nil {
		t.Fatal(err)
	}
	raw.Reset()
	_, _ = raw.ReadFrom(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound || errCode(t, raw.Bytes()) != "no_explanation" {
		t.Fatalf("explain miss: %d %s", resp.StatusCode, raw.Bytes())
	}

	// Out-of-range and non-integer nodes are structured 400s.
	for _, path := range []string{"/v1/explain/999", "/v1/explain/banana"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: status %d", path, resp.StatusCode)
		}
	}
}

func TestMicroBatcherCoalesces(t *testing.T) {
	// N concurrent single-event requests inside one window must ride fewer
	// than N pipeline submissions (ideally one).
	ts, pipe := newTestServer(t, Options{BatchWindow: 20 * time.Millisecond}, async.WithQueueCap(64))

	const clients = 16
	var wg sync.WaitGroup
	sizes := make([]int, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			resp, raw := postScore(t, ts.URL, EventJSON{
				Src: int32(c % testNodes), Dst: int32((c + 1) % testNodes),
				Time: float64(c + 1), Feat: feat(),
			})
			if resp.StatusCode != http.StatusOK {
				t.Errorf("client %d: status %d %s", c, resp.StatusCode, raw)
				return
			}
			var sr ScoreResponse
			if err := json.Unmarshal(raw, &sr); err != nil {
				t.Error(err)
				return
			}
			sizes[c] = sr.BatchSize
		}(c)
	}
	wg.Wait()
	if err := pipe.Drain(t.Context()); err != nil {
		t.Fatal(err)
	}

	st := pipe.Stats()
	if st.Submitted >= clients {
		t.Fatalf("no coalescing: %d submissions for %d requests", st.Submitted, clients)
	}
	coalesced := false
	for _, s := range sizes {
		if s > 1 {
			coalesced = true
		}
	}
	if !coalesced {
		t.Fatalf("every request rode a batch of 1: %v", sizes)
	}

	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if stats.Batcher.Coalesced != clients || stats.Batcher.MeanBatch <= 1 {
		t.Fatalf("batcher stats: %+v", stats.Batcher)
	}
}

func TestServerCloseRejectsScores(t *testing.T) {
	pipe := async.New(testModel(t))
	defer pipe.Close()
	srv := New(pipe, Options{})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	srv.Close()
	body, _ := json.Marshal(EventJSON{Src: 0, Dst: 1, Time: 1, Feat: feat()})
	resp, err := http.Post(ts.URL+"/v1/score", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	_, _ = out.ReadFrom(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d: %s", resp.StatusCode, out.Bytes())
	}
	// Requests arriving after Close are rejected at the door, before they
	// can touch the batcher or pipeline (the in-flight handler accounting
	// makes Close safe to follow with Pipeline.Shutdown).
	if got := errCode(t, out.Bytes()); got != "server_closing" {
		t.Fatalf("code %q", got)
	}
}

func TestMethodAndRouteHygiene(t *testing.T) {
	ts, _ := newTestServer(t, Options{})
	resp, err := http.Get(ts.URL + "/v1/score") // GET on a POST route
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/score: %d", resp.StatusCode)
	}
	resp, err = http.Get(fmt.Sprintf("%s/v2/stats", ts.URL))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unversioned route: %d", resp.StatusCode)
	}
}
