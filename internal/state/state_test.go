package state

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestZeroValueAndValidation(t *testing.T) {
	s := New(3, 4)
	if s.NumNodes() != 3 || s.Dim() != 4 {
		t.Fatalf("shape: %d %d", s.NumNodes(), s.Dim())
	}
	for _, v := range s.Get(1) {
		if v != 0 {
			t.Fatal("fresh state not zero")
		}
	}
	if s.Touched(1) || s.LastTime(1) != 0 {
		t.Fatal("fresh node should be untouched")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(0, 4)
}

func TestSetGetLastTime(t *testing.T) {
	s := New(2, 3)
	s.Set(1, []float32{1, 2, 3}, 42)
	got := s.Get(1)
	if got[0] != 1 || got[2] != 3 {
		t.Fatalf("get: %v", got)
	}
	if !s.Touched(1) || s.LastTime(1) != 42 {
		t.Fatalf("metadata: touched=%v t=%v", s.Touched(1), s.LastTime(1))
	}
	if s.Touched(0) {
		t.Fatal("node 0 should be untouched")
	}
}

func TestSetCopiesInput(t *testing.T) {
	s := New(1, 2)
	z := []float32{5, 6}
	s.Set(0, z, 1)
	z[0] = 99
	if s.Get(0)[0] != 5 {
		t.Fatal("Set must copy, not alias")
	}
}

func TestResetAndSnapshotRestore(t *testing.T) {
	s := New(2, 2)
	s.Set(0, []float32{1, 2}, 10)
	snap := s.Snapshot()
	s.Set(1, []float32{3, 4}, 20)
	s.Set(0, []float32{9, 9}, 30)
	s.Restore(snap)
	if s.Get(0)[0] != 1 || s.LastTime(0) != 10 {
		t.Fatalf("restore: %v @%v", s.Get(0), s.LastTime(0))
	}
	if s.Touched(1) {
		t.Fatal("restore leaked later write")
	}
	s.Reset()
	if s.Touched(0) || s.Get(0)[0] != 0 {
		t.Fatal("reset failed")
	}
}

// Property: the store returns exactly what was last written per node.
func TestLastWriteWinsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(8)
		s := New(n, 2)
		last := make(map[int32][]float32)
		lastT := make(map[int32]float64)
		for i := 0; i < 50; i++ {
			node := int32(rng.Intn(n))
			z := []float32{rng.Float32(), rng.Float32()}
			ts := rng.Float64()
			s.Set(node, z, ts)
			last[node] = z
			lastT[node] = ts
		}
		for node, z := range last {
			got := s.Get(node)
			if got[0] != z[0] || got[1] != z[1] || s.LastTime(node) != lastT[node] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
