// Package state stores the last computed embedding z(t−) and last-update
// time of every node. APAN and the memory-based baselines (TGN, JODIE,
// DyRep) read this store synchronously instead of querying the graph.
//
// Two implementations share one per-node API: Store is a flat,
// unsynchronized array (single-threaded training and the baselines), and
// Sharded stripes the same layout across power-of-two lock shards so the
// serving path can read and write concurrently with shard-local locking and
// admit new nodes at runtime via Grow.
package state

import "fmt"

// Store holds per-node embeddings in a flat array. It is not safe for
// concurrent use; see Sharded for the lock-striped variant.
type Store struct {
	numNodes int
	dim      int
	z        []float32
	lastTime []float64
	touched  []bool
}

// New creates a zero-initialized store.
func New(numNodes, dim int) *Store {
	if numNodes <= 0 || dim <= 0 {
		panic(fmt.Sprintf("state: invalid shape nodes=%d dim=%d", numNodes, dim))
	}
	return &Store{
		numNodes: numNodes,
		dim:      dim,
		z:        make([]float32, numNodes*dim),
		lastTime: make([]float64, numNodes),
		touched:  make([]bool, numNodes),
	}
}

// Dim returns the embedding dimension.
func (s *Store) Dim() int { return s.dim }

// NumNodes returns the number of tracked nodes.
func (s *Store) NumNodes() int { return s.numNodes }

// Get returns a read-only view of node n's embedding z(t−).
func (s *Store) Get(n int32) []float32 { return s.z[int(n)*s.dim : (int(n)+1)*s.dim] }

// CopyTo copies node n's embedding into dst (len ≥ Dim). This is the
// copy-out read shared with Sharded, so callers can be written once against
// either store.
func (s *Store) CopyTo(n int32, dst []float32) {
	copy(dst, s.z[int(n)*s.dim:(int(n)+1)*s.dim])
}

// Grow extends the store to hold n nodes, preserving existing contents. New
// nodes start zeroed and untouched. No-op when n ≤ NumNodes.
func (s *Store) Grow(n int) {
	if n <= s.numNodes {
		return
	}
	s.z = append(s.z, make([]float32, (n-s.numNodes)*s.dim)...)
	s.lastTime = append(s.lastTime, make([]float64, n-s.numNodes)...)
	s.touched = append(s.touched, make([]bool, n-s.numNodes)...)
	s.numNodes = n
}

// clone deep-copies the store (used by Sharded snapshots).
func (s *Store) clone() *Store {
	return &Store{
		numNodes: s.numNodes,
		dim:      s.dim,
		z:        append([]float32(nil), s.z...),
		lastTime: append([]float64(nil), s.lastTime...),
		touched:  append([]bool(nil), s.touched...),
	}
}

// Set overwrites node n's embedding and stamps its update time.
func (s *Store) Set(n int32, z []float32, t float64) {
	copy(s.z[int(n)*s.dim:(int(n)+1)*s.dim], z)
	s.lastTime[n] = t
	s.touched[n] = true
}

// LastTime returns when node n was last updated (0 if never).
func (s *Store) LastTime(n int32) float64 { return s.lastTime[n] }

// Touched reports whether node n has ever been updated.
func (s *Store) Touched(n int32) bool { return s.touched[n] }

// ClearNode resets node n to the never-updated cold-start condition: zero
// embedding, zero update time, untouched. This is the state half of
// cold-state eviction — an evicted node is indistinguishable from one the
// stream has never named.
func (s *Store) ClearNode(n int32) {
	row := s.z[int(n)*s.dim : (int(n)+1)*s.dim]
	for i := range row {
		row[i] = 0
	}
	s.lastTime[n] = 0
	s.touched[n] = false
}

// Reset zeroes the store.
func (s *Store) Reset() {
	for i := range s.z {
		s.z[i] = 0
	}
	for i := range s.lastTime {
		s.lastTime[i] = 0
		s.touched[i] = false
	}
}

// Snapshot captures the store for later Restore.
type Snapshot struct {
	z        []float32
	lastTime []float64
	touched  []bool
}

// Snapshot returns a deep copy of the store contents.
func (s *Store) Snapshot() *Snapshot {
	return &Snapshot{
		z:        append([]float32(nil), s.z...),
		lastTime: append([]float64(nil), s.lastTime...),
		touched:  append([]bool(nil), s.touched...),
	}
}

// Restore resets the store to a previously captured snapshot.
func (s *Store) Restore(snap *Snapshot) {
	copy(s.z, snap.z)
	copy(s.lastTime, snap.lastTime)
	copy(s.touched, snap.touched)
}
