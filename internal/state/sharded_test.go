package state

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
)

// TestShardedMatchesFlatQuick: for ANY sequence of Set operations, a Sharded
// store and a flat Store must agree on every node's embedding, last-update
// time and touched flag.
func TestShardedMatchesFlatQuick(t *testing.T) {
	const nodes, dim = 29, 5
	prop := func(seed int64, opCount uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		flat := New(nodes, dim)
		sharded := NewSharded(nodes, dim, 8)

		n := int(opCount%512) + 1
		z := make([]float32, dim)
		for i := 0; i < n; i++ {
			node := int32(rng.Intn(nodes))
			for j := range z {
				z[j] = rng.Float32()
			}
			ts := rng.Float64() * 100
			flat.Set(node, z, ts)
			sharded.Set(node, z, ts)
		}

		got := make([]float32, dim)
		for node := int32(0); node < nodes; node++ {
			if flat.Touched(node) != sharded.Touched(node) ||
				flat.LastTime(node) != sharded.LastTime(node) {
				return false
			}
			sharded.CopyTo(node, got)
			want := flat.Get(node)
			for j := range got {
				if got[j] != want[j] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestShardedGrowPreservesState checks dynamic admission semantics.
func TestShardedGrowPreservesState(t *testing.T) {
	const dim = 3
	s := NewSharded(4, dim, 2)
	s.Set(2, []float32{1, 2, 3}, 7)
	s.Grow(33)
	if s.NumNodes() != 33 {
		t.Fatalf("NumNodes after grow: %d", s.NumNodes())
	}
	z := make([]float32, dim)
	s.CopyTo(2, z)
	if z[0] != 1 || z[2] != 3 || s.LastTime(2) != 7 || !s.Touched(2) {
		t.Fatalf("grow lost state: %v t=%v", z, s.LastTime(2))
	}
	if s.Touched(32) || s.LastTime(32) != 0 {
		t.Fatal("new node not cold")
	}
	s.Set(32, []float32{4, 5, 6}, 9)
	if !s.Touched(32) {
		t.Fatal("set on admitted node failed")
	}
}

// TestShardedConcurrentStress hammers one store from concurrent writers,
// readers and a grower; run under -race. Whole-row writes must never tear:
// every row is constant-valued, so a copy-out read must come back constant.
func TestShardedConcurrentStress(t *testing.T) {
	const (
		nodes   = 64
		dim     = 16
		writers = 4
		readers = 4
		opsEach = 3000
	)
	s := NewSharded(nodes, dim, 8)
	var wg sync.WaitGroup

	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			z := make([]float32, dim)
			for i := 0; i < opsEach; i++ {
				n := int32(rng.Intn(nodes))
				v := rng.Float32()
				for j := range z {
					z[j] = v
				}
				s.Set(n, z, rng.Float64())
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + r)))
			z := make([]float32, dim)
			for i := 0; i < opsEach; i++ {
				n := int32(rng.Intn(nodes))
				s.CopyTo(n, z)
				for j := 1; j < dim; j++ {
					if z[j] != z[0] {
						t.Errorf("torn read on node %d: %v vs %v", n, z[j], z[0])
						return
					}
				}
			}
		}(r)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for n := nodes; n <= nodes+32; n += 8 {
			s.Grow(n)
		}
	}()
	wg.Wait()
}

// TestShardedSnapshotRestoreRoundTrip includes a grow between snapshot and
// restore: restore must roll the node space back too.
func TestShardedSnapshotRestoreRoundTrip(t *testing.T) {
	s := NewSharded(6, 2, 4)
	s.Set(5, []float32{1, 2}, 3)
	snap := s.Snapshot()

	s.Set(5, []float32{9, 9}, 4)
	s.Grow(50)
	s.Set(49, []float32{7, 7}, 5)

	s.Restore(snap)
	if s.NumNodes() != 6 {
		t.Fatalf("restore kept grown node space: %d", s.NumNodes())
	}
	z := make([]float32, 2)
	s.CopyTo(5, z)
	if z[0] != 1 || z[1] != 2 || s.LastTime(5) != 3 {
		t.Fatalf("restore did not roll back: %v t=%v", z, s.LastTime(5))
	}
}

// TestSnapshotSharedSinceAliasesCleanShards: shards untouched since the
// previous snapshot must be reused by pointer, and only dirty shards cloned.
func TestSnapshotSharedSinceAliasesCleanShards(t *testing.T) {
	const nodes, dim, shards = 64, 4, 8
	s := NewSharded(nodes, dim, shards)
	for n := int32(0); n < nodes; n++ {
		s.Set(n, []float32{float32(n), 1, 2, 3}, float64(n))
	}

	base, cloned := s.SnapshotSharedSince(nil)
	if cloned != shards {
		t.Fatalf("nil base must full-copy: cloned %d of %d", cloned, shards)
	}

	// Touch exactly two shards: nodes 0 and 1 map to shards 0&mask and 1&mask.
	s.Set(0, []float32{9, 9, 9, 9}, 99)
	s.Set(1, []float32{8, 8, 8, 8}, 98)

	next, cloned := s.SnapshotSharedSince(base)
	if cloned != 2 {
		t.Fatalf("expected 2 dirty shards cloned, got %d", cloned)
	}
	aliased := 0
	for i := range next.shards {
		if next.shards[i] == base.shards[i] {
			aliased++
		}
	}
	if aliased != shards-2 {
		t.Fatalf("expected %d aliased shards, got %d", shards-2, aliased)
	}

	// The aliased snapshot restores the exact live contents.
	r := NewSharded(nodes, dim, shards)
	r.Restore(next)
	for n := int32(0); n < nodes; n++ {
		if got, want := r.Get(n), s.Get(n); !floatsEqual(got, want) {
			t.Fatalf("node %d restored %v want %v", n, got, want)
		}
	}
}

// TestSnapshotSharedSinceFullCopyAfterBulkMutators: Reset, Restore and Grow
// touch every shard, so a subsequent incremental snapshot clones everything.
func TestSnapshotSharedSinceFullCopyAfterBulkMutators(t *testing.T) {
	const nodes, dim, shards = 32, 3, 4
	s := NewSharded(nodes, dim, shards)
	s.Set(5, []float32{1, 2, 3}, 1)
	base, _ := s.SnapshotSharedSince(nil)

	s.Reset()
	if _, cloned := s.SnapshotSharedSince(base); cloned != shards {
		t.Fatalf("after Reset expected %d clones, got %d", shards, cloned)
	}

	base, _ = s.SnapshotSharedSince(nil)
	s.Restore(base)
	if _, cloned := s.SnapshotSharedSince(base); cloned != shards {
		t.Fatalf("after Restore expected %d clones, got %d", shards, cloned)
	}

	base, _ = s.SnapshotSharedSince(nil)
	s.Grow(nodes * 2)
	if _, cloned := s.SnapshotSharedSince(base); cloned != shards {
		t.Fatalf("after Grow expected %d clones, got %d", shards, cloned)
	}
}

// TestSnapshotSharedSinceShardCountMismatch: a base from a different shard
// count degrades to a full copy instead of aliasing misaligned shards.
func TestSnapshotSharedSinceShardCountMismatch(t *testing.T) {
	a := NewSharded(16, 2, 4)
	b := NewSharded(16, 2, 8)
	base, _ := a.SnapshotSharedSince(nil)
	if _, cloned := b.SnapshotSharedSince(base); cloned != b.NumShards() {
		t.Fatalf("mismatched base must full-copy, cloned %d of %d", cloned, b.NumShards())
	}
}

func floatsEqual(a, b []float32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
