package state

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// Sharded is the lock-striped node-state store used on the serving path: the
// flat per-node layout of Store, striped across a power-of-two number of
// shards, each guarded by its own RWMutex. Node n lives in shard n&mask at
// local index n>>bits, so consecutive node IDs spread across shards and a
// hot write never blocks readers of other shards.
//
// All reads are copy-out (CopyTo): no method hands out a view into shard
// memory, so a caller never observes a concurrent write mid-row. Grow admits
// new nodes at runtime; it takes every shard lock, so in-flight per-node
// operations finish first and operations started after see the larger store.
//
// Consistency model: per-node operations are atomic; cross-node reads are
// not a snapshot (a reader interleaving with a multi-node writer may see
// some nodes pre-write and others post-write). Callers needing a consistent
// cut across nodes — checkpointing, epoch resets — must either quiesce
// writers or use Snapshot, which locks all shards.
type Sharded struct {
	dim      int
	mask     int32
	bits     uint
	numNodes atomic.Int64
	shards   []stateShard
}

type stateShard struct {
	mu sync.RWMutex
	st *Store
	// gen counts modifications to this shard (any mutator bumps it under
	// the shard's write lock). Incremental checkpoint cuts compare gens to
	// skip cloning shards untouched since the previous cut.
	gen uint64
	// Pad the 24-byte mutex + 8-byte pointer + 8-byte gen to a full cache
	// line so shard locks don't false-share.
	_ [24]byte
}

// shardCount rounds n up to a power of two in [1, 1<<16].
func shardCount(n int) int {
	if n < 1 {
		n = 1
	}
	if n > 1<<16 {
		n = 1 << 16
	}
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// shardCap returns the flat-store size each of `shards` shards needs to
// cover numNodes global IDs (local index is id>>bits, so ceil is exact).
func shardCap(numNodes, shards int) int {
	c := (numNodes + shards - 1) / shards
	if c < 1 {
		c = 1
	}
	return c
}

// NewSharded creates a zero-initialized sharded store over numNodes nodes of
// dimension dim, striped across `shards` shards (rounded up to a power of
// two; values < 1 mean one shard, i.e. a single global lock).
func NewSharded(numNodes, dim, shards int) *Sharded {
	if numNodes <= 0 || dim <= 0 {
		panic(fmt.Sprintf("state: invalid shape nodes=%d dim=%d", numNodes, dim))
	}
	n := shardCount(shards)
	s := &Sharded{dim: dim, mask: int32(n - 1), shards: make([]stateShard, n)}
	for n>>s.bits > 1 {
		s.bits++
	}
	cap := shardCap(numNodes, n)
	for i := range s.shards {
		s.shards[i].st = New(cap, dim)
	}
	s.numNodes.Store(int64(numNodes))
	return s
}

// NumShards returns the number of lock shards.
func (s *Sharded) NumShards() int { return len(s.shards) }

// Dim returns the embedding dimension.
func (s *Sharded) Dim() int { return s.dim }

// NumNodes returns the current number of tracked nodes.
func (s *Sharded) NumNodes() int { return int(s.numNodes.Load()) }

func (s *Sharded) locate(n int32) (*stateShard, int32) {
	if n < 0 || int64(n) >= s.numNodes.Load() {
		panic(fmt.Sprintf("state: node %d outside [0,%d)", n, s.numNodes.Load()))
	}
	return &s.shards[n&s.mask], n >> s.bits
}

// CopyTo copies node n's embedding z(t−) into dst (len ≥ Dim).
func (s *Sharded) CopyTo(n int32, dst []float32) {
	sh, local := s.locate(n)
	sh.mu.RLock()
	sh.st.CopyTo(local, dst)
	sh.mu.RUnlock()
}

// Get returns a copy of node n's embedding. Prefer CopyTo on hot paths; Get
// allocates.
func (s *Sharded) Get(n int32) []float32 {
	dst := make([]float32, s.dim)
	s.CopyTo(n, dst)
	return dst
}

// Set overwrites node n's embedding and stamps its update time, locking only
// n's shard.
func (s *Sharded) Set(n int32, z []float32, t float64) {
	sh, local := s.locate(n)
	sh.mu.Lock()
	sh.st.Set(local, z, t)
	sh.gen++
	sh.mu.Unlock()
}

// LastTime returns when node n was last updated (0 if never).
func (s *Sharded) LastTime(n int32) float64 {
	sh, local := s.locate(n)
	sh.mu.RLock()
	t := sh.st.LastTime(local)
	sh.mu.RUnlock()
	return t
}

// Touched reports whether node n has ever been updated.
func (s *Sharded) Touched(n int32) bool {
	sh, local := s.locate(n)
	sh.mu.RLock()
	ok := sh.st.Touched(local)
	sh.mu.RUnlock()
	return ok
}

// ClearNode resets node n to the cold-start condition (see Store.ClearNode),
// locking only n's shard.
func (s *Sharded) ClearNode(n int32) {
	sh, local := s.locate(n)
	sh.mu.Lock()
	sh.st.ClearNode(local)
	sh.gen++
	sh.mu.Unlock()
}

// Grow extends the store to hold n nodes, preserving existing contents. It
// locks every shard, so it must not be called while the caller holds any
// per-node operation open. No-op when n ≤ NumNodes.
func (s *Sharded) Grow(n int) {
	if int64(n) <= s.numNodes.Load() {
		return
	}
	s.lockAll()
	if int64(n) > s.numNodes.Load() {
		cap := shardCap(n, len(s.shards))
		for i := range s.shards {
			s.shards[i].st.Grow(cap)
			s.shards[i].gen++
		}
		s.numNodes.Store(int64(n))
	}
	s.unlockAll()
}

// Reset zeroes the store.
func (s *Sharded) Reset() {
	s.lockAll()
	for i := range s.shards {
		s.shards[i].st.Reset()
		s.shards[i].gen++
	}
	s.unlockAll()
}

func (s *Sharded) lockAll() {
	for i := range s.shards {
		s.shards[i].mu.Lock()
	}
}

func (s *Sharded) unlockAll() {
	for i := len(s.shards) - 1; i >= 0; i-- {
		s.shards[i].mu.Unlock()
	}
}

// ShardedSnapshot captures a Sharded store for later Restore. Snapshots
// are immutable: Restore and checkpoint serialization clone out of them,
// never mutate them — which is what lets incremental cuts alias clean
// shards across successive snapshots.
type ShardedSnapshot struct {
	numNodes int
	shards   []*Store
	gens     []uint64 // per-shard modification counters at capture time
}

// Snapshot returns a deep, cross-shard-consistent copy of the store: all
// shards are locked for the duration, so it pairs with Restore to bracket
// replay experiments exactly like the flat store's Snapshot.
func (s *Sharded) Snapshot() *ShardedSnapshot {
	snap := &ShardedSnapshot{
		shards: make([]*Store, len(s.shards)),
		gens:   make([]uint64, len(s.shards)),
	}
	s.lockAll()
	snap.numNodes = int(s.numNodes.Load())
	for i := range s.shards {
		snap.shards[i] = s.shards[i].st.clone()
		snap.gens[i] = s.shards[i].gen
	}
	s.unlockAll()
	return snap
}

// SnapshotShared captures the store one shard at a time under shard READ
// locks, so concurrent readers — including a serving InferBatch gather —
// are never blocked. The copy is cross-shard-consistent only if writers are
// externally quiesced for the duration (the model's apply gate provides
// that); with writers running it degrades to per-shard consistency, like
// any interleaved read.
func (s *Sharded) SnapshotShared() *ShardedSnapshot {
	snap, _ := s.SnapshotSharedSince(nil)
	return snap
}

// SnapshotSharedSince is SnapshotShared with incremental cloning: shards
// whose modification counter is unchanged since prev was captured reuse
// prev's clone instead of copying again — safe because snapshots are
// immutable (see ShardedSnapshot). Returns the snapshot and the number of
// shards actually cloned. prev must come from this store (same shard
// count); nil, or a shard-count mismatch, degrades to a full copy. The
// same quiescence caveat as SnapshotShared applies: cross-shard
// consistency needs writers externally paused.
func (s *Sharded) SnapshotSharedSince(prev *ShardedSnapshot) (*ShardedSnapshot, int) {
	snap := &ShardedSnapshot{
		numNodes: int(s.numNodes.Load()),
		shards:   make([]*Store, len(s.shards)),
		gens:     make([]uint64, len(s.shards)),
	}
	incremental := prev != nil && len(prev.shards) == len(s.shards) && len(prev.gens) == len(s.shards)
	cloned := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		snap.gens[i] = sh.gen
		if incremental && prev.gens[i] == sh.gen {
			snap.shards[i] = prev.shards[i]
		} else {
			snap.shards[i] = sh.st.clone()
			cloned++
		}
		sh.mu.RUnlock()
	}
	return snap, cloned
}

// Restore resets the store to a previously captured snapshot, including its
// node count (a store grown since the snapshot shrinks back).
func (s *Sharded) Restore(snap *ShardedSnapshot) {
	if len(snap.shards) != len(s.shards) {
		panic(fmt.Sprintf("state: restore across shard counts (%d vs %d)", len(snap.shards), len(s.shards)))
	}
	s.lockAll()
	for i := range s.shards {
		s.shards[i].st = snap.shards[i].clone()
		s.shards[i].gen++
	}
	s.numNodes.Store(int64(snap.numNodes))
	s.unlockAll()
}
