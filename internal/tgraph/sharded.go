package tgraph

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
)

// Sharded is the lock-striped CTDG store: the same append-only event log and
// time-sorted incidence lists as Graph, with the adjacency hash-partitioned
// across a power-of-two number of partitions, each guarded by its own
// RWMutex (mirroring mailbox.Sharded/state.Sharded). Node n lives in
// partition n&mask at local index n>>bits, so consecutive node IDs spread
// across partitions and concurrent k-hop gathers only contend when they
// touch the same partition — AddEvent locks the log plus at most two
// partitions, never the world.
//
// The global event log is guarded by its own RWMutex; an append is an O(1)
// pointer bump (id assignment + slice append) so the log lock is never held
// across adjacency work. Per-partition operations are atomic; a reader
// racing a writer may observe the log entry before the adjacency entries
// (or the Src incidence before the Dst one) — standard concurrent-store
// semantics, the same partial visibility any remote graph DB exhibits.
// When calls are serialized, Sharded is query-for-query bit-exact with
// Graph: every algorithm below is the flat one, re-scoped to a partition.
type Sharded struct {
	mask     int32
	bits     uint
	numNodes atomic.Int64

	logMu  sync.RWMutex
	events []Event

	parts []partition
}

type partition struct {
	mu  sync.RWMutex
	adj [][]Incidence
	// gen counts modifications to this partition (bumped under its write
	// lock). Incremental checkpoint accounting reads it via PartitionGens
	// to report how much of the graph changed between cuts.
	gen uint64
	// Pad the 24-byte mutex + 24-byte slice header + 8-byte gen to a full
	// cache line so partition locks don't false-share.
	_ [8]byte
}

// NewSharded creates an empty sharded store over numNodes nodes, striped
// across `parts` partitions (rounded up to a power of two; values < 1 mean
// one partition, i.e. a single lock pair).
func NewSharded(numNodes, parts int) *Sharded {
	if numNodes <= 0 {
		panic(fmt.Sprintf("tgraph: invalid node count %d", numNodes))
	}
	n := partCount(parts)
	s := &Sharded{mask: int32(n - 1), parts: make([]partition, n)}
	for n>>s.bits > 1 {
		s.bits++
	}
	cap := partCap(numNodes, n)
	for i := range s.parts {
		s.parts[i].adj = make([][]Incidence, cap)
	}
	s.numNodes.Store(int64(numNodes))
	return s
}

// partCount rounds n up to a power of two in [1, 1<<16].
func partCount(n int) int {
	if n < 1 {
		n = 1
	}
	if n > 1<<16 {
		n = 1 << 16
	}
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// partCap returns the adjacency length each of `parts` partitions needs to
// cover numNodes global IDs (local index is id>>bits, so ceil is exact).
func partCap(numNodes, parts int) int {
	c := (numNodes + parts - 1) / parts
	if c < 1 {
		c = 1
	}
	return c
}

// NumPartitions returns the number of lock partitions.
func (s *Sharded) NumPartitions() int { return len(s.parts) }

// NumNodes returns the node-set size.
func (s *Sharded) NumNodes() int { return int(s.numNodes.Load()) }

// NumEvents returns the number of inserted events.
func (s *Sharded) NumEvents() int {
	s.logMu.RLock()
	n := len(s.events)
	s.logMu.RUnlock()
	return n
}

func (s *Sharded) locate(n NodeID) (*partition, int32) {
	return &s.parts[n&s.mask], n >> s.bits
}

// Grow extends the node-ID space to n, locking every partition; no-op when
// n ≤ NumNodes.
func (s *Sharded) Grow(n int) {
	if int64(n) <= s.numNodes.Load() {
		return
	}
	s.lockAll()
	if int64(n) > s.numNodes.Load() {
		cap := partCap(n, len(s.parts))
		for i := range s.parts {
			if grow := cap - len(s.parts[i].adj); grow > 0 {
				s.parts[i].adj = append(s.parts[i].adj, make([][]Incidence, grow)...)
			}
			s.parts[i].gen++
		}
		s.numNodes.Store(int64(n))
	}
	s.unlockAll()
}

// Reset re-initializes the store to an empty graph over numNodes nodes. The
// old log's backing array is left untouched, so previously captured
// EventLog slices keep their contents.
func (s *Sharded) Reset(numNodes int) {
	s.lockAll()
	s.logMu.Lock()
	s.events = nil
	s.logMu.Unlock()
	cap := partCap(numNodes, len(s.parts))
	for i := range s.parts {
		s.parts[i].adj = make([][]Incidence, cap)
		s.parts[i].gen++
	}
	s.numNodes.Store(int64(numNodes))
	s.unlockAll()
}

// PartitionGens appends each partition's modification counter to dst and
// returns it. A cut that remembers the previous call's values can count
// dirty partitions — the graph-side half of incremental checkpoint
// accounting (the event log itself is already captured as a zero-copy
// prefix, so only accounting needs this).
func (s *Sharded) PartitionGens(dst []uint64) []uint64 {
	for i := range s.parts {
		p := &s.parts[i]
		p.mu.RLock()
		dst = append(dst, p.gen)
		p.mu.RUnlock()
	}
	return dst
}

// EventLog returns the global event log under the log's read lock. The same
// immutability contract as Graph.EventLog applies: prefixes captured while
// writers are quiesced stay valid as later events are appended. Callers
// must treat the slice as read-only.
func (s *Sharded) EventLog() []Event {
	s.logMu.RLock()
	ev := s.events
	s.logMu.RUnlock()
	return ev
}

// Event returns the stored event with the given log id. Entries are
// immutable once inserted, so the pointer stays valid across appends.
func (s *Sharded) Event(id int64) *Event {
	s.logMu.RLock()
	e := &s.events[id]
	s.logMu.RUnlock()
	return e
}

// AddEvent appends e to the log and both endpoints' incidence lists,
// returning the assigned log id — Graph.AddEvent semantics (undirected
// storage, backward-shift insertion for out-of-order times), locking only
// the log plus the one or two touched partitions.
func (s *Sharded) AddEvent(e Event) int64 {
	if nn := s.numNodes.Load(); e.Src < 0 || int64(e.Src) >= nn || e.Dst < 0 || int64(e.Dst) >= nn {
		panic(fmt.Sprintf("tgraph: event endpoints %d-%d out of range [0,%d)", e.Src, e.Dst, nn))
	}
	s.logMu.Lock()
	id := int64(len(s.events))
	e.ID = id
	s.events = append(s.events, e)
	s.logMu.Unlock()
	s.insertIncidence(e.Src, Incidence{Peer: e.Dst, Event: id, Time: e.Time})
	if e.Dst != e.Src {
		s.insertIncidence(e.Dst, Incidence{Peer: e.Src, Event: id, Time: e.Time})
	}
	return id
}

// insertIncidence appends inc to n's list under the partition's write lock,
// shifting it backwards while an earlier entry has a later timestamp.
func (s *Sharded) insertIncidence(n NodeID, inc Incidence) {
	p, local := s.locate(n)
	p.mu.Lock()
	lst := append(p.adj[local], inc)
	for i := len(lst) - 1; i > 0 && lst[i-1].Time > lst[i].Time; i-- {
		lst[i-1], lst[i] = lst[i], lst[i-1]
	}
	p.adj[local] = lst
	p.gen++
	p.mu.Unlock()
}

// searchBeforeLocked returns the count of incidences of lst with Time < t.
func searchBeforeLocked(lst []Incidence, t float64) int {
	return sort.Search(len(lst), func(i int) bool { return lst[i].Time >= t })
}

// Degree returns the number of interactions of n strictly before t, locking
// only n's partition.
func (s *Sharded) Degree(n NodeID, t float64) int {
	p, local := s.locate(n)
	p.mu.RLock()
	d := searchBeforeLocked(p.adj[local], t)
	p.mu.RUnlock()
	return d
}

// MostRecentNeighbors appends to out the up-to-k most recent interactions of
// n strictly before time t, newest first, locking only n's partition.
// Results are copied out of the partition under its read lock.
func (s *Sharded) MostRecentNeighbors(n NodeID, t float64, k int, out []Incidence) []Incidence {
	p, local := s.locate(n)
	p.mu.RLock()
	lst := p.adj[local]
	hi := searchBeforeLocked(lst, t)
	lo := hi - k
	if lo < 0 {
		lo = 0
	}
	for i := hi - 1; i >= lo; i-- {
		out = append(out, lst[i])
	}
	p.mu.RUnlock()
	return out
}

// UniformNeighbors appends up to k interactions of n before t sampled
// uniformly without replacement. Floyd's algorithm exactly as in
// Graph.UniformNeighbors — the rng is consumed identically, so seeded runs
// agree with the flat store bit for bit.
func (s *Sharded) UniformNeighbors(rng *rand.Rand, n NodeID, t float64, k int, out []Incidence) []Incidence {
	p, local := s.locate(n)
	p.mu.RLock()
	defer p.mu.RUnlock()
	lst := p.adj[local]
	hi := searchBeforeLocked(lst, t)
	if hi <= k {
		for i := 0; i < hi; i++ {
			out = append(out, lst[i])
		}
		return out
	}
	picked := make(map[int]struct{}, k)
	for i := hi - k; i < hi; i++ {
		j := rng.Intn(i + 1)
		if _, dup := picked[j]; dup {
			j = i
		}
		picked[j] = struct{}{}
		out = append(out, lst[j])
	}
	return out
}

// KHopMostRecent returns the per-hop temporal neighborhood of the seeds —
// Graph.KHopMostRecent re-scoped so each frontier node takes only its own
// partition's read lock. Results are copy-out: hops alias neither partition
// storage nor each other.
func (s *Sharded) KHopMostRecent(seeds []NodeID, t float64, fanout, hops int) [][]Incidence {
	frontier := seeds
	out := make([][]Incidence, hops)
	var scratch []Incidence
	for h := 0; h < hops; h++ {
		scratch = scratch[:0]
		for _, n := range frontier {
			scratch = s.MostRecentNeighbors(n, t, fanout, scratch)
		}
		out[h] = append([]Incidence(nil), scratch...)
		next := make([]NodeID, len(out[h]))
		for i, inc := range out[h] {
			next[i] = inc.Peer
		}
		frontier = next
	}
	return out
}

// KHopMostRecentInto is KHopMostRecent building each hop directly into the
// scratch's level buffers — identical incidences in identical order, no
// per-call allocation once the scratch is warm. MostRecentNeighbors still
// copies incidence values out under each partition's read lock, so hops alias
// only the caller's scratch, never partition storage.
func (s *Sharded) KHopMostRecentInto(sc *KHopScratch, seeds []NodeID, t float64, fanout, hops int) [][]Incidence {
	out := sc.grow(hops)
	frontier := seeds
	for h := 0; h < hops; h++ {
		lvl := out[h][:0]
		for _, n := range frontier {
			lvl = s.MostRecentNeighbors(n, t, fanout, lvl)
		}
		out[h] = lvl
		sc.frontier = sc.frontier[:0]
		for _, inc := range lvl {
			sc.frontier = append(sc.frontier, inc.Peer)
		}
		frontier = sc.frontier
	}
	return out
}

// EventsBetween returns the events with Time in [lo, hi) from the global
// log. Entries are immutable and the binary search runs under the log's
// read lock, so the result stays valid across subsequent appends.
func (s *Sharded) EventsBetween(lo, hi float64) []Event {
	s.logMu.RLock()
	a := sort.Search(len(s.events), func(i int) bool { return s.events[i].Time >= lo })
	b := sort.Search(len(s.events), func(i int) bool { return s.events[i].Time >= hi })
	ev := s.events[a:b]
	s.logMu.RUnlock()
	return ev
}

// StaticSnapshot builds the deduplicated undirected CSR of all events before
// t — Graph.StaticSnapshot over the partitioned adjacency, with every
// partition read-locked for a consistent cut.
func (s *Sharded) StaticSnapshot(t float64) *CSR {
	s.rlockAll()
	defer s.runlockAll()
	numNodes := int(s.numNodes.Load())
	type edge struct {
		peer NodeID
		ev   int64
	}
	per := make([]map[NodeID]int64, numNodes)
	for n := 0; n < numNodes; n++ {
		p, local := s.locate(NodeID(n))
		lst := p.adj[local]
		hi := searchBeforeLocked(lst, t)
		if hi == 0 {
			continue
		}
		m := make(map[NodeID]int64, hi)
		for _, inc := range lst[:hi] {
			m[inc.Peer] = inc.Event // later entries overwrite: latest event wins
		}
		per[n] = m
	}
	csr := &CSR{NumNodes: numNodes, RowPtr: make([]int32, numNodes+1)}
	var total int32
	for n := 0; n < numNodes; n++ {
		csr.RowPtr[n] = total
		total += int32(len(per[n]))
	}
	csr.RowPtr[numNodes] = total
	csr.ColIdx = make([]NodeID, total)
	csr.LastEvent = make([]int64, total)
	for n := 0; n < numNodes; n++ {
		if per[n] == nil {
			continue
		}
		edges := make([]edge, 0, len(per[n]))
		for p, ev := range per[n] {
			edges = append(edges, edge{p, ev})
		}
		sort.Slice(edges, func(i, j int) bool { return edges[i].peer < edges[j].peer })
		base := csr.RowPtr[n]
		for i, e := range edges {
			csr.ColIdx[base+int32(i)] = e.peer
			csr.LastEvent[base+int32(i)] = e.ev
		}
	}
	return csr
}

// ConcurrentSafe reports true: Sharded synchronizes internally.
func (s *Sharded) ConcurrentSafe() bool { return true }

func (s *Sharded) lockAll() {
	for i := range s.parts {
		s.parts[i].mu.Lock()
	}
}

func (s *Sharded) unlockAll() {
	for i := len(s.parts) - 1; i >= 0; i-- {
		s.parts[i].mu.Unlock()
	}
}

func (s *Sharded) rlockAll() {
	for i := range s.parts {
		s.parts[i].mu.RLock()
	}
}

func (s *Sharded) runlockAll() {
	for i := len(s.parts) - 1; i >= 0; i-- {
		s.parts[i].mu.RUnlock()
	}
}

var _ Store = (*Sharded)(nil)
