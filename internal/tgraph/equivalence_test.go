// The backend equivalence suite: every tgraph.Store implementation must be
// query-for-query bit-exact with the flat Graph when calls are serialized.
// testing/quick drives randomized event streams — duplicate timestamps,
// self-loops, out-of-order arrivals, interleaved Grow calls — through all
// three backends (flat, sharded, remote-sim) and compares every query's
// answer exactly. This is the proof obligation docs/testing.md names for
// adding a backend.
package tgraph_test

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"apan/internal/gdb"
	"apan/internal/tgraph"
)

// backends builds one instance of every Store implementation over numNodes
// nodes. The sharded backends use a small partition count so local indices
// exercise the n>>bits mapping, and remote-sim carries a latency model in
// accumulate-only mode to prove accounting does not perturb answers.
func backends(numNodes int) map[string]tgraph.Store {
	return map[string]tgraph.Store{
		"flat":    tgraph.New(numNodes),
		"sharded": tgraph.NewSharded(numNodes, 4),
		"remote-sim": gdb.NewRemote(tgraph.NewSharded(numNodes, 4),
			gdb.RemoteOptions{Latency: gdb.PerItem(time.Millisecond, time.Microsecond)}),
	}
}

// randomStream generates n events over a node space that starts at base
// nodes and is grown mid-stream: ~10% self-loops, ~30% duplicate
// timestamps, ~10% slightly out-of-order times. Grow steps are encoded as
// events with Src == -1 and the new size in Dst.
func randomStream(rng *rand.Rand, n, base, max int) []tgraph.Event {
	events := make([]tgraph.Event, 0, n)
	nodes := base
	t := 0.0
	for i := 0; i < n; i++ {
		if nodes < max && rng.Intn(20) == 0 {
			nodes += 1 + rng.Intn(max-nodes)
			events = append(events, tgraph.Event{Src: -1, Dst: tgraph.NodeID(nodes)})
			continue
		}
		switch rng.Intn(10) {
		case 0: // duplicate timestamp
		case 1: // out-of-order: step back a little
			t -= rng.Float64()
			if t < 0 {
				t = 0
			}
		default:
			t += rng.Float64()
		}
		src := tgraph.NodeID(rng.Intn(nodes))
		dst := tgraph.NodeID(rng.Intn(nodes))
		if rng.Intn(10) == 0 {
			dst = src // self-loop
		}
		feat := []float32{rng.Float32(), rng.Float32()}
		events = append(events, tgraph.Event{Src: src, Dst: dst, Time: t, Feat: feat, Label: int8(rng.Intn(2))})
	}
	return events
}

// apply replays the stream (events + encoded Grow steps) into s.
func apply(s tgraph.Store, stream []tgraph.Event) {
	for _, ev := range stream {
		if ev.Src == -1 {
			s.Grow(int(ev.Dst))
			continue
		}
		s.AddEvent(ev)
	}
}

func sameIncidences(t *testing.T, what string, a, b []tgraph.Incidence) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: len %d vs %d", what, len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("%s: entry %d: %+v vs %+v", what, i, a[i], b[i])
		}
	}
}

func sameEvents(t *testing.T, what string, a, b []tgraph.Event) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: len %d vs %d", what, len(a), len(b))
	}
	for i := range a {
		if a[i].ID != b[i].ID || a[i].Src != b[i].Src || a[i].Dst != b[i].Dst ||
			a[i].Time != b[i].Time || a[i].Label != b[i].Label {
			t.Fatalf("%s: entry %d: %+v vs %+v", what, i, a[i], b[i])
		}
	}
}

// checkEquivalent replays one randomized stream into every backend and
// compares the full query surface against the flat reference.
func checkEquivalent(t *testing.T, seed int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	const base, max = 16, 48
	stream := randomStream(rng, 300, base, max)
	stores := backends(base)
	for _, s := range stores {
		apply(s, stream)
	}
	ref := stores["flat"]

	maxT := 0.0
	for _, ev := range stream {
		if ev.Src != -1 && ev.Time > maxT {
			maxT = ev.Time
		}
	}

	for name, s := range stores {
		if name == "flat" {
			continue
		}
		if s.NumNodes() != ref.NumNodes() {
			t.Fatalf("%s: NumNodes %d vs %d", name, s.NumNodes(), ref.NumNodes())
		}
		if s.NumEvents() != ref.NumEvents() {
			t.Fatalf("%s: NumEvents %d vs %d", name, s.NumEvents(), ref.NumEvents())
		}
		sameEvents(t, name+": EventLog", s.EventLog(), ref.EventLog())
		for id := int64(0); id < int64(ref.NumEvents()); id += 17 {
			if a, b := *s.Event(id), *ref.Event(id); a.ID != b.ID || a.Time != b.Time {
				t.Fatalf("%s: Event(%d): %+v vs %+v", name, id, a, b)
			}
		}

		// 60 random query points: mixed nodes, times (incl. exact event
		// times, which exercise the strictly-before boundary), fanouts.
		qrng := rand.New(rand.NewSource(seed + 1))
		for q := 0; q < 60; q++ {
			n := tgraph.NodeID(qrng.Intn(ref.NumNodes()))
			var qt float64
			if qrng.Intn(2) == 0 && ref.NumEvents() > 0 {
				qt = ref.Event(int64(qrng.Intn(ref.NumEvents()))).Time // exact boundary
			} else {
				qt = qrng.Float64() * (maxT + 1)
			}
			k := 1 + qrng.Intn(6)

			if a, b := s.Degree(n, qt), ref.Degree(n, qt); a != b {
				t.Fatalf("%s: Degree(%d,%g) %d vs %d", name, n, qt, a, b)
			}
			sameIncidences(t, name+": MostRecentNeighbors",
				s.MostRecentNeighbors(n, qt, k, nil), ref.MostRecentNeighbors(n, qt, k, nil))

			// Seeded rng per backend: Floyd's algorithm must consume the
			// stream identically for answers to agree.
			ra := rand.New(rand.NewSource(seed + int64(q)))
			rb := rand.New(rand.NewSource(seed + int64(q)))
			sameIncidences(t, name+": UniformNeighbors",
				s.UniformNeighbors(ra, n, qt, k, nil), ref.UniformNeighbors(rb, n, qt, k, nil))

			seeds := []tgraph.NodeID{n, tgraph.NodeID(qrng.Intn(ref.NumNodes()))}
			ha := s.KHopMostRecent(seeds, qt, k, 2)
			hb := ref.KHopMostRecent(seeds, qt, k, 2)
			for h := range ha {
				sameIncidences(t, name+": KHopMostRecent", ha[h], hb[h])
			}

			lo := qrng.Float64() * maxT
			hi := lo + qrng.Float64()*maxT
			sameEvents(t, name+": EventsBetween", s.EventsBetween(lo, hi), ref.EventsBetween(lo, hi))
		}

		ca, cb := s.StaticSnapshot(maxT/2), ref.StaticSnapshot(maxT/2)
		if ca.NumNodes != cb.NumNodes || len(ca.ColIdx) != len(cb.ColIdx) {
			t.Fatalf("%s: StaticSnapshot shape", name)
		}
		for i := range ca.RowPtr {
			if ca.RowPtr[i] != cb.RowPtr[i] {
				t.Fatalf("%s: StaticSnapshot RowPtr[%d]", name, i)
			}
		}
		for i := range ca.ColIdx {
			if ca.ColIdx[i] != cb.ColIdx[i] || ca.LastEvent[i] != cb.LastEvent[i] {
				t.Fatalf("%s: StaticSnapshot edge %d", name, i)
			}
		}
	}
}

// TestBackendEquivalenceQuick is the property: for every stream seed, all
// backends answer the whole query surface identically to the flat store.
func TestBackendEquivalenceQuick(t *testing.T) {
	count := 25
	if testing.Short() {
		count = 8
	}
	property := func(seed int64) bool {
		checkEquivalent(t, seed) // fails the test with a precise diff
		return true
	}
	if err := quick.Check(property, &quick.Config{MaxCount: count}); err != nil {
		t.Fatal(err)
	}
}

// TestBackendEquivalenceAfterReset proves Reset re-initializes in place:
// replaying a second stream after Reset must agree across backends, and
// log slices captured before the Reset must keep their contents.
func TestBackendEquivalenceAfterReset(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	stream1 := randomStream(rng, 200, 16, 48)
	stream2 := randomStream(rng, 200, 16, 48)
	stores := backends(16)
	for _, s := range stores {
		apply(s, stream1)
	}
	ref := stores["flat"]
	captured := map[string][]tgraph.Event{}
	for name, s := range stores {
		captured[name] = s.EventLog()[:s.NumEvents()]
	}
	want := append([]tgraph.Event(nil), captured["flat"]...)

	for _, s := range stores {
		s.Reset(16)
		if s.NumEvents() != 0 || s.NumNodes() != 16 {
			t.Fatalf("Reset left %d events, %d nodes", s.NumEvents(), s.NumNodes())
		}
		apply(s, stream2)
	}
	for name, s := range stores {
		if name == "flat" {
			continue
		}
		sameEvents(t, name+": post-reset EventLog", s.EventLog(), ref.EventLog())
	}
	// The pre-reset capture is still intact: Reset replaced the log, it did
	// not overwrite the old backing array.
	for name, cap := range captured {
		sameEvents(t, name+": captured prefix after Reset", cap, want)
	}
}
