package tgraph

import "math/rand"

// Store is the pluggable temporal-graph backend interface: the exact query
// surface core.Model and the baselines consume. Three implementations ship:
//
//   - *Graph   — the flat in-process store (not concurrency-safe; callers
//     serialize, historically behind core's graphMu),
//   - *Sharded — hash-partitioned adjacency with per-partition RWMutexes
//     (concurrency-safe; concurrent k-hop gathers and appends touching
//     disjoint partitions proceed in parallel),
//   - gdb.Remote — a remote-style backend wrapping any Store behind a
//     simulated RPC latency model with batched k-hop gathers (the paper's
//     Figure 6 distributed graph DB deployment).
//
// Every implementation must be query-for-query bit-exact with *Graph when
// calls are serialized: embeddings depend only on what the store returns, so
// equal answers force equal scores and equal RuntimeDigests. The
// testing/quick equivalence suite (equivalence_test.go) and the scenario
// harness's backend_parity invariant enforce this; docs/testing.md describes
// the obligations a new backend must discharge.
type Store interface {
	// NumNodes returns the node-set size.
	NumNodes() int
	// NumEvents returns the number of inserted events.
	NumEvents() int
	// Grow extends the node-ID space to n (no-op when n ≤ NumNodes).
	Grow(n int)
	// Reset re-initializes the store to an empty graph over numNodes nodes,
	// in place — core keeps the same Store value across runtime resets and
	// checkpoint loads so the configured backend survives them. Previously
	// returned EventLog slices keep their captured contents (Reset replaces
	// the log, it does not overwrite the old backing array).
	Reset(numNodes int)

	// AddEvent appends e to the log and both endpoints' incidence lists,
	// returning the assigned log id (see Graph.AddEvent for semantics).
	AddEvent(e Event) int64
	// Event returns the stored event with the given log id. Events are
	// immutable once inserted.
	Event(id int64) *Event
	// EventLog returns the append-only global log; prefixes captured while
	// writers are quiesced stay valid consistent snapshots (see
	// Graph.EventLog). Callers must treat the slice as read-only.
	EventLog() []Event

	// Degree returns the number of interactions of n strictly before t.
	Degree(n NodeID, t float64) int
	// MostRecentNeighbors appends the up-to-k most recent interactions of n
	// strictly before t, newest first.
	MostRecentNeighbors(n NodeID, t float64, k int, out []Incidence) []Incidence
	// UniformNeighbors appends up to k interactions of n before t, sampled
	// uniformly without replacement. Implementations must consume rng
	// identically to Graph.UniformNeighbors (Floyd's algorithm) so seeded
	// runs agree across backends.
	UniformNeighbors(rng *rand.Rand, n NodeID, t float64, k int, out []Incidence) []Incidence
	// KHopMostRecent returns the per-hop temporal neighborhood of the seeds.
	// Results are copy-out: they never alias store-internal adjacency
	// storage, so they stay valid across subsequent appends.
	KHopMostRecent(seeds []NodeID, t float64, fanout, hops int) [][]Incidence
	// EventsBetween returns the events with Time in [lo, hi); entries are
	// immutable, so the result stays valid across subsequent appends.
	EventsBetween(lo, hi float64) []Event
	// StaticSnapshot builds the deduplicated undirected CSR of all events
	// before t, for the static baselines.
	StaticSnapshot(t float64) *CSR

	// ConcurrentSafe reports whether the store internally synchronizes
	// concurrent readers and writers. When true, core.Model elides graphMu
	// on graph reads and can run appliers concurrently; when false, core
	// serializes every access behind graphMu.
	ConcurrentSafe() bool
}

// Reset re-initializes g to an empty graph over numNodes nodes. The old
// event log's backing array is left untouched, so previously captured
// EventLog slices keep their contents.
func (g *Graph) Reset(numNodes int) {
	g.numNodes = numNodes
	g.events = nil
	g.adj = make([][]Incidence, numNodes)
}

// ConcurrentSafe reports false: Graph requires external serialization.
func (g *Graph) ConcurrentSafe() bool { return false }

var _ Store = (*Graph)(nil)
