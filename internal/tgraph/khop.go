package tgraph

// KHopScratch holds the reusable buffers of a k-hop traversal so steady-state
// callers (the mail propagator runs one traversal per event) allocate nothing.
// The slices returned by a *Into call alias the scratch and stay valid only
// until the next call with the same scratch; callers that need the results to
// outlive that must copy, or use the allocating KHopMostRecent.
type KHopScratch struct {
	levels   [][]Incidence
	frontier []NodeID
}

// grow returns a per-hop output slice backed by the scratch, preserving the
// capacity of previously used level buffers.
func (sc *KHopScratch) grow(hops int) [][]Incidence {
	for len(sc.levels) < hops {
		sc.levels = append(sc.levels, nil)
	}
	return sc.levels[:hops]
}

// KHopInto is implemented by stores whose KHopMostRecent can run through a
// caller-owned KHopScratch. The result contract matches KHopMostRecent
// bit-for-bit — same incidences, same order — only the buffer ownership
// differs (see KHopScratch).
type KHopInto interface {
	KHopMostRecentInto(sc *KHopScratch, seeds []NodeID, t float64, fanout, hops int) [][]Incidence
}

// KHopMostRecentInto routes a k-hop query through the scratch-reuse path when
// s implements KHopInto and falls back to the allocating Store method
// otherwise, so wrappers can offer the fast path without constraining their
// inner store.
func KHopMostRecentInto(s Store, sc *KHopScratch, seeds []NodeID, t float64, fanout, hops int) [][]Incidence {
	if ki, ok := s.(KHopInto); ok {
		return ki.KHopMostRecentInto(sc, seeds, t, fanout, hops)
	}
	return s.KHopMostRecent(seeds, t, fanout, hops)
}
