package tgraph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func buildChain(t *testing.T) *Graph {
	t.Helper()
	g := New(5)
	// Events: (0,1)@1, (1,2)@2, (0,1)@3, (2,3)@4, (1,4)@5
	g.AddEvent(Event{Src: 0, Dst: 1, Time: 1})
	g.AddEvent(Event{Src: 1, Dst: 2, Time: 2})
	g.AddEvent(Event{Src: 0, Dst: 1, Time: 3})
	g.AddEvent(Event{Src: 2, Dst: 3, Time: 4})
	g.AddEvent(Event{Src: 1, Dst: 4, Time: 5})
	return g
}

func TestAddEventAssignsIDs(t *testing.T) {
	g := buildChain(t)
	if g.NumEvents() != 5 {
		t.Fatalf("NumEvents=%d", g.NumEvents())
	}
	for i := 0; i < 5; i++ {
		if g.Event(int64(i)).ID != int64(i) {
			t.Fatalf("event %d has id %d", i, g.Event(int64(i)).ID)
		}
	}
}

func TestAddEventRangePanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(2).AddEvent(Event{Src: 0, Dst: 5, Time: 1})
}

func TestDegreeTemporal(t *testing.T) {
	g := buildChain(t)
	if d := g.Degree(1, 0.5); d != 0 {
		t.Fatalf("degree(1, 0.5)=%d", d)
	}
	if d := g.Degree(1, 2.5); d != 2 {
		t.Fatalf("degree(1, 2.5)=%d", d)
	}
	if d := g.Degree(1, 10); d != 4 {
		t.Fatalf("degree(1, 10)=%d", d)
	}
}

func TestMostRecentNeighborsStrictlyBefore(t *testing.T) {
	g := buildChain(t)
	// At t=3, node 1 has interactions @1 (with 0) and @2 (with 2); the @3
	// event must be excluded (strictly before).
	got := g.MostRecentNeighbors(1, 3, 10, nil)
	if len(got) != 2 {
		t.Fatalf("got %d neighbors: %+v", len(got), got)
	}
	if got[0].Peer != 2 || got[0].Time != 2 {
		t.Fatalf("newest first expected peer 2@2, got %+v", got[0])
	}
	if got[1].Peer != 0 || got[1].Time != 1 {
		t.Fatalf("second expected peer 0@1, got %+v", got[1])
	}
}

func TestMostRecentNeighborsLimit(t *testing.T) {
	g := buildChain(t)
	got := g.MostRecentNeighbors(1, 100, 1, nil)
	if len(got) != 1 || got[0].Peer != 4 {
		t.Fatalf("want only newest (peer 4), got %+v", got)
	}
}

func TestUniformNeighborsBounds(t *testing.T) {
	g := buildChain(t)
	rng := rand.New(rand.NewSource(1))
	got := g.UniformNeighbors(rng, 1, 100, 2, nil)
	if len(got) != 2 {
		t.Fatalf("want 2 samples, got %d", len(got))
	}
	seen := map[int64]bool{}
	for _, inc := range got {
		if inc.Time >= 100 {
			t.Fatalf("sampled future event %+v", inc)
		}
		if seen[inc.Event] {
			t.Fatalf("duplicate sample %+v", got)
		}
		seen[inc.Event] = true
	}
	// Fewer interactions than k: return all.
	all := g.UniformNeighbors(rng, 3, 100, 10, nil)
	if len(all) != 1 || all[0].Peer != 2 {
		t.Fatalf("want the single neighbor, got %+v", all)
	}
}

func TestKHopMostRecent(t *testing.T) {
	g := buildChain(t)
	hops := g.KHopMostRecent([]NodeID{0}, 10, 2, 2)
	if len(hops) != 2 {
		t.Fatalf("want 2 hops, got %d", len(hops))
	}
	// Hop 1 of node 0: two most recent interactions, both with node 1.
	if len(hops[0]) != 2 || hops[0][0].Peer != 1 || hops[0][1].Peer != 1 {
		t.Fatalf("hop1: %+v", hops[0])
	}
	// Hop 2: neighbors of node 1 (twice), 2 most recent each.
	if len(hops[1]) != 4 {
		t.Fatalf("hop2 size: %+v", hops[1])
	}
}

func TestEventsBetween(t *testing.T) {
	g := buildChain(t)
	evs := g.EventsBetween(2, 5)
	if len(evs) != 3 || evs[0].Time != 2 || evs[2].Time != 4 {
		t.Fatalf("EventsBetween: %+v", evs)
	}
}

func TestStaticSnapshotDedup(t *testing.T) {
	g := buildChain(t)
	csr := g.StaticSnapshot(10)
	// Node 1 interacted with 0 (twice), 2, 4 → 3 distinct neighbors.
	if csr.Degree(1) != 3 {
		t.Fatalf("degree(1)=%d", csr.Degree(1))
	}
	nb := csr.Neighbors(1)
	if nb[0] != 0 || nb[1] != 2 || nb[2] != 4 {
		t.Fatalf("neighbors sorted: %+v", nb)
	}
	// The (0,1) pair keeps the latest event (@3, id 2).
	evs := csr.NeighborEvents(1)
	if evs[0] != 2 {
		t.Fatalf("latest event for (1,0) = %d", evs[0])
	}
	// Temporal cutoff: snapshot at t=2 has only the first event.
	early := g.StaticSnapshot(2)
	if early.Degree(1) != 1 || early.Degree(4) != 0 {
		t.Fatalf("early snapshot degrees: %d %d", early.Degree(1), early.Degree(4))
	}
}

func TestOutOfOrderInsertionKeepsListsSorted(t *testing.T) {
	g := New(3)
	g.AddEvent(Event{Src: 0, Dst: 1, Time: 5})
	g.AddEvent(Event{Src: 0, Dst: 2, Time: 2}) // arrives late
	g.AddEvent(Event{Src: 0, Dst: 1, Time: 4}) // arrives late
	got := g.MostRecentNeighbors(0, 10, 3, nil)
	times := []float64{got[0].Time, got[1].Time, got[2].Time}
	if times[0] != 5 || times[1] != 4 || times[2] != 2 {
		t.Fatalf("incidence order after out-of-order insert: %v", times)
	}
	if d := g.Degree(0, 4.5); d != 2 {
		t.Fatalf("degree after out-of-order insert: %d", d)
	}
}

func TestSelfLoopSingleIncidence(t *testing.T) {
	g := New(2)
	g.AddEvent(Event{Src: 1, Dst: 1, Time: 1})
	if d := g.Degree(1, 2); d != 1 {
		t.Fatalf("self-loop degree=%d", d)
	}
}

// Property: StaticSnapshot deduplicates to exactly the distinct pairs seen
// before the cutoff, with symmetric adjacency.
func TestStaticSnapshotProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(10)
		g := New(n)
		type pair struct{ a, b NodeID }
		want := map[pair]bool{}
		cutoff := 50.0
		for i := 0; i < 120; i++ {
			u, v := NodeID(rng.Intn(n)), NodeID(rng.Intn(n))
			tm := rng.Float64() * 100
			g.AddEvent(Event{Src: u, Dst: v, Time: tm})
			if tm < cutoff {
				a, b := u, v
				if a > b {
					a, b = b, a
				}
				want[pair{a, b}] = true
			}
		}
		csr := g.StaticSnapshot(cutoff)
		got := map[pair]bool{}
		for v := 0; v < n; v++ {
			for _, u := range csr.Neighbors(NodeID(v)) {
				a, b := NodeID(v), u
				if a > b {
					a, b = b, a
				}
				got[pair{a, b}] = true
				// Symmetry (except self loops, stored once per side).
				if u != NodeID(v) {
					found := false
					for _, w := range csr.Neighbors(u) {
						if w == NodeID(v) {
							found = true
							break
						}
					}
					if !found {
						return false
					}
				}
			}
		}
		if len(got) != len(want) {
			return false
		}
		for p := range want {
			if !got[p] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: most-recent sampling returns events in strictly descending time
// order, all strictly before the query time, never more than k.
func TestMostRecentNeighborsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(20)
		g := New(n)
		tm := 0.0
		for i := 0; i < 200; i++ {
			tm += rng.Float64()
			g.AddEvent(Event{Src: NodeID(rng.Intn(n)), Dst: NodeID(rng.Intn(n)), Time: tm})
		}
		node := NodeID(rng.Intn(n))
		q := rng.Float64() * tm
		k := 1 + rng.Intn(8)
		got := g.MostRecentNeighbors(node, q, k, nil)
		if len(got) > k {
			return false
		}
		for i, inc := range got {
			if inc.Time >= q {
				return false
			}
			if i > 0 && got[i-1].Time < inc.Time {
				return false
			}
		}
		// Count check against brute force.
		want := 0
		for _, e := range g.EventsBetween(0, q) {
			if e.Src == node || e.Dst == node {
				want++
			}
		}
		if want > k {
			want = k
		}
		return len(got) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
