// Package tgraph implements the continuous-time dynamic graph (CTDG)
// storage engine: an append-only temporal event log with per-node
// time-ordered incidence lists, temporal neighbor sampling (most-recent and
// uniform), k-hop subgraph queries, and a static snapshot view for the
// static baselines.
package tgraph

import (
	"fmt"
	"math/rand"
	"sort"
)

// NodeID identifies a node in the graph.
type NodeID = int32

// Event is one temporal interaction (v_i, v_j, e_ij, t), optionally labeled.
type Event struct {
	ID    int64 // position in the global log
	Src   NodeID
	Dst   NodeID
	Time  float64
	Feat  []float32
	Label int8 // -1 unlabeled, else 0/1
}

// Incidence is one entry in a node's temporal adjacency list.
type Incidence struct {
	Peer  NodeID
	Event int64
	Time  float64
}

// Graph is the CTDG store. Per-node incidence lists are kept sorted by
// timestamp even under out-of-order insertion; the global log records
// arrival order (EventsBetween assumes globally non-decreasing times).
// Graph is not safe for concurrent mutation; the async pipeline serializes
// writers.
type Graph struct {
	numNodes int
	events   []Event
	adj      [][]Incidence
}

// New creates an empty graph over numNodes nodes.
func New(numNodes int) *Graph {
	return &Graph{numNodes: numNodes, adj: make([][]Incidence, numNodes)}
}

// NumNodes returns the node-set size.
func (g *Graph) NumNodes() int { return g.numNodes }

// Grow extends the node-ID space to n, so events touching newly admitted
// nodes pass AddEvent's range check. Existing adjacency is preserved; no-op
// when n ≤ NumNodes. Like all Graph mutation, Grow requires external
// serialization against concurrent use.
func (g *Graph) Grow(n int) {
	if n <= g.numNodes {
		return
	}
	// append reuses spare capacity, so repeated small growths amortize to
	// O(n) total copying rather than O(n²).
	g.adj = append(g.adj, make([][]Incidence, n-g.numNodes)...)
	g.numNodes = n
}

// NumEvents returns the number of inserted events.
func (g *Graph) NumEvents() int { return len(g.events) }

// EventLog returns the global event log. The log is append-only and events
// are immutable once inserted, so a prefix captured while writers are
// quiesced stays a valid consistent snapshot even as later events are
// appended (an append that reallocates leaves the old backing array
// untouched) — the checkpoint cut relies on this to capture the graph in
// O(1) instead of copying the history. Callers must treat the slice as
// read-only.
func (g *Graph) EventLog() []Event { return g.events }

// Event returns the stored event with the given log id.
func (g *Graph) Event(id int64) *Event { return &g.events[id] }

// AddEvent appends e to the log and to both endpoints' incidence lists,
// returning the assigned log id. Interactions are stored undirected, as the
// mail propagation and temporal aggregation of all CTDG models treat them.
//
// Incidence lists stay time-sorted even when events arrive slightly out of
// order (unavoidable in distributed streams, §3.6): a backward insertion
// pass restores order, costing O(1) amortized for local disorder. The
// global log keeps arrival order.
func (g *Graph) AddEvent(e Event) int64 {
	if e.Src < 0 || int(e.Src) >= g.numNodes || e.Dst < 0 || int(e.Dst) >= g.numNodes {
		panic(fmt.Sprintf("tgraph: event endpoints %d-%d out of range [0,%d)", e.Src, e.Dst, g.numNodes))
	}
	id := int64(len(g.events))
	e.ID = id
	g.events = append(g.events, e)
	g.insertIncidence(e.Src, Incidence{Peer: e.Dst, Event: id, Time: e.Time})
	if e.Dst != e.Src {
		g.insertIncidence(e.Dst, Incidence{Peer: e.Src, Event: id, Time: e.Time})
	}
	return id
}

// insertIncidence appends inc to n's list, shifting it backwards while an
// earlier entry has a later timestamp.
func (g *Graph) insertIncidence(n NodeID, inc Incidence) {
	lst := append(g.adj[n], inc)
	for i := len(lst) - 1; i > 0 && lst[i-1].Time > lst[i].Time; i-- {
		lst[i-1], lst[i] = lst[i], lst[i-1]
	}
	g.adj[n] = lst
}

// Degree returns the number of interactions of n strictly before t.
func (g *Graph) Degree(n NodeID, t float64) int {
	return g.searchBefore(n, t)
}

// searchBefore returns the count of incidences of n with Time < t.
func (g *Graph) searchBefore(n NodeID, t float64) int {
	lst := g.adj[n]
	return sort.Search(len(lst), func(i int) bool { return lst[i].Time >= t })
}

// MostRecentNeighbors appends to out the up-to-k most recent interactions of
// n strictly before time t, newest first. This is the paper's sampling
// strategy (§3.5, "most-recent neighbor sampling").
func (g *Graph) MostRecentNeighbors(n NodeID, t float64, k int, out []Incidence) []Incidence {
	hi := g.searchBefore(n, t)
	lo := hi - k
	if lo < 0 {
		lo = 0
	}
	for i := hi - 1; i >= lo; i-- {
		out = append(out, g.adj[n][i])
	}
	return out
}

// UniformNeighbors appends up to k interactions of n before t sampled
// uniformly without replacement (Hamilton-style sampling, for baselines).
func (g *Graph) UniformNeighbors(rng *rand.Rand, n NodeID, t float64, k int, out []Incidence) []Incidence {
	hi := g.searchBefore(n, t)
	if hi <= k {
		for i := 0; i < hi; i++ {
			out = append(out, g.adj[n][i])
		}
		return out
	}
	// Floyd's algorithm for a k-subset of [0, hi).
	picked := make(map[int]struct{}, k)
	for i := hi - k; i < hi; i++ {
		j := rng.Intn(i + 1)
		if _, dup := picked[j]; dup {
			j = i
		}
		picked[j] = struct{}{}
		out = append(out, g.adj[n][j])
	}
	return out
}

// KHopMostRecent returns the temporal neighborhood of the seed nodes: for
// each hop h (1-based), the set of (node, incidence) pairs reached by
// most-recent sampling with the given fan-out. Nodes can repeat across hops;
// dedup is the caller's concern (the mail propagator wants multiplicity for
// its mean reduction).
func (g *Graph) KHopMostRecent(seeds []NodeID, t float64, fanout, hops int) [][]Incidence {
	frontier := seeds
	out := make([][]Incidence, hops)
	var scratch []Incidence
	for h := 0; h < hops; h++ {
		scratch = scratch[:0]
		for _, n := range frontier {
			scratch = g.MostRecentNeighbors(n, t, fanout, scratch)
		}
		out[h] = append([]Incidence(nil), scratch...)
		next := make([]NodeID, len(out[h]))
		for i, inc := range out[h] {
			next[i] = inc.Peer
		}
		frontier = next
	}
	return out
}

// KHopMostRecentInto is KHopMostRecent building each hop directly into the
// scratch's level buffers — identical incidences in identical order, no
// per-call allocation once the scratch is warm. See KHopScratch for the
// result lifetime.
func (g *Graph) KHopMostRecentInto(sc *KHopScratch, seeds []NodeID, t float64, fanout, hops int) [][]Incidence {
	out := sc.grow(hops)
	frontier := seeds
	for h := 0; h < hops; h++ {
		lvl := out[h][:0]
		for _, n := range frontier {
			lvl = g.MostRecentNeighbors(n, t, fanout, lvl)
		}
		out[h] = lvl
		sc.frontier = sc.frontier[:0]
		for _, inc := range lvl {
			sc.frontier = append(sc.frontier, inc.Peer)
		}
		frontier = sc.frontier
	}
	return out
}

// EventsBetween returns the slice of events with Time in [lo, hi). Events
// must have been inserted in non-decreasing time order for this to be exact.
func (g *Graph) EventsBetween(lo, hi float64) []Event {
	a := sort.Search(len(g.events), func(i int) bool { return g.events[i].Time >= lo })
	b := sort.Search(len(g.events), func(i int) bool { return g.events[i].Time >= hi })
	return g.events[a:b]
}

// CSR is a compact static adjacency snapshot used by the static baselines
// (GAT, SAGE, GCN, random walks). Edges are deduplicated and undirected.
type CSR struct {
	NumNodes int
	RowPtr   []int32
	ColIdx   []NodeID
	// LastEvent[i] is the log id of the most recent event on the CSR edge i,
	// so static models can still read an edge feature.
	LastEvent []int64
}

// Degree returns the static degree of n.
func (c *CSR) Degree(n NodeID) int { return int(c.RowPtr[n+1] - c.RowPtr[n]) }

// Neighbors returns the static neighbor list of n.
func (c *CSR) Neighbors(n NodeID) []NodeID { return c.ColIdx[c.RowPtr[n]:c.RowPtr[n+1]] }

// NeighborEvents returns the representative event ids aligned with Neighbors.
func (c *CSR) NeighborEvents(n NodeID) []int64 { return c.LastEvent[c.RowPtr[n]:c.RowPtr[n+1]] }

// StaticSnapshot builds the deduplicated undirected graph of all events with
// Time < t, keeping for each (u,v) pair the latest event id.
func (g *Graph) StaticSnapshot(t float64) *CSR {
	type edge struct {
		peer NodeID
		ev   int64
	}
	per := make([]map[NodeID]int64, g.numNodes)
	for n := 0; n < g.numNodes; n++ {
		hi := g.searchBefore(NodeID(n), t)
		if hi == 0 {
			continue
		}
		m := make(map[NodeID]int64, hi)
		for _, inc := range g.adj[n][:hi] {
			m[inc.Peer] = inc.Event // later entries overwrite: latest event wins
		}
		per[n] = m
	}
	csr := &CSR{NumNodes: g.numNodes, RowPtr: make([]int32, g.numNodes+1)}
	var total int32
	for n := 0; n < g.numNodes; n++ {
		csr.RowPtr[n] = total
		total += int32(len(per[n]))
	}
	csr.RowPtr[g.numNodes] = total
	csr.ColIdx = make([]NodeID, total)
	csr.LastEvent = make([]int64, total)
	for n := 0; n < g.numNodes; n++ {
		if per[n] == nil {
			continue
		}
		edges := make([]edge, 0, len(per[n]))
		for p, ev := range per[n] {
			edges = append(edges, edge{p, ev})
		}
		sort.Slice(edges, func(i, j int) bool { return edges[i].peer < edges[j].peer })
		base := csr.RowPtr[n]
		for i, e := range edges {
			csr.ColIdx[base+int32(i)] = e.peer
			csr.LastEvent[base+int32(i)] = e.ev
		}
	}
	return csr
}
