// The scratch-reuse k-hop path (KHopMostRecentInto) must answer every query
// bit-identically to the allocating KHopMostRecent on every backend, charge
// the same accounting through the gdb wrappers, and allocate nothing once
// the scratch is warm — that is what lets the mail propagator run one
// traversal per event without garbage.
package tgraph_test

import (
	"math/rand"
	"testing"
	"time"

	"apan/internal/gdb"
	"apan/internal/tgraph"
)

// TestKHopIntoMatchesAllocating drives randomized streams through every
// backend and compares the scratch path against the allocating path on each,
// reusing one scratch across all queries so stale level contents from prior
// queries would surface as mismatches.
func TestKHopIntoMatchesAllocating(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		rng := rand.New(rand.NewSource(seed))
		const base, max = 16, 48
		stream := randomStream(rng, 300, base, max)
		stores := backends(base)
		for name, s := range stores {
			apply(s, stream)
			maxT := 0.0
			for _, ev := range stream {
				if ev.Src != -1 && ev.Time > maxT {
					maxT = ev.Time
				}
			}
			var sc tgraph.KHopScratch
			qrng := rand.New(rand.NewSource(seed + 1))
			for q := 0; q < 60; q++ {
				seeds := []tgraph.NodeID{
					tgraph.NodeID(qrng.Intn(s.NumNodes())),
					tgraph.NodeID(qrng.Intn(s.NumNodes())),
				}
				qt := qrng.Float64() * (maxT + 1)
				fanout := 1 + qrng.Intn(6)
				hops := 1 + qrng.Intn(3)
				want := s.KHopMostRecent(seeds, qt, fanout, hops)
				got := tgraph.KHopMostRecentInto(s, &sc, seeds, qt, fanout, hops)
				if len(got) != len(want) {
					t.Fatalf("%s seed %d: %d hops vs %d", name, seed, len(got), len(want))
				}
				for h := range want {
					sameIncidences(t, name+": KHopMostRecentInto", got[h], want[h])
				}
			}
		}
	}
}

// TestKHopIntoDispatch proves the Into path actually engages on every
// backend (none silently falls back to the allocating method).
func TestKHopIntoDispatch(t *testing.T) {
	for name, s := range backends(16) {
		if _, ok := s.(tgraph.KHopInto); !ok {
			t.Errorf("%s does not implement tgraph.KHopInto", name)
		}
	}
}

// TestKHopIntoZeroAlloc: once the scratch has seen the traversal shape, the
// flat and sharded Into paths allocate nothing per call.
func TestKHopIntoZeroAlloc(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	stream := randomStream(rng, 500, 16, 48)
	for name, s := range map[string]tgraph.Store{
		"flat":    tgraph.New(16),
		"sharded": tgraph.NewSharded(16, 4),
	} {
		apply(s, stream)
		var sc tgraph.KHopScratch
		seeds := []tgraph.NodeID{3, 11}
		tgraph.KHopMostRecentInto(s, &sc, seeds, 200, 8, 3) // warm the scratch
		allocs := testing.AllocsPerRun(100, func() {
			tgraph.KHopMostRecentInto(s, &sc, seeds, 200, 8, 3)
		})
		if allocs != 0 {
			t.Errorf("%s: KHopMostRecentInto allocates %v per call after warm-up", name, allocs)
		}
	}
}

// TestKHopIntoAccountingParity: the gdb.DB and gdb.Remote wrappers must
// charge the Into path exactly like the allocating path — same query, item,
// RPC and simulated-latency counters for the same traversal.
func TestKHopIntoAccountingParity(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	stream := randomStream(rng, 300, 16, 48)
	remote := gdb.NewRemote(tgraph.NewSharded(16, 4),
		gdb.RemoteOptions{Latency: gdb.PerItem(time.Millisecond, time.Microsecond)})
	apply(remote, stream)
	db := gdb.New(remote)
	db.Latency = gdb.PerItem(2*time.Millisecond, time.Microsecond)

	seeds := []tgraph.NodeID{2, 9}
	db.KHopMostRecent(seeds, 150, 6, 2)
	wantDB, wantRPC := db.Stats(), remote.Stats()

	db.ResetStats()
	var sc tgraph.KHopScratch
	db.KHopMostRecentInto(&sc, seeds, 150, 6, 2)
	gotDB := db.Stats()
	gotRPC := remote.Stats()
	gotRPC.RPCs -= wantRPC.RPCs
	gotRPC.Items -= wantRPC.Items
	gotRPC.Simulated -= wantRPC.Simulated

	if gotDB != wantDB {
		t.Errorf("DB accounting: Into path %+v, allocating path %+v", gotDB, wantDB)
	}
	if gotRPC != wantRPC {
		t.Errorf("Remote accounting: Into path %+v, allocating path %+v", gotRPC, wantRPC)
	}
}
