package tgraph_test

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"apan/internal/tgraph"
)

// TestShardedConcurrentStress is the torn-read guard: concurrent AddEvent
// writers, k-hop readers and a mid-stream Grow across partitions. Run with
// -race (CI does); correctness here is "no panic, no race, and the final
// event count and adjacency are complete".
func TestShardedConcurrentStress(t *testing.T) {
	const (
		writers   = 4
		readers   = 3
		perWriter = 1500
		baseNodes = 64
		maxNodes  = 256
	)
	s := tgraph.NewSharded(baseNodes, 8)
	var writeWG, readWG sync.WaitGroup
	var stop atomic.Bool

	for w := 0; w < writers; w++ {
		writeWG.Add(1)
		go func(w int) {
			defer writeWG.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < perWriter; i++ {
				// Writers stay inside the base node space so they never race
				// the Grow below into a range check.
				ev := tgraph.Event{
					Src:  tgraph.NodeID(rng.Intn(baseNodes)),
					Dst:  tgraph.NodeID(rng.Intn(baseNodes)),
					Time: float64(i) + rng.Float64(),
					Feat: []float32{float32(w)},
				}
				s.AddEvent(ev)
			}
		}(w)
	}

	for r := 0; r < readers; r++ {
		readWG.Add(1)
		go func(r int) {
			defer readWG.Done()
			rng := rand.New(rand.NewSource(int64(100 + r)))
			for !stop.Load() {
				n := tgraph.NodeID(rng.Intn(baseNodes))
				qt := rng.Float64() * perWriter
				s.Degree(n, qt)
				s.MostRecentNeighbors(n, qt, 5, nil)
				hops := s.KHopMostRecent([]tgraph.NodeID{n}, qt, 4, 2)
				for _, level := range hops {
					for _, inc := range level {
						if inc.Peer < 0 || int(inc.Peer) >= s.NumNodes() {
							t.Errorf("torn incidence: %+v", inc)
							return
						}
					}
				}
				if ev := s.EventsBetween(qt, qt+10); len(ev) > 0 {
					_ = ev[len(ev)-1].Time // entries must be readable, not torn
				}
				_ = s.NumEvents()
			}
		}(r)
	}

	// Mid-stream Grow, repeatedly, racing both writers and readers.
	writeWG.Add(1)
	go func() {
		defer writeWG.Done()
		for n := baseNodes + 16; n <= maxNodes; n += 16 {
			s.Grow(n)
		}
	}()

	writeWG.Wait() // readers keep hammering until every writer is done
	stop.Store(true)
	readWG.Wait()

	total := writers * perWriter
	if got := s.NumEvents(); got != total {
		t.Fatalf("lost events: %d of %d", got, total)
	}
	if got := s.NumNodes(); got != maxNodes {
		t.Fatalf("Grow lost: NumNodes=%d want %d", got, maxNodes)
	}
	// Adjacency is complete: summing per-node degrees at t=∞ double-counts
	// every non-self-loop event and single-counts self-loops.
	var inc int
	selfLoops := 0
	for _, ev := range s.EventLog() {
		if ev.Src == ev.Dst {
			selfLoops++
		}
	}
	for n := 0; n < s.NumNodes(); n++ {
		inc += s.Degree(tgraph.NodeID(n), 1e18)
	}
	if want := 2*total - selfLoops; inc != want {
		t.Fatalf("adjacency incomplete: %d incidences, want %d", inc, want)
	}
}

// TestShardedCopyOut is the aliasing regression: results returned by
// KHopMostRecent and EventsBetween must stay bit-identical after subsequent
// appends — k-hop levels because they are copied out of partition storage,
// EventsBetween because log entries are immutable even when the backing
// array is still live. The same contract is checked for the flat store,
// which documents it (tgraph.EventLog).
func TestShardedCopyOut(t *testing.T) {
	for _, tc := range []struct {
		name  string
		store tgraph.Store
	}{
		{"sharded", tgraph.NewSharded(16, 4)},
		{"flat", tgraph.New(16)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			s := tc.store
			rng := rand.New(rand.NewSource(3))
			for i := 0; i < 200; i++ {
				s.AddEvent(tgraph.Event{
					Src:  tgraph.NodeID(rng.Intn(16)),
					Dst:  tgraph.NodeID(rng.Intn(16)),
					Time: float64(i),
				})
			}
			hops := s.KHopMostRecent([]tgraph.NodeID{1, 2}, 150, 5, 2)
			between := s.EventsBetween(50, 120)
			mrn := s.MostRecentNeighbors(3, 150, 5, nil)

			var hopsCopy [][]tgraph.Incidence
			for _, level := range hops {
				hopsCopy = append(hopsCopy, append([]tgraph.Incidence(nil), level...))
			}
			betweenCopy := append([]tgraph.Event(nil), between...)
			mrnCopy := append([]tgraph.Incidence(nil), mrn...)

			// Append events whose times interleave the captured ranges, so
			// a store that aliased internal storage would shift or
			// overwrite the captured entries.
			for i := 0; i < 500; i++ {
				s.AddEvent(tgraph.Event{
					Src:  tgraph.NodeID(rng.Intn(16)),
					Dst:  tgraph.NodeID(rng.Intn(16)),
					Time: rng.Float64() * 200,
				})
			}

			for h := range hops {
				sameIncidences(t, "KHop level after append", hops[h], hopsCopy[h])
			}
			sameEvents(t, "EventsBetween after append", between, betweenCopy)
			sameIncidences(t, "MostRecentNeighbors after append", mrn, mrnCopy)
		})
	}
}

// TestShardedPartitionMapping pins the locate scheme: power-of-two rounding
// and the n&mask / n>>bits split must cover every node exactly once (a
// wrong partCap would panic on the last node of a partition).
func TestShardedPartitionMapping(t *testing.T) {
	for _, parts := range []int{0, 1, 2, 3, 4, 7, 8, 16} {
		for _, nodes := range []int{1, 2, 15, 16, 17, 100} {
			s := tgraph.NewSharded(nodes, parts)
			for n := 0; n < nodes; n++ {
				s.AddEvent(tgraph.Event{Src: tgraph.NodeID(n), Dst: tgraph.NodeID(n), Time: 1})
			}
			if s.NumEvents() != nodes {
				t.Fatalf("parts=%d nodes=%d: %d events", parts, nodes, s.NumEvents())
			}
			for n := 0; n < nodes; n++ {
				if d := s.Degree(tgraph.NodeID(n), 2); d != 1 {
					t.Fatalf("parts=%d nodes=%d node=%d: degree %d", parts, nodes, n, d)
				}
			}
		}
	}
}

// TestShardedRangeCheck pins the AddEvent contract shared with the flat
// store: out-of-range endpoints panic rather than corrupt.
func TestShardedRangeCheck(t *testing.T) {
	s := tgraph.NewSharded(4, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range AddEvent must panic")
		}
	}()
	s.AddEvent(tgraph.Event{Src: 0, Dst: 4, Time: 1})
}
