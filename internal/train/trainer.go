package train

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"time"

	"apan/internal/core"
	"apan/internal/dataset"
	"apan/internal/eval"
	"apan/internal/nn"
	"apan/internal/tensor"
	"apan/internal/tgraph"
)

// Config tunes an OnlineTrainer. Zero values take the defaults noted below.
type Config struct {
	// BufferCap is the reservoir capacity of the replay buffer (default
	// 4096) and RecentCap the recency ring (default 512). RecencyBias is the
	// probability a mini-batch draw comes from the recency ring (default
	// 0.5) — the knob between drift tracking and retention.
	BufferCap   int
	RecentCap   int
	RecencyBias float64

	// MiniBatch is the events per training step (default 64). StepEvery is
	// how many applied events accumulate between steps (default 64): 1 step
	// per StepEvery observed events, so training cost scales with traffic.
	MiniBatch int
	StepEvery int

	// PublishEvery is the number of steps between publish attempts (default
	// 4). Each attempt is gated by the holdout check.
	PublishEvery int

	// LR is the Adam learning rate of the private copy (default: the
	// model's configured rate). ClipNorm bounds the global gradient norm
	// per step (default 5).
	LR       float32
	ClipNorm float64

	// HoldoutEvery routes every Nth observed event into the holdout set
	// instead of the replay buffer (default 16); HoldoutCap bounds the set
	// (ring of the most recent, default 256). MinHoldout is the smallest
	// holdout size at which the publish gate is enforced (default 16;
	// below it candidates publish unconditionally).
	HoldoutEvery int
	HoldoutCap   int
	MinHoldout   int

	// Tolerance is the holdout-AP slack a candidate may regress by and
	// still publish (default 0.02). After RollbackPatience consecutive
	// withheld publishes (default 2) the private copy is rolled back to the
	// last published version and the optimizer state is reset.
	Tolerance        float64
	RollbackPatience int

	// MaxPending bounds the Observe queue (default 8192 events); overflow
	// drops the oldest pending events, counted in Stats.DroppedPending, so
	// a slow trainer sheds training signal rather than stalling propagation.
	MaxPending int

	// Seed drives every stochastic choice the trainer makes (reservoir
	// replacement, mini-batch sampling, negative draws, dropout). Equal
	// seeds and equal Observe/Pump sequences train identically.
	Seed int64
}

func (c *Config) normalize(modelLR float32) {
	if c.BufferCap == 0 {
		c.BufferCap = 4096
	}
	if c.RecentCap == 0 {
		c.RecentCap = 512
	}
	if c.RecencyBias == 0 {
		c.RecencyBias = 0.5
	}
	if c.MiniBatch == 0 {
		c.MiniBatch = 64
	}
	if c.StepEvery == 0 {
		c.StepEvery = 64
	}
	if c.PublishEvery == 0 {
		c.PublishEvery = 4
	}
	if c.LR == 0 {
		c.LR = modelLR
	}
	if c.ClipNorm == 0 {
		c.ClipNorm = 5
	}
	if c.HoldoutEvery == 0 {
		c.HoldoutEvery = 16
	}
	if c.HoldoutCap == 0 {
		c.HoldoutCap = 256
	}
	if c.MinHoldout == 0 {
		c.MinHoldout = 16
	}
	if c.Tolerance == 0 {
		c.Tolerance = 0.02
	}
	if c.RollbackPatience == 0 {
		c.RollbackPatience = 2
	}
	if c.MaxPending == 0 {
		c.MaxPending = 8192
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
}

// Stats is a point-in-time view of trainer health, exposed through
// /v1/stats.
type Stats struct {
	ParamVersion      uint64  `json:"param_version"`
	Frozen            bool    `json:"frozen"`
	Observed          int64   `json:"observed_events"`
	DroppedPending    int64   `json:"dropped_pending_events"`
	Trained           int64   `json:"trained_events"`
	Steps             int64   `json:"steps"`
	Publishes         int64   `json:"publishes"`
	WithheldPublishes int64   `json:"withheld_publishes"`
	Rollbacks         int64   `json:"rollbacks"`
	LastHoldoutAP     float64 `json:"last_holdout_ap"`
	BufferEvents      int     `json:"buffer_events"`
	HoldoutEvents     int     `json:"holdout_events"`
	// TrainEvPerSec is trained events divided by time spent inside training
	// steps — the online-training throughput of BENCH_apan.json.
	TrainEvPerSec float64 `json:"train_ev_per_s"`
	// SwapLastNs/SwapMeanNs measure SwapParams latency (snapshot copy +
	// module binding + atomic publish).
	SwapLastNs int64 `json:"swap_last_ns"`
	SwapMeanNs int64 `json:"swap_mean_ns"`
}

// Publish records one published version for audit: the scenario harness's
// no-torn-params invariant checks every served score's pinned version
// against this log and re-verifies fingerprints.
type Publish struct {
	Version     uint64 `json:"version"`
	Fingerprint uint64 `json:"fingerprint"`
}

// holdoutSample is one held-out positive with its frozen negative pairing,
// so holdout AP is comparable across checks.
type holdoutSample struct {
	ev  tgraph.Event
	neg tgraph.NodeID
}

// OnlineTrainer adapts a serving model to its own stream. See the package
// comment for the contract; construct with New, feed with Observe (wired by
// async.WithOnlineTrainer), drive with Start/Stop in serving or Pump in
// deterministic harnesses.
type OnlineTrainer struct {
	m   *core.Model
	cfg Config

	// qmu guards the Observe-side state only, so the propagation worker
	// never waits on a training step.
	qmu                      sync.Mutex
	pending                  []tgraph.Event
	frozen                   bool
	observed, droppedPending int64

	// runMu serializes the training side (Pump vs background loop).
	runMu sync.Mutex
	rng   *rand.Rand
	buf   *ReplayBuffer
	ns    *dataset.NegSampler

	enc    *core.Encoder
	dec    *core.LinkDecoder
	params []*nn.Tensor
	opt    *nn.Adam
	pool   tensor.Pool
	tape   *nn.Tape

	// evalTape is the reusable no-grad tape holdout evaluations run on:
	// they are forward-only and frequent (two per publish attempt), so they
	// recycle pooled storage instead of allocating closures and matrices.
	evalPool tensor.Pool
	evalTape *nn.Tape

	refEnc    *core.Encoder
	refDec    *core.LinkDecoder
	refParams []*nn.Tensor

	// Mini-batch assembly state, reused across steps so the steady-state
	// train loop allocates nothing (TestOnlineTrainStepZeroAllocSteadyState
	// holds it to 0 allocs/op). All guarded by runMu.
	sampleBuf []tgraph.Event
	negsBuf   []tgraph.NodeID
	pl        plan
	in        core.EncodeInput
	gts       []float64 // gather timestamp scratch
	ones      []float32
	zeros     []float32

	holdout     []holdoutSample
	holdoutIdx  int
	sinceStep   int
	sincePub    int
	regressions int

	trained, steps, publishes, withheld, rollbacks int64
	trainNanos, swapNanos, swapLast                int64
	lastAP                                         float64
	pubLog                                         []Publish

	// background mode
	startOnce sync.Once
	stopOnce  sync.Once
	started   bool
	wake      chan struct{}
	stop      chan struct{}
	done      chan struct{}
}

// newModules builds a private encoder/decoder pair for the model's
// architecture (fresh weights, immediately overwritten by a CopyTo),
// through the same factory the model's published versions use — the
// architectures cannot drift apart.
func newModules(cfg core.Config, rng *rand.Rand) (*core.Encoder, *core.LinkDecoder, []*nn.Tensor) {
	enc, dec := core.NewForwardModules(cfg, rng)
	return enc, dec, append(enc.Params(), dec.Params()...)
}

// New builds a trainer over m, seeding its private parameter copy (and the
// reference copy the holdout gate compares against) from the model's
// currently published version.
func New(m *core.Model, cfg Config) (*OnlineTrainer, error) {
	cfg.normalize(m.Cfg.LR)
	t := &OnlineTrainer{
		m:    m,
		cfg:  cfg,
		rng:  rand.New(rand.NewSource(cfg.Seed)),
		buf:  NewReplayBuffer(cfg.BufferCap, cfg.RecentCap, cfg.Seed+1),
		ns:   dataset.NewNegSampler(m.NumNodes()),
		wake: make(chan struct{}, 1),
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	t.enc, t.dec, t.params = newModules(m.Cfg, t.rng)
	t.refEnc, t.refDec, t.refParams = newModules(m.Cfg, t.rng)
	cur := m.CurrentParams()
	if err := cur.CopyTo(t.params); err != nil {
		return nil, fmt.Errorf("train: seed private params: %w", err)
	}
	if err := cur.CopyTo(t.refParams); err != nil {
		return nil, fmt.Errorf("train: seed reference params: %w", err)
	}
	t.opt = nn.NewAdam(t.params, cfg.LR)
	t.tape = nn.NewReusableTrainingTape(&t.pool, rand.New(rand.NewSource(cfg.Seed+2)))
	t.evalTape = nn.NewInferenceTape(&t.evalPool)
	// The version serving starts on belongs in the audit log too.
	t.pubLog = append(t.pubLog, Publish{Version: cur.Version(), Fingerprint: cur.Fingerprint()})
	return t, nil
}

// Observe hands the trainer a batch of applied events. It is called on the
// propagation worker immediately after ApplyInference and must stay cheap:
// events are copied into a bounded pending queue (oldest shed under
// overload) and the background loop, if running, is woken. A frozen trainer
// ignores events entirely, so frozen runs are bitwise deterministic.
func (t *OnlineTrainer) Observe(events []tgraph.Event) {
	t.qmu.Lock()
	if t.frozen {
		t.qmu.Unlock()
		return
	}
	t.observed += int64(len(events))
	t.pending = append(t.pending, events...)
	if over := len(t.pending) - t.cfg.MaxPending; over > 0 {
		t.droppedPending += int64(over)
		t.pending = append(t.pending[:0], t.pending[over:]...)
	}
	t.qmu.Unlock()
	select {
	case t.wake <- struct{}{}:
	default:
	}
}

// Freeze stops the trainer from consuming events or stepping; already
// pending events are discarded so a frozen trainer has no residual effect.
func (t *OnlineTrainer) Freeze() {
	t.qmu.Lock()
	t.frozen = true
	t.pending = t.pending[:0]
	t.qmu.Unlock()
}

// Resume re-enables training after Freeze.
func (t *OnlineTrainer) Resume() {
	t.qmu.Lock()
	t.frozen = false
	t.qmu.Unlock()
}

// Frozen reports whether the trainer is currently frozen.
func (t *OnlineTrainer) Frozen() bool {
	t.qmu.Lock()
	defer t.qmu.Unlock()
	return t.frozen
}

// Start launches the background training loop (serving mode). Stop ends it.
// Start is idempotent.
func (t *OnlineTrainer) Start() {
	t.startOnce.Do(func() {
		t.started = true
		go func() {
			defer close(t.done)
			for {
				select {
				case <-t.stop:
					return
				case <-t.wake:
					t.Pump()
				}
			}
		}()
	})
}

// Stop terminates the background loop and waits for an in-flight step to
// finish. Safe to call without Start (no-op) and more than once.
func (t *OnlineTrainer) Stop() {
	t.stopOnce.Do(func() { close(t.stop) })
	t.startOnce.Do(func() { close(t.done) }) // never started: nothing to wait for
	<-t.done
}

// pumpChunk bounds how many events one runMu acquisition may ingest, so
// Stats/PublishLog readers (the /v1/stats handler) wait for at most a few
// training steps even when the trainer is deeply backlogged.
const pumpChunk = 256

// Pump drains the pending queue and trains inline: ingest every event,
// step whenever StepEvery events have accumulated, attempt a publish every
// PublishEvery steps. Deterministic for a given seed and event sequence —
// the harness mode. Safe to call concurrently with Observe; concurrent
// Pumps serialize per ingested chunk. runMu is taken per pumpChunk events,
// never for the whole backlog, and a Freeze lands between chunks (and
// between events inside ingest), so freezing halts in-flight training
// promptly instead of after the backlog.
func (t *OnlineTrainer) Pump() {
	for {
		t.qmu.Lock()
		queue := t.pending
		t.pending = nil
		t.qmu.Unlock()
		if len(queue) == 0 {
			return
		}
		for lo := 0; lo < len(queue); lo += pumpChunk {
			hi := min(lo+pumpChunk, len(queue))
			t.runMu.Lock()
			t.ingest(queue[lo:hi])
			t.runMu.Unlock()
		}
	}
}

// ingest runs under runMu.
func (t *OnlineTrainer) ingest(events []tgraph.Event) {
	for i := range events {
		if t.Frozen() {
			// Freeze must stop in-flight work too, not only the Observe
			// queue: the already-drained remainder is discarded so the
			// trainer is inert the moment Freeze returns observers-wise
			// and within one event ingest-wise.
			return
		}
		ev := events[i]
		t.ns.Observe(&ev)
		t.holdoutIdx++
		if t.holdoutIdx%t.cfg.HoldoutEvery == 0 {
			neg := t.sampleNeg(ev.Dst)
			if len(t.holdout) < t.cfg.HoldoutCap {
				t.holdout = append(t.holdout, holdoutSample{ev: ev, neg: neg})
			} else {
				t.holdout[(t.holdoutIdx/t.cfg.HoldoutEvery)%t.cfg.HoldoutCap] = holdoutSample{ev: ev, neg: neg}
			}
			continue
		}
		t.buf.Add(ev)
		t.sinceStep++
		if t.sinceStep >= t.cfg.StepEvery && t.buf.Len() >= t.cfg.MiniBatch {
			t.sinceStep = 0
			if t.step() {
				t.sincePub++
				if t.sincePub >= t.cfg.PublishEvery {
					t.sincePub = 0
					t.tryPublish()
				}
			}
		}
	}
}

// grow returns s resized to n elements, reusing its backing array when it
// fits. Contents are unspecified.
func grow[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	return s[:n]
}

// sampleNeg draws a negative destination from the observed pool, guarded
// against a rolled-back node space.
func (t *OnlineTrainer) sampleNeg(exclude tgraph.NodeID) tgraph.NodeID {
	n := t.m.NumNodes()
	neg := t.ns.Sample(t.rng, exclude)
	if int(neg) >= n {
		neg = tgraph.NodeID(t.rng.Intn(n))
	}
	return neg
}

// plan is the deduplicated node bookkeeping of one trainer batch (each node
// encoded once at its latest query time, mirroring the model's batch plan).
// build reuses every slice and the rowOf map, so a long-lived plan assembles
// batch after batch without allocating.
type plan struct {
	nodes  []tgraph.NodeID
	times  []float64
	srcRow []int32
	dstRow []int32
	negRow []int32
	rowOf  map[tgraph.NodeID]int
}

// row returns (registering if new) the encode row of node n, keeping the
// row's query time at the max over its mentions.
func (p *plan) row(n tgraph.NodeID, tm float64) int32 {
	if r, ok := p.rowOf[n]; ok {
		if tm > p.times[r] {
			p.times[r] = tm
		}
		return int32(r)
	}
	r := len(p.nodes)
	p.rowOf[n] = r
	p.nodes = append(p.nodes, n)
	p.times = append(p.times, tm)
	return int32(r)
}

func (p *plan) build(events []tgraph.Event, negs []tgraph.NodeID) {
	if p.rowOf == nil {
		p.rowOf = make(map[tgraph.NodeID]int, 3*len(events))
	} else {
		clear(p.rowOf)
	}
	p.nodes = p.nodes[:0]
	p.times = p.times[:0]
	p.srcRow = p.srcRow[:0]
	p.dstRow = p.dstRow[:0]
	p.negRow = p.negRow[:0]
	for i := range events {
		p.srcRow = append(p.srcRow, p.row(events[i].Src, events[i].Time))
		p.dstRow = append(p.dstRow, p.row(events[i].Dst, events[i].Time))
	}
	for i := range events {
		p.negRow = append(p.negRow, p.row(negs[i], events[i].Time))
	}
}

func planEvents(events []tgraph.Event, negs []tgraph.NodeID) *plan {
	p := &plan{}
	p.build(events, negs)
	return p
}

// step runs one Adam mini-batch on the private copy: sample the replay
// buffer, draw live negatives, gather inputs from the live runtime state
// (read-only, shard-locked), forward/backward on the reusable training
// tape, clip and step. Reports whether a step actually ran.
func (t *OnlineTrainer) step() bool {
	batch := t.buf.SampleInto(t.sampleBuf[:0], t.rng, t.cfg.MiniBatch, t.cfg.RecencyBias, t.m.NumNodes())
	t.sampleBuf = batch
	if len(batch) < t.cfg.MiniBatch/2 || len(batch) == 0 {
		return false
	}
	start := time.Now()
	negs := grow(t.negsBuf, len(batch))
	t.negsBuf = negs
	for i := range negs {
		negs[i] = t.sampleNeg(batch[i].Dst)
	}
	p := &t.pl
	p.build(batch, negs)
	t.m.GatherInputsInto(&t.in, &t.gts, p.nodes, p.times)
	in := &t.in

	tp := t.tape
	tp.Reset()
	z, _ := t.enc.Forward(tp, in)
	zsrc := tp.Gather(z, p.srcRow)
	zdst := tp.Gather(z, p.dstRow)
	zneg := tp.Gather(z, p.negRow)
	posLogits := t.dec.Forward(tp, zsrc, zdst)
	negLogits := t.dec.Forward(tp, zsrc, zneg)

	n := len(batch)
	ones := grow(t.ones, n)
	t.ones = ones
	zeros := grow(t.zeros, n)
	t.zeros = zeros
	for i := range ones {
		ones[i] = 1
		zeros[i] = 0
	}
	loss := tp.Scale(tp.Add(tp.BCEWithLogits(posLogits, ones), tp.BCEWithLogits(negLogits, zeros)), 0.5)
	tp.Backward(loss)
	nn.ClipGradNorm(t.params, t.cfg.ClipNorm)
	t.opt.Step()
	t.opt.ZeroGrad()

	t.trained += int64(n)
	t.steps++
	t.trainNanos += time.Since(start).Nanoseconds()
	return true
}

// TrainStep forces one mini-batch step immediately (no StepEvery gating),
// for benchmarks and tests. Reports whether the buffer held enough events.
func (t *OnlineTrainer) TrainStep() bool {
	t.runMu.Lock()
	defer t.runMu.Unlock()
	return t.step()
}

// holdoutAP scores the holdout set with the given modules on the current
// runtime state and returns the average precision (positives vs their
// frozen negatives). NaN when the holdout is empty.
func (t *OnlineTrainer) holdoutAP(enc *core.Encoder, dec *core.LinkDecoder) float64 {
	n := t.m.NumNodes()
	events := make([]tgraph.Event, 0, len(t.holdout))
	negs := make([]tgraph.NodeID, 0, len(t.holdout))
	for _, h := range t.holdout {
		if int(h.ev.Src) >= n || int(h.ev.Dst) >= n || int(h.neg) >= n {
			continue
		}
		events = append(events, h.ev)
		negs = append(negs, h.neg)
	}
	if len(events) == 0 {
		return math.NaN()
	}
	p := planEvents(events, negs)
	in := t.m.GatherInputs(p.nodes, p.times)
	tp := t.evalTape
	tp.Reset()
	z, _ := enc.Forward(tp, in)
	pos := dec.Forward(tp, tp.Gather(z, p.srcRow), tp.Gather(z, p.dstRow))
	neg := dec.Forward(tp, tp.Gather(z, p.srcRow), tp.Gather(z, p.negRow))
	scores := make([]float32, 0, 2*len(events))
	labels := make([]bool, 0, 2*len(events))
	for i := range events {
		scores = append(scores, pos.Value().Data[i], neg.Value().Data[i])
		labels = append(labels, true, false)
	}
	return eval.AveragePrecision(scores, labels)
}

// tryPublish gates the candidate on holdout AP against the last published
// version evaluated on the same holdout and runtime state, then publishes
// through SwapParams (copy-on-write) or withholds — rolling the private
// copy back after RollbackPatience consecutive regressions.
func (t *OnlineTrainer) tryPublish() {
	enough := t.validHoldout() >= t.cfg.MinHoldout
	if enough {
		apCand := t.holdoutAP(t.enc, t.dec)
		apRef := t.holdoutAP(t.refEnc, t.refDec)
		if !math.IsNaN(apCand) {
			t.lastAP = apCand // NaN would break the JSON stats encoding
		}
		if !math.IsNaN(apCand) && !math.IsNaN(apRef) && apCand+t.cfg.Tolerance < apRef {
			t.withheld++
			t.regressions++
			if t.regressions >= t.cfg.RollbackPatience {
				for i, p := range t.refParams {
					copy(t.params[i].W.Data, p.W.Data)
				}
				t.opt = nn.NewAdam(t.params, t.cfg.LR)
				t.rollbacks++
				t.regressions = 0
			}
			return
		}
	}
	start := time.Now()
	ps, err := t.m.SwapParams(t.params)
	if err != nil {
		// Architecture mismatch is impossible by construction; treat as a
		// withheld publish rather than crashing the serving process.
		t.withheld++
		return
	}
	t.swapLast = time.Since(start).Nanoseconds()
	t.swapNanos += t.swapLast
	for i, p := range t.params {
		copy(t.refParams[i].W.Data, p.W.Data)
	}
	t.publishes++
	t.regressions = 0
	t.pubLog = append(t.pubLog, Publish{Version: ps.Version(), Fingerprint: ps.Fingerprint()})
}

func (t *OnlineTrainer) validHoldout() int {
	n := t.m.NumNodes()
	c := 0
	for _, h := range t.holdout {
		if int(h.ev.Src) < n && int(h.ev.Dst) < n && int(h.neg) < n {
			c++
		}
	}
	return c
}

// PublishLog returns a copy of the audit log: every version this trainer
// has published (plus the version serving started on), with the
// fingerprint recorded at publish time.
func (t *OnlineTrainer) PublishLog() []Publish {
	t.runMu.Lock()
	defer t.runMu.Unlock()
	return append([]Publish(nil), t.pubLog...)
}

// Stats snapshots trainer health.
func (t *OnlineTrainer) Stats() Stats {
	t.runMu.Lock()
	s := Stats{
		ParamVersion:      t.m.ParamVersion(),
		Trained:           t.trained,
		Steps:             t.steps,
		Publishes:         t.publishes,
		WithheldPublishes: t.withheld,
		Rollbacks:         t.rollbacks,
		LastHoldoutAP:     t.lastAP,
		BufferEvents:      t.buf.Len(),
		HoldoutEvents:     len(t.holdout),
		SwapLastNs:        t.swapLast,
	}
	if t.trainNanos > 0 {
		s.TrainEvPerSec = float64(t.trained) / (float64(t.trainNanos) / 1e9)
	}
	if t.publishes > 0 {
		s.SwapMeanNs = t.swapNanos / t.publishes
	}
	t.runMu.Unlock()
	t.qmu.Lock()
	s.Frozen = t.frozen
	s.Observed = t.observed
	s.DroppedPending = t.droppedPending
	t.qmu.Unlock()
	return s
}
