package train

import (
	"math/rand"

	"apan/internal/tgraph"
)

// ReplayBuffer holds the trainer's view of the event stream: a classic
// reservoir sample over everything observed (long-term distribution) plus a
// ring of the most recent events (what the stream looks like right now).
// Mini-batches mix draws from both, so the trainer tracks drift without
// catastrophically forgetting the stationary structure.
//
// The buffer is seeded and single-consumer: all methods must be called from
// the trainer's run context. Determinism: equal (seed, Add sequence, Sample
// sequence) produce equal samples.
type ReplayBuffer struct {
	rng *rand.Rand

	reservoir []tgraph.Event
	resCap    int
	seen      int64 // events offered to the reservoir

	recent []tgraph.Event // ring, next points at the oldest entry
	recCap int
	next   int
	filled bool
}

// NewReplayBuffer builds a buffer with the given reservoir and recency
// capacities, drawing reservoir replacement decisions from its own rng.
func NewReplayBuffer(resCap, recCap int, seed int64) *ReplayBuffer {
	return &ReplayBuffer{
		rng:    rand.New(rand.NewSource(seed)),
		resCap: resCap,
		recCap: recCap,
	}
}

// Add offers one event to both the reservoir and the recency ring.
func (b *ReplayBuffer) Add(ev tgraph.Event) {
	b.seen++
	if len(b.reservoir) < b.resCap {
		b.reservoir = append(b.reservoir, ev)
	} else if j := b.rng.Int63n(b.seen); j < int64(b.resCap) {
		b.reservoir[j] = ev
	}
	if b.recCap > 0 {
		if len(b.recent) < b.recCap {
			b.recent = append(b.recent, ev)
		} else {
			b.recent[b.next] = ev
			b.next = (b.next + 1) % b.recCap
			b.filled = true
		}
	}
}

// Len returns the number of events currently resident (reservoir + ring;
// an event may be in both).
func (b *ReplayBuffer) Len() int { return len(b.reservoir) + len(b.recent) }

// Seen returns the number of events ever offered.
func (b *ReplayBuffer) Seen() int64 { return b.seen }

// Sample draws up to k events, each taken from the recency ring with
// probability recencyBias and from the reservoir otherwise. Events naming a
// node ≥ maxNode are skipped (the runtime may have been rolled back to a
// smaller node space than the buffer remembers); the result may therefore be
// shorter than k.
func (b *ReplayBuffer) Sample(rng *rand.Rand, k int, recencyBias float64, maxNode int) []tgraph.Event {
	return b.SampleInto(make([]tgraph.Event, 0, k), rng, k, recencyBias, maxNode)
}

// SampleInto is Sample appending into out (pass a reused buffer sliced to
// [:0]), so a steady-state caller draws mini-batches without allocating.
// The rng consumption is identical to Sample's.
func (b *ReplayBuffer) SampleInto(out []tgraph.Event, rng *rand.Rand, k int, recencyBias float64, maxNode int) []tgraph.Event {
	if len(b.reservoir) == 0 && len(b.recent) == 0 {
		return out
	}
	for len(out) < k {
		var ev tgraph.Event
		if len(b.recent) > 0 && (len(b.reservoir) == 0 || rng.Float64() < recencyBias) {
			ev = b.recent[rng.Intn(len(b.recent))]
		} else {
			ev = b.reservoir[rng.Intn(len(b.reservoir))]
		}
		if int(ev.Src) >= maxNode || int(ev.Dst) >= maxNode {
			// Count the failed draw so a buffer full of vanished nodes cannot
			// spin forever.
			k--
			continue
		}
		out = append(out, ev)
	}
	return out
}
