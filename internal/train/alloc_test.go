package train

import (
	"testing"
)

// TestOnlineTrainStepZeroAllocSteadyState: after warm-up, a full online
// training step — replay sampling, negative draws, batch planning, live
// state gather, forward, backward, clip, Adam — must run without a single
// heap allocation. This is the train-side counterpart of the core
// zero-alloc serving guards and is enforced in CI.
func TestOnlineTrainStepZeroAllocSteadyState(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector instrumentation allocates")
	}
	m, events := testModel(t, 11)
	tr, err := New(m, fastConfig(13))
	if err != nil {
		t.Fatal(err)
	}
	// Fill the replay buffer without triggering publish-side work.
	tr.qmu.Lock()
	for i := range events[200:800] {
		tr.buf.Add(events[200+i])
		tr.ns.Observe(&events[200+i])
	}
	tr.qmu.Unlock()

	// Warm up: grow the reused batch buffers, the tape arenas, and the
	// tensor pool to steady state.
	for i := 0; i < 3; i++ {
		if !tr.TrainStep() {
			t.Fatal("warm-up TrainStep did not run")
		}
	}
	allocs := testing.AllocsPerRun(20, func() {
		if !tr.TrainStep() {
			t.Fatal("TrainStep did not run")
		}
	})
	if allocs > 0 {
		t.Fatalf("online train step allocates %.1f times per step; want 0", allocs)
	}
}
