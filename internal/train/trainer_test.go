package train

import (
	"context"
	"testing"

	"apan/internal/async"
	"apan/internal/core"
	"apan/internal/dataset"
	"apan/internal/tgraph"
)

func testModel(t *testing.T, seed int64) (*core.Model, []tgraph.Event) {
	t.Helper()
	d := dataset.Wikipedia(dataset.Config{Scale: 0.01, Seed: seed, NoDrift: true})
	for i := range d.Events {
		d.Events[i].Feat = d.Events[i].Feat[:16]
	}
	d.EdgeDim = 16
	m, err := core.New(core.Config{
		NumNodes: d.NumNodes, EdgeDim: 16, Slots: 4, Neighbors: 4,
		Hops: 2, Heads: 2, Hidden: 32, BatchSize: 20, LR: 0.001, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	m.EvalStream(d.Events[:200], nil)
	return m, d.Events
}

func fastConfig(seed int64) Config {
	return Config{
		BufferCap: 512, RecentCap: 128, MiniBatch: 16, StepEvery: 16,
		PublishEvery: 2, HoldoutEvery: 8, HoldoutCap: 64, MinHoldout: 8,
		LR: 1e-3, Seed: seed,
	}
}

// feed streams events through Observe+Pump in fixed-size batches — the
// deterministic drive mode.
func feed(tr *OnlineTrainer, events []tgraph.Event, batch int) {
	for lo := 0; lo < len(events); lo += batch {
		hi := min(lo+batch, len(events))
		tr.Observe(events[lo:hi])
		tr.Pump()
	}
}

// TestTrainerPublishes: a pumped trainer must step, publish new versions,
// advance the model's served version, and keep an audit log whose last
// entry matches the live published set.
func TestTrainerPublishes(t *testing.T) {
	m, events := testModel(t, 1)
	v0 := m.ParamVersion()
	tr, err := New(m, fastConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	feed(tr, events[200:1200], 25)

	st := tr.Stats()
	if st.Steps == 0 || st.Trained == 0 {
		t.Fatalf("trainer never stepped: %+v", st)
	}
	if st.Publishes == 0 {
		t.Fatalf("trainer never published: %+v", st)
	}
	if m.ParamVersion() == v0 {
		t.Fatal("served parameter version did not advance")
	}
	log := tr.PublishLog()
	if log[0].Version != v0 {
		t.Fatalf("publish log must start at the attach version %d, got %d", v0, log[0].Version)
	}
	last := log[len(log)-1]
	cur := m.CurrentParams()
	if cur.Version() != last.Version || cur.Fingerprint() != last.Fingerprint {
		t.Fatalf("live set v%d/%016x does not match log tail v%d/%016x",
			cur.Version(), cur.Fingerprint(), last.Version, last.Fingerprint)
	}
	if cur.RecomputeFingerprint() != cur.Fingerprint() {
		t.Fatal("published set was mutated in place after publish")
	}
}

// TestTrainerPumpDeterminism: same seeds, same event sequence → identical
// publish logs (versions and value fingerprints) and identical served
// scores afterwards.
func TestTrainerPumpDeterminism(t *testing.T) {
	run := func() ([]Publish, []float32) {
		m, events := testModel(t, 2)
		tr, err := New(m, fastConfig(5))
		if err != nil {
			t.Fatal(err)
		}
		feed(tr, events[200:1000], 25)
		inf := m.InferBatch(events[1000:1040])
		defer inf.Release()
		return tr.PublishLog(), append([]float32(nil), inf.Scores...)
	}
	logA, scoresA := run()
	logB, scoresB := run()
	if len(logA) != len(logB) {
		t.Fatalf("publish counts differ: %d vs %d", len(logA), len(logB))
	}
	for i := range logA {
		if logA[i] != logB[i] {
			t.Fatalf("publish %d differs: %+v vs %+v", i, logA[i], logB[i])
		}
	}
	for i := range scoresA {
		if scoresA[i] != scoresB[i] {
			t.Fatalf("score %d differs across identical runs", i)
		}
	}
}

// TestFrozenTrainerIsInert: a frozen trainer must ignore events completely —
// no steps, no publishes, version pinned — and Resume must re-enable it.
func TestFrozenTrainerIsInert(t *testing.T) {
	m, events := testModel(t, 3)
	tr, err := New(m, fastConfig(7))
	if err != nil {
		t.Fatal(err)
	}
	v0 := m.ParamVersion()
	tr.Freeze()
	if !tr.Frozen() {
		t.Fatal("Frozen() false after Freeze")
	}
	feed(tr, events[200:800], 25)
	st := tr.Stats()
	if st.Steps != 0 || st.Publishes != 0 || st.Observed != 0 {
		t.Fatalf("frozen trainer did work: %+v", st)
	}
	if m.ParamVersion() != v0 {
		t.Fatal("frozen trainer changed the served version")
	}
	tr.Resume()
	feed(tr, events[200:1200], 25)
	if tr.Stats().Steps == 0 {
		t.Fatal("trainer did not resume")
	}
}

// TestRollbackOnRegression: a destructive learning rate must be caught by
// the holdout gate — publishes withheld, private copy rolled back — keeping
// the served version at its last good weights.
func TestRollbackOnRegression(t *testing.T) {
	m, events := testModel(t, 4)
	cfg := fastConfig(9)
	cfg.LR = 50 // absurd: each step destroys the decoder calibration
	cfg.Tolerance = 0.001
	cfg.RollbackPatience = 2
	tr, err := New(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	feed(tr, events[200:1500], 25)
	st := tr.Stats()
	if st.WithheldPublishes == 0 {
		t.Fatalf("holdout gate never withheld a destroyed candidate: %+v", st)
	}
	if st.Rollbacks == 0 {
		t.Fatalf("trainer never rolled back: %+v", st)
	}
}

// TestPipelineFeedsTrainer: WithOnlineTrainer must deliver exactly the
// applied events to the trainer, from the propagation worker.
func TestPipelineFeedsTrainer(t *testing.T) {
	m, events := testModel(t, 5)
	tr, err := New(m, fastConfig(11))
	if err != nil {
		t.Fatal(err)
	}
	pipe := async.New(m, async.WithQueueCap(8), async.WithOnlineTrainer(tr))
	ctx := context.Background()
	var submitted int64
	for lo := 200; lo < 600; lo += 25 {
		if _, _, err := pipe.Submit(ctx, events[lo:lo+25]); err != nil {
			t.Fatal(err)
		}
		submitted += 25
	}
	if err := pipe.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	if err := pipe.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	if got := tr.Stats().Observed; got != submitted {
		t.Fatalf("trainer observed %d events, pipeline applied %d", got, submitted)
	}
	tr.Pump()
	if tr.Stats().Steps == 0 {
		t.Fatal("trainer never stepped on pipeline-fed events")
	}
}

// TestBackgroundTrainerUnderServing: the background loop must train and
// publish while the pipeline serves, with no deadlock and no data race
// (run under -race in CI).
func TestBackgroundTrainerUnderServing(t *testing.T) {
	m, events := testModel(t, 6)
	tr, err := New(m, fastConfig(13))
	if err != nil {
		t.Fatal(err)
	}
	tr.Start()
	defer tr.Stop()
	pipe := async.New(m, async.WithQueueCap(16), async.WithOnlineTrainer(tr))
	ctx := context.Background()
	for lo := 200; lo+25 <= min(2200, len(events)); lo += 25 {
		if _, _, err := pipe.Submit(ctx, events[lo:lo+25]); err != nil {
			t.Fatal(err)
		}
	}
	if err := pipe.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	if err := pipe.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	tr.Stop()
	if tr.Stats().Observed == 0 {
		t.Fatal("background trainer observed nothing")
	}
}

// TestInferBatchZeroAllocSteadyState: the acceptance guard of the online-
// learning design — with an online trainer wired into the pipeline and at
// least one hot swap behind it, a steady-state InferBatch+Release cycle on
// the serving path must still allocate nothing.
func TestInferBatchZeroAllocSteadyState(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation allocates")
	}
	m, events := testModel(t, 7)
	tr, err := New(m, fastConfig(15))
	if err != nil {
		t.Fatal(err)
	}
	pipe := async.New(m, async.WithQueueCap(16), async.WithOnlineTrainer(tr))
	ctx := context.Background()
	for lo := 200; lo+25 <= 1200; lo += 25 {
		if _, _, err := pipe.Submit(ctx, events[lo:lo+25]); err != nil {
			t.Fatal(err)
		}
	}
	if err := pipe.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	tr.Pump() // train + publish deterministically
	if tr.Stats().Publishes == 0 {
		t.Fatal("precondition: trainer should have published at least once")
	}

	batch := events[1200:1240]
	for i := 0; i < 3; i++ {
		m.InferBatch(batch).Release() // warm the workspace for the new version
	}
	allocs := testing.AllocsPerRun(50, func() {
		m.InferBatch(batch).Release()
	})
	if allocs > 0 {
		t.Fatalf("steady-state InferBatch allocated %.2f times per op with the trainer enabled, want 0", allocs)
	}
	if err := pipe.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
}
