// Package train implements online continual learning for a serving APAN
// model: a background trainer that consumes applied events off the
// propagation path, steps a private copy of the parameters with Adam
// mini-batches drawn from a seeded reservoir/recency replay buffer, and
// publishes new immutable parameter versions through core.Model.SwapParams —
// so a long-running apan-serve process keeps adapting to the interaction
// stream it scores without ever blocking the zero-allocation inference hot
// path.
//
// Safety properties:
//
//   - The trainer owns a private parameter copy; the serving path reads only
//     published nn.ParamSet snapshots, pinned per batch. Publishing is
//     copy-on-write, so a half-finished training step can never be observed.
//   - Observe never blocks the propagation worker: events land in a bounded
//     pending queue (oldest dropped under overload, counted in Stats).
//   - Every publish is gated by a holdout average-precision check against
//     the last published version on the same holdout and runtime state; a
//     regressing candidate is withheld, and after RollbackPatience
//     consecutive regressions the private copy is rolled back to the last
//     good version and the optimizer is reset.
//
// Two drive modes: Start launches the background goroutine used in serving;
// Pump drains and trains inline, which is fully deterministic for a given
// seed and event sequence — the scenario harness and tests use it.
//
// See docs/training.md for the architecture and version semantics.
package train
