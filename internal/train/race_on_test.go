//go:build race

package train

// raceEnabled reports whether the race detector is compiled in.
const raceEnabled = true
