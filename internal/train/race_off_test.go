//go:build !race

package train

// raceEnabled reports whether the race detector is compiled in; its
// instrumentation allocates, so allocation-regression tests skip under it.
const raceEnabled = false
