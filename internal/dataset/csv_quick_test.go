package dataset

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"apan/internal/tgraph"
)

// randomBipartite draws a random bipartite dataset exercising the CSV
// format's edge cases: varying feature dims (including zero-length features),
// labeled/unlabeled events, non-monotone timestamps with exact ties, and
// extreme float values. The max user and item IDs are always present so the
// parser's inferred NumUsers/NumNodes match the generator's.
func randomBipartite(rng *rand.Rand) *Dataset {
	users := 1 + rng.Intn(8)
	items := 1 + rng.Intn(8)
	dim := rng.Intn(5) // 0 exercises the empty-feature path
	n := 2 + rng.Intn(40)
	d := &Dataset{
		Name:      "quick",
		NumUsers:  users,
		NumNodes:  users + items,
		EdgeDim:   dim,
		Bipartite: true,
	}
	randFeat := func() []float32 {
		f := make([]float32, dim)
		for j := range f {
			switch rng.Intn(4) {
			case 0:
				f[j] = 0
			case 1:
				f[j] = float32(rng.NormFloat64())
			case 2:
				f[j] = float32(rng.NormFloat64() * 1e-38) // near-denormal
			default:
				f[j] = float32(rng.NormFloat64() * 1e30)
			}
		}
		return f
	}
	var prev float64
	for i := 0; i < n; i++ {
		user, item := rng.Intn(users), rng.Intn(items)
		switch i {
		case 0:
			user = users - 1 // pin the ID space
		case 1:
			item = items - 1
		}
		var ts float64
		switch {
		case i > 0 && rng.Float64() < 0.2:
			ts = prev // exact duplicate timestamp
		case rng.Float64() < 0.3:
			ts = rng.Float64() * 100 // out of order vs. neighbors
		default:
			ts = prev + rng.Float64()
		}
		prev = ts
		d.Events = append(d.Events, tgraph.Event{
			ID:    int64(i),
			Src:   tgraph.NodeID(user),
			Dst:   tgraph.NodeID(users + item),
			Time:  ts,
			Feat:  randFeat(),
			Label: int8(rng.Intn(3) - 1), // -1, 0, 1
		})
	}
	return d
}

// normalizeExpected applies the documented lossy parts of the CSV format to
// the generated dataset, yielding what a Write→Parse round trip must return
// bit-for-bit: unlabeled (-1) events collapse to 0 (the files only record
// state *changes*), empty features gain the constant channel, and events are
// stably sorted by timestamp with sequential IDs.
func normalizeExpected(d *Dataset) *Dataset {
	exp := &Dataset{
		Name:      d.Name,
		NumUsers:  d.NumUsers,
		NumNodes:  d.NumNodes,
		EdgeDim:   d.EdgeDim,
		Bipartite: true,
	}
	if exp.EdgeDim == 0 {
		exp.EdgeDim = 1
	}
	for _, ev := range d.Events {
		if ev.Label == -1 {
			ev.Label = 0
		}
		if len(ev.Feat) == 0 {
			ev.Feat = []float32{1}
		}
		exp.Events = append(exp.Events, ev)
	}
	exp.finalize()
	return exp
}

// TestQuickCSVRoundTrip is the persistence property the scenario harness
// relies on to store traces as golden fixtures: WriteCSV followed by
// ParseCSV reproduces the dataset exactly (modulo the format's documented
// normalization), including float32 features and float64 timestamps
// bit-for-bit, under non-monotone and duplicated timestamps.
func TestQuickCSVRoundTrip(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := randomBipartite(rng)
		exp := normalizeExpected(d)

		var buf bytes.Buffer
		if err := WriteCSV(&buf, d); err != nil {
			t.Logf("seed %d: WriteCSV: %v", seed, err)
			return false
		}
		got, err := ParseCSV(&buf, d.Name)
		if err != nil {
			t.Logf("seed %d: ParseCSV: %v", seed, err)
			return false
		}

		if got.NumUsers != exp.NumUsers || got.NumNodes != exp.NumNodes ||
			got.EdgeDim != exp.EdgeDim || !got.Bipartite || len(got.Events) != len(exp.Events) {
			t.Logf("seed %d: shape mismatch: got users=%d nodes=%d dim=%d n=%d, want users=%d nodes=%d dim=%d n=%d",
				seed, got.NumUsers, got.NumNodes, got.EdgeDim, len(got.Events),
				exp.NumUsers, exp.NumNodes, exp.EdgeDim, len(exp.Events))
			return false
		}
		for i := range exp.Events {
			g, w := &got.Events[i], &exp.Events[i]
			if g.ID != int64(i) || g.Src != w.Src || g.Dst != w.Dst || g.Label != w.Label {
				t.Logf("seed %d: event %d: got %+v, want %+v", seed, i, g, w)
				return false
			}
			if math.Float64bits(g.Time) != math.Float64bits(w.Time) {
				t.Logf("seed %d: event %d: time %v != %v (not bitwise)", seed, i, g.Time, w.Time)
				return false
			}
			if len(g.Feat) != len(w.Feat) {
				t.Logf("seed %d: event %d: feat len %d != %d", seed, i, len(g.Feat), len(w.Feat))
				return false
			}
			for j := range w.Feat {
				if math.Float32bits(g.Feat[j]) != math.Float32bits(w.Feat[j]) {
					t.Logf("seed %d: event %d feat %d: %v != %v (not bitwise)", seed, i, j, g.Feat[j], w.Feat[j])
					return false
				}
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 60}
	if testing.Short() {
		cfg.MaxCount = 15
	}
	if err := quick.Check(check, cfg); err != nil {
		t.Fatal(err)
	}
}
