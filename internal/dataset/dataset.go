// Package dataset provides the temporal interaction datasets of the paper's
// evaluation. The real Wikipedia/Reddit CSVs and the proprietary Alipay
// transaction log are unavailable offline, so this package generates
// synthetic equivalents with matched statistics and — more importantly —
// matched structure: Zipf-skewed activity, session bursts, heavy repeat
// interactions, feature vectors correlated with latent user/item intent,
// and sparse dynamic "ban"/"fraud" labels driven by that intent. A loader
// for the JODIE CSV format is included so the real data can be dropped in.
package dataset

import (
	"fmt"
	"math/rand"
	"sort"

	"apan/internal/tgraph"
)

// Dataset is a chronologically sorted temporal interaction set.
type Dataset struct {
	Name      string
	NumNodes  int
	NumUsers  int // bipartite: users are [0,NumUsers), items the rest; 0 when not bipartite
	EdgeDim   int
	Bipartite bool
	LabelName string
	Events    []tgraph.Event // sorted by Time; IDs are positions
}

// Split is a chronological train/validation/test partition.
type Split struct {
	Train, Val, Test []tgraph.Event
	// TrainEnd and ValEnd are the split boundary times.
	TrainEnd, ValEnd float64
	// NewNodeInVal[i] / NewNodeInTest[i] mark events whose src or dst never
	// appears in the training window (the inductive subset).
	NewNodeInVal, NewNodeInTest []bool
}

// Split partitions the dataset chronologically, e.g. Split(0.70, 0.15) for
// the paper's 70%-15%-15%.
func (d *Dataset) Split(trainFrac, valFrac float64) *Split {
	n := len(d.Events)
	if n == 0 {
		panic("dataset: Split on empty dataset")
	}
	if trainFrac <= 0 || valFrac < 0 || trainFrac+valFrac >= 1 {
		panic(fmt.Sprintf("dataset: bad split fractions %v/%v", trainFrac, valFrac))
	}
	a := int(float64(n) * trainFrac)
	b := int(float64(n) * (trainFrac + valFrac))
	s := &Split{Train: d.Events[:a], Val: d.Events[a:b], Test: d.Events[b:]}
	if a > 0 {
		s.TrainEnd = d.Events[a-1].Time
	}
	if b > 0 {
		s.ValEnd = d.Events[b-1].Time
	}
	seen := make([]bool, d.NumNodes)
	for _, e := range s.Train {
		seen[e.Src] = true
		seen[e.Dst] = true
	}
	mark := func(evs []tgraph.Event) []bool {
		out := make([]bool, len(evs))
		for i, e := range evs {
			out[i] = !seen[e.Src] || !seen[e.Dst]
		}
		return out
	}
	s.NewNodeInVal = mark(s.Val)
	s.NewNodeInTest = mark(s.Test)
	return s
}

// Stats describes a dataset in the shape of the paper's Table 1.
type Stats struct {
	Name                 string
	Edges                int
	Nodes                int
	EdgeDim              int
	NodesInTrain         int
	OldNodesInValTest    int
	UnseenNodesInValTest int
	TimespanDays         float64
	LabeledInteractions  int
	LabelName            string
}

// Stats computes Table-1 statistics under the given split fractions.
func (d *Dataset) Stats(trainFrac, valFrac float64) Stats {
	s := d.Split(trainFrac, valFrac)
	inTrain := make(map[tgraph.NodeID]struct{})
	for _, e := range s.Train {
		inTrain[e.Src] = struct{}{}
		inTrain[e.Dst] = struct{}{}
	}
	old := make(map[tgraph.NodeID]struct{})
	unseen := make(map[tgraph.NodeID]struct{})
	for _, evs := range [][]tgraph.Event{s.Val, s.Test} {
		for _, e := range evs {
			for _, n := range []tgraph.NodeID{e.Src, e.Dst} {
				if _, ok := inTrain[n]; ok {
					old[n] = struct{}{}
				} else {
					unseen[n] = struct{}{}
				}
			}
		}
	}
	labeled := 0
	for _, e := range d.Events {
		if e.Label >= 0 {
			labeled++
		}
	}
	span := 0.0
	if len(d.Events) > 0 {
		span = (d.Events[len(d.Events)-1].Time - d.Events[0].Time) / 86400.0
	}
	return Stats{
		Name:                 d.Name,
		Edges:                len(d.Events),
		Nodes:                d.NumNodes,
		EdgeDim:              d.EdgeDim,
		NodesInTrain:         len(inTrain),
		OldNodesInValTest:    len(old),
		UnseenNodesInValTest: len(unseen),
		TimespanDays:         span,
		LabeledInteractions:  labeled,
		LabelName:            d.LabelName,
	}
}

// Graph builds a tgraph.Graph preloaded with the events in [0, upto).
func (d *Dataset) Graph(upto int) *tgraph.Graph {
	g := tgraph.New(d.NumNodes)
	for _, e := range d.Events[:upto] {
		g.AddEvent(e)
	}
	return g
}

// finalize sorts events by time and assigns sequential ids.
func (d *Dataset) finalize() {
	sort.SliceStable(d.Events, func(a, b int) bool { return d.Events[a].Time < d.Events[b].Time })
	for i := range d.Events {
		d.Events[i].ID = int64(i)
	}
}

// NegSampler draws negative destinations from the pool of nodes observed as
// destinations so far — the paper's time-varying negative distribution
// P_n(v) (§4.2): nodes that have never interacted are not sampled.
type NegSampler struct {
	pool []tgraph.NodeID
	in   []bool
}

// NewNegSampler creates a sampler over a graph with numNodes nodes.
func NewNegSampler(numNodes int) *NegSampler {
	return &NegSampler{in: make([]bool, numNodes)}
}

// Observe admits the destination of a processed event into the pool. The
// membership bitmap grows on demand: dynamic node admission (EnsureNodes on
// the serving path) can stream events whose Dst exceeds the node count the
// sampler was constructed with, which must enlarge the pool, not panic.
func (ns *NegSampler) Observe(e *tgraph.Event) {
	if d := int(e.Dst); d >= len(ns.in) {
		// Grow with headroom so a monotone stream of new IDs costs O(log n)
		// reallocations, mirroring the stores' amortized admission growth.
		grown := make([]bool, d+1+len(ns.in)/2)
		copy(grown, ns.in)
		ns.in = grown
	}
	if !ns.in[e.Dst] {
		ns.in[e.Dst] = true
		ns.pool = append(ns.pool, e.Dst)
	}
}

// PoolSize returns the number of candidate negatives.
func (ns *NegSampler) PoolSize() int { return len(ns.pool) }

// Sample draws a destination different from exclude; if the pool is empty or
// only contains exclude it returns exclude (caller may skip the pair).
func (ns *NegSampler) Sample(rng *rand.Rand, exclude tgraph.NodeID) tgraph.NodeID {
	if len(ns.pool) == 0 {
		return exclude
	}
	for try := 0; try < 8; try++ {
		c := ns.pool[rng.Intn(len(ns.pool))]
		if c != exclude {
			return c
		}
	}
	return ns.pool[rng.Intn(len(ns.pool))]
}
