package dataset

import (
	"math/rand"
	"testing"

	"apan/internal/tgraph"
)

// TestNegSamplerObserveGrowsBitmap is the regression test for the dynamic-
// admission panic: a model grown via EnsureNodes streams events whose Dst
// exceeds the node count the sampler was constructed with, and Observe used
// to index past its bitmap. It must grow instead.
func TestNegSamplerObserveGrowsBitmap(t *testing.T) {
	ns := NewNegSampler(4)
	ev := tgraph.Event{Src: 0, Dst: 10, Time: 1}
	ns.Observe(&ev) // would panic before the fix
	if got := ns.PoolSize(); got != 1 {
		t.Fatalf("PoolSize after out-of-range Observe = %d, want 1", got)
	}
	rng := rand.New(rand.NewSource(1))
	if got := ns.Sample(rng, 3); got != 10 {
		t.Fatalf("Sample = %d, want the only admitted destination 10", got)
	}

	// Re-observing the same destination must not duplicate it, and in-range
	// destinations keep working alongside grown ones.
	ns.Observe(&ev)
	ns.Observe(&tgraph.Event{Src: 0, Dst: 2, Time: 2})
	if got := ns.PoolSize(); got != 2 {
		t.Fatalf("PoolSize = %d, want 2", got)
	}

	// Monotonically increasing IDs (the serving admission pattern) stay safe.
	for d := int32(11); d < 300; d += 7 {
		ns.Observe(&tgraph.Event{Src: 0, Dst: d, Time: 3})
	}
	if ns.PoolSize() < 40 {
		t.Fatalf("PoolSize = %d after monotone admission, want ≥ 40", ns.PoolSize())
	}
}
