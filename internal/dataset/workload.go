package dataset

import (
	"math"
	"math/rand"
)

// This file exports the workload-synthesis primitives the dataset generators
// are built from — Zipf-skewed weights, O(1) alias sampling, unit feature
// directions and feature-signature injection — so simulation harnesses
// (internal/scenario) can compose the same skew and signal structure into
// custom traces (flash crowds, hotspots, fraud rings) without duplicating
// the machinery. Everything here is driven by a caller-supplied *rand.Rand:
// equal seeds give equal outputs, which the scenario harness's determinism
// invariants rely on.

// ZipfWeights returns n sampling weights w_i ∝ rank^{-exp} with the ranks
// assigned by a random permutation, so the hot identities are scattered
// across the ID space rather than clustered at 0.
func ZipfWeights(rng *rand.Rand, n int, exp float64) []float64 {
	w := make([]float64, n)
	perm := rng.Perm(n)
	for i := 0; i < n; i++ {
		w[perm[i]] = math.Pow(float64(i+1), -exp)
	}
	return w
}

// AliasSampler draws from a fixed discrete distribution in O(1) per draw
// using Walker's alias method.
type AliasSampler struct {
	prob  []float64
	alias []int
}

// NewAliasSampler builds a sampler over the given (unnormalized) weights.
func NewAliasSampler(weights []float64) *AliasSampler {
	n := len(weights)
	var sum float64
	for _, w := range weights {
		sum += w
	}
	a := &AliasSampler{prob: make([]float64, n), alias: make([]int, n)}
	scaled := make([]float64, n)
	var small, large []int
	for i, w := range weights {
		scaled[i] = w * float64(n) / sum
		if scaled[i] < 1 {
			small = append(small, i)
		} else {
			large = append(large, i)
		}
	}
	for len(small) > 0 && len(large) > 0 {
		s := small[len(small)-1]
		small = small[:len(small)-1]
		l := large[len(large)-1]
		large = large[:len(large)-1]
		a.prob[s] = scaled[s]
		a.alias[s] = l
		scaled[l] = scaled[l] + scaled[s] - 1
		if scaled[l] < 1 {
			small = append(small, l)
		} else {
			large = append(large, l)
		}
	}
	for _, i := range large {
		a.prob[i] = 1
	}
	for _, i := range small {
		a.prob[i] = 1
	}
	return a
}

// Draw samples one index from the distribution.
func (a *AliasSampler) Draw(rng *rand.Rand) int {
	i := rng.Intn(len(a.prob))
	if rng.Float64() < a.prob[i] {
		return i
	}
	return a.alias[i]
}

// RandUnitVec returns a uniformly random direction of the given dimension —
// the generators use these as detectable feature signatures (vandal/fraud
// directions) that classifiers can learn to separate.
func RandUnitVec(rng *rand.Rand, dim int) []float32 {
	v := make([]float32, dim)
	var norm float64
	for j := range v {
		v[j] = float32(rng.NormFloat64())
		norm += float64(v[j]) * float64(v[j])
	}
	inv := float32(1 / math.Sqrt(norm))
	for j := range v {
		v[j] *= inv
	}
	return v
}

// AddScaled adds s·dir into dst in place: the feature-signature injection
// used to mark vandal/fraud interactions.
func AddScaled(dst, dir []float32, s float32) {
	for j := range dst {
		dst[j] += dir[j] * s
	}
}
