package dataset

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"apan/internal/tgraph"
)

// WriteCSV writes a bipartite dataset in the JODIE CSV format that LoadCSV
// (and the paper authors' published pipelines) read:
//
//	user_id,item_id,timestamp,state_label,f0,...,fK
//
// Item ids are shifted back to a 0-based range. Unlabeled events are
// written with state_label 0, matching the public files where only state
// *changes* are 1.
func WriteCSV(w io.Writer, d *Dataset) error {
	if !d.Bipartite {
		return fmt.Errorf("dataset: WriteCSV requires a bipartite dataset, %q is not", d.Name)
	}
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString("user_id,item_id,timestamp,state_label,comma_separated_list_of_features\n"); err != nil {
		return fmt.Errorf("dataset: %w", err)
	}
	for i := range d.Events {
		ev := &d.Events[i]
		label := 0
		if ev.Label == 1 {
			label = 1
		}
		if _, err := fmt.Fprintf(bw, "%d,%d,%s,%d", ev.Src, int(ev.Dst)-d.NumUsers,
			strconv.FormatFloat(ev.Time, 'f', -1, 64), label); err != nil {
			return fmt.Errorf("dataset: %w", err)
		}
		for _, f := range ev.Feat {
			if _, err := fmt.Fprintf(bw, ",%s", strconv.FormatFloat(float64(f), 'g', -1, 32)); err != nil {
				return fmt.Errorf("dataset: %w", err)
			}
		}
		if err := bw.WriteByte('\n'); err != nil {
			return fmt.Errorf("dataset: %w", err)
		}
	}
	return bw.Flush()
}

// SaveCSV writes the dataset to path in the JODIE CSV format.
func SaveCSV(path string, d *Dataset) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("dataset: %w", err)
	}
	if err := WriteCSV(f, d); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadCSV reads a temporal interaction file in the JODIE format used by the
// paper's public datasets (http://snap.stanford.edu/jodie):
//
//	user_id,item_id,timestamp,state_label,f0,f1,...,fK
//
// with one header line. User and item ids are dense integers starting at 0;
// items are remapped to [numUsers, numUsers+numItems). The returned dataset
// is bipartite with interactions sorted by timestamp.
func LoadCSV(path, name string) (*Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("dataset: %w", err)
	}
	defer f.Close()
	return ParseCSV(f, name)
}

// ParseCSV parses JODIE-format CSV content from r. See LoadCSV.
func ParseCSV(r io.Reader, name string) (*Dataset, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)

	d := &Dataset{Name: name, Bipartite: true, LabelName: "state change"}
	maxUser, maxItem := -1, -1
	type rawEvent struct {
		user, item int
		ts         float64
		label      int8
		feat       []float32
	}
	var raws []rawEvent
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if line == 1 || text == "" {
			continue // header
		}
		parts := strings.Split(text, ",")
		if len(parts) < 4 {
			return nil, fmt.Errorf("dataset: line %d: want ≥4 fields, got %d", line, len(parts))
		}
		user, err := strconv.Atoi(strings.TrimSpace(parts[0]))
		if err != nil {
			return nil, fmt.Errorf("dataset: line %d user: %w", line, err)
		}
		item, err := strconv.Atoi(strings.TrimSpace(parts[1]))
		if err != nil {
			return nil, fmt.Errorf("dataset: line %d item: %w", line, err)
		}
		ts, err := strconv.ParseFloat(strings.TrimSpace(parts[2]), 64)
		if err != nil {
			return nil, fmt.Errorf("dataset: line %d timestamp: %w", line, err)
		}
		lab, err := strconv.ParseFloat(strings.TrimSpace(parts[3]), 64)
		if err != nil {
			return nil, fmt.Errorf("dataset: line %d label: %w", line, err)
		}
		feat := make([]float32, 0, len(parts)-4)
		for _, p := range parts[4:] {
			v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
			if err != nil {
				return nil, fmt.Errorf("dataset: line %d feature: %w", line, err)
			}
			feat = append(feat, float32(v))
		}
		if user > maxUser {
			maxUser = user
		}
		if item > maxItem {
			maxItem = item
		}
		raws = append(raws, rawEvent{user, item, ts, int8(lab), feat})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("dataset: %w", err)
	}
	if len(raws) == 0 {
		return nil, fmt.Errorf("dataset: no events in CSV")
	}
	d.NumUsers = maxUser + 1
	d.NumNodes = d.NumUsers + maxItem + 1
	d.EdgeDim = len(raws[0].feat)
	if d.EdgeDim == 0 {
		d.EdgeDim = 1 // degenerate files: give models a constant channel
	}
	d.Events = make([]tgraph.Event, 0, len(raws))
	for _, re := range raws {
		feat := re.feat
		if len(feat) == 0 {
			feat = []float32{1}
		}
		d.Events = append(d.Events, tgraph.Event{
			Src:   tgraph.NodeID(re.user),
			Dst:   tgraph.NodeID(d.NumUsers + re.item),
			Time:  re.ts,
			Feat:  feat,
			Label: re.label,
		})
	}
	d.finalize()
	return d, nil
}
