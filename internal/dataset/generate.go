package dataset

import (
	"math"
	"math/rand"
	"sort"

	"apan/internal/tgraph"
)

// Config controls synthetic dataset generation.
type Config struct {
	// Scale multiplies the paper-scale node and event counts; 1.0 reproduces
	// the sizes in Table 1, smaller values produce proportionally smaller
	// graphs for tests and benchmarks.
	Scale float64
	// Seed drives all randomness; equal seeds give identical datasets.
	Seed int64
	// Drift is how far user intent rotates toward a second latent over the
	// full timespan (0..1). Temporal drift is what gives dynamic models
	// their edge over static snapshots (§1). Zero selects the default 0.4;
	// NoDrift disables it entirely (stationary preferences).
	Drift   float64
	NoDrift bool
}

func (c Config) scale() float64 {
	if c.Scale <= 0 {
		return 1.0
	}
	return c.Scale
}

func (c Config) drift() float64 {
	if c.NoDrift {
		return 0
	}
	if c.Drift <= 0 {
		return 0.4
	}
	if c.Drift > 1 {
		return 1
	}
	return c.Drift
}

const (
	latentDim = 16
	daySecs   = 86400.0
)

// bipartiteParams describes a user–item interaction generator.
type bipartiteParams struct {
	name        string
	users       int
	items       int
	events      int
	edgeDim     int
	days        float64
	vandalFrac  float64 // fraction of users that eventually get banned
	labelPerVan int     // labeled (ban) interactions per vandal
	repeatProb  float64 // probability an event revisits the user's history
	sessionLen  float64 // mean extra events per session
	labelName   string
}

// Wikipedia generates a bipartite user–page editing graph matching the
// statistics of the JODIE Wikipedia dataset (~9.3k nodes, ~157k edges,
// 172-dim edge features, 30 days, sparse editing-ban labels).
func Wikipedia(cfg Config) *Dataset {
	s := cfg.scale()
	return genBipartite(bipartiteParams{
		name:        "wikipedia",
		users:       max2(int(8227*s), 20),
		items:       max2(int(1000*s), 10),
		events:      max2(int(157474*s), 200),
		edgeDim:     172,
		days:        30,
		vandalFrac:  0.02,
		labelPerVan: 2,
		repeatProb:  0.79,
		sessionLen:  2.2,
		labelName:   "editing ban",
	}, cfg)
}

// Reddit generates a bipartite user–subreddit posting graph matching the
// JODIE Reddit dataset (~11k nodes, ~672k edges, 172-dim features, 30 days,
// posting-ban labels).
func Reddit(cfg Config) *Dataset {
	s := cfg.scale()
	return genBipartite(bipartiteParams{
		name:        "reddit",
		users:       max2(int(10000*s), 20),
		items:       max2(int(984*s), 10),
		events:      max2(int(672447*s), 200),
		edgeDim:     172,
		days:        30,
		vandalFrac:  0.012,
		labelPerVan: 3,
		repeatProb:  0.82,
		sessionLen:  3.0,
		labelName:   "posting ban",
	}, cfg)
}

func max2(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func genBipartite(p bipartiteParams, cfg Config) *Dataset {
	rng := rand.New(rand.NewSource(cfg.Seed))
	numNodes := p.users + p.items

	// Latent intents drive both topology and features. Interests drift over
	// the month (users "transfer their interest to other entities", §1):
	// the effective latent at time t interpolates between an early and a
	// late intent, so old edges lose predictive power and temporal models
	// gain their edge over static snapshots.
	userLatA := randLatents(rng, p.users)
	userLatB := randLatents(rng, p.users)
	itemLat := randLatents(rng, p.items)
	span := p.days * daySecs
	userLat := func(u int, t float64) []float32 {
		w := float32(t / span * cfg.drift())
		a, b := userLatA[u], userLatB[u]
		out := make([]float32, latentDim)
		for j := range out {
			out[j] = (1-w)*a[j] + w*b[j]
		}
		return out
	}
	// Two fixed random projections map latents into the edge-feature space;
	// a dedicated "vandal direction" perturbs features of misbehaving users.
	projU := randProjection(rng, latentDim, p.edgeDim)
	projI := randProjection(rng, latentDim, p.edgeDim)
	vandalDir := RandUnitVec(rng, p.edgeDim)

	// Zipf-like activity for users and popularity for items.
	userW := ZipfWeights(rng, p.users, 0.9)
	itemW := ZipfWeights(rng, p.items, 1.0)
	userPick := NewAliasSampler(userW)
	itemPick := NewAliasSampler(itemW)

	// Vandals are banned at a time uniform over the span and stop
	// interacting afterwards; their last labelPerVan interactions carry the
	// positive ban label. Uniform ban times spread the labels across the
	// train/val/test windows as in the JODIE label files.
	vandal := make([]bool, p.users)
	banTime := make([]float64, p.users)
	// A floor keeps small-scale datasets statistically usable: at paper
	// scale the fraction dominates, at benchmark scales the floor ensures
	// every chronological window still observes some bans.
	nVandal := max2(int(float64(p.users)*p.vandalFrac), 12)
	if nVandal > p.users/2 {
		nVandal = p.users / 2
	}
	for _, u := range rng.Perm(p.users)[:nVandal] {
		vandal[u] = true
		banTime[u] = span * (0.1 + 0.9*rng.Float64())
	}

	history := make([][]int, p.users) // items each user has touched, append order

	d := &Dataset{
		Name:      p.name,
		NumNodes:  numNodes,
		NumUsers:  p.users,
		EdgeDim:   p.edgeDim,
		Bipartite: true,
		LabelName: p.labelName,
	}
	d.Events = make([]tgraph.Event, 0, p.events)

	vandalEvents := make([][]int, p.users) // event indexes per vandal for labeling

	for len(d.Events) < p.events {
		u := userPick.Draw(rng)
		// Session: a burst of events close in time. Vandal sessions happen
		// before the ban only.
		horizon := span
		if vandal[u] {
			horizon = banTime[u]
		}
		t := rng.Float64() * horizon
		burst := 1 + poisson(rng, p.sessionLen)
		for b := 0; b < burst && len(d.Events) < p.events; b++ {
			var item int
			if len(history[u]) > 0 && rng.Float64() < p.repeatProb {
				// Revisit with recency bias: geometric from the tail.
				back := geometric(rng, 0.5)
				if back >= len(history[u]) {
					back = len(history[u]) - 1
				}
				item = history[u][len(history[u])-1-back]
			} else if rng.Float64() < 0.5 {
				// Affinity-driven discovery: best of a popularity sample.
				item = bestAffinity(rng, itemPick, itemLat, userLat(u, t), 4)
			} else {
				item = itemPick.Draw(rng)
			}
			history[u] = append(history[u], item)

			feat := makeFeature(rng, userLat(u, t), itemLat[item], projU, projI, 0.3)
			if vandal[u] {
				// Vandal sessions carry a detectable feature signature.
				AddScaled(feat, vandalDir, 1.2+0.4*rng.Float32())
			}
			ev := tgraph.Event{
				Src:   tgraph.NodeID(u),
				Dst:   tgraph.NodeID(p.users + item),
				Time:  t,
				Feat:  feat,
				Label: -1,
			}
			if vandal[u] {
				vandalEvents[u] = append(vandalEvents[u], len(d.Events))
			}
			d.Events = append(d.Events, ev)
			t += rng.ExpFloat64() * 45 // ~45s between session events
		}
	}

	// Dynamic labels: each vandal's last labelPerVan interactions are the
	// ban-triggering ones (label 1); a matched number of random normal-user
	// interactions get explicit label 0 so classification tasks have both
	// classes observed, as in the JODIE label files.
	var positives int
	for u, evs := range vandalEvents {
		if !vandal[u] || len(evs) == 0 {
			continue
		}
		// Sessions are generated out of time order: label the k latest
		// interactions by timestamp, the ones that trigger the ban.
		sort.Slice(evs, func(a, b int) bool { return d.Events[evs[a]].Time < d.Events[evs[b]].Time })
		k := p.labelPerVan
		if k > len(evs) {
			k = len(evs)
		}
		for _, ei := range evs[len(evs)-k:] {
			d.Events[ei].Label = 1
			positives++
		}
	}
	for negs := 0; negs < positives*3 && positives > 0; {
		ei := rng.Intn(len(d.Events))
		e := &d.Events[ei]
		if e.Label == -1 && !vandal[e.Src] {
			e.Label = 0
			negs++
		}
	}

	d.finalize()
	return d
}

// Alipay generates a non-bipartite transaction network in the shape the
// paper describes (§1, §4.1): normal users transact inside loose
// communities; fraud rings appear, burst-transact among themselves and cash
// out through mule accounts within a short window; fraudulent edges carry a
// distinct feature signature and a fraud label. Paper scale: ~762k nodes,
// ~2.78M edges, 101-dim features, 14 days, ~11.6k labeled interactions.
func Alipay(cfg Config) *Dataset {
	s := cfg.scale()
	rng := rand.New(rand.NewSource(cfg.Seed))

	users := max2(int(761750*s), 60)
	events := max2(int(2776009*s), 300)
	const edgeDim = 101
	const days = 14.0
	span := days * daySecs

	numCommunities := max2(users/500, 4)
	community := make([]int, users)
	for i := range community {
		community[i] = rng.Intn(numCommunities)
	}
	members := make([][]int, numCommunities)
	for u, c := range community {
		members[c] = append(members[c], u)
	}

	userLat := randLatents(rng, users)
	proj := randProjection(rng, latentDim, edgeDim)
	proj2 := randProjection(rng, latentDim, edgeDim)
	fraudDir := RandUnitVec(rng, edgeDim)
	userW := ZipfWeights(rng, users, 0.8)
	userPick := NewAliasSampler(userW)

	d := &Dataset{
		Name:      "alipay",
		NumNodes:  users,
		EdgeDim:   edgeDim,
		LabelName: "transaction ban",
	}
	d.Events = make([]tgraph.Event, 0, events)

	// Fraud rings: sized so labeled edges land near the paper's ~0.42%.
	fraudEvents := int(float64(events) * 0.0042)
	ringCount := max2(fraudEvents/16, 4)

	normalFeature := func(u, v int, amountScale float64) []float32 {
		f := makeFeature(rng, userLat[u], userLat[v], proj, proj2, 0.35)
		f[0] = float32(math.Log1p(rng.ExpFloat64() * amountScale)) // amount-like channel
		return f
	}

	// Normal traffic.
	for len(d.Events) < events-fraudEvents {
		u := userPick.Draw(rng)
		var v int
		if rng.Float64() < 0.85 {
			m := members[community[u]]
			v = m[rng.Intn(len(m))]
		} else {
			v = userPick.Draw(rng)
		}
		if v == u {
			continue
		}
		t := rng.Float64() * span
		d.Events = append(d.Events, tgraph.Event{
			Src: tgraph.NodeID(u), Dst: tgraph.NodeID(v),
			Time: t, Feat: normalFeature(u, v, 50), Label: 0,
		})
	}

	// Fraud rings: each ring is a handful of colluding accounts plus mules,
	// active in a tight burst window.
	added := 0
	for r := 0; r < ringCount && added < fraudEvents; r++ {
		size := 3 + rng.Intn(4)
		ring := make([]int, size)
		for i := range ring {
			ring[i] = rng.Intn(users)
		}
		mule := rng.Intn(users)
		// Stratified starts spread the rings over the whole span, so every
		// chronological split window observes fraud.
		start := span * 0.95 * (float64(r) + rng.Float64()) / float64(ringCount)
		window := 1800 + rng.Float64()*5400 // 0.5–2h burst
		perRing := fraudEvents / ringCount
		if r == ringCount-1 {
			perRing = fraudEvents - added
		}
		for i := 0; i < perRing; i++ {
			u := ring[rng.Intn(size)]
			var v int
			if rng.Float64() < 0.4 {
				v = mule // cash-out edge
			} else {
				v = ring[rng.Intn(size)]
			}
			if v == u {
				v = mule
			}
			t := start + rng.Float64()*window
			f := normalFeature(u, v, 400)
			AddScaled(f, fraudDir, 1.0+0.5*rng.Float32())
			d.Events = append(d.Events, tgraph.Event{
				Src: tgraph.NodeID(u), Dst: tgraph.NodeID(v),
				Time: t, Feat: f, Label: 1,
			})
			added++
		}
	}

	d.finalize()
	return d
}

// --- generator helpers ---

func randLatents(rng *rand.Rand, n int) [][]float32 {
	out := make([][]float32, n)
	for i := range out {
		v := make([]float32, latentDim)
		for j := range v {
			v[j] = float32(rng.NormFloat64())
		}
		out[i] = v
	}
	return out
}

func randProjection(rng *rand.Rand, in, out int) [][]float32 {
	std := 1.0 / math.Sqrt(float64(in))
	m := make([][]float32, in)
	for i := range m {
		row := make([]float32, out)
		for j := range row {
			row[j] = float32(rng.NormFloat64() * std)
		}
		m[i] = row
	}
	return m
}

// makeFeature projects the two latents into feature space and adds noise.
func makeFeature(rng *rand.Rand, a, b []float32, projA, projB [][]float32, noise float64) []float32 {
	dim := len(projA[0])
	f := make([]float32, dim)
	for i, av := range a {
		row := projA[i]
		for j := range f {
			f[j] += av * row[j]
		}
	}
	for i, bv := range b {
		row := projB[i]
		for j := range f {
			f[j] += bv * row[j]
		}
	}
	for j := range f {
		f[j] += float32(rng.NormFloat64() * noise)
	}
	return f
}

// bestAffinity samples k candidate items from pick and returns the one whose
// latent best matches the user latent.
func bestAffinity(rng *rand.Rand, pick *AliasSampler, itemLat [][]float32, u []float32, k int) int {
	best, bestDot := pick.Draw(rng), float32(math.Inf(-1))
	for i := 0; i < k; i++ {
		c := pick.Draw(rng)
		var dot float32
		for j, uv := range u {
			dot += uv * itemLat[c][j]
		}
		if dot > bestDot {
			best, bestDot = c, dot
		}
	}
	return best
}

func poisson(rng *rand.Rand, mean float64) int {
	// Knuth's algorithm; means here are tiny.
	l := math.Exp(-mean)
	k, p := 0, 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
		if k > 1000 {
			return k
		}
	}
}

func geometric(rng *rand.Rand, p float64) int {
	k := 0
	for rng.Float64() > p && k < 64 {
		k++
	}
	return k
}
