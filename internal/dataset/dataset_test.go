package dataset

import (
	"math/rand"
	"strings"
	"testing"

	"apan/internal/tgraph"
)

func tiny(t *testing.T) *Dataset {
	t.Helper()
	return Wikipedia(Config{Scale: 0.01, Seed: 1})
}

func TestWikipediaGeneratorShape(t *testing.T) {
	d := tiny(t)
	if d.EdgeDim != 172 {
		t.Fatalf("EdgeDim=%d", d.EdgeDim)
	}
	if !d.Bipartite || d.NumUsers == 0 {
		t.Fatal("wikipedia must be bipartite")
	}
	if len(d.Events) < 200 {
		t.Fatalf("too few events: %d", len(d.Events))
	}
	for i, e := range d.Events {
		if int64(i) != e.ID {
			t.Fatalf("event %d has id %d", i, e.ID)
		}
		if i > 0 && e.Time < d.Events[i-1].Time {
			t.Fatal("events not sorted by time")
		}
		if int(e.Src) >= d.NumUsers {
			t.Fatalf("src %d is not a user", e.Src)
		}
		if int(e.Dst) < d.NumUsers || int(e.Dst) >= d.NumNodes {
			t.Fatalf("dst %d is not an item", e.Dst)
		}
		if len(e.Feat) != d.EdgeDim {
			t.Fatalf("feature dim %d", len(e.Feat))
		}
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	a := Wikipedia(Config{Scale: 0.01, Seed: 42})
	b := Wikipedia(Config{Scale: 0.01, Seed: 42})
	if len(a.Events) != len(b.Events) {
		t.Fatalf("event counts differ: %d vs %d", len(a.Events), len(b.Events))
	}
	for i := range a.Events {
		if a.Events[i].Src != b.Events[i].Src || a.Events[i].Time != b.Events[i].Time {
			t.Fatalf("event %d differs", i)
		}
	}
	c := Wikipedia(Config{Scale: 0.01, Seed: 43})
	same := true
	for i := range a.Events {
		if i < len(c.Events) && (a.Events[i].Src != c.Events[i].Src || a.Events[i].Time != c.Events[i].Time) {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical datasets")
	}
}

func TestLabelsSparseAndBothClasses(t *testing.T) {
	d := Wikipedia(Config{Scale: 0.05, Seed: 3})
	var pos, neg, unlabeled int
	for _, e := range d.Events {
		switch e.Label {
		case 1:
			pos++
		case 0:
			neg++
		default:
			unlabeled++
		}
	}
	if pos == 0 || neg == 0 {
		t.Fatalf("need both label classes: %d pos, %d neg", pos, neg)
	}
	if pos+neg >= unlabeled {
		t.Fatalf("labels must be sparse: %d labeled vs %d unlabeled", pos+neg, unlabeled)
	}
}

func TestAlipayGenerator(t *testing.T) {
	d := Alipay(Config{Scale: 0.001, Seed: 5})
	if d.Bipartite {
		t.Fatal("alipay is not bipartite")
	}
	if d.EdgeDim != 101 {
		t.Fatalf("EdgeDim=%d", d.EdgeDim)
	}
	var fraud int
	for i, e := range d.Events {
		if i > 0 && e.Time < d.Events[i-1].Time {
			t.Fatal("not sorted")
		}
		if e.Src == e.Dst {
			t.Fatal("self transaction")
		}
		if e.Label == 1 {
			fraud++
		}
	}
	if fraud == 0 {
		t.Fatal("no fraud edges generated")
	}
	frac := float64(fraud) / float64(len(d.Events))
	if frac > 0.05 {
		t.Fatalf("fraud fraction too high: %v", frac)
	}
}

func TestSplitChronological(t *testing.T) {
	d := tiny(t)
	s := d.Split(0.7, 0.15)
	total := len(s.Train) + len(s.Val) + len(s.Test)
	if total != len(d.Events) {
		t.Fatalf("split loses events: %d vs %d", total, len(d.Events))
	}
	if len(s.Train) == 0 || len(s.Val) == 0 || len(s.Test) == 0 {
		t.Fatal("empty split part")
	}
	if s.Train[len(s.Train)-1].Time > s.Val[0].Time {
		t.Fatal("train overlaps val in time")
	}
	if s.Val[len(s.Val)-1].Time > s.Test[0].Time {
		t.Fatal("val overlaps test in time")
	}
	if len(s.NewNodeInVal) != len(s.Val) || len(s.NewNodeInTest) != len(s.Test) {
		t.Fatal("inductive masks misaligned")
	}
}

func TestSplitBadFractionsPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	tiny(t).Split(0.9, 0.2)
}

func TestStatsTable1Shape(t *testing.T) {
	d := tiny(t)
	st := d.Stats(0.7, 0.15)
	if st.Nodes != d.NumNodes || st.Edges != len(d.Events) {
		t.Fatalf("stats mismatch: %+v", st)
	}
	if st.NodesInTrain == 0 || st.NodesInTrain > st.Nodes {
		t.Fatalf("NodesInTrain=%d", st.NodesInTrain)
	}
	if st.TimespanDays <= 0 || st.TimespanDays > 31 {
		t.Fatalf("TimespanDays=%v", st.TimespanDays)
	}
	if st.OldNodesInValTest+st.UnseenNodesInValTest == 0 {
		t.Fatal("no val/test nodes")
	}
	if st.LabeledInteractions == 0 {
		t.Fatal("no labels counted")
	}
}

func TestNegSamplerPoolGrowth(t *testing.T) {
	ns := NewNegSampler(10)
	rng := rand.New(rand.NewSource(1))
	if got := ns.Sample(rng, 3); got != 3 {
		t.Fatalf("empty pool should return exclude, got %d", got)
	}
	ns.Observe(&tgraph.Event{Dst: 5})
	ns.Observe(&tgraph.Event{Dst: 5}) // dedup
	ns.Observe(&tgraph.Event{Dst: 7})
	if ns.PoolSize() != 2 {
		t.Fatalf("pool=%d", ns.PoolSize())
	}
	for i := 0; i < 50; i++ {
		got := ns.Sample(rng, 5)
		if got != 7 {
			t.Fatalf("sample with exclude: got %d", got)
		}
	}
}

func TestGraphPrefix(t *testing.T) {
	d := tiny(t)
	g := d.Graph(100)
	if g.NumEvents() != 100 {
		t.Fatalf("prefix graph has %d events", g.NumEvents())
	}
	if g.NumNodes() != d.NumNodes {
		t.Fatalf("nodes %d", g.NumNodes())
	}
}

func TestParseCSVRoundTrip(t *testing.T) {
	csv := `user_id,item_id,timestamp,state_label,f0,f1
0,0,1.0,0,0.5,1.5
1,0,2.0,1,-0.5,0.25
0,1,3.0,0,0.0,0.0
`
	d, err := ParseCSV(strings.NewReader(csv), "test")
	if err != nil {
		t.Fatal(err)
	}
	if d.NumUsers != 2 || d.NumNodes != 4 {
		t.Fatalf("nodes: users=%d total=%d", d.NumUsers, d.NumNodes)
	}
	if d.EdgeDim != 2 {
		t.Fatalf("EdgeDim=%d", d.EdgeDim)
	}
	if len(d.Events) != 3 {
		t.Fatalf("events=%d", len(d.Events))
	}
	e := d.Events[1]
	if e.Src != 1 || e.Dst != 2 || e.Label != 1 || e.Feat[1] != 0.25 {
		t.Fatalf("event parsed wrong: %+v", e)
	}
}

func TestCSVRoundTripThroughWriter(t *testing.T) {
	d := Wikipedia(Config{Scale: 0.005, Seed: 4})
	var buf strings.Builder
	if err := WriteCSV(&buf, d); err != nil {
		t.Fatal(err)
	}
	got, err := ParseCSV(strings.NewReader(buf.String()), d.Name)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Events) != len(d.Events) {
		t.Fatalf("events: %d vs %d", len(got.Events), len(d.Events))
	}
	if got.EdgeDim != d.EdgeDim {
		t.Fatalf("dims: %d vs %d", got.EdgeDim, d.EdgeDim)
	}
	for i := range d.Events {
		a, b := &d.Events[i], &got.Events[i]
		if a.Src != b.Src || a.Time != b.Time {
			t.Fatalf("event %d differs: %+v vs %+v", i, a, b)
		}
		// Labels: -1 (unlabeled) and 0 both serialize as 0.
		wantLabel := int8(0)
		if a.Label == 1 {
			wantLabel = 1
		}
		if b.Label != wantLabel {
			t.Fatalf("event %d label %d vs %d", i, b.Label, wantLabel)
		}
		for j := range a.Feat {
			if a.Feat[j] != b.Feat[j] {
				t.Fatalf("event %d feature %d: %v vs %v", i, j, a.Feat[j], b.Feat[j])
			}
		}
	}
}

func TestWriteCSVRejectsNonBipartite(t *testing.T) {
	d := Alipay(Config{Scale: 0.0005, Seed: 1})
	var buf strings.Builder
	if err := WriteCSV(&buf, d); err == nil {
		t.Fatal("want error for non-bipartite dataset")
	}
}

func TestParseCSVErrors(t *testing.T) {
	cases := []string{
		"header\n",                   // empty
		"header\n1,2\n",              // too few fields
		"header\nx,2,3.0,0\n",        // bad user
		"header\n1,2,zzz,0\n",        // bad timestamp
		"header\n1,2,3.0,0,notnum\n", // bad feature
	}
	for i, c := range cases {
		if _, err := ParseCSV(strings.NewReader(c), "bad"); err == nil {
			t.Fatalf("case %d: want error", i)
		}
	}
}
