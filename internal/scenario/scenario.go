package scenario

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"apan/internal/async"
	"apan/internal/core"
	"apan/internal/eval"
)

// Scenario couples a workload generator with the fault profile and invariant
// set of one harness run. The zero fault fields mean "no fault": Parity
// scenarios drive all three stack paths; Saturate runs the gated
// queue-saturation protocol; SlowApply delays the propagation consumer;
// MidCheckpoint snapshots and rewinds mid-stream.
type Scenario struct {
	Name        string
	Description string
	Workload    Workload
	// Labeled scenarios carry ground-truth event labels; the harness reports
	// AP and ROC-AUC of a supervised fraud head on [z_src ‖ e_ij ‖ z_dst]
	// (the paper's Table-3 dynamic-classification protocol), trained on the
	// first half of the streamed labeled events and evaluated on the rest.
	Labeled bool
	// TrainFrac trains each path's model on this fraction of the trace
	// before streaming (identically across paths), so the labeled head
	// reads embeddings from a warmed encoder.
	TrainFrac float64
	// Parity drives the async.Pipeline and HTTP paths alongside the direct
	// path and asserts bitwise score parity.
	Parity bool
	// Saturate runs the deterministic TrySubmit saturation protocol twice
	// and asserts the drop pattern, scores and digest reproduce bitwise.
	Saturate bool
	// SlowApply injects this delay before every apply on the pipeline path
	// (backpressure without drops); conservation is asserted, score drift
	// against the direct path is reported as a metric.
	SlowApply time.Duration
	// MidCheckpoint snapshots mid-stream, finishes, restores and replays the
	// tail, asserting a bitwise-identical second pass.
	MidCheckpoint bool
	// Drift runs the online-continual-learning protocol: the stream is
	// played three times — twice with a frozen trainer (bitwise determinism
	// asserted) and once with the trainer pumped deterministically — and the
	// post-shift holdout AP of the online run must be at least the frozen
	// run's. The no-torn-params invariant audits every served batch's
	// pinned parameter version against the trainer's publish log.
	Drift bool
	// KillRecover kills the serving process at a seeded batch index — in
	// three tail states: clean, mid-record torn write, garbage tail — and
	// recovers from checkpoint + WAL replay-to-watermark. The recovered
	// runtime must be bitwise identical (RuntimeDigest) to an uninterrupted
	// run at the recovery point and again at end of stream.
	KillRecover bool
	// NoisyNeighbor runs the multi-tenant isolation protocol: the trace's
	// flash-crowd burst is attributed to an aggressor tenant with a binding
	// event-time rate cap while steady traffic belongs to an uncapped
	// victim; the victim must lose nothing, the aggressor must be shed at
	// the gate, each tenant's ledger must conserve (submitted = applied +
	// dropped), and the whole protocol must replay bitwise.
	NoisyNeighbor bool
	// QuantizedDrift reruns the direct path with int8-quantized serving
	// (Config.Quantize) twice: both quantized runs must be bitwise identical
	// (scores and digest — the int8 GEMM is exact integer arithmetic, so even
	// the asm and Go kernels agree bitwise), and the labeled AP must stay
	// within maxQuantAPLoss (0.02) of the float32 reference run.
	QuantizedDrift bool
	// EvictPressure reruns the direct path under a binding cold-state
	// eviction budget (a third of the node space): the warm set must stay
	// within budget, evicting runs must be bitwise deterministic, and the
	// labeled AP must stay within a fixed loss bound of the no-eviction
	// reference run.
	EvictPressure bool
	// Failover runs the warm-standby protocol: the leader ships its WAL to a
	// follower that replays continuously, lags behind a seeded pause point,
	// and is promoted when the leader dies — under clean and torn shipped
	// tails, latched fsync errors on the leader's storage, and a follower
	// crash mid-replay. The promoted runtime must be bitwise identical
	// (RuntimeDigest) to the uninterrupted run at the takeover watermark and
	// at end of stream, and double promotion must be fenced.
	Failover bool
}

// Bundled returns the scenario suite the repo ships: the workload ×
// fault matrix ROADMAP's "as many scenarios as you can imagine" asks for,
// kept deterministic so it can gate CI.
func Bundled() []Scenario {
	return []Scenario{
		{Name: "smooth_baseline", Workload: SmoothBaseline, Parity: true,
			Description: "stationary mildly-skewed traffic; parity + determinism anchor"},
		{Name: "flash_crowd", Workload: FlashCrowd, Parity: true,
			Description: "20× burst on a hot set mid-stream (the §1 Black Friday shape)"},
		{Name: "zipf_hotspot", Workload: ZipfHotspot, Parity: true,
			Description: "α=1.6 celebrity skew hammering a few shards and mailboxes"},
		{Name: "node_churn", Workload: NodeChurn, Parity: true,
			Description: "continuous cold-start admission: IDs beyond the constructed node space"},
		{Name: "out_of_order", Workload: OutOfOrder, Parity: true,
			Description: "swapped, duplicated and tied timestamps; §3.6 arrival-order robustness"},
		{Name: "fraud_ring", Workload: FraudRing, Labeled: true, TrainFrac: 0.3,
			Description: "labeled fraud-ring bursts in community traffic; AP/AUC ground truth"},
		{Name: "quantized_drift", Workload: FraudRing, Labeled: true, TrainFrac: 0.3, QuantizedDrift: true,
			Description: "int8-quantized serving vs float32 on the fraud trace; AP loss ≤ 0.02, bitwise-deterministic quantized replay"},
		{Name: "queue_saturation", Workload: FlashCrowd, Saturate: true,
			Description: "gated consumer + TrySubmit shedding; deterministic drop pattern"},
		{Name: "slow_consumer", Workload: SmoothBaseline, SlowApply: 200 * time.Microsecond,
			Description: "delayed propagation consumer; backpressure, conservation, score drift"},
		{Name: "checkpoint_midstream", Workload: OutOfOrder, MidCheckpoint: true,
			Description: "mid-stream SnapshotRuntime/RestoreRuntime bitwise rewind"},
		{Name: "concept_drift", Workload: ConceptDrift, Drift: true, TrainFrac: 0.3,
			Description: "community rewiring mid-stream; online trainer vs frozen params, torn-param audit"},
		{Name: "kill_recover", Workload: FlashCrowd, KillRecover: true,
			Description: "seeded process kill (clean + torn-write tails); checkpoint + WAL replay must be bitwise"},
		{Name: "failover", Workload: FlashCrowd, Failover: true,
			Description: "log-shipped warm standby promoted after leader death (torn/fsync/follower-crash arms); takeover must be bitwise"},
		{Name: "noisy_neighbor", Workload: FlashCrowd, NoisyNeighbor: true,
			Description: "flash-crowd aggressor tenant vs steady victim; rate-gate shedding, per-tenant conservation, bitwise replay"},
		{Name: "eviction_pressure", Workload: FraudRing, Labeled: true, TrainFrac: 0.3, EvictPressure: true,
			Description: "binding cold-state eviction budget; warm set bounded, bitwise-deterministic, AP loss vs no-eviction reference bounded"},
	}
}

// RunOptions sizes a harness run. Zero values select defaults small enough
// for go test; cmd/apan-bench raises Events for the reported table.
type RunOptions struct {
	Seed      int64 // default 1
	Events    int   // default 2000
	BatchSize int   // default 40
	Nodes     int   // default 96
	MaxNodes  int   // default 4×Nodes (churn headroom)
	EdgeDim   int   // default 16 (divisible by the 2 attention heads)
	QueueCap  int   // default 4 (propagation queue, small to make faults bite)
	Span      float64
	// GraphBackend selects the temporal-graph store every path of the run
	// uses (core.GraphBackend*); empty means flat. Whatever the choice, the
	// backend_parity invariant reruns the direct path on the other backends
	// and requires bitwise score and digest agreement.
	GraphBackend string
	// EvictMaxNodes passes a cold-state eviction budget to every model the
	// run constructs (0 disables); the eviction-pressure driver sets it on
	// its A/B arm only.
	EvictMaxNodes int
	// Quantize serves every model the run constructs from int8-quantized
	// published weights; the quantized-drift driver sets it on its arm only.
	Quantize bool
}

func (o *RunOptions) normalize() {
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Events == 0 {
		o.Events = 2000
	}
	if o.BatchSize == 0 {
		o.BatchSize = 40
	}
	if o.Nodes == 0 {
		o.Nodes = 96
	}
	if o.MaxNodes == 0 {
		o.MaxNodes = 4 * o.Nodes
	}
	if o.EdgeDim == 0 {
		o.EdgeDim = 16
	}
	if o.QueueCap == 0 {
		o.QueueCap = 4
	}
	if o.Span == 0 {
		o.Span = 3600
	}
}

func (o *RunOptions) params() WorkloadParams {
	return WorkloadParams{Nodes: o.Nodes, MaxNodes: o.MaxNodes, Events: o.Events, EdgeDim: o.EdgeDim, Span: o.Span}
}

// Result is one scenario run's report: stream statistics, fault outcomes,
// labeled metrics when available, and the verdict of every invariant that
// applied. AP/AUC are nil for unlabeled scenarios (JSON cannot carry NaN).
type Result struct {
	Scenario string `json:"scenario"`
	Seed     int64  `json:"seed"`
	// Events counts the streamed (scored) events; TrainEvents the prefix
	// consumed by TrainFrac warm-up before streaming. Drop accounting holds
	// over the streamed portion: Events = Applied + Dropped.
	Events      int   `json:"events"`
	TrainEvents int   `json:"train_events,omitempty"`
	Batches     int   `json:"batches"`
	Applied     int   `json:"applied_events"`
	Dropped     int   `json:"dropped_events"`
	MaxDepth    int   `json:"max_queue_depth"`
	SyncMeanU   int64 `json:"sync_mean_us"`
	SyncP99U    int64 `json:"sync_p99_us"`
	// ScoreDrift is the max |score − direct-path score| over batches both
	// paths scored; nonzero only for timing-dependent scenarios.
	ScoreDrift float64  `json:"score_drift"`
	AP         *float64 `json:"ap,omitempty"`
	AUC        *float64 `json:"auc,omitempty"`
	// Drift-scenario metrics: post-shift holdout AP of the online-trained
	// and frozen-parameter runs, and how many parameter versions the online
	// trainer published during the stream.
	OnlineAP          *float64 `json:"online_ap,omitempty"`
	FrozenAP          *float64 `json:"frozen_ap,omitempty"`
	VersionsPublished int      `json:"versions_published,omitempty"`
	// RecoveredEvents is the clean-crash kill-and-recover arm's WAL replay
	// length: events re-applied past the checkpoint watermark.
	RecoveredEvents int `json:"recovered_events,omitempty"`
	// Failover-scenario metrics, from the clean arm: the batch index the
	// promoted follower took over at, and how many lagging events its
	// promotion had to catch up on from the shipped log.
	PromotedBatch  int `json:"promoted_batch,omitempty"`
	TakeoverEvents int `json:"takeover_events,omitempty"`
	// Noisy-neighbor metrics: the per-tenant admission ledgers after the
	// final drain.
	Tenants map[string]async.TenantStats `json:"tenants,omitempty"`
	// Eviction-pressure metrics: the binding budget, how many evictions
	// fired, and the evicting run's labeled AP (AP above holds the
	// no-eviction reference).
	EvictBudget  int      `json:"evict_budget,omitempty"`
	EvictEvicted uint64   `json:"evict_evicted,omitempty"`
	EvictAP      *float64 `json:"evict_ap,omitempty"`
	// Quantized-drift metrics: the int8 run's labeled AP (AP above holds the
	// float32 reference) and the max |int8 − float32| score divergence.
	QuantAP         *float64 `json:"quant_ap,omitempty"`
	QuantScoreDrift float64  `json:"quant_score_drift,omitempty"`

	Invariants []InvariantResult `json:"invariants"`
	Violations []Violation       `json:"violations,omitempty"`
}

// Passed reports whether every checked invariant held.
func (r *Result) Passed() bool { return len(r.Violations) == 0 }

// InvariantSummary renders "checked-passing/checked", e.g. "4/4".
func (r *Result) InvariantSummary() string {
	var checked, passed int
	for _, iv := range r.Invariants {
		if iv.Checked {
			checked++
			if iv.Passed {
				passed++
			}
		}
	}
	return fmt.Sprintf("%d/%d", passed, checked)
}

func (r *Result) addInvariant(name string, vs []Violation) {
	r.Invariants = append(r.Invariants, InvariantResult{Name: name, Checked: true, Passed: len(vs) == 0})
	r.Violations = append(r.Violations, vs...)
}

func (r *Result) skipInvariant(name string) {
	r.Invariants = append(r.Invariants, InvariantResult{Name: name, Checked: false})
}

// Run executes one scenario end to end: generate the trace, drive the
// configured paths and faults, check every applicable invariant, and
// aggregate the report. An error means the harness itself failed (model
// construction, HTTP transport); invariant breaches are Violations in the
// Result, not errors.
func Run(sc Scenario, o RunOptions) (*Result, error) {
	o.normalize()
	tr := sc.Workload(rand.New(rand.NewSource(o.Seed)), o.params())
	tr.Name = sc.Name
	maxTime := tr.MaxTime()

	res := &Result{Scenario: sc.Name, Seed: o.Seed}

	// Reference: the direct path, always run, always the parity baseline.
	ref, err := runDirect(tr, o, sc.TrainFrac, sc.Labeled)
	if err != nil {
		return nil, err
	}
	stream := tr.Events[len(tr.Events)-ref.submitted:]
	batches := splitBatches(stream, o.BatchSize)
	res.Events = ref.submitted
	res.TrainEvents = len(tr.Events) - ref.submitted
	res.Batches = len(batches)
	res.Applied = ref.applied
	res.SyncMeanU = ref.hist.Mean().Microseconds()
	res.SyncP99U = ref.hist.Quantile(0.99).Microseconds()

	// Replay determinism: regenerate the trace from the same seed and rerun
	// the direct path on a fresh model; trace, scores and digest must all
	// reproduce bitwise.
	{
		tr2 := sc.Workload(rand.New(rand.NewSource(o.Seed)), o.params())
		tr2.Name = sc.Name
		vs := compareTraces(tr, tr2, sc.Name, o.Seed)
		if vs == nil {
			rep, err := runDirect(tr2, o, sc.TrainFrac, false)
			if err != nil {
				return nil, err
			}
			vs = compareScores(InvReplayDeterism, sc.Name, o.Seed, batches, ref.scores, rep.scores, "run1", "run2")
			if vs == nil && ref.digest != rep.digest {
				vs = []Violation{{Invariant: InvReplayDeterism, Scenario: sc.Name, Seed: o.Seed, EventIndex: -1,
					Detail: fmt.Sprintf("runtime digest %016x != replay digest %016x (scores matched)", ref.digest, rep.digest)}}
			}
		}
		res.addInvariant(InvReplayDeterism, vs)
	}

	// Mailbox monotonicity and conservation on the reference run.
	res.addInvariant(InvMailboxMonotonic, checkMailboxes(ref.model, sc.Name, o.Seed, maxTime))
	res.addInvariant(InvDropAccounting, checkConservation(ref, batches, sc.Name, o.Seed))

	// Cross-backend parity: the direct run replayed on every other graph
	// backend must reproduce scores and runtime digest bitwise — the store
	// is swappable infrastructure, never part of the model's semantics.
	{
		current := o.GraphBackend
		if current == "" {
			current = core.GraphBackendFlat
		}
		var vs []Violation
		for _, backend := range []string{core.GraphBackendFlat, core.GraphBackendSharded, core.GraphBackendRemoteSim} {
			if backend == current {
				continue
			}
			o2 := o
			o2.GraphBackend = backend
			alt, err := runDirect(tr, o2, sc.TrainFrac, false)
			if err != nil {
				return nil, err
			}
			vs = append(vs, compareScores(InvBackendParity, sc.Name, o.Seed, batches,
				ref.scores, alt.scores, "backend:"+current, "backend:"+backend)...)
			if ref.digest != alt.digest {
				vs = append(vs, Violation{Invariant: InvBackendParity, Scenario: sc.Name, Seed: o.Seed, EventIndex: -1,
					Detail: fmt.Sprintf("backend %s digest %016x != backend %s digest %016x (scores matched)",
						current, ref.digest, backend, alt.digest)})
			}
		}
		res.addInvariant(InvBackendParity, vs)
	}

	// Score parity across the serving stack.
	if sc.Parity {
		var vs []Violation
		pipeOut, err := runPipeline(tr, o, sc.TrainFrac, true, 0)
		if err != nil {
			return nil, err
		}
		vs = append(vs, compareScores(InvScoreParity, sc.Name, o.Seed, batches, ref.scores, pipeOut.scores, "direct", "pipeline")...)
		vs = append(vs, checkConservation(pipeOut, batches, sc.Name, o.Seed)...)

		httpOut, err := runHTTP(tr, o, sc.TrainFrac)
		if err != nil {
			return nil, err
		}
		vs = append(vs, compareScores(InvScoreParity, sc.Name, o.Seed, batches, ref.scores, httpOut.scores, "direct", "http")...)
		vs = append(vs, checkConservation(httpOut, batches, sc.Name, o.Seed)...)
		res.addInvariant(InvScoreParity, vs)
	} else {
		res.skipInvariant(InvScoreParity)
	}

	// Queue saturation: deterministic shedding, run twice for bitwise replay.
	if sc.Saturate {
		satA, err := runSaturated(tr, o)
		if err != nil {
			return nil, err
		}
		satB, err := runSaturated(tr, o)
		if err != nil {
			return nil, err
		}
		allBatches := splitBatches(tr.Events, o.BatchSize)
		vs := checkConservation(satA, allBatches, sc.Name, o.Seed)
		vs = append(vs, compareScores(InvReplayDeterism, sc.Name, o.Seed, allBatches, satA.scores, satB.scores, "saturation1", "saturation2")...)
		if satA.digest != satB.digest {
			vs = append(vs, Violation{Invariant: InvReplayDeterism, Scenario: sc.Name, Seed: o.Seed, EventIndex: -1,
				Detail: fmt.Sprintf("saturation digests differ: %016x vs %016x", satA.digest, satB.digest)})
		}
		vs = append(vs, checkMailboxes(satA.model, sc.Name, o.Seed, maxTime)...)
		res.addInvariant(InvDropAccounting+"_saturated", vs)
		// The table reports the fault path's stream accounting, not the
		// reference run's (which never drops).
		res.Applied = satA.applied
		res.Dropped = satA.droppedEvents(allBatches)
		res.MaxDepth = satA.maxDepth
	}

	// Slow consumer: real backpressure; conservation asserted, drift
	// observed.
	if sc.SlowApply > 0 {
		slow, err := runPipeline(tr, o, sc.TrainFrac, false, sc.SlowApply)
		if err != nil {
			return nil, err
		}
		vs := checkConservation(slow, batches, sc.Name, o.Seed)
		vs = append(vs, checkMailboxes(slow.model, sc.Name, o.Seed, maxTime)...)
		res.addInvariant(InvDropAccounting+"_slow", vs)
		res.ScoreDrift = scoreDrift(ref.scores, slow.scores)
		res.MaxDepth = slow.maxDepth
	}

	// Online continual learning under concept drift: frozen determinism,
	// torn-parameter audit, and the adaptation check.
	if sc.Drift {
		frozenA, err := runDrift(tr, o, sc.TrainFrac, false)
		if err != nil {
			return nil, err
		}
		frozenB, err := runDrift(tr, o, sc.TrainFrac, false)
		if err != nil {
			return nil, err
		}
		res.addInvariant(InvFrozenDeterminism,
			compareDrift(InvFrozenDeterminism, sc.Name, o.Seed, batches, frozenA, frozenB, "frozen1", "frozen2"))

		online, err := runDrift(tr, o, sc.TrainFrac, true)
		if err != nil {
			return nil, err
		}
		vs := checkTornParams(online, sc.Name, o.Seed)
		vs = append(vs, checkTornParams(frozenA, sc.Name, o.Seed)...)
		res.addInvariant(InvNoTornParams, vs)

		onAP := driftAP(batches, online.scores, online.negScores, tr.Shift, tr.Span)
		frAP := driftAP(batches, frozenA.scores, frozenA.negScores, tr.Shift, tr.Span)
		res.OnlineAP, res.FrozenAP = &onAP, &frAP
		res.VersionsPublished = len(online.pubLog) - 1 // minus the attach version
		var avs []Violation
		if math.IsNaN(onAP) || math.IsNaN(frAP) {
			avs = append(avs, Violation{Invariant: InvOnlineAdaptation, Scenario: sc.Name, Seed: o.Seed, EventIndex: -1,
				Detail: "post-shift AP not computable (no post-shift events in the streamed portion?)"})
		} else if onAP < frAP {
			avs = append(avs, Violation{Invariant: InvOnlineAdaptation, Scenario: sc.Name, Seed: o.Seed, EventIndex: -1,
				Detail: fmt.Sprintf("online-trained post-shift AP %.4f < frozen-params AP %.4f", onAP, frAP)})
		}
		res.addInvariant(InvOnlineAdaptation, avs)
	} else {
		res.skipInvariant(InvNoTornParams)
		res.skipInvariant(InvFrozenDeterminism)
		res.skipInvariant(InvOnlineAdaptation)
	}

	// Kill-and-recover: crash at a seeded batch (clean and torn tails),
	// recover from checkpoint + WAL, require bitwise digest equality.
	if sc.KillRecover {
		vs, recovered, err := runKillRecover(tr, o, sc.TrainFrac)
		if err != nil {
			return nil, err
		}
		res.RecoveredEvents = recovered
		res.addInvariant(InvKillRecover, vs)
	} else {
		res.skipInvariant(InvKillRecover)
	}

	// Warm-standby failover: log-shipped follower, seeded leader death,
	// promotion must be bitwise at the takeover watermark.
	if sc.Failover {
		vs, promoted, takeover, err := runFailover(tr, o, sc.TrainFrac)
		if err != nil {
			return nil, err
		}
		res.PromotedBatch = promoted
		res.TakeoverEvents = takeover
		res.addInvariant(InvFailover, vs)
	} else {
		res.skipInvariant(InvFailover)
	}

	// Multi-tenant noisy neighbor: aggressor shed at the rate gate, victim
	// isolated, per-tenant conservation, bitwise replay of the protocol.
	if sc.NoisyNeighbor {
		runA, err := runNoisyNeighbor(tr, o)
		if err != nil {
			return nil, err
		}
		runB, err := runNoisyNeighbor(tr, o)
		if err != nil {
			return nil, err
		}
		vs := checkTenantIsolation(runA, sc.Name, o.Seed)
		vs = append(vs, compareScores(InvTenantIsolation, sc.Name, o.Seed, runA.batches, runA.scores, runB.scores, "tenants1", "tenants2")...)
		if runA.digest != runB.digest {
			vs = append(vs, Violation{Invariant: InvTenantIsolation, Scenario: sc.Name, Seed: o.Seed, EventIndex: -1,
				Detail: fmt.Sprintf("tenant protocol digests differ: %016x vs %016x", runA.digest, runB.digest)})
		}
		res.addInvariant(InvTenantIsolation, vs)
		res.addInvariant(InvTenantAccounting, checkTenantConservation(runA, sc.Name, o.Seed))
		res.Tenants = runA.stats
		// The table reports the tenanted path's stream accounting.
		var applied, dropped int
		for i, b := range runA.batches {
			if runA.dropped[i] {
				dropped += len(b)
			} else {
				applied += len(b)
			}
		}
		res.Applied, res.Dropped = applied, dropped
	} else {
		res.skipInvariant(InvTenantIsolation)
		res.skipInvariant(InvTenantAccounting)
	}

	// Cold-state eviction pressure: warm set bounded, bitwise determinism,
	// labeled AP within the loss bound of the no-eviction reference.
	if sc.EvictPressure {
		vs, evRun, err := checkEvictionPressure(tr, o, sc, ref, batches)
		if err != nil {
			return nil, err
		}
		res.addInvariant(InvEvictionBounded, vs)
		if st, ok := evRun.model.EvictionStats(); ok {
			res.EvictBudget = st.Budget
			res.EvictEvicted = st.Evicted
		}
		if ap := headAP(evRun.samples, o.Seed); !math.IsNaN(ap) {
			res.EvictAP = &ap
		}
	} else {
		res.skipInvariant(InvEvictionBounded)
	}

	// Int8-quantized serving: deterministic quantized replay, AP within the
	// loss bound of the float32 reference. The check runs at its own fixed
	// protocol sizing (see quantOptions); the drift and AP metrics below
	// come from those runs, not the harness-sized reference above.
	if sc.QuantizedDrift {
		vs, qRef, qRun, err := checkQuantizedDrift(o, sc)
		if err != nil {
			return nil, err
		}
		res.addInvariant(InvQuantizedDrift, vs)
		if ap := headAP(qRun.samples, o.Seed); !math.IsNaN(ap) {
			res.QuantAP = &ap
		}
		res.QuantScoreDrift = scoreDrift(qRef.scores, qRun.scores)
	} else {
		res.skipInvariant(InvQuantizedDrift)
	}

	// Mid-stream checkpoint/restore rewind.
	if sc.MidCheckpoint {
		first, replay, tailBatches, restoreOK, err := runCheckpointed(tr, o, sc.TrainFrac)
		if err != nil {
			return nil, err
		}
		var vs []Violation
		if !restoreOK {
			vs = append(vs, Violation{Invariant: InvCheckpointReplay, Scenario: sc.Name, Seed: o.Seed, EventIndex: -1,
				Detail: "RestoreRuntime did not reproduce the snapshot-time digest"})
		}
		vs = append(vs, compareScores(InvCheckpointReplay, sc.Name, o.Seed, tailBatches, first.scores, replay.scores, "tail1", "tail2")...)
		if first.digest != replay.digest {
			vs = append(vs, Violation{Invariant: InvCheckpointReplay, Scenario: sc.Name, Seed: o.Seed, EventIndex: -1,
				Detail: fmt.Sprintf("tail digests differ after restore: %016x vs %016x", first.digest, replay.digest)})
		}
		res.addInvariant(InvCheckpointReplay, vs)
	} else {
		res.skipInvariant(InvCheckpointReplay)
	}

	// Labeled metrics: the paper's Table-3 protocol — a supervised head on
	// [z_src ‖ e_ij ‖ z_dst] over frozen encoder embeddings, trained on the
	// first half of the streamed labeled events, evaluated on the second.
	// (The raw link score is not used: ring members burst-transact, so their
	// edges quickly look like established pairs to the link decoder.)
	if sc.Labeled {
		half := len(ref.samples) / 2
		trainS, testS := ref.samples[:half], ref.samples[half:]
		if scores := fraudHeadScores(trainS, testS, o.Seed+13); scores != nil {
			labels := make([]bool, len(testS))
			for i := range testS {
				labels[i] = testS[i].y
			}
			if ap := eval.AveragePrecision(scores, labels); !math.IsNaN(ap) {
				res.AP = &ap
			}
			if auc := eval.ROCAUC(scores, labels); !math.IsNaN(auc) {
				res.AUC = &auc
			}
		}
	}
	return res, nil
}
