package scenario

import "testing"

// findScenario pulls a bundled scenario by name.
func findScenario(t *testing.T, name string) Scenario {
	t.Helper()
	for _, sc := range Bundled() {
		if sc.Name == name {
			return sc
		}
	}
	t.Fatalf("scenario %q not bundled", name)
	return Scenario{}
}

// TestConceptDriftScenario runs the continual-learning scenario at both the
// default harness size and (in non-short mode) the CI table size, asserting
// every invariant — frozen determinism, no torn params, online adaptation —
// holds and the online trainer actually published versions.
func TestConceptDriftScenario(t *testing.T) {
	sc := findScenario(t, "concept_drift")
	configs := []RunOptions{{Seed: 1}} // defaults: 2000 events
	if !testing.Short() {
		// The CI table configuration: apan-bench -exp scenarios -scale 0.01
		// runs 600 events at batch 50.
		configs = append(configs, RunOptions{Seed: 1, Events: 600, BatchSize: 50})
	}
	for _, cfg := range configs {
		res, err := Run(sc, cfg)
		if err != nil {
			t.Fatal(err)
		}
		for _, v := range res.Violations {
			t.Errorf("violation: %s", v)
		}
		if res.OnlineAP == nil || res.FrozenAP == nil {
			t.Fatal("drift APs not reported")
		}
		t.Logf("events=%d online AP %.4f frozen AP %.4f versions=%d invariants=%s",
			res.Events, *res.OnlineAP, *res.FrozenAP, res.VersionsPublished, res.InvariantSummary())
		if res.VersionsPublished == 0 {
			t.Error("online trainer never published a version during the drift stream")
		}
	}
}
