package scenario

import (
	"fmt"
	"math/rand"
	"testing"

	"apan/internal/core"
)

// testOptions returns harness sizes small enough that the whole bundled
// suite runs in seconds (and under -race -count=2 in CI's soak job) while
// still crossing every interesting threshold: multiple batches, queue
// saturation, churn past the constructed node space.
func testOptions(t *testing.T) RunOptions {
	t.Helper()
	o := RunOptions{Seed: 1, Events: 600, BatchSize: 30, Nodes: 48, MaxNodes: 160}
	if testing.Short() {
		o.Events = 400
	}
	return o
}

// TestScenarioBundled runs every bundled scenario and requires all checked
// invariants to hold — this is the acceptance gate for the harness.
func TestScenarioBundled(t *testing.T) {
	for _, sc := range Bundled() {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			res, err := Run(sc, testOptions(t))
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
			for _, v := range res.Violations {
				t.Errorf("violation: %s", v)
			}
			if res.Batches == 0 || res.Applied == 0 {
				t.Fatalf("scenario streamed nothing: %+v", res)
			}
			var checked int
			for _, iv := range res.Invariants {
				if iv.Checked {
					checked++
				}
			}
			if checked < 3 {
				t.Fatalf("only %d invariants checked, want ≥ 3: %+v", checked, res.Invariants)
			}
		})
	}
}

// TestScenarioCrossBackendParity drives representative scenarios with each
// non-default graph backend behind every path (incl. the WAL-attached
// kill-recover and online-training drift protocols), and checks the
// backend_parity invariant both ways: whichever backend is primary, the
// other two must reproduce its scores and digest bitwise.
func TestScenarioCrossBackendParity(t *testing.T) {
	byName := map[string]Scenario{}
	for _, sc := range Bundled() {
		byName[sc.Name] = sc
	}
	type tc struct{ scenario, backend string }
	cases := []tc{
		{"smooth_baseline", core.GraphBackendSharded},
		{"smooth_baseline", core.GraphBackendRemoteSim},
		{"out_of_order", core.GraphBackendSharded},
	}
	if !testing.Short() {
		cases = append(cases,
			tc{"kill_recover", core.GraphBackendSharded},
			tc{"concept_drift", core.GraphBackendSharded},
			tc{"failover", core.GraphBackendSharded},
		)
	}
	for _, c := range cases {
		c := c
		t.Run(c.scenario+"/"+c.backend, func(t *testing.T) {
			sc, ok := byName[c.scenario]
			if !ok {
				t.Fatalf("scenario %q not bundled", c.scenario)
			}
			o := testOptions(t)
			o.GraphBackend = c.backend
			res, err := Run(sc, o)
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
			for _, v := range res.Violations {
				t.Errorf("violation: %s", v)
			}
			checked := false
			for _, iv := range res.Invariants {
				if iv.Name == InvBackendParity && iv.Checked {
					checked = true
				}
			}
			if !checked {
				t.Fatal("backend_parity invariant was not checked")
			}
		})
	}
}

// TestScenarioDetectsNondeterminism proves the harness is not vacuously
// green: a workload that violates the seeded-RNG rule (state leaking across
// regenerations) must be caught by the replay-determinism invariant and
// reported with the event index of the first divergence.
func TestScenarioDetectsNondeterminism(t *testing.T) {
	calls := 0
	leaky := Scenario{
		Name: "leaky_workload",
		Workload: func(rng *rand.Rand, p WorkloadParams) *Trace {
			tr := SmoothBaseline(rng, p)
			// Simulate hidden state the seed does not control (a global
			// counter, wall-clock, map iteration…): the second generation
			// of the "same" trace differs at one event.
			if calls++; calls > 1 && len(tr.Events) > 10 {
				tr.Events[10].Time += 1e-9
			}
			return tr
		},
	}
	res, err := Run(leaky, testOptions(t))
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, v := range res.Violations {
		if v.Invariant == InvReplayDeterism {
			found = true
			if v.EventIndex != 10 {
				t.Errorf("violation points at event %d, want 10: %s", v.EventIndex, v)
			}
		}
	}
	if !found {
		t.Fatalf("nondeterministic workload produced no replay_determinism violation: %+v", res.Invariants)
	}
}

// TestScenarioTraceDeterminism pins the generator-level contract directly:
// equal seeds yield bitwise-equal traces, different seeds do not.
func TestScenarioTraceDeterminism(t *testing.T) {
	o := testOptions(t)
	o.normalize()
	for _, sc := range Bundled() {
		a := sc.Workload(rand.New(rand.NewSource(o.Seed)), o.params())
		b := sc.Workload(rand.New(rand.NewSource(o.Seed)), o.params())
		a.Name, b.Name = sc.Name, sc.Name
		if vs := compareTraces(a, b, sc.Name, o.Seed); vs != nil {
			t.Errorf("%s: same-seed traces differ: %s", sc.Name, vs[0])
		}
		c := sc.Workload(rand.New(rand.NewSource(o.Seed+1)), o.params())
		c.Name = sc.Name
		if vs := compareTraces(a, c, sc.Name, o.Seed); vs == nil {
			t.Errorf("%s: different seeds produced identical traces", sc.Name)
		}
	}
}

// TestScenarioSaturationDropsDeterministically asserts the fault actually
// fires — load shedding must occur, be fully accounted for, and reproduce.
func TestScenarioSaturationDropsDeterministically(t *testing.T) {
	var sat Scenario
	for _, sc := range Bundled() {
		if sc.Saturate {
			sat = sc
		}
	}
	if sat.Name == "" {
		t.Fatal("no saturation scenario bundled")
	}
	res, err := Run(sat, testOptions(t))
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range res.Violations {
		t.Errorf("violation: %s", v)
	}
	if res.Dropped == 0 {
		t.Fatal("saturation scenario shed no events; the fault did not fire")
	}
	if res.Applied+res.Dropped != res.Events {
		t.Fatalf("conservation: applied %d + dropped %d != submitted %d", res.Applied, res.Dropped, res.Events)
	}
}

// TestScenarioChurnExercisesAdmission asserts the churn trace actually names
// IDs beyond the constructed node space, so all three paths must grow the
// stores (EnsureNodes / HTTP dynamic admission) to pass.
func TestScenarioChurnExercisesAdmission(t *testing.T) {
	o := testOptions(t)
	o.normalize()
	tr := NodeChurn(rand.New(rand.NewSource(o.Seed)), o.params())
	beyond := 0
	for _, ev := range tr.Events {
		if int(ev.Src) >= tr.NumNodes || int(ev.Dst) >= tr.NumNodes {
			beyond++
		}
		if int(ev.Src) >= tr.MaxNodes || int(ev.Dst) >= tr.MaxNodes {
			t.Fatalf("event names ID ≥ MaxNodes %d: %+v", tr.MaxNodes, ev)
		}
	}
	if beyond == 0 {
		t.Fatal("churn trace never leaves the constructed node space; admission untested")
	}
}

// TestScenarioOutOfOrderHasDisorder asserts the perturbation really produces
// inversions and duplicate timestamps — otherwise the §3.6 scenario
// degenerates to the smooth baseline.
func TestScenarioOutOfOrderHasDisorder(t *testing.T) {
	o := testOptions(t)
	o.normalize()
	tr := OutOfOrder(rand.New(rand.NewSource(o.Seed)), o.params())
	inversions, ties := 0, 0
	for i := 1; i < len(tr.Events); i++ {
		if tr.Events[i].Time < tr.Events[i-1].Time {
			inversions++
		}
		if tr.Events[i].Time == tr.Events[i-1].Time {
			ties++
		}
	}
	if inversions == 0 || ties == 0 {
		t.Fatalf("out_of_order trace has %d inversions and %d exact ties; want both > 0", inversions, ties)
	}
}

// TestScenarioFraudLabeled asserts the labeled scenario produces both
// classes and finite ranking metrics.
func TestScenarioFraudLabeled(t *testing.T) {
	var fraud Scenario
	for _, sc := range Bundled() {
		if sc.Labeled {
			fraud = sc
		}
	}
	if fraud.Name == "" {
		t.Fatal("no labeled scenario bundled")
	}
	res, err := Run(fraud, testOptions(t))
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range res.Violations {
		t.Errorf("violation: %s", v)
	}
	if res.AP == nil || res.AUC == nil {
		t.Fatalf("labeled scenario reported no metrics: AP=%v AUC=%v", res.AP, res.AUC)
	}
	if *res.AUC < 0 || *res.AUC > 1 || *res.AP < 0 || *res.AP > 1 {
		t.Fatalf("metrics out of range: AP=%v AUC=%v", *res.AP, *res.AUC)
	}
	// The supervised fraud head must actually separate the classes — the
	// injected feature signature is learnable, so a near-chance AUC means
	// the metric pipeline regressed (e.g. back to raw link scores, which
	// score ring edges as *established pairs*). Deterministic at this seed;
	// observed ≈0.82 (short) / ≈0.94 (long).
	if *res.AUC < 0.7 {
		t.Fatalf("fraud head AUC %.3f ≤ 0.7: labeled metric is uninformative", *res.AUC)
	}
}

// TestScenarioKillRecoverChecked asserts the durability scenario actually
// exercises crash recovery: the invariant is checked (all three crash-tail
// modes), it holds, and the WAL replay re-applied a nonzero number of
// events past the checkpoint watermark.
func TestScenarioKillRecoverChecked(t *testing.T) {
	var kr Scenario
	for _, sc := range Bundled() {
		if sc.KillRecover {
			kr = sc
		}
	}
	if kr.Name == "" {
		t.Fatal("no kill-and-recover scenario bundled")
	}
	res, err := Run(kr, testOptions(t))
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range res.Violations {
		t.Errorf("violation: %s", v)
	}
	found := false
	for _, iv := range res.Invariants {
		if iv.Name == InvKillRecover && iv.Checked {
			found = true
		}
	}
	if !found {
		t.Fatal("kill_recover invariant was not checked")
	}
	if res.RecoveredEvents == 0 {
		t.Fatal("WAL replay recovered no events; the crash landed on the checkpoint watermark and the fault did not bite")
	}
}

// TestScenarioCheckpointReplayChecked asserts the mid-stream rewind
// invariant is actually exercised (not skipped) by its scenario.
func TestScenarioCheckpointReplayChecked(t *testing.T) {
	var cp Scenario
	for _, sc := range Bundled() {
		if sc.MidCheckpoint {
			cp = sc
		}
	}
	if cp.Name == "" {
		t.Fatal("no checkpoint scenario bundled")
	}
	res, err := Run(cp, testOptions(t))
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, iv := range res.Invariants {
		if iv.Name == InvCheckpointReplay && iv.Checked {
			found = true
			if !iv.Passed {
				t.Errorf("checkpoint replay failed: %v", res.Violations)
			}
		}
	}
	if !found {
		t.Fatal("checkpoint_replay invariant was not checked")
	}
}

// TestScenarioFailoverChecked asserts the warm-standby scenario actually
// exercises promotion: the invariant is checked (all five failure arms),
// it holds, and the clean arm's promotion caught up on a nonzero number of
// lagging shipped events.
func TestScenarioFailoverChecked(t *testing.T) {
	var fo Scenario
	for _, sc := range Bundled() {
		if sc.Failover {
			fo = sc
		}
	}
	if fo.Name == "" {
		t.Fatal("no failover scenario bundled")
	}
	res, err := Run(fo, testOptions(t))
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range res.Violations {
		t.Errorf("violation: %s", v)
	}
	found := false
	for _, iv := range res.Invariants {
		if iv.Name == InvFailover && iv.Checked {
			found = true
		}
	}
	if !found {
		t.Fatal("failover invariant was not checked")
	}
	if res.TakeoverEvents == 0 {
		t.Fatal("promotion caught up on no events; the follower was never behind and the lag window did not bite")
	}
	if res.PromotedBatch == 0 {
		t.Fatal("takeover landed at batch 0; the leader crashed before serving anything")
	}
}

// TestScenarioFailoverSeeds runs the failover scenario across several seeds
// so the seeded geometry (pause, crash, fail, follower-crash points) moves
// around — including across WAL segment rotations and mid-stream
// truncation points.
func TestScenarioFailoverSeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-seed failover sweep skipped in -short")
	}
	var fo Scenario
	for _, sc := range Bundled() {
		if sc.Failover {
			fo = sc
		}
	}
	for _, seed := range []int64{2, 5, 11} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			o := testOptions(t)
			o.Seed = seed
			res, err := Run(fo, o)
			if err != nil {
				t.Fatal(err)
			}
			for _, v := range res.Violations {
				t.Errorf("violation: %s", v)
			}
		})
	}
}
