package scenario

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"time"

	"apan/internal/async"
	"apan/internal/core"
	"apan/internal/dataset"
	"apan/internal/eval"
	"apan/internal/serve"
	"apan/internal/tgraph"
)

// runOutcome is what every driver reports back to the invariant layer: the
// per-batch scores (nil for dropped batches), the per-batch drop flags, the
// final runtime digest, and the model for post-run store inspection.
type runOutcome struct {
	scores    [][]float32
	dropped   []bool
	digest    uint64
	applied   int // events inserted into the temporal graph during the streamed part
	submitted int // events offered to the system
	hist      eval.LatencyHist
	maxDepth  int
	model     *core.Model
	samples   []labeledSample // labeled-event samples for the fraud head (direct path only)
}

func (r *runOutcome) droppedEvents(batches [][]tgraph.Event) int {
	var n int
	for i, d := range r.dropped {
		if d {
			n += len(batches[i])
		}
	}
	return n
}

// newModel builds one path's model. Every path of a scenario uses the same
// config and seed, so parameters, dropout draws and negative samples are
// identical across paths — any score divergence is the serving layer's
// fault, not initialization noise.
func newModel(tr *Trace, o RunOptions) (*core.Model, error) {
	return core.New(core.Config{
		NumNodes: tr.NumNodes, EdgeDim: tr.EdgeDim,
		Slots: 6, Neighbors: 5, Hops: 2, Heads: 2, Hidden: 32,
		BatchSize: o.BatchSize, Seed: o.Seed + 7, Shards: 8,
		GraphBackend:  o.GraphBackend,
		EvictMaxNodes: o.EvictMaxNodes,
		Quantize:      o.Quantize,
	})
}

// prepModel optionally trains on the trace prefix (identically per path) and
// returns the stream remainder. Training warms parameters so labeled
// scenarios report meaningful AP/AUC instead of coin flips.
func prepModel(m *core.Model, tr *Trace, o RunOptions, trainFrac float64) []tgraph.Event {
	stream := tr.Events
	if trainFrac <= 0 {
		return stream
	}
	cut := int(trainFrac * float64(len(stream)))
	if cut == 0 {
		return stream
	}
	m.EnsureNodes(tr.MaxNodes)
	ns := dataset.NewNegSampler(tr.MaxNodes)
	m.TrainEpoch(stream[:cut], ns)
	return stream[cut:]
}

// splitBatches cuts the stream into arrival-order batches.
func splitBatches(events []tgraph.Event, size int) [][]tgraph.Event {
	var out [][]tgraph.Event
	for lo := 0; lo < len(events); lo += size {
		hi := lo + size
		if hi > len(events) {
			hi = len(events)
		}
		out = append(out, events[lo:hi])
	}
	return out
}

// ensureBatch grows the node space to cover the batch, the explicit
// counterpart of the HTTP layer's dynamic admission.
func ensureBatch(ensure func(int), batch []tgraph.Event) {
	var maxID tgraph.NodeID = -1
	for _, ev := range batch {
		if ev.Src > maxID {
			maxID = ev.Src
		}
		if ev.Dst > maxID {
			maxID = ev.Dst
		}
	}
	ensure(int(maxID) + 1)
}

// runDirect drives the stream through core.Model with no serving layer:
// InferBatch then ApplyInference, strictly sequenced. This is the reference
// semantics every other path's scores are compared against, and the
// deterministic replay path. With collectSamples it additionally gathers
// labeled-event embeddings for the fraud head (a side read via Embed — no
// state effects, so scores are identical either way).
func runDirect(tr *Trace, o RunOptions, trainFrac float64, collectSamples bool) (*runOutcome, error) {
	m, err := newModel(tr, o)
	if err != nil {
		return nil, err
	}
	stream := prepModel(m, tr, o, trainFrac)
	batches := splitBatches(stream, o.BatchSize)
	out := &runOutcome{model: m, submitted: len(stream), dropped: make([]bool, len(batches))}
	base := m.DB().G.NumEvents()
	for _, b := range batches {
		ensureBatch(m.EnsureNodes, b)
		start := time.Now()
		inf := m.InferBatch(b)
		out.hist.Add(time.Since(start))
		out.scores = append(out.scores, append([]float32(nil), inf.Scores...))
		m.ApplyInference(inf)
		inf.Release()
		if collectSamples {
			out.samples = collectLabeled(m, b, out.samples)
		}
	}
	out.applied = m.DB().G.NumEvents() - base
	out.digest = m.RuntimeDigest()
	return out, nil
}

// runPipeline drives the stream through async.Pipeline. With drainPerBatch
// the (infer, apply) sequencing matches runDirect exactly, so scores must be
// bitwise identical; without it (slowApply > 0), scoring overlaps a delayed
// consumer — real backpressure, observed rather than asserted.
func runPipeline(tr *Trace, o RunOptions, trainFrac float64, drainPerBatch bool, slowApply time.Duration) (*runOutcome, error) {
	m, err := newModel(tr, o)
	if err != nil {
		return nil, err
	}
	stream := prepModel(m, tr, o, trainFrac)
	batches := splitBatches(stream, o.BatchSize)
	opts := []async.Option{async.WithQueueCap(o.QueueCap), async.WithWorkers(1)}
	if slowApply > 0 {
		opts = append(opts, async.WithBeforeApply(func([]tgraph.Event) { time.Sleep(slowApply) }))
	}
	pipe := async.New(m, opts...)
	out := &runOutcome{model: m, submitted: len(stream), dropped: make([]bool, len(batches))}
	base := m.DB().G.NumEvents()
	ctx := context.Background()
	for _, b := range batches {
		ensureBatch(pipe.EnsureNodes, b)
		scores, lat, err := pipe.Submit(ctx, b)
		if err != nil {
			return nil, fmt.Errorf("scenario: pipeline submit: %w", err)
		}
		out.hist.Add(lat)
		out.scores = append(out.scores, scores)
		if drainPerBatch {
			if err := pipe.Drain(ctx); err != nil {
				return nil, fmt.Errorf("scenario: pipeline drain: %w", err)
			}
		}
	}
	if err := pipe.Drain(ctx); err != nil {
		return nil, fmt.Errorf("scenario: pipeline drain: %w", err)
	}
	out.maxDepth = pipe.Stats().MaxQueueDepth
	if err := pipe.Shutdown(ctx); err != nil {
		return nil, fmt.Errorf("scenario: pipeline shutdown: %w", err)
	}
	out.applied = m.DB().G.NumEvents() - base
	out.digest = m.RuntimeDigest()
	return out, nil
}

// runHTTP drives the stream through the full serving surface: JSON batches
// POSTed to /v1/score on an httptest server over a pipeline, with dynamic
// node admission handled by the server (Options.MaxNodes), draining between
// batches for direct-path sequencing. Score parity across this path proves
// the wire format round-trips float32 scores bitwise.
func runHTTP(tr *Trace, o RunOptions, trainFrac float64) (*runOutcome, error) {
	m, err := newModel(tr, o)
	if err != nil {
		return nil, err
	}
	stream := prepModel(m, tr, o, trainFrac)
	batches := splitBatches(stream, o.BatchSize)
	pipe := async.New(m, async.WithQueueCap(o.QueueCap), async.WithWorkers(1))
	srv := serve.New(pipe, serve.Options{MaxNodes: tr.MaxNodes})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	defer srv.Close()
	ctx := context.Background()

	out := &runOutcome{model: m, submitted: len(stream), dropped: make([]bool, len(batches))}
	base := m.DB().G.NumEvents()
	for _, b := range batches {
		scores, lat, err := postScore(ts.URL, b)
		if err != nil {
			return nil, err
		}
		out.hist.Add(lat)
		out.scores = append(out.scores, scores)
		if err := pipe.Drain(ctx); err != nil {
			return nil, fmt.Errorf("scenario: http drain: %w", err)
		}
	}
	out.maxDepth = pipe.Stats().MaxQueueDepth
	if err := pipe.Shutdown(ctx); err != nil {
		return nil, fmt.Errorf("scenario: http shutdown: %w", err)
	}
	out.applied = m.DB().G.NumEvents() - base
	out.digest = m.RuntimeDigest()
	return out, nil
}

func postScore(baseURL string, batch []tgraph.Event) ([]float32, time.Duration, error) {
	req := struct {
		Events []serve.EventJSON `json:"events"`
	}{Events: make([]serve.EventJSON, len(batch))}
	for i, ev := range batch {
		req.Events[i] = serve.EventJSON{Src: ev.Src, Dst: ev.Dst, Time: ev.Time, Feat: ev.Feat}
	}
	body, err := json.Marshal(req)
	if err != nil {
		return nil, 0, err
	}
	resp, err := http.Post(baseURL+"/v1/score", "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, 0, fmt.Errorf("scenario: POST /v1/score: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var eb serve.ErrorBody
		_ = json.NewDecoder(resp.Body).Decode(&eb)
		return nil, 0, fmt.Errorf("scenario: POST /v1/score: HTTP %d %s: %s", resp.StatusCode, eb.Error.Code, eb.Error.Message)
	}
	var sr serve.ScoreResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		return nil, 0, err
	}
	return sr.Scores, time.Duration(sr.SyncMicros) * time.Microsecond, nil
}

// runSaturated executes the deterministic queue-saturation protocol:
//
//  1. the single propagation worker parks on a gate the moment it picks up
//     the first batch (WithBeforeApply), so the queue's free capacity is
//     known exactly;
//  2. the next QueueCap TrySubmits fill the queue and must succeed;
//  3. the following targetDrops TrySubmits must shed with ErrQueueFull —
//     scored but never applied;
//  4. the gate opens, the backlog drains, and the remaining batches flow
//     through blocking Submits.
//
// Because drops are gated on channels, not timing, the drop pattern, all
// surviving scores and the final digest are a pure function of (seed,
// QueueCap): the harness runs the protocol twice and compares bitwise.
func runSaturated(tr *Trace, o RunOptions) (*runOutcome, error) {
	m, err := newModel(tr, o)
	if err != nil {
		return nil, err
	}
	stream := tr.Events
	batches := splitBatches(stream, o.BatchSize)
	if len(batches) < o.QueueCap+3 {
		return nil, fmt.Errorf("scenario: saturation needs ≥ %d batches, have %d (raise Events or lower BatchSize)", o.QueueCap+3, len(batches))
	}
	targetDrops := (len(batches) - 1 - o.QueueCap) / 3
	if targetDrops < 1 {
		targetDrops = 1
	}

	gate := make(chan struct{})
	picked := make(chan struct{}, 1)
	var once sync.Once
	pipe := async.New(m,
		async.WithQueueCap(o.QueueCap), async.WithWorkers(1),
		async.WithBeforeApply(func([]tgraph.Event) {
			once.Do(func() { picked <- struct{}{} })
			<-gate
		}))

	out := &runOutcome{model: m, submitted: len(stream), dropped: make([]bool, len(batches))}
	base := m.DB().G.NumEvents()
	ctx := context.Background()
	released := false
	drops := 0
	for i, b := range batches {
		ensureBatch(pipe.EnsureNodes, b)
		var scores []float32
		var lat time.Duration
		if released {
			// Post-release, sequence (infer, apply) like the direct path:
			// without the drain, the next batch's scoring would race the
			// previous batch's apply and the replay comparison would observe
			// scheduler timing, not the protocol.
			scores, lat, err = pipe.Submit(ctx, b)
			if err == nil {
				err = pipe.Drain(ctx)
			}
		} else {
			scores, lat, err = pipe.TrySubmit(b)
		}
		switch {
		case errors.Is(err, async.ErrQueueFull):
			out.dropped[i] = true
			drops++
		case err != nil:
			return nil, fmt.Errorf("scenario: saturation submit %d: %w", i, err)
		}
		out.hist.Add(lat)
		out.scores = append(out.scores, scores)
		if i == 0 {
			// The worker holds batch 0 parked on the gate; the queue's free
			// capacity is now exactly QueueCap, deterministically.
			<-picked
		}
		if !released && drops >= targetDrops {
			close(gate)
			released = true
			if err := pipe.Drain(ctx); err != nil {
				return nil, fmt.Errorf("scenario: saturation drain: %w", err)
			}
		}
	}
	if !released {
		close(gate)
	}
	if err := pipe.Drain(ctx); err != nil {
		return nil, fmt.Errorf("scenario: saturation drain: %w", err)
	}
	out.maxDepth = pipe.Stats().MaxQueueDepth
	if err := pipe.Shutdown(ctx); err != nil {
		return nil, fmt.Errorf("scenario: saturation shutdown: %w", err)
	}
	out.applied = m.DB().G.NumEvents() - base
	out.digest = m.RuntimeDigest()
	return out, nil
}

// runCheckpointed streams the first half directly, snapshots mid-stream,
// finishes the stream, then restores and replays the tail. It returns both
// tail outcomes plus the tail batches it compared over (so the caller maps
// violations to event indices of the same stream slicing); the invariant
// layer asserts the two tails are bitwise identical —
// SnapshotRuntime/RestoreRuntime under load must be a perfect rewind.
func runCheckpointed(tr *Trace, o RunOptions, trainFrac float64) (first, replay *runOutcome, tail [][]tgraph.Event, restoreOK bool, err error) {
	m, merr := newModel(tr, o)
	if merr != nil {
		return nil, nil, nil, false, merr
	}
	stream := prepModel(m, tr, o, trainFrac)
	batches := splitBatches(stream, o.BatchSize)
	half := len(batches) / 2
	runTail := func(tail [][]tgraph.Event) *runOutcome {
		out := &runOutcome{model: m, dropped: make([]bool, len(tail))}
		base := m.DB().G.NumEvents()
		for _, b := range tail {
			ensureBatch(m.EnsureNodes, b)
			inf := m.InferBatch(b)
			out.scores = append(out.scores, append([]float32(nil), inf.Scores...))
			m.ApplyInference(inf)
			inf.Release()
			out.submitted += len(b)
		}
		out.applied = m.DB().G.NumEvents() - base
		out.digest = m.RuntimeDigest()
		return out
	}
	runTail(batches[:half]) // first half: establish mid-stream state
	snap := m.SnapshotRuntime()
	digestAtSnap := m.RuntimeDigest()

	tail = batches[half:]
	first = runTail(tail)
	m.RestoreRuntime(snap)
	restoreOK = m.RuntimeDigest() == digestAtSnap
	replay = runTail(tail)
	return first, replay, tail, restoreOK, nil
}
