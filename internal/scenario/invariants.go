package scenario

import (
	"fmt"
	"math"

	"apan/internal/core"
	"apan/internal/tgraph"
)

// Violation is a minimal reproducible divergence report: re-running the
// named scenario with Seed reproduces it, and EventIndex locates the first
// diverging event in the streamed portion of the trace (-1 when the
// violation is not tied to a single event, e.g. a digest mismatch).
type Violation struct {
	Invariant  string `json:"invariant"`
	Scenario   string `json:"scenario"`
	Seed       int64  `json:"seed"`
	EventIndex int    `json:"event_index"`
	Detail     string `json:"detail"`
}

func (v Violation) String() string {
	return fmt.Sprintf("%s/%s: seed=%d event=%d: %s", v.Scenario, v.Invariant, v.Seed, v.EventIndex, v.Detail)
}

// InvariantResult records whether one invariant applied to a scenario and
// whether it held.
type InvariantResult struct {
	Name    string `json:"name"`
	Checked bool   `json:"checked"`
	Passed  bool   `json:"passed"`
}

// Invariant names, as they appear in results and reports.
const (
	InvScoreParity      = "score_parity"
	InvMailboxMonotonic = "mailbox_monotonic"
	InvDropAccounting   = "drop_accounting"
	InvReplayDeterism   = "replay_determinism"
	InvCheckpointReplay = "checkpoint_replay"
	// InvNoTornParams: every served score is attributable to exactly one
	// published parameter version, and published sets stay bitwise intact.
	InvNoTornParams = "no_torn_params"
	// InvFrozenDeterminism: a drift run with the trainer frozen is bitwise
	// deterministic (scores, negative twins and runtime digest).
	InvFrozenDeterminism = "frozen_determinism"
	// InvOnlineAdaptation: after the concept shift, the online-trained run's
	// holdout AP is at least the frozen-parameter run's.
	InvOnlineAdaptation = "online_adaptation"
	// InvKillRecover: after a process kill — clean or mid-record torn write —
	// checkpoint + WAL replay-to-watermark reconstructs a runtime bitwise
	// identical to an uninterrupted run, at the recovery point and at end of
	// stream.
	InvKillRecover = "kill_recover"
	// InvBackendParity: the same direct run on every other graph backend
	// (flat, sharded, remote-sim) reproduces scores and runtime digest
	// bitwise per (seed, scenario).
	InvBackendParity = "backend_parity"
	// InvTenantIsolation: under a flash-crowd aggressor tenant, the victim
	// tenant loses nothing (zero drops, bounded sync p99) while the
	// aggressor is shed at its event-time rate gate — and the whole
	// protocol replays bitwise per (seed, contract).
	InvTenantIsolation = "tenant_isolation"
	// InvTenantAccounting: per-tenant conservation after the final drain —
	// every submission that entered a tenant's ledger is applied or
	// dropped (submitted = applied + dropped), with empty queues.
	InvTenantAccounting = "tenant_accounting"
	// InvEvictionBounded: under a binding cold-state budget, the warm set
	// never exceeds the budget, evicting runs are bitwise deterministic
	// (scores and digest), and the labeled AP stays within a fixed loss
	// bound of the unbounded-memory reference.
	InvEvictionBounded = "eviction_bounded"
	// InvQuantizedDrift: int8-quantized serving (Config.Quantize) must be
	// bitwise deterministic run-to-run (scores and digest) and its labeled AP
	// must stay within maxQuantAPLoss of the float32 reference run.
	InvQuantizedDrift = "quantized_drift_bounded"
	// InvFailover: a log-shipped warm-standby follower, promoted after the
	// leader dies — with clean, torn, fsync-latched and follower-crash
	// failure arms — lands on a batch boundary bitwise identical
	// (RuntimeDigest) to the uninterrupted run, serves the rest of the
	// stream to a bitwise end-of-stream digest, and fences double promotion.
	InvFailover = "failover"
)

// compareScores checks bitwise float32 equality of two per-batch score sets
// and reports the first diverging event. batches supplies the event counts
// that map (batch, offset) back to a global stream index. Dropped batches
// (nil scores) must be dropped in both runs to compare equal.
func compareScores(inv, scen string, seed int64, batches [][]tgraph.Event, ref, got [][]float32, pathA, pathB string) []Violation {
	if len(ref) != len(got) {
		return []Violation{{Invariant: inv, Scenario: scen, Seed: seed, EventIndex: -1,
			Detail: fmt.Sprintf("%s produced %d batches, %s %d", pathA, len(ref), pathB, len(got))}}
	}
	idx := 0
	for b := range ref {
		if (ref[b] == nil) != (got[b] == nil) {
			return []Violation{{Invariant: inv, Scenario: scen, Seed: seed, EventIndex: idx,
				Detail: fmt.Sprintf("batch %d: %s dropped=%v, %s dropped=%v", b, pathA, ref[b] == nil, pathB, got[b] == nil)}}
		}
		if ref[b] != nil && len(ref[b]) != len(got[b]) {
			return []Violation{{Invariant: inv, Scenario: scen, Seed: seed, EventIndex: idx,
				Detail: fmt.Sprintf("batch %d: %s scored %d events, %s %d", b, pathA, len(ref[b]), pathB, len(got[b]))}}
		}
		for i := range ref[b] {
			if math.Float32bits(ref[b][i]) != math.Float32bits(got[b][i]) {
				return []Violation{{Invariant: inv, Scenario: scen, Seed: seed, EventIndex: idx + i,
					Detail: fmt.Sprintf("%s score %v != %s score %v (bits %08x vs %08x)",
						pathA, ref[b][i], pathB, got[b][i],
						math.Float32bits(ref[b][i]), math.Float32bits(got[b][i]))}}
			}
		}
		idx += len(batches[b])
	}
	return nil
}

// checkMailboxes asserts the §3.6 contract on the final store: every node's
// readout is sorted by non-decreasing timestamp, holds at most Slots mails,
// and no timestamp exceeds the trace horizon (a smeared write or torn
// delivery would surface as a wild timestamp).
func checkMailboxes(m *core.Model, scen string, seed int64, maxTime float64) []Violation {
	mbox := m.Mailbox()
	slots, dim := mbox.Slots(), mbox.Dim()
	mails := make([]float32, slots*dim)
	times := make([]float64, slots)
	var vs []Violation
	for n := 0; n < m.NumNodes(); n++ {
		c := mbox.ReadSorted(tgraph.NodeID(n), mails, times)
		if c > slots {
			vs = append(vs, Violation{Invariant: InvMailboxMonotonic, Scenario: scen, Seed: seed, EventIndex: -1,
				Detail: fmt.Sprintf("node %d holds %d mails, capacity %d", n, c, slots)})
			continue
		}
		prev := math.Inf(-1)
		for r := 0; r < c; r++ {
			if times[r] < prev {
				vs = append(vs, Violation{Invariant: InvMailboxMonotonic, Scenario: scen, Seed: seed, EventIndex: -1,
					Detail: fmt.Sprintf("node %d: mailbox readout not time-sorted: slot %d has ts %g after %g", n, r, times[r], prev)})
				break
			}
			if times[r] > maxTime {
				vs = append(vs, Violation{Invariant: InvMailboxMonotonic, Scenario: scen, Seed: seed, EventIndex: -1,
					Detail: fmt.Sprintf("node %d: mail ts %g exceeds trace horizon %g", n, times[r], maxTime)})
				break
			}
			prev = times[r]
		}
	}
	return vs
}

// checkConservation asserts drop accounting: every event offered to the
// system is either applied to the temporal graph or flagged dropped —
// submitted = applied + dropped, with no silent loss or duplication.
func checkConservation(out *runOutcome, batches [][]tgraph.Event, scen string, seed int64) []Violation {
	dropped := out.droppedEvents(batches)
	if out.applied+dropped != out.submitted {
		return []Violation{{Invariant: InvDropAccounting, Scenario: scen, Seed: seed, EventIndex: -1,
			Detail: fmt.Sprintf("submitted %d events, applied %d + dropped %d = %d",
				out.submitted, out.applied, dropped, out.applied+dropped)}}
	}
	return nil
}

// compareTraces asserts the workload generator itself is deterministic:
// bitwise-equal events from equal seeds.
func compareTraces(a, b *Trace, scen string, seed int64) []Violation {
	mk := func(i int, detail string) []Violation {
		return []Violation{{Invariant: InvReplayDeterism, Scenario: scen, Seed: seed, EventIndex: i, Detail: detail}}
	}
	if len(a.Events) != len(b.Events) {
		return mk(-1, fmt.Sprintf("regenerated trace has %d events, first run %d", len(b.Events), len(a.Events)))
	}
	if a.NumNodes != b.NumNodes || a.MaxNodes != b.MaxNodes {
		return mk(-1, fmt.Sprintf("regenerated trace node space %d/%d, first run %d/%d", b.NumNodes, b.MaxNodes, a.NumNodes, a.MaxNodes))
	}
	for i := range a.Events {
		x, y := &a.Events[i], &b.Events[i]
		if x.Src != y.Src || x.Dst != y.Dst || x.Label != y.Label ||
			math.Float64bits(x.Time) != math.Float64bits(y.Time) || len(x.Feat) != len(y.Feat) {
			return mk(i, fmt.Sprintf("event %d differs across regenerations: %v vs %v", i, x, y))
		}
		for j := range x.Feat {
			if math.Float32bits(x.Feat[j]) != math.Float32bits(y.Feat[j]) {
				return mk(i, fmt.Sprintf("event %d feature %d differs across regenerations", i, j))
			}
		}
	}
	return nil
}

// scoreDrift returns the maximum absolute score difference between a
// reference run and another run over the batches both scored — the
// bounded-staleness metric for timing-dependent scenarios where bitwise
// parity is not asserted.
func scoreDrift(ref, got [][]float32) float64 {
	var max float64
	for b := range ref {
		if b >= len(got) || ref[b] == nil || got[b] == nil {
			continue
		}
		for i := range ref[b] {
			if i >= len(got[b]) {
				break
			}
			if d := math.Abs(float64(ref[b][i]) - float64(got[b][i])); d > max {
				max = d
			}
		}
	}
	return max
}
