package scenario

import (
	"fmt"
	"math"
	"math/rand"
)

// maxQuantAPLoss bounds the labeled-AP cost of int8-quantized serving
// against the float32 reference run. Quantization only rounds the dense-GEMM
// operands (per-channel weights to 8 bits, activations per row), so unlike
// eviction — which discards state outright — the tolerated loss is tight.
const maxQuantAPLoss = 0.02

// quantOptions fixes the quantized-drift protocol sizing regardless of the
// harness run's own. The bound above is 4–10× tighter than the measured
// quantization effect at this sizing, but at the few-hundred-event CI sizing
// the fraud head's test sample is so small that its AP estimate moves by
// ±0.05 when the serving trajectory shifts at all — the check would measure
// sampling noise, not quantization. 2000 events keeps the labeled test set
// large enough that a violation means the int8 path actually degraded.
func quantOptions(o RunOptions) RunOptions {
	o.Events = 2000
	o.BatchSize = 40
	o.Nodes = 96
	o.MaxNodes = 384
	o.EvictMaxNodes = 0
	return o
}

// checkQuantizedDrift generates a dedicated trace at the protocol sizing and
// drives the direct path over it three times — once float32, twice with
// Config.Quantize — asserting: both quantized runs are bitwise identical
// (scores and digest — the int8 GEMM is exact integer arithmetic, so the asm
// and Go kernels cannot diverge either), and the labeled AP stays within
// maxQuantAPLoss of the float32 reference. Returns the violations plus the
// float32 and quantized runs for the report's metrics.
func checkQuantizedDrift(o RunOptions, sc Scenario) ([]Violation, *runOutcome, *runOutcome, error) {
	qo := quantOptions(o)
	qo.normalize()
	tr := sc.Workload(rand.New(rand.NewSource(qo.Seed)), qo.params())
	tr.Name = sc.Name

	ref, err := runDirect(tr, qo, sc.TrainFrac, true)
	if err != nil {
		return nil, nil, nil, err
	}
	qopt := qo
	qopt.Quantize = true
	qA, err := runDirect(tr, qopt, sc.TrainFrac, true)
	if err != nil {
		return nil, nil, nil, err
	}
	qB, err := runDirect(tr, qopt, sc.TrainFrac, false)
	if err != nil {
		return nil, nil, nil, err
	}

	batches := splitBatches(tr.Events[len(tr.Events)-ref.submitted:], qo.BatchSize)
	vs := compareScores(InvQuantizedDrift, sc.Name, qo.Seed, batches, qA.scores, qB.scores, "quant1", "quant2")
	if qA.digest != qB.digest {
		vs = append(vs, Violation{Invariant: InvQuantizedDrift, Scenario: sc.Name, Seed: qo.Seed, EventIndex: -1,
			Detail: fmt.Sprintf("quantized runs diverged: digest %016x vs %016x", qA.digest, qB.digest)})
	}
	refAP := headAP(ref.samples, qo.Seed)
	qAP := headAP(qA.samples, qo.Seed)
	switch {
	case math.IsNaN(refAP) || math.IsNaN(qAP):
		vs = append(vs, Violation{Invariant: InvQuantizedDrift, Scenario: sc.Name, Seed: qo.Seed, EventIndex: -1,
			Detail: fmt.Sprintf("labeled AP not computable (ref %v, quantized %v)", refAP, qAP)})
	case qAP < refAP-maxQuantAPLoss:
		vs = append(vs, Violation{Invariant: InvQuantizedDrift, Scenario: sc.Name, Seed: qo.Seed, EventIndex: -1,
			Detail: fmt.Sprintf("quantized AP %.4f fell more than %.2f below float32 reference AP %.4f", qAP, maxQuantAPLoss, refAP)})
	}
	return vs, ref, qA, nil
}
