package scenario

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"sync/atomic"

	"apan/internal/core"
	"apan/internal/replica"
	"apan/internal/tgraph"
	"apan/internal/wal"
)

// failMode selects the failure the failover arm injects before promotion.
type failMode int

const (
	// failClean: the leader dies between record writes; the shipped log ends
	// on a record boundary and the promoted follower resumes at the crash
	// batch.
	failClean failMode = iota
	// failTornTruncate: the leader's last shipped record arrives half-torn
	// (a ship cut mid-frame); promotion truncates it and lands one earlier.
	failTornTruncate
	// failTornGarbage: the shipped tail carries garbage bytes that fail to
	// frame; promotion treats it like a torn write.
	failTornGarbage
	// failFsyncErr: the leader's storage starts failing fsync mid-stream.
	// The WAL latches the error and freezes the log at the failing batch;
	// the leader keeps serving (best-effort durability, bitwise-correct
	// scores) and the follower can only ever take over at the frozen
	// boundary.
	failFsyncErr
	// failFollowerCrash: the follower itself dies mid-replay and is rebuilt
	// from the base checkpoint; replays must stay exactly-once.
	failFollowerCrash
)

func (f failMode) String() string {
	switch f {
	case failTornTruncate:
		return "torn_truncate"
	case failTornGarbage:
		return "torn_garbage"
	case failFsyncErr:
		return "fsync_err"
	case failFollowerCrash:
		return "follower_crash"
	default:
		return "clean"
	}
}

// failoverPlan fixes the failure geometry as a pure function of the seed,
// so violations reproduce as (seed, event index).
type failoverPlan struct {
	pauseBatch  int // follower stops polling after this many batches (lag window)
	crashBatch  int // leader dies after this many batches
	failBatch   int // fsync_err arm: the batch whose fsync fails (pause < fail ≤ crash)
	fcrashBatch int // follower_crash arm: follower dies after replaying this many batches
}

func planFailover(seed int64, numBatches int) (failoverPlan, error) {
	if numBatches < 4 {
		return failoverPlan{}, fmt.Errorf("scenario: failover needs ≥ 4 batches, have %d (raise Events or lower BatchSize)", numBatches)
	}
	rng := rand.New(rand.NewSource(seed + 43))
	pause := numBatches/4 + rng.Intn(numBatches/4+1)  // in [n/4, n/2]
	crash := pause + 1 + rng.Intn(numBatches-1-pause) // in (pause, n-1]
	fail := pause + 1 + rng.Intn(crash-pause)         // in (pause, crash]
	fcrash := 1 + rng.Intn(pause)                     // in [1, pause]
	return failoverPlan{pauseBatch: pause, crashBatch: crash, failBatch: fail, fcrashBatch: fcrash}, nil
}

// runFailover is the warm-standby workload: a leader streams with a WAL
// attached and ships the log (tail mode) to a follower directory after
// every batch; the follower replays continuously through a seeded pause
// point, then lags; the leader checkpoints and truncates mid-stream, keeps
// serving, and dies at a seeded batch. The follower is promoted and must be
// *bitwise* identical (RuntimeDigest) to the uninterrupted reference at the
// takeover watermark, then serve the rest of the stream to a bitwise
// end-of-stream digest. Five failure arms: clean crash, torn shipped tail
// (truncate + garbage), latched fsync errors on the leader's storage, and a
// follower crash mid-replay with rebuild from the base checkpoint.
// Double promotion must be fenced, and so must the ship stream's disk
// writes: every arm ships through the replica's fenced dest and proves a
// stale leader's re-ship is refused after takeover. Returns the
// violations plus the clean arm's (takeover batch, catch-up events) for
// the report.
func runFailover(tr *Trace, o RunOptions, trainFrac float64) ([]Violation, int, int, error) {
	ref, err := newModel(tr, o)
	if err != nil {
		return nil, 0, 0, err
	}
	stream := prepModel(ref, tr, o, trainFrac)
	batches := splitBatches(stream, o.BatchSize)
	plan, err := planFailover(o.Seed, len(batches))
	if err != nil {
		return nil, 0, 0, err
	}

	base := ref.DB().G.NumEvents()
	digests := make([]uint64, 0, len(batches)+1)
	digests = append(digests, ref.RuntimeDigest())
	offsets := make([]int, 0, len(batches)+1)
	offsets = append(offsets, 0)
	refScores := make([][]float32, 0, len(batches))
	for _, b := range batches {
		ensureBatch(ref.EnsureNodes, b)
		inf := ref.InferBatch(b)
		refScores = append(refScores, append([]float32(nil), inf.Scores...))
		ref.ApplyInference(inf)
		inf.Release()
		digests = append(digests, ref.RuntimeDigest())
		offsets = append(offsets, offsets[len(offsets)-1]+len(b))
	}

	arm := failoverArm{
		tr: tr, o: o, trainFrac: trainFrac, batches: batches, plan: plan,
		base: base, digests: digests, offsets: offsets, refScores: refScores,
	}
	var vs []Violation
	var promotedBatch, takeover int
	for _, mode := range []failMode{failClean, failTornTruncate, failTornGarbage, failFsyncErr, failFollowerCrash} {
		mvs, pb, tk, err := arm.run(mode)
		if err != nil {
			return nil, 0, 0, err
		}
		vs = append(vs, mvs...)
		if mode == failClean {
			promotedBatch, takeover = pb, tk
		}
	}
	return vs, promotedBatch, takeover, nil
}

type failoverArm struct {
	tr        *Trace
	o         RunOptions
	trainFrac float64
	batches   [][]tgraph.Event
	plan      failoverPlan
	base      int
	digests   []uint64
	offsets   []int
	refScores [][]float32
}

func (a *failoverArm) violation(mode failMode, eventIndex int, format string, args ...any) Violation {
	return Violation{Invariant: InvFailover, Scenario: a.tr.Name, Seed: a.o.Seed, EventIndex: eventIndex,
		Detail: fmt.Sprintf("[%s pause_batch=%d crash_batch=%d fail_batch=%d fcrash_batch=%d] %s",
			mode, a.plan.pauseBatch, a.plan.crashBatch, a.plan.failBatch, a.plan.fcrashBatch,
			fmt.Sprintf(format, args...))}
}

// run executes one failure mode end to end: leader + shipper + follower,
// seeded failure, promotion, and the bitwise comparison against the
// uninterrupted reference. Returns (violations, takeover batch, catch-up
// events replayed during promotion).
func (a *failoverArm) run(mode failMode) ([]Violation, int, int, error) {
	dir, err := os.MkdirTemp("", "apan-failover-")
	if err != nil {
		return nil, 0, 0, err
	}
	defer os.RemoveAll(dir)
	dirA := filepath.Join(dir, "leader-wal")
	dirB := filepath.Join(dir, "follower-wal")
	basePath := filepath.Join(dir, "base-checkpoint")
	midPath := filepath.Join(dir, "mid-checkpoint")
	cleanOpts := wal.Options{Dir: dirB, Policy: wal.SyncGroup, SegmentBytes: 4096}
	leaderOpts := wal.Options{Dir: dirA, Policy: wal.SyncGroup, SegmentBytes: 4096}

	// fsync_err arm: storage starts failing at the seeded batch. Each batch
	// is one commit group, so counting group writes pinpoints the batch; the
	// injected error latches in the log, freezing the shipped bytes exactly
	// at the failing batch's boundary (written, never fsynced, never
	// followed).
	if mode == failFsyncErr {
		var writes atomic.Int64
		var armed atomic.Bool
		leaderOpts.Inject = &wal.FaultInjector{
			BeforeWrite: func(string, int64, int) error {
				if writes.Add(1) == int64(a.plan.failBatch) {
					armed.Store(true)
				}
				return nil
			},
			BeforeSync: func(string) error {
				if armed.CompareAndSwap(true, false) {
					return errors.New("injected: disk refused fsync")
				}
				return nil
			},
		}
	}

	// Leader: warm up, write the base checkpoint both sides seed from, then
	// attach the WAL and serve.
	leader, err := newModel(a.tr, a.o)
	if err != nil {
		return nil, 0, 0, err
	}
	prepModel(leader, a.tr, a.o, a.trainFrac)
	if _, err := leader.Checkpoint(basePath); err != nil {
		return nil, 0, 0, err
	}
	log, err := wal.Open(leaderOpts)
	if err != nil {
		return nil, 0, 0, err
	}
	if err := leader.AttachWAL(log); err != nil {
		return nil, 0, 0, err
	}

	// Follower: same base checkpoint, replaying the shipped directory.
	newFollower := func() (*core.Model, *replica.Replica, error) {
		fm, err := newModel(a.tr, a.o)
		if err != nil {
			return nil, nil, err
		}
		if err := fm.LoadCheckpointFile(basePath); err != nil {
			return nil, nil, err
		}
		rep, err := replica.NewFollower(fm, dirB, replica.Options{WAL: cleanOpts})
		if err != nil {
			return nil, nil, err
		}
		return fm, rep, nil
	}
	fm, rep, err := newFollower()
	if err != nil {
		return nil, 0, 0, err
	}

	// Ships go through the replica's fenced dest — as the serve binary's
	// dial loop does — so the arms also prove the on-disk write fence.
	shipper := wal.NewShipper(dirA, rep.ShipDest(), wal.ShipOptions{Tail: true})
	apply := func(m *core.Model, b []tgraph.Event) []float32 {
		ensureBatch(m.EnsureNodes, b)
		inf := m.InferBatch(b)
		scores := append([]float32(nil), inf.Scores...)
		m.ApplyInference(inf)
		inf.Release()
		return scores
	}

	var vs []Violation
	liveScores := make([][]float32, 0, a.plan.crashBatch)
	followerApplied := 0
	for bi := 0; bi < a.plan.crashBatch; bi++ {
		liveScores = append(liveScores, apply(leader, a.batches[bi]))
		if _, err := shipper.ShipNow(); err != nil {
			return nil, 0, 0, err
		}
		rep.ObserveLeaderIndex(log.NextIndex()) // the ship heartbeat
		if bi < a.plan.pauseBatch {
			n, err := rep.PollOnce()
			if err != nil {
				return nil, 0, 0, err
			}
			followerApplied += n
			if mode == failFollowerCrash && bi == a.plan.fcrashBatch-1 {
				// The follower process dies mid-replay; a fresh one rebuilds
				// from the base checkpoint and must catch up exactly-once.
				fm, rep, err = newFollower()
				if err != nil {
					return nil, 0, 0, err
				}
				// A fresh process means a fresh ship connection: the
				// leader re-ships from byte zero through the new
				// replica's dest (chunk writes are idempotent).
				shipper = wal.NewShipper(dirA, rep.ShipDest(), wal.ShipOptions{Tail: true})
				if _, err := shipper.ShipNow(); err != nil {
					return nil, 0, 0, err
				}
				if _, err := rep.PollOnce(); err != nil {
					return nil, 0, 0, err
				}
			}
		}
		if bi == a.plan.pauseBatch-1 {
			// Warm replication is what makes mid-stream truncation safe: the
			// shipped copy already covers everything the checkpoint retires.
			wm, err := leader.Checkpoint(midPath)
			if err != nil {
				return nil, 0, 0, err
			}
			if _, err := log.TruncateBefore(wm); err != nil {
				return nil, 0, 0, err
			}
		}
	}
	if rep.Role() != "follower" {
		vs = append(vs, a.violation(mode, -1, "replica reports role %q before promotion", rep.Role()))
	}
	if mode == failClean {
		if followerApplied != a.offsets[a.plan.pauseBatch] {
			vs = append(vs, a.violation(mode, a.offsets[a.plan.pauseBatch],
				"follower replayed %d events before pausing, want %d", followerApplied, a.offsets[a.plan.pauseBatch]))
		}
		// The heartbeat said the leader is offsets[crash]−offsets[pause]
		// events ahead of the parked follower.
		wantLag := int64(a.offsets[a.plan.crashBatch] - a.offsets[a.plan.pauseBatch])
		if got := rep.LagEvents(); got != wantLag {
			vs = append(vs, a.violation(mode, a.offsets[a.plan.pauseBatch],
				"follower lag %d events, want %d", got, wantLag))
		}
	}

	// The leader's scores up to the crash must match the reference — also in
	// the fsync arm, where the WAL latched an I/O error mid-stream and
	// serving degraded to best-effort durability without touching scores.
	vs = append(vs, compareScores(InvFailover, a.tr.Name, a.o.Seed, a.batches[:a.plan.crashBatch],
		a.refScores[:a.plan.crashBatch], liveScores, "uninterrupted", fmt.Sprintf("%s-leader", mode))...)
	if mode == failFsyncErr {
		if log.Stats().Err == "" {
			vs = append(vs, a.violation(mode, a.offsets[a.plan.failBatch],
				"injected fsync failure did not latch in the leader WAL"))
		}
	}

	// The crash: the leader dies without a final flush, and the shipped tail
	// is damaged per mode.
	leader.DetachWAL().Abandon()
	wantBatch := a.plan.crashBatch
	switch mode {
	case failTornTruncate:
		if err := tornTruncate(dirB, 3); err != nil {
			return nil, 0, 0, err
		}
		wantBatch = a.plan.crashBatch - 1
	case failTornGarbage:
		if err := tornAppendGarbage(dirB, 16); err != nil {
			return nil, 0, 0, err
		}
	case failFsyncErr:
		// Nothing to damage: the latch froze the log at the failing batch,
		// so the shipped copy simply ends there.
		wantBatch = a.plan.failBatch
	}

	// Promotion: catch-up replay over the shipped log, then leadership.
	if err := rep.Promote(); err != nil {
		return nil, 0, 0, err
	}
	takeover := fm.DB().G.NumEvents() - a.base - a.offsets[a.plan.pauseBatch]
	if mode == failFollowerCrash {
		takeover = fm.DB().G.NumEvents() - a.base // rebuilt follower replayed from the base
	}
	if rep.Role() != "leader" {
		vs = append(vs, a.violation(mode, -1, "replica reports role %q after promotion", rep.Role()))
	}
	// Fencing: a second promotion and any further polling must refuse.
	if err := rep.Promote(); !errors.Is(err, replica.ErrAlreadyPromoted) {
		vs = append(vs, a.violation(mode, -1, "double promotion not fenced: second Promote returned %v", err))
	}
	if _, err := rep.PollOnce(); !errors.Is(err, replica.ErrPromoted) {
		vs = append(vs, a.violation(mode, -1, "promoted replica accepted a poll: PollOnce returned %v", err))
	}
	// On-disk write fence: an ex-leader that is in fact still alive (a
	// partition, not a crash) keeps streaming — a fresh connection's
	// re-ship from byte zero must be refused before a single chunk lands
	// under the promoted leader's log.
	staleShip := wal.NewShipper(dirA, rep.ShipDest(), wal.ShipOptions{Tail: true})
	if _, err := staleShip.ShipNow(); !errors.Is(err, replica.ErrPromoted) {
		vs = append(vs, a.violation(mode, -1, "stale leader ship not fenced: ShipNow returned %v", err))
	}

	gotBatch := sort.SearchInts(a.offsets, fm.DB().G.NumEvents()-a.base)
	if gotBatch >= len(a.offsets) || a.offsets[gotBatch] != fm.DB().G.NumEvents()-a.base {
		vs = append(vs, a.violation(mode, -1, "takeover landed mid-batch: watermark %d does not align to a batch boundary",
			fm.DB().G.NumEvents()-a.base))
		return vs, gotBatch, takeover, nil
	}
	if gotBatch != wantBatch {
		vs = append(vs, a.violation(mode, a.offsets[wantBatch],
			"takeover landed at batch %d (stream event %d), want batch %d", gotBatch, a.offsets[gotBatch], wantBatch))
		return vs, gotBatch, takeover, nil
	}
	if got, want := fm.RuntimeDigest(), a.digests[gotBatch]; got != want {
		vs = append(vs, a.violation(mode, a.offsets[gotBatch],
			"promoted digest %016x != uninterrupted digest %016x at batch %d", got, want, gotBatch))
	}

	// The promoted leader serves the rest of the stream — logging to its own
	// (formerly shipped) WAL — and must end bitwise where the uninterrupted
	// run ended.
	contScores := make([][]float32, 0, len(a.batches)-gotBatch)
	for _, b := range a.batches[gotBatch:] {
		contScores = append(contScores, apply(fm, b))
	}
	vs = append(vs, compareScores(InvFailover, a.tr.Name, a.o.Seed, a.batches[gotBatch:],
		a.refScores[gotBatch:], contScores, "uninterrupted", fmt.Sprintf("%s-promoted", mode))...)
	if got, want := fm.RuntimeDigest(), a.digests[len(a.batches)]; got != want {
		vs = append(vs, a.violation(mode, a.offsets[len(a.batches)]-1,
			"end-of-stream digest %016x != uninterrupted digest %016x", got, want))
	}
	if err := fm.DetachWAL().Close(); err != nil {
		return nil, 0, 0, err
	}
	return vs, gotBatch, takeover, nil
}
