package scenario

import (
	"fmt"
	"math/rand"

	"apan/internal/core"
	"apan/internal/dataset"
	"apan/internal/eval"
	"apan/internal/tgraph"
	"apan/internal/train"
)

// driftOutcome extends a run with what the continual-learning invariants
// need: the negative-twin scores that make holdout AP computable, the
// parameter version every batch was pinned to, and the trainer's publish
// log.
type driftOutcome struct {
	*runOutcome
	negScores [][]float32
	versions  []uint64 // ParamVersion pinned by each batch's InferBatch
	pubLog    []train.Publish
	trainer   *train.OnlineTrainer
}

// driftTrainerConfig sizes the online trainer for harness runs: small
// enough to step and publish many times within a few hundred events, fully
// seeded, with an aggressive-but-gated learning rate. Deterministic under
// Pump.
func driftTrainerConfig(seed int64) train.Config {
	return train.Config{
		BufferCap: 1024, RecentCap: 256, RecencyBias: 0.95,
		MiniBatch: 48, StepEvery: 5, PublishEvery: 1,
		// The holdout ring is deliberately short-memoried (the last ~256
		// observed events): under drift, a long holdout judges the adapting
		// candidate against the dead rule and the gate would fight the
		// adaptation it exists to protect.
		HoldoutEvery: 8, HoldoutCap: 32, MinHoldout: 12,
		LR: 0.015, Tolerance: 0.08, RollbackPatience: 6,
		Seed: seed + 97,
	}
}

// newDriftModel builds the drift paths' model: the harness architecture
// with an online-scale learning rate, so the pre-shift warm-up actually
// fits the intra-community rule the shift then invalidates.
func newDriftModel(tr *Trace, o RunOptions) (*core.Model, error) {
	return core.New(core.Config{
		NumNodes: tr.NumNodes, EdgeDim: tr.EdgeDim,
		Slots: 6, Neighbors: 5, Hops: 2, Heads: 2, Hidden: 32,
		BatchSize: o.BatchSize, Seed: o.Seed + 7, Shards: 8, LR: 0.01,
		GraphBackend: o.GraphBackend,
	})
}

// prepDriftModel warms the model on the pre-shift prefix for several
// epochs (identically in every drift run), so the frozen baseline enters
// the shift with a genuinely fitted rule.
func prepDriftModel(m *core.Model, tr *Trace, trainFrac float64) []tgraph.Event {
	stream := tr.Events
	cut := int(trainFrac * float64(len(stream)))
	if cut == 0 {
		return stream
	}
	ns := dataset.NewNegSampler(tr.MaxNodes)
	for e := 0; e < 3; e++ {
		m.ResetRuntime()
		m.TrainEpoch(stream[:cut], ns)
	}
	return stream[cut:]
}

// runDrift drives the stream through the direct path with an online trainer
// attached (pumped deterministically after each applied batch) or frozen.
// For every batch it also scores a negative-twin batch — same sources and
// times, destinations drawn from the observed-destination pool (§4.2's
// P_n(v)) — through the side-effect-free InferBatch, so stream AP is
// measurable without touching the runtime state. The frozen variant
// constructs the trainer and freezes it: observations must be complete
// no-ops, which the frozen-determinism invariant checks bitwise.
func runDrift(tr *Trace, o RunOptions, trainFrac float64, online bool) (*driftOutcome, error) {
	m, err := newDriftModel(tr, o)
	if err != nil {
		return nil, err
	}
	stream := prepDriftModel(m, tr, trainFrac)
	tn, err := train.New(m, driftTrainerConfig(o.Seed))
	if err != nil {
		return nil, err
	}
	if !online {
		tn.Freeze()
	}
	batches := splitBatches(stream, o.BatchSize)
	out := &driftOutcome{
		runOutcome: &runOutcome{model: m, submitted: len(stream), dropped: make([]bool, len(batches))},
		trainer:    tn,
	}
	base := m.DB().G.NumEvents()
	negRng := rand.New(rand.NewSource(o.Seed + 31))
	ns := dataset.NewNegSampler(tr.MaxNodes)
	for _, b := range batches {
		ensureBatch(m.EnsureNodes, b)
		// Negative twin: same src/time, destination from the observed pool.
		// Scored back-to-back with the positives so both read the same
		// state; InferBatch has no side effects.
		negB := make([]tgraph.Event, len(b))
		for i, ev := range b {
			neg := ns.Sample(negRng, ev.Dst)
			negB[i] = tgraph.Event{Src: ev.Src, Dst: neg, Time: ev.Time, Label: -1}
		}
		inf := m.InferBatch(b)
		out.scores = append(out.scores, append([]float32(nil), inf.Scores...))
		out.versions = append(out.versions, inf.ParamVersion())
		negInf := m.InferBatch(negB)
		out.negScores = append(out.negScores, append([]float32(nil), negInf.Scores...))
		negInf.Release()
		m.ApplyInference(inf)
		inf.Release()
		for i := range b {
			ns.Observe(&b[i])
		}
		// Feed and pump the trainer deterministically, as the propagation
		// worker would (Observe), then inline instead of on a goroutine.
		tn.Observe(b)
		tn.Pump()
	}
	out.applied = m.DB().G.NumEvents() - base
	out.digest = m.RuntimeDigest()
	out.pubLog = tn.PublishLog()
	return out, nil
}

// driftAP computes average precision over the post-shift events, pairing
// each positive with its negative twin. The first 15% of the post-shift
// window is excluded as a grace period: no trainer can have adapted to a
// rule before observing examples of it, so including the detection lag
// would measure reaction latency, not adapted quality — both runs are
// evaluated over the identical window either way.
func driftAP(batches [][]tgraph.Event, scores, negScores [][]float32, shift, span float64) float64 {
	from := shift + 0.15*(span-shift)
	var s []float32
	var l []bool
	for bi, b := range batches {
		for i := range b {
			if b[i].Time < from {
				continue
			}
			s = append(s, scores[bi][i], negScores[bi][i])
			l = append(l, true, false)
		}
	}
	return eval.AveragePrecision(s, l)
}

// checkTornParams is the no-torn-params invariant: every served batch must
// be attributable to exactly one published version (pinned version appears
// in the publish log, versions never move backwards under this sequential
// driver), and the published sets must be bitwise intact — the live set's
// values re-hash to the fingerprint recorded when it was published.
func checkTornParams(out *driftOutcome, scen string, seed int64) []Violation {
	var vs []Violation
	mk := func(idx int, detail string) {
		vs = append(vs, Violation{Invariant: InvNoTornParams, Scenario: scen, Seed: seed, EventIndex: idx, Detail: detail})
	}
	known := make(map[uint64]uint64, len(out.pubLog))
	for _, p := range out.pubLog {
		known[p.Version] = p.Fingerprint
	}
	var last uint64
	for i, v := range out.versions {
		if _, ok := known[v]; !ok {
			mk(i, fmt.Sprintf("batch %d pinned version %d, which was never published", i, v))
			return vs
		}
		if v < last {
			mk(i, fmt.Sprintf("batch %d served version %d after version %d", i, v, last))
			return vs
		}
		last = v
	}
	cur := out.model.CurrentParams()
	if got := cur.RecomputeFingerprint(); got != cur.Fingerprint() {
		mk(-1, fmt.Sprintf("published set v%d mutated in place: fingerprint %016x now hashes to %016x",
			cur.Version(), cur.Fingerprint(), got))
	}
	if fp, ok := known[cur.Version()]; !ok {
		mk(-1, fmt.Sprintf("live version %d missing from the publish log", cur.Version()))
	} else if fp != cur.Fingerprint() {
		mk(-1, fmt.Sprintf("live version %d fingerprint %016x, publish log recorded %016x",
			cur.Version(), cur.Fingerprint(), fp))
	}
	return vs
}

// compareDrift asserts two drift runs are bitwise identical (scores,
// negative-twin scores, runtime digest) — the frozen-determinism invariant.
func compareDrift(inv, scen string, seed int64, batches [][]tgraph.Event, a, b *driftOutcome, nameA, nameB string) []Violation {
	vs := compareScores(inv, scen, seed, batches, a.scores, b.scores, nameA, nameB)
	vs = append(vs, compareScores(inv, scen, seed, batches, a.negScores, b.negScores, nameA+"_neg", nameB+"_neg")...)
	if a.digest != b.digest {
		vs = append(vs, Violation{Invariant: inv, Scenario: scen, Seed: seed, EventIndex: -1,
			Detail: fmt.Sprintf("%s digest %016x != %s digest %016x", nameA, a.digest, nameB, b.digest)})
	}
	return vs
}
