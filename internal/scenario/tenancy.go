package scenario

import (
	"context"
	"errors"
	"fmt"
	"math"
	"time"

	"apan/internal/async"
	"apan/internal/eval"
	"apan/internal/tgraph"
)

// tenantRun is a noisy-neighbor protocol outcome: the merged submission
// order (batches + per-batch owner), what survived the admission gates, and
// the per-tenant ledgers after the final drain.
type tenantRun struct {
	batches [][]tgraph.Event
	owners  []string
	scores  [][]float32
	dropped []bool
	digest  uint64
	stats   map[string]async.TenantStats
}

const (
	victimTenant    = "victim"
	aggressorTenant = "aggressor"
)

// runNoisyNeighbor executes the multi-tenant isolation protocol over a
// flash-crowd trace:
//
//  1. the trace is partitioned by its burst window — burst-window events are
//     the aggressor's flash crowd, everything else the steady victim's;
//  2. the aggressor's contract caps admission at 2× the background rate
//     (event-time tokens, so the gate is a pure function of the trace), the
//     victim is uncapped;
//  3. per-tenant batches are submitted in merged lead-time order and drained
//     one at a time, so the drop pattern, surviving scores and final digest
//     depend only on (seed, contract) — the harness runs the protocol twice
//     and compares bitwise.
//
// The aggressor's burst runs ~20× the background rate, so most of its
// burst-window batches must shed at the rate gate; the victim must lose
// nothing.
func runNoisyNeighbor(tr *Trace, o RunOptions) (*tenantRun, error) {
	m, err := newModel(tr, o)
	if err != nil {
		return nil, err
	}
	// FlashCrowd's background supplies Events/3 over the span; cap the
	// aggressor at twice that so steady traffic would pass untouched while
	// the 20× burst cannot.
	baseRate := float64(len(tr.Events)) / tr.Span / 3
	pipe := async.New(m,
		async.WithQueueCap(o.QueueCap), async.WithWorkers(1),
		async.WithTenants(
			async.TenantConfig{ID: victimTenant, Weight: 3, Lane: 0},
			async.TenantConfig{ID: aggressorTenant, Weight: 1, Lane: 1, Rate: 2 * baseRate},
		))

	burstLo, burstHi := 0.4*tr.Span, 0.5*tr.Span
	var vStream, aStream []tgraph.Event
	for _, ev := range tr.Events {
		if ev.Time >= burstLo && ev.Time < burstHi {
			aStream = append(aStream, ev)
		} else {
			vStream = append(vStream, ev)
		}
	}
	vBatches := splitBatches(vStream, o.BatchSize)
	aBatches := splitBatches(aStream, o.BatchSize)

	run := &tenantRun{}
	// Merge the two tenants' batch streams by lead event time — the arrival
	// order an ingest edge would see.
	vi, ai := 0, 0
	for vi < len(vBatches) || ai < len(aBatches) {
		owner := victimTenant
		var b []tgraph.Event
		switch {
		case vi == len(vBatches):
			owner, b = aggressorTenant, aBatches[ai]
			ai++
		case ai == len(aBatches):
			b = vBatches[vi]
			vi++
		case aBatches[ai][0].Time < vBatches[vi][0].Time:
			owner, b = aggressorTenant, aBatches[ai]
			ai++
		default:
			b = vBatches[vi]
			vi++
		}
		run.batches = append(run.batches, b)
		run.owners = append(run.owners, owner)
	}

	ctx := context.Background()
	run.dropped = make([]bool, len(run.batches))
	for i, b := range run.batches {
		ensureBatch(pipe.EnsureNodes, b)
		scores, _, err := pipe.SubmitTenant(ctx, run.owners[i], b)
		switch {
		case errors.Is(err, async.ErrRateLimited):
			run.dropped[i] = true
		case err != nil:
			return nil, fmt.Errorf("scenario: tenant submit %d (%s): %w", i, run.owners[i], err)
		}
		run.scores = append(run.scores, scores)
		// Drain per batch: the apply order, and therefore every later score,
		// is a pure function of the drop pattern — bitwise replayable.
		if err := pipe.Drain(ctx); err != nil {
			return nil, fmt.Errorf("scenario: tenant drain: %w", err)
		}
	}
	if err := pipe.Drain(ctx); err != nil {
		return nil, fmt.Errorf("scenario: tenant drain: %w", err)
	}
	run.stats = pipe.TenantStats()
	if err := pipe.Shutdown(ctx); err != nil {
		return nil, fmt.Errorf("scenario: tenant shutdown: %w", err)
	}
	run.digest = m.RuntimeDigest()
	return run, nil
}

// victimSyncP99Bound is the isolation latency bound: the victim's
// synchronous-link p99 must stay within interactive range no matter what
// the aggressor does. The synchronous link never waits on the propagation
// queue, so a breach means aggressor work leaked into the scoring path.
const victimSyncP99Bound = 250 * time.Millisecond

// checkTenantIsolation asserts the noisy-neighbor contract on one run: the
// victim loses nothing, the aggressor is shed at the rate gate (not
// starved silently), and the victim's sync p99 stays bounded.
func checkTenantIsolation(run *tenantRun, scen string, seed int64) []Violation {
	var vs []Violation
	v, vok := run.stats[victimTenant]
	a, aok := run.stats[aggressorTenant]
	if !vok || !aok {
		return []Violation{{Invariant: InvTenantIsolation, Scenario: scen, Seed: seed, EventIndex: -1,
			Detail: fmt.Sprintf("tenant ledgers missing: victim=%v aggressor=%v", vok, aok)}}
	}
	if v.Dropped != 0 {
		vs = append(vs, Violation{Invariant: InvTenantIsolation, Scenario: scen, Seed: seed, EventIndex: firstDropIndex(run, victimTenant),
			Detail: fmt.Sprintf("victim dropped %d of %d submissions under aggressor load", v.Dropped, v.Submitted)})
	}
	if a.RateLimited == 0 {
		vs = append(vs, Violation{Invariant: InvTenantIsolation, Scenario: scen, Seed: seed, EventIndex: -1,
			Detail: "aggressor flash crowd was never rate-limited: the gate is not binding"})
	}
	if v.SyncP99 > victimSyncP99Bound {
		vs = append(vs, Violation{Invariant: InvTenantIsolation, Scenario: scen, Seed: seed, EventIndex: -1,
			Detail: fmt.Sprintf("victim sync p99 %v exceeds %v under aggressor load", v.SyncP99, victimSyncP99Bound)})
	}
	return vs
}

// firstDropIndex maps a tenant's first dropped batch to its global stream
// event index, for the (seed, event) repro line.
func firstDropIndex(run *tenantRun, tenant string) int {
	idx := 0
	for i, b := range run.batches {
		if run.owners[i] == tenant && run.dropped[i] {
			return idx
		}
		idx += len(b)
	}
	return -1
}

// checkTenantConservation asserts the per-tenant accounting law after the
// final drain: every submission that entered a tenant's ledger is applied
// or dropped — submitted = applied + dropped, per tenant, no silent loss.
func checkTenantConservation(run *tenantRun, scen string, seed int64) []Violation {
	var vs []Violation
	for id, st := range run.stats {
		if st.Applied+st.Dropped != st.Submitted {
			vs = append(vs, Violation{Invariant: InvTenantAccounting, Scenario: scen, Seed: seed, EventIndex: -1,
				Detail: fmt.Sprintf("tenant %s: submitted %d, applied %d + dropped %d = %d",
					id, st.Submitted, st.Applied, st.Dropped, st.Applied+st.Dropped)})
		}
		if st.QueueDepth != 0 {
			vs = append(vs, Violation{Invariant: InvTenantAccounting, Scenario: scen, Seed: seed, EventIndex: -1,
				Detail: fmt.Sprintf("tenant %s: queue depth %d after drain", id, st.QueueDepth)})
		}
	}
	return vs
}

// evictBudget picks the binding cold-state budget for the eviction-pressure
// scenario: a third of the constructed node space, so steady traffic over
// the full population must evict constantly.
func evictBudget(o RunOptions) int {
	b := o.Nodes / 3
	if b < 1 {
		b = 1
	}
	return b
}

// headAP trains the fraud head on the first half of the labeled samples and
// returns its average precision on the second half — the same Table-3
// protocol the labeled harness reports, reusable for A/B comparisons.
func headAP(samples []labeledSample, seed int64) float64 {
	half := len(samples) / 2
	trainS, testS := samples[:half], samples[half:]
	scores := fraudHeadScores(trainS, testS, seed+13)
	if scores == nil {
		return math.NaN()
	}
	labels := make([]bool, len(testS))
	for i := range testS {
		labels[i] = testS[i].y
	}
	return eval.AveragePrecision(scores, labels)
}

// maxEvictAPLoss bounds how much labeled AP cold-state eviction may cost
// against the unbounded-memory reference on the same trace: re-admitted
// nodes warm-start from neighbors, so detection quality must degrade
// gracefully, not collapse.
const maxEvictAPLoss = 0.20

// runDirectEvict is runDirect with the serving path's re-admission step:
// before each batch is scored, its evicted endpoints are warm-started from
// current neighbors (ReadmitBatch), exactly as every Pipeline submit path
// does. The direct loop alone would score evicted nodes cold forever and
// understate serving quality.
func runDirectEvict(tr *Trace, o RunOptions, trainFrac float64, collectSamples bool) (*runOutcome, error) {
	m, err := newModel(tr, o)
	if err != nil {
		return nil, err
	}
	stream := prepModel(m, tr, o, trainFrac)
	batches := splitBatches(stream, o.BatchSize)
	out := &runOutcome{model: m, submitted: len(stream), dropped: make([]bool, len(batches))}
	base := m.DB().G.NumEvents()
	for _, b := range batches {
		ensureBatch(m.EnsureNodes, b)
		m.ReadmitBatch(b)
		inf := m.InferBatch(b)
		out.scores = append(out.scores, append([]float32(nil), inf.Scores...))
		m.ApplyInference(inf)
		inf.Release()
		if collectSamples {
			out.samples = collectLabeled(m, b, out.samples)
		}
	}
	out.applied = m.DB().G.NumEvents() - base
	out.digest = m.RuntimeDigest()
	return out, nil
}

// checkEvictionPressure drives the direct path twice under a binding
// eviction budget and asserts: evictions actually fire, the warm set never
// exceeds the budget, both runs are bitwise identical (scores and digest —
// the property WAL replay of an evicting run depends on), and the labeled
// AP stays within maxEvictAPLoss of the no-eviction reference run. It
// returns the violations plus the evicting run's stats for the report.
func checkEvictionPressure(tr *Trace, o RunOptions, sc Scenario, ref *runOutcome, batches [][]tgraph.Event) ([]Violation, *runOutcome, error) {
	o2 := o
	o2.EvictMaxNodes = evictBudget(o)
	evA, err := runDirectEvict(tr, o2, sc.TrainFrac, true)
	if err != nil {
		return nil, nil, err
	}
	evB, err := runDirectEvict(tr, o2, sc.TrainFrac, false)
	if err != nil {
		return nil, nil, err
	}

	var vs []Violation
	st, ok := evA.model.EvictionStats()
	if !ok {
		return []Violation{{Invariant: InvEvictionBounded, Scenario: sc.Name, Seed: o.Seed, EventIndex: -1,
			Detail: "eviction stats unavailable with a budget configured"}}, evA, nil
	}
	if st.Evicted == 0 {
		vs = append(vs, Violation{Invariant: InvEvictionBounded, Scenario: sc.Name, Seed: o.Seed, EventIndex: -1,
			Detail: fmt.Sprintf("budget %d of %d nodes never evicted: pressure scenario is not binding", st.Budget, o.Nodes)})
	}
	if st.Tracked > st.Budget {
		vs = append(vs, Violation{Invariant: InvEvictionBounded, Scenario: sc.Name, Seed: o.Seed, EventIndex: -1,
			Detail: fmt.Sprintf("warm set %d exceeds budget %d", st.Tracked, st.Budget)})
	}
	vs = append(vs, compareScores(InvEvictionBounded, sc.Name, o.Seed, batches, evA.scores, evB.scores, "evict1", "evict2")...)
	if evA.digest != evB.digest {
		vs = append(vs, Violation{Invariant: InvEvictionBounded, Scenario: sc.Name, Seed: o.Seed, EventIndex: -1,
			Detail: fmt.Sprintf("evicting runs diverged: digest %016x vs %016x", evA.digest, evB.digest)})
	}
	refAP := headAP(ref.samples, o.Seed)
	evAP := headAP(evA.samples, o.Seed)
	switch {
	case math.IsNaN(refAP) || math.IsNaN(evAP):
		vs = append(vs, Violation{Invariant: InvEvictionBounded, Scenario: sc.Name, Seed: o.Seed, EventIndex: -1,
			Detail: fmt.Sprintf("labeled AP not computable (ref %v, evict %v)", refAP, evAP)})
	case evAP < refAP-maxEvictAPLoss:
		vs = append(vs, Violation{Invariant: InvEvictionBounded, Scenario: sc.Name, Seed: o.Seed, EventIndex: -1,
			Detail: fmt.Sprintf("eviction AP %.4f fell more than %.2f below reference AP %.4f", evAP, maxEvictAPLoss, refAP)})
	}
	return vs, evA, nil
}
