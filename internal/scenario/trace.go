package scenario

import (
	"math/rand"
	"sort"

	"apan/internal/dataset"
	"apan/internal/tgraph"
)

// WorkloadParams sizes a generated trace. The harness fills it from
// RunOptions; generators treat it as read-only.
type WorkloadParams struct {
	// Nodes is the node-ID space admitted at model construction time.
	Nodes int
	// MaxNodes bounds the IDs a trace may name; churn generators emit IDs in
	// [Nodes, MaxNodes) to exercise dynamic admission. MaxNodes ≥ Nodes.
	MaxNodes int
	// Events is the trace length.
	Events int
	// EdgeDim is the event feature dimension (divisible by the model's
	// attention heads).
	EdgeDim int
	// Span is the virtual-clock length of the trace in seconds. All event
	// times lie in [0, Span]; no generator reads the wall clock.
	Span float64
}

// Trace is a deterministic synthetic workload: the event stream in arrival
// order (which out-of-order generators deliberately decouple from timestamp
// order) plus the node-space bounds the drivers need.
type Trace struct {
	Name     string
	NumNodes int // initially admitted node space; IDs ≥ this exercise admission
	MaxNodes int // exclusive upper bound on IDs appearing in Events
	EdgeDim  int
	Span     float64
	// Shift is the concept-drift timestamp: events at Time ≥ Shift follow a
	// different interaction structure than those before (0 for stationary
	// workloads). The drift driver measures adaptation on the ≥-Shift part.
	Shift  float64
	Events []tgraph.Event
}

// MaxTime returns the largest event timestamp (0 for an empty trace).
func (t *Trace) MaxTime() float64 {
	var max float64
	for i := range t.Events {
		if t.Events[i].Time > max {
			max = t.Events[i].Time
		}
	}
	return max
}

// Workload generates a deterministic trace from a seeded RNG. Equal (rng
// state, params) must give bitwise-equal traces: the replay-determinism
// invariant regenerates the trace and compares.
type Workload func(rng *rand.Rand, p WorkloadParams) *Trace

// synth derives event features from per-node latent intents, the same
// structure the dataset generators use: features carry signal about their
// endpoints, so attention has something to learn, and fraud signatures are
// separable.
type synth struct {
	rng *rand.Rand
	lat [][]float32
	dim int
}

func newSynth(rng *rand.Rand, nodes, dim int) *synth {
	s := &synth{rng: rng, dim: dim, lat: make([][]float32, nodes)}
	for i := range s.lat {
		v := make([]float32, dim)
		for j := range v {
			v[j] = float32(rng.NormFloat64() * 0.5)
		}
		s.lat[i] = v
	}
	return s
}

func (s *synth) feat(src, dst tgraph.NodeID) []float32 {
	f := make([]float32, s.dim)
	a, b := s.lat[src], s.lat[dst]
	for j := range f {
		f[j] = 0.5*(a[j]+b[j]) + float32(s.rng.NormFloat64()*0.3)
	}
	return f
}

// pickPair draws a src/dst pair with distinct endpoints from an alias
// sampler over n nodes.
func pickPair(rng *rand.Rand, pick *dataset.AliasSampler, n int) (tgraph.NodeID, tgraph.NodeID) {
	src := pick.Draw(rng)
	dst := pick.Draw(rng)
	if dst == src {
		dst = (src + 1) % n
	}
	return tgraph.NodeID(src), tgraph.NodeID(dst)
}

// SmoothBaseline is stationary mildly-skewed traffic — the control scenario
// every prior test stream resembled, kept as the parity/determinism anchor.
func SmoothBaseline(rng *rand.Rand, p WorkloadParams) *Trace {
	return zipfTraffic(rng, p, "smooth_baseline", 0.9)
}

// ZipfHotspot is heavily skewed traffic (α = 1.6): a handful of celebrity
// nodes receive most interactions, hammering their store shards and mailbox
// slots while the long tail stays cold.
func ZipfHotspot(rng *rand.Rand, p WorkloadParams) *Trace {
	return zipfTraffic(rng, p, "zipf_hotspot", 1.6)
}

func zipfTraffic(rng *rand.Rand, p WorkloadParams, name string, exp float64) *Trace {
	pick := dataset.NewAliasSampler(dataset.ZipfWeights(rng, p.Nodes, exp))
	sy := newSynth(rng, p.Nodes, p.EdgeDim)
	tr := &Trace{Name: name, NumNodes: p.Nodes, MaxNodes: p.Nodes, EdgeDim: p.EdgeDim, Span: p.Span}
	rate := float64(p.Events) / p.Span
	var t float64
	for len(tr.Events) < p.Events {
		t += rng.ExpFloat64() / rate
		src, dst := pickPair(rng, pick, p.Nodes)
		tr.Events = append(tr.Events, tgraph.Event{Src: src, Dst: dst, Time: t, Feat: sy.feat(src, dst), Label: -1})
	}
	return tr
}

// FlashCrowd is the paper's "Black Friday" shape (§1): smooth background
// traffic with a burst window at 40–50% of the span during which the event
// rate jumps 20× and most traffic concentrates on a small hot set — the
// load profile the asynchronous design exists to absorb.
func FlashCrowd(rng *rand.Rand, p WorkloadParams) *Trace {
	pick := dataset.NewAliasSampler(dataset.ZipfWeights(rng, p.Nodes, 0.9))
	sy := newSynth(rng, p.Nodes, p.EdgeDim)
	hotN := 8
	if hotN > p.Nodes {
		hotN = p.Nodes
	}
	hot := rng.Perm(p.Nodes)[:hotN]
	tr := &Trace{Name: "flash_crowd", NumNodes: p.Nodes, MaxNodes: p.Nodes, EdgeDim: p.EdgeDim, Span: p.Span}
	baseRate := float64(p.Events) / p.Span / 3 // burst supplies the rest
	burstLo, burstHi := 0.4*p.Span, 0.5*p.Span
	var t float64
	for len(tr.Events) < p.Events {
		rate := baseRate
		inBurst := t >= burstLo && t < burstHi
		if inBurst {
			rate = baseRate * 20
		}
		t += rng.ExpFloat64() / rate
		var src, dst tgraph.NodeID
		if inBurst && rng.Float64() < 0.8 {
			src = tgraph.NodeID(hot[rng.Intn(hotN)])
			dst = tgraph.NodeID(hot[rng.Intn(hotN)])
			if dst == src {
				dst = tgraph.NodeID((int(src) + 1) % p.Nodes)
			}
		} else {
			src, dst = pickPair(rng, pick, p.Nodes)
		}
		tr.Events = append(tr.Events, tgraph.Event{Src: src, Dst: dst, Time: t, Feat: sy.feat(src, dst), Label: -1})
	}
	return tr
}

// NodeChurn admits new node IDs throughout the stream: the population
// frontier opens linearly from Nodes to MaxNodes, and half the traffic
// concentrates on the most recently admitted (cold-start) nodes — TGAT's
// unseen-node setting as a continuous arrival process. IDs ≥ Trace.NumNodes
// force EnsureNodes on the direct/pipeline paths and dynamic admission on
// the HTTP path.
func NodeChurn(rng *rand.Rand, p WorkloadParams) *Trace {
	sy := newSynth(rng, p.MaxNodes, p.EdgeDim)
	tr := &Trace{Name: "node_churn", NumNodes: p.Nodes, MaxNodes: p.MaxNodes, EdgeDim: p.EdgeDim, Span: p.Span}
	rate := float64(p.Events) / p.Span
	var t float64
	draw := func(frontier int) tgraph.NodeID {
		if rng.Float64() < 0.5 {
			// Cold-start bias: the newest admitted identities interact most
			// (fresh accounts, new listings).
			w := 8
			if w > frontier {
				w = frontier
			}
			return tgraph.NodeID(frontier - 1 - rng.Intn(w))
		}
		return tgraph.NodeID(rng.Intn(frontier))
	}
	for k := 0; k < p.Events; k++ {
		t += rng.ExpFloat64() / rate
		frontier := p.Nodes + int(float64(p.MaxNodes-p.Nodes)*float64(k)/float64(p.Events)) + 1
		if frontier > p.MaxNodes {
			frontier = p.MaxNodes
		}
		src := draw(frontier)
		dst := draw(frontier)
		if dst == src {
			dst = tgraph.NodeID((int(src) + 1) % frontier)
		}
		tr.Events = append(tr.Events, tgraph.Event{Src: src, Dst: dst, Time: t, Feat: sy.feat(src, dst), Label: -1})
	}
	return tr
}

// OutOfOrder perturbs a smooth stream the way a distributed ingest layer
// does (§3.6): ~30% of events carry a timestamp swapped with a nearby
// neighbor (arrival order ≠ time order), ~10% duplicate the previous event's
// timestamp exactly, and ~5% are full duplicate deliveries of the previous
// event. The mailbox's sorted readout must hide all of it.
func OutOfOrder(rng *rand.Rand, p WorkloadParams) *Trace {
	tr := zipfTraffic(rng, p, "out_of_order", 0.9)
	evs := tr.Events
	for i := 1; i < len(evs); i++ {
		switch r := rng.Float64(); {
		case r < 0.30:
			// Local disorder: swap times with a recent predecessor.
			j := i - 1 - rng.Intn(min(6, i))
			evs[i].Time, evs[j].Time = evs[j].Time, evs[i].Time
		case r < 0.40:
			evs[i].Time = evs[i-1].Time // exact duplicate timestamp
		case r < 0.45:
			dup := evs[i-1] // duplicate delivery of the previous event
			dup.Feat = append([]float32(nil), evs[i-1].Feat...)
			evs[i] = dup
		}
	}
	return tr
}

// ConceptDrift is the online-continual-learning workload: community-
// structured traffic whose community memberships are rewired mid-stream.
// Every node carries a fixed latent identity; features identify the
// interacting pair (0.5·(a+b) + noise), so attention has stable signal
// about who is who. Before the shift (at 45% of the span), interactions
// are intra-community under partition A — the rule every pre-shift
// training pass learns. At the shift the partition is reshuffled: the same
// nodes regroup into new communities (each new community mixes nodes from
// all old ones) and traffic becomes intra-community under partition B.
// "Nodes that interact are similar" stays true — the drift is in WHICH
// nodes count as similar — so the rule remains representable by the
// inner-product decoder, but a model with frozen parameters keeps mapping
// identities to the dead grouping while an online trainer re-fits encoder
// and decoder to the new one. That gap is what the adaptation check
// measures.
func ConceptDrift(rng *rand.Rand, p WorkloadParams) *Trace {
	communities := 4
	if communities > p.Nodes {
		communities = p.Nodes
	}
	dim := p.EdgeDim
	// Distinct per-node latent identities (unit direction, fixed scale):
	// the features must identify nodes, not communities, or the reshuffle
	// would be invisible.
	lat := make([][]float32, p.Nodes)
	for u := range lat {
		v := dataset.RandUnitVec(rng, dim)
		for j := range v {
			v[j] *= 2
		}
		lat[u] = v
	}
	// Partition A: contiguous stripes. Partition B: a seeded reshuffle, so
	// each new community draws members from every old one.
	memberA := make([][]int, communities)
	memberB := make([][]int, communities)
	commA := make([]int, p.Nodes)
	commB := make([]int, p.Nodes)
	perm := rng.Perm(p.Nodes)
	for u := 0; u < p.Nodes; u++ {
		a := u % communities
		b := perm[u] % communities
		commA[u], commB[u] = a, b
		memberA[a] = append(memberA[a], u)
		memberB[b] = append(memberB[b], u)
	}
	feat := func(u, v int) []float32 {
		f := make([]float32, dim)
		for j := range f {
			f[j] = 0.5*(lat[u][j]+lat[v][j]) + float32(rng.NormFloat64()*0.15)
		}
		return f
	}

	tr := &Trace{Name: "concept_drift", NumNodes: p.Nodes, MaxNodes: p.Nodes,
		EdgeDim: dim, Span: p.Span, Shift: 0.45 * p.Span}
	rate := float64(p.Events) / p.Span
	var t float64
	for len(tr.Events) < p.Events {
		t += rng.ExpFloat64() / rate
		u := rng.Intn(p.Nodes)
		pool := memberA[commA[u]]
		if t >= tr.Shift {
			pool = memberB[commB[u]]
		}
		v := pool[rng.Intn(len(pool))]
		if v == u {
			v = pool[(rng.Intn(len(pool))+1)%len(pool)]
			if v == u {
				v = (u + 1) % p.Nodes
			}
		}
		tr.Events = append(tr.Events, tgraph.Event{
			Src: tgraph.NodeID(u), Dst: tgraph.NodeID(v), Time: t,
			Feat: feat(u, v), Label: -1,
		})
	}
	return tr
}

// FraudRing is the Alipay shape (§4.1) at harness scale: community-local
// background transactions (label 0) with injected fraud rings — small
// colluding groups burst-transacting among themselves and cashing out via a
// mule inside tight windows, their features shifted along a fraud direction
// (label 1). Ground truth enables per-scenario AP/AUC.
func FraudRing(rng *rand.Rand, p WorkloadParams) *Trace {
	sy := newSynth(rng, p.Nodes, p.EdgeDim)
	fraudDir := dataset.RandUnitVec(rng, p.EdgeDim)

	communities := 6
	if communities > p.Nodes {
		communities = p.Nodes
	}
	members := make([][]int, communities)
	for u := 0; u < p.Nodes; u++ {
		c := rng.Intn(communities)
		members[c] = append(members[c], u)
	}

	tr := &Trace{Name: "fraud_ring", NumNodes: p.Nodes, MaxNodes: p.Nodes, EdgeDim: p.EdgeDim, Span: p.Span}
	fraudEvents := p.Events / 20
	background := p.Events - fraudEvents
	rate := float64(background) / p.Span
	var t float64
	for len(tr.Events) < background {
		t += rng.ExpFloat64() / rate
		u := rng.Intn(p.Nodes)
		var v int
		if m := members[u%communities]; len(m) > 1 && rng.Float64() < 0.85 {
			v = m[rng.Intn(len(m))]
		} else {
			v = rng.Intn(p.Nodes)
		}
		if v == u {
			v = (u + 1) % p.Nodes
		}
		tr.Events = append(tr.Events, tgraph.Event{
			Src: tgraph.NodeID(u), Dst: tgraph.NodeID(v), Time: t,
			Feat: sy.feat(tgraph.NodeID(u), tgraph.NodeID(v)), Label: 0,
		})
	}

	rings := 3
	for r := 0; r < rings; r++ {
		size := 3 + rng.Intn(3)
		ring := make([]int, size)
		for i := range ring {
			ring[i] = rng.Intn(p.Nodes)
		}
		mule := rng.Intn(p.Nodes)
		// Stratified starts spread rings across the span so every
		// chronological window observes fraud.
		start := p.Span * 0.9 * (float64(r) + rng.Float64()) / float64(rings)
		window := 0.05 * p.Span
		per := fraudEvents / rings
		if r == rings-1 {
			per = fraudEvents - per*(rings-1)
		}
		for i := 0; i < per; i++ {
			u := ring[rng.Intn(size)]
			v := ring[rng.Intn(size)]
			if rng.Float64() < 0.4 || v == u {
				v = mule
			}
			if v == u {
				v = (u + 1) % p.Nodes
			}
			f := sy.feat(tgraph.NodeID(u), tgraph.NodeID(v))
			dataset.AddScaled(f, fraudDir, 1.0+0.5*float32(rng.Float64()))
			tr.Events = append(tr.Events, tgraph.Event{
				Src: tgraph.NodeID(u), Dst: tgraph.NodeID(v),
				Time: start + rng.Float64()*window, Feat: f, Label: 1,
			})
		}
	}

	// Fraud bursts interleave with background by time; arrival order follows
	// the merged timeline (the ingest layer of this scenario is in-order).
	sort.SliceStable(tr.Events, func(a, b int) bool { return tr.Events[a].Time < tr.Events[b].Time })
	return tr
}
