package scenario

import (
	"math/rand"

	"apan/internal/core"
	"apan/internal/tensor"
	"apan/internal/tgraph"
)

// This file implements the labeled-scenario metric the paper actually uses
// for fraud (Table 3's Alipay protocol): a small supervised classifier on
// [z_src ‖ e_ij ‖ z_dst] — frozen encoder embeddings plus the raw event
// features — rather than the link score. The raw link score is a poor fraud
// signal by construction: ring members burst-transact with each other, so
// after the first few mails their interactions look like established pairs
// and score *high*; the fraud signature lives in the event features and the
// endpoints' perturbed states, which only a supervised head can read.
//
// The head is plain logistic regression trained with class-balanced,
// seeded-RNG minibatch SGD from zero-initialized weights: fully
// deterministic, no autograd, no extra dependencies.

// labeledSample is one scored event with ground truth: the endpoints'
// embeddings at event time, the event features and the label.
type labeledSample struct {
	x []float32 // z_src ‖ feat ‖ z_dst, built at collection time
	y bool
}

// collectLabeled gathers samples for every labeled event of the batch using
// the model's public embedding API. Called after the batch is applied, so
// embeddings reflect the same state evolution every run sees (deterministic
// on the direct path).
func collectLabeled(m *core.Model, batch []tgraph.Event, out []labeledSample) []labeledSample {
	var nodes []tgraph.NodeID
	var times []float64
	for _, ev := range batch {
		if ev.Label >= 0 {
			nodes = append(nodes, ev.Src, ev.Dst)
			times = append(times, ev.Time, ev.Time)
		}
	}
	if len(nodes) == 0 {
		return out
	}
	z := m.Embed(nodes, times)
	row := 0
	for _, ev := range batch {
		if ev.Label < 0 {
			continue
		}
		zs, zd := z.Row(row), z.Row(row+1)
		row += 2
		x := make([]float32, 0, len(zs)+len(ev.Feat)+len(zd))
		x = append(x, zs...)
		x = append(x, ev.Feat...)
		x = append(x, zd...)
		out = append(out, labeledSample{x: x, y: ev.Label == 1})
	}
	return out
}

// fraudHeadScores trains the logistic head on the train samples and returns
// its probabilities for the eval samples (aligned with eval), or nil when
// either split lacks a class. Inputs are standardized per dimension from
// training statistics — embeddings and raw feature channels differ in scale.
func fraudHeadScores(train, eval []labeledSample, seed int64) []float32 {
	var pos, neg []int
	for i := range train {
		if train[i].y {
			pos = append(pos, i)
		} else {
			neg = append(neg, i)
		}
	}
	if len(pos) == 0 || len(neg) == 0 || len(eval) == 0 {
		return nil
	}
	dim := len(train[0].x)

	mean := make([]float32, dim)
	std := make([]float32, dim)
	for i := range train {
		for j, v := range train[i].x {
			mean[j] += v
		}
	}
	for j := range mean {
		mean[j] /= float32(len(train))
	}
	for i := range train {
		for j, v := range train[i].x {
			d := v - mean[j]
			std[j] += d * d
		}
	}
	for j := range std {
		std[j] = tensor.Sqrt32(std[j]/float32(len(train))) + 1e-6
	}
	norm := func(x []float32, j int) float32 { return (x[j] - mean[j]) / std[j] }

	w := make([]float32, dim)
	var b float32
	rng := rand.New(rand.NewSource(seed))
	const (
		steps = 400
		half  = 8
		lr    = 0.1
		decay = 1e-3
	)
	for s := 0; s < steps; s++ {
		// Class-balanced minibatch against the heavy label skew.
		for k := 0; k < 2*half; k++ {
			var i int
			var y float32
			if k < half {
				i, y = pos[rng.Intn(len(pos))], 1
			} else {
				i, y = neg[rng.Intn(len(neg))], 0
			}
			x := train[i].x
			var logit float32 = b
			for j := 0; j < dim; j++ {
				logit += w[j] * norm(x, j)
			}
			g := tensor.Sigmoid32(logit) - y
			gs := g * lr / (2 * half)
			for j := 0; j < dim; j++ {
				w[j] -= gs*norm(x, j) + lr*decay/(2*half)*w[j]
			}
			b -= gs
		}
	}

	scores := make([]float32, len(eval))
	for i := range eval {
		var logit float32 = b
		for j := 0; j < dim; j++ {
			logit += w[j] * norm(eval[i].x, j)
		}
		scores[i] = tensor.Sigmoid32(logit)
	}
	return scores
}
