package scenario

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"apan/internal/core"
	"apan/internal/tgraph"
	"apan/internal/wal"
)

// killMode selects what the simulated crash leaves on disk at the log's tail.
type killMode int

const (
	// killClean: the process dies between record writes — the log ends on a
	// record boundary and recovery must resume exactly at the crash batch.
	killClean killMode = iota
	// killTornTruncate: the process dies mid-write — the newest record is
	// half on disk. Recovery must truncate it and land one batch earlier.
	killTornTruncate
	// killTornGarbage: the tail sector was overwritten with garbage before
	// the crash. The garbage fails to frame, so recovery treats it exactly
	// like a torn write: drop the tail, keep every intact record.
	killTornGarbage
)

func (k killMode) String() string {
	switch k {
	case killTornTruncate:
		return "torn_truncate"
	case killTornGarbage:
		return "torn_garbage"
	default:
		return "clean"
	}
}

// killPlan fixes the crash geometry as a pure function of the seed, so a
// violation report's (seed, event index) reproduces the exact same
// checkpoint cut, crash point and torn tail.
type killPlan struct {
	ckptBatch  int // checkpoint lands after this many streamed batches
	crashBatch int // the process dies after this many streamed batches
}

func planKill(seed int64, numBatches int) (killPlan, error) {
	if numBatches < 4 {
		return killPlan{}, fmt.Errorf("scenario: kill-and-recover needs ≥ 4 batches, have %d (raise Events or lower BatchSize)", numBatches)
	}
	rng := rand.New(rand.NewSource(seed + 41))
	ckpt := numBatches/4 + rng.Intn(numBatches/4+1)          // in [n/4, n/2]
	crash := ckpt + 1 + rng.Intn(numBatches-1-ckpt)          // in (ckpt, n-1]
	return killPlan{ckptBatch: ckpt, crashBatch: crash}, nil // ≥ 1 batch continues after recovery
}

// runKillRecover is the durability workload: kill the serving process at a
// seeded batch index — including mid-record torn writes — recover from
// checkpoint + WAL replay, and require the recovered runtime to be
// *bitwise* identical (RuntimeDigest) to an uninterrupted run at the same
// stream position, then to stay bitwise identical through the end of the
// stream.
//
// One uninterrupted reference run records the digest at every batch
// boundary; each crash mode then runs the full die/recover/continue cycle
// against a real on-disk WAL and compares scores and digests against the
// reference. Returns the violations, plus the clean-mode replayed event
// count for the report.
func runKillRecover(tr *Trace, o RunOptions, trainFrac float64) ([]Violation, int, error) {
	// Reference arm: uninterrupted direct path, digests at every boundary.
	ref, err := newModel(tr, o)
	if err != nil {
		return nil, 0, err
	}
	stream := prepModel(ref, tr, o, trainFrac)
	batches := splitBatches(stream, o.BatchSize)
	plan, err := planKill(o.Seed, len(batches))
	if err != nil {
		return nil, 0, err
	}

	base := ref.DB().G.NumEvents() // events the training prefix inserted
	digests := make([]uint64, 0, len(batches)+1)
	digests = append(digests, ref.RuntimeDigest())
	offsets := make([]int, 0, len(batches)+1) // stream index of each boundary
	offsets = append(offsets, 0)
	refScores := make([][]float32, 0, len(batches))
	for _, b := range batches {
		ensureBatch(ref.EnsureNodes, b)
		inf := ref.InferBatch(b)
		refScores = append(refScores, append([]float32(nil), inf.Scores...))
		ref.ApplyInference(inf)
		inf.Release()
		digests = append(digests, ref.RuntimeDigest())
		offsets = append(offsets, offsets[len(offsets)-1]+len(b))
	}

	arm := killArm{
		tr: tr, o: o, trainFrac: trainFrac, batches: batches, plan: plan,
		base: base, digests: digests, offsets: offsets, refScores: refScores,
	}
	var vs []Violation
	var recovered int
	for _, mode := range []killMode{killClean, killTornTruncate, killTornGarbage} {
		mvs, rec, err := arm.run(mode)
		if err != nil {
			return nil, 0, err
		}
		vs = append(vs, mvs...)
		if mode == killClean {
			recovered = rec
		}
	}
	return vs, recovered, nil
}

// killArm carries the reference run's boundary digests and scores into each
// crash mode's die/recover/continue cycle.
type killArm struct {
	tr        *Trace
	o         RunOptions
	trainFrac float64
	batches   [][]tgraph.Event
	plan      killPlan
	base      int // graph events inserted by the training prefix
	digests   []uint64
	offsets   []int
	refScores [][]float32
}

func (a *killArm) violation(mode killMode, eventIndex int, format string, args ...any) Violation {
	return Violation{Invariant: InvKillRecover, Scenario: a.tr.Name, Seed: a.o.Seed, EventIndex: eventIndex,
		Detail: fmt.Sprintf("[%s ckpt_batch=%d crash_batch=%d] %s",
			mode, a.plan.ckptBatch, a.plan.crashBatch, fmt.Sprintf(format, args...))}
}

// run executes one crash mode end to end. SegmentBytes is kept tiny so the
// cycle also crosses segment rotation and checkpoint-driven truncation, and
// SyncGroup makes every acknowledged batch durable — the contract the crash
// then tests.
func (a *killArm) run(mode killMode) ([]Violation, int, error) {
	dir, err := os.MkdirTemp("", "apan-killrecover-")
	if err != nil {
		return nil, 0, err
	}
	defer os.RemoveAll(dir)
	walDir := filepath.Join(dir, "wal")
	ckptPath := filepath.Join(dir, "checkpoint")
	walOpts := wal.Options{Dir: walDir, Policy: wal.SyncGroup, SegmentBytes: 4096}

	// Live process: stream with the WAL attached, checkpoint mid-stream,
	// truncate the log behind the checkpoint, stream on, die.
	live, err := newModel(a.tr, a.o)
	if err != nil {
		return nil, 0, err
	}
	prepModel(live, a.tr, a.o, a.trainFrac)
	log, err := wal.Open(walOpts)
	if err != nil {
		return nil, 0, err
	}
	if err := live.AttachWAL(log); err != nil {
		return nil, 0, err
	}
	apply := func(m *core.Model, b []tgraph.Event) []float32 {
		ensureBatch(m.EnsureNodes, b)
		inf := m.InferBatch(b)
		scores := append([]float32(nil), inf.Scores...)
		m.ApplyInference(inf)
		inf.Release()
		return scores
	}
	liveScores := make([][]float32, 0, a.plan.crashBatch)
	for _, b := range a.batches[:a.plan.ckptBatch] {
		liveScores = append(liveScores, apply(live, b))
	}
	wm, err := live.Checkpoint(ckptPath)
	if err != nil {
		return nil, 0, err
	}
	if _, err := log.TruncateBefore(wm); err != nil {
		return nil, 0, err
	}
	for _, b := range a.batches[a.plan.ckptBatch:a.plan.crashBatch] {
		liveScores = append(liveScores, apply(live, b))
	}
	live.DetachWAL().Abandon() // the crash: no Close, no final flush

	vs := compareScores(InvKillRecover, a.tr.Name, a.o.Seed, a.batches[:a.plan.crashBatch],
		a.refScores[:a.plan.crashBatch], liveScores, "uninterrupted", fmt.Sprintf("%s-live", mode))

	// The torn tail: damage the newest segment the way a mid-write crash
	// does, and compute which batch boundary recovery must land on.
	wantBatch := a.plan.crashBatch
	switch mode {
	case killTornTruncate:
		if err := tornTruncate(walDir, 3); err != nil {
			return nil, 0, err
		}
		wantBatch = a.plan.crashBatch - 1 // the half-written record is lost
	case killTornGarbage:
		if err := tornAppendGarbage(walDir, 16); err != nil {
			return nil, 0, err
		}
	}

	// Recovery process: fresh model, checkpoint, replay to watermark.
	rec, err := newModel(a.tr, a.o)
	if err != nil {
		return nil, 0, err
	}
	if err := rec.LoadCheckpointFile(ckptPath); err != nil {
		return nil, 0, err
	}
	log2, err := wal.Open(walOpts)
	if err != nil {
		return nil, 0, err
	}
	replayed, err := rec.RecoverWAL(log2)
	if err != nil {
		return nil, 0, err
	}
	gotBatch := sort.SearchInts(a.offsets, rec.DB().G.NumEvents()-a.base)
	if gotBatch >= len(a.offsets) || a.offsets[gotBatch] != rec.DB().G.NumEvents()-a.base {
		vs = append(vs, a.violation(mode, -1, "recovery landed mid-batch: %d replayed events do not align to a batch boundary", replayed))
		return vs, replayed, nil
	}
	if gotBatch != wantBatch {
		vs = append(vs, a.violation(mode, a.offsets[wantBatch],
			"recovery landed at batch %d (stream event %d), want batch %d", gotBatch, a.offsets[gotBatch], wantBatch))
		return vs, replayed, nil
	}
	if got, want := rec.RuntimeDigest(), a.digests[gotBatch]; got != want {
		vs = append(vs, a.violation(mode, a.offsets[gotBatch],
			"recovered digest %016x != uninterrupted digest %016x at batch %d", got, want, gotBatch))
	}

	// The recovered replica serves the rest of the stream and must end
	// bitwise where the uninterrupted run ended.
	if err := rec.AttachWAL(log2); err != nil {
		return nil, 0, err
	}
	contScores := make([][]float32, 0, len(a.batches)-gotBatch)
	for _, b := range a.batches[gotBatch:] {
		contScores = append(contScores, apply(rec, b))
	}
	vs = append(vs, compareScores(InvKillRecover, a.tr.Name, a.o.Seed, a.batches[gotBatch:],
		a.refScores[gotBatch:], contScores, "uninterrupted", fmt.Sprintf("%s-recovered", mode))...)
	if got, want := rec.RuntimeDigest(), a.digests[len(a.batches)]; got != want {
		vs = append(vs, a.violation(mode, a.offsets[len(a.batches)]-1,
			"end-of-stream digest %016x != uninterrupted digest %016x", got, want))
	}
	if err := rec.DetachWAL().Close(); err != nil {
		return nil, 0, err
	}
	return vs, replayed, nil
}

// newestSegment returns the path of the highest-indexed WAL segment —
// the one a mid-write crash tears.
func newestSegment(dir string) (string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return "", err
	}
	var segs []string
	for _, e := range ents {
		if name := e.Name(); strings.HasPrefix(name, "wal-") && strings.HasSuffix(name, ".seg") {
			segs = append(segs, name)
		}
	}
	if len(segs) == 0 {
		return "", fmt.Errorf("scenario: no wal segments in %s", dir)
	}
	sort.Strings(segs) // fixed-width hex names sort numerically
	return filepath.Join(dir, segs[len(segs)-1]), nil
}

// tornTruncate chops n bytes off the newest segment, leaving its last
// record half-written.
func tornTruncate(dir string, n int64) error {
	path, err := newestSegment(dir)
	if err != nil {
		return err
	}
	fi, err := os.Stat(path)
	if err != nil {
		return err
	}
	return os.Truncate(path, fi.Size()-n)
}

// tornAppendGarbage appends n bytes of junk to the newest segment — a tail
// sector the crash left with garbage instead of a frame.
func tornAppendGarbage(dir string, n int) error {
	path, err := newestSegment(dir)
	if err != nil {
		return err
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		return err
	}
	junk := make([]byte, n)
	for i := range junk {
		junk[i] = 0x5A
	}
	if _, err := f.Write(junk); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
