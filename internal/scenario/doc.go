// Package scenario is the deterministic simulation harness for the full
// APAN serving stack: it composes synthetic workload generators (flash
// crowds, Zipf hotspots, node churn and cold-start admission, out-of-order
// and duplicated timestamps, fraud rings with ground-truth labels), drives
// the resulting traces through three full-stack paths — core.Model directly,
// async.Pipeline, and the HTTP serve.Server — under fault injection (gated
// slow consumers, queue saturation with TrySubmit drops, mid-stream
// snapshot/restore), and checks system invariants on every run:
//
//   - score parity: the three paths return bitwise-identical float32 scores
//     for identical streams (the serving layers add latency, never error);
//   - mailbox monotonicity: every node's mailbox readout is timestamp-sorted
//     and bounded by its capacity, even under out-of-order arrival (§3.6);
//   - drop accounting: every submitted event is either applied to the graph
//     or reported dropped — nothing vanishes under saturation;
//   - replay determinism: a fixed seed reproduces the trace, the scores and
//     the final runtime digest bit-for-bit, including the exact drop pattern
//     of the queue-saturation protocol;
//   - checkpoint replay: restoring a mid-stream SnapshotRuntime and
//     replaying the tail reproduces the first pass bitwise.
//
// Divergences are reported as minimal reproducible traces: the scenario
// seed plus the global event index of the first mismatch (Violation).
//
// # Determinism rules
//
// Everything a scenario decides flows from its seed: workload generation
// uses one seeded *rand.Rand, event times come from a virtual clock advanced
// by draws from that RNG (never the wall clock), and fault injection is
// gated on channels (a parked consumer is released by the harness, not by a
// timer), so the queue-saturation drop pattern is a pure function of the
// seed and queue capacity. Wall time appears only in *reported* latency
// metrics, never in control flow. The slow-consumer scenario is the one
// deliberate exception: its backpressure timing is real, so it checks the
// conservation invariants (drop accounting, mailbox monotonicity) and
// reports score drift as a metric rather than asserting bitwise parity.
//
// See docs/testing.md for how to add a scenario and which invariants each
// bundled scenario asserts; cmd/apan-bench -exp scenarios renders the
// per-scenario table.
package scenario
